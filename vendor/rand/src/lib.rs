//! Offline stand-in for the `rand` 0.9 trait surface.
//!
//! Provides exactly what this workspace calls: [`RngCore`], [`SeedableRng`]
//! (with the SplitMix64-expanded `seed_from_u64`), and the [`Rng`]
//! extension methods `random_range` / `random_bool`. The concrete generator
//! lives in our vendored `rand_chacha`. Streams are *not* bit-compatible
//! with upstream rand — every consumer in this repo only relies on
//! determinism per seed, never on a specific upstream sequence.

/// Low-level generator interface.
pub trait RngCore {
    /// Next 32 random bits.
    fn next_u32(&mut self) -> u32;
    /// Next 64 random bits.
    fn next_u64(&mut self) -> u64;
    /// Fill `dest` with random bytes.
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        let mut chunks = dest.chunks_exact_mut(8);
        for chunk in &mut chunks {
            chunk.copy_from_slice(&self.next_u64().to_le_bytes());
        }
        let rest = chunks.into_remainder();
        if !rest.is_empty() {
            let bytes = self.next_u64().to_le_bytes();
            rest.copy_from_slice(&bytes[..rest.len()]);
        }
    }
}

/// A generator constructible from a seed.
pub trait SeedableRng: Sized {
    /// Raw seed type (a byte array).
    type Seed: Default + AsMut<[u8]>;

    /// Construct from a full-entropy seed.
    fn from_seed(seed: Self::Seed) -> Self;

    /// Construct from a `u64`, expanding it through SplitMix64 exactly like
    /// upstream rand (one output block per 8 seed bytes).
    fn seed_from_u64(state: u64) -> Self {
        let mut seed = Self::Seed::default();
        let mut s = state;
        for chunk in seed.as_mut().chunks_mut(8) {
            s = s.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = s;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^= z >> 31;
            let bytes = z.to_le_bytes();
            let n = chunk.len();
            chunk.copy_from_slice(&bytes[..n]);
        }
        Self::from_seed(seed)
    }
}

/// A type that can be uniformly sampled between two bounds.
///
/// The generic `SampleRange` impls below are keyed on this trait (as in
/// upstream rand), which is what lets integer-literal ranges like `0..4`
/// unify with a `usize` context such as slice indexing.
pub trait SampleUniform: Sized + PartialOrd {
    /// Sample uniformly from `[lo, hi)` (`inclusive = false`) or `[lo, hi]`
    /// (`inclusive = true`). Callers guarantee the range is non-empty.
    fn sample_bounds<R: RngCore + ?Sized>(rng: &mut R, lo: Self, hi: Self, inclusive: bool)
        -> Self;
}

macro_rules! impl_sample_uniform_uint {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            fn sample_bounds<R: RngCore + ?Sized>(
                rng: &mut R,
                lo: Self,
                hi: Self,
                inclusive: bool,
            ) -> Self {
                let span = (hi - lo) as u64;
                if inclusive {
                    if span == u64::MAX {
                        return rng.next_u64() as $t;
                    }
                    lo + (rng.next_u64() % (span + 1)) as $t
                } else {
                    lo + (rng.next_u64() % span) as $t
                }
            }
        }
    )*};
}
impl_sample_uniform_uint!(u8, u16, u32, u64, usize);

macro_rules! impl_sample_uniform_int {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            fn sample_bounds<R: RngCore + ?Sized>(
                rng: &mut R,
                lo: Self,
                hi: Self,
                inclusive: bool,
            ) -> Self {
                let (lo, hi) = (lo as i128, hi as i128);
                let span = (hi - lo + if inclusive { 1 } else { 0 }) as u64;
                (lo + (rng.next_u64() % span) as i128) as $t
            }
        }
    )*};
}
impl_sample_uniform_int!(i8, i16, i32, i64);

impl SampleUniform for f64 {
    fn sample_bounds<R: RngCore + ?Sized>(
        rng: &mut R,
        lo: Self,
        hi: Self,
        _inclusive: bool,
    ) -> Self {
        let unit = (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64);
        lo + unit * (hi - lo)
    }
}

/// A range that a value can be uniformly sampled from.
pub trait SampleRange<T> {
    /// Draw one uniform sample.
    fn sample<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
    /// Whether the range contains no values (sampling would panic).
    fn is_empty_range(&self) -> bool;
}

impl<T: SampleUniform> SampleRange<T> for core::ops::Range<T> {
    fn sample<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
        assert!(!self.is_empty_range(), "cannot sample from empty range");
        T::sample_bounds(rng, self.start, self.end, false)
    }
    fn is_empty_range(&self) -> bool {
        // `!(a < b)`, not `a >= b`: a NaN float bound must read as empty.
        #[allow(clippy::neg_cmp_op_on_partial_ord)]
        {
            !(self.start < self.end)
        }
    }
}

impl<T: SampleUniform> SampleRange<T> for core::ops::RangeInclusive<T> {
    fn sample<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
        assert!(!self.is_empty_range(), "cannot sample from empty range");
        let (lo, hi) = self.into_inner();
        T::sample_bounds(rng, lo, hi, true)
    }
    fn is_empty_range(&self) -> bool {
        self.start() > self.end()
    }
}

/// User-facing convenience methods, blanket-implemented for every
/// [`RngCore`] (mirrors rand 0.9's method names).
pub trait Rng: RngCore {
    /// Uniform sample from `range`.
    fn random_range<T, Rg: SampleRange<T>>(&mut self, range: Rg) -> T
    where
        Self: Sized,
    {
        range.sample(self)
    }

    /// Bernoulli sample: `true` with probability `p`.
    ///
    /// # Panics
    /// Panics if `p` is not in `[0, 1]`.
    fn random_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        assert!((0.0..=1.0).contains(&p), "p={p} is not a probability");
        ((self.next_u64() >> 11) as f64) * (1.0 / (1u64 << 53) as f64) < p
    }
}

impl<R: RngCore> Rng for R {}

/// Everything a caller conventionally imports.
pub mod prelude {
    pub use crate::{Rng, RngCore, SampleRange, SampleUniform, SeedableRng};
}

#[cfg(test)]
mod tests {
    use super::*;

    struct Counter(u64);
    impl RngCore for Counter {
        fn next_u32(&mut self) -> u32 {
            self.next_u64() as u32
        }
        fn next_u64(&mut self) -> u64 {
            self.0 = self.0.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
            self.0
        }
    }

    #[test]
    fn ranges_stay_in_bounds() {
        let mut rng = Counter(1);
        for _ in 0..1000 {
            let v = rng.random_range(3usize..17);
            assert!((3..17).contains(&v));
            let w = rng.random_range(5u64..=9);
            assert!((5..=9).contains(&w));
            let x = rng.random_range(-4i32..5);
            assert!((-4..5).contains(&x));
            let f = rng.random_range(-2.0f64..3.0);
            assert!((-2.0..3.0).contains(&f));
        }
    }

    #[test]
    fn random_bool_extremes() {
        let mut rng = Counter(7);
        assert!(!rng.random_bool(0.0));
        assert!(rng.random_bool(1.0));
    }

    #[test]
    #[should_panic(expected = "empty range")]
    fn empty_range_panics() {
        let mut rng = Counter(1);
        let _ = rng.random_range(5usize..5);
    }

    #[test]
    fn fill_bytes_covers_partial_chunks() {
        let mut rng = Counter(3);
        let mut buf = [0u8; 13];
        rng.fill_bytes(&mut buf);
        assert!(buf.iter().any(|&b| b != 0));
    }
}
