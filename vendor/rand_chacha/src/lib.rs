//! A real ChaCha8 generator (Bernstein's ChaCha with 8 rounds) behind the
//! vendored `rand` traits.
//!
//! The keystream is genuine ChaCha8 over an incrementing 64-bit block
//! counter, so statistical quality matches upstream `rand_chacha`; the
//! *word-consumption order* is simply front-to-back of each block, which is
//! deterministic but not bit-compatible with upstream. Nothing in this
//! workspace depends on upstream streams — only on per-seed determinism.

use rand::{RngCore, SeedableRng};

/// "expand 32-byte k", the ChaCha constant words.
const CONSTANTS: [u32; 4] = [0x6170_7865, 0x3320_646e, 0x7962_2d32, 0x6b20_6574];

/// ChaCha with 8 rounds, keyed by a 32-byte seed.
#[derive(Debug, Clone)]
pub struct ChaCha8Rng {
    /// Key words (seed), immutable after construction.
    key: [u32; 8],
    /// 64-bit block counter (words 12–13 of the state).
    counter: u64,
    /// Current output block.
    block: [u32; 16],
    /// Next unconsumed word of `block`; 16 = exhausted.
    cursor: usize,
}

#[inline(always)]
fn quarter_round(state: &mut [u32; 16], a: usize, b: usize, c: usize, d: usize) {
    state[a] = state[a].wrapping_add(state[b]);
    state[d] = (state[d] ^ state[a]).rotate_left(16);
    state[c] = state[c].wrapping_add(state[d]);
    state[b] = (state[b] ^ state[c]).rotate_left(12);
    state[a] = state[a].wrapping_add(state[b]);
    state[d] = (state[d] ^ state[a]).rotate_left(8);
    state[c] = state[c].wrapping_add(state[d]);
    state[b] = (state[b] ^ state[c]).rotate_left(7);
}

impl ChaCha8Rng {
    fn refill(&mut self) {
        let mut state = [0u32; 16];
        state[..4].copy_from_slice(&CONSTANTS);
        state[4..12].copy_from_slice(&self.key);
        state[12] = self.counter as u32;
        state[13] = (self.counter >> 32) as u32;
        // Words 14–15 are the nonce, fixed at zero (one stream per seed).
        let input = state;
        for _ in 0..4 {
            // One double round: a column round then a diagonal round.
            quarter_round(&mut state, 0, 4, 8, 12);
            quarter_round(&mut state, 1, 5, 9, 13);
            quarter_round(&mut state, 2, 6, 10, 14);
            quarter_round(&mut state, 3, 7, 11, 15);
            quarter_round(&mut state, 0, 5, 10, 15);
            quarter_round(&mut state, 1, 6, 11, 12);
            quarter_round(&mut state, 2, 7, 8, 13);
            quarter_round(&mut state, 3, 4, 9, 14);
        }
        for (out, (s, i)) in self.block.iter_mut().zip(state.iter().zip(input.iter())) {
            *out = s.wrapping_add(*i);
        }
        self.counter = self.counter.wrapping_add(1);
        self.cursor = 0;
    }

    #[inline]
    fn next_word(&mut self) -> u32 {
        if self.cursor == 16 {
            self.refill();
        }
        let w = self.block[self.cursor];
        self.cursor += 1;
        w
    }
}

impl SeedableRng for ChaCha8Rng {
    type Seed = [u8; 32];

    fn from_seed(seed: Self::Seed) -> Self {
        let mut key = [0u32; 8];
        for (k, chunk) in key.iter_mut().zip(seed.chunks_exact(4)) {
            *k = u32::from_le_bytes(chunk.try_into().expect("4-byte chunk"));
        }
        Self { key, counter: 0, block: [0; 16], cursor: 16 }
    }
}

impl RngCore for ChaCha8Rng {
    fn next_u32(&mut self) -> u32 {
        self.next_word()
    }

    fn next_u64(&mut self) -> u64 {
        let lo = self.next_word() as u64;
        let hi = self.next_word() as u64;
        lo | (hi << 32)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn same_seed_same_stream() {
        let mut a = ChaCha8Rng::seed_from_u64(42);
        let mut b = ChaCha8Rng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn different_seeds_diverge() {
        let mut a = ChaCha8Rng::seed_from_u64(1);
        let mut b = ChaCha8Rng::seed_from_u64(2);
        let same = (0..64).filter(|_| a.next_u64() == b.next_u64()).count();
        assert!(same < 4, "{same} collisions in 64 draws");
    }

    #[test]
    fn output_looks_uniform() {
        // Crude bit-balance check over 64 KiB of keystream.
        let mut rng = ChaCha8Rng::seed_from_u64(7);
        let mut ones = 0u64;
        const N: u64 = 8192;
        for _ in 0..N {
            ones += rng.next_u64().count_ones() as u64;
        }
        let expected = N * 32;
        let dev = ones.abs_diff(expected);
        assert!(dev < expected / 100, "bit balance off by {dev} of {expected}");
    }

    #[test]
    fn clone_preserves_position() {
        let mut a = ChaCha8Rng::seed_from_u64(9);
        for _ in 0..7 {
            a.next_u32();
        }
        let mut b = a.clone();
        for _ in 0..50 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }
}
