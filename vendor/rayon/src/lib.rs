//! Offline stand-in for the slice of rayon this workspace uses.
//!
//! The build environment has no crates.io access and (today) a single CPU,
//! so the `par_*` entry points here return a [`ParIter`] wrapper over the
//! corresponding *sequential* std iterator with rayon's combinator names.
//! Semantics are identical to rayon for the deterministic, side-effect-free
//! closures used in this repo; only host-level parallelism is absent. The
//! simulated SIMD schedule never depended on it (see
//! `crates/core/src/engine.rs`: host execution strategy "changes wall-clock
//! speed but not one bit of the simulated schedule").
//!
//! If a multi-core image lands later, swapping the workspace dependency
//! back to upstream rayon requires no source changes.

/// Sequential adapter carrying rayon's combinator names.
pub struct ParIter<I>(I);

impl<I: Iterator> ParIter<I> {
    /// Map each item.
    pub fn map<U, F: FnMut(I::Item) -> U>(self, f: F) -> ParIter<std::iter::Map<I, F>> {
        ParIter(self.0.map(f))
    }

    /// Keep items satisfying the predicate.
    pub fn filter<F: FnMut(&I::Item) -> bool>(self, f: F) -> ParIter<std::iter::Filter<I, F>> {
        ParIter(self.0.filter(f))
    }

    /// Pair with another parallel iterator.
    pub fn zip<J: Iterator>(self, other: ParIter<J>) -> ParIter<std::iter::Zip<I, J>> {
        ParIter(self.0.zip(other.0))
    }

    /// Run `f` on every item.
    pub fn for_each<F: FnMut(I::Item)>(self, f: F) {
        self.0.for_each(f)
    }

    /// Collect into any `FromIterator` container.
    pub fn collect<C: FromIterator<I::Item>>(self) -> C {
        self.0.collect()
    }

    /// Sum the items.
    #[allow(clippy::unnecessary_fold)]
    pub fn sum<S: std::iter::Sum<I::Item>>(self) -> S {
        self.0.sum()
    }

    /// Count the items.
    pub fn count(self) -> usize {
        self.0.count()
    }

    /// Rayon-style reduce: fold from `identity()` with `op`.
    pub fn reduce<Id, Op>(self, identity: Id, op: Op) -> I::Item
    where
        Id: Fn() -> I::Item,
        Op: Fn(I::Item, I::Item) -> I::Item,
    {
        self.0.fold(identity(), op)
    }
}

impl<'a, I, T: 'a> ParIter<I>
where
    I: Iterator<Item = &'a T>,
    T: Copy,
{
    /// Copy out of references (mirror of `Iterator::copied`).
    pub fn copied(self) -> ParIter<std::iter::Copied<I>> {
        ParIter(self.0.copied())
    }
}

/// `par_iter` / `par_chunks` over shared slices.
pub trait ParSliceExt<T> {
    /// Parallel-iterator view of the slice.
    fn par_iter(&self) -> ParIter<std::slice::Iter<'_, T>>;
    /// Parallel iterator over `size`-element chunks.
    fn par_chunks(&self, size: usize) -> ParIter<std::slice::Chunks<'_, T>>;
}

impl<T> ParSliceExt<T> for [T] {
    fn par_iter(&self) -> ParIter<std::slice::Iter<'_, T>> {
        ParIter(self.iter())
    }
    fn par_chunks(&self, size: usize) -> ParIter<std::slice::Chunks<'_, T>> {
        ParIter(self.chunks(size))
    }
}

/// `par_iter_mut` / `par_chunks_mut` over mutable slices.
pub trait ParSliceMutExt<T> {
    /// Mutable parallel-iterator view of the slice.
    fn par_iter_mut(&mut self) -> ParIter<std::slice::IterMut<'_, T>>;
    /// Mutable parallel iterator over `size`-element chunks.
    fn par_chunks_mut(&mut self, size: usize) -> ParIter<std::slice::ChunksMut<'_, T>>;
}

impl<T> ParSliceMutExt<T> for [T] {
    fn par_iter_mut(&mut self) -> ParIter<std::slice::IterMut<'_, T>> {
        ParIter(self.iter_mut())
    }
    fn par_chunks_mut(&mut self, size: usize) -> ParIter<std::slice::ChunksMut<'_, T>> {
        ParIter(self.chunks_mut(size))
    }
}

/// `into_par_iter` for owned collections and ranges.
pub trait IntoParallelIterator {
    /// Item type of the resulting iterator.
    type Item;
    /// Underlying sequential iterator.
    type Iter: Iterator<Item = Self::Item>;
    /// Convert into a parallel iterator.
    fn into_par_iter(self) -> ParIter<Self::Iter>;
}

impl<T> IntoParallelIterator for Vec<T> {
    type Item = T;
    type Iter = std::vec::IntoIter<T>;
    fn into_par_iter(self) -> ParIter<Self::Iter> {
        ParIter(self.into_iter())
    }
}

impl IntoParallelIterator for std::ops::Range<usize> {
    type Item = usize;
    type Iter = std::ops::Range<usize>;
    fn into_par_iter(self) -> ParIter<Self::Iter> {
        ParIter(self)
    }
}

/// Run two closures (sequentially here) and return both results.
pub fn join<A, B, RA, RB>(a: A, b: B) -> (RA, RB)
where
    A: FnOnce() -> RA,
    B: FnOnce() -> RB,
{
    (a(), b())
}

/// Number of worker threads (1 in this sequential stand-in).
pub fn current_num_threads() -> usize {
    1
}

/// The traits a caller conventionally glob-imports.
pub mod prelude {
    pub use crate::{IntoParallelIterator, ParSliceExt, ParSliceMutExt};
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    #[test]
    fn map_collect_matches_serial() {
        let v = [1u64, 2, 3, 4];
        let doubled: Vec<u64> = v.par_iter().map(|&x| x * 2).collect();
        assert_eq!(doubled, vec![2, 4, 6, 8]);
    }

    #[test]
    fn chunked_zip_for_each() {
        let xs = [1u64, 2, 3, 4, 5, 6];
        let mut out = [0u64; 6];
        out.par_chunks_mut(2).zip(xs.par_chunks(2)).for_each(|(o, i)| {
            o.copy_from_slice(i);
        });
        assert_eq!(out, xs);
    }

    #[test]
    fn reduce_uses_identity() {
        let total = vec![1u32, 2, 3].into_par_iter().reduce(|| 0, |a, b| a + b);
        assert_eq!(total, 6);
    }

    #[test]
    fn filter_count_sum() {
        let xs = [1u64, 2, 3, 4, 5];
        assert_eq!(xs.par_iter().filter(|&&x| x % 2 == 1).count(), 3);
        let s: u64 = xs.par_iter().copied().sum();
        assert_eq!(s, 15);
    }
}
