//! Offline stand-in for the slice of criterion this workspace uses.
//!
//! Each benchmark is timed with `std::time::Instant`: one warm-up call,
//! then batches of iterations doubled until the measurement window is
//! filled, reporting mean ns/iter (and element throughput when declared).
//! No statistical analysis, plots, or baseline storage — those need the
//! real criterion; the numbers printed here are honest wall-clock means
//! suitable for before/after comparisons on one machine.
//!
//! Output format (one line per benchmark, parse-friendly):
//!
//! ```text
//! bench <group>/<id> ... <mean> ns/iter (<n> iters) [<rate> elem/s]
//! ```

use std::time::{Duration, Instant};

/// Minimum measured time per benchmark before we trust the mean.
const MEASURE_WINDOW: Duration = Duration::from_millis(200);

/// Iteration driver handed to benchmark closures.
pub struct Bencher {
    /// Mean nanoseconds per iteration, filled by `iter`/`iter_batched`.
    mean_ns: f64,
    /// Iterations actually executed in the measurement phase.
    iters: u64,
}

impl Bencher {
    fn new() -> Self {
        Self { mean_ns: f64::NAN, iters: 0 }
    }

    /// Time `f`, doubling the batch size until the window is filled.
    pub fn iter<R, F: FnMut() -> R>(&mut self, mut f: F) {
        std::hint::black_box(f()); // warm-up, also forces lazy init
        let mut batch = 1u64;
        let mut total = Duration::ZERO;
        let mut iters = 0u64;
        loop {
            let start = Instant::now();
            for _ in 0..batch {
                std::hint::black_box(f());
            }
            total += start.elapsed();
            iters += batch;
            if total >= MEASURE_WINDOW {
                break;
            }
            batch = batch.saturating_mul(2);
        }
        self.mean_ns = total.as_nanos() as f64 / iters as f64;
        self.iters = iters;
    }

    /// Time `routine` over fresh inputs from `setup` (setup excluded from
    /// the measurement).
    pub fn iter_batched<I, O, S, F>(&mut self, mut setup: S, mut routine: F, _size: BatchSize)
    where
        S: FnMut() -> I,
        F: FnMut(I) -> O,
    {
        std::hint::black_box(routine(setup())); // warm-up
        let mut measured = Duration::ZERO;
        let mut iters = 0u64;
        while measured < MEASURE_WINDOW && iters < 1_000_000 {
            let input = setup();
            let start = Instant::now();
            std::hint::black_box(routine(input));
            measured += start.elapsed();
            iters += 1;
        }
        self.mean_ns = measured.as_nanos() as f64 / iters as f64;
        self.iters = iters;
    }
}

/// Hint for how much setup output to pre-batch (ignored; setup always runs
/// per iteration here).
pub enum BatchSize {
    /// Small inputs (upstream batches many per allocation).
    SmallInput,
    /// Large inputs.
    LargeInput,
    /// One setup per iteration.
    PerIteration,
}

/// Declared units-of-work per iteration, for rate reporting.
pub enum Throughput {
    /// Elements processed per iteration.
    Elements(u64),
    /// Bytes processed per iteration.
    Bytes(u64),
}

/// A benchmark's identifier: function name plus an optional parameter.
pub struct BenchmarkId {
    label: String,
}

impl BenchmarkId {
    /// Function name + parameter value, rendered `name/param`.
    pub fn new(function_name: impl Into<String>, parameter: impl std::fmt::Display) -> Self {
        Self { label: format!("{}/{}", function_name.into(), parameter) }
    }
}

impl From<&str> for BenchmarkId {
    fn from(s: &str) -> Self {
        Self { label: s.to_string() }
    }
}

impl From<String> for BenchmarkId {
    fn from(s: String) -> Self {
        Self { label: s }
    }
}

fn report(group: Option<&str>, id: &str, b: &Bencher, throughput: &Option<Throughput>) {
    let name = match group {
        Some(g) => format!("{g}/{id}"),
        None => id.to_string(),
    };
    let rate = match throughput {
        Some(Throughput::Elements(n)) => {
            format!(" [{:.3e} elem/s]", *n as f64 / (b.mean_ns * 1e-9))
        }
        Some(Throughput::Bytes(n)) => {
            format!(" [{:.3e} B/s]", *n as f64 / (b.mean_ns * 1e-9))
        }
        None => String::new(),
    };
    println!("bench {name} ... {:.0} ns/iter ({} iters){rate}", b.mean_ns, b.iters);
}

/// Top-level benchmark context (mirrors `criterion::Criterion`).
#[derive(Default)]
pub struct Criterion {}

impl Criterion {
    /// Parse CLI arguments (accepted and ignored in this stand-in).
    pub fn configure_from_args(self) -> Self {
        self
    }

    /// Start a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup { _parent: self, name: name.into(), throughput: None }
    }

    /// Run a single named benchmark.
    pub fn bench_function<F>(&mut self, id: impl Into<BenchmarkId>, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let id = id.into();
        let mut b = Bencher::new();
        f(&mut b);
        report(None, &id.label, &b, &None);
        self
    }
}

/// A group of benchmarks sharing throughput and sample settings.
pub struct BenchmarkGroup<'a> {
    _parent: &'a mut Criterion,
    name: String,
    throughput: Option<Throughput>,
}

impl BenchmarkGroup<'_> {
    /// Declare per-iteration units of work for rate reporting.
    pub fn throughput(&mut self, t: Throughput) -> &mut Self {
        self.throughput = Some(t);
        self
    }

    /// Accepted for compatibility; this harness sizes batches by time.
    pub fn sample_size(&mut self, _n: usize) -> &mut Self {
        self
    }

    /// Accepted for compatibility; the window is fixed.
    pub fn measurement_time(&mut self, _d: Duration) -> &mut Self {
        self
    }

    /// Run one benchmark in the group.
    pub fn bench_function<F>(&mut self, id: impl Into<BenchmarkId>, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let id = id.into();
        let mut b = Bencher::new();
        f(&mut b);
        report(Some(&self.name), &id.label, &b, &self.throughput);
        self
    }

    /// Run one benchmark with an explicit input value.
    pub fn bench_with_input<I: ?Sized, F>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        let mut b = Bencher::new();
        f(&mut b, input);
        report(Some(&self.name), &id.label, &b, &self.throughput);
        self
    }

    /// End the group.
    pub fn finish(self) {}
}

/// Bundle benchmark functions into a named group runner.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $crate::Criterion::default().configure_from_args();
            $($target(&mut criterion);)+
        }
    };
}

/// Emit `main` running the listed groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bencher_measures_something() {
        let mut b = Bencher::new();
        b.iter(|| std::hint::black_box(3u64).wrapping_mul(7));
        assert!(b.mean_ns.is_finite());
        assert!(b.iters > 0);
    }

    #[test]
    fn iter_batched_runs_setup_per_iteration() {
        let mut b = Bencher::new();
        let mut setups = 0u64;
        b.iter_batched(
            || {
                setups += 1;
                vec![1u8; 16]
            },
            |v| v.len(),
            BatchSize::SmallInput,
        );
        assert!(setups >= b.iters, "setup must run for every measured iter");
    }

    #[test]
    fn group_api_composes() {
        let mut c = Criterion::default();
        let mut g = c.benchmark_group("t");
        g.throughput(Throughput::Elements(10)).sample_size(5);
        g.bench_with_input(BenchmarkId::new("f", 1), &2u32, |b, &x| {
            b.iter(|| x + 1);
        });
        g.bench_function("plain", |b| b.iter(|| 1u32 + 1));
        g.finish();
    }
}
