//! Offline stand-in for the slice of proptest this workspace uses.
//!
//! Runs each `proptest!` test body against `Config::cases` deterministic
//! pseudo-random inputs (seeded from the test's name, so failures
//! reproduce run-to-run). Differences from upstream proptest:
//!
//! * **no shrinking** — a failing case panics with the case index; rerun
//!   under a debugger or add a plain `#[test]` with the printed inputs;
//! * **persistence** stores the pre-case RNG *state* (which fully
//!   determines every sampled argument), one `cc <test> 0x<state>` line
//!   per failure, in `<CARGO_MANIFEST_DIR>/proptest-regressions/<source
//!   file stem>.txt`; stored seeds replay before the random cases on every
//!   run, so committed regression files keep old counterexamples alive in
//!   CI. No forking, no timeout handling;
//! * strategies are plain samplers (`Strategy::sample`), which is all the
//!   workspace's property tests require.
//!
//! Supported surface: integer/float range strategies, `any::<T>()`,
//! `Just`, `prop_map`, tuple strategies, `prop_oneof!` (weighted and
//! unweighted), `proptest::collection::vec`, `ProptestConfig::with_cases`,
//! and the `prop_assert*` macros.

pub mod test_runner {
    /// Per-test configuration (only `cases` is honored).
    #[derive(Debug, Clone)]
    pub struct Config {
        /// Number of random cases to run per test.
        pub cases: u32,
    }

    impl Config {
        /// Config running `cases` random cases.
        pub fn with_cases(cases: u32) -> Self {
            Self { cases }
        }
    }

    impl Default for Config {
        fn default() -> Self {
            // Upstream defaults to 256; 64 keeps the single-CPU CI image
            // fast while still exercising each property broadly.
            Self { cases: 64 }
        }
    }

    /// The deterministic generator behind every strategy sample.
    #[derive(Debug, Clone)]
    pub struct TestRng {
        state: u64,
    }

    impl TestRng {
        /// Seed from a test name (FNV-1a), so each test gets a fixed,
        /// independent stream.
        pub fn deterministic(name: &str) -> Self {
            let mut h = 0xcbf2_9ce4_8422_2325u64;
            for b in name.bytes() {
                h ^= b as u64;
                h = h.wrapping_mul(0x0000_0100_0000_01B3);
            }
            Self { state: h }
        }

        /// Rebuild the generator at an exact state (regression replay).
        pub fn from_state(state: u64) -> Self {
            Self { state }
        }

        /// The current state: capturing it before a case samples its
        /// arguments pins that case exactly (persistence records this).
        pub fn state(&self) -> u64 {
            self.state
        }

        /// Next 64 random bits (SplitMix64).
        pub fn next_u64(&mut self) -> u64 {
            self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        }

        /// Uniform draw from `[0, n)`.
        pub fn below(&mut self, n: u64) -> u64 {
            debug_assert!(n > 0);
            self.next_u64() % n
        }

        /// Uniform draw from `[0, 1)` with 53-bit resolution.
        pub fn unit_f64(&mut self) -> f64 {
            (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
        }
    }
}

pub mod persistence {
    //! Failure-seed files: the stand-in for upstream proptest's
    //! `FileFailurePersistence`. One text file per test *source file*,
    //! holding `cc <test path> 0x<rng state>` lines. The recorded state is
    //! the generator state immediately before the failing case sampled its
    //! arguments, so replaying it regenerates the exact counterexample.

    use std::path::{Path, PathBuf};

    /// Where the seeds of `source_file` live:
    /// `<manifest_dir>/proptest-regressions/<file stem>.txt`.
    pub fn regression_path(manifest_dir: &str, source_file: &str) -> PathBuf {
        let stem = Path::new(source_file).file_stem().and_then(|s| s.to_str()).unwrap_or("unknown");
        Path::new(manifest_dir).join("proptest-regressions").join(format!("{stem}.txt"))
    }

    /// Every persisted seed for `test_name`, oldest first. A missing or
    /// unreadable file is an empty seed list, not an error; malformed
    /// lines are skipped (comments start with `#`).
    pub fn load_seeds(path: &Path, test_name: &str) -> Vec<u64> {
        let Ok(text) = std::fs::read_to_string(path) else {
            return Vec::new();
        };
        text.lines()
            .filter_map(|line| {
                let mut parts = line.split_whitespace();
                if parts.next()? != "cc" || parts.next()? != test_name {
                    return None;
                }
                let hex = parts.next()?;
                u64::from_str_radix(hex.strip_prefix("0x").unwrap_or(hex), 16).ok()
            })
            .collect()
    }

    /// Append a failing seed (idempotent: an already-recorded seed is not
    /// duplicated). Creates the directory and a commented header on first
    /// write. I/O errors are swallowed — persistence must never turn a
    /// failing test into a different failure.
    pub fn record_seed(path: &Path, test_name: &str, state: u64) {
        use std::io::Write;
        if load_seeds(path, test_name).contains(&state) {
            return;
        }
        if let Some(dir) = path.parent() {
            let _ = std::fs::create_dir_all(dir);
        }
        let header = !path.exists();
        let Ok(mut f) = std::fs::OpenOptions::new().create(true).append(true).open(path) else {
            return;
        };
        if header {
            let _ = writeln!(
                f,
                "# Seeds for failure cases the property suites found. Commit this file:\n\
                 # every run replays these seeds before its random cases (see\n\
                 # vendor/proptest, module `persistence`), keeping old counterexamples\n\
                 # alive as regression tests. Format: cc <test path> 0x<rng state>."
            );
        }
        let _ = writeln!(f, "cc {test_name} 0x{state:016x}");
    }
}

pub mod strategy {
    use crate::test_runner::TestRng;

    /// A sampler of values (upstream proptest's `Strategy`, minus trees
    /// and shrinking).
    pub trait Strategy {
        /// Type of the generated values.
        type Value;

        /// Draw one value.
        fn sample(&self, rng: &mut TestRng) -> Self::Value;

        /// Transform generated values with `f`.
        fn prop_map<U, F>(self, f: F) -> Map<Self, F>
        where
            Self: Sized,
            F: Fn(Self::Value) -> U,
        {
            Map { inner: self, f }
        }

        /// Erase the concrete strategy type.
        fn boxed(self) -> BoxedStrategy<Self::Value>
        where
            Self: Sized + 'static,
        {
            BoxedStrategy(Box::new(self))
        }
    }

    /// Type-erased strategy (object-safe: only `sample` crosses the box).
    pub struct BoxedStrategy<T>(Box<dyn Strategy<Value = T>>);

    impl<T> Strategy for BoxedStrategy<T> {
        type Value = T;
        fn sample(&self, rng: &mut TestRng) -> T {
            self.0.sample(rng)
        }
    }

    /// Always yields a clone of one value.
    #[derive(Debug, Clone)]
    pub struct Just<T: Clone>(pub T);

    impl<T: Clone> Strategy for Just<T> {
        type Value = T;
        fn sample(&self, _rng: &mut TestRng) -> T {
            self.0.clone()
        }
    }

    /// Output of [`Strategy::prop_map`].
    pub struct Map<S, F> {
        pub(crate) inner: S,
        pub(crate) f: F,
    }

    impl<S: Strategy, U, F: Fn(S::Value) -> U> Strategy for Map<S, F> {
        type Value = U;
        fn sample(&self, rng: &mut TestRng) -> U {
            (self.f)(self.inner.sample(rng))
        }
    }

    /// Weighted choice between boxed strategies (`prop_oneof!`).
    pub struct Union<T> {
        arms: Vec<(u32, BoxedStrategy<T>)>,
        total: u64,
    }

    impl<T> Union<T> {
        /// Build from `(weight, strategy)` arms.
        ///
        /// # Panics
        /// Panics if all weights are zero.
        pub fn new_weighted(arms: Vec<(u32, BoxedStrategy<T>)>) -> Self {
            let total: u64 = arms.iter().map(|(w, _)| *w as u64).sum();
            assert!(total > 0, "prop_oneof! needs a positive total weight");
            Self { arms, total }
        }
    }

    impl<T> Strategy for Union<T> {
        type Value = T;
        fn sample(&self, rng: &mut TestRng) -> T {
            let mut r = rng.below(self.total);
            for (w, s) in &self.arms {
                if r < *w as u64 {
                    return s.sample(rng);
                }
                r -= *w as u64;
            }
            unreachable!("weights sum to total")
        }
    }

    macro_rules! impl_range_strategy_int {
        ($($t:ty),*) => {$(
            impl Strategy for core::ops::Range<$t> {
                type Value = $t;
                fn sample(&self, rng: &mut TestRng) -> $t {
                    assert!(self.start < self.end, "empty range strategy");
                    let span = (self.end as i128 - self.start as i128) as u64;
                    (self.start as i128 + rng.below(span) as i128) as $t
                }
            }
            impl Strategy for core::ops::RangeInclusive<$t> {
                type Value = $t;
                fn sample(&self, rng: &mut TestRng) -> $t {
                    let (lo, hi) = (*self.start() as i128, *self.end() as i128);
                    assert!(lo <= hi, "empty range strategy");
                    let span = (hi - lo + 1) as u64;
                    (lo + rng.below(span) as i128) as $t
                }
            }
        )*};
    }
    impl_range_strategy_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

    impl Strategy for core::ops::Range<f64> {
        type Value = f64;
        fn sample(&self, rng: &mut TestRng) -> f64 {
            assert!(self.start < self.end, "empty range strategy");
            self.start + rng.unit_f64() * (self.end - self.start)
        }
    }

    macro_rules! impl_tuple_strategy {
        ($(($($s:ident . $idx:tt),+))*) => {$(
            impl<$($s: Strategy),+> Strategy for ($($s,)+) {
                type Value = ($($s::Value,)+);
                fn sample(&self, rng: &mut TestRng) -> Self::Value {
                    ($(self.$idx.sample(rng),)+)
                }
            }
        )*};
    }
    impl_tuple_strategy! {
        (A.0)
        (A.0, B.1)
        (A.0, B.1, C.2)
        (A.0, B.1, C.2, D.3)
        (A.0, B.1, C.2, D.3, E.4)
    }
}

pub mod arbitrary {
    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;

    /// Types with a canonical whole-domain strategy.
    pub trait Arbitrary: Sized {
        /// Draw an unconstrained value.
        fn arbitrary(rng: &mut TestRng) -> Self;
    }

    /// Strategy over a type's whole domain (`any::<T>()`).
    pub struct Any<T>(core::marker::PhantomData<T>);

    /// The canonical strategy for `T`.
    pub fn any<T: Arbitrary>() -> Any<T> {
        Any(core::marker::PhantomData)
    }

    impl<T: Arbitrary> Strategy for Any<T> {
        type Value = T;
        fn sample(&self, rng: &mut TestRng) -> T {
            T::arbitrary(rng)
        }
    }

    impl Arbitrary for bool {
        fn arbitrary(rng: &mut TestRng) -> bool {
            rng.next_u64() & 1 == 1
        }
    }

    macro_rules! impl_arbitrary_int {
        ($($t:ty),*) => {$(
            impl Arbitrary for $t {
                fn arbitrary(rng: &mut TestRng) -> $t {
                    rng.next_u64() as $t
                }
            }
        )*};
    }
    impl_arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

    impl Arbitrary for f64 {
        fn arbitrary(rng: &mut TestRng) -> f64 {
            // Finite, sign-balanced, spanning many magnitudes.
            rng.unit_f64() * 2e9 - 1e9
        }
    }
}

pub mod collection {
    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;

    /// Element-count specification for [`vec`].
    #[derive(Debug, Clone)]
    pub struct SizeRange {
        lo: usize,
        hi_exclusive: usize,
    }

    impl From<core::ops::Range<usize>> for SizeRange {
        fn from(r: core::ops::Range<usize>) -> Self {
            assert!(r.start < r.end, "empty size range");
            Self { lo: r.start, hi_exclusive: r.end }
        }
    }

    impl From<core::ops::RangeInclusive<usize>> for SizeRange {
        fn from(r: core::ops::RangeInclusive<usize>) -> Self {
            Self { lo: *r.start(), hi_exclusive: *r.end() + 1 }
        }
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> Self {
            Self { lo: n, hi_exclusive: n + 1 }
        }
    }

    /// Strategy for `Vec<S::Value>` with a sampled length.
    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    /// `Vec` strategy: length drawn from `size`, elements from `element`.
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy { element, size: size.into() }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn sample(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let span = (self.size.hi_exclusive - self.size.lo) as u64;
            let len = self.size.lo + rng.below(span) as usize;
            (0..len).map(|_| self.element.sample(rng)).collect()
        }
    }
}

/// Run each property against `Config::cases` deterministic random inputs.
///
/// Grammar (the subset of upstream proptest used in this workspace):
///
/// ```ignore
/// proptest! {
///     #![proptest_config(ProptestConfig::with_cases(48))]   // optional
///     #[test]
///     fn my_property(x in 0u32..100, v in proptest::collection::vec(any::<bool>(), 0..10)) {
///         prop_assert!(x < 100);
///     }
/// }
/// ```
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_impl! { config = ($cfg); $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl! {
            config = (<$crate::test_runner::Config as ::core::default::Default>::default());
            $($rest)*
        }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    (config = ($cfg:expr);
     $($(#[$meta:meta])*
       fn $name:ident ( $($arg:ident in $strat:expr),+ $(,)? ) $body:block)*) => {
        $(
            $(#[$meta])*
            fn $name() {
                let config: $crate::test_runner::Config = $cfg;
                // `env!`/`file!` expand at the call site, so the seed file
                // lands in the *caller's* crate, next to its sources.
                let __seed_file = $crate::persistence::regression_path(
                    env!("CARGO_MANIFEST_DIR"),
                    file!(),
                );
                let __test_path = concat!(module_path!(), "::", stringify!($name));
                // Replay persisted counterexamples before any random case.
                for __seed in $crate::persistence::load_seeds(&__seed_file, __test_path) {
                    let mut rng = $crate::test_runner::TestRng::from_state(__seed);
                    $(let $arg = $crate::strategy::Strategy::sample(&($strat), &mut rng);)+
                    let __case_fn = move || $body;
                    if let Err(__panic) = ::std::panic::catch_unwind(
                        ::std::panic::AssertUnwindSafe(__case_fn),
                    ) {
                        eprintln!(
                            "persisted regression seed 0x{__seed:016x} still fails \
                             ({})", __seed_file.display(),
                        );
                        ::std::panic::resume_unwind(__panic);
                    }
                }
                let mut rng = $crate::test_runner::TestRng::deterministic(stringify!($name));
                for __case in 0..config.cases {
                    // The pre-case state pins every argument of this case.
                    let __pre_state = rng.state();
                    $(let $arg = $crate::strategy::Strategy::sample(&($strat), &mut rng);)+
                    // A closure so `prop_assume!` can abandon the case via
                    // `return`; panics (prop_assert) persist the seed and
                    // then propagate for reproduction.
                    let __case_fn = move || $body;
                    match ::std::panic::catch_unwind(
                        ::std::panic::AssertUnwindSafe(__case_fn),
                    ) {
                        Ok(()) => {}
                        Err(__panic) => {
                            $crate::persistence::record_seed(
                                &__seed_file,
                                __test_path,
                                __pre_state,
                            );
                            eprintln!(
                                "case {__case} failed; seed 0x{__pre_state:016x} \
                                 recorded in {}", __seed_file.display(),
                            );
                            ::std::panic::resume_unwind(__panic);
                        }
                    }
                }
            }
        )*
    };
}

/// Weighted or unweighted choice among strategies yielding one value type.
#[macro_export]
macro_rules! prop_oneof {
    ($($weight:literal => $strat:expr),+ $(,)?) => {
        $crate::strategy::Union::new_weighted(vec![
            $(($weight as u32, $crate::strategy::Strategy::boxed($strat))),+
        ])
    };
    ($($strat:expr),+ $(,)?) => {
        $crate::strategy::Union::new_weighted(vec![
            $((1u32, $crate::strategy::Strategy::boxed($strat))),+
        ])
    };
}

/// Assert within a property (no shrinking: plain assert).
#[macro_export]
macro_rules! prop_assert {
    ($($tt:tt)*) => { assert!($($tt)*) };
}

/// Equality assert within a property.
#[macro_export]
macro_rules! prop_assert_eq {
    ($($tt:tt)*) => { assert_eq!($($tt)*) };
}

/// Inequality assert within a property.
#[macro_export]
macro_rules! prop_assert_ne {
    ($($tt:tt)*) => { assert_ne!($($tt)*) };
}

/// Abandon the current case when its precondition fails.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr $(, $($fmt:tt)*)?) => {
        if !($cond) {
            return;
        }
    };
}

/// Everything a caller conventionally glob-imports.
pub mod prelude {
    pub use crate::arbitrary::{any, Arbitrary};
    pub use crate::collection;
    pub use crate::strategy::{BoxedStrategy, Just, Strategy, Union};
    pub use crate::test_runner::Config as ProptestConfig;
    pub use crate::{
        prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, prop_oneof, proptest,
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    #[test]
    fn ranges_sample_in_bounds() {
        let mut rng = crate::test_runner::TestRng::deterministic("ranges");
        for _ in 0..200 {
            let v = (3u32..10).sample(&mut rng);
            assert!((3..10).contains(&v));
            let f = (-2.0f64..5.0).sample(&mut rng);
            assert!((-2.0..5.0).contains(&f));
            let t = (0u8..4, 1usize..=3).sample(&mut rng);
            assert!(t.0 < 4 && (1..=3).contains(&t.1));
        }
    }

    #[test]
    fn vec_strategy_respects_size() {
        let mut rng = crate::test_runner::TestRng::deterministic("vecs");
        let s = collection::vec(any::<bool>(), 2..5);
        for _ in 0..100 {
            let v = s.sample(&mut rng);
            assert!((2..5).contains(&v.len()));
        }
    }

    #[test]
    fn oneof_honors_weights() {
        let mut rng = crate::test_runner::TestRng::deterministic("weights");
        let s = prop_oneof![9 => Just(true), 1 => Just(false)];
        let trues = (0..1000).filter(|_| s.sample(&mut rng)).count();
        assert!((800..=990).contains(&trues), "{trues} trues of 1000");
    }

    #[test]
    fn deterministic_across_runs() {
        let s = collection::vec(0u64..1000, 5..10);
        let mut a = crate::test_runner::TestRng::deterministic("same");
        let mut b = crate::test_runner::TestRng::deterministic("same");
        assert_eq!(s.sample(&mut a), s.sample(&mut b));
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(16))]

        #[test]
        fn the_macro_itself_works(x in 0u32..50, flags in collection::vec(any::<bool>(), 0..8)) {
            prop_assert!(x < 50);
            prop_assert!(flags.len() < 8);
        }
    }

    #[test]
    fn rng_state_round_trips() {
        let mut a = crate::test_runner::TestRng::deterministic("trip");
        a.next_u64();
        let mut b = crate::test_runner::TestRng::from_state(a.state());
        assert_eq!(a.next_u64(), b.next_u64());
    }

    #[test]
    fn persistence_records_replays_and_dedups() {
        let dir =
            std::env::temp_dir().join(format!("proptest-stub-persist-{}", std::process::id()));
        let file = crate::persistence::regression_path(dir.to_str().unwrap(), "tests/demo.rs");
        assert!(file.ends_with("proptest-regressions/demo.txt"));
        let _ = std::fs::remove_file(&file);

        assert!(crate::persistence::load_seeds(&file, "demo::prop").is_empty());
        crate::persistence::record_seed(&file, "demo::prop", 0xDEAD_BEEF);
        crate::persistence::record_seed(&file, "demo::prop", 0xDEAD_BEEF); // dup
        crate::persistence::record_seed(&file, "demo::other", 7);
        assert_eq!(crate::persistence::load_seeds(&file, "demo::prop"), vec![0xDEAD_BEEF]);
        assert_eq!(crate::persistence::load_seeds(&file, "demo::other"), vec![7]);
        // Header comments are ignored by the parser.
        let text = std::fs::read_to_string(&file).unwrap();
        assert!(text.starts_with('#'));

        let _ = std::fs::remove_file(&file);
        let _ = std::fs::remove_dir(file.parent().unwrap());
        let _ = std::fs::remove_dir(&dir);
    }

    #[test]
    fn failing_property_persists_its_seed_and_replays_it() {
        // Drive the macro's own persistence path end-to-end against a
        // scratch CARGO_MANIFEST_DIR-style directory by calling the
        // persistence API the way the expansion does.
        let dir = std::env::temp_dir().join(format!("proptest-stub-macro-{}", std::process::id()));
        let file = crate::persistence::regression_path(dir.to_str().unwrap(), file!());
        let _ = std::fs::remove_file(&file);

        // Simulate a failing case: capture pre-state, record, then verify a
        // replayed rng regenerates the identical arguments.
        let mut rng = crate::test_runner::TestRng::deterministic("sim");
        rng.next_u64();
        let pre = rng.state();
        let args: (u64, u64) = (rng.next_u64(), rng.next_u64());
        crate::persistence::record_seed(&file, "sim::case", pre);

        let seeds = crate::persistence::load_seeds(&file, "sim::case");
        assert_eq!(seeds, vec![pre]);
        let mut replay = crate::test_runner::TestRng::from_state(seeds[0]);
        assert_eq!((replay.next_u64(), replay.next_u64()), args);

        let _ = std::fs::remove_file(&file);
        let _ = std::fs::remove_dir(file.parent().unwrap());
        let _ = std::fs::remove_dir(&dir);
    }
}
