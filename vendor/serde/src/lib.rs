//! Offline stand-in for the `serde` facade.
//!
//! The workspace derives `Serialize`/`Deserialize` on its public types so a
//! future networked build can switch back to real serde without touching
//! call sites, but nothing in-tree actually serializes (there is no
//! `serde_json` dependency). This crate keeps those derives compiling in an
//! environment without crates.io access:
//!
//! * the derive macros (re-exported from our `serde_derive`) expand to
//!   nothing, and
//! * the traits carry blanket impls, so any `T: Serialize` bound holds.
//!
//! Swapping back to upstream serde is a one-line change in the workspace
//! `Cargo.toml`; no source file mentions this shim.

pub use serde_derive::{Deserialize, Serialize};

/// Marker stand-in for `serde::Serialize`; blanket-implemented for all types.
pub trait Serialize {}
impl<T: ?Sized> Serialize for T {}

/// Marker stand-in for `serde::Deserialize<'de>`; blanket-implemented.
pub trait Deserialize<'de> {}
impl<'de, T: ?Sized> Deserialize<'de> for T {}

/// Marker stand-in for `serde::de::DeserializeOwned`.
pub trait DeserializeOwned {}
impl<T: ?Sized> DeserializeOwned for T {}

/// Mirror of `serde::de` with the deserialization traits.
pub mod de {
    pub use crate::{Deserialize, DeserializeOwned};
}

/// Mirror of `serde::ser` with the serialization trait.
pub mod ser {
    pub use crate::Serialize;
}
