//! Offline stand-in for the `crossbeam::deque` API this workspace uses.
//!
//! Upstream crossbeam-deque is a lock-free Chase–Lev deque; this stand-in
//! is a `Mutex<VecDeque>` with the same interface and the same LIFO-owner /
//! FIFO-thief discipline. Correctness properties (every pushed item popped
//! exactly once, owner takes the deep end, thieves take the shallow end)
//! are identical; only scalability under contention differs, which is moot
//! on the single-CPU image this builds on.

pub mod deque {
    use std::collections::VecDeque;
    use std::sync::{Arc, Mutex};

    /// Result of a steal attempt.
    pub enum Steal<T> {
        /// The queue was observed empty.
        Empty,
        /// One item was stolen.
        Success(T),
        /// Transient contention; the caller should retry.
        Retry,
    }

    /// Owner end of a work-stealing deque.
    pub struct Worker<T> {
        queue: Arc<Mutex<VecDeque<T>>>,
    }

    impl<T> Worker<T> {
        /// New deque whose owner pops in LIFO order (depth-first locally).
        pub fn new_lifo() -> Self {
            Self { queue: Arc::new(Mutex::new(VecDeque::new())) }
        }

        /// Push onto the owner's end.
        pub fn push(&self, item: T) {
            self.queue.lock().expect("deque poisoned").push_back(item);
        }

        /// Pop from the owner's end (most recent item).
        pub fn pop(&self) -> Option<T> {
            self.queue.lock().expect("deque poisoned").pop_back()
        }

        /// Handle for other threads to steal from the opposite end.
        pub fn stealer(&self) -> Stealer<T> {
            Stealer { queue: Arc::clone(&self.queue) }
        }
    }

    /// Thief end of a work-stealing deque.
    pub struct Stealer<T> {
        queue: Arc<Mutex<VecDeque<T>>>,
    }

    impl<T> Clone for Stealer<T> {
        fn clone(&self) -> Self {
            Self { queue: Arc::clone(&self.queue) }
        }
    }

    impl<T> Stealer<T> {
        /// Steal from the victim's shallow end (oldest item).
        pub fn steal(&self) -> Steal<T> {
            match self.queue.lock().expect("deque poisoned").pop_front() {
                Some(item) => Steal::Success(item),
                None => Steal::Empty,
            }
        }
    }

    /// Global FIFO injection queue shared by all workers.
    pub struct Injector<T> {
        queue: Mutex<VecDeque<T>>,
    }

    impl<T> Default for Injector<T> {
        fn default() -> Self {
            Self::new()
        }
    }

    impl<T> Injector<T> {
        /// New empty injector.
        pub fn new() -> Self {
            Self { queue: Mutex::new(VecDeque::new()) }
        }

        /// Push a task for any worker to take.
        pub fn push(&self, item: T) {
            self.queue.lock().expect("injector poisoned").push_back(item);
        }

        /// Take the oldest injected task.
        pub fn steal(&self) -> Steal<T> {
            match self.queue.lock().expect("injector poisoned").pop_front() {
                Some(item) => Steal::Success(item),
                None => Steal::Empty,
            }
        }
    }

    #[cfg(test)]
    mod tests {
        use super::*;

        #[test]
        fn owner_is_lifo_thief_is_fifo() {
            let w: Worker<u32> = Worker::new_lifo();
            let s = w.stealer();
            w.push(1);
            w.push(2);
            w.push(3);
            assert_eq!(w.pop(), Some(3), "owner takes the deep end");
            match s.steal() {
                Steal::Success(v) => assert_eq!(v, 1, "thief takes the shallow end"),
                _ => panic!("steal must succeed"),
            }
            assert_eq!(w.pop(), Some(2));
            assert!(w.pop().is_none());
        }

        #[test]
        fn injector_is_fifo() {
            let inj = Injector::new();
            inj.push(10);
            inj.push(20);
            assert!(matches!(inj.steal(), Steal::Success(10)));
            assert!(matches!(inj.steal(), Steal::Success(20)));
            assert!(matches!(inj.steal(), Steal::Empty));
        }

        #[test]
        fn cross_thread_draining_conserves_items() {
            let w: Worker<u64> = Worker::new_lifo();
            for i in 0..1000 {
                w.push(i);
            }
            let stealers: Vec<Stealer<u64>> = (0..4).map(|_| w.stealer()).collect();
            let stolen: u64 = std::thread::scope(|scope| {
                stealers
                    .into_iter()
                    .map(|s| {
                        scope.spawn(move || {
                            let mut n = 0u64;
                            while let Steal::Success(_) = s.steal() {
                                n += 1;
                            }
                            n
                        })
                    })
                    .collect::<Vec<_>>()
                    .into_iter()
                    .map(|h| h.join().expect("no panics"))
                    .sum()
            });
            assert_eq!(stolen + w.pop().into_iter().count() as u64, 1000);
        }
    }
}
