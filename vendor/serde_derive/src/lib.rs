//! No-op stand-ins for serde's derive macros.
//!
//! The build environment has no crates.io access, so the workspace vendors
//! a minimal `serde` whose `Serialize`/`Deserialize` traits carry blanket
//! impls (see `vendor/serde`). These derives therefore need to emit
//! nothing: the trait obligations are already satisfied for every type.
//! The `serde` helper-attribute namespace is still registered so that
//! `#[serde(...)]` field attributes, should any appear, keep compiling.

use proc_macro::TokenStream;

/// Accepts and discards a `#[derive(Serialize)]` input.
#[proc_macro_derive(Serialize, attributes(serde))]
pub fn derive_serialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}

/// Accepts and discards a `#[derive(Deserialize)]` input.
#[proc_macro_derive(Deserialize, attributes(serde))]
pub fn derive_deserialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}
