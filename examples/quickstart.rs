//! Quickstart: solve a 15-puzzle with serial IDA\*, then simulate the same
//! search on a lockstep SIMD machine under the paper's GP-D^K scheme.
//!
//! ```text
//! cargo run --release --example quickstart
//! ```

use simd_tree_search::prelude::*;

fn main() {
    // A reproducible instance: 40 random (non-backtracking) moves from the
    // solved board.
    let instance = puzzle15::scrambled(42, 40);
    let puzzle = puzzle15::Puzzle15::new(instance.board());
    println!("instance (seed 42, walk 40):\n{}", puzzle.start());

    // --- serial IDA* ---
    let ida = tree::ida::ida_star(&puzzle, 80);
    let bound = ida.solution_cost.expect("scrambles are solvable by construction");
    let w = ida.final_iteration().expanded;
    println!("serial IDA*: optimal cost {bound}, iterations:");
    for it in &ida.iterations {
        println!("  bound {:2}: {:8} nodes, {} goal(s)", it.bound, it.expanded, it.goals);
    }

    // --- parallel search of the final iteration on a SIMD machine ---
    let bounded = tree::problem::BoundedProblem::new(&puzzle, bound);
    for p in [64usize, 256, 1024] {
        let cfg = EngineConfig::new(p, Scheme::gp_dk(), CostModel::cm2());
        let out = run(&bounded, &cfg);
        assert_eq!(out.report.nodes_expanded, w, "anomaly-free by construction");
        println!(
            "P={p:5}  GP-D^K: {} expansion cycles, {} balancing phases, \
             speedup {:6.1}, efficiency {:.2}",
            out.report.n_expand,
            out.report.n_lb,
            out.report.speedup(),
            out.report.efficiency
        );
    }

    // --- what the optimal static trigger would have been (eq. 18) ---
    let params = analysis::TriggerParams::new(w, 1024, CostModel::cm2().lb_ratio(1024));
    println!(
        "analytic optimal static trigger for (W={w}, P=1024): x_o = {:.2}",
        analysis::optimal_static_trigger(&params)
    );
}
