//! Model-count random 3-SAT formulas on every machine this workspace
//! provides: serial DPLL, the simulated 1992 SIMD machine, the simulated
//! MIMD work-stealer, and real host threads. All four must (and do) agree
//! on every count — the anomaly-free property end to end.
//!
//! ```text
//! cargo run --release --example sat_counting [vars] [clauses]
//! ```

use simd_tree_search::mimd::{run_mimd, MimdConfig, StealPolicy};
use simd_tree_search::par::deque_dfs;
use simd_tree_search::prelude::*;
use simd_tree_search::problems::{random_3sat, Dpll};

fn main() {
    let mut args = std::env::args().skip(1);
    let vars: u32 = args.next().and_then(|a| a.parse().ok()).unwrap_or(26);
    let clauses: u32 = args.next().and_then(|a| a.parse().ok()).unwrap_or(vars * 3);
    println!(
        "random 3-SAT, {vars} vars x {clauses} clauses (ratio {:.2}):\n",
        clauses as f64 / vars as f64
    );

    for seed in 0..4u64 {
        let dpll = Dpll::new(random_3sat(seed, vars, clauses));
        let serial = serial_dfs(&dpll);

        let simd = run(&dpll, &EngineConfig::new(256, Scheme::gp_dk(), CostModel::cm2()));
        let mimd =
            run_mimd(&dpll, &MimdConfig::new(256, StealPolicy::RandomPolling, CostModel::cm2()));
        let host = deque_dfs(&dpll, 4);

        assert_eq!(simd.goals, serial.goals);
        assert_eq!(mimd.goals, serial.goals);
        assert_eq!(host.goals, serial.goals);
        println!(
            "seed {seed}: {:7} models over {:8} DPLL nodes | SIMD E={:.2} ({} balances) | \
             MIMD E={:.2} ({} steals) | host pool: {} steals",
            serial.goals,
            serial.expanded,
            simd.report.efficiency,
            simd.report.n_lb,
            mimd.efficiency,
            mimd.transfers,
            host.steals,
        );
    }
    println!("\nall machines agree on every model count.");
}
