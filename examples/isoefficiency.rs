//! Isoefficiency in action: sweep (W, P), extract equal-efficiency
//! contours, and fit their growth — the method behind the paper's Figs. 4
//! and 7, on a laptop-sized grid.
//!
//! ```text
//! cargo run --release --example isoefficiency
//! ```

use simd_tree_search::analysis::{extract_contour, fit_power_law, Sample};
use simd_tree_search::prelude::*;
use simd_tree_search::synth::find_tree;

fn main() {
    // Calibrate one synthetic tree per target size so every scheme sees
    // identical search spaces.
    let targets = [16_384u64, 65_536, 262_144, 1_048_576];
    let trees: Vec<_> = targets.iter().map(|&t| find_tree(t, 0.10, 64)).collect();
    let ps = [128usize, 256, 512, 1024];
    println!("grid: P = {ps:?}, W = {:?}\n", trees.iter().map(|t| t.w).collect::<Vec<_>>());

    for (name, scheme) in
        [("GP-S^0.90", Scheme::gp_static(0.9)), ("nGP-S^0.90", Scheme::ngp_static(0.9))]
    {
        let mut samples = Vec::new();
        for &p in &ps {
            for st in &trees {
                let out = run(&st.tree, &EngineConfig::new(p, scheme, CostModel::cm2()));
                samples.push(Sample { p, w: st.w, e: out.report.efficiency });
            }
        }
        println!("{name}: efficiency grid (rows = P, cols = W):");
        for &p in &ps {
            let row: Vec<String> =
                samples.iter().filter(|s| s.p == p).map(|s| format!("{:.2}", s.e)).collect();
            println!("  P={p:5}: {}", row.join("  "));
        }
        for target in [0.50, 0.60, 0.70] {
            let contour = extract_contour(&samples, target);
            if contour.len() >= 2 {
                let pts: Vec<(f64, f64)> =
                    contour.iter().map(|c| (c.p as f64 * (c.p as f64).log2(), c.w)).collect();
                let fit = fit_power_law(&pts);
                println!(
                    "  E={target:.2} contour: W ~ (P log P)^{:.2} over {} points",
                    fit.b,
                    contour.len()
                );
            }
        }
        println!();
    }
    println!(
        "The paper's claim: GP-S^x contours stay ~linear in P log P (exponent\n\
         near 1); nGP-S^0.9's grow faster, and the gap widens at higher E."
    );
}
