//! Scheme shootout: every load-balancing scheme of the paper (plus the
//! Sec. 8 related-work baselines) on one 15-puzzle workload.
//!
//! ```text
//! cargo run --release --example scheme_shootout [P] [scramble_len]
//! ```

use simd_tree_search::analysis::table::{fmt_e, TextTable};
use simd_tree_search::core::nn::{run_nearest_neighbor, NnConfig};
use simd_tree_search::prelude::*;

fn main() {
    let mut args = std::env::args().skip(1);
    let p: usize = args.next().and_then(|a| a.parse().ok()).unwrap_or(1024);
    let walk: usize = args.next().and_then(|a| a.parse().ok()).unwrap_or(70);

    let instance = puzzle15::scrambled(23, walk);
    let puzzle = puzzle15::Puzzle15::new(instance.board());
    let ida = tree::ida::ida_star(&puzzle, 80);
    let bound = ida.solution_cost.expect("solvable");
    let w = ida.final_iteration().expanded;
    println!("workload: scramble(23, {walk}), final IDA* bound {bound}, W = {w}, P = {p}\n");

    let bounded = tree::problem::BoundedProblem::new(&puzzle, bound);
    let xo = analysis::optimal_static_trigger(&analysis::TriggerParams::new(
        w,
        p,
        CostModel::cm2().lb_ratio(p),
    ));

    let mut t = TextTable::new(vec!["scheme", "Nexpand", "Nlb", "transfers", "E", "speedup"]);
    let schemes: Vec<(String, Scheme)> = vec![
        (format!("GP-S^{xo:.2} (x_o)"), Scheme::gp_static(xo)),
        ("GP-S^0.50".into(), Scheme::gp_static(0.5)),
        ("nGP-S^0.90".into(), Scheme::ngp_static(0.9)),
        ("GP-S^0.90".into(), Scheme::gp_static(0.9)),
        ("GP-D^K".into(), Scheme::gp_dk()),
        ("nGP-D^K".into(), Scheme::ngp_dk()),
        ("GP-D^P".into(), Scheme::gp_dp()),
        ("nGP-D^P".into(), Scheme::ngp_dp()),
        ("FESS".into(), Scheme::fess()),
        ("FEGS".into(), Scheme::fegs()),
    ];
    for (name, scheme) in schemes {
        let out = run(&bounded, &EngineConfig::new(p, scheme, CostModel::cm2()));
        assert_eq!(out.report.nodes_expanded, w);
        t.row(vec![
            name,
            out.report.n_expand.to_string(),
            out.report.n_lb.to_string(),
            out.report.n_transfers.to_string(),
            fmt_e(out.report.efficiency),
            format!("{:.1}", out.report.speedup()),
        ]);
    }
    let nn = run_nearest_neighbor(&bounded, &NnConfig::new(p, CostModel::cm2()));
    t.row(vec![
        "ring-NN".into(),
        nn.report.n_expand.to_string(),
        nn.report.n_lb.to_string(),
        nn.report.n_transfers.to_string(),
        fmt_e(nn.report.efficiency),
        format!("{:.1}", nn.report.speedup()),
    ]);
    println!("{t}");
}
