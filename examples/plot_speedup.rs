//! Render a speedup chart with the built-in SVG plotting crate: GP-D^K vs
//! nGP-S^0.9 vs ring nearest-neighbor across machine sizes, on one
//! 15-puzzle workload. Writes `results/speedup.svg`.
//!
//! ```text
//! cargo run --release --example plot_speedup
//! ```

use simd_tree_search::core::nn::{run_nearest_neighbor, NnConfig};
use simd_tree_search::prelude::*;
use simd_tree_search::viz::{Chart, Scale, Series};

fn main() {
    let instance = puzzle15::scrambled(23, 70);
    let puzzle = puzzle15::Puzzle15::new(instance.board());
    let ida = tree::ida::ida_star(&puzzle, 80);
    let bound = ida.solution_cost.expect("solvable");
    let w = ida.final_iteration().expanded;
    println!("workload W = {w} (bound {bound})");

    let ps = [64usize, 128, 256, 512, 1024, 2048, 4096];
    let mut chart = Chart::new(
        format!("Speedup on a simulated CM-2 (15-puzzle, W = {w})"),
        "processors P",
        "speedup",
    );
    chart.x_scale(Scale::Log2).y_scale(Scale::Log2);

    let bounded = tree::problem::BoundedProblem::new(&puzzle, bound);
    for (name, scheme) in [("GP-D^K", Scheme::gp_dk()), ("nGP-S^0.90", Scheme::ngp_static(0.9))] {
        let pts: Vec<(f64, f64)> = ps
            .iter()
            .map(|&p| {
                let out = run(&bounded, &EngineConfig::new(p, scheme, CostModel::cm2()));
                println!("{name:>11} P={p:5}: speedup {:.1}", out.report.speedup());
                (p as f64, out.report.speedup())
            })
            .collect();
        chart.add(Series::line(name, pts));
    }
    let pts: Vec<(f64, f64)> = ps
        .iter()
        .map(|&p| {
            let out = run_nearest_neighbor(&bounded, &NnConfig::new(p, CostModel::cm2()));
            println!("{:>11} P={p:5}: speedup {:.1}", "ring-NN", out.report.speedup());
            (p as f64, out.report.speedup())
        })
        .collect();
    chart.add(Series::line("ring-NN", pts));
    // The ideal line for reference.
    chart.add(Series::line("ideal", ps.iter().map(|&p| (p as f64, p as f64)).collect()));

    std::fs::create_dir_all("results").expect("create results dir");
    std::fs::write("results/speedup.svg", chart.render()).expect("write svg");
    println!("wrote results/speedup.svg");
}
