//! Bring your own search tree: implement [`TreeProblem`] for N-queens and
//! run it under every machine model — the "unstructured tree computations"
//! the paper's introduction motivates are exactly this shape (backtracking
//! over an irregular space).
//!
//! ```text
//! cargo run --release --example custom_problem [N]
//! ```

use simd_tree_search::mimd::{run_mimd, MimdConfig, StealPolicy};
use simd_tree_search::prelude::*;

/// Partial placement: one queen per filled row, column positions packed.
#[derive(Clone, Debug)]
struct Placement {
    cols: Vec<u8>,
}

impl CkptNode for Placement {
    fn encode_node(&self, out: &mut Vec<u8>) {
        self.cols.encode_node(out);
    }
    fn decode_node(r: &mut tree::Reader<'_>) -> Result<Self, tree::CodecError> {
        Ok(Self { cols: Vec::decode_node(r)? })
    }
}

/// The N-queens backtracking tree: children = safe placements in the next
/// row. Goals are complete placements.
struct NQueens {
    n: u8,
}

impl NQueens {
    fn safe(&self, cols: &[u8], col: u8) -> bool {
        let row = cols.len() as i32;
        cols.iter().enumerate().all(|(r, &c)| {
            let (r, c) = (r as i32, c as i32);
            c != col as i32 && (row - r) != (col as i32 - c).abs()
        })
    }
}

impl TreeProblem for NQueens {
    type Node = Placement;

    fn root(&self) -> Placement {
        Placement { cols: Vec::new() }
    }

    fn expand(&self, node: &Placement, out: &mut Vec<Placement>) {
        if node.cols.len() == self.n as usize {
            return;
        }
        for col in 0..self.n {
            if self.safe(&node.cols, col) {
                let mut cols = node.cols.clone();
                cols.push(col);
                out.push(Placement { cols });
            }
        }
    }

    fn is_goal(&self, node: &Placement) -> bool {
        node.cols.len() == self.n as usize
    }
}

fn main() {
    let n: u8 = std::env::args().nth(1).and_then(|a| a.parse().ok()).unwrap_or(11);
    let problem = NQueens { n };

    // Serial baseline: W and the solution count.
    let serial = serial_dfs(&problem);
    println!("{n}-queens: W = {} nodes, {} solutions (serial DFS)", serial.expanded, serial.goals);

    // SIMD lockstep machine, GP-D^K.
    for p in [64usize, 512] {
        let out = run(&problem, &EngineConfig::new(p, Scheme::gp_dk(), CostModel::cm2()));
        assert_eq!(out.report.nodes_expanded, serial.expanded);
        assert_eq!(out.goals, serial.goals, "every solution found exactly once");
        println!(
            "SIMD  P={p:4} GP-D^K : E = {:.2}, speedup {:6.1}, {} balancing phases",
            out.report.efficiency,
            out.report.speedup(),
            out.report.n_lb
        );
    }

    // MIMD work stealing on the same tree.
    for p in [64usize, 512] {
        let m =
            run_mimd(&problem, &MimdConfig::new(p, StealPolicy::RandomPolling, CostModel::cm2()));
        assert_eq!(m.nodes_expanded, serial.expanded);
        println!(
            "MIMD  P={p:4} RP     : E = {:.2}, {} steals over {} requests",
            m.efficiency, m.transfers, m.requests
        );
    }
}
