//! # simd-tree-search
//!
//! A reproduction of **Karypis & Kumar, "Unstructured Tree Search on SIMD
//! Parallel Computers: A Summary of Results" (SC 1992 / TR 92-21)** as a
//! Rust workspace: the load-balancing schemes (GP/nGP matching ×
//! static/D^P/D^K triggering), a lockstep CM-2-style machine simulator, the
//! 15-puzzle IDA\* workload, a MIMD work-stealing baseline, and the
//! isoefficiency analysis apparatus — plus a benchmark harness that
//! regenerates every table and figure of the paper's evaluation.
//!
//! This crate is the facade: it re-exports the workspace crates under
//! stable module names and provides a [`prelude`].
//!
//! ## Quick start
//!
//! Simulate a parallel depth-first search of a 15-puzzle IDA\* iteration on
//! 1024 lockstep processors with the paper's best scheme (GP matching,
//! D^K triggering):
//!
//! ```
//! use simd_tree_search::prelude::*;
//!
//! // A small instance: scramble the solved board by a 20-move random walk.
//! let instance = puzzle15::scrambled(7, 20);
//! let puzzle = puzzle15::Puzzle15::new(instance.board());
//!
//! // Serial IDA* defines the workload (the final, goal-containing
//! // iteration) and the problem size W.
//! let ida = tree::ida::ida_star(&puzzle, 80);
//! let bound = ida.solution_cost.expect("instance is solvable");
//! let w = ida.final_iteration().expanded;
//!
//! // Parallel search of the same iteration under GP-D^K.
//! let bounded = tree::problem::BoundedProblem::new(&puzzle, bound);
//! let cfg = EngineConfig::new(1024, Scheme::gp_dk(), CostModel::cm2());
//! let outcome = run(&bounded, &cfg);
//!
//! // Anomaly-free: the parallel search expanded exactly W nodes.
//! assert_eq!(outcome.report.nodes_expanded, w);
//! assert!(outcome.goals >= 1);
//! ```
//!
//! ## Crate map
//!
//! | module | contents |
//! |---|---|
//! | [`core`] | schemes, triggers, matchers, the SIMD engine (`uts-core`) |
//! | [`machine`] | cost models, virtual clock, efficiency accounting (`uts-machine`) |
//! | [`tree`] | problem traits, splittable stacks, DFS/IDA\*/DFBB (`uts-tree`) |
//! | [`puzzle15`] | the 15-puzzle domain and benchmark instances (`uts-puzzle15`) |
//! | [`synth`] | seeded synthetic unstructured trees (`uts-synth`) |
//! | [`synthgen`] | hash-chained on-the-fly UTS generator trees (`uts-synthgen`) |
//! | [`scan`] | Blelloch scans and rendezvous matching (`uts-scan`) |
//! | [`mimd`] | asynchronous work-stealing baseline (`uts-mimd`) |
//! | [`analysis`] | isoefficiency analysis, eq. 18, contour fits (`uts-analysis`) |
//! | [`problems`] | N-queens, DPLL SAT, knapsack DFBB domains (`uts-problems`) |
//! | [`par`] | real multicore work-stealing DFS executor (`uts-par`) |
//! | [`viz`] | dependency-free SVG chart rendering (`uts-viz`) |
//! | [`net`] | hypercube/mesh routing simulation validating the t_lb models (`uts-net`) |
//! | [`ckpt`] | versioned snapshot format, checkpoint policies, fault injection (`uts-ckpt`) |
//! | [`serve`] | HTTP/JSON job server with preemptive checkpoint scheduling (`uts-serve`) |

pub use uts_analysis as analysis;
pub use uts_ckpt as ckpt;
pub use uts_core as core;
pub use uts_machine as machine;
pub use uts_mimd as mimd;
pub use uts_net as net;
pub use uts_par as par;
pub use uts_problems as problems;
pub use uts_puzzle15 as puzzle15;
pub use uts_scan as scan;
pub use uts_serve as serve;
pub use uts_synth as synth;
pub use uts_synthgen as synthgen;
pub use uts_tree as tree;
pub use uts_viz as viz;

/// The names almost every user needs.
pub mod prelude {
    pub use uts_ckpt::{CheckpointPolicy, CkptError, EngineSnapshot, FaultPlan, PreemptSignal};
    pub use uts_core::{
        config_fingerprint, resume_from_bytes, resume_with, run, run_fused, run_par, run_reference,
        run_report_json, run_with, CheckpointCfg, CheckpointSink, EngineConfig, EngineKind,
        Matching, Outcome, Scheme, TransferMode, Trigger,
    };
    pub use uts_machine::{
        CostModel, DonationSpread, LbCostBreakdown, LbPhaseRecord, Ledger, Report, SimdMachine,
        Topology, TriggerFiring, TriggerKind,
    };
    pub use uts_tree::{
        serial_dfs, CkptNode, HeuristicProblem, SearchStack, SplitPolicy, TreeProblem,
    };

    pub use uts_serve::{outcome_digest, JobServer, JobSpec, JobState, ServeConfig, ServeError};

    pub use uts_synthgen::{find_gen_tree, GenFamily, GenNode, GenTree};

    pub use crate::{
        analysis, ckpt, core, machine, mimd, net, par, problems, puzzle15, scan, serve, synth,
        synthgen, tree,
    };
}

#[cfg(test)]
mod tests {
    #[test]
    fn facade_reexports_resolve() {
        // Compile-time check that the public paths exist and line up.
        let _ = crate::core::Scheme::gp_dk();
        let _ = crate::machine::CostModel::cm2();
        let _ = crate::analysis::DEFAULT_ALPHA;
    }
}
