//! Facade-level domain tests: every bundled problem domain agrees across
//! every machine (serial, lockstep SIMD, asynchronous MIMD, real host
//! threads), and the domain-specific invariants hold end to end.

use simd_tree_search::mimd::{run_mimd, MimdConfig, StealPolicy};
use simd_tree_search::par::{deque_dfs, rayon_dfs};
use simd_tree_search::prelude::*;
use simd_tree_search::problems::knapsack::random_instance;
use simd_tree_search::problems::{random_3sat, Dpll, Knapsack, NQueens, Side, Sliding};
use simd_tree_search::puzzle15::{scrambled, Puzzle15};
use simd_tree_search::tree::ida::ida_star;
use simd_tree_search::tree::problem::BoundedProblem;

/// Run a problem on all four machines and demand identical node and goal
/// counts.
fn agree_everywhere<P: TreeProblem>(problem: &P, label: &str) {
    let serial = serial_dfs(problem);
    let simd = run(problem, &EngineConfig::new(128, Scheme::gp_dk(), CostModel::cm2()));
    assert_eq!(simd.report.nodes_expanded, serial.expanded, "{label}: SIMD nodes");
    assert_eq!(simd.goals, serial.goals, "{label}: SIMD goals");

    let mimd =
        run_mimd(problem, &MimdConfig::new(64, StealPolicy::GlobalRoundRobin, CostModel::cm2()));
    assert_eq!(mimd.nodes_expanded, serial.expanded, "{label}: MIMD nodes");
    assert_eq!(mimd.goals, serial.goals, "{label}: MIMD goals");

    let host = deque_dfs(problem, 3);
    assert_eq!(host.expanded, serial.expanded, "{label}: pool nodes");
    assert_eq!(host.goals, serial.goals, "{label}: pool goals");

    let fj = rayon_dfs(problem, 4);
    assert_eq!(fj.expanded, serial.expanded, "{label}: fork-join nodes");
    assert_eq!(fj.goals, serial.goals, "{label}: fork-join goals");
}

#[test]
fn nqueens_agrees_everywhere() {
    agree_everywhere(&NQueens::new(8), "8-queens");
}

#[test]
fn sat_agrees_everywhere() {
    agree_everywhere(&Dpll::new(random_3sat(2, 14, 50)), "3-SAT 14x50");
}

#[test]
fn knapsack_agrees_everywhere() {
    agree_everywhere(&random_instance(4, 18, 25), "knapsack 18 items");
}

#[test]
fn puzzle_iteration_agrees_everywhere() {
    // A short scramble keeps this in the fast default tier; the deep
    // 50-step scramble runs in the CI `--ignored` job below.
    let inst = scrambled(17, 28);
    let puzzle = Puzzle15::new(inst.board());
    let bound = ida_star(&puzzle, 60).solution_cost.expect("solvable");
    let bp = BoundedProblem::new(&puzzle, bound);
    agree_everywhere(&bp, "15-puzzle iteration");
}

#[test]
#[ignore = "heavy 15-puzzle workload; run with --ignored (CI does)"]
fn deep_puzzle_iteration_agrees_everywhere() {
    let inst = scrambled(17, 50);
    let puzzle = Puzzle15::new(inst.board());
    let bound = ida_star(&puzzle, 70).solution_cost.expect("solvable");
    let bp = BoundedProblem::new(&puzzle, bound);
    agree_everywhere(&bp, "deep 15-puzzle iteration");
}

#[test]
fn generalized_sliding_agrees_everywhere() {
    // An 8-puzzle four moves from goal: a small complete IDA* iteration.
    let p = Sliding::new(Side::new(3), vec![3, 4, 1, 6, 0, 2, 7, 8, 5]);
    let bound = ida_star(&p, 40).solution_cost.expect("solvable");
    let bp = BoundedProblem::new(&p, bound);
    agree_everywhere(&bp, "8-puzzle iteration");
}

#[test]
fn knapsack_search_equals_dp_through_the_facade() {
    for seed in [11u64, 13] {
        let k = random_instance(seed, 17, 28);
        assert_eq!(k.optimum_via_search(), k.dp_optimum(), "seed {seed}");
    }
}

#[test]
fn fegs_needs_no_more_memory_than_fess() {
    // FEGS equalizes node counts, so its peak per-PE stack should not
    // exceed FESS's lopsided peaks (Sec. 8's memory discussion).
    let k: Knapsack = random_instance(6, 20, 30);
    let fess = run(&k, &EngineConfig::new(64, Scheme::fess(), CostModel::cm2()));
    let fegs = run(&k, &EngineConfig::new(64, Scheme::fegs(), CostModel::cm2()));
    assert!(
        fegs.peak_stack_nodes <= fess.peak_stack_nodes * 2,
        "FEGS peak {} vs FESS peak {}",
        fegs.peak_stack_nodes,
        fess.peak_stack_nodes
    );
}
