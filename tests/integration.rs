//! Cross-crate integration tests: the paper's structural claims checked
//! end-to-end through the public facade API.

use simd_tree_search::analysis;
use simd_tree_search::core::nn::{run_nearest_neighbor, NnConfig};
use simd_tree_search::mimd::{run_mimd, MimdConfig, StealPolicy};
use simd_tree_search::prelude::*;
use simd_tree_search::puzzle15::{scrambled, Puzzle15};
use simd_tree_search::synth::GeometricTree;
use simd_tree_search::tree::ida::ida_star;
use simd_tree_search::tree::problem::BoundedProblem;

/// A mid-sized 15-puzzle workload (~100k nodes) shared by the heavy
/// (`#[ignore]`d) tests. The IDA* pre-pass dominates each test's debug
/// wall time, so it runs once and is cached — `Puzzle15` is `Copy`.
fn puzzle_workload() -> (Puzzle15, u32, u64) {
    static WORKLOAD: std::sync::OnceLock<(Puzzle15, u32, u64)> = std::sync::OnceLock::new();
    *WORKLOAD.get_or_init(|| {
        let inst = scrambled(23, 60);
        let puzzle = Puzzle15::new(inst.board());
        let ida = ida_star(&puzzle, 70);
        let bound = ida.solution_cost.expect("solvable");
        let w = ida.final_iteration().expanded;
        (puzzle, bound, w)
    })
}

fn all_schemes() -> Vec<Scheme> {
    let mut v: Vec<Scheme> = Scheme::table1(0.8).map(|(_, s)| s).to_vec();
    v.extend([Scheme::gp_static(0.5), Scheme::ngp_static(0.95), Scheme::fess(), Scheme::fegs()]);
    v
}

#[test]
#[ignore = "heavy 15-puzzle workload; run with --ignored (CI does)"]
fn puzzle_search_is_anomaly_free_under_every_scheme() {
    let (puzzle, bound, w) = puzzle_workload();
    let bp = BoundedProblem::new(&puzzle, bound);
    let serial_goals = serial_dfs(&bp).goals;
    for scheme in all_schemes() {
        let out = run(&bp, &EngineConfig::new(256, scheme, CostModel::cm2()));
        assert_eq!(out.report.nodes_expanded, w, "{}", scheme.name());
        assert_eq!(out.goals, serial_goals, "{}", scheme.name());
        assert!(out.report.accounting_identity_holds(), "{}", scheme.name());
    }
}

#[test]
#[ignore = "heavy 15-puzzle workload; run with --ignored (CI does)"]
fn balancing_phases_never_exceed_expansion_cycles() {
    // Structural guarantee from Sec. 2.1: at least one expansion cycle runs
    // between consecutive balancing phases.
    let (puzzle, bound, _) = puzzle_workload();
    let bp = BoundedProblem::new(&puzzle, bound);
    for scheme in all_schemes() {
        let out = run(&bp, &EngineConfig::new(512, scheme, CostModel::cm2()));
        assert!(
            out.report.n_lb <= out.report.n_expand,
            "{}: {} phases vs {} cycles",
            scheme.name(),
            out.report.n_lb,
            out.report.n_expand
        );
    }
}

#[test]
#[ignore = "heavy 15-puzzle workload; run with --ignored (CI does)"]
fn gp_beats_ngp_at_high_threshold() {
    // The headline Table 2 effect at a paper-like configuration.
    let (puzzle, bound, _) = puzzle_workload();
    let bp = BoundedProblem::new(&puzzle, bound);
    let gp = run(&bp, &EngineConfig::new(1024, Scheme::gp_static(0.9), CostModel::cm2()));
    let ngp = run(&bp, &EngineConfig::new(1024, Scheme::ngp_static(0.9), CostModel::cm2()));
    assert!(gp.report.n_lb < ngp.report.n_lb, "GP {} vs nGP {}", gp.report.n_lb, ngp.report.n_lb);
    assert!(
        gp.report.efficiency >= ngp.report.efficiency,
        "GP {} vs nGP {}",
        gp.report.efficiency,
        ngp.report.efficiency
    );
}

#[test]
#[ignore = "heavy 15-puzzle workload; run with --ignored (CI does)"]
fn dk_overheads_within_twice_the_best_static() {
    // Sec. 6.2: (T_idle + T_lb) under D^K is bounded by twice the optimal
    // static trigger's. We compare against the best of a static grid (an
    // upper bound on the optimum's overhead... i.e. the grid's best is >=
    // the true optimum, making this check conservative in the right
    // direction) with a small tolerance for the init-phase difference.
    let (puzzle, bound, _) = puzzle_workload();
    let bp = BoundedProblem::new(&puzzle, bound);
    let p = 512;
    let dk = run(&bp, &EngineConfig::new(p, Scheme::gp_dk(), CostModel::cm2()));
    let best_static_overhead = [0.5, 0.6, 0.7, 0.8, 0.85, 0.9, 0.95]
        .iter()
        .map(|&x| {
            let o = run(&bp, &EngineConfig::new(p, Scheme::gp_static(x), CostModel::cm2()));
            o.report.t_idle + o.report.t_lb
        })
        .min()
        .unwrap();
    let ratio = analysis::models::dk_overhead_ratio(
        dk.report.t_idle,
        dk.report.t_lb,
        best_static_overhead,
        0,
    );
    assert!(ratio <= 2.2, "DK overhead ratio {ratio:.2} exceeds the paper's 2x bound (+10%)");
}

#[test]
#[ignore = "heavy 15-puzzle workload; run with --ignored (CI does)"]
fn analytic_optimal_trigger_is_near_empirical_argmax() {
    let (puzzle, bound, w) = puzzle_workload();
    let bp = BoundedProblem::new(&puzzle, bound);
    let p = 512;
    let xo = analysis::optimal_static_trigger(&analysis::TriggerParams::new(
        w,
        p,
        CostModel::cm2().lb_ratio(p),
    ));
    // The practical claim of Table 3: running at the analytic x_o achieves
    // nearly the best efficiency any static trigger can (the argmax itself
    // can sit on a flat plateau, and eq. 18's delta = 0 approximation
    // overshoots when W/P is small — the paper notes the true optimum is
    // then smaller).
    let e_at_xo =
        run(&bp, &EngineConfig::new(p, Scheme::gp_static(xo), CostModel::cm2())).report.efficiency;
    let grid = [0.5, 0.6, 0.7, 0.8, 0.85, 0.9, 0.95];
    let best_e = grid
        .iter()
        .map(|&x| {
            run(&bp, &EngineConfig::new(p, Scheme::gp_static(x), CostModel::cm2()))
                .report
                .efficiency
        })
        .fold(0.0f64, f64::max);
    // At this integration-test scale (W/P ≈ 200, far below the paper's
    // operating point) the approximation is loose; the tight check runs at
    // paper scale in `uts-bench --bin tables -- table3`.
    assert!(
        e_at_xo >= best_e - 0.10,
        "E at analytic x_o = {xo:.2} is {e_at_xo:.2}, grid best {best_e:.2}"
    );
}

/// Fast default-tier stand-in for the heavy puzzle tests above: the
/// anomaly-free contract and the `N_lb <= N_expand` structural bound on a
/// small scramble, one scheme per trigger family. The full ~100k-node
/// versions are `#[ignore]`d and run in the CI `--ignored` job.
#[test]
fn puzzle_smoke_is_anomaly_free() {
    let inst = scrambled(23, 30);
    let puzzle = Puzzle15::new(inst.board());
    let ida = ida_star(&puzzle, 60);
    let bound = ida.solution_cost.expect("solvable");
    let w = ida.final_iteration().expanded;
    let bp = BoundedProblem::new(&puzzle, bound);
    let serial_goals = serial_dfs(&bp).goals;
    for scheme in [Scheme::gp_static(0.8), Scheme::gp_dk(), Scheme::fegs()] {
        let out = run(&bp, &EngineConfig::new(128, scheme, CostModel::cm2()));
        assert_eq!(out.report.nodes_expanded, w, "{}", scheme.name());
        assert_eq!(out.goals, serial_goals, "{}", scheme.name());
        assert!(out.report.accounting_identity_holds(), "{}", scheme.name());
        assert!(out.report.n_lb <= out.report.n_expand, "{}", scheme.name());
    }
}

#[test]
fn dp_without_init_phase_can_starve() {
    // Sec. 6.1 pathology: with the root on one PE and no initial
    // distribution, w = t so w >= A (t + L) never fires while L > 0.
    let tree = GeometricTree { seed: 2, b_max: 8, depth_limit: 6 };
    let mut cfg = EngineConfig::new(64, Scheme::gp_dp(), CostModel::cm2());
    cfg.init_fraction = None;
    let out = run(&tree, &cfg);
    assert_eq!(out.report.n_lb, 0, "D^P must never trigger from a single active PE");
    // The search still terminates (serially on one processor).
    assert_eq!(out.report.nodes_expanded, serial_dfs(&tree).expanded);
}

#[test]
fn dk_recovers_without_init_phase() {
    // D^K accumulates idle time regardless of A, so it balances even from
    // the degenerate start.
    let tree = GeometricTree { seed: 2, b_max: 8, depth_limit: 6 };
    let mut cfg = EngineConfig::new(64, Scheme::gp_dk(), CostModel::cm2());
    cfg.init_fraction = None;
    let out = run(&tree, &cfg);
    assert!(out.report.n_lb > 0, "D^K must eventually balance");
    assert!(out.report.efficiency > 0.3);
}

#[test]
fn mimd_and_simd_search_the_same_space() {
    let tree = GeometricTree { seed: 3, b_max: 8, depth_limit: 6 };
    let w = serial_dfs(&tree).expanded;
    let simd = run(&tree, &EngineConfig::new(128, Scheme::gp_dk(), CostModel::cm2()));
    let mimd =
        run_mimd(&tree, &MimdConfig::new(128, StealPolicy::GlobalRoundRobin, CostModel::cm2()));
    let nn = run_nearest_neighbor(&tree, &NnConfig::new(128, CostModel::cm2()));
    assert_eq!(simd.report.nodes_expanded, w);
    assert_eq!(mimd.nodes_expanded, w);
    assert_eq!(nn.report.nodes_expanded, w);
}

#[test]
fn mimd_is_at_least_as_efficient_as_lockstep_at_same_point() {
    // MIMD has no lockstep idling, so at the same (W, P) it should not be
    // (much) worse — the paper's Sec. 9 explains SIMD pays extra idling.
    let tree = GeometricTree { seed: 11, b_max: 8, depth_limit: 7 };
    let simd = run(&tree, &EngineConfig::new(256, Scheme::gp_static(0.9), CostModel::cm2()));
    let mimd = run_mimd(&tree, &MimdConfig::new(256, StealPolicy::RandomPolling, CostModel::cm2()));
    assert!(
        mimd.efficiency >= simd.report.efficiency - 0.05,
        "MIMD {:.2} vs SIMD {:.2}",
        mimd.efficiency,
        simd.report.efficiency
    );
}

#[test]
#[ignore = "heavy 15-puzzle workload; run with --ignored (CI does)"]
fn higher_balancing_cost_helps_dk_over_dp() {
    // The Table 5 effect, at integration-test scale.
    let (puzzle, bound, _) = puzzle_workload();
    let bp = BoundedProblem::new(&puzzle, bound);
    let cost = CostModel::cm2().with_lb_multiplier(16);
    let dp = run(&bp, &EngineConfig::new(512, Scheme::gp_dp(), cost));
    let dk = run(&bp, &EngineConfig::new(512, Scheme::gp_dk(), cost));
    assert!(
        dk.report.efficiency >= dp.report.efficiency - 0.02,
        "DK {:.2} must not lose to DP {:.2} at 16x cost",
        dk.report.efficiency,
        dp.report.efficiency
    );
}

#[test]
#[ignore = "heavy 15-puzzle workload; run with --ignored (CI does)"]
fn gp_spreads_the_donation_burden_at_paper_like_scale() {
    // The Sec. 2.2 claim measured end-to-end through the ledger at
    // P >= 1024 on a Table-2-style workload: GP's rotating global pointer
    // leaves every donor with n or n+1 donations, so its max/mean donor
    // load stays within 2x of perfectly even; nGP's fixed enumeration
    // piles the burden onto low-index PEs and sends the ratio far above.
    let (puzzle, bound, _) = puzzle_workload();
    let bp = BoundedProblem::new(&puzzle, bound);
    let gp =
        run(&bp, &EngineConfig::new(1024, Scheme::gp_static(0.9), CostModel::cm2()).with_ledger());
    let ngp =
        run(&bp, &EngineConfig::new(1024, Scheme::ngp_static(0.9), CostModel::cm2()).with_ledger());
    let sg = gp.ledger.as_ref().expect("ledger requested").donation_spread();
    let sn = ngp.ledger.as_ref().expect("ledger requested").donation_spread();
    assert!(sg.total > 0, "the workload must trigger balancing at P=1024");
    assert!(
        sg.max_over_mean <= 2.0,
        "GP donor max/mean {:.2} must stay within 2x of even (max {} over {} donors)",
        sg.max_over_mean,
        sg.max,
        sg.donors
    );
    assert!(
        sn.max_over_mean > 2.0,
        "nGP donor max/mean {:.2} should be well above GP's {:.2}",
        sn.max_over_mean,
        sg.max_over_mean
    );
    assert!(sg.gini < sn.gini, "GP gini {:.3} vs nGP gini {:.3}", sg.gini, sn.gini);
}

/// The exhaustive CI tier runs this under `RAYON_NUM_THREADS=1` and `=4`:
/// the par engine resolves its worker count from that variable when no
/// explicit thread count is pinned, and the ledger (like the whole
/// `Outcome`) must not depend on it.
#[test]
#[ignore = "heavy 15-puzzle workload; run with --ignored (CI does)"]
fn ledger_is_identical_across_engines_under_ambient_threads() {
    let (puzzle, bound, _) = puzzle_workload();
    let bp = BoundedProblem::new(&puzzle, bound);
    for scheme in [Scheme::gp_dk(), Scheme::ngp_static(0.9)] {
        let cfg = EngineConfig::new(512, scheme, CostModel::cm2()).with_ledger();
        let reference = run_reference(&bp, &cfg);
        assert!(reference.ledger.is_some());
        for kind in [EngineKind::Fused, EngineKind::Macro, EngineKind::Par] {
            let got = run_with(&bp, &cfg.clone().with_engine(kind));
            assert_eq!(got, reference, "{} diverged from reference", kind.name());
        }
    }
}

#[test]
#[ignore = "heavy 15-puzzle workload; run with --ignored (CI does)"]
fn speedup_grows_with_machine_size_until_saturation() {
    let (puzzle, bound, _) = puzzle_workload();
    let bp = BoundedProblem::new(&puzzle, bound);
    let mut last = 0.0;
    for p in [16usize, 64, 256, 1024] {
        let out = run(&bp, &EngineConfig::new(p, Scheme::gp_dk(), CostModel::cm2()));
        let s = out.report.speedup();
        assert!(s > last, "speedup must keep growing on this workload: {s} after {last}");
        last = s;
    }
}
