//! Schedule equivalence: the event-horizon macro engine (`uts_core::run`,
//! the default) and the fused single-cycle engine (`uts_core::run_fused`)
//! must both produce a **bit-identical** lockstep schedule to the
//! reference two-sweep executor (`uts_core::run_reference`) — same
//! counters, same virtual times, same traces, same per-PE donation counts.
//! The lockstep schedule is the correctness contract of the whole repo:
//! every table and figure regenerator sits on top of it.

use proptest::prelude::*;
use simd_tree_search::prelude::*;
use simd_tree_search::synth::{BinomialTree, GeometricTree};

fn arb_scheme() -> impl Strategy<Value = Scheme> {
    prop_oneof![
        (0.05f64..0.95).prop_map(Scheme::gp_static),
        (0.05f64..0.95).prop_map(Scheme::ngp_static),
        Just(Scheme::gp_dk()),
        Just(Scheme::ngp_dk()),
        Just(Scheme::gp_dp()),
        Just(Scheme::ngp_dp()),
        Just(Scheme::fess()),
        Just(Scheme::fegs()),
    ]
}

fn arb_split() -> impl Strategy<Value = SplitPolicy> {
    prop_oneof![Just(SplitPolicy::Bottom), Just(SplitPolicy::Half), Just(SplitPolicy::Top)]
}

/// Every observable of the two outcomes must coincide. Plain asserts so the
/// helper is usable from property and unit tests alike (a panic fails a
/// proptest case the same way a `prop_assert!` does).
fn assert_equivalent(label: &str, got: &Outcome, reference: &Outcome) {
    assert_eq!(got.report.n_expand, reference.report.n_expand, "{label}: n_expand");
    assert_eq!(got.report.n_lb, reference.report.n_lb, "{label}: n_lb");
    assert_eq!(got.report.n_transfers, reference.report.n_transfers, "{label}: n_transfers");
    assert_eq!(
        got.report.nodes_expanded, reference.report.nodes_expanded,
        "{label}: nodes_expanded"
    );
    assert_eq!(got.report.t_par, reference.report.t_par, "{label}: t_par");
    assert_eq!(got.report.t_calc, reference.report.t_calc, "{label}: t_calc");
    assert_eq!(got.report.t_idle, reference.report.t_idle, "{label}: t_idle");
    assert_eq!(got.report.t_lb, reference.report.t_lb, "{label}: t_lb");
    assert_eq!(got.report.active_trace, reference.report.active_trace, "{label}: active_trace");
    assert_eq!(got.goals, reference.goals, "{label}: goals");
    assert_eq!(got.truncated, reference.truncated, "{label}: truncated");
    assert_eq!(got.donations, reference.donations, "{label}: donations");
    assert_eq!(got.peak_stack_nodes, reference.peak_stack_nodes, "{label}: peak_stack_nodes");
}

/// Run all four engines on the same configuration and require bitwise
/// agreement of macro, fused and par against the reference oracle. The
/// par engine runs with two workers and a zeroed fan-out threshold so the
/// sharded burst path is exercised even on trees far too small for the
/// fan-out heuristic.
fn assert_all_engines_agree<P: simd_tree_search::tree::TreeProblem>(tree: &P, cfg: &EngineConfig) {
    let reference = run_reference(tree, cfg);
    assert_equivalent("macro", &run(tree, cfg), &reference);
    assert_equivalent("fused", &run_fused(tree, cfg), &reference);
    let forced = cfg.clone().with_threads(2).with_fan_out_min_work(0);
    assert_equivalent("par", &run_par(tree, &forced), &reference);
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Schemes × machine sizes × seeds: exhaustive runs schedule
    /// identically under the macro, fused and reference engines, down to
    /// the Fig. 8 active trace and every per-PE donation counter.
    #[test]
    fn engines_match_reference_schedule(
        seed in 0u64..400,
        scheme in arb_scheme(),
        split in arb_split(),
        p_log in 0u32..9,
    ) {
        let tree = GeometricTree { seed, b_max: 6, depth_limit: 5 };
        let p = 1usize << p_log;
        let cfg = EngineConfig::new(p, scheme, CostModel::cm2())
            .with_split(split)
            .with_trace();
        assert_all_engines_agree(&tree, &cfg);
    }

    /// Same contract on goal-bearing binomial trees, including the
    /// stop-on-goal early exit.
    #[test]
    fn engines_match_reference_with_goals(
        seed in 0u64..200,
        scheme in arb_scheme(),
        stop_on_goal in any::<bool>(),
        p_log in 2u32..8,
    ) {
        let tree = BinomialTree::with_q(seed, 16, 4, 0.2);
        let mut cfg = EngineConfig::new(1usize << p_log, scheme, CostModel::cm2()).with_trace();
        cfg.stop_on_goal = stop_on_goal;
        assert_all_engines_agree(&tree, &cfg);
    }

    /// The `max_cycles` safety valve truncates all three engines at the
    /// same cycle (the macro engine must clamp its horizon to the budget).
    #[test]
    fn engines_match_reference_when_truncated(
        seed in 0u64..100,
        scheme in arb_scheme(),
        max_cycles in 0u64..60,
        p_log in 0u32..7,
    ) {
        let tree = GeometricTree { seed, b_max: 6, depth_limit: 5 };
        let mut cfg = EngineConfig::new(1usize << p_log, scheme, CostModel::cm2()).with_trace();
        cfg.max_cycles = Some(max_cycles);
        assert_all_engines_agree(&tree, &cfg);
    }
}

/// Non-property spot check covering every Table 1 scheme at a fixed larger
/// P, so a regression names the scheme that diverged.
#[test]
fn table1_schemes_schedule_identically_at_p256() {
    let tree = GeometricTree { seed: 17, b_max: 8, depth_limit: 6 };
    for (name, scheme) in Scheme::table1(0.75) {
        let cfg = EngineConfig::new(256, scheme, CostModel::cm2()).with_trace();
        let reference = run_reference(&tree, &cfg);
        for (engine, out) in [
            ("macro", run(&tree, &cfg)),
            ("fused", run_fused(&tree, &cfg)),
            ("par", run_par(&tree, &cfg.clone().with_threads(2).with_fan_out_min_work(0))),
        ] {
            assert_eq!(out.report.n_expand, reference.report.n_expand, "{name}/{engine}");
            assert_eq!(out.report.n_lb, reference.report.n_lb, "{name}/{engine}");
            assert_eq!(out.report.t_idle, reference.report.t_idle, "{name}/{engine}");
            assert_eq!(out.report.t_lb, reference.report.t_lb, "{name}/{engine}");
            assert_eq!(out.report.active_trace, reference.report.active_trace, "{name}/{engine}");
            assert_eq!(out.donations, reference.donations, "{name}/{engine}");
        }
    }
}

/// Exhaustive tier: a dense deterministic cross-product — every Table 1
/// scheme plus the static extremes, every split policy, a spread of seeds
/// and machine sizes, all four engines bit-identical. Far too slow for the
/// default `cargo test` (debug) run, so it hides behind `#[ignore]`; CI
/// runs it in a dedicated `--ignored` job, and locally:
///
/// ```text
/// cargo test --release --test engine_equivalence -- --ignored
/// ```
#[test]
#[ignore = "exhaustive cross-product; run with --ignored (CI does)"]
fn exhaustive_engine_cross_product() {
    let mut schemes: Vec<Scheme> = Scheme::table1(0.75).map(|(_, s)| s).to_vec();
    schemes.extend([Scheme::gp_static(0.05), Scheme::ngp_static(0.95), Scheme::fegs()]);
    let splits = [SplitPolicy::Bottom, SplitPolicy::Half, SplitPolicy::Top];
    for seed in [0u64, 3, 17, 41] {
        let tree = GeometricTree { seed, b_max: 7, depth_limit: 6 };
        for &scheme in &schemes {
            for &split in &splits {
                for p_log in [0u32, 3, 6, 9] {
                    let cfg = EngineConfig::new(1usize << p_log, scheme, CostModel::cm2())
                        .with_split(split)
                        .with_trace();
                    assert_all_engines_agree(&tree, &cfg);
                }
            }
        }
    }
}
