//! Schedule equivalence: the fused, allocation-steady-state engine
//! (`uts_core::run`) must produce a **bit-identical** lockstep schedule to
//! the reference two-sweep executor (`uts_core::run_reference`) — same
//! counters, same virtual times, same traces, same per-PE donation counts.
//! The lockstep schedule is the correctness contract of the whole repo:
//! every table and figure regenerator sits on top of it.

use proptest::prelude::*;
use simd_tree_search::prelude::*;
use simd_tree_search::synth::{BinomialTree, GeometricTree};

fn arb_scheme() -> impl Strategy<Value = Scheme> {
    prop_oneof![
        (0.05f64..0.95).prop_map(Scheme::gp_static),
        (0.05f64..0.95).prop_map(Scheme::ngp_static),
        Just(Scheme::gp_dk()),
        Just(Scheme::ngp_dk()),
        Just(Scheme::gp_dp()),
        Just(Scheme::ngp_dp()),
        Just(Scheme::fess()),
        Just(Scheme::fegs()),
    ]
}

fn arb_split() -> impl Strategy<Value = SplitPolicy> {
    prop_oneof![Just(SplitPolicy::Bottom), Just(SplitPolicy::Half), Just(SplitPolicy::Top)]
}

/// Every observable of the two outcomes must coincide. Plain asserts so the
/// helper is usable from property and unit tests alike (a panic fails a
/// proptest case the same way a `prop_assert!` does).
fn assert_equivalent(fused: &Outcome, reference: &Outcome) {
    assert_eq!(fused.report.n_expand, reference.report.n_expand, "n_expand");
    assert_eq!(fused.report.n_lb, reference.report.n_lb, "n_lb");
    assert_eq!(fused.report.n_transfers, reference.report.n_transfers, "n_transfers");
    assert_eq!(fused.report.nodes_expanded, reference.report.nodes_expanded, "nodes_expanded");
    assert_eq!(fused.report.t_par, reference.report.t_par, "t_par");
    assert_eq!(fused.report.t_calc, reference.report.t_calc, "t_calc");
    assert_eq!(fused.report.t_idle, reference.report.t_idle, "t_idle");
    assert_eq!(fused.report.t_lb, reference.report.t_lb, "t_lb");
    assert_eq!(fused.report.active_trace, reference.report.active_trace, "active_trace");
    assert_eq!(fused.goals, reference.goals, "goals");
    assert_eq!(fused.truncated, reference.truncated, "truncated");
    assert_eq!(fused.donations, reference.donations, "donations");
    assert_eq!(fused.peak_stack_nodes, reference.peak_stack_nodes, "peak_stack_nodes");
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Schemes × machine sizes × seeds: exhaustive runs schedule
    /// identically under the fused and reference engines, down to the
    /// Fig. 8 active trace and every per-PE donation counter.
    #[test]
    fn fused_engine_matches_reference_schedule(
        seed in 0u64..400,
        scheme in arb_scheme(),
        split in arb_split(),
        p_log in 0u32..9,
    ) {
        let tree = GeometricTree { seed, b_max: 6, depth_limit: 5 };
        let p = 1usize << p_log;
        let cfg = EngineConfig::new(p, scheme, CostModel::cm2())
            .with_split(split)
            .with_trace();
        let fused = run(&tree, &cfg);
        let reference = run_reference(&tree, &cfg);
        assert_equivalent(&fused, &reference);
    }

    /// Same contract on goal-bearing binomial trees, including the
    /// stop-on-goal early exit.
    #[test]
    fn fused_engine_matches_reference_with_goals(
        seed in 0u64..200,
        scheme in arb_scheme(),
        stop_on_goal in any::<bool>(),
        p_log in 2u32..8,
    ) {
        let tree = BinomialTree::with_q(seed, 16, 4, 0.2);
        let mut cfg = EngineConfig::new(1usize << p_log, scheme, CostModel::cm2()).with_trace();
        cfg.stop_on_goal = stop_on_goal;
        let fused = run(&tree, &cfg);
        let reference = run_reference(&tree, &cfg);
        assert_equivalent(&fused, &reference);
    }
}

/// Non-property spot check covering every Table 1 scheme at a fixed larger
/// P, so a regression names the scheme that diverged.
#[test]
fn table1_schemes_schedule_identically_at_p256() {
    let tree = GeometricTree { seed: 17, b_max: 8, depth_limit: 6 };
    for (name, scheme) in Scheme::table1(0.75) {
        let cfg = EngineConfig::new(256, scheme, CostModel::cm2()).with_trace();
        let fused = run(&tree, &cfg);
        let reference = run_reference(&tree, &cfg);
        assert_eq!(fused.report.n_expand, reference.report.n_expand, "{name}");
        assert_eq!(fused.report.n_lb, reference.report.n_lb, "{name}");
        assert_eq!(fused.report.t_idle, reference.report.t_idle, "{name}");
        assert_eq!(fused.report.t_lb, reference.report.t_lb, "{name}");
        assert_eq!(fused.report.active_trace, reference.report.active_trace, "{name}");
        assert_eq!(fused.donations, reference.donations, "{name}");
    }
}
