//! Worker-pool lifecycle: the parallel engine spawns its persistent pool
//! once per run and must join it deterministically on *every* exit path —
//! normal exhaustion, goal-stop early exit, `max_cycles` truncation, and
//! checkpoint-kill fault injection. No leaked or wedged workers: these
//! tests count the process's OS threads through `/proc/self/status`
//! before and after runs (Linux-only observation; the suite is a no-op
//! elsewhere), and CI runs them under `RAYON_NUM_THREADS ∈ {1, 4}` so
//! both the no-pool and the pooled regime are exercised ambiently.

use simd_tree_search::prelude::*;
use simd_tree_search::synth::{BinomialTree, GeometricTree};
use uts_ckpt::{CheckpointPolicy, FaultPlan};
use uts_core::WorkerPool;

/// Current OS thread count of this process, or `None` where unobservable.
fn os_threads() -> Option<usize> {
    let status = std::fs::read_to_string("/proc/self/status").ok()?;
    status.lines().find_map(|l| l.strip_prefix("Threads:")).and_then(|v| v.trim().parse().ok())
}

/// Assert `f` leaves no threads behind. The baseline is sampled right
/// before the closure; the test harness's own threads are steady in
/// between, so any surplus afterwards is a leaked pool worker.
fn assert_no_leaked_threads(label: &str, f: impl FnOnce()) {
    let Some(before) = os_threads() else {
        f();
        return; // not observable on this platform; still exercise the path
    };
    f();
    // Joined threads can take a beat to vanish from procfs.
    for _ in 0..50 {
        if os_threads() == Some(before) {
            return;
        }
        std::thread::sleep(std::time::Duration::from_millis(10));
    }
    panic!("{label}: thread count {:?} never returned to {before}", os_threads());
}

fn geo(seed: u64) -> GeometricTree {
    GeometricTree { seed, b_max: 8, depth_limit: 6 }
}

/// A config whose fan-out threshold is zeroed, so every multi-worker run
/// in this suite genuinely wakes the pool rather than staying inline
/// (these trees are small; the tuned default would skip most bursts).
fn forced(p: usize, scheme: Scheme) -> EngineConfig {
    EngineConfig::new(p, scheme, CostModel::cm2()).with_fan_out_min_work(0)
}

#[test]
fn pool_joins_on_normal_outcome_return() {
    for threads in [1usize, 4] {
        assert_no_leaked_threads(&format!("normal exit, {threads} threads"), || {
            let cfg = forced(64, Scheme::gp_dk()).with_threads(threads);
            let out = run_par(&geo(3), &cfg);
            assert!(!out.truncated && !out.killed);
        });
    }
}

#[test]
fn pool_joins_on_goal_stop_early_exit() {
    // A goal-bearing tree with stop_on_goal: the run breaks out of the
    // macro-step loop mid-search; the pool must still join.
    let tree = BinomialTree::with_q(9, 64, 4, 0.22);
    for threads in [1usize, 4] {
        assert_no_leaked_threads(&format!("goal-stop, {threads} threads"), || {
            let mut cfg = forced(16, Scheme::gp_static(0.8)).with_threads(threads);
            cfg.stop_on_goal = true;
            let out = run_par(&tree, &cfg);
            assert!(out.goals > 0, "workload must actually hit a goal");
        });
    }
}

#[test]
fn pool_joins_on_checkpoint_kill() {
    for threads in [1usize, 4] {
        assert_no_leaked_threads(&format!("checkpoint-kill, {threads} threads"), || {
            let cfg = forced(64, Scheme::gp_dk())
                .with_threads(threads)
                .with_checkpoint(CheckpointPolicy::every(1))
                .with_fault(FaultPlan::kill_at(3));
            let out = run_par(&geo(3), &cfg);
            assert!(out.killed, "fault plan must fire");
        });
    }
}

#[test]
fn pool_joins_on_truncation() {
    assert_no_leaked_threads("max_cycles truncation", || {
        let mut cfg = forced(64, Scheme::gp_dk()).with_threads(4);
        cfg.max_cycles = Some(5);
        let out = run_par(&geo(5), &cfg);
        assert!(out.truncated);
    });
}

#[test]
fn repeated_runs_do_not_accumulate_threads() {
    // One pool per run, joined per run: fifty back-to-back pooled runs
    // must end at the baseline thread count, not baseline + 50·workers.
    assert_no_leaked_threads("fifty pooled runs", || {
        let cfg = forced(64, Scheme::gp_dk()).with_threads(4);
        let first = run_par(&geo(7), &cfg);
        for _ in 0..49 {
            assert_eq!(run_par(&geo(7), &cfg), first, "runs are deterministic");
        }
    });
}

#[test]
fn single_worker_runs_spawn_no_pool_at_all() {
    let Some(before) = os_threads() else { return };
    let cfg = EngineConfig::new(64, Scheme::gp_dk(), CostModel::cm2()).with_threads(1);
    run_par(&geo(3), &cfg);
    assert_eq!(os_threads(), Some(before), "threads=1 must not spawn workers");
}

#[test]
fn bare_pool_drop_is_deterministic_shutdown() {
    assert_no_leaked_threads("bare pool create/drop", || {
        for _ in 0..10 {
            let pool = WorkerPool::new(4);
            assert_eq!(pool.workers(), 4);
            assert!(pool.is_quiescent());
            pool.dispatch(&|| {});
            assert!(pool.is_quiescent());
        }
    });
}

/// The killed partial outcome and the resumed completion are both
/// produced with pools in play at several worker counts; everything must
/// be bit-identical to the serial macro engine's uninterrupted run.
#[test]
fn kill_resume_under_the_pool_matches_serial_at_every_thread_count() {
    let tree = geo(11);
    let base = forced(64, Scheme::gp_dk()).with_ledger();
    let straight = run(&tree, &base);
    for threads in [1usize, 2, 8] {
        let cfg = base.clone().with_threads(threads).with_engine(EngineKind::Par);
        let armed = cfg
            .clone()
            .with_checkpoint(CheckpointPolicy::every(2))
            .with_fault(FaultPlan::kill_at(4));
        let dead = run_with(&tree, &armed);
        assert!(dead.killed, "threads={threads}");
        let snaps = armed.checkpoint.as_ref().unwrap().sink.taken();
        let resumed = resume_from_bytes(&tree, &cfg, &snaps.last().unwrap().bytes)
            .unwrap_or_else(|e| panic!("threads={threads}: {e}"));
        assert_eq!(resumed, straight, "threads={threads}");
    }
}
