//! Cross-engine differential fuzz: the four executors — the two-sweep
//! reference oracle, the fused single-cycle pipeline, the event-horizon
//! macro engine, and the host-parallel macro engine — must produce the
//! same **full [`Outcome`]** (every counter, trace, donation vector, goal
//! count and peak, compared with `==`, not just the headline numbers) on
//! random scheme × trigger × split-policy × tree-shape configurations.
//! Every config records the load-balance ledger, so the `==` also asserts
//! bit-identical per-PE donation/receipt counts and per-phase trigger
//! provenance (operands, horizon, cost attribution) across engines.
//! `run_par` must additionally be invariant in the worker count: threads
//! are a host-side latency knob, never a schedule input.
//!
//! Seeded counterexamples persist under `proptest-regressions/` (see the
//! vendored proptest's `persistence` module) and replay before the random
//! cases, so a failure found once anywhere keeps guarding forever.

use proptest::prelude::*;
use simd_tree_search::prelude::*;
use simd_tree_search::synth::{BinomialTree, GeometricTree};
use simd_tree_search::synthgen::GenTree;

fn arb_scheme() -> impl Strategy<Value = Scheme> {
    prop_oneof![
        (0.05f64..0.95).prop_map(Scheme::gp_static),
        (0.05f64..0.95).prop_map(Scheme::ngp_static),
        Just(Scheme::gp_dk()),
        Just(Scheme::ngp_dk()),
        Just(Scheme::gp_dp()),
        Just(Scheme::ngp_dp()),
        Just(Scheme::fess()),
        Just(Scheme::fegs()),
    ]
}

fn arb_split() -> impl Strategy<Value = SplitPolicy> {
    prop_oneof![Just(SplitPolicy::Bottom), Just(SplitPolicy::Half), Just(SplitPolicy::Top)]
}

/// Both `uts-synthgen` families, kept subcritical (q·m < 0.88) so every
/// sampled binomial tree is finite.
fn arb_gen_tree() -> impl Strategy<Value = GenTree> {
    prop_oneof![
        (0u64..5000, 2u32..9, 3u32..6).prop_map(|(s, b, d)| GenTree::geometric(s, b, d)),
        (0u64..5000, 4u32..32, 0.05f64..0.22).prop_map(|(s, b0, q)| GenTree::binomial(s, b0, 4, q)),
    ]
}

/// Run every non-reference engine through the [`run_with`] dispatcher and
/// require whole-`Outcome` equality against the reference oracle. The par
/// engine runs twice at awkward worker counts (3 does not divide most
/// active lists evenly; 8 exceeds the shard work threshold's comfort) so
/// shard-boundary bugs cannot hide behind round numbers.
fn assert_all_engines_identical<P: simd_tree_search::tree::TreeProblem>(
    tree: &P,
    cfg: &EngineConfig,
) {
    let reference = run_reference(tree, cfg);
    for kind in [EngineKind::Fused, EngineKind::Macro, EngineKind::Par] {
        let got = run_with(tree, &cfg.clone().with_engine(kind));
        assert_eq!(got, reference, "{} diverged from reference", kind.name());
    }
    for threads in [3usize, 8] {
        // min_work 0 forces the sharded path on trees too small to cross
        // the fan-out bar naturally.
        let got = run_par(tree, &cfg.clone().with_threads(threads).with_fan_out_min_work(0));
        assert_eq!(got, reference, "par({threads} threads) diverged from reference");
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// Random geometric trees (shape varied too) × schemes × splits ×
    /// machine sizes: all four engines agree outcome-for-outcome.
    #[test]
    fn engines_identical_on_random_geometric_trees(
        seed in 0u64..5000,
        scheme in arb_scheme(),
        split in arb_split(),
        p_log in 0u32..9,
        b_max in 2u32..9,
        depth_limit in 3u32..6,
    ) {
        let tree = GeometricTree { seed, b_max, depth_limit };
        let cfg = EngineConfig::new(1usize << p_log, scheme, CostModel::cm2())
            .with_split(split)
            .with_trace()
            .with_ledger();
        assert_all_engines_identical(&tree, &cfg);
    }

    /// Goal-bearing binomial trees, with and without the stop-on-goal
    /// early exit and the max_cycles safety valve.
    #[test]
    fn engines_identical_on_goal_trees(
        seed in 0u64..2000,
        scheme in arb_scheme(),
        stop_on_goal in any::<bool>(),
        max_cycles in prop_oneof![Just(None), (1u64..80).prop_map(Some)],
        p_log in 1u32..8,
    ) {
        let tree = BinomialTree::with_q(seed, 16, 4, 0.2);
        let mut cfg =
            EngineConfig::new(1usize << p_log, scheme, CostModel::cm2()).with_trace().with_ledger();
        cfg.stop_on_goal = stop_on_goal;
        cfg.max_cycles = max_cycles;
        assert_all_engines_identical(&tree, &cfg);
    }

    /// Thread-count determinism: the par engine's `Outcome` (metrics
    /// included) is identical under 1, 2 and 8 workers — and identical to
    /// the serial macro engine, macro-step log included. The fan-out
    /// threshold is fuzzed alongside the worker count: forced sharding
    /// (0), the tuned default, and never-shard (`u64::MAX`, pool idles)
    /// are all latency knobs, never schedule inputs.
    #[test]
    fn par_outcome_is_thread_count_invariant(
        seed in 0u64..3000,
        scheme in arb_scheme(),
        split in arb_split(),
        p_log in 0u32..10,
        min_work in prop_oneof![
            Just(0u64),
            Just(simd_tree_search::core::parstep::DEFAULT_FAN_OUT_MIN_WORK),
            Just(u64::MAX),
        ],
    ) {
        let tree = GeometricTree { seed, b_max: 8, depth_limit: 5 };
        let base = EngineConfig::new(1usize << p_log, scheme, CostModel::cm2())
            .with_split(split)
            .with_trace()
            .with_horizon_log()
            .with_ledger();
        let serial = run(&tree, &base);
        for threads in [1usize, 2, 8] {
            let par = run_par(
                &tree,
                &base.clone().with_threads(threads).with_fan_out_min_work(min_work),
            );
            assert_eq!(par, serial, "{} threads={threads} min_work={min_work}", scheme.name());
        }
    }

    /// Generated (`uts-synthgen`) trees: nodes are hash-chain states, not
    /// stored boards, so this axis also differentials the on-the-fly
    /// expansion against the reference oracle — both families, random
    /// schemes × splits × machine sizes, plus worker counts {1, 2, 8}
    /// against the serial macro engine.
    #[test]
    fn engines_identical_on_generated_trees(
        tree in arb_gen_tree(),
        scheme in arb_scheme(),
        split in arb_split(),
        p_log in 0u32..9,
    ) {
        let cfg = EngineConfig::new(1usize << p_log, scheme, CostModel::cm2())
            .with_split(split)
            .with_trace()
            .with_ledger();
        assert_all_engines_identical(&tree, &cfg);
        let serial = run(&tree, &cfg);
        for threads in [1usize, 2, 8] {
            let par = run_par(&tree, &cfg.clone().with_threads(threads).with_fan_out_min_work(0));
            assert_eq!(par, serial, "generated tree, threads={threads}");
        }
    }
}

/// Non-property spot check: every Table 1 scheme at P=256 through the
/// dispatcher, so a regression names the scheme and engine that diverged.
#[test]
fn table1_schemes_identical_across_engines_at_p256() {
    let tree = GeometricTree { seed: 29, b_max: 8, depth_limit: 6 };
    for (name, scheme) in Scheme::table1(0.75) {
        let cfg = EngineConfig::new(256, scheme, CostModel::cm2()).with_trace().with_ledger();
        let reference = run_reference(&tree, &cfg);
        for kind in [EngineKind::Fused, EngineKind::Macro, EngineKind::Par] {
            let got = run_with(&tree, &cfg.clone().with_engine(kind));
            assert_eq!(got, reference, "{name}/{}", kind.name());
        }
    }
}

/// The init phase (dynamic triggers balance every cycle until 85% of PEs
/// hold work) forces single-cycle macro-steps; the par engine must walk it
/// identically at a P large enough that init dominates.
#[test]
fn par_handles_the_init_phase_at_large_p() {
    let tree = GeometricTree { seed: 41, b_max: 6, depth_limit: 6 };
    let cfg = EngineConfig::new(1024, Scheme::gp_dk(), CostModel::cm2()).with_trace().with_ledger();
    let reference = run_reference(&tree, &cfg);
    for threads in [1usize, 2, 8] {
        let forced = cfg.clone().with_threads(threads).with_fan_out_min_work(0);
        assert_eq!(run_par(&tree, &forced), reference);
    }
}

/// Large-W sweep (run with `--ignored`; roughly a minute of work): a
/// target-sized multi-million-node generated tree through all four
/// engines and worker counts {1, 2, 8}. The quick-tier fuzz above caps
/// trees at a few thousand nodes, so this is the only in-repo proof that
/// the hash-chain generation stays bit-identical deep into the steady
/// state where balancing horizons span many cycles. (The committed
/// `BENCH_workloads.json` extends the same identity to >= 10^8 nodes.)
#[test]
#[ignore = "large-W sweep; run with `cargo test -- --ignored`"]
fn engines_identical_on_a_multimillion_node_generated_tree() {
    let sized = simd_tree_search::synthgen::find_gen_tree(2_000_000, 0.3, 8);
    let tree = sized.tree;
    let cfg = EngineConfig::new(1024, Scheme::gp_dk(), CostModel::cm2()).with_ledger();
    let reference = run_reference(&tree, &cfg);
    assert_eq!(reference.report.nodes_expanded, sized.w, "anomaly-free contract");
    for kind in [EngineKind::Fused, EngineKind::Macro, EngineKind::Par] {
        let got = run_with(&tree, &cfg.clone().with_engine(kind));
        assert_eq!(got, reference, "{} diverged at W={}", kind.name(), sized.w);
    }
    for threads in [1usize, 2, 8] {
        let got = run_par(&tree, &cfg.clone().with_threads(threads));
        assert_eq!(got, reference, "par threads={threads} diverged at W={}", sized.w);
    }
}

/// The ledger is internally consistent with the schedule it annotates:
/// its donation vector is the outcome's, receipts balance donations, the
/// phase log's transfer totals match the machine's counter, every phase's
/// cost attribution reassembles exactly, and the phase count equals
/// `N_lb`.
#[test]
fn ledger_reconciles_with_the_machine_accounting() {
    let tree = GeometricTree { seed: 17, b_max: 8, depth_limit: 6 };
    for (name, scheme) in Scheme::table1(0.8) {
        let cfg = EngineConfig::new(128, scheme, CostModel::cm2()).with_ledger();
        let out = run(&tree, &cfg);
        let ledger = out.ledger.as_ref().expect("ledger was requested");
        assert_eq!(ledger.donations, out.donations, "{name}");
        let received: u64 = ledger.receipts.iter().map(|&r| r as u64).sum();
        assert_eq!(ledger.total_transfers(), received, "{name}: every transfer has a receiver");
        assert_eq!(ledger.total_transfers(), out.report.n_transfers, "{name}");
        assert_eq!(ledger.phases.len() as u64, out.report.n_lb, "{name}");
        let phase_transfers: u64 = ledger.phases.iter().map(|ph| ph.transfers).sum();
        assert_eq!(phase_transfers, out.report.n_transfers, "{name}");
        let phase_cost_p: u64 = ledger.phases.iter().map(|ph| ph.cost.total * cfg.p as u64).sum();
        assert_eq!(phase_cost_p, out.report.t_lb, "{name}: phase costs sum to T_lb");
        for ph in &ledger.phases {
            assert_eq!(
                (ph.cost.setup + ph.cost.transfer) * ph.cost.multiplier as u64,
                ph.cost.total,
                "{name}: exact cost attribution"
            );
            assert!(ph.rounds > 0, "{name}: abandoned fires leave no record");
        }
    }
}
