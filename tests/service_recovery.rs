//! Kill-and-resume-under-load: the service-layer extension of the
//! `checkpoint_resume` fault-injection suite.
//!
//! A slot-starved server churns through a batch of jobs; mid-churn the
//! process "dies" ([`JobServer::kill`] — threads abandon instantly and
//! write nothing more, the in-process equivalent of SIGKILL). A new
//! server starts over the same spill directory and must recover every
//! job from its durable trail — finished jobs serve their stored
//! results, parked jobs resume from their snapshot, queued and
//! interrupted jobs restart from scratch — and every final result must
//! be bit-identical to an uninterrupted `run_with` oracle.

use std::time::{Duration, Instant};

use simd_tree_search::prelude::*;
use simd_tree_search::serve::{client, JobSpec, ServeConfig};

fn scratch_dir(tag: &str) -> std::path::PathBuf {
    let dir =
        std::env::temp_dir().join(format!("uts-service-recovery-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

fn spec_text(i: usize) -> String {
    let engine = ["macro", "par", "fused"][i % 3];
    let depth = if i.is_multiple_of(2) { 7 } else { 5 };
    format!(
        r#"{{"workload":{{"kind":"synth","seed":{},"b_max":8,"depth_limit":{depth}}},"p":32,"engine":"{engine}","threads":2}}"#,
        500 + i
    )
}

fn wait_result(addr: std::net::SocketAddr, id: u64) -> String {
    let deadline = Instant::now() + Duration::from_secs(300);
    loop {
        let (status, body) = client::get(addr, &format!("/result/{id}"));
        match status {
            200 => return body,
            409 => {
                assert!(Instant::now() < deadline, "job {id} never recovered");
                std::thread::sleep(Duration::from_millis(5));
            }
            other => panic!("job {id}: status {other}: {body}"),
        }
    }
}

fn digest_of(doc: &str) -> String {
    doc.lines()
        .find_map(|l| l.trim().strip_prefix("\"outcome_fnv\": \""))
        .unwrap_or_else(|| panic!("no outcome_fnv in:\n{doc}"))
        .trim_end_matches(['"', ','])
        .to_string()
}

#[test]
fn kill_mid_churn_then_restart_recovers_every_job_oracle_identical() {
    const JOBS: usize = 8;
    let dir = scratch_dir("kill");

    // First life: 1 slot, zero quantum — constant parking. Kill once the
    // churn is demonstrably mid-flight (some, but not all, jobs done).
    let mut cfg = ServeConfig::new(&dir);
    cfg.slots = 1;
    cfg.quantum_ms = 0;
    cfg.poll_ms = 1;
    let server = simd_tree_search::serve::JobServer::start(cfg.clone()).unwrap();
    let addr = server.addr();
    for i in 0..JOBS {
        let (status, body) = client::post(addr, "/submit", &spec_text(i));
        assert_eq!(status, 200, "{body}");
    }
    let deadline = Instant::now() + Duration::from_secs(300);
    let mut first_life_docs: Vec<(u64, String)> = Vec::new();
    loop {
        let (_, body) = client::get(addr, "/jobs");
        let done = body.matches("\"state\":\"done\"").count();
        if done >= 2 {
            // Capture what the first life already answered, then die.
            for id in 1..=JOBS as u64 {
                let (status, doc) = client::get(addr, &format!("/result/{id}"));
                if status == 200 {
                    first_life_docs.push((id, doc));
                }
            }
            break;
        }
        assert!(Instant::now() < deadline, "first life never made progress");
        std::thread::sleep(Duration::from_millis(2));
    }
    server.kill();

    // The crash must have left work behind — otherwise this test proves
    // nothing about recovery under load.
    let leftover = (1..=JOBS as u64)
        .filter(|&id| !std::path::Path::new(&dir).join(format!("job-{id:08}.done")).exists())
        .count();
    assert!(leftover > 0, "every job finished before the kill; enlarge the job mix");

    // Second life, same spill directory: everything must drain.
    let server = simd_tree_search::serve::JobServer::start(cfg).unwrap();
    let addr = server.addr();
    for i in 0..JOBS {
        let id = (i + 1) as u64;
        let doc = wait_result(addr, id);
        let oracle = JobSpec::parse(&spec_text(i)).unwrap().oracle();
        assert_eq!(
            digest_of(&doc),
            format!("{:#018x}", outcome_digest(&oracle)),
            "job {id} lost bit-identity across the kill→restart cycle:\n{doc}"
        );
    }

    // Results that existed before the kill are preserved verbatim.
    for (id, old_doc) in first_life_docs {
        let (status, new_doc) = client::get(addr, &format!("/result/{id}"));
        assert_eq!(status, 200);
        assert_eq!(new_doc, old_doc, "job {id}'s stored result changed across restart");
    }

    // New submissions keep working after recovery, with fresh ids.
    let (status, body) = client::post(addr, "/submit", &spec_text(0));
    assert_eq!(status, 200);
    assert_eq!(body, format!(r#"{{"job":{}}}"#, JOBS + 1), "ids continue past recovered jobs");
    wait_result(addr, (JOBS + 1) as u64);

    server.shutdown();
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn graceful_shutdown_parks_in_flight_work_for_the_next_life() {
    let dir = scratch_dir("graceful");
    let mut cfg = ServeConfig::new(&dir);
    cfg.slots = 1;
    cfg.quantum_ms = 10_000; // no preemption pressure: the shutdown itself must park
    let server = simd_tree_search::serve::JobServer::start(cfg.clone()).unwrap();
    let addr = server.addr();

    let spec = r#"{"workload":{"kind":"synth","seed":900,"b_max":8,"depth_limit":8},"p":32}"#;
    let (status, _) = client::post(addr, "/submit", spec);
    assert_eq!(status, 200);
    // Let the runner pick it up, then shut down mid-run.
    let deadline = Instant::now() + Duration::from_secs(60);
    loop {
        let (_, body) = client::get(addr, "/status/1");
        if body.contains("\"running\"") || body.contains("\"done\"") {
            break;
        }
        assert!(Instant::now() < deadline, "job never started");
        std::thread::sleep(Duration::from_millis(1));
    }
    server.shutdown();

    let server = simd_tree_search::serve::JobServer::start(cfg).unwrap();
    let doc = wait_result(server.addr(), 1);
    let oracle = JobSpec::parse(spec).unwrap().oracle();
    assert_eq!(
        digest_of(&doc),
        format!("{:#018x}", outcome_digest(&oracle)),
        "graceful park → restart lost bit-identity:\n{doc}"
    );
    server.shutdown();
    let _ = std::fs::remove_dir_all(&dir);
}
