//! Kill→resume differential fuzz for the checkpoint subsystem: a run that
//! checkpoints, dies at a macro-step boundary, and resumes from its last
//! snapshot must finish with the **full [`Outcome`]** (every counter,
//! donation vector, ledger record and goal count, compared with `==`) of
//! the run that was never interrupted. The property is held across random
//! scheme × machine-size × tree-shape configurations on all four engines,
//! across engine *boundaries* (a snapshot taken by one engine resumed
//! under another), across host worker counts, and through a chain of
//! repeated kills.
//!
//! The container format itself is exercised from the outside: every
//! snapshot a run produces must decode→re-encode bit-exactly, and each
//! way a snapshot can be unusable (foreign file, future format version,
//! storage corruption, truncation, wrong run configuration) must be
//! rejected with its own distinct [`CkptError`].
//!
//! Since the structure-of-arrays rework (DESIGN.md §6.3) the fused, macro
//! and par engines snapshot straight off the [`StackArena`]
//! (`StackSource::Arena`) while decode always yields frame-vector stacks,
//! so the whole suite doubles as a SoA↔frames differential; the dedicated
//! `soa_frames_soa_encode_is_bit_exact_through_the_codec` test pins the
//! conversion round trip against the codec explicitly.
//!
//! Seeded counterexamples persist under `proptest-regressions/` and
//! replay before the random cases.

use proptest::prelude::*;
use simd_tree_search::prelude::*;
use simd_tree_search::synth::GeometricTree;
use simd_tree_search::synthgen::GenTree;

fn arb_scheme() -> impl Strategy<Value = Scheme> {
    prop_oneof![
        (0.05f64..0.95).prop_map(Scheme::gp_static),
        (0.05f64..0.95).prop_map(Scheme::ngp_static),
        Just(Scheme::gp_dk()),
        Just(Scheme::ngp_dk()),
        Just(Scheme::gp_dp()),
        Just(Scheme::ngp_dp()),
        Just(Scheme::fess()),
        Just(Scheme::fegs()),
    ]
}

/// Arm `cfg` with an every-boundary checkpoint policy and a kill at
/// `kill_at`, run it, and return the dead run's outcome plus its last
/// snapshot's bytes (`None` if the search finished before the kill point).
fn kill_run<P: TreeProblem>(
    tree: &P,
    cfg: &EngineConfig,
    kill_at: u64,
) -> (Outcome, Option<Vec<u8>>) {
    let armed = cfg
        .clone()
        .with_checkpoint(CheckpointPolicy::every(1))
        .with_fault(FaultPlan::kill_at(kill_at));
    let dead = run_with(tree, &armed);
    if !dead.killed {
        return (dead, None);
    }
    let snaps = armed.checkpoint.as_ref().expect("armed").sink.taken();
    let last = snaps.last().expect("every-boundary policy snapshots each step");
    assert_eq!(last.step, kill_at, "kill happens after the boundary's own snapshot");
    (dead, Some(last.bytes.clone()))
}

/// The core differential: straight run == killed-then-resumed run.
fn assert_kill_resume_identical<P: TreeProblem>(tree: &P, cfg: &EngineConfig, kill_at: u64) {
    let straight = run_with(tree, cfg);
    assert!(!straight.killed);
    let (dead, snapshot) = kill_run(tree, cfg, kill_at);
    let Some(bytes) = snapshot else {
        // The search finished before boundary `kill_at`: nothing to
        // resume, and the armed run must be the straight run.
        assert_eq!(dead, straight, "checkpointing must not perturb a finishing run");
        return;
    };
    let resumed = resume_from_bytes(tree, cfg, &bytes).expect("snapshot decodes under its config");
    assert_eq!(resumed, straight, "resume must be bit-identical to the uninterrupted run");
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Random trees × schemes × machine sizes × engines × kill points.
    #[test]
    fn kill_resume_is_bit_identical_on_random_configs(
        seed in 0u64..5000,
        scheme in arb_scheme(),
        p_log in 0u32..8,
        b_max in 2u32..8,
        depth_limit in 3u32..6,
        engine_idx in 0usize..4,
        kill_seed in 0u64..1000,
    ) {
        let tree = GeometricTree { seed, b_max, depth_limit };
        let cfg = EngineConfig::new(1usize << p_log, scheme, CostModel::cm2())
            .with_ledger()
            .with_engine(EngineKind::ALL[engine_idx]);
        let kill = FaultPlan::seeded(kill_seed, 12);
        assert_kill_resume_identical(&tree, &cfg, kill.kill_at_step);
    }

    /// Generated (`uts-synthgen`) trees ride the same container: their
    /// nodes are 12-byte `(state, depth)` records, so this doubles as a
    /// differential for the fixed-width `GenNode` codec under every
    /// engine × scheme × kill point. Both families are sampled
    /// (subcritical binomial: q·m < 0.88).
    #[test]
    fn kill_resume_is_bit_identical_on_generated_trees(
        gen_seed in 0u64..5000,
        geometric in any::<bool>(),
        scheme in arb_scheme(),
        p_log in 0u32..7,
        engine_idx in 0usize..4,
        kill_seed in 0u64..1000,
    ) {
        let tree = if geometric {
            GenTree::geometric(gen_seed, 6, 5)
        } else {
            GenTree::binomial(gen_seed, 12, 4, 0.21)
        };
        let cfg = EngineConfig::new(1usize << p_log, scheme, CostModel::cm2())
            .with_ledger()
            .with_engine(EngineKind::ALL[engine_idx]);
        let kill = FaultPlan::seeded(kill_seed, 12);
        assert_kill_resume_identical(&tree, &cfg, kill.kill_at_step);
    }

    /// Every snapshot a run produces decodes and re-encodes bit-exactly.
    #[test]
    fn snapshots_round_trip_bit_exactly(
        seed in 0u64..5000,
        scheme in arb_scheme(),
        p_log in 1u32..7,
    ) {
        let tree = GeometricTree { seed, b_max: 6, depth_limit: 5 };
        let cfg = EngineConfig::new(1usize << p_log, scheme, CostModel::cm2()).with_ledger();
        let armed = cfg.clone().with_checkpoint(CheckpointPolicy::every(1).and_on_trigger());
        let out = run_with(&tree, &armed);
        prop_assert!(!out.killed);
        let fp = config_fingerprint(&cfg);
        let snaps = armed.checkpoint.as_ref().expect("armed").sink.taken();
        for snap in &snaps {
            let decoded =
                EngineSnapshot::<<GeometricTree as TreeProblem>::Node>::decode(&snap.bytes, fp)
                    .expect("own snapshot decodes");
            prop_assert_eq!(decoded.step, snap.step);
            prop_assert_eq!(&decoded.encode(fp), &snap.bytes, "re-encode must be bit-equal");
        }
    }
}

/// A generated-tree run's snapshots decode and re-encode bit-exactly:
/// the 12-byte fixed-width `GenNode` record (`u64` chain state + `u32`
/// depth) survives the container at every boundary of a real run.
#[test]
fn generated_tree_snapshots_round_trip_bit_exactly() {
    type Node = <GenTree as TreeProblem>::Node;
    let tree = GenTree::binomial(7, 24, 4, 0.2);
    let cfg = EngineConfig::new(32, Scheme::gp_dk(), CostModel::cm2()).with_ledger();
    let armed = cfg.clone().with_checkpoint(CheckpointPolicy::every(1).and_on_trigger());
    let out = run_with(&tree, &armed);
    assert!(!out.killed);
    let fp = config_fingerprint(&cfg);
    let snaps = armed.checkpoint.as_ref().expect("armed").sink.taken();
    assert!(!snaps.is_empty(), "the run must cross at least one boundary");
    for snap in &snaps {
        let decoded =
            EngineSnapshot::<Node>::decode(&snap.bytes, fp).expect("own snapshot decodes");
        assert_eq!(
            decoded.encode(fp),
            snap.bytes,
            "step {}: re-encode must be bit-equal",
            snap.step
        );
    }
}

/// A snapshot taken by one engine resumes under any other: the schedule
/// (and therefore the snapshot) is engine-invariant, so every donor ×
/// resumer pair must reproduce the resumer's own uninterrupted outcome.
#[test]
fn snapshots_are_engine_invariant_across_all_pairs() {
    let tree = GeometricTree { seed: 11, b_max: 8, depth_limit: 6 };
    let base = EngineConfig::new(32, Scheme::gp_dk(), CostModel::cm2()).with_ledger();
    let straight: Vec<Outcome> =
        EngineKind::ALL.iter().map(|&e| run_with(&tree, &base.clone().with_engine(e))).collect();
    for &donor in EngineKind::ALL.iter() {
        let (_, bytes) = kill_run(&tree, &base.clone().with_engine(donor), 4);
        let bytes = bytes.expect("deep enough run to reach boundary 4");
        for (ri, &resumer) in EngineKind::ALL.iter().enumerate() {
            let resumed = resume_from_bytes(&tree, &base.clone().with_engine(resumer), &bytes)
                .expect("engine-invariant snapshot");
            assert_eq!(
                resumed, straight[ri],
                "snapshot from {donor:?} resumed under {resumer:?} diverged"
            );
        }
    }
}

/// Resuming the par engine is worker-count invariant: threads are a host
/// latency knob, never a schedule input — dying on an 8-thread host and
/// resuming on a single-threaded one changes nothing.
#[test]
fn par_resume_is_thread_count_invariant() {
    let tree = GeometricTree { seed: 23, b_max: 8, depth_limit: 6 };
    let base = EngineConfig::new(64, Scheme::fegs(), CostModel::cm2())
        .with_ledger()
        .with_engine(EngineKind::Par)
        .with_fan_out_min_work(0); // force sharding on this small tree
    let straight = run_with(&tree, &base);
    let (_, bytes) = kill_run(&tree, &base.clone().with_threads(8), 3);
    let bytes = bytes.expect("deep enough run to reach boundary 3");
    for threads in [1usize, 2, 8] {
        let resumed = resume_from_bytes(&tree, &base.clone().with_threads(threads), &bytes)
            .expect("valid snapshot");
        assert_eq!(resumed, straight, "par resume with {threads} threads diverged");
    }
}

/// A run that dies repeatedly — kill, resume, kill again, resume again —
/// still lands on the uninterrupted outcome: resumes compose.
#[test]
fn chain_of_kills_composes_to_the_straight_run() {
    let tree = GeometricTree { seed: 42, b_max: 8, depth_limit: 7 };
    let cfg = EngineConfig::new(32, Scheme::gp_dk(), CostModel::cm2()).with_ledger();
    let straight = run_with(&tree, &cfg);

    let mut bytes: Option<Vec<u8>> = None;
    // Boundary numbering continues across resumes, so kill steps are
    // global and strictly increasing.
    for &kill_at in &[2u64, 5, 9] {
        let armed = cfg
            .clone()
            .with_checkpoint(CheckpointPolicy::every(1))
            .with_fault(FaultPlan::kill_at(kill_at));
        let out = match &bytes {
            None => run_with(&tree, &armed),
            Some(b) => resume_from_bytes(&tree, &armed, b).expect("chain snapshot decodes"),
        };
        assert!(out.killed, "expected to die at boundary {kill_at}");
        let snaps = armed.checkpoint.as_ref().expect("armed").sink.taken();
        bytes = Some(snaps.last().expect("snapshots taken").bytes.clone());
    }
    let final_out = resume_from_bytes(&tree, &cfg, bytes.as_ref().expect("chain left a snapshot"))
        .expect("final resume");
    assert_eq!(final_out, straight, "three kills and three resumes must change nothing");
}

/// The SoA engines serialize a snapshot straight off the arena; a decoded
/// snapshot holds frame-vector stacks. Routing the decoded stacks through
/// a [`StackArena`] (frames → SoA → frames) and re-encoding must
/// reproduce the original container bit-exactly — the arena conversion is
/// lossless through the `SnapshotView` codec, in both directions, at
/// every boundary of a real run.
#[test]
fn soa_frames_soa_encode_is_bit_exact_through_the_codec() {
    use simd_tree_search::tree::StackArena;
    type Node = <GeometricTree as TreeProblem>::Node;
    let tree = GeometricTree { seed: 17, b_max: 8, depth_limit: 6 };
    let cfg = EngineConfig::new(32, Scheme::gp_dk(), CostModel::cm2()).with_ledger();
    let armed = cfg.clone().with_checkpoint(CheckpointPolicy::every(1).and_on_trigger());
    let out = run_with(&tree, &armed);
    assert!(!out.killed);
    let fp = config_fingerprint(&cfg);
    let snaps = armed.checkpoint.as_ref().expect("armed").sink.taken();
    assert!(!snaps.is_empty());
    for snap in &snaps {
        let mut via_arena = EngineSnapshot::<Node>::decode(&snap.bytes, fp)
            .expect("arena-sourced snapshot decodes");
        via_arena.stacks = StackArena::from_stacks(via_arena.stacks).into_stacks();
        assert_eq!(
            via_arena.encode(fp),
            snap.bytes,
            "step {}: SoA→frames→SoA re-encode must be bit-equal",
            snap.step
        );
    }
}

/// Each way a snapshot can be unusable gets its own error: a foreign
/// file, a future format version, storage corruption, truncation, and a
/// config mismatch are *distinct* failures (validated in that order, so
/// e.g. a corrupt byte in a future-version file reports the version).
#[test]
fn snapshot_rejections_are_distinct() {
    type Node = <GeometricTree as TreeProblem>::Node;
    let tree = GeometricTree { seed: 11, b_max: 8, depth_limit: 6 };
    let cfg = EngineConfig::new(16, Scheme::gp_dk(), CostModel::cm2());
    let armed = cfg.clone().with_checkpoint(CheckpointPolicy::every(1));
    run_with(&tree, &armed);
    let fp = config_fingerprint(&cfg);
    let snaps = armed.checkpoint.as_ref().expect("armed").sink.taken();
    let bytes = snaps.last().expect("snapshots taken").bytes.clone();
    assert!(EngineSnapshot::<Node>::decode(&bytes, fp).is_ok());

    // Bad magic: not one of our files at all.
    let mut bad = bytes.clone();
    bad[0] ^= 0xFF;
    assert!(matches!(EngineSnapshot::<Node>::decode(&bad, fp), Err(CkptError::BadMagic)));

    // Future format version (reported before the now-stale checksum).
    let mut bad = bytes.clone();
    bad[8] = 0xEE;
    assert!(matches!(
        EngineSnapshot::<Node>::decode(&bad, fp),
        Err(CkptError::UnsupportedVersion(_))
    ));

    // A flipped payload byte: storage corruption, caught by the checksum.
    let mut bad = bytes.clone();
    let mid = bytes.len() / 2;
    bad[mid] ^= 0x01;
    assert!(matches!(EngineSnapshot::<Node>::decode(&bad, fp), Err(CkptError::ChecksumMismatch)));

    // Truncated: the buffer ends before the declared structure does.
    assert!(matches!(
        EngineSnapshot::<Node>::decode(&bytes[..bytes.len() - 1], fp),
        Err(CkptError::Truncated)
    ));

    // An intact snapshot of some other run configuration.
    assert!(matches!(
        EngineSnapshot::<Node>::decode(&bytes, fp ^ 1),
        Err(CkptError::ConfigMismatch { .. })
    ));

    // And the end-to-end path surfaces the same rejection.
    let wrong = EngineConfig::new(32, Scheme::gp_dk(), CostModel::cm2());
    assert!(matches!(
        resume_from_bytes(&tree, &wrong, &bytes),
        Err(CkptError::ConfigMismatch { .. })
    ));
}
