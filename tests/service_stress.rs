//! Concurrent-client soak test for the job server (quick tier).
//!
//! A slot-starved server (32 jobs, 2 slots, zero quantum) is hammered by
//! 4 client threads submitting a seeded mix of short and long jobs
//! across all four engines and host-thread counts 1/2/8. The zero
//! quantum makes the governor preempt every running job whenever anyone
//! waits, so jobs are parked and resumed over and over — and every
//! completed result must still be **bit-identical** to a direct
//! `run_with` oracle of the same config, proven through the HTTP API by
//! the outcome's FNV digest. Alongside identity the suite pins the
//! bookkeeping: no job is lost, duplicated, or starved.

use std::collections::BTreeSet;
use std::time::{Duration, Instant};

use simd_tree_search::prelude::*;
use simd_tree_search::serve::{client, JobSpec, ServeConfig};

const JOBS: usize = 32;
const CLIENTS: usize = 4;

fn scratch_dir(tag: &str) -> std::path::PathBuf {
    let dir = std::env::temp_dir().join(format!("uts-service-stress-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

/// The seeded job mix: engines, schemes, machine sizes, and host-thread
/// counts all rotate; every fourth job is "long" (a deeper tree) so the
/// scheduler has something worth parking.
fn spec_text(i: usize) -> String {
    let engine = ["macro", "fused", "par", "reference"][i % 4];
    let scheme = ["gp-dk", "gp-s:0.5", "fess", "ngp-dp"][i % 4];
    let p = [16, 32, 64][i % 3];
    let threads = [1, 2, 8][i % 3]; // the par jobs cover threads ∈ {1, 2, 8}
    let depth = if i % 4 == 2 { 7 } else { 5 };
    format!(
        r#"{{"workload":{{"kind":"synth","seed":{},"b_max":8,"depth_limit":{depth}}},"p":{p},"scheme":"{scheme}","engine":"{engine}","threads":{threads}}}"#,
        1000 + i
    )
}

fn wait_result(addr: std::net::SocketAddr, id: u64, deadline: Instant) -> String {
    loop {
        let (status, body) = client::get(addr, &format!("/result/{id}"));
        match status {
            200 => return body,
            409 => {
                assert!(
                    Instant::now() < deadline,
                    "job {id} starved: no result before the deadline"
                );
                std::thread::sleep(Duration::from_millis(5));
            }
            other => panic!("job {id}: status {other}: {body}"),
        }
    }
}

fn field<'a>(doc: &'a str, key: &str) -> &'a str {
    doc.lines()
        .find_map(|l| l.trim().strip_prefix(&format!("\"{key}\": ")))
        .unwrap_or_else(|| panic!("result lacks `{key}`:\n{doc}"))
        .trim_end_matches(',')
}

#[test]
fn slot_starved_churn_keeps_every_job_oracle_identical() {
    let dir = scratch_dir("churn");
    let mut cfg = ServeConfig::new(&dir);
    cfg.slots = 2;
    cfg.quantum_ms = 0;
    cfg.poll_ms = 1;
    let server = simd_tree_search::serve::JobServer::start(cfg).unwrap();
    let addr = server.addr();

    // Phase 1: CLIENTS threads submit concurrently; ids must come back
    // unique and form exactly 1..=JOBS (no job lost, none duplicated).
    let ids: Vec<(usize, u64)> = std::thread::scope(|scope| {
        let handles: Vec<_> = (0..CLIENTS)
            .map(|c| {
                scope.spawn(move || {
                    let mut mine = Vec::new();
                    for i in (c..JOBS).step_by(CLIENTS) {
                        let (status, body) = client::post(addr, "/submit", &spec_text(i));
                        assert_eq!(status, 200, "submit {i}: {body}");
                        let id: u64 = body
                            .trim_start_matches(r#"{"job":"#)
                            .trim_end_matches('}')
                            .parse()
                            .expect("submit returns an id");
                        mine.push((i, id));
                    }
                    mine
                })
            })
            .collect();
        handles.into_iter().flat_map(|h| h.join().expect("client thread")).collect()
    });
    let unique: BTreeSet<u64> = ids.iter().map(|&(_, id)| id).collect();
    assert_eq!(unique.len(), JOBS, "a job id was issued twice");
    assert_eq!(*unique.first().unwrap(), 1);
    assert_eq!(*unique.last().unwrap(), JOBS as u64);

    // Phase 2: CLIENTS threads drain their own jobs and compare digests
    // against locally computed oracles.
    let deadline = Instant::now() + Duration::from_secs(300);
    let preemptions: u64 = std::thread::scope(|scope| {
        let handles: Vec<_> = ids
            .chunks(JOBS / CLIENTS)
            .map(|chunk| {
                scope.spawn(move || {
                    let mut parked = 0u64;
                    for &(i, id) in chunk {
                        let doc = wait_result(addr, id, deadline);
                        let spec = spec_text(i);
                        let oracle = JobSpec::parse(&spec).unwrap().oracle();
                        assert!(!oracle.killed);
                        let want = format!("{:#018x}", outcome_digest(&oracle));
                        assert_eq!(
                            field(&doc, "outcome_fnv").trim_matches('"'),
                            want,
                            "job {id} (spec {i}) diverged from its oracle\nspec: {spec}\ndoc:\n{doc}"
                        );
                        assert_eq!(
                            field(&doc, "nodes_expanded").parse::<u64>().unwrap(),
                            oracle.report.nodes_expanded,
                            "job {id} counter drift"
                        );
                        parked += field(&doc, "preemptions").parse::<u64>().unwrap();
                    }
                    parked
                })
            })
            .collect();
        handles.into_iter().map(|h| h.join().expect("drain thread")).sum()
    });
    assert!(preemptions > 0, "32 jobs on 2 zero-quantum slots must force at least one preemption");

    // Phase 3: the table agrees — every job present, every job done.
    let (status, body) = client::get(addr, "/jobs");
    assert_eq!(status, 200);
    assert_eq!(body.matches("\"state\":\"done\"").count(), JOBS, "{body}");

    server.shutdown();
    let _ = std::fs::remove_dir_all(&dir);
}

/// The same identity claim, driven through the library API at the three
/// acceptance thread counts explicitly: a job parked between *different*
/// host-thread counts (1 → 2 → 8) still reproduces the single-process
/// oracle, because threads are never part of the lockstep schedule.
#[test]
fn parked_slices_may_hop_thread_counts() {
    let spec = JobSpec::parse(
        r#"{"workload":{"kind":"synth","seed":11,"b_max":8,"depth_limit":7},"p":64,"engine":"par"}"#,
    )
    .unwrap();
    let oracle = spec.oracle();

    let mut parked: Option<Vec<u8>> = None;
    let mut hops = 0usize;
    for threads in [1usize, 2, 8].into_iter().cycle() {
        let mut slice_spec = spec.clone();
        slice_spec.config.threads = Some(threads);
        let signal = PreemptSignal::new();
        signal.raise(); // park at the very next boundary
        let (out, bytes) = slice_spec.run_slice(parked.as_deref(), &signal).unwrap();
        match bytes {
            Some(bytes) => {
                parked = Some(bytes);
                hops += 1;
                assert!(out.killed);
                assert!(hops < 10_000, "job never finishes");
            }
            None => {
                assert_eq!(out, oracle, "thread-hopping resume diverged");
                assert!(hops >= 2, "the tree is deep enough to park at least twice");
                return;
            }
        }
    }
}
