//! Golden run-report test (quick tier): the JSON run-report of a fixed
//! `(problem, config)` must match `tests/fixtures/run_report.json`
//! byte-for-byte. This pins three things at once: the report schema
//! (field names and layout), the lockstep schedule (any engine change that
//! moves a balancing phase shows up as a diff in the provenance rows), and
//! the ⌊x·P⌋ / cost-breakdown arithmetic embedded in the values.
//!
//! To regenerate after an *intentional* schema or schedule change:
//!
//! ```text
//! UPDATE_GOLDEN=1 cargo test --test run_report
//! ```
//!
//! and review the diff like any other code change.

use simd_tree_search::prelude::*;
use simd_tree_search::synth::GeometricTree;

fn golden_case() -> (GeometricTree, EngineConfig) {
    let tree = GeometricTree { seed: 11, b_max: 8, depth_limit: 6 };
    // GP-D^K exercises the init phase, dynamic provenance and multi-round
    // transfers; P = 64 keeps the phase log reviewable in a diff.
    let cfg = EngineConfig::new(64, Scheme::gp_dk(), CostModel::cm2()).with_ledger();
    (tree, cfg)
}

#[test]
fn run_report_matches_the_golden_fixture() {
    let (tree, cfg) = golden_case();
    let got = run_report_json(&cfg, &run(&tree, &cfg));
    let path = concat!(env!("CARGO_MANIFEST_DIR"), "/tests/fixtures/run_report.json");
    if std::env::var_os("UPDATE_GOLDEN").is_some() {
        std::fs::write(path, &got).expect("write golden fixture");
        return;
    }
    let golden = std::fs::read_to_string(path).expect("golden fixture exists");
    assert_eq!(
        got, golden,
        "run-report drifted from tests/fixtures/run_report.json; if the \
         change is intentional, regenerate with UPDATE_GOLDEN=1 and review"
    );
}

#[test]
fn golden_fixture_is_engine_invariant() {
    // The fixture is not a macro-engine artifact: every engine renders it.
    let (tree, cfg) = golden_case();
    let baseline = run_report_json(&cfg, &run_reference(&tree, &cfg));
    for kind in [EngineKind::Fused, EngineKind::Macro, EngineKind::Par] {
        let c = cfg.clone().with_engine(kind);
        assert_eq!(run_report_json(&c, &run_with(&tree, &c)), baseline, "{}", kind.name());
    }
}
