//! SoA census property suite: the chunked sweeps in `uts_core::census`
//! over the [`StackArena`]'s dense length array are *specified* against
//! the per-stack recomputation the engines used before the
//! structure-of-arrays layout (DESIGN.md §6.3). For random stack
//! populations — idle PEs included — active/busy counts, the stack-size
//! histogram and the `count_ge` suffix sum the event horizon reads must
//! all agree exactly, and the arena's length mirror must match the
//! frame-vector stacks it was built from.

use proptest::prelude::*;
use simd_tree_search::core::census;
use simd_tree_search::tree::{SearchStack, StackArena};

/// A random ensemble: per PE, a frame list (bottom-to-top, frames
/// non-empty as [`SearchStack::from_frames`] requires; an empty list is
/// an idle PE).
fn arb_population() -> impl Strategy<Value = Vec<Vec<Vec<u32>>>> {
    proptest::collection::vec(
        proptest::collection::vec(proptest::collection::vec(0u32..1000, 1..5), 0..7),
        1..48,
    )
}

/// The pre-SoA census: walk the active list and chase each PE's stack.
fn per_stack_count_ge(stacks: &[SearchStack<u32>]) -> Vec<u32> {
    let mut hist: Vec<u32> = Vec::new();
    for stack in stacks {
        let s = stack.len();
        if s == 0 {
            continue; // idle PEs were never on the active list
        }
        if s >= hist.len() {
            hist.resize(s + 1, 0);
        }
        hist[s] += 1;
    }
    let mut out = vec![0u32; hist.len() + 1];
    let mut acc = 0u32;
    for t in (0..hist.len()).rev() {
        acc += hist[t];
        out[t] = acc;
    }
    out
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(96))]

    #[test]
    fn soa_census_matches_per_stack_recomputation(pop in arb_population()) {
        let stacks: Vec<SearchStack<u32>> =
            pop.iter().cloned().map(SearchStack::from_frames).collect();
        let arena = StackArena::from_stacks(
            pop.iter().cloned().map(SearchStack::from_frames).collect(),
        );
        let lens = arena.lens();

        // The dense mirror is the stacks' lengths, index = PE id.
        prop_assert_eq!(lens.len(), stacks.len());
        for (i, stack) in stacks.iter().enumerate() {
            prop_assert_eq!(lens[i] as usize, stack.len(), "PE {}", i);
        }

        // Flat reductions == per-stack scans.
        let active = stacks.iter().filter(|s| !s.is_empty()).count();
        let busy = stacks.iter().filter(|s| s.can_split()).count();
        let max = stacks.iter().map(|s| s.len()).max().unwrap_or(0);
        prop_assert_eq!(census::active_count(lens), active);
        prop_assert_eq!(census::busy_count(lens), busy);
        prop_assert_eq!(census::max_len(lens) as usize, max);

        // The horizon-facing distribution: hist + count_ge over the dense
        // array == the old active-list sweep. `safe_horizon` is a pure
        // function of `count_ge` (and scalars), so equality here carries
        // over to the horizon itself.
        let mut hist = Vec::new();
        let mut cg = Vec::new();
        census::build_hist(lens, &mut hist);
        census::build_count_ge(&hist, &mut cg);
        prop_assert_eq!(&cg, &per_stack_count_ge(&stacks));
        prop_assert_eq!(cg[0] as usize, active, "count_ge[0] is the active count");
        prop_assert_eq!(hist.first().copied().unwrap_or(0), 0, "idle PEs are skipped");

        // Round trip: the arena gives back the exact frame lists.
        let back: Vec<Vec<Vec<u32>>> =
            arena.into_stacks().into_iter().map(SearchStack::into_frames).collect();
        prop_assert_eq!(back, pop);
    }
}
