//! Property test for the job lifecycle state machine, plus the
//! cancel-at-boundary contract.
//!
//! Random interleavings of submit / claim / park / complete / fail /
//! cancel events drive the pure [`JobTable`]; after every event the
//! table's structural invariants must hold, every observed state change
//! must be an edge of the lifecycle diagram, and terminal states must
//! never move again. Inapplicable events must reject without mutating.
//!
//! The integration half pins the cancellation *timing* contract on a
//! live server: a cancel against a running job is honored at the job's
//! next macro-step boundary — the job ends `cancelled`, never `done`,
//! and its spill trail is gone.

use std::time::{Duration, Instant};

use proptest::prelude::*;
use simd_tree_search::serve::{client, JobServer, JobState, JobTable, ServeConfig};

/// One scheduler event. Job indices are resolved modulo the ids issued
/// so far, so sequences stay meaningful however many submits occur.
#[derive(Debug, Clone)]
enum Event {
    Submit,
    Claim,
    Park(usize),
    Complete(usize),
    Fail(usize),
    FinishCancelled(usize),
    Cancel(usize),
}

fn arb_event() -> impl Strategy<Value = Event> {
    prop_oneof![
        2 => Just(Event::Submit),
        3 => Just(Event::Claim),
        2 => (0usize..64).prop_map(Event::Park),
        2 => (0usize..64).prop_map(Event::Complete),
        1 => (0usize..64).prop_map(Event::Fail),
        1 => (0usize..64).prop_map(Event::FinishCancelled),
        2 => (0usize..64).prop_map(Event::Cancel),
    ]
}

/// The lifecycle diagram as a relation: every legal `(from, to)` edge.
fn legal_edge(from: JobState, to: JobState) -> bool {
    use JobState::*;
    matches!(
        (from, to),
        (Queued, Running)          // claim
            | (Queued, Cancelled)  // cancel while waiting
            | (Running, Parked)    // preempt at a boundary
            | (Running, Done)      // finish
            | (Running, Failed)    // spill failure
            | (Running, Cancelled) // cancel observed at a boundary
            | (Parked, Running)    // re-claim
            | (Parked, Cancelled) // cancel while parked
    )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    #[test]
    fn random_event_interleavings_never_take_an_illegal_transition(
        events in proptest::collection::vec(arb_event(), 1..200),
    ) {
        let mut table = JobTable::new();
        let mut ids: Vec<u64> = Vec::new();

        for event in events {
            let pick = |k: usize| ids.get(k % ids.len().max(1)).copied();
            let before: Vec<(u64, JobState, u32)> =
                ids.iter().map(|&id| {
                    let j = table.get(id).expect("issued ids persist");
                    (id, j.state, j.preemptions)
                }).collect();

            let applied = match event {
                Event::Submit => {
                    let id = table.submit();
                    prop_assert!(ids.last().is_none_or(|&last| id == last + 1),
                        "ids are sequential and never reused");
                    ids.push(id);
                    true
                }
                Event::Claim => table.claim_next().is_some(),
                Event::Park(k) => pick(k).is_some_and(|id| table.park(id)),
                Event::Complete(k) => pick(k).is_some_and(|id| table.complete(id)),
                Event::Fail(k) => pick(k).is_some_and(|id| table.fail(id)),
                Event::FinishCancelled(k) =>
                    pick(k).is_some_and(|id| table.finish_cancelled(id)),
                Event::Cancel(k) => pick(k).and_then(|id| table.cancel(id)).is_some(),
            };

            table.check_invariants();
            for (id, old_state, old_preemptions) in before {
                let job = table.get(id).expect("issued ids persist");
                if job.state != old_state {
                    prop_assert!(applied, "a rejected event mutated job {id}");
                    prop_assert!(
                        legal_edge(old_state, job.state),
                        "illegal transition {:?} → {:?} on job {id}",
                        old_state, job.state
                    );
                    prop_assert!(!old_state.is_terminal(),
                        "terminal job {id} moved to {:?}", job.state);
                }
                prop_assert!(job.preemptions >= old_preemptions,
                    "preemption counts are monotone");
            }
        }
    }

    /// A cancelled-or-finished job stays exactly where it is forever,
    /// whatever storm of events follows.
    #[test]
    fn terminal_states_are_absorbing(
        prefix in proptest::collection::vec(arb_event(), 1..60),
        suffix in proptest::collection::vec(arb_event(), 1..60),
    ) {
        let mut table = JobTable::new();
        let mut ids: Vec<u64> = Vec::new();
        let drive = |table: &mut JobTable, ids: &mut Vec<u64>, events: &[Event]| {
            for event in events {
                let pick = |ids: &[u64], k: usize| ids.get(k % ids.len().max(1)).copied();
                match event.clone() {
                    Event::Submit => {
                        let id = table.submit();
                        ids.push(id);
                    }
                    Event::Claim => {
                        table.claim_next();
                    }
                    Event::Park(k) => {
                        if let Some(id) = pick(ids, k) {
                            table.park(id);
                        }
                    }
                    Event::Complete(k) => {
                        if let Some(id) = pick(ids, k) {
                            table.complete(id);
                        }
                    }
                    Event::Fail(k) => {
                        if let Some(id) = pick(ids, k) {
                            table.fail(id);
                        }
                    }
                    Event::FinishCancelled(k) => {
                        if let Some(id) = pick(ids, k) {
                            table.finish_cancelled(id);
                        }
                    }
                    Event::Cancel(k) => {
                        if let Some(id) = pick(ids, k) {
                            table.cancel(id);
                        }
                    }
                }
            }
        };
        drive(&mut table, &mut ids, &prefix);
        let terminal: Vec<(u64, JobState)> = ids
            .iter()
            .filter_map(|&id| {
                let s = table.get(id).expect("issued").state;
                s.is_terminal().then_some((id, s))
            })
            .collect();
        drive(&mut table, &mut ids, &suffix);
        for (id, state) in terminal {
            prop_assert_eq!(table.get(id).expect("issued").state, state,
                "terminal job {} moved", id);
        }
    }
}

#[test]
fn cancel_is_honored_at_the_next_macro_step_boundary() {
    let dir =
        std::env::temp_dir().join(format!("uts-service-lifecycle-cancel-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    let mut cfg = ServeConfig::new(&dir);
    cfg.slots = 1;
    cfg.quantum_ms = 60_000; // the governor must NOT be what stops the job
    let server = JobServer::start(cfg).unwrap();
    let addr = server.addr();

    // A deep tree: many macro-step boundaries ahead when the cancel lands.
    let spec = r#"{"workload":{"kind":"synth","seed":4242,"b_max":8,"depth_limit":9},"p":16}"#;
    let (status, _) = client::post(addr, "/submit", spec);
    assert_eq!(status, 200);

    let deadline = Instant::now() + Duration::from_secs(60);
    loop {
        let (_, body) = client::get(addr, "/status/1");
        if body.contains("\"running\"") {
            break;
        }
        assert!(!body.contains("\"done\""), "job finished before the cancel could land");
        assert!(Instant::now() < deadline, "job never started running");
        std::thread::sleep(Duration::from_millis(1));
    }
    let (status, body) = client::post(addr, "/cancel/1", "");
    assert_eq!(status, 200, "{body}");

    // The running engine observes the raised signal at its next boundary
    // and stops as cancelled — never as done.
    loop {
        let (_, body) = client::get(addr, "/status/1");
        if body.contains("\"cancelled\"") {
            break;
        }
        assert!(!body.contains("\"done\""), "cancel was not honored: job ran to completion");
        assert!(Instant::now() < deadline, "cancel never took effect");
        std::thread::sleep(Duration::from_millis(1));
    }
    let (status, body) = client::get(addr, "/result/1");
    assert_eq!(status, 409, "a cancelled job has no result: {body}");
    assert!(!dir.join("job-00000001.park").exists(), "cancel left a parked snapshot behind");
    assert!(!dir.join("job-00000001.done").exists(), "cancel left a result behind");

    // Cancelling again is idempotent; cancelling the void is a 404.
    let (status, body) = client::post(addr, "/cancel/1", "");
    assert_eq!(status, 200);
    assert!(body.contains("cancelled"), "{body}");
    let (status, _) = client::post(addr, "/cancel/7", "");
    assert_eq!(status, 404);

    server.shutdown();
    let _ = std::fs::remove_dir_all(&dir);
}
