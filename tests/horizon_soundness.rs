//! Horizon soundness: the macro engine batches `H` expansion cycles only
//! after proving the trigger cannot *effectively* fire before the next
//! checkpoint. The proof obligation, checked here against the per-cycle
//! reference engine: every balancing phase the reference performs lands
//! exactly on a macro-step boundary — never strictly inside a batch — and
//! the macro-steps partition the cycle count exactly.

use proptest::prelude::*;
use simd_tree_search::prelude::*;
use simd_tree_search::synth::GeometricTree;

fn arb_scheme() -> impl Strategy<Value = Scheme> {
    prop_oneof![
        (0.05f64..0.95).prop_map(Scheme::gp_static),
        (0.05f64..0.95).prop_map(Scheme::ngp_static),
        Just(Scheme::gp_dk()),
        Just(Scheme::ngp_dk()),
        Just(Scheme::gp_dp()),
        Just(Scheme::ngp_dp()),
        Just(Scheme::fess()),
        Just(Scheme::fegs()),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Random trees × schemes × machine sizes: no balancing phase of the
    /// per-cycle reference run falls strictly inside a macro-step.
    #[test]
    fn trigger_never_fires_inside_a_macro_step(
        seed in 0u64..300,
        scheme in arb_scheme(),
        p_log in 0u32..9,
    ) {
        let tree = GeometricTree { seed, b_max: 6, depth_limit: 5 };
        let cfg = EngineConfig::new(1usize << p_log, scheme, CostModel::cm2())
            .with_trace()
            .with_horizon_log();
        let out = run(&tree, &cfg);
        let reference = run_reference(&tree, &cfg);

        // The steps partition [0, N_expand) and honor their horizons.
        let mut checkpoints = Vec::with_capacity(out.macro_steps.len());
        let mut cursor = 0u64;
        for step in &out.macro_steps {
            prop_assert_eq!(step.start_cycle, cursor);
            prop_assert!(step.horizon >= 1, "horizon must be a positive bound");
            prop_assert!(step.ran >= 1 && step.ran <= step.horizon);
            cursor += step.ran;
            checkpoints.push(cursor);
        }
        prop_assert_eq!(cursor, out.report.n_expand, "steps must cover the run");
        prop_assert_eq!(out.report.n_expand, reference.report.n_expand);

        // Every balancing phase the per-cycle oracle performs sits on a
        // checkpoint (phase events are stamped with the cycle count at the
        // moment the machine leaves the search phase).
        for event in &reference.report.phase_log {
            prop_assert!(
                checkpoints.binary_search(&event.at_cycle).is_ok(),
                "reference balanced at cycle {} but the macro engine's checkpoints are {:?}",
                event.at_cycle,
                checkpoints
            );
        }
    }
}

/// The init phase of dynamic triggers balances after (almost) every cycle;
/// the macro engine must degrade to single-cycle steps there and still
/// line up with the reference.
#[test]
fn init_phase_runs_single_cycle_steps() {
    // Deep enough that the run has a real steady state after the init
    // ramp (at depth 6 the whole search fits inside the ramp at P=128).
    let tree = GeometricTree { seed: 5, b_max: 8, depth_limit: 7 };
    let cfg =
        EngineConfig::new(128, Scheme::gp_dk(), CostModel::cm2()).with_trace().with_horizon_log();
    assert_eq!(cfg.init_fraction, Some(0.85), "dynamic scheme gets the init phase");
    let out = run(&tree, &cfg);
    let reference = run_reference(&tree, &cfg);
    assert_eq!(out.report.phase_log, reference.report.phase_log);

    // While fewer than 85% of PEs hold work the engine steps one cycle at
    // a time; the first macro-step must therefore be a single cycle.
    let first = out.macro_steps.first().expect("non-empty run");
    assert_eq!((first.horizon, first.ran), (1, 1));
    // And once the init phase hands over, real horizons appear.
    assert!(
        out.macro_steps.iter().any(|s| s.ran > 1),
        "no batching happened at all: {:?}",
        &out.macro_steps[..out.macro_steps.len().min(16)]
    );
}

/// `stop_on_goal` needs per-cycle goal observation: every step must be a
/// single cycle so the early exit lands on the same cycle as the oracle's.
#[test]
fn stop_on_goal_forces_single_cycle_steps() {
    let tree = simd_tree_search::synth::BinomialTree::with_q(9, 64, 4, 0.22);
    let mut cfg = EngineConfig::new(16, Scheme::gp_static(0.8), CostModel::cm2())
        .with_trace()
        .with_horizon_log();
    cfg.stop_on_goal = true;
    let out = run(&tree, &cfg);
    assert!(out.macro_steps.iter().all(|s| s.horizon == 1 && s.ran == 1));
}
