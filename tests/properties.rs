//! Workspace-level property tests: for randomized trees, schemes and
//! machine sizes, the lockstep engine preserves the serial search exactly
//! and its accounting stays consistent.

use proptest::prelude::*;
use simd_tree_search::prelude::*;
use simd_tree_search::synth::{BinomialTree, GeometricTree};

fn arb_scheme() -> impl Strategy<Value = Scheme> {
    prop_oneof![
        (0.05f64..0.95).prop_map(Scheme::gp_static),
        (0.05f64..0.95).prop_map(Scheme::ngp_static),
        Just(Scheme::gp_dk()),
        Just(Scheme::ngp_dk()),
        Just(Scheme::gp_dp()),
        Just(Scheme::ngp_dp()),
        Just(Scheme::fess()),
        Just(Scheme::fegs()),
    ]
}

fn arb_split() -> impl Strategy<Value = SplitPolicy> {
    prop_oneof![Just(SplitPolicy::Bottom), Just(SplitPolicy::Half), Just(SplitPolicy::Top)]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Any scheme, any machine size, any split policy: the parallel search
    /// expands the serial node set and finds the serial goal count.
    #[test]
    fn engine_preserves_serial_search(
        seed in 0u64..500,
        scheme in arb_scheme(),
        split in arb_split(),
        p_log in 0u32..9,
    ) {
        let tree = GeometricTree { seed, b_max: 6, depth_limit: 5 };
        let serial = serial_dfs(&tree);
        let p = 1usize << p_log;
        let mut cfg = EngineConfig::new(p, scheme, CostModel::cm2()).with_split(split);
        cfg.max_cycles = Some(4_000_000); // safety valve, never expected
        let out = run(&tree, &cfg);
        prop_assert!(!out.truncated);
        prop_assert_eq!(out.report.nodes_expanded, serial.expanded);
        prop_assert_eq!(out.goals, serial.goals);
    }

    /// The paper's accounting identity (Sec. 3.1) holds for every run.
    #[test]
    fn accounting_identity_always_holds(
        seed in 0u64..300,
        scheme in arb_scheme(),
        p_log in 0u32..8,
    ) {
        let tree = GeometricTree { seed, b_max: 6, depth_limit: 5 };
        let out = run(&tree, &EngineConfig::new(1usize << p_log, scheme, CostModel::cm2()));
        prop_assert!(out.report.accounting_identity_holds());
        // Efficiency is a probability; speedup never exceeds P.
        prop_assert!(out.report.efficiency > 0.0 && out.report.efficiency <= 1.0 + 1e-12);
        prop_assert!(out.report.speedup() <= out.report.p as f64 + 1e-9);
    }

    /// Runs are deterministic: identical (problem, config) → identical
    /// schedule, down to every counter.
    #[test]
    fn runs_are_deterministic(seed in 0u64..200, scheme in arb_scheme()) {
        let tree = BinomialTree::with_q(seed, 16, 4, 0.2);
        let cfg = EngineConfig::new(96, scheme, CostModel::cm2());
        let a = run(&tree, &cfg);
        let b = run(&tree, &cfg);
        prop_assert_eq!(a.report.n_expand, b.report.n_expand);
        prop_assert_eq!(a.report.n_lb, b.report.n_lb);
        prop_assert_eq!(a.report.n_transfers, b.report.n_transfers);
        prop_assert_eq!(a.report.t_par, b.report.t_par);
    }

    /// Raising the balancing-cost multiplier never speeds the run up.
    #[test]
    fn costlier_balancing_never_helps(seed in 0u64..100, mult in 2u32..20) {
        let tree = GeometricTree { seed, b_max: 6, depth_limit: 5 };
        let base = run(&tree, &EngineConfig::new(64, Scheme::gp_static(0.8), CostModel::cm2()));
        let dear = run(
            &tree,
            &EngineConfig::new(64, Scheme::gp_static(0.8), CostModel::cm2().with_lb_multiplier(mult)),
        );
        prop_assert!(dear.report.t_par >= base.report.t_par);
        prop_assert!(dear.report.efficiency <= base.report.efficiency + 1e-12);
    }
}
