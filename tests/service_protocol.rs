//! Protocol rejection suite + golden `status` fixture (quick tier).
//!
//! Mirrors the five-way `CkptError` rejection discipline one layer up:
//! each way a request can be refused maps to a *distinct* typed error —
//! a distinct `kind` tag and a distinct HTTP status — and this suite
//! pins each one independently:
//!
//! | rejection | kind | status |
//! |---|---|---|
//! | malformed JSON / bad spec / bad route | `proto` | 400 |
//! | unknown job id | `unknown_job` | 404 |
//! | result of an unfinished job | `not_ready` | 409 |
//! | oversized request body | `body_too_large` | 413 |
//! | fingerprint-mismatched / unreadable spill state | `spill` | 500 |
//!
//! The golden half freezes the `status` response schema in
//! `tests/fixtures/service_status.json`; regenerate intentional changes
//! with `UPDATE_GOLDEN=1 cargo test --test service_protocol`.

use std::time::{Duration, Instant};

use simd_tree_search::ckpt::spill;
use simd_tree_search::prelude::PreemptSignal;
use simd_tree_search::serve::{client, JobServer, JobSpec, ServeConfig};

fn scratch_dir(tag: &str) -> std::path::PathBuf {
    let dir = std::env::temp_dir().join(format!("uts-service-proto-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

fn start(tag: &str) -> (JobServer, std::path::PathBuf) {
    let dir = scratch_dir(tag);
    let server = JobServer::start(ServeConfig::new(&dir)).unwrap();
    (server, dir)
}

fn assert_rejection(status: u16, body: &str, want_status: u16, want_kind: &str) {
    assert_eq!(status, want_status, "{body}");
    assert!(
        body.contains(&format!("\"kind\":\"{want_kind}\"")),
        "expected kind `{want_kind}` in: {body}"
    );
}

#[test]
fn malformed_json_and_bad_specs_are_proto_rejections() {
    let (server, dir) = start("proto");
    let addr = server.addr();
    for bad in [
        "{not json",
        "",
        r#"{"workload":{"kind":"synth"},"unknown_knob":1}"#,
        r#"{"workload":{"kind":"antimatter"}}"#,
        r#"{"workload":{"kind":"synth"},"p":0}"#,
        r#"{"workload":{"kind":"synth"},"scheme":"gp-s:7.5"}"#,
        r#"{"workload":{"kind":"synth"},"engine":"gpu"}"#,
        r#"{"p":16}"#,
        r#"[1,2,3]"#,
    ] {
        let (status, body) = client::post(addr, "/submit", bad);
        assert_rejection(status, &body, 400, "proto");
    }
    // Unroutable paths and ids that are not numbers are protocol errors
    // too — not 404s, which are reserved for well-formed unknown ids.
    let (status, body) = client::get(addr, "/nonsense");
    assert_rejection(status, &body, 400, "proto");
    let (status, body) = client::get(addr, "/status/banana");
    assert_rejection(status, &body, 400, "proto");
    let (status, body) = client::raw(addr, "GET /jobs SPDY/9\r\n\r\n");
    assert_rejection(status, &body, 400, "proto");
    server.shutdown();
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn unknown_job_ids_are_404_on_every_endpoint() {
    let (server, dir) = start("unknown");
    let addr = server.addr();
    for path in ["/status/42", "/result/42"] {
        let (status, body) = client::get(addr, path);
        assert_rejection(status, &body, 404, "unknown_job");
        assert!(body.contains("42"), "the offending id is named: {body}");
    }
    let (status, body) = client::post(addr, "/cancel/42", "");
    assert_rejection(status, &body, 404, "unknown_job");
    server.shutdown();
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn results_of_unfinished_jobs_are_not_ready() {
    let dir = scratch_dir("notready");
    let mut cfg = ServeConfig::new(&dir);
    cfg.slots = 1;
    cfg.quantum_ms = 60_000;
    let server = JobServer::start(cfg).unwrap();
    let addr = server.addr();
    // Job 1 hogs the single slot; job 2 sits queued behind it.
    let long = r#"{"workload":{"kind":"synth","seed":31,"b_max":8,"depth_limit":9},"p":16}"#;
    let short = r#"{"workload":{"kind":"synth","seed":32,"b_max":6,"depth_limit":4},"p":16}"#;
    client::post(addr, "/submit", long);
    client::post(addr, "/submit", short);
    let (status, body) = client::get(addr, "/result/2");
    assert_rejection(status, &body, 409, "not_ready");
    server.shutdown();
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn a_post_without_content_length_is_rejected_up_front() {
    // A POST body without a `Content-Length` header is unreadable framing:
    // the server used to default the length to 0, silently read an empty
    // body, and fail later with a confusing "empty spec" parse error. It
    // must instead reject the frame itself, naming the missing header.
    let (server, dir) = start("no-length");
    let addr = server.addr();
    let frame = "POST /submit HTTP/1.1\r\nhost: x\r\nconnection: close\r\n\r\n\
                 {\"workload\":{\"kind\":\"synth\",\"seed\":3}}";
    let (status, body) = client::raw(addr, frame);
    assert_rejection(status, &body, 400, "proto");
    assert!(body.contains("content-length"), "the missing header is named: {body}");
    // A GET without the header stays fine — there is no body to frame.
    let (status, _) = client::get(addr, "/jobs");
    assert_eq!(status, 200);
    server.shutdown();
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn oversized_bodies_are_refused_from_the_header_alone() {
    let (server, dir) = start("oversize");
    let addr = server.addr();
    // Declare far more than the cap without sending it: the server must
    // reject from `Content-Length`, not buffer and see.
    let frame =
        format!("POST /submit HTTP/1.1\r\nhost: x\r\ncontent-length: {}\r\n\r\n", 10 * 1024 * 1024);
    let (status, body) = client::raw(addr, &frame);
    assert_rejection(status, &body, 413, "body_too_large");
    server.shutdown();
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn a_fingerprint_mismatched_spill_file_fails_the_job_as_spill() {
    // Craft a spill directory by hand: job 1's spec says p = 32, but its
    // parked snapshot was taken under p = 16 — the container decodes
    // fine, the config fingerprint does not match, and the job must
    // surface as failed with a `spill` error, not crash the server or
    // silently restart.
    let dir = scratch_dir("mismatch");
    std::fs::create_dir_all(&dir).unwrap();
    let spec_16 = JobSpec::parse(
        r#"{"workload":{"kind":"synth","seed":8,"b_max":8,"depth_limit":6},"p":16}"#,
    )
    .unwrap();
    let signal = PreemptSignal::new();
    signal.raise();
    let (_, bytes) = spec_16.run_slice(None, &signal).unwrap();
    spill::park(&dir, 1, &bytes.expect("preempted slice parks")).unwrap();
    std::fs::write(
        dir.join("job-00000001.spec"),
        r#"{"workload":{"kind":"synth","seed":8,"b_max":8,"depth_limit":6},"p":32}"#,
    )
    .unwrap();

    let server = JobServer::start(ServeConfig::new(&dir)).unwrap();
    let addr = server.addr();
    let deadline = Instant::now() + Duration::from_secs(60);
    loop {
        let (status, body) = client::get(addr, "/result/1");
        if status == 500 {
            assert_rejection(status, &body, 500, "spill");
            break;
        }
        assert_eq!(status, 409, "unexpected: {body}");
        assert!(Instant::now() < deadline, "mismatched job never failed");
        std::thread::sleep(Duration::from_millis(2));
    }
    let (_, body) = client::get(addr, "/status/1");
    assert!(body.contains("\"failed\""), "{body}");
    server.shutdown();
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn status_response_matches_the_golden_fixture() {
    // A deterministic scenario: fresh server, one small job, run to
    // completion with no preemption pressure (2 slots, 1 job), then ask
    // for its status. Everything in the response — schema, state name,
    // preemption count, config fingerprint — must be byte-stable.
    let dir = scratch_dir("golden");
    let mut cfg = ServeConfig::new(&dir);
    cfg.slots = 2;
    cfg.quantum_ms = 60_000;
    let server = JobServer::start(cfg).unwrap();
    let addr = server.addr();
    let (status, body) = client::post(
        addr,
        "/submit",
        r#"{"workload":{"kind":"synth","seed":11,"b_max":8,"depth_limit":6},"p":64,"scheme":"gp-dk"}"#,
    );
    assert_eq!(status, 200, "{body}");
    let deadline = Instant::now() + Duration::from_secs(60);
    loop {
        let (status, _) = client::get(addr, "/result/1");
        if status == 200 {
            break;
        }
        assert!(Instant::now() < deadline, "golden job never finished");
        std::thread::sleep(Duration::from_millis(2));
    }
    let (status, got) = client::get(addr, "/status/1");
    assert_eq!(status, 200);
    server.shutdown();
    let _ = std::fs::remove_dir_all(&dir);

    let path = concat!(env!("CARGO_MANIFEST_DIR"), "/tests/fixtures/service_status.json");
    if std::env::var_os("UPDATE_GOLDEN").is_some() {
        std::fs::write(path, &got).expect("write golden fixture");
        return;
    }
    let golden = std::fs::read_to_string(path).expect("golden fixture exists");
    assert_eq!(
        got, golden,
        "status response drifted from tests/fixtures/service_status.json; if \
         the change is intentional, regenerate with UPDATE_GOLDEN=1 and review"
    );
}
