//! On-the-fly UTS workload family: trees whose node state is *recomputed,
//! not stored*.
//!
//! The paper's isoefficiency claims (Figs. 4 & 7) only bind at problem
//! sizes where the per-processor work `W/P` dwarfs the balancing overhead
//! `V(P)` — sizes far beyond anything a materialized fixture can hold.
//! This crate provides Galton-Watson trees in the style of the UTS
//! benchmark generators (BOTS `uts_numChildren_*`, the Grappa UTS port):
//! every node carries a *hash-chained RNG state*, children are derived
//! purely from that state, and the whole tree exists only as the O(stack)
//! working set of whichever processors are searching it. A 10^9-node tree
//! costs exactly as much memory as its deepest DFS stack.
//!
//! **The state chain.** A child's state is keyed on the pair
//! `(parent_state, child_index)`:
//!
//! ```text
//! child_state = splitmix64( splitmix64(parent_state) + child_index + 1 )
//! ```
//!
//! The inner hash mixes the parent before the index is folded in, so the
//! addend lands on an already-decorrelated value. Because `splitmix64` is
//! a bijection on `u64`, two children of the *same* parent can never
//! collide (`h(p) + i ≠ h(p) + j` for `i ≠ j`), and a cross-parent
//! collision requires two independent hash outputs to land within `b_max`
//! of each other — a genuine near-collision of the mixer, not the
//! XOR-cancellation relation that makes the legacy `uts-synth` derivation
//! (`splitmix64(parent ^ (i+1)·K)`) collide for constructed parent pairs
//! (see `uts_synth::legacy_child_id` and its regression test).
//!
//! Two families, both with closed-form expected sizes so seed search can
//! aim before it measures:
//!
//! * [`GenFamily::Geometric`] — fan-out uniform on `0..=b_max` with a hard
//!   depth limit; `E[W] = ((b_max/2)^(d+1) - 1) / (b_max/2 - 1)`.
//! * [`GenFamily::Binomial`] — root fan-out `b0`, then every node has `m`
//!   children with probability `q` (subcritical `q·m < 1`);
//!   `E[W] = 1 + b0 / (1 - q·m)`.
//!
//! [`find_gen_tree`] picks the depth limit from the closed form, then
//! scans seeds for a realized `W` within tolerance of a target.

use serde::{Deserialize, Serialize};
use uts_tree::{serial_dfs, TreeProblem};

/// SplitMix64 — the standard 64-bit finalizer (a bijection on `u64`).
/// Kept local so the generator crate is self-contained; bit-identical to
/// `uts_synth::splitmix64`.
#[inline]
pub fn splitmix64(mut z: u64) -> u64 {
    z = z.wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Domain separator folded into the root state of geometric trees.
const GEOMETRIC_ROOT_KEY: u64 = 0x47454F_u64; // "GEO"
/// Domain separator folded into the root state of binomial trees.
const BINOMIAL_ROOT_KEY: u64 = 0x42494E_u64; // "BIN"
/// Domain separator for the fan-out draw, so the branching decision and
/// the child identity chain consume *independent* streams of the state.
const DRAW_KEY: u64 = 0x4452_4157_4452_4157;

/// The hash chain: the state of child `c` of a node with state `parent`.
/// See the module docs for the collision argument.
#[inline]
pub fn chain(parent: u64, c: u32) -> u64 {
    splitmix64(splitmix64(parent).wrapping_add(c as u64 + 1))
}

/// The fan-out draw of a node state (independent of the identity chain).
#[inline]
fn draw(state: u64) -> u64 {
    splitmix64(state ^ DRAW_KEY)
}

/// A node of a generated tree: the chained RNG state and the depth. The
/// entire subtree below a node is a pure function of this 12-byte value —
/// donating a node donates its whole subtree, and a receiver regenerates
/// it without any communication.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct GenNode {
    /// Chained RNG state (determines the subtree).
    pub state: u64,
    /// Depth below the root.
    pub depth: u32,
}

impl uts_tree::CkptNode for GenNode {
    fn encode_node(&self, out: &mut Vec<u8>) {
        uts_tree::codec::put_u64(out, self.state);
        uts_tree::codec::put_u32(out, self.depth);
    }
    fn decode_node(r: &mut uts_tree::Reader<'_>) -> Result<Self, uts_tree::CodecError> {
        Ok(Self { state: r.u64()?, depth: r.u32()? })
    }
}

/// The branching law of a generated tree.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum GenFamily {
    /// Fan-out uniform on `0..=b_max`, hard depth limit. Sizes concentrate
    /// near the mean — the family for hitting a target `W`.
    Geometric {
        /// Maximum fan-out (actual fan-out uniform on `0..=b_max`).
        b_max: u32,
        /// Depth at which every node becomes a leaf.
        depth_limit: u32,
    },
    /// Root has exactly `b0` children; every other node has `m` children
    /// with probability `q` (else it is a leaf). Heavy-tailed and highly
    /// irregular — the load-balancing stress family.
    Binomial {
        /// Root fan-out.
        b0: u32,
        /// Fan-out of internal non-root nodes.
        m: u32,
        /// `q` as a fraction of `2^64` (see [`GenTree::binomial`]).
        q_threshold: u64,
    },
}

/// A generated tree: seed + family. `expand` is allocation-free (children
/// are hashed straight into the caller's buffer) and node state is never
/// stored anywhere but the live DFS stacks.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct GenTree {
    /// Tree seed; different seeds give independent trees.
    pub seed: u64,
    /// The branching law.
    pub family: GenFamily,
}

impl GenTree {
    /// A geometric tree: fan-out uniform on `0..=b_max`, leaves at
    /// `depth_limit`.
    pub fn geometric(seed: u64, b_max: u32, depth_limit: u32) -> Self {
        Self { seed, family: GenFamily::Geometric { b_max, depth_limit } }
    }

    /// A binomial tree with branching probability `q`.
    ///
    /// # Panics
    /// Panics if `q` is outside `[0, 1)` or `q·m >= 1` (a supercritical
    /// process is infinite with positive probability).
    pub fn binomial(seed: u64, b0: u32, m: u32, q: f64) -> Self {
        assert!((0.0..1.0).contains(&q), "q must be a probability");
        assert!(q * (m as f64) < 1.0, "supercritical binomial tree would be infinite");
        Self {
            seed,
            family: GenFamily::Binomial { b0, m, q_threshold: (q * (u64::MAX as f64)) as u64 },
        }
    }

    /// Expected node count from the branching-process closed form. The
    /// realized size concentrates near this for the geometric family and
    /// is heavy-tailed around it for the binomial family.
    pub fn expected_size(&self) -> f64 {
        match self.family {
            GenFamily::Geometric { b_max, depth_limit } => {
                let b = b_max as f64 / 2.0;
                if (b - 1.0).abs() < 1e-9 {
                    return (depth_limit + 1) as f64;
                }
                (b.powi(depth_limit as i32 + 1) - 1.0) / (b - 1.0)
            }
            GenFamily::Binomial { b0, m, q_threshold } => {
                let q = q_threshold as f64 / u64::MAX as f64;
                1.0 + b0 as f64 / (1.0 - q * m as f64)
            }
        }
    }

    /// Worst-case untried alternatives on one DFS stack searching this
    /// tree alone: each open depth holds at most `b - 1` siblings plus the
    /// top frame's full fan-out. Donations can only shrink a stack, so
    /// this bounds per-PE memory for any ensemble too (the quantity
    /// `Outcome::peak_stack_nodes` measures).
    pub fn stack_bound(&self) -> Option<usize> {
        match self.family {
            GenFamily::Geometric { b_max, depth_limit } => {
                Some((depth_limit as usize) * (b_max as usize).saturating_sub(1).max(1) + 1)
            }
            // Binomial trees have no depth bound; the *expected* depth is
            // finite (subcritical) but no worst case exists.
            GenFamily::Binomial { .. } => None,
        }
    }

    fn fanout(&self, node: &GenNode) -> u32 {
        match self.family {
            GenFamily::Geometric { b_max, depth_limit } => {
                if node.depth >= depth_limit {
                    0
                } else {
                    (draw(node.state) % (b_max as u64 + 1)) as u32
                }
            }
            GenFamily::Binomial { b0, m, q_threshold } => {
                if node.depth == 0 {
                    b0
                } else if draw(node.state) <= q_threshold {
                    m
                } else {
                    0
                }
            }
        }
    }
}

impl TreeProblem for GenTree {
    type Node = GenNode;

    fn root(&self) -> GenNode {
        let key = match self.family {
            GenFamily::Geometric { .. } => GEOMETRIC_ROOT_KEY,
            GenFamily::Binomial { .. } => BINOMIAL_ROOT_KEY,
        };
        GenNode { state: splitmix64(self.seed ^ key), depth: 0 }
    }

    fn expand(&self, node: &GenNode, out: &mut Vec<GenNode>) {
        let fanout = self.fanout(node);
        for c in 0..fanout {
            out.push(GenNode { state: chain(node.state, c), depth: node.depth + 1 });
        }
    }

    fn is_goal(&self, node: &GenNode) -> bool {
        // Deterministic sparse goals (~1/61 of nodes) so goal propagation
        // is exercised by parallel runs.
        node.state.is_multiple_of(61)
    }
}

/// A generator together with its measured size.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct SizedGenTree {
    /// The generator.
    pub tree: GenTree,
    /// Measured node count `W`.
    pub w: u64,
}

/// Find a geometric generator whose realized size lies within `rel_tol`
/// of `target`: the depth limit is chosen from the closed-form expected
/// size (the `d` whose `E[W]` is nearest the target in log-space), then
/// seeds `0..max_seeds` are measured by serial DFS. Returns the closest
/// tree found even if outside tolerance (callers report measured `W`).
///
/// Each probe costs one serial DFS of roughly `target` nodes — for very
/// large targets keep `max_seeds` small (the geometric family
/// concentrates, so a handful of seeds suffices).
pub fn find_gen_tree(target: u64, rel_tol: f64, max_seeds: u64) -> SizedGenTree {
    let b_max = 8u32;
    let lt = (target.max(2) as f64).ln();
    let depth_limit = (1u32..=64)
        .min_by(|&a, &b| {
            let da = (GenTree::geometric(0, b_max, a).expected_size().ln() - lt).abs();
            let db = (GenTree::geometric(0, b_max, b).expected_size().ln() - lt).abs();
            da.partial_cmp(&db).expect("finite expectations")
        })
        .expect("non-empty depth range");
    let mut best: Option<SizedGenTree> = None;
    for seed in 0..max_seeds {
        let tree = GenTree::geometric(seed, b_max, depth_limit);
        let w = serial_dfs(&tree).expanded;
        let dist = ((w as f64).ln() - lt).abs();
        if best.as_ref().is_none_or(|b| dist < ((b.w as f64).ln() - lt).abs()) {
            best = Some(SizedGenTree { tree, w });
        }
        if let Some(b) = &best {
            if (b.w as f64 / target as f64 - 1.0).abs() <= rel_tol {
                break;
            }
        }
    }
    best.expect("max_seeds > 0")
}

#[cfg(test)]
mod tests {
    use super::*;
    use uts_tree::{serial_dfs, CkptNode, Reader};

    #[test]
    fn siblings_never_collide() {
        // splitmix64 is a bijection, so within one parent the chain is
        // injective by construction; check a window anyway.
        for p in [0u64, 1, 0xDEAD_BEEF, u64::MAX] {
            let ids: Vec<u64> = (0..64).map(|c| chain(p, c)).collect();
            let mut dedup = ids.clone();
            dedup.sort_unstable();
            dedup.dedup();
            assert_eq!(dedup.len(), ids.len(), "sibling collision under parent {p:#x}");
        }
    }

    #[test]
    fn legacy_collision_construction_does_not_collide_here() {
        // The legacy uts-synth derivation `h(parent ^ (c+1)·K)` collides
        // for any parent pair p2 = p1 ^ 1·K ^ 2·K at child indices (0, 1).
        // The chained derivation must not reproduce that relation.
        const K: u64 = 0x9FB2_1C65_1E98_DF25;
        for p1 in [1u64, 42, 0xFEED_F00D, 0x0123_4567_89AB_CDEF] {
            let p2 = p1 ^ K ^ 2u64.wrapping_mul(K);
            assert_ne!(p1, p2);
            assert_ne!(chain(p1, 0), chain(p2, 1), "legacy collision relation survived");
        }
    }

    #[test]
    fn generation_is_deterministic() {
        let t = GenTree::geometric(7, 8, 6);
        assert_eq!(serial_dfs(&t).expanded, serial_dfs(&t).expanded);
        let b = GenTree::binomial(7, 16, 4, 0.2);
        assert_eq!(serial_dfs(&b).expanded, serial_dfs(&b).expanded);
    }

    #[test]
    fn families_and_seeds_are_independent() {
        let g = serial_dfs(&GenTree::geometric(7, 8, 6)).expanded;
        let g2 = serial_dfs(&GenTree::geometric(8, 8, 6)).expanded;
        assert_ne!(g, g2, "seeds must decorrelate");
    }

    #[test]
    fn geometric_respects_depth_limit_and_stack_bound() {
        let t = GenTree::geometric(3, 8, 5);
        struct DepthCheck(GenTree);
        impl TreeProblem for DepthCheck {
            type Node = GenNode;
            fn root(&self) -> GenNode {
                self.0.root()
            }
            fn expand(&self, n: &GenNode, out: &mut Vec<GenNode>) {
                assert!(n.depth <= 5);
                self.0.expand(n, out);
            }
        }
        serial_dfs(&DepthCheck(t));
        assert_eq!(t.stack_bound(), Some(5 * 7 + 1));
        assert!(GenTree::binomial(3, 8, 4, 0.2).stack_bound().is_none());
    }

    #[test]
    fn binomial_q_zero_gives_star_tree() {
        let t = GenTree::binomial(5, 10, 4, 0.0);
        assert_eq!(serial_dfs(&t).expanded, 11, "root + 10 leaves");
        assert!((t.expected_size() - 11.0).abs() < 1e-9);
    }

    #[test]
    #[should_panic(expected = "supercritical")]
    fn supercritical_binomial_rejected() {
        let _ = GenTree::binomial(0, 4, 4, 0.3);
    }

    #[test]
    fn geometric_sizes_near_expectation() {
        let mut total = 0u64;
        let n = 8;
        for seed in 0..n {
            total += serial_dfs(&GenTree::geometric(seed, 8, 6)).expanded;
        }
        let mean = total as f64 / n as f64;
        let expect = GenTree::geometric(0, 8, 6).expected_size();
        assert!(mean > expect / 3.0 && mean < expect * 3.0, "mean={mean} expect={expect}");
    }

    #[test]
    fn sibling_subtrees_decorrelate() {
        // The legacy bug's symptom: colliding identities replay identical
        // subtrees. Chained states must give siblings (and cousins)
        // independent subtrees — measure a root's children.
        let t = GenTree::geometric(11, 8, 6);
        let mut kids = Vec::new();
        t.expand(&t.root(), &mut kids);
        assert!(kids.len() >= 2, "pick a seed whose root branches");
        let sizes: Vec<u64> = kids
            .iter()
            .map(|k| {
                let sub = GenTree { seed: 0, ..t };
                // Measure the subtree below `k` by DFS from that node.
                struct From(GenTree, GenNode);
                impl TreeProblem for From {
                    type Node = GenNode;
                    fn root(&self) -> GenNode {
                        self.1
                    }
                    fn expand(&self, n: &GenNode, out: &mut Vec<GenNode>) {
                        self.0.expand(n, out);
                    }
                }
                serial_dfs(&From(sub, *k)).expanded
            })
            .collect();
        let mut dedup = sizes.clone();
        dedup.sort_unstable();
        dedup.dedup();
        assert!(dedup.len() > 1, "sibling subtrees all identical: {sizes:?}");
    }

    #[test]
    fn find_gen_tree_hits_target_within_factor_two() {
        let st = find_gen_tree(50_000, 0.10, 64);
        assert!(st.w > 25_000 && st.w < 100_000, "w = {}", st.w);
        assert_eq!(serial_dfs(&st.tree).expanded, st.w);
    }

    #[test]
    fn node_codec_round_trips_byte_stably() {
        for node in [
            GenNode { state: 0, depth: 0 },
            GenNode { state: u64::MAX, depth: u32::MAX },
            GenNode { state: 0x0123_4567_89AB_CDEF, depth: 17 },
        ] {
            let mut bytes = Vec::new();
            node.encode_node(&mut bytes);
            assert_eq!(bytes.len(), 12, "fixed-width codec");
            let mut r = Reader::new(&bytes);
            let back = GenNode::decode_node(&mut r).unwrap();
            assert_eq!(back, node);
            let mut again = Vec::new();
            back.encode_node(&mut again);
            assert_eq!(again, bytes, "re-encode must be byte-identical");
        }
    }
}
