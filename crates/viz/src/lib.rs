//! Dependency-free SVG charts for the reproduction's figures.
//!
//! Just enough of a plotting library to render the paper's data figures
//! (Figs. 3, 4, 7, 8) as standalone `.svg` files: XY line/scatter charts
//! with linear or logarithmic axes, automatic ticks, multiple named
//! series, and a legend. No external crates; output is plain SVG 1.1.
//!
//! ```
//! use uts_viz::{Chart, Scale, Series};
//!
//! let mut chart = Chart::new("Speedup vs P", "processors", "speedup");
//! chart.x_scale(Scale::Log2).add(
//!     Series::line("GP-D^K", vec![(64.0, 55.0), (256.0, 180.0), (1024.0, 420.0)]),
//! );
//! let svg = chart.render();
//! assert!(svg.starts_with("<svg"));
//! assert!(svg.contains("GP-D^K"));
//! ```

pub mod scale;
pub mod svg;

pub use scale::{ticks, Scale};
pub use svg::{Chart, Series, SeriesKind};
