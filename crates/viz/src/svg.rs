//! The chart builder and SVG renderer.

use crate::scale::{tick_label, ticks, Scale};

/// How a series is drawn.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SeriesKind {
    /// Connected polyline with point markers.
    Line,
    /// Point markers only.
    Scatter,
}

/// A named data series.
#[derive(Debug, Clone)]
pub struct Series {
    /// Legend label.
    pub name: String,
    /// `(x, y)` points in data space.
    pub points: Vec<(f64, f64)>,
    /// Drawing style.
    pub kind: SeriesKind,
}

impl Series {
    /// A line series.
    pub fn line(name: impl Into<String>, points: Vec<(f64, f64)>) -> Self {
        Self { name: name.into(), points, kind: SeriesKind::Line }
    }

    /// A scatter series.
    pub fn scatter(name: impl Into<String>, points: Vec<(f64, f64)>) -> Self {
        Self { name: name.into(), points, kind: SeriesKind::Scatter }
    }
}

/// Default categorical palette (distinct, print-safe hues).
const PALETTE: [&str; 8] =
    ["#1f77b4", "#d62728", "#2ca02c", "#9467bd", "#ff7f0e", "#8c564b", "#17becf", "#7f7f7f"];

const WIDTH: f64 = 720.0;
const HEIGHT: f64 = 480.0;
const MARGIN_L: f64 = 72.0;
const MARGIN_R: f64 = 24.0;
const MARGIN_T: f64 = 40.0;
const MARGIN_B: f64 = 56.0;

/// An XY chart.
#[derive(Debug, Clone)]
pub struct Chart {
    title: String,
    x_label: String,
    y_label: String,
    x_scale: Scale,
    y_scale: Scale,
    series: Vec<Series>,
}

impl Chart {
    /// New empty chart with linear axes.
    pub fn new(
        title: impl Into<String>,
        x_label: impl Into<String>,
        y_label: impl Into<String>,
    ) -> Self {
        Self {
            title: title.into(),
            x_label: x_label.into(),
            y_label: y_label.into(),
            x_scale: Scale::Linear,
            y_scale: Scale::Linear,
            series: Vec::new(),
        }
    }

    /// Set the x-axis scale (builder style).
    pub fn x_scale(&mut self, scale: Scale) -> &mut Self {
        self.x_scale = scale;
        self
    }

    /// Set the y-axis scale (builder style).
    pub fn y_scale(&mut self, scale: Scale) -> &mut Self {
        self.y_scale = scale;
        self
    }

    /// Add a series (builder style).
    pub fn add(&mut self, series: Series) -> &mut Self {
        self.series.push(series);
        self
    }

    /// Number of series added so far.
    pub fn series_count(&self) -> usize {
        self.series.len()
    }

    /// Render to an SVG document string.
    ///
    /// # Panics
    /// Panics if no series has any points, or if a log axis receives a
    /// non-positive coordinate.
    pub fn render(&self) -> String {
        let pts: Vec<(f64, f64)> =
            self.series.iter().flat_map(|s| s.points.iter().copied()).collect();
        assert!(!pts.is_empty(), "cannot render a chart with no data");
        let (x_min, x_max) = bounds(pts.iter().map(|p| self.x_scale.forward(p.0)));
        let (y_min, y_max) = bounds(pts.iter().map(|p| self.y_scale.forward(p.1)));
        // Pad degenerate ranges so the mapping stays finite.
        let (x_min, x_max) = pad(x_min, x_max);
        let (y_min, y_max) = pad(y_min, y_max);

        let plot_w = WIDTH - MARGIN_L - MARGIN_R;
        let plot_h = HEIGHT - MARGIN_T - MARGIN_B;
        let px = |x: f64| MARGIN_L + (self.x_scale.forward(x) - x_min) / (x_max - x_min) * plot_w;
        let py = |y: f64| {
            MARGIN_T + plot_h - (self.y_scale.forward(y) - y_min) / (y_max - y_min) * plot_h
        };

        let mut out = String::with_capacity(8192);
        out.push_str(&format!(
            r#"<svg xmlns="http://www.w3.org/2000/svg" width="{WIDTH}" height="{HEIGHT}" viewBox="0 0 {WIDTH} {HEIGHT}" font-family="sans-serif">"#
        ));
        out.push('\n');
        out.push_str(r#"<rect width="100%" height="100%" fill="white"/>"#);
        out.push('\n');
        // Title and axis labels.
        out.push_str(&format!(
            r#"<text x="{:.0}" y="24" text-anchor="middle" font-size="16">{}</text>"#,
            WIDTH / 2.0,
            xml_escape(&self.title)
        ));
        out.push_str(&format!(
            r#"<text x="{:.0}" y="{:.0}" text-anchor="middle" font-size="12">{}</text>"#,
            MARGIN_L + plot_w / 2.0,
            HEIGHT - 12.0,
            xml_escape(&self.x_label)
        ));
        out.push_str(&format!(
            r#"<text x="16" y="{:.0}" text-anchor="middle" font-size="12" transform="rotate(-90 16 {:.0})">{}</text>"#,
            MARGIN_T + plot_h / 2.0,
            MARGIN_T + plot_h / 2.0,
            xml_escape(&self.y_label)
        ));
        out.push('\n');
        // Frame.
        out.push_str(&format!(
            r##"<rect x="{MARGIN_L}" y="{MARGIN_T}" width="{plot_w:.0}" height="{plot_h:.0}" fill="none" stroke="#333"/>"##
        ));
        out.push('\n');
        // Ticks + gridlines.
        for t in ticks(self.x_scale, self.x_scale.inverse(x_min), self.x_scale.inverse(x_max), 6) {
            let x = px(t);
            out.push_str(&format!(
                r##"<line x1="{x:.1}" y1="{MARGIN_T}" x2="{x:.1}" y2="{:.1}" stroke="#ddd"/>"##,
                MARGIN_T + plot_h
            ));
            out.push_str(&format!(
                r#"<text x="{x:.1}" y="{:.1}" text-anchor="middle" font-size="11">{}</text>"#,
                MARGIN_T + plot_h + 18.0,
                tick_label(t)
            ));
        }
        for t in ticks(self.y_scale, self.y_scale.inverse(y_min), self.y_scale.inverse(y_max), 6) {
            let y = py(t);
            out.push_str(&format!(
                r##"<line x1="{MARGIN_L}" y1="{y:.1}" x2="{:.1}" y2="{y:.1}" stroke="#ddd"/>"##,
                MARGIN_L + plot_w
            ));
            out.push_str(&format!(
                r#"<text x="{:.1}" y="{y:.1}" text-anchor="end" font-size="11" dy="4">{}</text>"#,
                MARGIN_L - 6.0,
                tick_label(t)
            ));
        }
        out.push('\n');
        // Series.
        for (i, s) in self.series.iter().enumerate() {
            let color = PALETTE[i % PALETTE.len()];
            if s.kind == SeriesKind::Line && s.points.len() > 1 {
                let path: Vec<String> =
                    s.points.iter().map(|&(x, y)| format!("{:.1},{:.1}", px(x), py(y))).collect();
                out.push_str(&format!(
                    r#"<polyline points="{}" fill="none" stroke="{color}" stroke-width="1.8"/>"#,
                    path.join(" ")
                ));
            }
            for &(x, y) in &s.points {
                out.push_str(&format!(
                    r#"<circle cx="{:.1}" cy="{:.1}" r="3" fill="{color}"/>"#,
                    px(x),
                    py(y)
                ));
            }
            // Legend entry.
            let ly = MARGIN_T + 16.0 + i as f64 * 18.0;
            out.push_str(&format!(
                r#"<rect x="{:.1}" y="{:.1}" width="12" height="12" fill="{color}"/>"#,
                MARGIN_L + 10.0,
                ly - 10.0
            ));
            out.push_str(&format!(
                r#"<text x="{:.1}" y="{ly:.1}" font-size="12">{}</text>"#,
                MARGIN_L + 28.0,
                xml_escape(&s.name)
            ));
            out.push('\n');
        }
        out.push_str("</svg>\n");
        out
    }
}

fn bounds(vals: impl Iterator<Item = f64>) -> (f64, f64) {
    vals.fold((f64::INFINITY, f64::NEG_INFINITY), |(lo, hi), v| (lo.min(v), hi.max(v)))
}

fn pad(min: f64, max: f64) -> (f64, f64) {
    if (max - min).abs() < 1e-12 {
        (min - 1.0, max + 1.0)
    } else {
        (min, max)
    }
}

fn xml_escape(s: &str) -> String {
    s.replace('&', "&amp;").replace('<', "&lt;").replace('>', "&gt;")
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_chart() -> Chart {
        let mut c = Chart::new("t", "x", "y");
        c.add(Series::line("a", vec![(1.0, 2.0), (2.0, 4.0), (3.0, 8.0)]));
        c.add(Series::scatter("b", vec![(1.5, 3.0)]));
        c
    }

    #[test]
    fn renders_well_formed_svg() {
        let svg = sample_chart().render();
        assert!(svg.starts_with("<svg"));
        assert!(svg.trim_end().ends_with("</svg>"));
        assert_eq!(svg.matches("<polyline").count(), 1, "one line series");
        assert_eq!(svg.matches("<circle").count(), 4, "all points marked");
        assert!(svg.contains(">a<") && svg.contains(">b<"), "legend entries");
    }

    #[test]
    fn log_axes_render() {
        let mut c = Chart::new("iso", "P log P", "W");
        c.x_scale(Scale::Log2).y_scale(Scale::Log10);
        c.add(Series::line("GP", vec![(512.0, 1e5), (8192.0, 2e6)]));
        let svg = c.render();
        assert!(svg.contains("polyline"));
    }

    #[test]
    fn titles_are_escaped() {
        let mut c = Chart::new("a < b & c", "x", "y");
        c.add(Series::line("s", vec![(0.0, 0.0), (1.0, 1.0)]));
        let svg = c.render();
        assert!(svg.contains("a &lt; b &amp; c"));
        assert!(!svg.contains("a < b & c"));
    }

    #[test]
    fn coordinates_stay_inside_canvas() {
        let svg = sample_chart().render();
        for cap in svg.split("cx=\"").skip(1) {
            let x: f64 = cap.split('"').next().unwrap().parse().unwrap();
            assert!((0.0..=720.0).contains(&x));
        }
    }

    #[test]
    fn degenerate_single_point_still_renders() {
        let mut c = Chart::new("p", "x", "y");
        c.add(Series::scatter("one", vec![(5.0, 5.0)]));
        let svg = c.render();
        assert!(svg.contains("circle"));
    }

    #[test]
    #[should_panic(expected = "no data")]
    fn empty_chart_rejected() {
        Chart::new("e", "x", "y").render();
    }
}
