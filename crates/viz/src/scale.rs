//! Axis scales and tick generation.

/// An axis scale.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum Scale {
    /// Linear mapping.
    #[default]
    Linear,
    /// Base-2 logarithmic (natural for processor counts).
    Log2,
    /// Base-10 logarithmic (natural for problem sizes).
    Log10,
}

impl Scale {
    /// Forward transform into "scale space" where the mapping to pixels is
    /// linear.
    ///
    /// # Panics
    /// Panics on non-positive input to a log scale.
    pub fn forward(self, v: f64) -> f64 {
        match self {
            Scale::Linear => v,
            Scale::Log2 => {
                assert!(v > 0.0, "log2 scale needs positive values, got {v}");
                v.log2()
            }
            Scale::Log10 => {
                assert!(v > 0.0, "log10 scale needs positive values, got {v}");
                v.log10()
            }
        }
    }

    /// Inverse transform (scale space → data space).
    pub fn inverse(self, s: f64) -> f64 {
        match self {
            Scale::Linear => s,
            Scale::Log2 => (2.0f64).powf(s),
            Scale::Log10 => (10.0f64).powf(s),
        }
    }
}

/// Generate "nice" tick positions covering `[min, max]` in data space.
///
/// * Linear: 1/2/5×10^k steps targeting ~`want` ticks.
/// * Log scales: one tick per whole power of the base within range (or
///   every k-th power when the range spans many decades).
///
/// # Panics
/// Panics if `min > max`, or on non-positive bounds for log scales.
pub fn ticks(scale: Scale, min: f64, max: f64, want: usize) -> Vec<f64> {
    assert!(min <= max, "tick range is inverted: {min} > {max}");
    if min == max {
        return vec![min];
    }
    match scale {
        Scale::Linear => linear_ticks(min, max, want.max(2)),
        Scale::Log2 | Scale::Log10 => {
            let lo = scale.forward(min).ceil() as i64;
            let hi = scale.forward(max).floor() as i64;
            if lo > hi {
                return vec![min, max];
            }
            let span = (hi - lo + 1) as usize;
            let step = span.div_ceil(want.max(2)).max(1);
            (lo..=hi).step_by(step).map(|e| scale.inverse(e as f64)).collect()
        }
    }
}

fn linear_ticks(min: f64, max: f64, want: usize) -> Vec<f64> {
    let raw_step = (max - min) / want as f64;
    let mag = 10f64.powf(raw_step.log10().floor());
    let norm = raw_step / mag;
    let step = if norm <= 1.0 {
        1.0
    } else if norm <= 2.0 {
        2.0
    } else if norm <= 5.0 {
        5.0
    } else {
        10.0
    } * mag;
    let start = (min / step).ceil() * step;
    let mut out = Vec::new();
    let mut t = start;
    while t <= max + step * 1e-9 {
        // Clean up float noise so labels print nicely.
        out.push((t / step).round() * step);
        t += step;
    }
    out
}

/// Format a tick label compactly (k/M suffixes for large values).
pub fn tick_label(v: f64) -> String {
    let a = v.abs();
    if a >= 1e6 && (v / 1e6).fract().abs() < 1e-9 {
        format!("{}M", (v / 1e6) as i64)
    } else if a >= 1e3 && (v / 1e3).fract().abs() < 1e-9 {
        format!("{}k", (v / 1e3) as i64)
    } else if v.fract().abs() < 1e-9 {
        format!("{}", v as i64)
    } else {
        format!("{v:.2}")
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn linear_forward_is_identity() {
        assert_eq!(Scale::Linear.forward(3.5), 3.5);
        assert_eq!(Scale::Linear.inverse(3.5), 3.5);
    }

    #[test]
    fn log_scales_round_trip() {
        for v in [1.0, 2.0, 1024.0, 1e6] {
            assert!((Scale::Log2.inverse(Scale::Log2.forward(v)) - v).abs() / v < 1e-12);
            assert!((Scale::Log10.inverse(Scale::Log10.forward(v)) - v).abs() / v < 1e-12);
        }
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn log_of_zero_rejected() {
        Scale::Log2.forward(0.0);
    }

    #[test]
    fn linear_ticks_are_nice() {
        let t = ticks(Scale::Linear, 0.0, 1.0, 5);
        assert!(t.contains(&0.0));
        assert!(t.contains(&1.0));
        assert!(t.len() >= 4 && t.len() <= 8, "{t:?}");
    }

    #[test]
    fn log2_ticks_hit_powers() {
        let t = ticks(Scale::Log2, 512.0, 8192.0, 6);
        assert_eq!(t, vec![512.0, 1024.0, 2048.0, 4096.0, 8192.0]);
    }

    #[test]
    fn log10_ticks_decimate_wide_ranges() {
        let t = ticks(Scale::Log10, 1.0, 1e12, 5);
        assert!(t.len() <= 8, "{t:?}");
        assert!(t.iter().all(|&v| (v.log10().fract()).abs() < 1e-9));
    }

    #[test]
    fn degenerate_range_yields_single_tick() {
        assert_eq!(ticks(Scale::Linear, 4.0, 4.0, 5), vec![4.0]);
    }

    #[test]
    fn labels_use_suffixes() {
        assert_eq!(tick_label(1_000_000.0), "1M");
        assert_eq!(tick_label(16_000.0), "16k");
        assert_eq!(tick_label(42.0), "42");
        assert_eq!(tick_label(0.65), "0.65");
    }

    proptest! {
        #[test]
        fn ticks_are_sorted_and_in_range(min in -1e6f64..1e6, span in 1e-3f64..1e6) {
            let max = min + span;
            let t = ticks(Scale::Linear, min, max, 6);
            prop_assert!(t.windows(2).all(|w| w[0] < w[1]));
            for &v in &t {
                prop_assert!(v >= min - span * 1e-6 && v <= max + span * 1e-6);
            }
        }

        #[test]
        fn log_ticks_in_range(lo_exp in 0u32..10, span_exp in 1u32..10) {
            let min = (2.0f64).powi(lo_exp as i32);
            let max = (2.0f64).powi((lo_exp + span_exp) as i32);
            let t = ticks(Scale::Log2, min, max, 6);
            prop_assert!(!t.is_empty());
            for &v in &t {
                prop_assert!(v >= min * 0.999 && v <= max * 1.001);
            }
        }
    }
}
