//! Property tests of the splittable DFS stack: arbitrary interleavings of
//! pushes, pops and splits conserve nodes and invariants.

use proptest::prelude::*;
use uts_tree::{SearchStack, SplitPolicy};

#[derive(Debug, Clone)]
enum Op {
    Pop,
    Push(Vec<u32>),
    Split(SplitPolicy),
}

fn arb_op() -> impl Strategy<Value = Op> {
    prop_oneof![
        2 => Just(Op::Pop),
        2 => proptest::collection::vec(any::<u32>(), 0..5).prop_map(Op::Push),
        1 => prop_oneof![
            Just(SplitPolicy::Bottom),
            Just(SplitPolicy::Half),
            Just(SplitPolicy::Top)
        ]
        .prop_map(Op::Split),
    ]
}

proptest! {
    /// Every node that enters a stack leaves it exactly once, whether by
    /// popping or by being donated to another stack.
    #[test]
    fn node_conservation(ops in proptest::collection::vec(arb_op(), 0..300)) {
        let mut stack = SearchStack::from_root(0u32);
        let mut donated: Vec<SearchStack<u32>> = Vec::new();
        let mut entered = 1u64; // the root
        let mut popped = 0u64;
        for op in ops {
            match op {
                Op::Pop => {
                    if stack.pop_next().is_some() {
                        popped += 1;
                    }
                }
                Op::Push(children) => {
                    // push_frame is only legal after a pop in real use, but
                    // the structure itself must tolerate any order.
                    entered += children.len() as u64;
                    stack.push_frame(children);
                }
                Op::Split(policy) => {
                    let before = stack.len();
                    if let Some(part) = stack.split(policy) {
                        prop_assert!(!part.is_empty());
                        prop_assert!(!stack.is_empty());
                        prop_assert_eq!(stack.len() + part.len(), before);
                        donated.push(part);
                    } else {
                        prop_assert!(before < 2, "len >= 2 must be splittable");
                        prop_assert_eq!(stack.len(), before);
                    }
                }
            }
        }
        let remaining =
            stack.len() as u64 + donated.iter().map(|d| d.len() as u64).sum::<u64>();
        prop_assert_eq!(entered, popped + remaining);
    }

    /// can_split is exactly len >= 2; is_empty is exactly len == 0.
    #[test]
    fn predicates_match_len(ops in proptest::collection::vec(arb_op(), 0..150)) {
        let mut stack = SearchStack::from_root(1u32);
        for op in ops {
            match op {
                Op::Pop => {
                    stack.pop_next();
                }
                Op::Push(children) => stack.push_frame(children),
                Op::Split(policy) => {
                    stack.split(policy);
                }
            }
            prop_assert_eq!(stack.can_split(), stack.len() >= 2);
            #[allow(clippy::len_zero)]
            let len_is_zero = stack.len() == 0;
            prop_assert_eq!(stack.is_empty(), len_is_zero);
            prop_assert_eq!(stack.iter().count(), stack.len());
        }
    }

    /// Draining a donated part and the donor yields the same multiset as
    /// draining the original stack (split never duplicates or loses).
    #[test]
    fn split_preserves_multiset(
        frames in proptest::collection::vec(
            proptest::collection::vec(0u32..1000, 1..6), 1..8),
        policy_idx in 0usize..3,
    ) {
        let policy = [SplitPolicy::Bottom, SplitPolicy::Half, SplitPolicy::Top][policy_idx];
        // Build a stack by simulated expansion.
        let mut original = SearchStack::from_root(u32::MAX);
        original.pop_next();
        let mut all: Vec<u32> = Vec::new();
        for frame in &frames {
            all.extend(frame);
            original.push_frame(frame.clone());
        }
        let mut split_side = original.clone();
        let part = split_side.split(policy);
        let mut collected: Vec<u32> = Vec::new();
        while let Some(v) = split_side.pop_next() {
            collected.push(v);
        }
        if let Some(mut part) = part {
            while let Some(v) = part.pop_next() {
                collected.push(v);
            }
        }
        collected.sort_unstable();
        all.sort_unstable();
        prop_assert_eq!(collected, all);
    }
}
