//! Tree-search substrate: the problem abstraction, the splittable DFS stack,
//! and the serial algorithms (DFS, IDA\*, depth-first branch-and-bound).
//!
//! The paper's setting (Sec. 2): a tree-search problem is "a description of
//! the root node of the tree and a successor-generator-function"; each
//! processor searches its part depth-first, keeping a stack whose levels
//! hold the *untried alternatives*, and work is split by "partitioning
//! untried alternatives (on the current stack) into two parts". This crate
//! provides exactly those pieces:
//!
//! * [`TreeProblem`] — root + successor generation (+ goal test);
//! * [`SearchStack`] — the per-processor stack of untried-alternative
//!   frames, with [`SearchStack::split`] implementing the paper's
//!   alpha-splitting (default policy: donate the bottom-most alternative,
//!   the choice the paper uses for the 15-puzzle);
//! * [`serial`] — the serial baselines that define the problem size `W`
//!   and against which parallel node counts are checked;
//! * [`ida`] — iterative-deepening A\* built from bounded DFS iterations;
//! * [`dfbb`] — depth-first branch-and-bound over costed problems.

pub mod arena;
pub mod codec;
pub mod dfbb;
pub mod ida;
pub mod problem;
pub mod serial;
pub mod stack;

pub use arena::{PeSlab, StackArena};
pub use codec::{CkptNode, CodecError, Reader};
pub use problem::{BoundedNode, BoundedProblem, HeuristicProblem, TreeProblem};
pub use serial::{serial_dfs, serial_dfs_collect, serial_dfs_first_goal, SerialStats};
pub use stack::{Burst, SearchStack, SplitPolicy};
