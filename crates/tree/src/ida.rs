//! Iterative-deepening A\* (Korf 1985) — "the best known sequential
//! depth-first-search algorithm to find optimal solution paths for the
//! 15-puzzle" (Sec. 5), and the serial algorithm the paper parallelizes.
//!
//! Each iteration is a cost-bounded DFS over [`BoundedProblem`]; the next
//! bound is the minimum `f` among children pruned in the current iteration.
//! Like the paper's implementation, the final iteration is searched
//! *exhaustively* (all optimal solutions up to the bound), so its node count
//! is well-defined and identical for serial and parallel execution.

use crate::problem::{BoundedNode, BoundedProblem, HeuristicProblem, TreeProblem};
use crate::stack::SearchStack;

/// Summary of one IDA\* iteration.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Iteration {
    /// The cost bound of this iteration.
    pub bound: u32,
    /// Nodes expanded within the bound (this iteration's `W`).
    pub expanded: u64,
    /// Goal nodes found (0 until the final iteration).
    pub goals: u64,
}

/// Result of a full IDA\* run.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct IdaResult {
    /// Per-iteration summaries in bound order.
    pub iterations: Vec<Iteration>,
    /// The optimal solution cost, if a goal was reachable.
    pub solution_cost: Option<u32>,
}

impl IdaResult {
    /// The final (goal-containing) iteration — the workload the paper's
    /// parallel experiments run.
    pub fn final_iteration(&self) -> &Iteration {
        self.iterations.last().expect("IDA* always runs at least one iteration")
    }

    /// Total nodes expanded across all iterations.
    pub fn total_expanded(&self) -> u64 {
        self.iterations.iter().map(|i| i.expanded).sum()
    }
}

/// One cost-bounded DFS iteration, tracking the minimum pruned `f`.
///
/// Returns `(expanded, goals, next_bound)`; `next_bound` is `None` when the
/// bounded tree is the whole (finite) space.
pub fn bounded_dfs<H: HeuristicProblem>(
    problem: &BoundedProblem<'_, H>,
    mut on_goal: impl FnMut(&BoundedNode<H::State>),
) -> (u64, u64, Option<u32>) {
    let mut stack = SearchStack::from_root(problem.root());
    let mut expanded = 0u64;
    let mut goals = 0u64;
    let mut next_bound: Option<u32> = None;
    let mut children = Vec::new();
    let mut scratch = Vec::new();
    while let Some(node) = stack.pop_next() {
        expanded += 1;
        if problem.is_goal(&node) {
            goals += 1;
            on_goal(&node);
        }
        children.clear();
        if let Some(pruned) = problem.expand_tracking_pruned(&node, &mut children, &mut scratch) {
            next_bound = Some(next_bound.map_or(pruned, |b| b.min(pruned)));
        }
        stack.push_frame(std::mem::take(&mut children));
    }
    (expanded, goals, next_bound)
}

/// Run IDA\* to the first goal-containing iteration (searched in full).
///
/// `max_bound` guards against unsolvable instances (e.g. 15-puzzle states of
/// the wrong parity): iteration stops once the bound would exceed it.
pub fn ida_star<H: HeuristicProblem>(problem: &H, max_bound: u32) -> IdaResult {
    let mut bound = problem.h(&problem.initial());
    let mut iterations = Vec::new();
    loop {
        let bp = BoundedProblem::new(problem, bound);
        let (expanded, goals, next) = bounded_dfs(&bp, |_| {});
        iterations.push(Iteration { bound, expanded, goals });
        if goals > 0 {
            return IdaResult { iterations, solution_cost: Some(bound) };
        }
        match next {
            Some(b) if b <= max_bound => bound = b,
            _ => return IdaResult { iterations, solution_cost: None },
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::problem::testutil::LineProblem;

    #[test]
    fn line_problem_solves_in_one_iteration() {
        // Perfect heuristic: first bound = h(0) = n already admits the goal.
        let p = LineProblem { n: 6 };
        let r = ida_star(&p, 100);
        assert_eq!(r.solution_cost, Some(6));
        assert_eq!(r.iterations.len(), 1);
        assert_eq!(r.final_iteration().goals, 1);
        // Expands exactly the forward path 0..=6.
        assert_eq!(r.final_iteration().expanded, 7);
    }

    /// A problem whose heuristic underestimates by design, forcing multiple
    /// iterations with strictly increasing bounds.
    struct WeakLine {
        n: u32,
    }

    impl HeuristicProblem for WeakLine {
        type State = u32;
        fn initial(&self) -> u32 {
            0
        }
        fn h(&self, &s: &u32) -> u32 {
            // Half-strength heuristic.
            (self.n - s) / 2
        }
        fn successors(&self, &s: &u32, out: &mut Vec<(u32, u32)>) {
            if s < self.n {
                out.push((s + 1, 1));
            }
        }
        fn is_goal(&self, &s: &u32) -> bool {
            s == self.n
        }
    }

    #[test]
    fn weak_heuristic_forces_deepening() {
        let p = WeakLine { n: 8 };
        let r = ida_star(&p, 100);
        assert_eq!(r.solution_cost, Some(8));
        assert!(r.iterations.len() > 1, "must deepen from bound 4 to 8");
        let bounds: Vec<u32> = r.iterations.iter().map(|i| i.bound).collect();
        assert!(bounds.windows(2).all(|w| w[0] < w[1]), "bounds strictly increase");
        assert_eq!(*bounds.first().unwrap(), 4);
        assert_eq!(*bounds.last().unwrap(), 8);
        // Iterations grow: each deeper bound expands at least as many nodes.
        let ws: Vec<u64> = r.iterations.iter().map(|i| i.expanded).collect();
        assert!(ws.windows(2).all(|w| w[0] <= w[1]));
    }

    #[test]
    fn unsolvable_respects_max_bound() {
        struct DeadEnd;
        impl HeuristicProblem for DeadEnd {
            type State = u32;
            fn initial(&self) -> u32 {
                0
            }
            fn h(&self, _: &u32) -> u32 {
                0
            }
            fn successors(&self, &s: &u32, out: &mut Vec<(u32, u32)>) {
                // Infinite chain, never a goal.
                out.push((s + 1, 1));
            }
            fn is_goal(&self, _: &u32) -> bool {
                false
            }
        }
        let r = ida_star(&DeadEnd, 10);
        assert_eq!(r.solution_cost, None);
        assert!(r.iterations.last().unwrap().bound <= 10);
    }

    #[test]
    fn total_expanded_sums_iterations() {
        let p = WeakLine { n: 6 };
        let r = ida_star(&p, 100);
        assert_eq!(r.total_expanded(), r.iterations.iter().map(|i| i.expanded).sum::<u64>());
    }
}
