//! Depth-first branch-and-bound — one of the depth-first methods the paper
//! lists as driving applications (Sec. 2: "Depth-First Branch and Bound,
//! IDA\*, Backtracking"). Provided so downstream users can run cost-optimal
//! searches over the same substrate; the parallel experiments use IDA\*.

use crate::problem::HeuristicProblem;
use crate::stack::SearchStack;

/// Result of a depth-first branch-and-bound run.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DfbbResult {
    /// Cost of the best goal found, if any.
    pub best_cost: Option<u32>,
    /// Nodes expanded.
    pub expanded: u64,
}

/// Find the minimum-cost goal by depth-first branch-and-bound: children
/// with `g + h >= incumbent` are pruned; the incumbent tightens whenever a
/// cheaper goal is found.
///
/// `initial_bound` seeds the incumbent (use `u32::MAX` for none); a good
/// seed prunes more of the tree.
pub fn dfbb<H: HeuristicProblem>(problem: &H, initial_bound: u32) -> DfbbResult {
    let mut incumbent = initial_bound;
    let mut best: Option<u32> = None;
    let root = (problem.initial(), 0u32);
    let mut stack = SearchStack::from_root(root);
    let mut expanded = 0u64;
    let mut succ = Vec::new();
    while let Some((state, g)) = stack.pop_next() {
        expanded += 1;
        if problem.is_goal(&state) && g < incumbent {
            incumbent = g;
            best = Some(g);
            continue; // descendants of a goal cannot be cheaper on a tree
        }
        succ.clear();
        problem.successors(&state, &mut succ);
        let mut frame = Vec::with_capacity(succ.len());
        for (child, cost) in succ.drain(..) {
            let cg = g + cost;
            if cg + problem.h(&child) < incumbent {
                frame.push((child, cg));
            }
        }
        stack.push_frame(frame);
    }
    DfbbResult { best_cost: best, expanded }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// A two-route graph: a short route of cost 5 and a decoy of cost 9.
    struct TwoRoutes;

    impl HeuristicProblem for TwoRoutes {
        type State = (u8, u32); // (route id: 0=start, 1=short, 2=long; step)
        fn initial(&self) -> Self::State {
            (0, 0)
        }
        fn h(&self, _: &Self::State) -> u32 {
            0 // uninformed: pure branch-and-bound
        }
        fn successors(&self, &(route, step): &Self::State, out: &mut Vec<(Self::State, u32)>) {
            match route {
                0 => {
                    // Long route generated first so DFS explores the short
                    // route first (stack pops from the back) and the long
                    // route is then pruned by the incumbent.
                    out.push(((2, 0), 0));
                    out.push(((1, 0), 0));
                }
                1 if step < 5 => out.push(((1, step + 1), 1)),
                2 if step < 9 => out.push(((2, step + 1), 1)),
                _ => {}
            }
        }
        fn is_goal(&self, &(route, step): &Self::State) -> bool {
            (route == 1 && step == 5) || (route == 2 && step == 9)
        }
    }

    #[test]
    fn finds_cheapest_goal() {
        let r = dfbb(&TwoRoutes, u32::MAX);
        assert_eq!(r.best_cost, Some(5));
    }

    #[test]
    fn incumbent_prunes_the_decoy_route() {
        let r = dfbb(&TwoRoutes, u32::MAX);
        // Short route: start + 6 nodes on route 1 + 6 nodes on route 2
        // before pruning (route-2 nodes with g + 0 >= 5 are cut at g=5:
        // nodes (2,0)..(2,4) expand, (2,5) is pruned at generation).
        assert!(r.expanded < 20, "decoy must be pruned, expanded={}", r.expanded);
    }

    #[test]
    fn tight_initial_bound_prunes_everything() {
        let r = dfbb(&TwoRoutes, 5);
        // With incumbent 5 the cost-5 goal is NOT an improvement (strict <).
        assert_eq!(r.best_cost, None);
    }

    #[test]
    fn loose_initial_bound_keeps_optimum() {
        let r = dfbb(&TwoRoutes, 6);
        assert_eq!(r.best_cost, Some(5));
    }
}
