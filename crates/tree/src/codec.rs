//! Deterministic byte-level codec for checkpointable search state.
//!
//! The checkpoint subsystem (`uts-ckpt`) snapshots every PE's
//! [`SearchStack`] into a hand-rolled binary format, which requires each
//! problem's node type to round-trip through bytes *exactly* — a resumed
//! run must continue from bit-identical stacks. [`CkptNode`] is that
//! contract: `decode_node(encode_node(n)) == n`, with a canonical (unique)
//! encoding so snapshot bytes are themselves deterministic.
//!
//! Everything is little-endian, fixed-width, no varints, no padding: the
//! same struct state always produces the same bytes on every platform,
//! which is what lets the snapshot checksum double as an identity check
//! across encode→decode→encode round trips.

use crate::stack::SearchStack;

/// Why a decode failed. Distinguishes "the buffer ended early" from "the
/// bytes are structurally impossible" so container formats can map them
/// to distinct user-facing errors.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CodecError {
    /// The reader ran out of bytes mid-value.
    Truncated,
    /// The bytes decoded to a value that violates an invariant of the
    /// target type (the `&'static str` names the invariant).
    Malformed(&'static str),
}

impl std::fmt::Display for CodecError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            CodecError::Truncated => write!(f, "byte stream ended mid-value"),
            CodecError::Malformed(what) => write!(f, "malformed value: {what}"),
        }
    }
}

impl std::error::Error for CodecError {}

/// A bounds-checked cursor over a byte buffer being decoded.
#[derive(Debug)]
pub struct Reader<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> Reader<'a> {
    /// Start reading at the front of `buf`.
    pub fn new(buf: &'a [u8]) -> Self {
        Self { buf, pos: 0 }
    }

    /// Bytes not yet consumed.
    pub fn remaining(&self) -> usize {
        self.buf.len() - self.pos
    }

    /// Whether every byte has been consumed.
    pub fn is_done(&self) -> bool {
        self.remaining() == 0
    }

    /// Consume exactly `n` raw bytes.
    pub fn bytes(&mut self, n: usize) -> Result<&'a [u8], CodecError> {
        if self.remaining() < n {
            return Err(CodecError::Truncated);
        }
        let out = &self.buf[self.pos..self.pos + n];
        self.pos += n;
        Ok(out)
    }

    /// Consume one `u8`.
    pub fn u8(&mut self) -> Result<u8, CodecError> {
        Ok(self.bytes(1)?[0])
    }

    /// Consume a little-endian `u16`.
    pub fn u16(&mut self) -> Result<u16, CodecError> {
        Ok(u16::from_le_bytes(self.bytes(2)?.try_into().expect("2 bytes")))
    }

    /// Consume a little-endian `u32`.
    pub fn u32(&mut self) -> Result<u32, CodecError> {
        Ok(u32::from_le_bytes(self.bytes(4)?.try_into().expect("4 bytes")))
    }

    /// Consume a little-endian `u64`.
    pub fn u64(&mut self) -> Result<u64, CodecError> {
        Ok(u64::from_le_bytes(self.bytes(8)?.try_into().expect("8 bytes")))
    }

    /// Consume a little-endian `i32`.
    pub fn i32(&mut self) -> Result<i32, CodecError> {
        Ok(i32::from_le_bytes(self.bytes(4)?.try_into().expect("4 bytes")))
    }

    /// Consume a little-endian `i64`.
    pub fn i64(&mut self) -> Result<i64, CodecError> {
        Ok(i64::from_le_bytes(self.bytes(8)?.try_into().expect("8 bytes")))
    }

    /// Consume a `usize` stored on the wire as a `u64`; rejects values
    /// that do not fit the host's pointer width.
    pub fn usize(&mut self) -> Result<usize, CodecError> {
        usize::try_from(self.u64()?).map_err(|_| CodecError::Malformed("usize overflows host"))
    }

    /// Consume a `bool` stored as a single `0`/`1` byte; any other byte is
    /// malformed (the encoding must be canonical, not merely readable).
    pub fn bool(&mut self) -> Result<bool, CodecError> {
        match self.u8()? {
            0 => Ok(false),
            1 => Ok(true),
            _ => Err(CodecError::Malformed("bool byte not 0 or 1")),
        }
    }

    /// Consume an `f64` stored as its raw IEEE-754 bits (bit-exact, no
    /// text round-trip loss).
    pub fn f64_bits(&mut self) -> Result<f64, CodecError> {
        Ok(f64::from_bits(self.u64()?))
    }

    /// Consume a collection length stored as `u64`. Guards against
    /// adversarial/corrupt lengths: each element occupies at least
    /// `min_elem_bytes` bytes, so a length the remaining buffer cannot
    /// possibly hold is rejected *before* any allocation.
    pub fn len(&mut self, min_elem_bytes: usize) -> Result<usize, CodecError> {
        let n = self.usize()?;
        if n.checked_mul(min_elem_bytes.max(1)).is_none_or(|need| need > self.remaining()) {
            return Err(CodecError::Truncated);
        }
        Ok(n)
    }
}

/// Append a `u16` little-endian.
pub fn put_u16(out: &mut Vec<u8>, v: u16) {
    out.extend_from_slice(&v.to_le_bytes());
}

/// Append a `u32` little-endian.
pub fn put_u32(out: &mut Vec<u8>, v: u32) {
    out.extend_from_slice(&v.to_le_bytes());
}

/// Append a `u64` little-endian.
pub fn put_u64(out: &mut Vec<u8>, v: u64) {
    out.extend_from_slice(&v.to_le_bytes());
}

/// Append an `i32` little-endian.
pub fn put_i32(out: &mut Vec<u8>, v: i32) {
    out.extend_from_slice(&v.to_le_bytes());
}

/// Append an `i64` little-endian.
pub fn put_i64(out: &mut Vec<u8>, v: i64) {
    out.extend_from_slice(&v.to_le_bytes());
}

/// Append a `usize` as a `u64` (platform-independent width).
pub fn put_usize(out: &mut Vec<u8>, v: usize) {
    put_u64(out, v as u64);
}

/// Append a `bool` as one byte.
pub fn put_bool(out: &mut Vec<u8>, v: bool) {
    out.push(v as u8);
}

/// Append an `f64` as its raw IEEE-754 bits.
pub fn put_f64_bits(out: &mut Vec<u8>, v: f64) {
    put_u64(out, v.to_bits());
}

/// A value the checkpoint subsystem can serialize into a snapshot and
/// reconstruct bit-identically on resume.
///
/// Laws (enforced by the snapshot round-trip property tests):
/// * **round trip** — `decode_node` over `encode_node`'s output yields a
///   value equal to the original and consumes exactly its bytes;
/// * **canonical** — equal values encode to identical bytes (no
///   accept-many/emit-one laxity), so re-encoding a decoded snapshot
///   reproduces it byte for byte.
pub trait CkptNode: Sized {
    /// Append this value's canonical encoding to `out`.
    fn encode_node(&self, out: &mut Vec<u8>);

    /// Decode one value from the front of `r`.
    fn decode_node(r: &mut Reader<'_>) -> Result<Self, CodecError>;
}

macro_rules! impl_ckpt_prim {
    ($($t:ty => $put:ident / $get:ident),* $(,)?) => {$(
        impl CkptNode for $t {
            fn encode_node(&self, out: &mut Vec<u8>) {
                $put(out, *self);
            }
            fn decode_node(r: &mut Reader<'_>) -> Result<Self, CodecError> {
                r.$get()
            }
        }
    )*};
}

fn put_u8(out: &mut Vec<u8>, v: u8) {
    out.push(v);
}

impl_ckpt_prim! {
    u8 => put_u8 / u8,
    u16 => put_u16 / u16,
    u32 => put_u32 / u32,
    u64 => put_u64 / u64,
    i32 => put_i32 / i32,
    i64 => put_i64 / i64,
    usize => put_usize / usize,
    bool => put_bool / bool,
}

impl<A: CkptNode, B: CkptNode> CkptNode for (A, B) {
    fn encode_node(&self, out: &mut Vec<u8>) {
        self.0.encode_node(out);
        self.1.encode_node(out);
    }
    fn decode_node(r: &mut Reader<'_>) -> Result<Self, CodecError> {
        Ok((A::decode_node(r)?, B::decode_node(r)?))
    }
}

impl<A: CkptNode, B: CkptNode, C: CkptNode> CkptNode for (A, B, C) {
    fn encode_node(&self, out: &mut Vec<u8>) {
        self.0.encode_node(out);
        self.1.encode_node(out);
        self.2.encode_node(out);
    }
    fn decode_node(r: &mut Reader<'_>) -> Result<Self, CodecError> {
        Ok((A::decode_node(r)?, B::decode_node(r)?, C::decode_node(r)?))
    }
}

impl<T: CkptNode> CkptNode for Vec<T> {
    fn encode_node(&self, out: &mut Vec<u8>) {
        put_usize(out, self.len());
        for item in self {
            item.encode_node(out);
        }
    }
    fn decode_node(r: &mut Reader<'_>) -> Result<Self, CodecError> {
        let n = r.len(1)?;
        let mut v = Vec::with_capacity(n);
        for _ in 0..n {
            v.push(T::decode_node(r)?);
        }
        Ok(v)
    }
}

impl<T: CkptNode> CkptNode for Option<T> {
    fn encode_node(&self, out: &mut Vec<u8>) {
        match self {
            None => put_bool(out, false),
            Some(v) => {
                put_bool(out, true);
                v.encode_node(out);
            }
        }
    }
    fn decode_node(r: &mut Reader<'_>) -> Result<Self, CodecError> {
        Ok(if r.bool()? { Some(T::decode_node(r)?) } else { None })
    }
}

impl<S: CkptNode> CkptNode for crate::problem::BoundedNode<S> {
    fn encode_node(&self, out: &mut Vec<u8>) {
        self.state.encode_node(out);
        put_u32(out, self.g);
    }
    fn decode_node(r: &mut Reader<'_>) -> Result<Self, CodecError> {
        let state = S::decode_node(r)?;
        let g = r.u32()?;
        Ok(Self { state, g })
    }
}

/// A [`SearchStack`] serializes as its frame list: `frame count`, then for
/// each frame its node list. `len` is derived on decode, and the spare
/// frame pool — pure allocator warm-up, unobservable through the public
/// API — is deliberately not captured: a resumed stack behaves identically
/// with a cold pool.
impl<N: CkptNode> CkptNode for SearchStack<N> {
    fn encode_node(&self, out: &mut Vec<u8>) {
        put_usize(out, self.frames().len());
        for frame in self.frames() {
            frame.encode_node(out);
        }
    }
    fn decode_node(r: &mut Reader<'_>) -> Result<Self, CodecError> {
        let depth = r.len(8)?;
        let mut frames = Vec::with_capacity(depth);
        for _ in 0..depth {
            let frame: Vec<N> = Vec::decode_node(r)?;
            if frame.is_empty() {
                return Err(CodecError::Malformed("search stack stores an empty frame"));
            }
            frames.push(frame);
        }
        Ok(SearchStack::from_frames(frames))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn round_trip<T: CkptNode + PartialEq + std::fmt::Debug>(v: &T) {
        let mut bytes = Vec::new();
        v.encode_node(&mut bytes);
        let mut r = Reader::new(&bytes);
        let back = T::decode_node(&mut r).expect("decodes");
        assert!(r.is_done(), "decode consumed exactly the encoded bytes");
        assert_eq!(&back, v);
        let mut again = Vec::new();
        back.encode_node(&mut again);
        assert_eq!(again, bytes, "canonical: re-encode is byte-identical");
    }

    #[test]
    fn primitives_round_trip() {
        round_trip(&0u8);
        round_trip(&u8::MAX);
        round_trip(&0xBEEFu16);
        round_trip(&0xDEAD_BEEFu32);
        round_trip(&u64::MAX);
        round_trip(&-5i32);
        round_trip(&i64::MIN);
        round_trip(&usize::MAX);
        round_trip(&true);
        round_trip(&false);
    }

    #[test]
    fn compounds_round_trip() {
        round_trip(&(3usize, 99u64));
        round_trip(&(7u8, 11u32, 13u64));
        round_trip(&vec![1u32, 2, 3]);
        round_trip(&Vec::<u64>::new());
        round_trip(&Some(42u32));
        round_trip(&None::<u32>);
        round_trip(&crate::problem::BoundedNode { state: 5u32, g: 9 });
        round_trip(&vec![vec![1u8], vec![], vec![2, 3]]);
    }

    #[test]
    fn stack_round_trips_with_frame_structure() {
        let mut s = SearchStack::from_root(10u32);
        s.pop_next();
        s.push_frame(vec![1, 2, 3]);
        s.push_frame(vec![4, 5]);
        let mut bytes = Vec::new();
        s.encode_node(&mut bytes);
        let mut r = Reader::new(&bytes);
        let back = SearchStack::<u32>::decode_node(&mut r).unwrap();
        assert!(r.is_done());
        assert_eq!(back.len(), s.len());
        assert_eq!(back.depth(), s.depth());
        assert_eq!(back.iter().collect::<Vec<_>>(), s.iter().collect::<Vec<_>>());
    }

    #[test]
    fn empty_stack_round_trips() {
        let s: SearchStack<u64> = SearchStack::new();
        let mut bytes = Vec::new();
        s.encode_node(&mut bytes);
        let back = SearchStack::<u64>::decode_node(&mut Reader::new(&bytes)).unwrap();
        assert!(back.is_empty());
        assert_eq!(back.depth(), 0);
    }

    #[test]
    fn truncated_input_is_rejected_not_panicked() {
        let mut bytes = Vec::new();
        vec![1u64, 2, 3].encode_node(&mut bytes);
        for cut in 0..bytes.len() {
            let err = Vec::<u64>::decode_node(&mut Reader::new(&bytes[..cut]));
            assert_eq!(err, Err(CodecError::Truncated), "cut at {cut}");
        }
    }

    #[test]
    fn absurd_length_prefix_is_truncated_before_allocating() {
        let mut bytes = Vec::new();
        put_usize(&mut bytes, u32::MAX as usize); // claims 4 billion elements
        assert_eq!(Vec::<u8>::decode_node(&mut Reader::new(&bytes)), Err(CodecError::Truncated));
    }

    #[test]
    fn non_canonical_bool_is_malformed() {
        let mut r = Reader::new(&[2u8]);
        assert!(matches!(r.bool(), Err(CodecError::Malformed(_))));
    }

    #[test]
    fn stack_with_empty_frame_is_malformed() {
        let mut bytes = Vec::new();
        put_usize(&mut bytes, 1); // one frame ...
        put_usize(&mut bytes, 0); // ... of zero nodes: illegal stack state
        let got = SearchStack::<u32>::decode_node(&mut Reader::new(&bytes));
        assert!(matches!(got, Err(CodecError::Malformed(_))));
    }
}
