//! Serial depth-first search — the baseline that defines the problem size
//! `W` ("the number of tree nodes searched by the serial algorithm",
//! Sec. 3.1) and the reference the parallel engine's node counts are
//! checked against.

use crate::problem::TreeProblem;
use crate::stack::SearchStack;

/// Outcome of a serial depth-first traversal.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SerialStats {
    /// Nodes expanded (popped off the stack) — the paper's `W`.
    pub expanded: u64,
    /// Goal nodes encountered.
    pub goals: u64,
    /// Maximum number of simultaneously stored untried alternatives
    /// (memory high-water mark of the stack).
    pub peak_stack: usize,
}

/// Exhaustively search `problem` depth-first and count.
///
/// The search never stops at a goal — like the paper's implementation it
/// "finds all the solutions up to a given tree depth", which is what makes
/// serial and parallel node counts equal.
pub fn serial_dfs<P: TreeProblem>(problem: &P) -> SerialStats {
    serial_dfs_collect(problem, |_| {})
}

/// As [`serial_dfs`], invoking `on_goal` for every goal node found.
pub fn serial_dfs_collect<P: TreeProblem>(
    problem: &P,
    mut on_goal: impl FnMut(&P::Node),
) -> SerialStats {
    let mut stack = SearchStack::from_root(problem.root());
    let mut stats = SerialStats { expanded: 0, goals: 0, peak_stack: 1 };
    let mut children = Vec::new();
    while let Some(node) = stack.pop_next() {
        stats.expanded += 1;
        if problem.is_goal(&node) {
            stats.goals += 1;
            on_goal(&node);
        }
        children.clear();
        problem.expand(&node, &mut children);
        stack.push_frame(std::mem::take(&mut children));
        stats.peak_stack = stats.peak_stack.max(stack.len());
    }
    stats
}

/// Depth-first search that stops at the first goal, returning the nodes
/// expanded up to and including it (`None` in `goals` ⇒ exhausted with no
/// goal). This is the *first-solution* regime where speedup anomalies
/// (Rao & Kumar; paper Sec. 3) live: a parallel search may find a goal
/// after expanding far fewer — or far more — nodes than this.
pub fn serial_dfs_first_goal<P: TreeProblem>(problem: &P) -> SerialStats {
    let mut stack = SearchStack::from_root(problem.root());
    let mut stats = SerialStats { expanded: 0, goals: 0, peak_stack: 1 };
    let mut children = Vec::new();
    while let Some(node) = stack.pop_next() {
        stats.expanded += 1;
        if problem.is_goal(&node) {
            stats.goals = 1;
            return stats;
        }
        children.clear();
        problem.expand(&node, &mut children);
        stack.push_frame(std::mem::take(&mut children));
        stats.peak_stack = stats.peak_stack.max(stack.len());
    }
    stats
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::problem::testutil::UniformTree;
    use crate::problem::{BoundedProblem, HeuristicProblem};

    #[test]
    fn counts_every_node_of_a_uniform_tree() {
        for (b, d) in [(2usize, 6usize), (3, 4), (4, 3), (1, 5)] {
            let t = UniformTree { branching: b, depth: d };
            let stats = serial_dfs(&t);
            assert_eq!(stats.expanded, t.node_count(), "b={b} d={d}");
        }
    }

    #[test]
    fn finds_the_single_goal_leaf() {
        let t = UniformTree { branching: 2, depth: 5 };
        let stats = serial_dfs(&t);
        assert_eq!(stats.goals, 1);
    }

    #[test]
    fn collect_sees_goal_nodes() {
        let t = UniformTree { branching: 2, depth: 3 };
        let mut goals = Vec::new();
        serial_dfs_collect(&t, |g| goals.push(*g));
        assert_eq!(goals, vec![(3, 0)]);
    }

    #[test]
    fn trivial_root_only_tree() {
        let t = UniformTree { branching: 2, depth: 0 };
        let stats = serial_dfs(&t);
        assert_eq!(stats.expanded, 1);
        assert_eq!(stats.goals, 1);
        assert_eq!(stats.peak_stack, 1);
    }

    #[test]
    fn first_goal_stops_early() {
        // UniformTree's goal (leftmost leaf) is the LAST node in DFS order
        // (the stack pops the last-generated child first), so first-goal
        // equals the full traversal there...
        let t = UniformTree { branching: 2, depth: 4 };
        let full = serial_dfs(&t);
        let first = serial_dfs_first_goal(&t);
        assert_eq!(first.goals, 1);
        assert_eq!(first.expanded, full.expanded);

        // ...whereas a rightmost-leaf goal is hit after depth+1 expansions.
        struct RightGoal(UniformTree);
        impl TreeProblem for RightGoal {
            type Node = (usize, u64);
            fn root(&self) -> Self::Node {
                self.0.root()
            }
            fn expand(&self, n: &Self::Node, out: &mut Vec<Self::Node>) {
                self.0.expand(n, out)
            }
            fn is_goal(&self, &(d, i): &Self::Node) -> bool {
                d == self.0.depth && i == (1 << self.0.depth) - 1
            }
        }
        let t = RightGoal(UniformTree { branching: 2, depth: 4 });
        let first = serial_dfs_first_goal(&t);
        assert_eq!(first.goals, 1);
        assert_eq!(first.expanded, 5, "root plus one rightmost child per level");
    }

    #[test]
    fn first_goal_on_goalless_tree_exhausts() {
        // depth-0 tree has the root as its only (goal) node; build a
        // goal-free tree by searching depth 1 of branching 1 where the
        // goal is the leaf with index 0... instead use a tree whose goal
        // cannot be reached: branching 2, depth 3, then strip goals.
        struct NoGoals(UniformTree);
        impl TreeProblem for NoGoals {
            type Node = (usize, u64);
            fn root(&self) -> Self::Node {
                self.0.root()
            }
            fn expand(&self, n: &Self::Node, out: &mut Vec<Self::Node>) {
                self.0.expand(n, out)
            }
        }
        let t = NoGoals(UniformTree { branching: 2, depth: 3 });
        let stats = serial_dfs_first_goal(&t);
        assert_eq!(stats.goals, 0);
        assert_eq!(stats.expanded, 15);
    }

    /// Serial DFS over a bounded problem expands exactly the f<=bound tree.
    #[test]
    fn bounded_dfs_over_line_problem() {
        struct Line;
        impl HeuristicProblem for Line {
            type State = u32;
            fn initial(&self) -> u32 {
                0
            }
            fn h(&self, &s: &u32) -> u32 {
                5 - s
            }
            fn successors(&self, &s: &u32, out: &mut Vec<(u32, u32)>) {
                if s < 5 {
                    out.push((s + 1, 1));
                }
            }
            fn is_goal(&self, &s: &u32) -> bool {
                s == 5
            }
        }
        let bp = BoundedProblem::new(&Line, 5);
        let stats = serial_dfs(&bp);
        assert_eq!(stats.expanded, 6, "states 0..=5");
        assert_eq!(stats.goals, 1);
    }
}
