//! Structure-of-arrays backing store for an ensemble of DFS stacks.
//!
//! The lockstep engines keep one [`SearchStack`] per PE — a `Vec<Vec<N>>`
//! of frames whose census (stack sizes, activity bits) the engine re-derives
//! by chasing one heap object per PE per cycle. The paper's point is that
//! this per-PE state is *dense and uniform*: a [`StackArena`] therefore
//! stores each PE's alternatives as one flat node slab plus a frame-offset
//! array, and mirrors every stack length into one contiguous `lens: Vec<u32>`
//! the census sweeps read directly (`uts-core`'s `census` module turns that
//! array into activity counts and the `count_ge` distribution with chunked,
//! autovectorizable reductions).
//!
//! **Equivalence contract.** Every operation here reproduces the observable
//! semantics of the matching [`SearchStack`] operation exactly — same DFS
//! order, same frame boundaries after splits and merges, same [`Burst`]
//! totals — and [`StackArena::encode_pe`] emits bytes identical to
//! [`SearchStack`]'s `CkptNode::encode_node`, so snapshots taken from either
//! representation are interchangeable. The differential tests at the bottom
//! of this file drive both representations through the same operation
//! sequences and compare complete frame structures.
//!
//! Layout note: the design brief sketches "one contiguous node slab" for the
//! whole ensemble; this implementation gives each PE its *own* slab
//! ([`PeSlab`]) under a shared dense `lens` array instead. A single global
//! slab would force inter-PE capacity rebalancing on every uneven burst
//! (PEs grow at wildly different rates mid-macro-step); per-PE slabs keep
//! each burst append-only and cache-linear while the census state — the part
//! the hot sweeps actually read — stays fully dense.

use crate::codec::{put_usize, CkptNode};
use crate::problem::TreeProblem;
use crate::stack::{Burst, SearchStack, SplitPolicy};

/// One PE's DFS stack in flattened form: `nodes` holds the untried
/// alternatives bottom-to-top, `bounds[k]` is the offset where frame `k`
/// starts. Invariants mirror [`SearchStack`]: no empty frames, so `bounds`
/// is strictly increasing with `bounds[0] == 0` whenever the slab is
/// non-empty, and `bounds.len()` is the DFS depth spread.
#[derive(Debug, Clone, Default)]
pub struct PeSlab<N> {
    nodes: Vec<N>,
    bounds: Vec<u32>,
}

impl<N> PeSlab<N> {
    /// An empty slab (an idle processor).
    pub fn new() -> Self {
        Self { nodes: Vec::new(), bounds: Vec::new() }
    }

    /// Total untried alternatives.
    pub fn len(&self) -> usize {
        self.nodes.len()
    }

    /// Whether the slab holds no work.
    pub fn is_empty(&self) -> bool {
        self.nodes.is_empty()
    }

    /// Number of (non-empty) frames.
    pub fn depth(&self) -> usize {
        self.bounds.len()
    }

    /// The paper's *busy* predicate: splittable iff at least two nodes.
    pub fn can_split(&self) -> bool {
        self.nodes.len() >= 2
    }

    /// Half-open node range of frame `k`.
    fn frame_range(&self, k: usize) -> std::ops::Range<usize> {
        let start = self.bounds[k] as usize;
        let end = self.bounds.get(k + 1).map_or(self.nodes.len(), |&b| b as usize);
        start..end
    }

    /// Pop the next alternative in DFS order (back of the top frame),
    /// recycling the frame boundary if the pop emptied it. Matches
    /// [`SearchStack::pop_next`].
    pub fn pop_next(&mut self) -> Option<N> {
        let node = self.nodes.pop()?;
        if self.bounds.last().is_some_and(|&b| b as usize == self.nodes.len()) {
            self.bounds.pop();
        }
        debug_assert!(self.bounds.last().is_none_or(|&b| (b as usize) < self.nodes.len()));
        Some(node)
    }

    /// Build the new top frame *in place on the slab tail*: `fill` appends
    /// the children directly to the node slab (the [`TreeProblem::expand`]
    /// contract is append-only), and a frame boundary is recorded iff
    /// anything was appended. The zero-copy twin of
    /// [`SearchStack::push_frame_with`] — children are written exactly once,
    /// straight into their final resting place. Returns the child count.
    pub fn push_frame_with(&mut self, fill: impl FnOnce(&mut Vec<N>)) -> usize {
        let start = self.nodes.len();
        fill(&mut self.nodes);
        debug_assert!(self.nodes.len() >= start, "expand is append-only");
        let n = self.nodes.len() - start;
        if n > 0 {
            debug_assert!(self.nodes.len() <= u32::MAX as usize, "slab offset overflow");
            self.bounds.push(start as u32);
        }
        n
    }

    /// Run this PE's DFS for up to `budget` expansion cycles (or until the
    /// slab empties): pop, goal-test, expand onto the slab tail. Burst
    /// accounting is identical to [`SearchStack::expand_burst`].
    pub fn expand_burst<P: TreeProblem<Node = N>>(&mut self, problem: &P, budget: u64) -> Burst {
        let mut burst = Burst::default();
        while burst.expanded < budget {
            let Some(node) = self.pop_next() else { break };
            if problem.is_goal(&node) {
                burst.goals += 1;
            }
            self.push_frame_with(|out| problem.expand(&node, out));
            burst.expanded += 1;
            burst.peak = burst.peak.max(self.nodes.len());
        }
        burst
    }

    /// Donate the single bottom-most alternative to `receiver` (the
    /// [`SplitPolicy::Bottom`] arm of [`SearchStack::split_into`]): remove
    /// node 0, rebase the remaining offsets, drop frame 0's boundary if the
    /// removal emptied it, and land the node as a new single-node top frame
    /// on the receiver.
    fn bottom_split_into(&mut self, receiver: &mut PeSlab<N>) {
        let node = self.nodes.remove(0);
        for b in &mut self.bounds[1..] {
            *b -= 1;
        }
        if self.bounds.len() > 1 && self.bounds[1] == 0 {
            self.bounds.remove(0);
        }
        receiver.bounds.push(receiver.nodes.len() as u32);
        receiver.nodes.push(node);
    }

    /// Split off work for `receiver` according to `policy`, reproducing
    /// [`SearchStack::split_into`] frame-for-frame. Returns `false` (both
    /// slabs untouched) when `self` is not splittable.
    pub fn split_into(&mut self, policy: SplitPolicy, receiver: &mut PeSlab<N>) -> bool {
        if !self.can_split() {
            return false;
        }
        match policy {
            SplitPolicy::Bottom => self.bottom_split_into(receiver),
            SplitPolicy::Top => {
                let start = *self.bounds.last().expect("non-empty slab has frames") as usize;
                let node = self.nodes.remove(start);
                if self.nodes.len() == start {
                    self.bounds.pop();
                }
                receiver.bounds.push(receiver.nodes.len() as u32);
                receiver.nodes.push(node);
            }
            SplitPolicy::Half => {
                if self.nodes.len() == self.bounds.len() {
                    // Every frame is a singleton: nothing would move; fall
                    // back to the bottom alternative, as SearchStack does.
                    self.bottom_split_into(receiver);
                } else {
                    let total = self.nodes.len();
                    let old_bounds = std::mem::take(&mut self.bounds);
                    let mut it = std::mem::take(&mut self.nodes).into_iter();
                    self.nodes = Vec::with_capacity(total);
                    for j in 0..old_bounds.len() {
                        let s = old_bounds[j] as usize;
                        let e = old_bounds.get(j + 1).map_or(total, |&b| b as usize);
                        let take = (e - s) / 2;
                        if take > 0 {
                            receiver.bounds.push(receiver.nodes.len() as u32);
                            receiver.nodes.extend(it.by_ref().take(take));
                        }
                        // keep = ceil(flen / 2) >= 1: every donor frame survives.
                        self.bounds.push(self.nodes.len() as u32);
                        self.nodes.extend(it.by_ref().take(e - s - take));
                    }
                }
            }
        }
        debug_assert!(!self.is_empty(), "split must leave the donor non-empty");
        debug_assert!(!receiver.is_empty(), "split must feed the receiver");
        true
    }

    /// Donate up to `k` alternatives from the bottom of the stack to
    /// `receiver`, preserving frame structure and always leaving the donor
    /// at least one node — [`SearchStack::split_count`] followed by
    /// [`SearchStack::merge_from`], fused. Returns the number of nodes
    /// moved (0 when nothing can be donated).
    pub fn split_count_into(&mut self, k: usize, receiver: &mut PeSlab<N>) -> usize {
        if !self.can_split() || k == 0 {
            return 0;
        }
        let take_total = k.min(self.nodes.len() - 1);
        let total = self.nodes.len();
        // Frames intersecting the donated prefix are exactly those whose
        // start offset lies below the cut.
        let cut = self.bounds.partition_point(|&b| (b as usize) < take_total);
        let mut donated = self.nodes.drain(..take_total);
        for j in 0..cut {
            let s = self.bounds[j] as usize;
            let e = if j + 1 < cut { self.bounds[j + 1] as usize } else { take_total };
            receiver.bounds.push(receiver.nodes.len() as u32);
            receiver.nodes.extend(donated.by_ref().take(e - s));
        }
        drop(donated);
        // Rebase the donor: frames whose end sat past the cut survive, their
        // starts clamped to the cut and shifted down.
        let nb = self.bounds.len();
        let mut wrote = 0;
        for j in 0..nb {
            let e = if j + 1 < nb { self.bounds[j + 1] as usize } else { total };
            if e > take_total {
                self.bounds[wrote] =
                    (self.bounds[j] as usize).max(take_total) as u32 - take_total as u32;
                wrote += 1;
            }
        }
        self.bounds.truncate(wrote);
        debug_assert!(!self.is_empty());
        take_total
    }

    /// Flatten a [`SearchStack`] into slab form.
    pub fn from_stack(stack: SearchStack<N>) -> Self {
        let mut slab = Self::new();
        for frame in stack.into_frames() {
            slab.bounds.push(slab.nodes.len() as u32);
            slab.nodes.extend(frame);
        }
        slab
    }

    /// Rebuild the equivalent [`SearchStack`] (checkpoint-resume and
    /// oracle-comparison path).
    pub fn into_stack(self) -> SearchStack<N> {
        let total = self.nodes.len();
        let mut frames = Vec::with_capacity(self.bounds.len());
        let mut it = self.nodes.into_iter();
        for j in 0..self.bounds.len() {
            let s = self.bounds[j] as usize;
            let e = self.bounds.get(j + 1).map_or(total, |&b| b as usize);
            frames.push(it.by_ref().take(e - s).collect());
        }
        SearchStack::from_frames(frames)
    }

    /// The frame list as owned vectors (diagnostics / differential tests).
    pub fn frames(&self) -> Vec<Vec<N>>
    where
        N: Clone,
    {
        (0..self.bounds.len()).map(|k| self.nodes[self.frame_range(k)].to_vec()).collect()
    }

    /// Iterate the alternatives bottom-to-top.
    pub fn iter(&self) -> impl Iterator<Item = &N> {
        self.nodes.iter()
    }
}

impl<N: CkptNode> PeSlab<N> {
    /// Serialize exactly as [`SearchStack`]'s `CkptNode::encode_node` would:
    /// frame count, then each frame as a length-prefixed node list. The
    /// checkpoint codec cannot tell which representation wrote the bytes.
    pub fn encode_stack(&self, out: &mut Vec<u8>) {
        put_usize(out, self.bounds.len());
        for k in 0..self.bounds.len() {
            let range = self.frame_range(k);
            put_usize(out, range.len());
            for node in &self.nodes[range] {
                node.encode_node(out);
            }
        }
    }
}

/// The ensemble: one [`PeSlab`] per PE plus the dense census state — every
/// PE's stack length mirrored into one contiguous `u32` array. All mutation
/// goes through methods that keep `lens[i] == slabs[i].len()`; the parallel
/// engine's shards, which need disjoint `&mut` windows, use
/// [`StackArena::parts_mut`] and restore the mirror themselves (debug
/// assertions re-check it at every census read).
#[derive(Debug, Clone)]
pub struct StackArena<N> {
    slabs: Vec<PeSlab<N>>,
    lens: Vec<u32>,
}

impl<N> StackArena<N> {
    /// An ensemble of `p` idle PEs.
    pub fn new(p: usize) -> Self {
        Self { slabs: (0..p).map(|_| PeSlab::new()).collect(), lens: vec![0; p] }
    }

    /// Flatten an ensemble of [`SearchStack`]s (the canonical checkpoint /
    /// oracle representation) into arena form.
    pub fn from_stacks(stacks: Vec<SearchStack<N>>) -> Self {
        let slabs: Vec<PeSlab<N>> = stacks.into_iter().map(PeSlab::from_stack).collect();
        let lens = slabs.iter().map(|s| s.len() as u32).collect();
        Self { slabs, lens }
    }

    /// Rebuild the canonical [`SearchStack`] ensemble.
    pub fn into_stacks(self) -> Vec<SearchStack<N>> {
        self.slabs.into_iter().map(PeSlab::into_stack).collect()
    }

    /// Ensemble size `P`.
    pub fn p(&self) -> usize {
        self.slabs.len()
    }

    /// The dense stack-length array the census sweeps read. Index = PE id;
    /// `lens()[i] > 0` is the activity bit, `lens()[i] >= 2` the busy bit.
    pub fn lens(&self) -> &[u32] {
        debug_assert!(self.mirror_ok(), "lens mirror out of sync");
        &self.lens
    }

    /// Stack length of PE `i`.
    pub fn len_of(&self, i: usize) -> usize {
        self.lens[i] as usize
    }

    /// DFS depth spread of PE `i`.
    pub fn depth_of(&self, i: usize) -> usize {
        self.slabs[i].depth()
    }

    /// Whether PE `i` can donate (holds at least two nodes).
    pub fn can_split(&self, i: usize) -> bool {
        self.lens[i] >= 2
    }

    /// Borrow PE `i`'s slab.
    pub fn slab(&self, i: usize) -> &PeSlab<N> {
        &self.slabs[i]
    }

    /// Pop PE `i`'s next alternative in DFS order.
    pub fn pop_next(&mut self, i: usize) -> Option<N> {
        let node = self.slabs[i].pop_next()?;
        self.lens[i] -= 1;
        Some(node)
    }

    /// Build PE `i`'s new top frame in place on its slab tail (see
    /// [`PeSlab::push_frame_with`]). Returns the child count.
    pub fn push_frame_with(&mut self, i: usize, fill: impl FnOnce(&mut Vec<N>)) -> usize {
        let n = self.slabs[i].push_frame_with(fill);
        self.lens[i] += n as u32;
        n
    }

    /// Burst PE `i` for up to `budget` cycles (see [`PeSlab::expand_burst`]).
    pub fn expand_burst<P: TreeProblem<Node = N>>(
        &mut self,
        i: usize,
        problem: &P,
        budget: u64,
    ) -> Burst {
        let burst = self.slabs[i].expand_burst(problem, budget);
        self.lens[i] = self.slabs[i].len() as u32;
        burst
    }

    /// Split work from PE `donor` to PE `receiver` under `policy` (see
    /// [`PeSlab::split_into`]). Returns `false` when the donor cannot split.
    ///
    /// # Panics
    /// Panics if `donor == receiver`.
    pub fn split_into(&mut self, donor: usize, receiver: usize, policy: SplitPolicy) -> bool {
        let (d, r) = pair_mut(&mut self.slabs, donor, receiver);
        let before = d.len();
        if !d.split_into(policy, r) {
            return false;
        }
        let moved = (before - d.len()) as u32;
        self.lens[donor] -= moved;
        self.lens[receiver] += moved;
        true
    }

    /// Donate up to `k` bottom alternatives from `donor` to `receiver`
    /// (see [`PeSlab::split_count_into`]). Returns the nodes moved.
    ///
    /// # Panics
    /// Panics if `donor == receiver`.
    pub fn split_count_into(&mut self, donor: usize, receiver: usize, k: usize) -> usize {
        let (d, r) = pair_mut(&mut self.slabs, donor, receiver);
        let moved = d.split_count_into(k, r);
        self.lens[donor] -= moved as u32;
        self.lens[receiver] += moved as u32;
        moved
    }

    /// Disjoint mutable views of the slab array and the length mirror, for
    /// host-parallel shards that carve both at the same PE boundaries. The
    /// caller must restore `lens[i] == slabs[i].len()` before the next
    /// census read; [`StackArena::lens`] re-checks it under debug.
    pub fn parts_mut(&mut self) -> (&mut [PeSlab<N>], &mut [u32]) {
        (&mut self.slabs, &mut self.lens)
    }

    fn mirror_ok(&self) -> bool {
        self.slabs.iter().zip(&self.lens).all(|(s, &l)| s.len() == l as usize)
    }
}

impl<N: CkptNode> StackArena<N> {
    /// Serialize PE `i`'s stack byte-identically to the [`SearchStack`]
    /// codec (see [`PeSlab::encode_stack`]).
    pub fn encode_pe(&self, i: usize, out: &mut Vec<u8>) {
        self.slabs[i].encode_stack(out);
    }
}

/// Disjoint `&mut` to two distinct slots of a slice.
fn pair_mut<T>(slice: &mut [T], a: usize, b: usize) -> (&mut T, &mut T) {
    assert_ne!(a, b, "pair_mut requires distinct indices");
    if a < b {
        let (lo, hi) = slice.split_at_mut(b);
        (&mut lo[a], &mut hi[0])
    } else {
        let (lo, hi) = slice.split_at_mut(a);
        (&mut hi[0], &mut lo[b])
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::codec::CkptNode;

    fn stack_of(frames: Vec<Vec<u32>>) -> SearchStack<u32> {
        SearchStack::from_frames(frames)
    }

    fn assert_matches_stack(slab: &PeSlab<u32>, stack: &SearchStack<u32>) {
        assert_eq!(slab.len(), stack.len(), "lengths diverge");
        assert_eq!(slab.depth(), stack.depth(), "depths diverge");
        let stack_frames: Vec<Vec<u32>> = stack.frames().to_vec();
        assert_eq!(slab.frames(), stack_frames, "frame structures diverge");
    }

    /// Tiny deterministic problem: node `n > 0` has two children `n - 1`;
    /// `n == 0` is a goal leaf (mirrors the stack.rs burst tests).
    struct Halving;
    impl TreeProblem for Halving {
        type Node = u32;
        fn root(&self) -> u32 {
            3
        }
        fn expand(&self, n: &u32, out: &mut Vec<u32>) {
            if *n > 0 {
                out.push(n - 1);
                out.push(n - 1);
            }
        }
        fn is_goal(&self, n: &u32) -> bool {
            *n == 0
        }
    }

    #[test]
    fn pop_next_matches_search_stack() {
        let shape = vec![vec![1u32, 2], vec![3], vec![4, 5, 6]];
        let mut stack = stack_of(shape.clone());
        let mut slab = PeSlab::from_stack(stack_of(shape));
        loop {
            let a = slab.pop_next();
            let b = stack.pop_next();
            assert_eq!(a, b);
            assert_matches_stack(&slab, &stack);
            if a.is_none() {
                break;
            }
        }
    }

    #[test]
    fn push_frame_with_matches_search_stack() {
        let mut stack = SearchStack::from_root(9u32);
        let mut slab = PeSlab::from_stack(SearchStack::from_root(9u32));
        assert_eq!(
            slab.push_frame_with(|out| out.extend([1, 2, 3])),
            stack.push_frame_with(|out| out.extend([1, 2, 3])),
        );
        assert_eq!(slab.push_frame_with(|_| {}), stack.push_frame_with(|_| {}));
        assert_matches_stack(&slab, &stack);
    }

    #[test]
    fn expand_burst_matches_search_stack() {
        for budget in [0u64, 1, 2, 3, 5, 7, 100] {
            let mut stack = SearchStack::from_root(Halving.root());
            let mut slab = PeSlab::from_stack(SearchStack::from_root(Halving.root()));
            let a = slab.expand_burst(&Halving, budget);
            let b = stack.expand_burst(&Halving, budget);
            assert_eq!(a, b, "budget {budget}");
            assert_matches_stack(&slab, &stack);
        }
    }

    #[test]
    fn split_into_matches_search_stack_for_all_policies() {
        let shapes: [Vec<Vec<u32>>; 5] = [
            vec![vec![10, 11], vec![20], vec![30, 31]],
            vec![vec![1], vec![2], vec![3]],
            vec![vec![1, 2, 3, 4], vec![5, 6, 7]],
            vec![vec![10], vec![20, 21]],
            vec![vec![1, 2]],
        ];
        for policy in [SplitPolicy::Bottom, SplitPolicy::Half, SplitPolicy::Top] {
            for shape in &shapes {
                for receiver_shape in [vec![], vec![vec![90u32, 91]]] {
                    let mut donor_s = stack_of(shape.clone());
                    let mut recv_s = if receiver_shape.is_empty() {
                        SearchStack::new()
                    } else {
                        stack_of(receiver_shape.clone())
                    };
                    let mut donor_a = PeSlab::from_stack(stack_of(shape.clone()));
                    let mut recv_a = PeSlab::from_stack(if receiver_shape.is_empty() {
                        SearchStack::new()
                    } else {
                        stack_of(receiver_shape.clone())
                    });
                    let ok_s = donor_s.split_into(policy, &mut recv_s);
                    let ok_a = donor_a.split_into(policy, &mut recv_a);
                    assert_eq!(ok_a, ok_s, "{policy:?}");
                    assert_matches_stack(&donor_a, &donor_s);
                    assert_matches_stack(&recv_a, &recv_s);
                }
            }
        }
    }

    #[test]
    fn split_into_unsplittable_is_noop() {
        let mut donor = PeSlab::from_stack(SearchStack::from_root(5u32));
        let mut recv: PeSlab<u32> = PeSlab::new();
        assert!(!donor.split_into(SplitPolicy::Bottom, &mut recv));
        assert_eq!(donor.len(), 1);
        assert!(recv.is_empty());
    }

    #[test]
    fn split_count_into_matches_split_count_plus_merge() {
        let shapes: [Vec<Vec<u32>>; 4] = [
            vec![vec![1, 2], vec![3, 4, 5]],
            vec![vec![1, 2, 3]],
            vec![vec![1], vec![2], vec![3, 4]],
            vec![vec![1, 2]],
        ];
        for k in 0usize..6 {
            for shape in &shapes {
                let mut donor_s = stack_of(shape.clone());
                let mut recv_s = stack_of(vec![vec![90u32]]);
                let mut donor_a = PeSlab::from_stack(stack_of(shape.clone()));
                let mut recv_a = PeSlab::from_stack(stack_of(vec![vec![90u32]]));
                let moved_s = match donor_s.split_count(k) {
                    Some(d) => {
                        let m = d.len();
                        recv_s.merge_from(d);
                        m
                    }
                    None => 0,
                };
                let moved_a = donor_a.split_count_into(k, &mut recv_a);
                assert_eq!(moved_a, moved_s, "k={k} shape={shape:?}");
                assert_matches_stack(&donor_a, &donor_s);
                assert_matches_stack(&recv_a, &recv_s);
            }
        }
    }

    #[test]
    fn stack_round_trip_is_lossless() {
        let shapes: [Vec<Vec<u32>>; 3] =
            [vec![], vec![vec![7]], vec![vec![1, 2], vec![3], vec![4, 5, 6]]];
        for shape in shapes {
            let stack = if shape.is_empty() { SearchStack::new() } else { stack_of(shape) };
            let original: Vec<Vec<u32>> = stack.frames().to_vec();
            let back = PeSlab::from_stack(stack).into_stack();
            assert_eq!(back.frames(), original.as_slice());
        }
    }

    #[test]
    fn encode_stack_is_byte_identical_to_search_stack() {
        let shapes: [Vec<Vec<u32>>; 4] =
            [vec![], vec![vec![7]], vec![vec![1, 2], vec![3], vec![4, 5, 6]], vec![vec![42; 9]]];
        for shape in shapes {
            let stack = if shape.is_empty() { SearchStack::new() } else { stack_of(shape) };
            let slab = PeSlab::from_stack(stack.clone());
            let mut via_stack = Vec::new();
            stack.encode_node(&mut via_stack);
            let mut via_slab = Vec::new();
            slab.encode_stack(&mut via_slab);
            assert_eq!(via_slab, via_stack);
        }
    }

    #[test]
    fn arena_keeps_the_lens_mirror_in_sync() {
        let mut arena = StackArena::from_stacks(vec![
            SearchStack::from_root(Halving.root()),
            SearchStack::new(),
            stack_of(vec![vec![1, 2], vec![3]]),
        ]);
        assert_eq!(arena.lens(), &[1, 0, 3]);
        assert_eq!(arena.p(), 3);
        arena.expand_burst(0, &Halving, 2);
        assert_eq!(arena.len_of(0), arena.slab(0).len());
        assert!(arena.split_into(2, 1, SplitPolicy::Bottom));
        assert_eq!(arena.lens(), &[arena.slab(0).len() as u32, 1, 2]);
        let moved = arena.split_count_into(2, 1, 1);
        assert_eq!(moved, 1);
        assert_eq!(arena.lens()[1], 2);
        assert!(arena.can_split(1));
        let node = arena.pop_next(1);
        assert!(node.is_some());
        assert_eq!(arena.lens()[1], 1);
        let stacks = arena.into_stacks();
        assert_eq!(stacks.len(), 3);
    }

    #[test]
    fn arena_round_trips_through_stacks() {
        let stacks = vec![
            stack_of(vec![vec![1u32, 2], vec![3]]),
            SearchStack::new(),
            SearchStack::from_root(9),
        ];
        let originals: Vec<Vec<Vec<u32>>> = stacks.iter().map(|s| s.frames().to_vec()).collect();
        let back = StackArena::from_stacks(stacks).into_stacks();
        let after: Vec<Vec<Vec<u32>>> = back.iter().map(|s| s.frames().to_vec()).collect();
        assert_eq!(after, originals);
    }

    #[test]
    fn long_differential_run_stays_in_lockstep() {
        // Drive both representations through an interleaved pop / expand /
        // split / donate sequence chosen by a tiny deterministic LCG and
        // compare complete frame structures after every operation.
        let mut stacks =
            vec![SearchStack::from_root(Halving.root()), SearchStack::new(), SearchStack::new()];
        let mut arena = StackArena::from_stacks(stacks.clone());
        let mut rng = 0x2545_F491_4F6C_DD1Du64;
        let policies = [SplitPolicy::Bottom, SplitPolicy::Half, SplitPolicy::Top];
        for step in 0..400 {
            rng = rng.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
            let i = (rng >> 33) as usize % 3;
            let j = (i + 1 + (rng >> 21) as usize % 2) % 3;
            match (rng >> 60) % 4 {
                0 => {
                    let a = arena.pop_next(i);
                    let b = stacks[i].pop_next();
                    assert_eq!(a, b, "step {step}");
                }
                1 => {
                    let budget = 1 + (rng >> 10) % 3;
                    let a = arena.expand_burst(i, &Halving, budget);
                    let b = stacks[i].expand_burst(&Halving, budget);
                    assert_eq!(a, b, "step {step}");
                }
                2 => {
                    let policy = policies[(rng >> 15) as usize % 3];
                    let (di, ri) = (i, j);
                    let a = arena.split_into(di, ri, policy);
                    let (d, r) = pair_mut(&mut stacks, di, ri);
                    let b = d.split_into(policy, r);
                    assert_eq!(a, b, "step {step}");
                }
                _ => {
                    let k = 1 + (rng >> 40) as usize % 4;
                    let a = arena.split_count_into(i, j, k);
                    let (d, r) = pair_mut(&mut stacks, i, j);
                    let b = match d.split_count(k) {
                        Some(don) => {
                            let m = don.len();
                            r.merge_from(don);
                            m
                        }
                        None => 0,
                    };
                    assert_eq!(a, b, "step {step}");
                }
            }
            for (pe, stack) in stacks.iter().enumerate() {
                assert_eq!(arena.len_of(pe), stack.len(), "step {step} pe {pe}");
                assert_eq!(arena.slab(pe).frames(), stack.frames().to_vec(), "step {step} pe {pe}");
            }
            // If the whole ensemble drained, reseed it so later steps keep
            // exercising the mutating arms.
            if arena.lens().iter().all(|&l| l == 0) {
                stacks[0] = SearchStack::from_root(Halving.root());
                arena = StackArena::from_stacks(stacks.clone());
            }
        }
    }
}
