//! Problem abstractions.
//!
//! [`TreeProblem`] is the minimal interface the parallel engine needs: a
//! root and a successor generator. Pruning (depth bounds, `f > bound` in
//! IDA\*, cost bounds in branch-and-bound) happens inside `expand`, so the
//! serial and parallel searches — which share the same `expand` — expand
//! *identical* node sets. That is how the paper excludes speedup anomalies
//! ("the number of nodes expanded by the serial and the parallel search is
//! the same", Sec. 5).

/// A dynamically generated search tree.
///
/// `Node` values must be self-contained (carry their own depth / path cost),
/// because the parallel engine moves them between processors' stacks — and
/// byte-serializable ([`crate::codec::CkptNode`]), because the checkpoint
/// subsystem snapshots in-flight stacks to disk and resumes them.
pub trait TreeProblem: Sync {
    /// A node of the tree. Cloned when stacks are split and shipped;
    /// encoded/decoded when a run is checkpointed.
    type Node: Clone + Send + Sync + crate::codec::CkptNode;

    /// The root node.
    fn root(&self) -> Self::Node;

    /// Append the children of `node` to `out` in the order a DFS should
    /// *generate* them. (`SearchStack` pops from the back, so the child
    /// pushed last is explored first.) Prune here: a child that should not
    /// be searched is simply not emitted.
    fn expand(&self, node: &Self::Node, out: &mut Vec<Self::Node>);

    /// Whether `node` is a goal. Checked when the node is *expanded*.
    fn is_goal(&self, node: &Self::Node) -> bool {
        let _ = node;
        false
    }
}

/// A problem with an admissible heuristic, searchable by IDA\*
/// (Korf 1985 — the serial algorithm of the paper's experiments).
pub trait HeuristicProblem: Sync {
    /// A state of the problem. The [`crate::codec::CkptNode`] bound keeps
    /// [`BoundedNode<State>`] checkpointable, so IDA\* iterations running
    /// under the parallel engine can snapshot and resume.
    type State: Clone + Send + Sync + crate::codec::CkptNode;

    /// The initial state.
    fn initial(&self) -> Self::State;

    /// Lower bound on the remaining cost to any goal (`h`).
    fn h(&self, s: &Self::State) -> u32;

    /// Emit `(successor, edge_cost)` pairs.
    fn successors(&self, s: &Self::State, out: &mut Vec<(Self::State, u32)>);

    /// Goal test.
    fn is_goal(&self, s: &Self::State) -> bool;
}

/// A node of a cost-bounded DFS iteration: a state plus its path cost `g`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BoundedNode<S> {
    /// The underlying problem state.
    pub state: S,
    /// Path cost from the root.
    pub g: u32,
}

/// One IDA\* iteration: the tree of all nodes with `f = g + h <= bound`,
/// viewed as a [`TreeProblem`].
///
/// The *next* bound of iterative deepening is the minimum `f` among the
/// children pruned during this iteration; expansion records it in a
/// caller-provided cell via interior mutability-free design: the pruning
/// minimum is instead recomputed by [`crate::ida::ida_star`] with a second
/// pass trick — see there. To keep `expand` pure, this adapter simply drops
/// over-bound children.
#[derive(Debug, Clone)]
pub struct BoundedProblem<'a, H> {
    heuristic: &'a H,
    bound: u32,
}

impl<'a, H: HeuristicProblem> BoundedProblem<'a, H> {
    /// View `heuristic`'s search space cut at `f <= bound`.
    pub fn new(heuristic: &'a H, bound: u32) -> Self {
        Self { heuristic, bound }
    }

    /// The cost bound of this iteration.
    pub fn bound(&self) -> u32 {
        self.bound
    }

    /// The underlying heuristic problem.
    pub fn inner(&self) -> &H {
        self.heuristic
    }

    /// Like [`TreeProblem::expand`], but also returns the minimum `f` value
    /// among pruned children (`None` if nothing was pruned) — the quantity
    /// iterative deepening needs for its next bound.
    pub fn expand_tracking_pruned(
        &self,
        node: &BoundedNode<H::State>,
        out: &mut Vec<BoundedNode<H::State>>,
        scratch: &mut Vec<(H::State, u32)>,
    ) -> Option<u32> {
        scratch.clear();
        self.heuristic.successors(&node.state, scratch);
        let mut min_pruned: Option<u32> = None;
        for (child, cost) in scratch.drain(..) {
            let g = node.g + cost;
            let f = g + self.heuristic.h(&child);
            if f <= self.bound {
                out.push(BoundedNode { state: child, g });
            } else {
                min_pruned = Some(min_pruned.map_or(f, |m| m.min(f)));
            }
        }
        min_pruned
    }
}

impl<H: HeuristicProblem> TreeProblem for BoundedProblem<'_, H> {
    type Node = BoundedNode<H::State>;

    fn root(&self) -> Self::Node {
        BoundedNode { state: self.heuristic.initial(), g: 0 }
    }

    fn expand(&self, node: &Self::Node, out: &mut Vec<Self::Node>) {
        let mut scratch = Vec::new();
        self.expand_tracking_pruned(node, out, &mut scratch);
    }

    fn is_goal(&self, node: &Self::Node) -> bool {
        self.heuristic.is_goal(&node.state)
    }
}

#[cfg(test)]
pub(crate) mod testutil {
    use super::*;

    /// A complete `b`-ary tree of the given depth; node = (depth, index).
    /// Goals are the leaves whose index is 0.
    pub struct UniformTree {
        pub branching: usize,
        pub depth: usize,
    }

    impl TreeProblem for UniformTree {
        type Node = (usize, u64);

        fn root(&self) -> Self::Node {
            (0, 0)
        }

        fn expand(&self, &(d, i): &Self::Node, out: &mut Vec<Self::Node>) {
            if d < self.depth {
                for c in 0..self.branching {
                    out.push((d + 1, i * self.branching as u64 + c as u64));
                }
            }
        }

        fn is_goal(&self, &(d, i): &Self::Node) -> bool {
            d == self.depth && i == 0
        }
    }

    impl UniformTree {
        /// Closed-form node count: (b^(depth+1) - 1) / (b - 1).
        pub fn node_count(&self) -> u64 {
            let b = self.branching as u64;
            if b == 1 {
                return self.depth as u64 + 1;
            }
            (b.pow(self.depth as u32 + 1) - 1) / (b - 1)
        }
    }

    /// A line-graph heuristic problem: states 0..=n on a path, goal n,
    /// h = n - s (perfectly informed), unit edges, branching to s+1 and
    /// (dead end) s-1 clipped.
    pub struct LineProblem {
        pub n: u32,
    }

    impl HeuristicProblem for LineProblem {
        type State = u32;

        fn initial(&self) -> u32 {
            0
        }

        fn h(&self, &s: &u32) -> u32 {
            self.n - s
        }

        fn successors(&self, &s: &u32, out: &mut Vec<(u32, u32)>) {
            if s < self.n {
                out.push((s + 1, 1));
            }
            if s > 0 {
                out.push((s - 1, 1));
            }
        }

        fn is_goal(&self, &s: &u32) -> bool {
            s == self.n
        }
    }
}

#[cfg(test)]
mod tests {
    use super::testutil::*;
    use super::*;

    #[test]
    fn uniform_tree_expands_branching_children() {
        let t = UniformTree { branching: 3, depth: 2 };
        let mut out = Vec::new();
        t.expand(&t.root(), &mut out);
        assert_eq!(out, vec![(1, 0), (1, 1), (1, 2)]);
        out.clear();
        t.expand(&(2, 5), &mut out);
        assert!(out.is_empty(), "leaves have no children");
    }

    #[test]
    fn bounded_problem_prunes_over_bound_children() {
        let line = LineProblem { n: 4 };
        // Root f = h(0) = 4; with bound 4 only forward moves stay (backward
        // moves raise f by 2 each step).
        let bp = BoundedProblem::new(&line, 4);
        let root = bp.root();
        assert_eq!(root.g, 0);
        let mut out = Vec::new();
        let mut scratch = Vec::new();
        let pruned = bp.expand_tracking_pruned(&root, &mut out, &mut scratch);
        assert_eq!(out.len(), 1);
        assert_eq!(out[0].state, 1);
        assert_eq!(out[0].g, 1);
        assert_eq!(pruned, None, "state 0 has no backward child to prune");

        // From state 1 (g=1), the backward child 0 has f = 2 + 4 = 6 > 4.
        let n1 = BoundedNode { state: 1, g: 1 };
        out.clear();
        let pruned = bp.expand_tracking_pruned(&n1, &mut out, &mut scratch);
        assert_eq!(out.len(), 1);
        assert_eq!(pruned, Some(6));
    }

    #[test]
    fn bounded_problem_goal_passthrough() {
        let line = LineProblem { n: 2 };
        let bp = BoundedProblem::new(&line, 2);
        assert!(!bp.is_goal(&BoundedNode { state: 1, g: 1 }));
        assert!(bp.is_goal(&BoundedNode { state: 2, g: 2 }));
    }
}
