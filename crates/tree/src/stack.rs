//! The per-processor DFS stack of untried alternatives, and work splitting.
//!
//! "Since each processor searches the space in a depth-first manner, the
//! (part of) state space to be searched is efficiently represented by a
//! stack. ... each level of the stack keeps track of untried alternatives.
//! The current unsearched tree space ... can be partitioned into two parts
//! by simply partitioning untried alternatives (on the current stack) into
//! two parts." (Sec. 2)
//!
//! A [`SearchStack`] is a stack of *frames*; frame `k` holds the untried
//! alternatives at stack level `k` (siblings of already-explored nodes).
//! DFS pops the most recently generated alternative (back of the top
//! frame); expanding it pushes its children as a new top frame.
//!
//! **Splitting.** A processor is *busy* (can donate) iff it holds at least
//! two nodes ([`SearchStack::can_split`]); splitting removes some
//! alternatives and forms a new stack for the receiving processor. The
//! default [`SplitPolicy::Bottom`] donates the single alternative nearest
//! the stack bottom — the paper's choice for the 15-puzzle ("every time work
//! is split we transfer the node at the bottom of the stack", Sec. 5), since
//! the shallowest untried alternative subtends the largest expected subtree.
//! [`SplitPolicy::Half`] and [`SplitPolicy::Top`] exist for the ablation
//! benches.

use serde::{Deserialize, Serialize};

/// How a donor partitions its untried alternatives (the alpha-splitting
/// mechanism of Sec. 3).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default, Serialize, Deserialize)]
pub enum SplitPolicy {
    /// Donate the alternative nearest the stack bottom (paper default).
    #[default]
    Bottom,
    /// Donate the front half of every frame (Kumar–Rao style half-split;
    /// donates `floor(len/2)` nodes overall, frame structure preserved).
    Half,
    /// Donate the alternative nearest the stack top (deliberately poor —
    /// the donated subtree is tiny; used to show splitting quality matters).
    Top,
}

/// A DFS stack of untried-alternative frames.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct SearchStack<N> {
    /// `frames[k]` = untried alternatives at level `k`; never contains an
    /// empty frame except frame 0 transiently inside method bodies.
    frames: Vec<Vec<N>>,
    /// Total alternatives across frames (the paper's "nodes on its stack").
    len: usize,
}

impl<N> Default for SearchStack<N> {
    fn default() -> Self {
        Self::new()
    }
}

impl<N> SearchStack<N> {
    /// An empty stack (an idle processor).
    pub fn new() -> Self {
        Self { frames: Vec::new(), len: 0 }
    }

    /// A stack holding a single root alternative.
    pub fn from_root(root: N) -> Self {
        Self { frames: vec![vec![root]], len: 1 }
    }

    /// Total untried alternatives on the stack.
    pub fn len(&self) -> usize {
        self.len
    }

    /// Whether the stack holds no work.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Number of (non-empty) frames — the current DFS depth spread.
    pub fn depth(&self) -> usize {
        self.frames.len()
    }

    /// The paper's *busy* predicate: the stack can be split into two
    /// non-empty parts iff it holds at least two nodes.
    pub fn can_split(&self) -> bool {
        self.len >= 2
    }

    /// Pop the next alternative in DFS order (back of the top frame).
    pub fn pop_next(&mut self) -> Option<N> {
        let node = loop {
            let top = self.frames.last_mut()?;
            match top.pop() {
                Some(n) => break n,
                None => {
                    self.frames.pop();
                }
            }
        };
        self.len -= 1;
        // Drop any frames emptied by this pop so depth() stays meaningful.
        while self.frames.last().is_some_and(Vec::is_empty) {
            self.frames.pop();
        }
        Some(node)
    }

    /// Push the children of the node just popped as a new top frame.
    /// An empty `children` is a no-op (the popped node was a leaf).
    pub fn push_frame(&mut self, children: Vec<N>) {
        if !children.is_empty() {
            self.len += children.len();
            self.frames.push(children);
        }
    }

    /// Split off work for an idle processor according to `policy`.
    ///
    /// Returns `None` (and leaves `self` untouched) when the stack is not
    /// splittable. Otherwise both `self` and the returned stack are
    /// non-empty and their lengths sum to the original length.
    pub fn split(&mut self, policy: SplitPolicy) -> Option<SearchStack<N>> {
        if !self.can_split() {
            return None;
        }
        let donated = match policy {
            SplitPolicy::Bottom => {
                // First alternative of the shallowest non-empty frame: the
                // node at the very bottom of the stack.
                let frame = self
                    .frames
                    .iter_mut()
                    .find(|f| !f.is_empty())
                    .expect("len >= 2 implies a non-empty frame");
                let node = frame.remove(0);
                self.len -= 1;
                SearchStack::from_root(node)
            }
            SplitPolicy::Top => {
                // First (i.e. last-to-be-tried) alternative of the deepest
                // frame holding more than one node if possible, else the
                // deepest frame outright — we must not empty the donor.
                let node = {
                    let frame = self
                        .frames
                        .iter_mut()
                        .rev()
                        .find(|f| !f.is_empty())
                        .expect("len >= 2 implies a non-empty frame");
                    if frame.len() > 1 {
                        frame.remove(0)
                    } else {
                        // Single-node top frame: taking it would be fine
                        // (donor still has >= 1 elsewhere), take it.
                        frame.remove(0)
                    }
                };
                self.len -= 1;
                SearchStack::from_root(node)
            }
            SplitPolicy::Half => {
                // Donate the front half of every frame; guarantee at least
                // one node moves (and at least one stays).
                let mut out_frames = Vec::with_capacity(self.frames.len());
                let mut moved = 0usize;
                for frame in &mut self.frames {
                    let take = frame.len() / 2;
                    let donated: Vec<N> = frame.drain(..take).collect();
                    moved += donated.len();
                    if !donated.is_empty() {
                        out_frames.push(donated);
                    }
                }
                if moved == 0 {
                    // Every frame had exactly one node; fall back to the
                    // bottom alternative so the receiver gets something.
                    let frame = self
                        .frames
                        .iter_mut()
                        .find(|f| !f.is_empty())
                        .expect("len >= 2 implies a non-empty frame");
                    out_frames.push(vec![frame.remove(0)]);
                    moved = 1;
                }
                self.len -= moved;
                SearchStack { frames: out_frames, len: moved }
            }
        };
        // Purge frames emptied by the donation.
        self.frames.retain(|f| !f.is_empty());
        debug_assert!(!self.is_empty(), "split must leave the donor non-empty");
        debug_assert!(!donated.is_empty(), "split must feed the receiver");
        Some(donated)
    }

    /// Donate up to `k` alternatives from the bottom of the stack,
    /// preserving frame structure, always leaving the donor at least one
    /// node. Used by node-count-equalizing redistribution (the FEGS scheme
    /// of Sec. 8). Returns `None` if nothing can be donated.
    pub fn split_count(&mut self, k: usize) -> Option<SearchStack<N>> {
        if !self.can_split() || k == 0 {
            return None;
        }
        let take_total = k.min(self.len - 1);
        let mut out_frames = Vec::new();
        let mut moved = 0usize;
        for frame in &mut self.frames {
            if moved == take_total {
                break;
            }
            let take = (take_total - moved).min(frame.len());
            // Never empty the *last* remaining nodes: cap enforced by
            // take_total <= len - 1 overall.
            let donated: Vec<N> = frame.drain(..take).collect();
            moved += donated.len();
            if !donated.is_empty() {
                out_frames.push(donated);
            }
        }
        self.len -= moved;
        self.frames.retain(|f| !f.is_empty());
        debug_assert!(!self.is_empty());
        Some(SearchStack { frames: out_frames, len: moved })
    }

    /// Iterate the alternatives bottom-to-top (test helper / diagnostics).
    pub fn iter(&self) -> impl Iterator<Item = &N> {
        self.frames.iter().flatten()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn stack_of(frames: Vec<Vec<u32>>) -> SearchStack<u32> {
        let len = frames.iter().map(Vec::len).sum();
        SearchStack { frames, len }
    }

    #[test]
    fn empty_stack_is_idle() {
        let mut s: SearchStack<u32> = SearchStack::new();
        assert!(s.is_empty());
        assert!(!s.can_split());
        assert_eq!(s.pop_next(), None);
        assert!(s.split(SplitPolicy::Bottom).is_none());
    }

    #[test]
    fn single_node_is_work_but_not_busy() {
        let mut s = SearchStack::from_root(7);
        assert!(!s.is_empty());
        assert!(!s.can_split(), "paper: busy requires >= 2 nodes");
        assert!(s.split(SplitPolicy::Bottom).is_none());
        assert_eq!(s.pop_next(), Some(7));
        assert!(s.is_empty());
    }

    #[test]
    fn dfs_order_pops_most_recent_child_first() {
        let mut s = SearchStack::from_root(0);
        assert_eq!(s.pop_next(), Some(0));
        s.push_frame(vec![1, 2, 3]); // generated order 1,2,3
        assert_eq!(s.pop_next(), Some(3), "explore the last-generated child first");
        s.push_frame(vec![31, 32]);
        assert_eq!(s.pop_next(), Some(32));
        assert_eq!(s.pop_next(), Some(31));
        assert_eq!(s.pop_next(), Some(2), "backtrack to level 1");
        assert_eq!(s.pop_next(), Some(1));
        assert_eq!(s.pop_next(), None);
    }

    #[test]
    fn empty_frame_push_is_noop() {
        let mut s = SearchStack::from_root(1);
        s.push_frame(vec![]);
        assert_eq!(s.len(), 1);
        assert_eq!(s.depth(), 1);
    }

    #[test]
    fn bottom_split_takes_shallowest_first_alternative() {
        let mut s = stack_of(vec![vec![10, 11], vec![20], vec![30, 31]]);
        let d = s.split(SplitPolicy::Bottom).unwrap();
        assert_eq!(d.iter().copied().collect::<Vec<_>>(), vec![10]);
        assert_eq!(s.len(), 4);
        assert_eq!(s.iter().copied().collect::<Vec<_>>(), vec![11, 20, 30, 31]);
    }

    #[test]
    fn bottom_split_skips_emptied_bottom_frames() {
        let mut s = stack_of(vec![vec![10], vec![20, 21]]);
        let d = s.split(SplitPolicy::Bottom).unwrap();
        assert_eq!(d.iter().copied().collect::<Vec<_>>(), vec![10]);
        assert_eq!(s.depth(), 1, "emptied bottom frame is purged");
        let d2 = s.split(SplitPolicy::Bottom).unwrap();
        assert_eq!(d2.iter().copied().collect::<Vec<_>>(), vec![20]);
        assert!(!s.can_split());
    }

    #[test]
    fn top_split_takes_deepest_alternative() {
        let mut s = stack_of(vec![vec![10, 11], vec![30, 31]]);
        let d = s.split(SplitPolicy::Top).unwrap();
        assert_eq!(d.iter().copied().collect::<Vec<_>>(), vec![30]);
        assert_eq!(s.iter().copied().collect::<Vec<_>>(), vec![10, 11, 31]);
    }

    #[test]
    fn half_split_moves_front_half_of_each_frame() {
        let mut s = stack_of(vec![vec![1, 2, 3, 4], vec![5, 6, 7]]);
        let d = s.split(SplitPolicy::Half).unwrap();
        assert_eq!(d.iter().copied().collect::<Vec<_>>(), vec![1, 2, 5]);
        assert_eq!(s.iter().copied().collect::<Vec<_>>(), vec![3, 4, 6, 7]);
        assert_eq!(d.len() + s.len(), 7);
    }

    #[test]
    fn half_split_of_singleton_frames_falls_back_to_bottom() {
        let mut s = stack_of(vec![vec![1], vec![2], vec![3]]);
        let d = s.split(SplitPolicy::Half).unwrap();
        assert_eq!(d.len(), 1);
        assert_eq!(d.iter().copied().collect::<Vec<_>>(), vec![1]);
        assert_eq!(s.len(), 2);
    }

    #[test]
    fn split_conserves_and_keeps_both_nonempty() {
        for policy in [SplitPolicy::Bottom, SplitPolicy::Half, SplitPolicy::Top] {
            let mut s = stack_of(vec![vec![1, 2], vec![3], vec![4, 5, 6]]);
            let before = s.len();
            let d = s.split(policy).unwrap();
            assert!(!s.is_empty(), "{policy:?}");
            assert!(!d.is_empty(), "{policy:?}");
            assert_eq!(s.len() + d.len(), before, "{policy:?}");
        }
    }

    #[test]
    fn split_count_takes_exactly_k_from_bottom() {
        let mut s = stack_of(vec![vec![1, 2], vec![3, 4, 5]]);
        let d = s.split_count(3).unwrap();
        assert_eq!(d.len(), 3);
        assert_eq!(d.iter().copied().collect::<Vec<_>>(), vec![1, 2, 3]);
        assert_eq!(s.iter().copied().collect::<Vec<_>>(), vec![4, 5]);
    }

    #[test]
    fn split_count_never_empties_donor() {
        let mut s = stack_of(vec![vec![1, 2, 3]]);
        let d = s.split_count(99).unwrap();
        assert_eq!(d.len(), 2);
        assert_eq!(s.len(), 1);
    }

    #[test]
    fn split_count_zero_or_unsplittable_is_none() {
        let mut s = stack_of(vec![vec![1, 2]]);
        assert!(s.split_count(0).is_none());
        let mut single = SearchStack::from_root(9);
        assert!(single.split_count(1).is_none());
    }

    #[test]
    fn donated_stack_is_searchable() {
        let mut s = stack_of(vec![vec![1, 2], vec![3, 4]]);
        let mut d = s.split(SplitPolicy::Half).unwrap();
        let mut seen = Vec::new();
        while let Some(n) = d.pop_next() {
            seen.push(n);
        }
        assert_eq!(seen, vec![3, 1]);
    }
}
