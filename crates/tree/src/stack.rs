//! The per-processor DFS stack of untried alternatives, and work splitting.
//!
//! "Since each processor searches the space in a depth-first manner, the
//! (part of) state space to be searched is efficiently represented by a
//! stack. ... each level of the stack keeps track of untried alternatives.
//! The current unsearched tree space ... can be partitioned into two parts
//! by simply partitioning untried alternatives (on the current stack) into
//! two parts." (Sec. 2)
//!
//! A [`SearchStack`] is a stack of *frames*; frame `k` holds the untried
//! alternatives at stack level `k` (siblings of already-explored nodes).
//! DFS pops the most recently generated alternative (back of the top
//! frame); expanding it pushes its children as a new top frame.
//!
//! **Splitting.** A processor is *busy* (can donate) iff it holds at least
//! two nodes ([`SearchStack::can_split`]); splitting removes some
//! alternatives and forms a new stack for the receiving processor. The
//! default [`SplitPolicy::Bottom`] donates the single alternative nearest
//! the stack bottom — the paper's choice for the 15-puzzle ("every time work
//! is split we transfer the node at the bottom of the stack", Sec. 5), since
//! the shallowest untried alternative subtends the largest expected subtree.
//! [`SplitPolicy::Half`] and [`SplitPolicy::Top`] exist for the ablation
//! benches.

use serde::{Deserialize, Serialize};

use crate::problem::TreeProblem;

/// What a bounded DFS burst ([`SearchStack::expand_burst`]) did: how many
/// cycles it ran, what it found, and how big the stack got.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct Burst {
    /// Expansion cycles executed (`<= budget`; strictly less only if the
    /// stack emptied first).
    pub expanded: u64,
    /// Goal nodes found among the expanded nodes.
    pub goals: u64,
    /// Maximum post-push stack length observed over the burst — the same
    /// per-cycle census quantity a lockstep engine samples, so a
    /// macro-stepping engine reconstructs `peak_stack_nodes` exactly.
    pub peak: usize,
}

impl Burst {
    /// Fold another burst's totals into this one: expansions and goals
    /// add, peaks max. Every component is commutative and associative, so
    /// host-parallel shards can accumulate per-PE bursts locally and merge
    /// shard totals in any order while landing on exactly the numbers a
    /// sequential accumulation over the same bursts would produce.
    pub fn absorb(&mut self, other: Burst) {
        self.expanded += other.expanded;
        self.goals += other.goals;
        self.peak = self.peak.max(other.peak);
    }
}

/// How a donor partitions its untried alternatives (the alpha-splitting
/// mechanism of Sec. 3).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default, Serialize, Deserialize)]
pub enum SplitPolicy {
    /// Donate the alternative nearest the stack bottom (paper default).
    #[default]
    Bottom,
    /// Donate the front half of every frame (Kumar–Rao style half-split;
    /// donates `floor(len/2)` nodes overall, frame structure preserved).
    Half,
    /// Donate the alternative nearest the stack top (deliberately poor —
    /// the donated subtree is tiny; used to show splitting quality matters).
    Top,
}

/// A DFS stack of untried-alternative frames.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct SearchStack<N> {
    /// `frames[k]` = untried alternatives at level `k`; never contains an
    /// empty frame except frame 0 transiently inside method bodies.
    frames: Vec<Vec<N>>,
    /// Total alternatives across frames (the paper's "nodes on its stack").
    len: usize,
    /// Recycled frame vectors: emptied frames land here instead of being
    /// freed, and [`SearchStack::push_frame_from`] reuses their capacity.
    /// In steady state a DFS therefore pushes and pops frames without
    /// touching the allocator. Never observable through the public API.
    /// Capped at [`SPARE_POOL_CAP`]: callers that push owned frames (e.g.
    /// `push_frame(mem::take(..))` walkers) retire one vector per expanded
    /// interior node without ever reusing one, and an uncapped pool turns
    /// that into O(tree) resident memory on billion-node walks.
    spare: Vec<Vec<N>>,
}

/// Upper bound on retained spare frames. Recycling consumes at most one
/// spare per expansion, so a pool deeper than a handful of frames is dead
/// weight; anything past the cap is freed immediately.
const SPARE_POOL_CAP: usize = 32;

impl<N> Default for SearchStack<N> {
    fn default() -> Self {
        Self::new()
    }
}

impl<N> SearchStack<N> {
    /// An empty stack (an idle processor).
    pub fn new() -> Self {
        Self { frames: Vec::new(), len: 0, spare: Vec::new() }
    }

    /// A stack holding a single root alternative.
    pub fn from_root(root: N) -> Self {
        Self { frames: vec![vec![root]], len: 1, spare: Vec::new() }
    }

    /// Total untried alternatives on the stack.
    pub fn len(&self) -> usize {
        self.len
    }

    /// Whether the stack holds no work.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Number of (non-empty) frames — the current DFS depth spread.
    pub fn depth(&self) -> usize {
        self.frames.len()
    }

    /// The paper's *busy* predicate: the stack can be split into two
    /// non-empty parts iff it holds at least two nodes.
    pub fn can_split(&self) -> bool {
        self.len >= 2
    }

    /// Retire an emptied frame into the spare pool, or free it if the pool
    /// is already at [`SPARE_POOL_CAP`].
    fn recycle(&mut self, frame: Vec<N>) {
        if self.spare.len() < SPARE_POOL_CAP {
            self.spare.push(frame);
        }
    }

    /// Pop the next alternative in DFS order (back of the top frame).
    pub fn pop_next(&mut self) -> Option<N> {
        let node = loop {
            let top = self.frames.last_mut()?;
            match top.pop() {
                Some(n) => break n,
                None => {
                    let empty = self.frames.pop().expect("last_mut saw a frame");
                    self.recycle(empty);
                }
            }
        };
        self.len -= 1;
        // Recycle any frames emptied by this pop so depth() stays meaningful
        // and their capacity feeds future `push_frame_from` calls.
        while self.frames.last().is_some_and(Vec::is_empty) {
            let empty = self.frames.pop().expect("just observed");
            self.recycle(empty);
        }
        Some(node)
    }

    /// Push the children of the node just popped as a new top frame.
    /// An empty `children` is a no-op (the popped node was a leaf).
    pub fn push_frame(&mut self, children: Vec<N>) {
        if !children.is_empty() {
            self.len += children.len();
            self.frames.push(children);
        }
    }

    /// Like [`SearchStack::push_frame`], but *moves the contents out of*
    /// `children`, leaving its capacity with the caller for the next
    /// expansion, and backing the new frame with a recycled vector from
    /// this stack's spare pool. The allocation-steady-state entry point for
    /// the engine hot loop: once warm, neither side allocates.
    pub fn push_frame_from(&mut self, children: &mut Vec<N>) {
        if children.is_empty() {
            return;
        }
        self.len += children.len();
        let mut frame = self.spare.pop().unwrap_or_default();
        debug_assert!(frame.is_empty(), "spare pool holds only emptied frames");
        frame.append(children);
        self.frames.push(frame);
    }

    /// Build the new top frame *in place*: `fill` writes the children into
    /// a frame vector recycled from the spare pool (or a fresh one the
    /// first time), which then becomes the top frame. Skips the bounce
    /// through a caller-side child buffer that [`SearchStack::push_frame_from`]
    /// requires, so the engine's expansion step writes each child exactly
    /// once. Returns the number of children pushed; an empty fill leaves
    /// the stack untouched (the frame returns to the pool).
    pub fn push_frame_with(&mut self, fill: impl FnOnce(&mut Vec<N>)) -> usize {
        let mut frame = self.spare.pop().unwrap_or_default();
        debug_assert!(frame.is_empty(), "spare pool holds only emptied frames");
        fill(&mut frame);
        let n = frame.len();
        if n == 0 {
            self.spare.push(frame);
        } else {
            self.len += n;
            self.frames.push(frame);
        }
        n
    }

    /// Merge a donated stack on top of `self`, preserving the donation's
    /// frame structure (its shallowest frame sits immediately above our
    /// current top). DFS will exhaust the merged work before resuming the
    /// work below it — the same place a flattened merge would put it, but
    /// split policies and `depth()` keep seeing the true level boundaries.
    pub fn merge_from(&mut self, donated: SearchStack<N>) {
        self.len += donated.len;
        for frame in donated.frames {
            debug_assert!(!frame.is_empty(), "stacks never store empty frames");
            self.frames.push(frame);
        }
    }

    /// Split off work for an idle processor according to `policy`.
    ///
    /// Returns `None` (and leaves `self` untouched) when the stack is not
    /// splittable. Otherwise both `self` and the returned stack are
    /// non-empty and their lengths sum to the original length.
    pub fn split(&mut self, policy: SplitPolicy) -> Option<SearchStack<N>> {
        if !self.can_split() {
            return None;
        }
        let donated = match policy {
            SplitPolicy::Bottom => {
                // First alternative of the shallowest non-empty frame: the
                // node at the very bottom of the stack.
                let frame = self
                    .frames
                    .iter_mut()
                    .find(|f| !f.is_empty())
                    .expect("len >= 2 implies a non-empty frame");
                let node = frame.remove(0);
                self.len -= 1;
                SearchStack::from_root(node)
            }
            SplitPolicy::Top => {
                // First (i.e. last-to-be-tried) alternative of the deepest
                // frame holding more than one node if possible, else the
                // deepest frame outright — we must not empty the donor.
                let node = {
                    let frame = self
                        .frames
                        .iter_mut()
                        .rev()
                        .find(|f| !f.is_empty())
                        .expect("len >= 2 implies a non-empty frame");
                    if frame.len() > 1 {
                        frame.remove(0)
                    } else {
                        // Single-node top frame: taking it would be fine
                        // (donor still has >= 1 elsewhere), take it.
                        frame.remove(0)
                    }
                };
                self.len -= 1;
                SearchStack::from_root(node)
            }
            SplitPolicy::Half => {
                // Donate the front half of every frame; guarantee at least
                // one node moves (and at least one stays).
                let mut out_frames = Vec::with_capacity(self.frames.len());
                let mut moved = 0usize;
                for frame in &mut self.frames {
                    let take = frame.len() / 2;
                    let donated: Vec<N> = frame.drain(..take).collect();
                    moved += donated.len();
                    if !donated.is_empty() {
                        out_frames.push(donated);
                    }
                }
                if moved == 0 {
                    // Every frame had exactly one node; fall back to the
                    // bottom alternative so the receiver gets something.
                    let frame = self
                        .frames
                        .iter_mut()
                        .find(|f| !f.is_empty())
                        .expect("len >= 2 implies a non-empty frame");
                    out_frames.push(vec![frame.remove(0)]);
                    moved = 1;
                }
                self.len -= moved;
                SearchStack { frames: out_frames, len: moved, spare: Vec::new() }
            }
        };
        // Purge frames emptied by the donation.
        self.frames.retain(|f| !f.is_empty());
        debug_assert!(!self.is_empty(), "split must leave the donor non-empty");
        debug_assert!(!donated.is_empty(), "split must feed the receiver");
        Some(donated)
    }

    /// [`SearchStack::split`] directly into `receiver`: the donated frames
    /// land on top of the receiver's stack (exactly where
    /// [`SearchStack::merge_from`] would put them) but are backed by frame
    /// vectors recycled from the *receiver's* spare pool, and frames the
    /// donation empties return to the *donor's* pool. A warmed-up transfer
    /// therefore touches the allocator not at all, where
    /// `split` + `merge_from` pays two allocations per transfer. Returns
    /// `false` (both stacks untouched) when `self` is not splittable.
    pub fn split_into(&mut self, policy: SplitPolicy, receiver: &mut SearchStack<N>) -> bool {
        if !self.can_split() {
            return false;
        }
        match policy {
            SplitPolicy::Bottom | SplitPolicy::Top => {
                let idx = match policy {
                    SplitPolicy::Bottom => self
                        .frames
                        .iter()
                        .position(|f| !f.is_empty())
                        .expect("len >= 2 implies a non-empty frame"),
                    _ => self
                        .frames
                        .iter()
                        .rposition(|f| !f.is_empty())
                        .expect("len >= 2 implies a non-empty frame"),
                };
                let node = self.frames[idx].remove(0);
                self.len -= 1;
                if self.frames[idx].is_empty() {
                    let empty = self.frames.remove(idx);
                    self.recycle(empty);
                }
                let mut frame = receiver.spare.pop().unwrap_or_default();
                frame.push(node);
                receiver.frames.push(frame);
                receiver.len += 1;
            }
            SplitPolicy::Half => {
                let mut moved = 0usize;
                for frame in &mut self.frames {
                    let take = frame.len() / 2;
                    if take == 0 {
                        continue; // singleton (or empty) frame: nothing moves
                    }
                    let mut out = receiver.spare.pop().unwrap_or_default();
                    out.extend(frame.drain(..take));
                    moved += take;
                    receiver.frames.push(out);
                }
                if moved == 0 {
                    // Every frame held exactly one node; fall back to the
                    // bottom alternative so the receiver gets something.
                    let idx = self
                        .frames
                        .iter()
                        .position(|f| !f.is_empty())
                        .expect("len >= 2 implies a non-empty frame");
                    let node = self.frames[idx].remove(0);
                    if self.frames[idx].is_empty() {
                        let empty = self.frames.remove(idx);
                        self.recycle(empty);
                    }
                    let mut frame = receiver.spare.pop().unwrap_or_default();
                    frame.push(node);
                    receiver.frames.push(frame);
                    moved = 1;
                }
                self.len -= moved;
                receiver.len += moved;
            }
        }
        debug_assert!(!self.is_empty(), "split must leave the donor non-empty");
        debug_assert!(!receiver.is_empty(), "split must feed the receiver");
        true
    }

    /// Donate up to `k` alternatives from the bottom of the stack,
    /// preserving frame structure, always leaving the donor at least one
    /// node. Used by node-count-equalizing redistribution (the FEGS scheme
    /// of Sec. 8). Returns `None` if nothing can be donated.
    pub fn split_count(&mut self, k: usize) -> Option<SearchStack<N>> {
        if !self.can_split() || k == 0 {
            return None;
        }
        let take_total = k.min(self.len - 1);
        let mut out_frames = Vec::new();
        let mut moved = 0usize;
        for frame in &mut self.frames {
            if moved == take_total {
                break;
            }
            let take = (take_total - moved).min(frame.len());
            // Never empty the *last* remaining nodes: cap enforced by
            // take_total <= len - 1 overall.
            let donated: Vec<N> = frame.drain(..take).collect();
            moved += donated.len();
            if !donated.is_empty() {
                out_frames.push(donated);
            }
        }
        self.len -= moved;
        self.frames.retain(|f| !f.is_empty());
        debug_assert!(!self.is_empty());
        Some(SearchStack { frames: out_frames, len: moved, spare: Vec::new() })
    }

    /// A sound lower bound on the number of expansion cycles before this
    /// processor can go idle: each cycle pops exactly one alternative and
    /// pushes zero or more, so a stack holding `s` nodes survives at least
    /// `s` cycles. This is the per-PE fact the engine's event-horizon
    /// computation is built on (`A(t)` cannot drop below any threshold
    /// sooner than the matching order statistic of stack sizes).
    pub fn cycles_to_empty_lower_bound(&self) -> u64 {
        self.len as u64
    }

    /// Run this processor's DFS for up to `budget` consecutive expansion
    /// cycles (or until the stack empties): pop, goal-test, expand, push —
    /// the per-PE inner loop of a macro-stepping engine. One hot stack
    /// streams through cache instead of being revisited once per lockstep
    /// round-robin sweep.
    ///
    /// Each iteration performs exactly the work one lockstep cycle would:
    /// the returned [`Burst`] lets the caller reconstruct the ensemble
    /// census afterwards (`expanded` is this PE's empty-time if it died
    /// before the budget ran out).
    pub fn expand_burst<P: TreeProblem<Node = N>>(&mut self, problem: &P, budget: u64) -> Burst {
        let mut burst = Burst::default();
        while burst.expanded < budget {
            let Some(node) = self.pop_next() else { break };
            if problem.is_goal(&node) {
                burst.goals += 1;
            }
            self.push_frame_with(|frame| problem.expand(&node, frame));
            burst.expanded += 1;
            burst.peak = burst.peak.max(self.len);
        }
        burst
    }

    /// Iterate the alternatives bottom-to-top (test helper / diagnostics).
    pub fn iter(&self) -> impl Iterator<Item = &N> {
        self.frames.iter().flatten()
    }

    /// The frame list, bottom to top — the stack's complete observable
    /// state (the spare pool is allocator warm-up only). This is what the
    /// checkpoint codec serializes.
    pub fn frames(&self) -> &[Vec<N>] {
        &self.frames
    }

    /// Rebuild a stack from an explicit frame list (checkpoint resume).
    /// `len` is recomputed; the spare pool starts cold, which is
    /// unobservable through the public API.
    ///
    /// # Panics
    /// Panics if any frame is empty — stacks never store empty frames, and
    /// the codec rejects such input before it gets here.
    pub fn from_frames(frames: Vec<Vec<N>>) -> Self {
        assert!(frames.iter().all(|f| !f.is_empty()), "stacks never store empty frames");
        let len = frames.iter().map(Vec::len).sum();
        Self { frames, len, spare: Vec::new() }
    }

    /// Consume the stack, yielding its frame list bottom-to-top — the
    /// inverse of [`SearchStack::from_frames`] without requiring `N: Clone`.
    /// The spare pool (allocator warm-up only) is dropped.
    pub fn into_frames(self) -> Vec<Vec<N>> {
        self.frames
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn stack_of(frames: Vec<Vec<u32>>) -> SearchStack<u32> {
        let len = frames.iter().map(Vec::len).sum();
        SearchStack { frames, len, spare: Vec::new() }
    }

    #[test]
    fn empty_stack_is_idle() {
        let mut s: SearchStack<u32> = SearchStack::new();
        assert!(s.is_empty());
        assert!(!s.can_split());
        assert_eq!(s.pop_next(), None);
        assert!(s.split(SplitPolicy::Bottom).is_none());
    }

    #[test]
    fn single_node_is_work_but_not_busy() {
        let mut s = SearchStack::from_root(7);
        assert!(!s.is_empty());
        assert!(!s.can_split(), "paper: busy requires >= 2 nodes");
        assert!(s.split(SplitPolicy::Bottom).is_none());
        assert_eq!(s.pop_next(), Some(7));
        assert!(s.is_empty());
    }

    #[test]
    fn dfs_order_pops_most_recent_child_first() {
        let mut s = SearchStack::from_root(0);
        assert_eq!(s.pop_next(), Some(0));
        s.push_frame(vec![1, 2, 3]); // generated order 1,2,3
        assert_eq!(s.pop_next(), Some(3), "explore the last-generated child first");
        s.push_frame(vec![31, 32]);
        assert_eq!(s.pop_next(), Some(32));
        assert_eq!(s.pop_next(), Some(31));
        assert_eq!(s.pop_next(), Some(2), "backtrack to level 1");
        assert_eq!(s.pop_next(), Some(1));
        assert_eq!(s.pop_next(), None);
    }

    #[test]
    fn empty_frame_push_is_noop() {
        let mut s = SearchStack::from_root(1);
        s.push_frame(vec![]);
        assert_eq!(s.len(), 1);
        assert_eq!(s.depth(), 1);
    }

    #[test]
    fn bottom_split_takes_shallowest_first_alternative() {
        let mut s = stack_of(vec![vec![10, 11], vec![20], vec![30, 31]]);
        let d = s.split(SplitPolicy::Bottom).unwrap();
        assert_eq!(d.iter().copied().collect::<Vec<_>>(), vec![10]);
        assert_eq!(s.len(), 4);
        assert_eq!(s.iter().copied().collect::<Vec<_>>(), vec![11, 20, 30, 31]);
    }

    #[test]
    fn bottom_split_skips_emptied_bottom_frames() {
        let mut s = stack_of(vec![vec![10], vec![20, 21]]);
        let d = s.split(SplitPolicy::Bottom).unwrap();
        assert_eq!(d.iter().copied().collect::<Vec<_>>(), vec![10]);
        assert_eq!(s.depth(), 1, "emptied bottom frame is purged");
        let d2 = s.split(SplitPolicy::Bottom).unwrap();
        assert_eq!(d2.iter().copied().collect::<Vec<_>>(), vec![20]);
        assert!(!s.can_split());
    }

    #[test]
    fn top_split_takes_deepest_alternative() {
        let mut s = stack_of(vec![vec![10, 11], vec![30, 31]]);
        let d = s.split(SplitPolicy::Top).unwrap();
        assert_eq!(d.iter().copied().collect::<Vec<_>>(), vec![30]);
        assert_eq!(s.iter().copied().collect::<Vec<_>>(), vec![10, 11, 31]);
    }

    #[test]
    fn half_split_moves_front_half_of_each_frame() {
        let mut s = stack_of(vec![vec![1, 2, 3, 4], vec![5, 6, 7]]);
        let d = s.split(SplitPolicy::Half).unwrap();
        assert_eq!(d.iter().copied().collect::<Vec<_>>(), vec![1, 2, 5]);
        assert_eq!(s.iter().copied().collect::<Vec<_>>(), vec![3, 4, 6, 7]);
        assert_eq!(d.len() + s.len(), 7);
    }

    #[test]
    fn half_split_of_singleton_frames_falls_back_to_bottom() {
        let mut s = stack_of(vec![vec![1], vec![2], vec![3]]);
        let d = s.split(SplitPolicy::Half).unwrap();
        assert_eq!(d.len(), 1);
        assert_eq!(d.iter().copied().collect::<Vec<_>>(), vec![1]);
        assert_eq!(s.len(), 2);
    }

    #[test]
    fn split_conserves_and_keeps_both_nonempty() {
        for policy in [SplitPolicy::Bottom, SplitPolicy::Half, SplitPolicy::Top] {
            let mut s = stack_of(vec![vec![1, 2], vec![3], vec![4, 5, 6]]);
            let before = s.len();
            let d = s.split(policy).unwrap();
            assert!(!s.is_empty(), "{policy:?}");
            assert!(!d.is_empty(), "{policy:?}");
            assert_eq!(s.len() + d.len(), before, "{policy:?}");
        }
    }

    #[test]
    fn split_count_takes_exactly_k_from_bottom() {
        let mut s = stack_of(vec![vec![1, 2], vec![3, 4, 5]]);
        let d = s.split_count(3).unwrap();
        assert_eq!(d.len(), 3);
        assert_eq!(d.iter().copied().collect::<Vec<_>>(), vec![1, 2, 3]);
        assert_eq!(s.iter().copied().collect::<Vec<_>>(), vec![4, 5]);
    }

    #[test]
    fn split_count_never_empties_donor() {
        let mut s = stack_of(vec![vec![1, 2, 3]]);
        let d = s.split_count(99).unwrap();
        assert_eq!(d.len(), 2);
        assert_eq!(s.len(), 1);
    }

    #[test]
    fn split_count_zero_or_unsplittable_is_none() {
        let mut s = stack_of(vec![vec![1, 2]]);
        assert!(s.split_count(0).is_none());
        let mut single = SearchStack::from_root(9);
        assert!(single.split_count(1).is_none());
    }

    #[test]
    fn push_frame_from_matches_push_frame_semantics() {
        let mut a = SearchStack::from_root(0);
        let mut b = SearchStack::from_root(0);
        a.pop_next();
        b.pop_next();
        let mut buf = vec![1, 2, 3];
        a.push_frame_from(&mut buf);
        b.push_frame(vec![1, 2, 3]);
        assert!(buf.is_empty(), "contents moved out, capacity kept");
        assert!(buf.capacity() >= 3, "caller keeps the buffer's capacity");
        let (mut xa, mut xb) = (Vec::new(), Vec::new());
        while let Some(n) = a.pop_next() {
            xa.push(n);
        }
        while let Some(n) = b.pop_next() {
            xb.push(n);
        }
        assert_eq!(xa, xb);
    }

    #[test]
    fn push_frame_from_empty_is_noop() {
        let mut s = SearchStack::from_root(1);
        let mut buf: Vec<u32> = Vec::new();
        s.push_frame_from(&mut buf);
        assert_eq!(s.len(), 1);
        assert_eq!(s.depth(), 1);
    }

    #[test]
    fn frame_pool_recycles_capacity() {
        let mut s = SearchStack::from_root(0);
        s.pop_next();
        let mut buf = Vec::with_capacity(8);
        buf.extend([1u32, 2, 3]);
        s.push_frame_from(&mut buf);
        // Drain the frame: its (capacity >= 3) vector moves to the pool.
        while s.pop_next().is_some() {}
        assert!(s.is_empty());
        buf.extend([4, 5]);
        s.push_frame_from(&mut buf);
        // The recycled frame already had room for 2 nodes, so the stack
        // performed no allocation; observable via its existing capacity.
        assert_eq!(s.len(), 2);
        assert!(s.frames[0].capacity() >= 2);
        assert_eq!(s.pop_next(), Some(5));
        assert_eq!(s.pop_next(), Some(4));
    }

    #[test]
    fn merge_from_preserves_frame_structure() {
        let mut receiver = stack_of(vec![vec![1, 2]]);
        let donated = stack_of(vec![vec![10], vec![20, 21]]);
        receiver.merge_from(donated);
        assert_eq!(receiver.len(), 5);
        assert_eq!(receiver.depth(), 3, "donated frames stay distinct");
        assert_eq!(receiver.iter().copied().collect::<Vec<_>>(), vec![1, 2, 10, 20, 21]);
        // DFS exhausts the merged work first, deepest donated frame first.
        assert_eq!(receiver.pop_next(), Some(21));
        assert_eq!(receiver.pop_next(), Some(20));
        assert_eq!(receiver.pop_next(), Some(10));
        assert_eq!(receiver.pop_next(), Some(2));
    }

    #[test]
    fn merge_from_into_empty_equals_donation() {
        let mut receiver: SearchStack<u32> = SearchStack::new();
        receiver.merge_from(stack_of(vec![vec![7, 8], vec![9]]));
        assert_eq!(receiver.len(), 3);
        assert_eq!(receiver.depth(), 2);
    }

    #[test]
    fn spare_pool_stays_capped_under_owned_frame_churn() {
        // A walker that pushes owned frames (`push_frame`, never the
        // recycling `push_frame_from`) retires one vector per expansion;
        // the pool must cap out instead of growing O(walk length).
        let mut s: SearchStack<u32> = SearchStack::new();
        for round in 0..10 * SPARE_POOL_CAP as u32 {
            s.push_frame(vec![round]);
            assert_eq!(s.pop_next(), Some(round));
        }
        assert!(s.spare.len() <= SPARE_POOL_CAP, "spare grew to {}", s.spare.len());
    }

    #[test]
    fn push_frame_with_matches_push_frame() {
        let mut a = SearchStack::from_root(0);
        let mut b = SearchStack::from_root(0);
        a.pop_next();
        b.pop_next();
        let n = a.push_frame_with(|f| f.extend([1, 2, 3]));
        assert_eq!(n, 3);
        b.push_frame(vec![1, 2, 3]);
        assert_eq!(a.iter().copied().collect::<Vec<_>>(), b.iter().copied().collect::<Vec<_>>());
        assert_eq!(a.depth(), b.depth());
    }

    #[test]
    fn push_frame_with_empty_fill_is_noop_and_recycles() {
        let mut s = SearchStack::from_root(1);
        let n = s.push_frame_with(|_| {});
        assert_eq!(n, 0);
        assert_eq!(s.len(), 1);
        assert_eq!(s.depth(), 1);
        // The untouched frame went back to the pool, not to the allocator.
        assert_eq!(s.spare.len(), 1);
    }

    #[test]
    fn split_into_matches_split_plus_merge_for_all_policies() {
        // Same donor shape through both paths must leave identical donor and
        // receiver contents (including frame boundaries), for receivers both
        // empty and already holding work.
        let shapes: [Vec<Vec<u32>>; 4] = [
            vec![vec![10, 11], vec![20], vec![30, 31]],
            vec![vec![1], vec![2], vec![3]],
            vec![vec![1, 2, 3, 4], vec![5, 6, 7]],
            vec![vec![10], vec![20, 21]],
        ];
        for policy in [SplitPolicy::Bottom, SplitPolicy::Half, SplitPolicy::Top] {
            for shape in &shapes {
                for receiver_shape in [vec![], vec![vec![90u32, 91]]] {
                    let mut donor_a = stack_of(shape.clone());
                    let mut recv_a = stack_of(receiver_shape.clone());
                    let mut donor_b = stack_of(shape.clone());
                    let mut recv_b = stack_of(receiver_shape.clone());

                    let donated = donor_a.split(policy).unwrap();
                    recv_a.merge_from(donated);
                    assert!(donor_b.split_into(policy, &mut recv_b), "{policy:?}");

                    let frames = |s: &SearchStack<u32>| s.frames.clone();
                    assert_eq!(frames(&donor_a), frames(&donor_b), "{policy:?} donor");
                    assert_eq!(frames(&recv_a), frames(&recv_b), "{policy:?} receiver");
                    assert_eq!(donor_a.len(), donor_b.len());
                    assert_eq!(recv_a.len(), recv_b.len());
                }
            }
        }
    }

    #[test]
    fn split_into_unsplittable_is_noop() {
        let mut donor = SearchStack::from_root(5);
        let mut recv: SearchStack<u32> = SearchStack::new();
        assert!(!donor.split_into(SplitPolicy::Bottom, &mut recv));
        assert_eq!(donor.len(), 1);
        assert!(recv.is_empty());
    }

    #[test]
    fn split_into_recycles_receiver_spare_frames() {
        let mut donor = stack_of(vec![vec![1, 2, 3]]);
        let mut recv = SearchStack::from_root(9);
        recv.pop_next(); // root's frame lands in recv's spare pool
        assert_eq!(recv.spare.len(), 1);
        assert!(donor.split_into(SplitPolicy::Bottom, &mut recv));
        assert_eq!(recv.spare.len(), 0, "the pooled frame backs the donation");
        assert_eq!(recv.iter().copied().collect::<Vec<_>>(), vec![1]);
    }

    /// Tiny deterministic problem for burst tests: node `n > 0` has two
    /// children `n - 1`; `n == 0` is a goal leaf.
    struct Halving;
    impl TreeProblem for Halving {
        type Node = u32;
        fn root(&self) -> u32 {
            3
        }
        fn expand(&self, n: &u32, out: &mut Vec<u32>) {
            if *n > 0 {
                out.push(n - 1);
                out.push(n - 1);
            }
        }
        fn is_goal(&self, n: &u32) -> bool {
            *n == 0
        }
    }

    #[test]
    fn expand_burst_matches_manual_lockstep_cycles() {
        for budget in [1u64, 2, 3, 5, 100] {
            let mut fast = SearchStack::from_root(Halving.root());
            let mut slow = SearchStack::from_root(Halving.root());
            let burst = fast.expand_burst(&Halving, budget);
            let (mut expanded, mut goals, mut peak) = (0u64, 0u64, 0usize);
            while expanded < budget {
                let Some(node) = slow.pop_next() else { break };
                if Halving.is_goal(&node) {
                    goals += 1;
                }
                slow.push_frame_with(|f| Halving.expand(&node, f));
                expanded += 1;
                peak = peak.max(slow.len());
            }
            assert_eq!(burst, Burst { expanded, goals, peak }, "budget {budget}");
            assert_eq!(
                fast.iter().copied().collect::<Vec<_>>(),
                slow.iter().copied().collect::<Vec<_>>()
            );
        }
    }

    #[test]
    fn expand_burst_stops_early_only_when_empty() {
        let mut s = SearchStack::from_root(Halving.root());
        let burst = s.expand_burst(&Halving, u64::MAX);
        // 2^4 - 1 = 15 nodes in the full tree rooted at 3.
        assert_eq!(burst.expanded, 15);
        assert_eq!(burst.goals, 8, "the eight 0-leaves");
        assert!(s.is_empty());
        let burst2 = s.expand_burst(&Halving, 5);
        assert_eq!(burst2, Burst::default(), "empty stack bursts zero cycles");
    }

    #[test]
    fn absorb_is_order_independent() {
        let bursts = [
            Burst { expanded: 5, goals: 1, peak: 9 },
            Burst { expanded: 0, goals: 0, peak: 0 },
            Burst { expanded: 12, goals: 3, peak: 4 },
            Burst { expanded: 7, goals: 0, peak: 11 },
        ];
        let mut fwd = Burst::default();
        for b in bursts {
            fwd.absorb(b);
        }
        let mut rev = Burst::default();
        for b in bursts.into_iter().rev() {
            rev.absorb(b);
        }
        assert_eq!(fwd, rev);
        assert_eq!(fwd, Burst { expanded: 24, goals: 4, peak: 11 });
    }

    #[test]
    fn cycles_to_empty_bound_is_the_node_count() {
        let s = stack_of(vec![vec![1, 2], vec![3]]);
        assert_eq!(s.cycles_to_empty_lower_bound(), 3);
        assert_eq!(SearchStack::<u32>::new().cycles_to_empty_lower_bound(), 0);
    }

    #[test]
    fn donated_stack_is_searchable() {
        let mut s = stack_of(vec![vec![1, 2], vec![3, 4]]);
        let mut d = s.split(SplitPolicy::Half).unwrap();
        let mut seen = Vec::new();
        while let Some(n) = d.pop_next() {
            seen.push(n);
        }
        assert_eq!(seen, vec![3, 1]);
    }
}
