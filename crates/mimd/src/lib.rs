//! An asynchronous (MIMD) work-stealing baseline.
//!
//! The paper's closing claim (Sec. 9) is that its SIMD schemes scale "no
//! worse than that of the best load balancing schemes on MIMD
//! architectures" — the receiver-initiated schemes analyzed by Kumar, Grama
//! & Rao. This crate provides those baselines on a cycle-quantized
//! *asynchronous* simulator: unlike the SIMD machine, each processor acts
//! independently every cycle — an idle processor polls a donor of its own
//! choosing while the others keep expanding; there are no global phases and
//! no lockstep idling.
//!
//! Steal policies ([`StealPolicy`]):
//!
//! * **GlobalRoundRobin** — one shared counter names the next poll target
//!   (best V(P), but the counter is a contention point; we charge an
//!   access-serialization penalty to model it);
//! * **AsyncRoundRobin** — a private per-processor counter;
//! * **RandomPolling** — uniformly random targets;
//! * **NeighborPolling** — poll ring neighbors only (work diffusion).
//!
//! A poll costs a round trip of [`MimdConfig::latency_cycles`]; a donor
//! answers with an alpha-split of its stack ([`SplitPolicy`]) or a reject.

use rand::prelude::*;
use rand_chacha::ChaCha8Rng;
use serde::{Deserialize, Serialize};
use uts_machine::{CostModel, SimTime};
use uts_tree::{SearchStack, SplitPolicy, TreeProblem};

/// Whom an idle processor polls for work.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum StealPolicy {
    /// Targets from one global counter (GRR).
    GlobalRoundRobin,
    /// Targets from a per-processor counter (ARR).
    AsyncRoundRobin,
    /// Uniformly random targets (RP).
    RandomPolling,
    /// Ring neighbors, alternating sides (NN).
    NeighborPolling,
}

impl StealPolicy {
    /// Short display name.
    pub fn name(&self) -> &'static str {
        match self {
            StealPolicy::GlobalRoundRobin => "GRR",
            StealPolicy::AsyncRoundRobin => "ARR",
            StealPolicy::RandomPolling => "RP",
            StealPolicy::NeighborPolling => "NN",
        }
    }
}

/// MIMD run configuration.
#[derive(Debug, Clone)]
pub struct MimdConfig {
    /// Number of processors.
    pub p: usize,
    /// Steal policy.
    pub policy: StealPolicy,
    /// Timing model (`u_calc` per expansion; a poll round trip costs
    /// `latency_cycles * u_calc`).
    pub cost: CostModel,
    /// Poll round-trip latency, in expansion cycles.
    pub latency_cycles: u32,
    /// Split policy donors use.
    pub split: SplitPolicy,
    /// RNG seed (random polling).
    pub seed: u64,
    /// Safety valve for tests.
    pub max_cycles: Option<u64>,
}

impl MimdConfig {
    /// Defaults: latency 1 cycle, bottom split, seed 0.
    pub fn new(p: usize, policy: StealPolicy, cost: CostModel) -> Self {
        Self {
            p,
            policy,
            cost,
            latency_cycles: 1,
            split: SplitPolicy::Bottom,
            seed: 0,
            max_cycles: None,
        }
    }
}

/// Outcome of a MIMD run, in the same vocabulary as the SIMD reports.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct MimdReport {
    /// Processors.
    pub p: usize,
    /// Nodes expanded (`W` when anomaly-free).
    pub nodes_expanded: u64,
    /// Wall cycles until completion.
    pub cycles: u64,
    /// Work requests issued.
    pub requests: u64,
    /// Successful work transfers.
    pub transfers: u64,
    /// PE-cycles spent idle (waiting on polls).
    pub idle_pe_cycles: u64,
    /// Parallel time (virtual).
    pub t_par: SimTime,
    /// Efficiency `W·U_calc / (P·T_par)`.
    pub efficiency: f64,
    /// Goals found.
    pub goals: u64,
    /// True if the cycle cap fired.
    pub truncated: bool,
}

/// Per-processor asynchronous state.
enum PeState {
    Working,
    /// Waiting for a poll round trip to complete at `ready_cycle`,
    /// targeting `target`.
    Polling {
        target: usize,
        ready_cycle: u64,
    },
}

/// Run `problem` under asynchronous work stealing.
pub fn run_mimd<P: TreeProblem>(problem: &P, cfg: &MimdConfig) -> MimdReport {
    assert!(cfg.p > 0);
    let p = cfg.p;
    let mut stacks: Vec<SearchStack<P::Node>> = (0..p).map(|_| SearchStack::new()).collect();
    stacks[0] = SearchStack::from_root(problem.root());
    let mut states: Vec<PeState> = (0..p).map(|_| PeState::Working).collect();
    let mut rng = ChaCha8Rng::seed_from_u64(cfg.seed);
    let mut grr_counter = 0usize;
    let mut arr_counters: Vec<usize> = (0..p).map(|i| (i + 1) % p).collect();
    let mut nn_side: Vec<bool> = vec![false; p];

    let mut cycles = 0u64;
    let mut nodes = 0u64;
    let mut goals = 0u64;
    let mut requests = 0u64;
    let mut transfers = 0u64;
    let mut idle_pe_cycles = 0u64;
    let mut truncated = false;
    let mut children: Vec<P::Node> = Vec::new();

    loop {
        if stacks.iter().all(|s| s.is_empty()) {
            break;
        }
        if cfg.max_cycles.is_some_and(|m| cycles >= m) {
            truncated = true;
            break;
        }
        cycles += 1;
        for i in 0..p {
            if !stacks[i].is_empty() {
                // Expand one node this cycle.
                states[i] = PeState::Working;
                let node = stacks[i].pop_next().expect("non-empty");
                nodes += 1;
                if problem.is_goal(&node) {
                    goals += 1;
                }
                children.clear();
                problem.expand(&node, &mut children);
                stacks[i].push_frame(std::mem::take(&mut children));
                continue;
            }
            // Idle: poll for work.
            idle_pe_cycles += 1;
            if p == 1 {
                continue;
            }
            match states[i] {
                PeState::Working => {
                    // Issue a fresh request.
                    let target = next_target(
                        cfg.policy,
                        i,
                        p,
                        &mut grr_counter,
                        &mut arr_counters,
                        &mut nn_side,
                        &mut rng,
                    );
                    requests += 1;
                    states[i] = PeState::Polling {
                        target,
                        ready_cycle: cycles + cfg.latency_cycles as u64,
                    };
                }
                PeState::Polling { target, ready_cycle } => {
                    if cycles >= ready_cycle {
                        // Round trip complete: the donor answers now.
                        if stacks[target].can_split() {
                            if let Some(chunk) = stacks[target].split(cfg.split) {
                                stacks[i] = chunk;
                                transfers += 1;
                                states[i] = PeState::Working;
                                continue;
                            }
                        }
                        // Reject: immediately re-poll a new target.
                        let target = next_target(
                            cfg.policy,
                            i,
                            p,
                            &mut grr_counter,
                            &mut arr_counters,
                            &mut nn_side,
                            &mut rng,
                        );
                        requests += 1;
                        states[i] = PeState::Polling {
                            target,
                            ready_cycle: cycles + cfg.latency_cycles as u64,
                        };
                    }
                }
            }
        }
    }

    let t_par = cycles * cfg.cost.u_calc;
    let t_calc = nodes as f64 * cfg.cost.u_calc as f64;
    let efficiency = if cycles == 0 { 1.0 } else { t_calc / (p as f64 * t_par as f64) };
    MimdReport {
        p,
        nodes_expanded: nodes,
        cycles,
        requests,
        transfers,
        idle_pe_cycles,
        t_par,
        efficiency,
        goals,
        truncated,
    }
}

#[allow(clippy::too_many_arguments)]
fn next_target(
    policy: StealPolicy,
    me: usize,
    p: usize,
    grr: &mut usize,
    arr: &mut [usize],
    nn_side: &mut [bool],
    rng: &mut ChaCha8Rng,
) -> usize {
    let avoid_self = |t: usize| if t == me { (t + 1) % p } else { t };
    match policy {
        StealPolicy::GlobalRoundRobin => {
            let t = *grr % p;
            *grr = (*grr + 1) % p;
            avoid_self(t)
        }
        StealPolicy::AsyncRoundRobin => {
            let t = arr[me] % p;
            arr[me] = (arr[me] + 1) % p;
            avoid_self(t)
        }
        StealPolicy::RandomPolling => {
            let t = rng.random_range(0..p);
            avoid_self(t)
        }
        StealPolicy::NeighborPolling => {
            nn_side[me] = !nn_side[me];
            if nn_side[me] {
                (me + 1) % p
            } else {
                (me + p - 1) % p
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use uts_synth::GeometricTree;
    use uts_tree::serial_dfs;

    fn geo(seed: u64) -> GeometricTree {
        GeometricTree { seed, b_max: 8, depth_limit: 6 }
    }

    fn policies() -> [StealPolicy; 4] {
        [
            StealPolicy::GlobalRoundRobin,
            StealPolicy::AsyncRoundRobin,
            StealPolicy::RandomPolling,
            StealPolicy::NeighborPolling,
        ]
    }

    #[test]
    fn all_policies_expand_serial_node_count() {
        let tree = geo(2);
        let w = serial_dfs(&tree).expanded;
        for policy in policies() {
            for p in [1usize, 2, 16, 64] {
                let out = run_mimd(&tree, &MimdConfig::new(p, policy, CostModel::cm2()));
                assert_eq!(out.nodes_expanded, w, "{} P={p}", policy.name());
                assert!(!out.truncated);
            }
        }
    }

    #[test]
    fn all_policies_find_serial_goals() {
        let tree = geo(3);
        let g = serial_dfs(&tree).goals;
        for policy in policies() {
            let out = run_mimd(&tree, &MimdConfig::new(8, policy, CostModel::cm2()));
            assert_eq!(out.goals, g, "{}", policy.name());
        }
    }

    #[test]
    fn single_processor_is_serial_time() {
        let tree = geo(4);
        let w = serial_dfs(&tree).expanded;
        let out =
            run_mimd(&tree, &MimdConfig::new(1, StealPolicy::RandomPolling, CostModel::cm2()));
        assert_eq!(out.cycles, w);
        assert!((out.efficiency - 1.0).abs() < 1e-12);
        assert_eq!(out.requests, 0);
    }

    #[test]
    fn efficiency_decreases_with_p_for_fixed_w() {
        let tree = geo(5);
        for policy in policies() {
            let mut last = f64::INFINITY;
            for p in [2usize, 8, 32, 128] {
                let out = run_mimd(&tree, &MimdConfig::new(p, policy, CostModel::cm2()));
                assert!(out.efficiency <= last + 1e-9, "{} P={p}", policy.name());
                last = out.efficiency;
            }
        }
    }

    #[test]
    fn random_polling_is_seed_deterministic() {
        let tree = geo(6);
        let mut cfg = MimdConfig::new(16, StealPolicy::RandomPolling, CostModel::cm2());
        cfg.seed = 9;
        let a = run_mimd(&tree, &cfg);
        let b = run_mimd(&tree, &cfg);
        assert_eq!(a.cycles, b.cycles);
        assert_eq!(a.requests, b.requests);
    }

    #[test]
    fn transfers_bounded_by_requests() {
        let tree = geo(2);
        for policy in policies() {
            let out = run_mimd(&tree, &MimdConfig::new(32, policy, CostModel::cm2()));
            assert!(out.transfers <= out.requests, "{}", policy.name());
            assert!(out.transfers > 0, "{} must share work", policy.name());
        }
    }

    #[test]
    fn higher_latency_hurts_efficiency() {
        let tree = geo(8);
        let mut cfg = MimdConfig::new(64, StealPolicy::RandomPolling, CostModel::cm2());
        cfg.latency_cycles = 1;
        let fast = run_mimd(&tree, &cfg);
        cfg.latency_cycles = 16;
        let slow = run_mimd(&tree, &cfg);
        assert!(slow.efficiency <= fast.efficiency + 1e-9);
    }

    #[test]
    fn max_cycles_truncates() {
        let tree = geo(9);
        let mut cfg = MimdConfig::new(4, StealPolicy::GlobalRoundRobin, CostModel::cm2());
        cfg.max_cycles = Some(2);
        let out = run_mimd(&tree, &cfg);
        assert!(out.truncated);
        assert_eq!(out.cycles, 2);
    }
}
