//! Deterministic checkpoint/resume snapshots for the lockstep engines.
//!
//! Long lockstep runs (the paper's experiments are 128-processor-*hour*
//! CM-2 sweeps) must survive preemption: this crate defines the versioned
//! binary snapshot a run writes at macro-step boundaries and reloads on
//! resume. The contract is exact: a run resumed from a snapshot produces
//! an `Outcome` **bit-identical** to the uninterrupted run — every
//! counter, trace, donation vector and ledger phase — which the
//! kill→resume differential suite enforces across all four engines.
//!
//! Three layers live here, none of which depend on the engine:
//!
//! * the **container** format ([`EngineSnapshot::encode`] /
//!   [`EngineSnapshot::decode`]): magic, format version, config
//!   fingerprint, length-prefixed payload, FNV-1a checksum — hand-rolled
//!   like `report_json.rs`, no serialization dependency, every multi-byte
//!   value little-endian;
//! * the **payload** ([`EngineSnapshot`]): complete engine state at a
//!   macro-step boundary — every PE's [`SearchStack`], the trigger/init
//!   accumulators, the GP pointer, the machine clock and [`Metrics`]
//!   (active trace included), the in-progress ledger, and the horizon log;
//! * the **harness** types ([`CheckpointPolicy`], [`FaultPlan`]): when to
//!   snapshot, and — for tests — when to kill.
//!
//! Snapshots are **engine-invariant**: all four engines checkpoint at the
//! same macro-step boundaries (the single-cycle engines replay the macro
//! engine's `compute_horizon` schedule, exactly as they do for the
//! ledger), and everything captured is a pure function of the lockstep
//! schedule. A snapshot taken by one engine resumes under any other.

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;

use uts_machine::{
    ActiveTrace, CostModel, LbCostBreakdown, LbPhaseRecord, Metrics, PhaseEvent, PhaseStats,
    SimTime, SimdMachine, TriggerFiring, TriggerKind,
};
use uts_tree::codec::{put_bool, put_u32, put_u64, put_usize};
use uts_tree::{CkptNode, CodecError, Reader, SearchStack, StackArena};

pub mod spill;
pub mod wire;

/// Leading bytes of every snapshot file.
pub const MAGIC: [u8; 8] = *b"UTSCKPT\0";

/// Current snapshot format version. Bump on any layout change; decoders
/// reject other versions rather than misread them.
pub const FORMAT_VERSION: u32 = 1;

/// Why a snapshot failed to load. Each corruption mode gets its own
/// variant so callers (and the round-trip property suite) can tell a
/// wrong file from a stale file from a damaged file from a file written
/// under a different run configuration.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CkptError {
    /// The buffer does not start with [`MAGIC`]: not a snapshot at all.
    BadMagic,
    /// A snapshot, but written by an incompatible format version.
    UnsupportedVersion(u32),
    /// Header or payload bytes fail the checksum: damaged in storage.
    ChecksumMismatch,
    /// An intact snapshot of a *different* run configuration.
    ConfigMismatch {
        /// Fingerprint of the configuration the caller is resuming under.
        expected: u64,
        /// Fingerprint recorded in the snapshot.
        found: u64,
    },
    /// The buffer ended before the declared structure did.
    Truncated,
    /// Bytes decoded to a structurally impossible value (names the
    /// violated invariant). Unreachable through storage damage — the
    /// checksum catches that first — so it indicates an encoder bug.
    Malformed(&'static str),
}

impl std::fmt::Display for CkptError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            CkptError::BadMagic => write!(f, "not a snapshot (bad magic)"),
            CkptError::UnsupportedVersion(v) => {
                write!(f, "snapshot format version {v} (this build reads {FORMAT_VERSION})")
            }
            CkptError::ChecksumMismatch => write!(f, "snapshot checksum mismatch (corrupted)"),
            CkptError::ConfigMismatch { expected, found } => write!(
                f,
                "snapshot belongs to a different configuration \
                 (fingerprint {found:#018x}, resuming config is {expected:#018x})"
            ),
            CkptError::Truncated => write!(f, "snapshot truncated"),
            CkptError::Malformed(what) => write!(f, "snapshot malformed: {what}"),
        }
    }
}

impl std::error::Error for CkptError {}

impl From<CodecError> for CkptError {
    fn from(e: CodecError) -> Self {
        match e {
            CodecError::Truncated => CkptError::Truncated,
            CodecError::Malformed(what) => CkptError::Malformed(what),
        }
    }
}

/// FNV-1a 64-bit hash — the workspace's standing choice for cheap
/// deterministic hashing (the vendored proptest seeds test RNGs the same
/// way). Used both for the payload checksum and, by `uts-core`, for the
/// config fingerprint.
pub fn fnv1a_64(bytes: &[u8]) -> u64 {
    let mut h = 0xcbf2_9ce4_8422_2325u64;
    for &b in bytes {
        h ^= b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01B3);
    }
    h
}

/// Incremental FNV-1a over heterogeneous fields (config fingerprinting).
#[derive(Debug, Clone)]
pub struct Fingerprint {
    state: u64,
}

impl Fingerprint {
    /// Start a fingerprint at the FNV offset basis.
    #[allow(clippy::new_without_default)]
    pub fn new() -> Self {
        Self { state: 0xcbf2_9ce4_8422_2325 }
    }

    /// Mix raw bytes.
    pub fn bytes(&mut self, bytes: &[u8]) -> &mut Self {
        for &b in bytes {
            self.state ^= b as u64;
            self.state = self.state.wrapping_mul(0x0000_0100_0000_01B3);
        }
        self
    }

    /// Mix a `u64` (little-endian).
    pub fn u64(&mut self, v: u64) -> &mut Self {
        self.bytes(&v.to_le_bytes())
    }

    /// The digest.
    pub fn finish(&self) -> u64 {
        self.state
    }
}

/// When a run writes snapshots. Both conditions may be armed at once; a
/// boundary satisfying either produces one snapshot.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct CheckpointPolicy {
    /// Snapshot at every `n`-th macro-step boundary (1-based: `Some(3)`
    /// snapshots after steps 3, 6, 9, …).
    pub every_steps: Option<u64>,
    /// Snapshot at every boundary whose step ended in a balancing phase —
    /// the moments load just moved, which long-run operators care about.
    pub on_trigger: bool,
}

impl CheckpointPolicy {
    /// Snapshot every `n` macro-steps.
    ///
    /// # Panics
    /// Panics if `n == 0`.
    pub fn every(n: u64) -> Self {
        assert!(n > 0, "checkpoint interval must be positive");
        Self { every_steps: Some(n), on_trigger: false }
    }

    /// Snapshot after every balancing phase.
    pub fn on_trigger() -> Self {
        Self { every_steps: None, on_trigger: true }
    }

    /// Also snapshot after every balancing phase.
    pub fn and_on_trigger(mut self) -> Self {
        self.on_trigger = true;
        self
    }

    /// Whether a boundary with 1-based index `step`, where `fired` says a
    /// balancing phase just ran, should snapshot.
    pub fn wants(&self, step: u64, fired: bool) -> bool {
        self.every_steps.is_some_and(|n| step.is_multiple_of(n)) || (self.on_trigger && fired)
    }
}

/// Fault injection for the kill→resume test harness: the run is killed —
/// `Outcome::killed` set, search abandoned — immediately *after* the
/// boundary processing (including any snapshot) of the given macro-step.
/// Power-loss-between-steps semantics: everything up to and including the
/// boundary's snapshot survives; nothing after it happens.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FaultPlan {
    /// 1-based macro-step boundary at which the run dies.
    pub kill_at_step: u64,
}

impl FaultPlan {
    /// Kill at the given 1-based macro-step boundary.
    pub fn kill_at(step: u64) -> Self {
        Self { kill_at_step: step }
    }

    /// A seeded pseudo-random kill step in `1..=max_step` (SplitMix64 on
    /// the seed), so differential tests vary the kill point run-to-run
    /// while staying reproducible from the seed alone.
    pub fn seeded(seed: u64, max_step: u64) -> Self {
        let mut z = seed.wrapping_add(0x9E37_79B9_7F4A_7C15);
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^= z >> 31;
        Self { kill_at_step: 1 + z % max_step.max(1) }
    }
}

/// Cooperative preemption flag, checked by every engine at each
/// macro-step boundary — the third leg of the harness layer next to
/// [`CheckpointPolicy`] (when to snapshot) and [`FaultPlan`] (when to
/// die). Raising the signal asks the run to *park*: at its next boundary
/// the engine writes one forced snapshot of the boundary (whatever the
/// policy says) and returns its partial `Outcome` with the killed flag
/// set, exactly like an injected fault. Because parking happens only at
/// macro-step boundaries and the snapshot carries the boundary count, a
/// later resume continues the lockstep schedule bit-identically — which
/// is what lets a job server preempt long runs without perturbing their
/// results.
///
/// Clones share the flag (the scheduler keeps one end, the running
/// engine's checkpoint config holds the other). Raising is sticky until
/// [`PreemptSignal::clear`].
#[derive(Debug, Clone, Default)]
pub struct PreemptSignal(Arc<AtomicBool>);

impl PreemptSignal {
    /// A fresh, un-raised signal.
    pub fn new() -> Self {
        Self::default()
    }

    /// Ask the run to park at its next macro-step boundary.
    pub fn raise(&self) {
        self.0.store(true, Ordering::Release);
    }

    /// Whether the signal has been raised (engine side, boundary check).
    pub fn is_raised(&self) -> bool {
        self.0.load(Ordering::Acquire)
    }

    /// Reset the flag (e.g. before resuming the parked run).
    pub fn clear(&self) {
        self.0.store(false, Ordering::Release);
    }
}

/// The machine half of a snapshot: everything [`SimdMachine`] owns.
#[derive(Debug, Clone)]
pub struct MachineState {
    /// Virtual clock.
    pub now: SimTime,
    /// The `L` estimate (cost of the most recent balancing phase).
    pub last_lb_cost: SimTime,
    /// Run-long counters, active trace and phase log.
    pub metrics: Metrics,
    /// Search-phase counters the dynamic triggers read.
    pub phase: PhaseStats,
}

impl MachineState {
    /// Capture a machine's complete state.
    pub fn capture(machine: &SimdMachine) -> Self {
        Self {
            now: machine.now(),
            last_lb_cost: machine.estimated_lb_cost(),
            metrics: machine.metrics().clone(),
            phase: *machine.phase(),
        }
    }

    /// Rebuild the machine under `p` processors and `cost` (both come from
    /// the run configuration, which the fingerprint already pinned).
    pub fn restore(self, p: usize, cost: CostModel) -> SimdMachine {
        SimdMachine::restore(p, cost, self.now, self.last_lb_cost, self.metrics, self.phase)
    }
}

/// The in-progress ledger of a run that records one: per-PE receipts and
/// the settled phase records. (Donations live in the engine's own vector;
/// a pending un-settled firing never exists at a macro-step boundary.)
#[derive(Debug, Clone)]
pub struct RecorderState {
    /// Work transfers received by each PE so far.
    pub receipts: Vec<u32>,
    /// Settled balancing-phase records, in schedule order.
    pub phases: Vec<LbPhaseRecord>,
}

/// Complete engine state at a macro-step boundary — the payload of a
/// snapshot. Generic over the problem's node type; the *problem itself*
/// is not captured (a resume call re-supplies it, and the config
/// fingerprint guards against resuming the wrong run setup).
#[derive(Debug, Clone)]
pub struct EngineSnapshot<N> {
    /// Macro-step boundaries completed (1-based count).
    pub step: u64,
    /// Whether the Sec. 7 init-distribution protocol is still running.
    pub in_init: bool,
    /// Goal nodes found so far.
    pub goals: u64,
    /// Per-PE donation counts so far.
    pub donations: Vec<u32>,
    /// Largest per-PE stack size observed so far.
    pub peak_stack_nodes: usize,
    /// The GP matcher's global pointer (`None` for NGP or before the
    /// first donation).
    pub global_pointer: Option<usize>,
    /// Clock, counters, traces.
    pub machine: MachineState,
    /// In-progress ledger, if the run records one.
    pub recorder: Option<RecorderState>,
    /// The horizon log so far, as `(start_cycle, horizon, ran)` triples
    /// (only non-empty when the run records horizons).
    pub macro_steps: Vec<(u64, u64, u64)>,
    /// Every PE's DFS stack, index = PE id.
    pub stacks: Vec<SearchStack<N>>,
}

fn encode_trigger_kind(out: &mut Vec<u8>, k: TriggerKind) {
    match k {
        TriggerKind::Init => out.push(0),
        TriggerKind::Static { threshold } => {
            out.push(1);
            put_u32(out, threshold);
        }
        TriggerKind::Dp => out.push(2),
        TriggerKind::Dk => out.push(3),
        TriggerKind::AnyIdle => out.push(4),
    }
}

fn decode_trigger_kind(r: &mut Reader<'_>) -> Result<TriggerKind, CodecError> {
    Ok(match r.u8()? {
        0 => TriggerKind::Init,
        1 => TriggerKind::Static { threshold: r.u32()? },
        2 => TriggerKind::Dp,
        3 => TriggerKind::Dk,
        4 => TriggerKind::AnyIdle,
        _ => return Err(CodecError::Malformed("trigger kind tag")),
    })
}

fn encode_phase_record(out: &mut Vec<u8>, ph: &LbPhaseRecord) {
    put_u64(out, ph.at_cycle);
    encode_trigger_kind(out, ph.firing.kind);
    put_u32(out, ph.firing.busy);
    put_u32(out, ph.firing.idle);
    put_u64(out, ph.firing.w);
    put_u64(out, ph.firing.t);
    put_u64(out, ph.firing.w_idle);
    put_u64(out, ph.firing.l_estimate);
    put_u64(out, ph.horizon);
    put_u32(out, ph.rounds);
    put_u64(out, ph.transfers);
    put_u64(out, ph.cost.setup);
    put_u64(out, ph.cost.transfer);
    put_u32(out, ph.cost.multiplier);
    put_u64(out, ph.cost.total);
}

fn decode_phase_record(r: &mut Reader<'_>) -> Result<LbPhaseRecord, CodecError> {
    Ok(LbPhaseRecord {
        at_cycle: r.u64()?,
        firing: TriggerFiring {
            kind: decode_trigger_kind(r)?,
            busy: r.u32()?,
            idle: r.u32()?,
            w: r.u64()?,
            t: r.u64()?,
            w_idle: r.u64()?,
            l_estimate: r.u64()?,
        },
        horizon: r.u64()?,
        rounds: r.u32()?,
        transfers: r.u64()?,
        cost: LbCostBreakdown {
            setup: r.u64()?,
            transfer: r.u64()?,
            multiplier: r.u32()?,
            total: r.u64()?,
        },
    })
}

fn encode_metrics(out: &mut Vec<u8>, m: &Metrics) {
    put_u64(out, m.n_expand);
    put_u64(out, m.n_lb);
    put_u64(out, m.n_transfers);
    put_u64(out, m.nodes_expanded);
    put_u64(out, m.busy_pe_cycles);
    put_u64(out, m.idle_pe_cycles);
    put_u64(out, m.t_lb_machine);
    put_bool(out, m.trace_enabled);
    m.active_trace.breakpoints().to_vec().encode_node(out);
    put_u64(out, m.active_trace.len());
    put_usize(out, m.phase_log.len());
    for ev in &m.phase_log {
        put_u64(out, ev.at_cycle);
        put_u32(out, ev.rounds);
        put_u64(out, ev.transfers);
        put_u64(out, ev.cost);
    }
}

fn decode_metrics(r: &mut Reader<'_>) -> Result<Metrics, CodecError> {
    let n_expand = r.u64()?;
    let n_lb = r.u64()?;
    let n_transfers = r.u64()?;
    let nodes_expanded = r.u64()?;
    let busy_pe_cycles = r.u64()?;
    let idle_pe_cycles = r.u64()?;
    let t_lb_machine = r.u64()?;
    let trace_enabled = r.bool()?;
    let breaks: Vec<(u64, u32)> = Vec::decode_node(r)?;
    let trace_len = r.u64()?;
    // Re-validate canonicity here (the constructor would panic; a decoder
    // must reject instead).
    let canonical = breaks.is_empty() == (trace_len == 0)
        && breaks.first().is_none_or(|&(c, _)| c == 0)
        && breaks.windows(2).all(|w| w[0].0 < w[1].0 && w[0].1 != w[1].1)
        && breaks.last().is_none_or(|&(c, _)| c < trace_len);
    if !canonical {
        return Err(CodecError::Malformed("active trace breakpoints not canonical"));
    }
    let active_trace = ActiveTrace::from_breakpoints(breaks, trace_len);
    let n_events = r.len(28)?;
    let mut phase_log = Vec::with_capacity(n_events);
    for _ in 0..n_events {
        phase_log.push(PhaseEvent {
            at_cycle: r.u64()?,
            rounds: r.u32()?,
            transfers: r.u64()?,
            cost: r.u64()?,
        });
    }
    Ok(Metrics {
        n_expand,
        n_lb,
        n_transfers,
        nodes_expanded,
        busy_pe_cycles,
        idle_pe_cycles,
        t_lb_machine,
        trace_enabled,
        active_trace,
        phase_log,
    })
}

/// Where a snapshot's PE stacks are read from at encode time. The frame
/// view (`Vec<Vec<N>>` [`SearchStack`]s) is the canonical representation;
/// the structure-of-arrays [`StackArena`] the hot engines run on encodes
/// byte-identically (`StackArena::encode_pe` is specified against the
/// `SearchStack` codec), so either source yields the same snapshot bytes
/// and both decode into the same `Vec<SearchStack<N>>`.
pub enum StackSource<'a, N> {
    /// The canonical frame representation (oracle engine, owned snapshots).
    Frames(&'a [SearchStack<N>]),
    /// The dense arena the burst kernels run on, serialized in place.
    Arena(&'a StackArena<N>),
    /// Stacks already in their encoded form: `bytes` is the concatenation
    /// of the `p` per-PE encodings, each byte-identical to what
    /// [`SearchStack`]'s codec (equivalently `StackArena::encode_pe`)
    /// emits. This is how the sharded machine checkpoints — each worker
    /// serializes its own PE range and the coordinator splices the
    /// sections without ever decoding a node, so a shard snapshot is
    /// indistinguishable from a single-process one.
    Encoded {
        /// Ensemble size `P` across all contributing shards.
        p: usize,
        /// Concatenated per-PE stack encodings, PE order.
        bytes: &'a [u8],
    },
}

impl<N> StackSource<'_, N> {
    /// Ensemble size `P`.
    pub fn p(&self) -> usize {
        match self {
            StackSource::Frames(stacks) => stacks.len(),
            StackSource::Arena(arena) => arena.p(),
            StackSource::Encoded { p, .. } => *p,
        }
    }
}

/// Borrowed view of engine state at a macro-step boundary — the encode-side
/// twin of [`EngineSnapshot`]. Engines build one over their *live* state
/// (stacks, donation vector) so a snapshot costs one serialization pass and
/// zero clones; the bytes it produces decode into the equivalent owned
/// [`EngineSnapshot`].
pub struct SnapshotView<'a, N> {
    /// Macro-step boundaries completed (1-based count).
    pub step: u64,
    /// Whether the Sec. 7 init-distribution protocol is still running.
    pub in_init: bool,
    /// Goal nodes found so far.
    pub goals: u64,
    /// Per-PE donation counts so far.
    pub donations: &'a [u32],
    /// Largest per-PE stack size observed so far.
    pub peak_stack_nodes: usize,
    /// The GP matcher's global pointer (`None` for NGP or before the
    /// first donation).
    pub global_pointer: Option<usize>,
    /// Clock, counters, traces.
    pub machine: &'a MachineState,
    /// In-progress ledger, if the run records one.
    pub recorder: Option<&'a RecorderState>,
    /// The horizon log so far, as `(start_cycle, horizon, ran)` triples.
    pub macro_steps: &'a [(u64, u64, u64)],
    /// Every PE's DFS stack, index = PE id.
    pub stacks: StackSource<'a, N>,
}

impl<N: CkptNode> SnapshotView<'_, N> {
    fn encode_payload(&self, out: &mut Vec<u8>) {
        put_u64(out, self.step);
        put_bool(out, self.in_init);
        put_u64(out, self.goals);
        put_usize(out, self.donations.len());
        for &d in self.donations {
            put_u32(out, d);
        }
        put_usize(out, self.peak_stack_nodes);
        self.global_pointer.encode_node(out);
        put_u64(out, self.machine.now);
        put_u64(out, self.machine.last_lb_cost);
        encode_metrics(out, &self.machine.metrics);
        put_u64(out, self.machine.phase.cycles);
        put_u64(out, self.machine.phase.busy_pe_cycles);
        put_u64(out, self.machine.phase.idle_pe_cycles);
        match self.recorder {
            None => put_bool(out, false),
            Some(rec) => {
                put_bool(out, true);
                rec.receipts.encode_node(out);
                put_usize(out, rec.phases.len());
                for ph in &rec.phases {
                    encode_phase_record(out, ph);
                }
            }
        }
        put_usize(out, self.macro_steps.len());
        for ms in self.macro_steps {
            ms.encode_node(out);
        }
        match &self.stacks {
            StackSource::Frames(stacks) => {
                put_usize(out, stacks.len());
                for s in *stacks {
                    s.encode_node(out);
                }
            }
            StackSource::Arena(arena) => {
                put_usize(out, arena.p());
                for i in 0..arena.p() {
                    arena.encode_pe(i, out);
                }
            }
            StackSource::Encoded { p, bytes } => {
                put_usize(out, *p);
                out.extend_from_slice(bytes);
            }
        }
    }

    /// Serialize into the container format under the given config
    /// fingerprint. Deterministic: the same snapshot state and fingerprint
    /// always produce the same bytes.
    pub fn encode(&self, config_fingerprint: u64) -> Vec<u8> {
        let mut payload = Vec::with_capacity(256 + 64 * self.stacks.p());
        self.encode_payload(&mut payload);
        let mut out = Vec::with_capacity(MAGIC.len() + 28 + payload.len());
        out.extend_from_slice(&MAGIC);
        put_u32(&mut out, FORMAT_VERSION);
        put_u64(&mut out, config_fingerprint);
        put_u64(&mut out, payload.len() as u64);
        out.extend_from_slice(&payload);
        let checksum = fnv1a_64(&out);
        put_u64(&mut out, checksum);
        out
    }
}

impl<N: CkptNode> EngineSnapshot<N> {
    fn decode_payload(r: &mut Reader<'_>) -> Result<Self, CodecError> {
        let step = r.u64()?;
        let in_init = r.bool()?;
        let goals = r.u64()?;
        let donations: Vec<u32> = Vec::decode_node(r)?;
        let peak_stack_nodes = r.usize()?;
        let global_pointer: Option<usize> = Option::decode_node(r)?;
        let now = r.u64()?;
        let last_lb_cost = r.u64()?;
        let metrics = decode_metrics(r)?;
        let phase =
            PhaseStats { cycles: r.u64()?, busy_pe_cycles: r.u64()?, idle_pe_cycles: r.u64()? };
        let recorder = if r.bool()? {
            let receipts: Vec<u32> = Vec::decode_node(r)?;
            let n = r.len(8)?;
            let mut phases = Vec::with_capacity(n);
            for _ in 0..n {
                phases.push(decode_phase_record(r)?);
            }
            Some(RecorderState { receipts, phases })
        } else {
            None
        };
        let macro_steps: Vec<(u64, u64, u64)> = Vec::decode_node(r)?;
        let stacks: Vec<SearchStack<N>> = Vec::decode_node(r)?;
        if stacks.is_empty() {
            return Err(CodecError::Malformed("snapshot has no PE stacks"));
        }
        if donations.len() != stacks.len() {
            return Err(CodecError::Malformed("donation vector length differs from P"));
        }
        Ok(Self {
            step,
            in_init,
            goals,
            donations,
            peak_stack_nodes,
            global_pointer,
            machine: MachineState { now, last_lb_cost, metrics, phase },
            recorder,
            macro_steps,
            stacks,
        })
    }

    /// Serialize into the container format under the given config
    /// fingerprint (via a borrowed [`SnapshotView`] over this snapshot).
    /// Deterministic: the same snapshot state and fingerprint always
    /// produce the same bytes.
    pub fn encode(&self, config_fingerprint: u64) -> Vec<u8> {
        SnapshotView {
            step: self.step,
            in_init: self.in_init,
            goals: self.goals,
            donations: &self.donations,
            peak_stack_nodes: self.peak_stack_nodes,
            global_pointer: self.global_pointer,
            machine: &self.machine,
            recorder: self.recorder.as_ref(),
            macro_steps: &self.macro_steps,
            stacks: StackSource::Frames(&self.stacks),
        }
        .encode(config_fingerprint)
    }

    /// Parse and validate a snapshot. `expected_fingerprint` is the
    /// fingerprint of the configuration the caller intends to resume
    /// under; a snapshot of any other configuration is rejected with
    /// [`CkptError::ConfigMismatch`]. Validation order: magic, version,
    /// structural completeness, checksum, fingerprint, payload.
    pub fn decode(bytes: &[u8], expected_fingerprint: u64) -> Result<Self, CkptError> {
        let mut r = Reader::new(bytes);
        let magic = r.bytes(MAGIC.len()).map_err(|_| CkptError::BadMagic)?;
        if magic != MAGIC {
            return Err(CkptError::BadMagic);
        }
        let version = r.u32().map_err(|_| CkptError::Truncated)?;
        if version != FORMAT_VERSION {
            return Err(CkptError::UnsupportedVersion(version));
        }
        let found = r.u64().map_err(|_| CkptError::Truncated)?;
        let payload_len = r.usize().map_err(|_| CkptError::Truncated)?;
        if payload_len.checked_add(8) != Some(r.remaining()) {
            return Err(CkptError::Truncated);
        }
        let body_end = bytes.len() - 8;
        let stored = u64::from_le_bytes(bytes[body_end..].try_into().expect("8 bytes"));
        if fnv1a_64(&bytes[..body_end]) != stored {
            return Err(CkptError::ChecksumMismatch);
        }
        if found != expected_fingerprint {
            return Err(CkptError::ConfigMismatch { expected: expected_fingerprint, found });
        }
        let mut pr = Reader::new(&bytes[body_end - payload_len..body_end]);
        let snapshot = Self::decode_payload(&mut pr)?;
        if !pr.is_done() {
            return Err(CkptError::Malformed("trailing payload bytes"));
        }
        Ok(snapshot)
    }

    /// Ensemble size `P` recorded in the snapshot.
    pub fn p(&self) -> usize {
        self.stacks.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_snapshot() -> EngineSnapshot<(usize, u64)> {
        let mut trace = ActiveTrace::new();
        trace.push_run(3, 5);
        trace.push_run(1, 2);
        let metrics = Metrics {
            n_expand: 7,
            n_lb: 1,
            n_transfers: 2,
            nodes_expanded: 17,
            busy_pe_cycles: 17,
            idle_pe_cycles: 11,
            t_lb_machine: 13_000,
            trace_enabled: true,
            active_trace: trace,
            phase_log: vec![PhaseEvent { at_cycle: 5, rounds: 1, transfers: 2, cost: 13_000 }],
        };
        let firing = TriggerFiring {
            kind: TriggerKind::Static { threshold: 3 },
            busy: 2,
            idle: 1,
            w: 90_000,
            t: 150_000,
            w_idle: 60_000,
            l_estimate: 13_000,
        };
        let mut stack = SearchStack::from_root((0usize, 0u64));
        stack.pop_next();
        stack.push_frame(vec![(1, 0), (1, 1)]);
        EngineSnapshot {
            step: 4,
            in_init: false,
            goals: 1,
            donations: vec![2, 0, 0, 1],
            peak_stack_nodes: 9,
            global_pointer: Some(3),
            machine: MachineState {
                now: 223_000,
                last_lb_cost: 13_000,
                metrics,
                phase: PhaseStats { cycles: 2, busy_pe_cycles: 5, idle_pe_cycles: 3 },
            },
            recorder: Some(RecorderState {
                receipts: vec![0, 1, 1, 0],
                phases: vec![LbPhaseRecord {
                    at_cycle: 5,
                    firing,
                    horizon: 3,
                    rounds: 1,
                    transfers: 2,
                    cost: LbCostBreakdown {
                        setup: 3_000,
                        transfer: 10_000,
                        multiplier: 1,
                        total: 13_000,
                    },
                }],
            }),
            macro_steps: vec![(0, 3, 3), (3, 4, 2)],
            stacks: vec![
                stack,
                SearchStack::new(),
                SearchStack::from_root((2, 7)),
                SearchStack::new(),
            ],
        }
    }

    fn assert_snapshots_equal(a: &EngineSnapshot<(usize, u64)>, b: &EngineSnapshot<(usize, u64)>) {
        // Field-by-field: SearchStack and Metrics do not implement Eq, so
        // equality is checked through re-encoding (canonical) plus spot
        // fields for a readable failure.
        assert_eq!(a.step, b.step);
        assert_eq!(a.goals, b.goals);
        assert_eq!(a.donations, b.donations);
        assert_eq!(a.encode(9), b.encode(9), "canonical re-encode differs");
    }

    #[test]
    fn round_trips_bit_identically() {
        let snap = sample_snapshot();
        let bytes = snap.encode(0xFEED);
        let back = EngineSnapshot::<(usize, u64)>::decode(&bytes, 0xFEED).expect("decodes");
        assert_snapshots_equal(&snap, &back);
        assert_eq!(back.encode(0xFEED), bytes, "encode∘decode is the identity on bytes");
        assert_eq!(back.p(), 4);
        assert_eq!(back.machine.metrics.active_trace.to_vec(), vec![3, 3, 3, 3, 3, 1, 1]);
    }

    #[test]
    fn arena_stack_source_encodes_byte_identically() {
        let snap = sample_snapshot();
        let via_frames = snap.encode(0xFEED);
        let arena = StackArena::from_stacks(snap.stacks.clone());
        let via_arena = SnapshotView {
            step: snap.step,
            in_init: snap.in_init,
            goals: snap.goals,
            donations: &snap.donations,
            peak_stack_nodes: snap.peak_stack_nodes,
            global_pointer: snap.global_pointer,
            machine: &snap.machine,
            recorder: snap.recorder.as_ref(),
            macro_steps: &snap.macro_steps,
            stacks: StackSource::Arena(&arena),
        }
        .encode(0xFEED);
        assert_eq!(via_arena, via_frames, "SoA and frame sources must be indistinguishable");
        let back = EngineSnapshot::<(usize, u64)>::decode(&via_arena, 0xFEED).expect("decodes");
        let again = StackArena::from_stacks(back.stacks.clone());
        let mut a = Vec::new();
        let mut b = Vec::new();
        for i in 0..again.p() {
            again.encode_pe(i, &mut a);
            back.stacks[i].encode_node(&mut b);
        }
        assert_eq!(a, b, "SoA→frames→SoA re-encode is bit-exact");
    }

    #[test]
    fn no_recorder_no_trace_round_trips() {
        let mut snap = sample_snapshot();
        snap.recorder = None;
        snap.machine.metrics.trace_enabled = false;
        snap.machine.metrics.active_trace = ActiveTrace::new();
        snap.machine.metrics.phase_log.clear();
        snap.global_pointer = None;
        snap.macro_steps.clear();
        let bytes = snap.encode(1);
        let back = EngineSnapshot::<(usize, u64)>::decode(&bytes, 1).unwrap();
        assert!(back.recorder.is_none());
        assert!(back.global_pointer.is_none());
        assert_eq!(back.encode(1), bytes);
    }

    #[test]
    fn bad_magic_is_distinct() {
        let mut bytes = sample_snapshot().encode(7);
        bytes[0] ^= 0xFF;
        assert_eq!(
            EngineSnapshot::<(usize, u64)>::decode(&bytes, 7).unwrap_err(),
            CkptError::BadMagic,
        );
        assert_eq!(
            EngineSnapshot::<(usize, u64)>::decode(&[], 7).unwrap_err(),
            CkptError::BadMagic,
        );
    }

    #[test]
    fn wrong_version_is_distinct() {
        let mut bytes = sample_snapshot().encode(7);
        bytes[8] = 99; // version field, little-endian low byte
        assert_eq!(
            EngineSnapshot::<(usize, u64)>::decode(&bytes, 7).unwrap_err(),
            CkptError::UnsupportedVersion(99),
        );
    }

    #[test]
    fn corrupted_body_is_a_checksum_mismatch() {
        let mut bytes = sample_snapshot().encode(7);
        let mid = bytes.len() / 2;
        bytes[mid] ^= 0x01;
        assert_eq!(
            EngineSnapshot::<(usize, u64)>::decode(&bytes, 7).unwrap_err(),
            CkptError::ChecksumMismatch,
        );
    }

    #[test]
    fn wrong_config_is_distinct_and_checked_after_integrity() {
        let bytes = sample_snapshot().encode(0xAAAA);
        assert_eq!(
            EngineSnapshot::<(usize, u64)>::decode(&bytes, 0xBBBB).unwrap_err(),
            CkptError::ConfigMismatch { expected: 0xBBBB, found: 0xAAAA },
        );
    }

    #[test]
    fn truncation_is_distinct() {
        let bytes = sample_snapshot().encode(7);
        for cut in [bytes.len() - 1, bytes.len() - 9, 40, 21, 13] {
            assert_eq!(
                EngineSnapshot::<(usize, u64)>::decode(&bytes[..cut], 7).unwrap_err(),
                CkptError::Truncated,
                "cut at {cut}"
            );
        }
    }

    #[test]
    fn policy_every_and_on_trigger_compose() {
        let every3 = CheckpointPolicy::every(3);
        assert!(!every3.wants(1, true));
        assert!(every3.wants(3, false));
        assert!(every3.wants(6, true));
        let both = CheckpointPolicy::every(4).and_on_trigger();
        assert!(both.wants(2, true));
        assert!(both.wants(4, false));
        assert!(!both.wants(5, false));
        let trig = CheckpointPolicy::on_trigger();
        assert!(trig.wants(1, true));
        assert!(!trig.wants(100, false));
    }

    #[test]
    fn seeded_fault_is_deterministic_and_in_range() {
        for seed in 0..200u64 {
            let f = FaultPlan::seeded(seed, 12);
            assert_eq!(f, FaultPlan::seeded(seed, 12));
            assert!((1..=12).contains(&f.kill_at_step), "{f:?}");
        }
        assert_eq!(FaultPlan::seeded(5, 0).kill_at_step, 1, "degenerate range clamps to 1");
    }

    #[test]
    fn fingerprint_order_sensitivity() {
        let mut a = Fingerprint::new();
        a.u64(1).u64(2);
        let mut b = Fingerprint::new();
        b.u64(2).u64(1);
        assert_ne!(a.finish(), b.finish());
        assert_eq!(fnv1a_64(b"abc"), {
            let mut f = Fingerprint::new();
            f.bytes(b"abc");
            f.finish()
        });
    }
}
