//! Length-prefixed, checksummed, sequence-numbered message frames — the
//! wire format of the sharded multi-process machine (`uts-shard`).
//!
//! The shard coordinator and its workers exchange three message families
//! (census reductions, donation transfers, whole-shard checkpoints) over
//! byte pipes. Pipes deliver bytes, not messages, and a dying worker can
//! truncate a frame mid-write, so every message travels inside a frame
//! that is *self-validating* the same way the snapshot container is:
//!
//! ```text
//! frame := tag:u8 | seq:u64 | len:u32 | payload[len] | fnv1a64(header‖payload):u64
//! ```
//!
//! all little-endian, `seq` counting frames per direction from 0. The
//! checksum covers tag, sequence number and length as well as the
//! payload, so a bit flip anywhere in the frame is a
//! [`WireError::ChecksumMismatch`]; a frame that arrives intact but out
//! of order (a reordering bug, or replay of a stale stream) fails with
//! [`WireError::OutOfOrder`] *after* integrity is established, mirroring
//! the snapshot container's validation order (structure → checksum →
//! semantics). Every corruption mode maps to a typed [`WireError`]
//! variant — never a panic, and never an unbounded read: the length
//! field is capped at [`MAX_PAYLOAD`] before any allocation happens, so
//! a corrupt length cannot ask the receiver for gigabytes.
//!
//! The payload itself is opaque to this layer; `uts-shard` encodes its
//! messages with the same `uts-tree` codec primitives the snapshot
//! payload uses.

use std::io::{Read, Write};

use crate::fnv1a_64;

/// Bytes of frame overhead around a payload: tag (1) + seq (8) +
/// length (4) + checksum (8).
pub const FRAME_OVERHEAD: usize = 21;

/// Hard cap on a frame's payload length. Large enough for a whole-shard
/// stack section at P = 2²⁰ (the checkpoint family ships the biggest
/// payloads), small enough that a corrupt length field is rejected
/// before the receiver allocates for it.
pub const MAX_PAYLOAD: u32 = 1 << 30;

/// Why a frame failed to arrive. One variant per corruption mode, so the
/// shard protocol (and the wire robustness property suite) can tell a
/// half-written frame from a damaged one from a misordered one — the
/// same rejection-mode discipline as [`crate::CkptError`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum WireError {
    /// The stream ended before the declared frame did (peer died
    /// mid-write, or the buffer was cut short).
    Truncated,
    /// The frame's bytes fail the checksum: damaged in transit.
    ChecksumMismatch,
    /// The declared payload length exceeds [`MAX_PAYLOAD`] — a corrupt
    /// length field, rejected before allocation.
    TooLarge(u32),
    /// An intact frame carrying the wrong sequence number: the stream
    /// was reordered or spliced.
    OutOfOrder {
        /// The sequence number this end expected next.
        expected: u64,
        /// The sequence number the frame carried.
        found: u64,
    },
    /// An I/O error other than clean end-of-stream.
    Io(std::io::ErrorKind),
}

impl std::fmt::Display for WireError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            WireError::Truncated => write!(f, "frame truncated (peer died mid-write?)"),
            WireError::ChecksumMismatch => write!(f, "frame checksum mismatch (corrupted)"),
            WireError::TooLarge(n) => {
                write!(f, "frame declares {n}-byte payload (cap {MAX_PAYLOAD})")
            }
            WireError::OutOfOrder { expected, found } => {
                write!(f, "frame out of order (expected seq {expected}, found {found})")
            }
            WireError::Io(kind) => write!(f, "frame I/O error: {kind:?}"),
        }
    }
}

impl std::error::Error for WireError {}

impl From<std::io::Error> for WireError {
    fn from(e: std::io::Error) -> Self {
        match e.kind() {
            std::io::ErrorKind::UnexpectedEof => WireError::Truncated,
            kind => WireError::Io(kind),
        }
    }
}

/// One decoded frame, borrowing its payload from the input buffer.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Frame<'a> {
    /// Message-family tag (opaque to the wire layer).
    pub tag: u8,
    /// Position of this frame in its direction's stream, from 0.
    pub seq: u64,
    /// The message bytes.
    pub payload: &'a [u8],
}

/// Append one encoded frame to `out`.
///
/// # Panics
/// Panics if `payload.len()` exceeds [`MAX_PAYLOAD`] — the sender is in
/// the same process; an oversized message is a bug, not a wire fault.
pub fn encode_frame(out: &mut Vec<u8>, tag: u8, seq: u64, payload: &[u8]) {
    assert!(payload.len() <= MAX_PAYLOAD as usize, "frame payload over MAX_PAYLOAD");
    let start = out.len();
    out.push(tag);
    out.extend_from_slice(&seq.to_le_bytes());
    out.extend_from_slice(&(payload.len() as u32).to_le_bytes());
    out.extend_from_slice(payload);
    let checksum = fnv1a_64(&out[start..]);
    out.extend_from_slice(&checksum.to_le_bytes());
}

/// Decode one frame from the front of `bytes`. On success returns the
/// frame and the number of bytes it consumed (trailing bytes are the
/// next frame's business). Validation order: structural completeness
/// (including the length cap), then checksum. Sequence-number ordering
/// is the stream reader's concern ([`FrameReader`]), not the byte
/// decoder's.
pub fn decode_frame(bytes: &[u8]) -> Result<(Frame<'_>, usize), WireError> {
    if bytes.len() < 13 {
        return Err(WireError::Truncated);
    }
    let tag = bytes[0];
    let seq = u64::from_le_bytes(bytes[1..9].try_into().expect("8 bytes"));
    let len = u32::from_le_bytes(bytes[9..13].try_into().expect("4 bytes"));
    if len > MAX_PAYLOAD {
        return Err(WireError::TooLarge(len));
    }
    let total = 13 + len as usize + 8;
    if bytes.len() < total {
        return Err(WireError::Truncated);
    }
    let body_end = total - 8;
    let stored = u64::from_le_bytes(bytes[body_end..total].try_into().expect("8 bytes"));
    if fnv1a_64(&bytes[..body_end]) != stored {
        return Err(WireError::ChecksumMismatch);
    }
    Ok((Frame { tag, seq, payload: &bytes[13..body_end] }, total))
}

/// Frame sender over a byte sink. Stamps consecutive sequence numbers
/// and flushes after every frame (a worker blocked on an unflushed pipe
/// would deadlock the lockstep barrier).
#[derive(Debug)]
pub struct FrameWriter<W: Write> {
    inner: W,
    seq: u64,
    buf: Vec<u8>,
}

impl<W: Write> FrameWriter<W> {
    /// A writer starting at sequence number 0.
    pub fn new(inner: W) -> Self {
        Self { inner, seq: 0, buf: Vec::new() }
    }

    /// Send one frame; returns the sequence number it carried.
    pub fn send(&mut self, tag: u8, payload: &[u8]) -> Result<u64, WireError> {
        self.buf.clear();
        encode_frame(&mut self.buf, tag, self.seq, payload);
        self.inner.write_all(&self.buf)?;
        self.inner.flush()?;
        let seq = self.seq;
        self.seq += 1;
        Ok(seq)
    }
}

/// Frame receiver over a byte source. Verifies integrity first, then
/// enforces that frames arrive in sequence order.
#[derive(Debug)]
pub struct FrameReader<R: Read> {
    inner: R,
    seq: u64,
    scratch: [u8; 13],
}

impl<R: Read> FrameReader<R> {
    /// A reader expecting sequence number 0 first.
    pub fn new(inner: R) -> Self {
        Self { inner, seq: 0, scratch: [0; 13] }
    }

    /// Receive one frame: the payload lands in `buf` (cleared first) and
    /// the tag is returned. Reads are bounded by the declared length,
    /// itself capped at [`MAX_PAYLOAD`] — a corrupt stream cannot make
    /// this loop or allocate without bound.
    pub fn recv(&mut self, buf: &mut Vec<u8>) -> Result<u8, WireError> {
        self.inner.read_exact(&mut self.scratch)?;
        let tag = self.scratch[0];
        let seq = u64::from_le_bytes(self.scratch[1..9].try_into().expect("8 bytes"));
        let len = u32::from_le_bytes(self.scratch[9..13].try_into().expect("4 bytes"));
        if len > MAX_PAYLOAD {
            return Err(WireError::TooLarge(len));
        }
        buf.clear();
        buf.resize(len as usize, 0);
        self.inner.read_exact(buf)?;
        let mut tail = [0u8; 8];
        self.inner.read_exact(&mut tail)?;
        let mut check = crate::Fingerprint::new();
        check.bytes(&self.scratch).bytes(buf);
        if check.finish() != u64::from_le_bytes(tail) {
            return Err(WireError::ChecksumMismatch);
        }
        if seq != self.seq {
            return Err(WireError::OutOfOrder { expected: self.seq, found: seq });
        }
        self.seq += 1;
        Ok(tag)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn frame_round_trips_and_chains() {
        let mut bytes = Vec::new();
        encode_frame(&mut bytes, 7, 0, b"hello");
        encode_frame(&mut bytes, 9, 1, b"");
        let (f0, used0) = decode_frame(&bytes).unwrap();
        assert_eq!((f0.tag, f0.seq, f0.payload), (7, 0, &b"hello"[..]));
        assert_eq!(used0, FRAME_OVERHEAD + 5);
        let (f1, used1) = decode_frame(&bytes[used0..]).unwrap();
        assert_eq!((f1.tag, f1.seq, f1.payload), (9, 1, &b""[..]));
        assert_eq!(used0 + used1, bytes.len());
    }

    #[test]
    fn every_truncation_point_is_truncated() {
        let mut bytes = Vec::new();
        encode_frame(&mut bytes, 3, 5, b"payload");
        for cut in 0..bytes.len() {
            assert_eq!(
                decode_frame(&bytes[..cut]).unwrap_err(),
                WireError::Truncated,
                "cut at {cut}"
            );
        }
    }

    #[test]
    fn any_flipped_bit_is_detected() {
        let mut pristine = Vec::new();
        encode_frame(&mut pristine, 3, 5, b"payload");
        for byte in 0..pristine.len() {
            for bit in 0..8 {
                let mut bytes = pristine.clone();
                bytes[byte] ^= 1 << bit;
                match decode_frame(&bytes) {
                    Err(WireError::ChecksumMismatch | WireError::TooLarge(_)) => {}
                    // A flip high in the length field can also leave the
                    // frame claiming more bytes than the buffer holds.
                    Err(WireError::Truncated) if (9..13).contains(&byte) => {}
                    other => panic!("flip {byte}.{bit} gave {other:?}"),
                }
            }
        }
    }

    #[test]
    fn oversized_length_rejected_before_allocation() {
        let mut bytes = Vec::new();
        encode_frame(&mut bytes, 1, 0, b"x");
        bytes[9..13].copy_from_slice(&u32::MAX.to_le_bytes());
        assert_eq!(decode_frame(&bytes).unwrap_err(), WireError::TooLarge(u32::MAX));
    }

    #[test]
    fn reader_writer_round_trip_in_order() {
        let mut wire = Vec::new();
        {
            let mut w = FrameWriter::new(&mut wire);
            assert_eq!(w.send(1, b"one").unwrap(), 0);
            assert_eq!(w.send(2, b"two").unwrap(), 1);
        }
        let mut r = FrameReader::new(&wire[..]);
        let mut buf = Vec::new();
        assert_eq!(r.recv(&mut buf).unwrap(), 1);
        assert_eq!(buf, b"one");
        assert_eq!(r.recv(&mut buf).unwrap(), 2);
        assert_eq!(buf, b"two");
        assert_eq!(r.recv(&mut buf).unwrap_err(), WireError::Truncated);
    }

    #[test]
    fn reordered_frames_fail_after_integrity() {
        let mut a = Vec::new();
        let mut b = Vec::new();
        encode_frame(&mut a, 1, 0, b"first");
        encode_frame(&mut b, 1, 1, b"second");
        // Deliver frame 1 before frame 0: intact, but out of order.
        let mut swapped = b.clone();
        swapped.extend_from_slice(&a);
        let mut r = FrameReader::new(&swapped[..]);
        let mut buf = Vec::new();
        assert_eq!(r.recv(&mut buf).unwrap_err(), WireError::OutOfOrder { expected: 0, found: 1 });
        // A corrupted out-of-order frame reports the corruption, not the
        // ordering: integrity is established first.
        let mut damaged = b.clone();
        let mid = damaged.len() / 2;
        damaged[mid] ^= 0x10;
        let mut r = FrameReader::new(&damaged[..]);
        assert_eq!(r.recv(&mut buf).unwrap_err(), WireError::ChecksumMismatch);
    }
}
