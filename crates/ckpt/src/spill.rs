//! Spill-directory entry points for parked runs.
//!
//! A preemptive scheduler (the `uts-serve` job server) parks long-running
//! jobs by writing their boundary snapshot to disk and resumes them when
//! capacity frees up. This module owns the on-disk naming and the
//! crash-consistency discipline for those files so every consumer parks
//! and unparks the same way:
//!
//! * one file per job, `job-{id:08}.park`, holding exactly the encoded
//!   snapshot container ([`crate::EngineSnapshot::encode`] output) — the
//!   container's own magic/checksum/fingerprint layers make a spill file
//!   self-validating on the way back in;
//! * every write is **atomic**: bytes land in a `.tmp` sibling first and
//!   are renamed over the final name, so a crash mid-write can never
//!   leave a torn `.park` file — after a kill the directory holds either
//!   the previous complete snapshot or the new complete snapshot, nothing
//!   in between;
//! * parking again *replaces* the previous snapshot (rename semantics),
//!   and [`unpark`] does not delete — the file survives until the job
//!   completes, so a crash between resume and the next park falls back to
//!   the last parked boundary instead of losing the job.
//!
//! The same atomic-write primitive ([`write_atomic`]) is exported for the
//! scheduler's sibling files (job specs, results): the server's recovery
//! contract is that *every* file in a spill directory is either absent or
//! complete.

use std::io;
use std::path::{Path, PathBuf};

/// The spill file holding `job`'s latest parked snapshot.
pub fn park_path(dir: &Path, job: u64) -> PathBuf {
    dir.join(format!("job-{job:08}.park"))
}

/// Write `bytes` to `path` atomically: a `.tmp` sibling is written and
/// synced, then renamed over `path`. Readers never observe a torn file.
pub fn write_atomic(path: &Path, bytes: &[u8]) -> io::Result<()> {
    let tmp = path.with_extension("tmp");
    std::fs::write(&tmp, bytes)?;
    // Durability of the rename itself is the filesystem's business; what
    // this guarantees is atomic visibility of complete contents.
    std::fs::rename(&tmp, path)
}

/// Park `job`'s snapshot container bytes into `dir` (created on first
/// use), atomically replacing any previous parked snapshot. Returns the
/// final path.
pub fn park(dir: &Path, job: u64, bytes: &[u8]) -> io::Result<PathBuf> {
    std::fs::create_dir_all(dir)?;
    let path = park_path(dir, job);
    write_atomic(&path, bytes)?;
    Ok(path)
}

/// Read back `job`'s parked snapshot. The file is left in place — it is
/// the job's fallback state until a newer park replaces it or
/// [`clear`] removes it on completion.
pub fn unpark(dir: &Path, job: u64) -> io::Result<Vec<u8>> {
    std::fs::read(park_path(dir, job))
}

/// Remove `job`'s parked snapshot (job completed or was cancelled).
/// Missing files are fine — the job may never have been parked.
pub fn clear(dir: &Path, job: u64) -> io::Result<()> {
    match std::fs::remove_file(park_path(dir, job)) {
        Err(e) if e.kind() != io::ErrorKind::NotFound => Err(e),
        _ => Ok(()),
    }
}

/// Job ids with a parked snapshot in `dir`, ascending. A missing
/// directory reads as empty (a fresh server has parked nothing). Files
/// that do not match the `job-{id:08}.park` pattern are ignored — in
/// particular the `.tmp` siblings a crash may strand.
pub fn parked_jobs(dir: &Path) -> io::Result<Vec<u64>> {
    let entries = match std::fs::read_dir(dir) {
        Err(e) if e.kind() == io::ErrorKind::NotFound => return Ok(Vec::new()),
        other => other?,
    };
    let mut ids = Vec::new();
    for entry in entries {
        let name = entry?.file_name();
        let Some(name) = name.to_str() else { continue };
        if let Some(id) = name.strip_prefix("job-").and_then(|s| s.strip_suffix(".park")) {
            if let Ok(id) = id.parse::<u64>() {
                ids.push(id);
            }
        }
    }
    ids.sort_unstable();
    Ok(ids)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tmpdir(tag: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("uts-spill-test-{tag}-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        dir
    }

    #[test]
    fn park_unpark_round_trips_and_replaces() {
        let dir = tmpdir("roundtrip");
        let path = park(&dir, 3, b"first").unwrap();
        assert_eq!(path, park_path(&dir, 3));
        assert_eq!(unpark(&dir, 3).unwrap(), b"first");
        // Unpark leaves the file; a second park atomically replaces it.
        park(&dir, 3, b"second").unwrap();
        assert_eq!(unpark(&dir, 3).unwrap(), b"second");
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn parked_jobs_lists_ids_sorted_and_skips_strays() {
        let dir = tmpdir("list");
        assert_eq!(parked_jobs(&dir).unwrap(), Vec::<u64>::new(), "missing dir reads empty");
        park(&dir, 7, b"x").unwrap();
        park(&dir, 2, b"y").unwrap();
        // Strays a crash could leave behind: a torn tmp and foreign files.
        std::fs::write(dir.join("job-00000009.tmp"), b"torn").unwrap();
        std::fs::write(dir.join("notes.txt"), b"hi").unwrap();
        assert_eq!(parked_jobs(&dir).unwrap(), vec![2, 7]);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn clear_removes_and_tolerates_missing() {
        let dir = tmpdir("clear");
        park(&dir, 1, b"z").unwrap();
        clear(&dir, 1).unwrap();
        assert!(unpark(&dir, 1).is_err());
        clear(&dir, 1).unwrap(); // second clear is a no-op, not an error
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn preempt_signal_is_shared_and_sticky() {
        let s = crate::PreemptSignal::new();
        let engine_end = s.clone();
        assert!(!engine_end.is_raised());
        s.raise();
        assert!(engine_end.is_raised(), "clones share the flag");
        s.raise();
        assert!(engine_end.is_raised(), "raising is idempotent");
        engine_end.clear();
        assert!(!s.is_raised());
    }
}
