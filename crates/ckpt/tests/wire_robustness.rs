//! Adversarial robustness of the checkpoint wire format.
//!
//! The sharded machine trusts this codec for every coordinator/worker
//! exchange, so a corrupted byte stream must never panic, hang, or decode
//! to silently-wrong frames: every corruption maps to a *typed*
//! `WireError`. These properties throw random frame streams at the codec
//! and then truncate, bit-flip, reorder, and replay them, checking that
//! the error surfaced is exactly the one the corruption geometry demands
//! and that every frame decoded before the fault is byte-identical to
//! what was sent.
//!
//! Committed counterexample states live in
//! `proptest-regressions/wire_robustness.txt` and replay before the
//! random cases.

use std::io::Cursor;

use proptest::prelude::*;
use uts_ckpt::wire::{
    decode_frame, encode_frame, FrameReader, FrameWriter, WireError, FRAME_OVERHEAD, MAX_PAYLOAD,
};

/// A random stream: 1–7 frames of arbitrary tag and 0–47 payload bytes.
fn arb_frames() -> impl Strategy<Value = Vec<(u8, Vec<u8>)>> {
    collection::vec((0u8..=255, collection::vec(0u8..=255, 0usize..48)), 1usize..8)
}

/// Encode `frames` as one contiguous stream with sequence numbers 0, 1, …
fn encode_stream(frames: &[(u8, Vec<u8>)]) -> Vec<u8> {
    let mut out = Vec::new();
    for (i, (tag, payload)) in frames.iter().enumerate() {
        encode_frame(&mut out, *tag, i as u64, payload);
    }
    out
}

/// Drain a byte stream through `FrameReader` until the first error,
/// reading at most `max` frames (a bound, so a codec bug can't hang the
/// test). Returns the intact prefix and the terminating error, if any.
fn read_all(bytes: &[u8], max: usize) -> (Vec<(u8, Vec<u8>)>, Option<WireError>) {
    let mut reader = FrameReader::new(Cursor::new(bytes));
    let mut buf = Vec::new();
    let mut got = Vec::new();
    for _ in 0..max {
        match reader.recv(&mut buf) {
            Ok(tag) => got.push((tag, buf.clone())),
            Err(e) => return (got, Some(e)),
        }
    }
    (got, None)
}

/// Index of the frame whose encoding contains byte `idx` of the stream.
fn frame_containing(frames: &[(u8, Vec<u8>)], idx: usize) -> usize {
    let mut end = 0;
    for (k, (_, payload)) in frames.iter().enumerate() {
        end += FRAME_OVERHEAD + payload.len();
        if idx < end {
            return k;
        }
    }
    unreachable!("byte index past the end of the stream");
}

proptest! {
    /// `FrameWriter` → `FrameReader` is the identity on any stream: every
    /// tag and payload round-trips, sequence numbers auto-chain from 0,
    /// and reading past the end is a clean `Truncated`, not a hang.
    #[test]
    fn any_stream_round_trips(frames in arb_frames()) {
        let mut bytes = Vec::new();
        let mut writer = FrameWriter::new(&mut bytes);
        for (i, (tag, payload)) in frames.iter().enumerate() {
            prop_assert_eq!(writer.send(*tag, payload).unwrap(), i as u64);
        }
        drop(writer);
        let (got, err) = read_all(&bytes, frames.len() + 1);
        prop_assert_eq!(&got, &frames);
        prop_assert_eq!(err, Some(WireError::Truncated), "EOF after the last frame");
    }

    /// Cutting the stream at *any* byte position yields the intact whole
    /// frames before the cut and then exactly `Truncated` — never a panic,
    /// a partial frame, or an unbounded read.
    #[test]
    fn any_truncation_is_typed(frames in arb_frames(), cut_frac in 0.0f64..1.0) {
        let bytes = encode_stream(&frames);
        let cut = ((cut_frac * bytes.len() as f64) as usize).min(bytes.len() - 1);
        let whole = {
            // How many whole frames fit in the first `cut` bytes?
            let mut fit = 0;
            let mut end = 0;
            for (_, payload) in &frames {
                end += FRAME_OVERHEAD + payload.len();
                if end <= cut {
                    fit += 1;
                }
            }
            fit
        };
        let (got, err) = read_all(&bytes[..cut], frames.len() + 1);
        prop_assert_eq!(got.len(), whole);
        prop_assert_eq!(&got[..], &frames[..whole]);
        prop_assert_eq!(err, Some(WireError::Truncated));
    }

    /// Flipping any single bit anywhere in the stream is detected at the
    /// frame that contains it: every earlier frame decodes byte-identical,
    /// and the fault surfaces as one of the three errors its position can
    /// produce (checksum for tag/seq/payload/checksum bytes, `TooLarge`
    /// for the length field's high bits, `Truncated` when an inflated
    /// length reads past the end). Never `Ok`, never a panic.
    #[test]
    fn any_single_bit_flip_is_detected(
        frames in arb_frames(),
        pos_frac in 0.0f64..1.0,
        bit in 0u32..8,
    ) {
        let mut bytes = encode_stream(&frames);
        let idx = ((pos_frac * bytes.len() as f64) as usize).min(bytes.len() - 1);
        bytes[idx] ^= 1 << bit;
        let k = frame_containing(&frames, idx);
        let (got, err) = read_all(&bytes, frames.len() + 1);
        prop_assert_eq!(got.len(), k, "corruption in frame {} must stop the stream there", k);
        prop_assert_eq!(&got[..], &frames[..k]);
        match err {
            Some(WireError::ChecksumMismatch) | Some(WireError::Truncated) => {}
            Some(WireError::TooLarge(len)) => prop_assert!(len > MAX_PAYLOAD),
            other => prop_assert!(false, "bit flip produced {:?}, not a corruption error", other),
        }
    }

    /// Swapping two intact frames (a delayed/overtaken message) is caught
    /// by sequence chaining: the reader accepts the prefix before the
    /// first displaced frame, then reports exactly which sequence number
    /// it expected and which arrived. Checksums pass — only ordering fails.
    #[test]
    fn swapped_frames_yield_out_of_order(
        frames in collection::vec((0u8..=255, collection::vec(0u8..=255, 0usize..48)), 2usize..8),
        ra in 0u64..1_000_000,
        rb in 0u64..1_000_000,
    ) {
        let n = frames.len();
        let a = (ra % (n as u64 - 1)) as usize;
        let b = a + 1 + (rb % (n - 1 - a) as u64) as usize;
        let mut chunks: Vec<Vec<u8>> = frames
            .iter()
            .enumerate()
            .map(|(i, (tag, payload))| {
                let mut c = Vec::new();
                encode_frame(&mut c, *tag, i as u64, payload);
                c
            })
            .collect();
        chunks.swap(a, b);
        let bytes: Vec<u8> = chunks.concat();
        let (got, err) = read_all(&bytes, n + 1);
        prop_assert_eq!(got.len(), a);
        prop_assert_eq!(&got[..], &frames[..a]);
        prop_assert_eq!(
            err,
            Some(WireError::OutOfOrder { expected: a as u64, found: b as u64 })
        );
    }

    /// Replaying a frame (a duplicated message) is also an ordering
    /// fault: the duplicate carries an already-consumed sequence number.
    #[test]
    fn replayed_frame_yields_out_of_order(frames in arb_frames(), rk in 0u64..1_000_000) {
        let n = frames.len();
        let k = (rk % n as u64) as usize;
        let mut bytes = Vec::new();
        for (i, (tag, payload)) in frames.iter().enumerate() {
            encode_frame(&mut bytes, *tag, i as u64, payload);
            if i == k {
                encode_frame(&mut bytes, *tag, i as u64, payload); // replay
            }
        }
        let (got, err) = read_all(&bytes, n + 2);
        prop_assert_eq!(got.len(), k + 1, "frames through the original are accepted");
        prop_assert_eq!(
            err,
            Some(WireError::OutOfOrder { expected: k as u64 + 1, found: k as u64 })
        );
    }

    /// `decode_frame` on arbitrary bytes never panics, and whenever it
    /// does accept a frame, re-encoding that frame reproduces exactly the
    /// consumed prefix — decoding is a partial inverse of encoding, so a
    /// decoded frame can always be forwarded verbatim.
    #[test]
    fn decode_is_total_and_a_partial_inverse(
        garbage in collection::vec(0u8..=255, 0usize..64),
        tag in 0u8..=255,
        seq in 0u64..u64::MAX,
        payload in collection::vec(0u8..=255, 0usize..48),
    ) {
        // Pure garbage: must return a typed error or a self-consistent frame.
        if let Ok((f, used)) = decode_frame(&garbage) {
            let mut re = Vec::new();
            encode_frame(&mut re, f.tag, f.seq, f.payload);
            prop_assert_eq!(&re[..], &garbage[..used]);
        }
        // A valid frame followed by arbitrary trailing bytes: the frame
        // decodes intact and `used` points exactly at the tail.
        let mut bytes = Vec::new();
        encode_frame(&mut bytes, tag, seq, &payload);
        let frame_len = bytes.len();
        bytes.extend_from_slice(&garbage);
        let (f, used) = decode_frame(&bytes).expect("a valid frame ignores its tail");
        prop_assert_eq!(used, frame_len);
        prop_assert_eq!(f.tag, tag);
        prop_assert_eq!(f.seq, seq);
        prop_assert_eq!(f.payload, &payload[..]);
    }
}
