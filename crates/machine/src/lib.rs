//! A lockstep SIMD machine model in the spirit of the CM-2.
//!
//! The paper (Karypis & Kumar, Secs. 3.1 & 3.3) abstracts the target machine
//! to a handful of quantities:
//!
//! * `P` — the number of identical processors working in lock-step;
//! * `U_calc` — the time of one node-expansion cycle (~30 ms on their CM-2);
//! * `t_lb` — the time of one load-balancing phase (~13 ms on their CM-2;
//!   `O(log^2 P)` on a hypercube, `O(sqrt P)` on a mesh);
//! * the derived totals `T_calc`, `T_idle`, `T_lb`, and the identity
//!   `P * T_par = T_calc + T_idle + T_lb` that defines efficiency.
//!
//! This crate is that abstraction made executable: a [`SimdMachine`] keeps a
//! virtual clock in integer microseconds, charges each expansion cycle and
//! balancing phase according to a [`CostModel`], and maintains the metrics
//! the paper reports (`N_expand`, `N_lb`, number of work transfers, the
//! active-processor trace of Fig. 8, and the efficiency of eq. 9).
//!
//! The machine knows nothing about trees or search; `uts-core` drives it.

pub mod cost;
pub mod ledger;
pub mod metrics;

pub use cost::{CostModel, Topology};
pub use ledger::{
    DonationSpread, LbCostBreakdown, LbPhaseRecord, Ledger, TriggerFiring, TriggerKind,
};
pub use metrics::{ActiveTrace, Metrics, PhaseEvent, PhaseStats};

use serde::{Deserialize, Serialize};

/// Virtual time, in integer microseconds (avoids float drift across millions
/// of cycles). One paper second = 1_000_000 `SimTime` units.
pub type SimTime = u64;

/// Number of microseconds per virtual second.
pub const MICROS_PER_SEC: u64 = 1_000_000;

/// The lockstep machine: clock + cost model + accounting.
///
/// The driving engine calls [`SimdMachine::expansion_cycle`] once per
/// lockstep node-expansion cycle (reporting how many PEs were busy) and
/// [`SimdMachine::lb_phase`] once per load-balancing phase (reporting how
/// many match/transfer rounds it contained and how many work transfers were
/// made). The machine does all time accounting.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct SimdMachine {
    /// Ensemble size `P`.
    p: usize,
    cost: CostModel,
    /// Virtual wall-clock (the paper's `T_par` once the search terminates).
    now: SimTime,
    metrics: Metrics,
    /// Counters since the current search phase began (reset by `lb_phase`);
    /// the dynamic triggers are functions of these.
    phase: PhaseStats,
    /// Cost of the most recent load-balancing phase — the paper's estimate
    /// `L` for the cost of the *next* phase ("the value of L cannot be
    /// known... it is approximated by the cost of the previous load
    /// balancing phase", Sec. 2.1).
    last_lb_cost: SimTime,
}

impl SimdMachine {
    /// Create a machine with `p` processors under the given cost model.
    ///
    /// Before any balancing phase has run, `L` is estimated by the cost
    /// model's prediction for a single-round phase.
    ///
    /// # Panics
    /// Panics if `p == 0`.
    pub fn new(p: usize, cost: CostModel) -> Self {
        assert!(p > 0, "a SIMD machine needs at least one processor");
        let last_lb_cost = cost.lb_phase_cost(p, 1);
        Self {
            p,
            cost,
            now: 0,
            metrics: Metrics::default(),
            phase: PhaseStats::default(),
            last_lb_cost,
        }
    }

    /// Rebuild a machine from checkpointed state: the resumed machine must
    /// be indistinguishable from one that lived through the original run,
    /// so every private field is restored verbatim (the checkpoint
    /// subsystem in `uts-ckpt` is the intended caller).
    ///
    /// # Panics
    /// Panics if `p == 0`.
    pub fn restore(
        p: usize,
        cost: CostModel,
        now: SimTime,
        last_lb_cost: SimTime,
        metrics: Metrics,
        phase: PhaseStats,
    ) -> Self {
        assert!(p > 0, "a SIMD machine needs at least one processor");
        Self { p, cost, now, metrics, phase, last_lb_cost }
    }

    /// Ensemble size `P`.
    pub fn p(&self) -> usize {
        self.p
    }

    /// The cost model in force.
    pub fn cost(&self) -> &CostModel {
        &self.cost
    }

    /// Current virtual time.
    pub fn now(&self) -> SimTime {
        self.now
    }

    /// Accumulated metrics.
    pub fn metrics(&self) -> &Metrics {
        &self.metrics
    }

    /// Counters since the current search phase began.
    pub fn phase(&self) -> &PhaseStats {
        &self.phase
    }

    /// The machine's estimate of the next balancing phase's cost (`L`).
    pub fn estimated_lb_cost(&self) -> SimTime {
        self.last_lb_cost
    }

    /// Enable recording of the active-processor count per expansion cycle
    /// (the `A(t)` traces of Fig. 8). Off by default to keep sweeps lean.
    pub fn record_active_trace(&mut self, on: bool) {
        self.metrics.trace_enabled = on;
    }

    /// Account one lockstep node-expansion cycle in which `busy` of the `P`
    /// processors expanded a node (each expanding exactly one).
    ///
    /// Advances the clock by `U_calc`; the `P - busy` idle processors accrue
    /// `U_calc` of idle time each (the paper's `T_idle` counts idling
    /// *during search phases only*, which is exactly what this charges).
    ///
    /// # Panics
    /// Panics if `busy > P`.
    pub fn expansion_cycle(&mut self, busy: usize) {
        self.expansion_cycles_run(busy, 1);
    }

    /// Account `n` consecutive lockstep expansion cycles, each with the
    /// same `busy` count — the batch entry point for macro-stepping
    /// engines. Exactly equivalent to calling
    /// [`SimdMachine::expansion_cycle`]`(busy)` `n` times, but O(1): the
    /// counters advance arithmetically and the trace records one
    /// run-length-encoded run.
    ///
    /// # Panics
    /// Panics if `busy > P`.
    pub fn expansion_cycles_run(&mut self, busy: usize, n: u64) {
        assert!(busy <= self.p, "cannot have more busy PEs than the machine has");
        if n == 0 {
            return;
        }
        let u = self.cost.u_calc;
        self.now += u * n;
        self.metrics.n_expand += n;
        self.metrics.nodes_expanded += busy as u64 * n;
        self.metrics.busy_pe_cycles += busy as u64 * n;
        self.metrics.idle_pe_cycles += (self.p - busy) as u64 * n;
        self.phase.cycles += n;
        self.phase.busy_pe_cycles += busy as u64 * n;
        self.phase.idle_pe_cycles += (self.p - busy) as u64 * n;
        if self.metrics.trace_enabled {
            self.metrics.active_trace.push_run(busy as u32, n);
        }
    }

    /// Account a whole batch of consecutive expansion cycles from its
    /// *death events* — the merge-friendly entry point for macro-stepping
    /// engines (host-parallel or not). `started` PEs each worked from
    /// cycle 1 of the batch; `deaths` holds, **sorted ascending**, the
    /// batch-relative cycle at which each draining PE worked its last
    /// cycle; survivors worked all `ran` cycles. Exactly equivalent to the
    /// per-cycle sequence
    /// `expansion_cycle(worked(1)), …, expansion_cycle(worked(ran))` where
    /// `worked(j) = started - #{deaths < j}`, but O(distinct death times):
    /// each constant run of the step function is charged via
    /// [`SimdMachine::expansion_cycles_run`].
    ///
    /// Because every input is a plain count, shard-local results from
    /// host-parallel workers can be merged (concatenate + sort the death
    /// lists, sum the started counts per shard → same totals) before a
    /// single call here reconstructs the lockstep schedule bit-identically.
    ///
    /// # Panics
    /// Panics if `started > P`; debug-asserts that `deaths` is sorted, has
    /// at most `started` entries, and lies within `1..=ran`.
    pub fn expansion_cycles_with_deaths(&mut self, started: usize, ran: u64, deaths: &[u64]) {
        debug_assert!(deaths.len() <= started, "more deaths than participants");
        debug_assert!(deaths.windows(2).all(|w| w[0] <= w[1]), "deaths must be sorted");
        debug_assert!(deaths.iter().all(|&e| e >= 1 && e <= ran), "death outside the batch");
        let mut alive = started;
        let mut prev = 0u64;
        let mut d = 0usize;
        while d < deaths.len() {
            let e = deaths[d];
            self.expansion_cycles_run(alive, e - prev);
            prev = e;
            while d < deaths.len() && deaths[d] == e {
                d += 1;
                alive -= 1;
            }
        }
        self.expansion_cycles_run(alive, ran - prev);
    }

    /// Account one load-balancing phase consisting of `rounds` match+transfer
    /// rounds (1 for single-transfer schemes; ≥1 when the DP trigger performs
    /// multiple work transfers) in which `transfers` stack splits were sent.
    ///
    /// Advances the clock by the cost model's phase cost, updates `L`, and
    /// resets the search-phase counters.
    pub fn lb_phase(&mut self, rounds: u32, transfers: u64) {
        let cost = self.cost.lb_phase_cost(self.p, rounds);
        self.now += cost;
        self.metrics.n_lb += 1;
        self.metrics.n_transfers += transfers;
        self.metrics.t_lb_machine += cost;
        self.last_lb_cost = cost;
        if self.metrics.trace_enabled {
            self.metrics.phase_log.push(metrics::PhaseEvent {
                at_cycle: self.metrics.n_expand,
                rounds,
                transfers,
                cost,
            });
        }
        self.phase = PhaseStats::default();
    }

    /// The paper's running time `T_par` (so far): the virtual clock.
    pub fn t_par(&self) -> SimTime {
        self.now
    }

    /// Finish the run and return the final report.
    ///
    /// `w_serial` is the problem size `W` — the node count of the serial
    /// algorithm. In the paper's anomaly-free setting it equals the parallel
    /// node count, which [`Metrics::nodes_expanded`] records; callers pass
    /// the serial count explicitly so the identity can be *checked* rather
    /// than assumed.
    pub fn finish(self, w_serial: u64) -> Report {
        let t_calc = w_serial * self.cost.u_calc;
        let t_idle = self.metrics.idle_pe_cycles * self.cost.u_calc;
        let t_lb = self.metrics.t_lb_machine * self.p as u64;
        let denom = t_calc + t_idle + t_lb;
        let efficiency = if denom == 0 { 1.0 } else { t_calc as f64 / denom as f64 };
        Report {
            p: self.p,
            w: w_serial,
            nodes_expanded: self.metrics.nodes_expanded,
            n_expand: self.metrics.n_expand,
            n_lb: self.metrics.n_lb,
            n_transfers: self.metrics.n_transfers,
            t_par: self.now,
            t_calc,
            t_idle,
            t_lb,
            efficiency,
            active_trace: self.metrics.active_trace,
            phase_log: self.metrics.phase_log,
        }
    }
}

/// Final accounting of one parallel search, in the paper's vocabulary
/// (Sec. 3.1). All times are in PE-microseconds except `t_par` (wall).
///
/// `PartialEq` compares every field (including the f64 `efficiency`,
/// which is derived deterministically from integer counters, so
/// bit-equality is the right notion): the cross-engine differential
/// suites assert whole-report equality between engines.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Report {
    /// Number of processors.
    pub p: usize,
    /// Problem size `W` (serial node count).
    pub w: u64,
    /// Nodes expanded by the parallel search (equals `w` when anomaly-free).
    pub nodes_expanded: u64,
    /// Number of node-expansion cycles (`N_expand` in Tables 2 & 4).
    pub n_expand: u64,
    /// Number of load-balancing phases (`N_lb` in Table 2).
    pub n_lb: u64,
    /// Number of individual work transfers (`*N_lb` in Table 4).
    pub n_transfers: u64,
    /// Parallel running time (virtual wall clock).
    pub t_par: SimTime,
    /// `T_calc = W * U_calc` (PE-time in useful computation).
    pub t_calc: u64,
    /// `T_idle` — PE-time idled during search phases.
    pub t_idle: u64,
    /// `T_lb` — PE-time spent in balancing phases (`phase cost × P` summed).
    pub t_lb: u64,
    /// `E = T_calc / (T_calc + T_idle + T_lb)` (eq. 9's left-hand side).
    pub efficiency: f64,
    /// `A(t)` per expansion cycle if tracing was enabled (Fig. 8),
    /// run-length encoded as `(cycle, A)` breakpoints.
    pub active_trace: metrics::ActiveTrace,
    /// Per-balancing-phase events if tracing was enabled.
    pub phase_log: Vec<metrics::PhaseEvent>,
}

impl Report {
    /// Speedup `S = T_calc / T_par` (Sec. 3.1).
    pub fn speedup(&self) -> f64 {
        if self.t_par == 0 {
            self.p as f64
        } else {
            self.t_calc as f64 / self.t_par as f64
        }
    }

    /// Check the accounting identity `P * T_par = T_calc + T_idle + T_lb`
    /// that the paper's Sec. 3.1 defines, using the *measured* parallel node
    /// count (the identity holds exactly when `nodes_expanded == w`).
    pub fn accounting_identity_holds(&self) -> bool {
        let lhs = self.p as u64 * self.t_par;
        let t_calc_measured = self.t_calc / self.w.max(1) * self.nodes_expanded;
        lhs == t_calc_measured + self.t_idle + self.t_lb
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cm2(p: usize) -> SimdMachine {
        SimdMachine::new(p, CostModel::cm2())
    }

    #[test]
    fn expansion_cycle_advances_clock_and_counts() {
        let mut m = cm2(8);
        m.expansion_cycle(5);
        assert_eq!(m.now(), CostModel::cm2().u_calc);
        assert_eq!(m.metrics().n_expand, 1);
        assert_eq!(m.metrics().nodes_expanded, 5);
        assert_eq!(m.metrics().busy_pe_cycles, 5);
        assert_eq!(m.metrics().idle_pe_cycles, 3);
    }

    #[test]
    fn lb_phase_resets_phase_counters_and_updates_l() {
        let mut m = cm2(8);
        m.expansion_cycle(8);
        m.expansion_cycle(4);
        assert_eq!(m.phase().cycles, 2);
        assert_eq!(m.phase().idle_pe_cycles, 4);
        m.lb_phase(1, 4);
        assert_eq!(m.phase().cycles, 0);
        assert_eq!(m.metrics().n_lb, 1);
        assert_eq!(m.metrics().n_transfers, 4);
        assert_eq!(m.estimated_lb_cost(), CostModel::cm2().lb_phase_cost(8, 1));
    }

    #[test]
    fn fully_busy_run_has_perfect_efficiency() {
        let mut m = cm2(4);
        for _ in 0..10 {
            m.expansion_cycle(4);
        }
        let r = m.finish(40);
        assert_eq!(r.t_idle, 0);
        assert_eq!(r.t_lb, 0);
        assert!((r.efficiency - 1.0).abs() < 1e-12);
        assert!(r.accounting_identity_holds());
    }

    #[test]
    fn idle_time_reduces_efficiency() {
        let mut m = cm2(4);
        for _ in 0..10 {
            m.expansion_cycle(2); // half the machine idles
        }
        let r = m.finish(20);
        assert!((r.efficiency - 0.5).abs() < 1e-12, "E = {}", r.efficiency);
        assert!(r.accounting_identity_holds());
    }

    #[test]
    fn lb_time_reduces_efficiency() {
        let mut m = cm2(4);
        m.expansion_cycle(4);
        m.lb_phase(1, 2);
        let r = m.finish(4);
        let expect = r.t_calc as f64 / (r.t_calc + 4 * CostModel::cm2().lb_phase_cost(4, 1)) as f64;
        assert!((r.efficiency - expect).abs() < 1e-12);
        assert!(r.accounting_identity_holds());
    }

    #[test]
    fn trace_records_only_when_enabled() {
        let mut m = cm2(4);
        m.expansion_cycle(4);
        assert!(m.metrics().active_trace.is_empty());
        m.record_active_trace(true);
        m.expansion_cycle(3);
        m.expansion_cycle(1);
        let r = m.finish(8);
        assert_eq!(r.active_trace.to_vec(), vec![3, 1]);
    }

    #[test]
    fn batched_cycles_match_singles_exactly() {
        let mut batched = cm2(8);
        batched.record_active_trace(true);
        let mut singles = cm2(8);
        singles.record_active_trace(true);
        for &(busy, n) in &[(8usize, 3u64), (5, 1), (5, 4), (0, 2)] {
            batched.expansion_cycles_run(busy, n);
            for _ in 0..n {
                singles.expansion_cycle(busy);
            }
        }
        batched.lb_phase(1, 2);
        singles.lb_phase(1, 2);
        assert_eq!(batched.now(), singles.now());
        assert_eq!(batched.phase().cycles, singles.phase().cycles);
        let (rb, rs) = (batched.finish(33), singles.finish(33));
        assert_eq!(rb.n_expand, rs.n_expand);
        assert_eq!(rb.nodes_expanded, rs.nodes_expanded);
        assert_eq!(rb.t_idle, rs.t_idle);
        assert_eq!(rb.active_trace, rs.active_trace);
    }

    #[test]
    fn death_batches_match_per_cycle_singles_exactly() {
        // worked(j) = started - #{deaths < j}: replay the same step
        // function through both entry points and demand equality.
        let cases: &[(usize, u64, &[u64])] = &[
            (8, 5, &[]),           // nobody dies
            (8, 5, &[1, 1, 3, 5]), // deaths at both ends and a duplicate
            (3, 4, &[2, 2, 2]),    // whole ensemble drains mid-batch
            (1, 7, &[7]),          // lone PE works the full batch then dies
        ];
        for &(started, ran, deaths) in cases {
            let mut batched = cm2(8);
            batched.record_active_trace(true);
            let mut singles = cm2(8);
            singles.record_active_trace(true);
            batched.expansion_cycles_with_deaths(started, ran, deaths);
            for j in 1..=ran {
                let worked = started - deaths.iter().filter(|&&e| e < j).count();
                singles.expansion_cycle(worked);
            }
            assert_eq!(batched.now(), singles.now(), "{started}/{ran}/{deaths:?}");
            assert_eq!(batched.phase().cycles, singles.phase().cycles);
            assert_eq!(batched.phase().busy_pe_cycles, singles.phase().busy_pe_cycles);
            assert_eq!(batched.phase().idle_pe_cycles, singles.phase().idle_pe_cycles);
            let (rb, rs) = (batched.finish(99), singles.finish(99));
            assert_eq!(rb, rs, "{started}/{ran}/{deaths:?}");
        }
    }

    #[test]
    fn zero_length_batch_is_a_noop() {
        let mut m = cm2(4);
        m.expansion_cycles_run(3, 0);
        assert_eq!(m.now(), 0);
        assert_eq!(m.metrics().n_expand, 0);
    }

    #[test]
    fn phase_log_records_each_phase_when_tracing() {
        let mut m = cm2(8);
        m.record_active_trace(true);
        m.expansion_cycle(8);
        m.lb_phase(2, 5);
        m.expansion_cycle(6);
        m.lb_phase(1, 3);
        let r = m.finish(14);
        assert_eq!(r.phase_log.len(), 2);
        assert_eq!(r.phase_log[0].at_cycle, 1);
        assert_eq!(r.phase_log[0].rounds, 2);
        assert_eq!(r.phase_log[0].transfers, 5);
        assert_eq!(r.phase_log[0].cost, CostModel::cm2().lb_phase_cost(8, 2));
        assert_eq!(r.phase_log[1].at_cycle, 2);
    }

    #[test]
    fn phase_log_empty_without_tracing() {
        let mut m = cm2(4);
        m.expansion_cycle(4);
        m.lb_phase(1, 1);
        let r = m.finish(4);
        assert!(r.phase_log.is_empty());
    }

    #[test]
    fn speedup_equals_p_when_fully_efficient() {
        let mut m = cm2(16);
        for _ in 0..5 {
            m.expansion_cycle(16);
        }
        let r = m.finish(80);
        assert!((r.speedup() - 16.0).abs() < 1e-9);
    }

    #[test]
    #[should_panic(expected = "at least one processor")]
    fn zero_processors_rejected() {
        let _ = SimdMachine::new(0, CostModel::cm2());
    }

    #[test]
    #[should_panic(expected = "more busy PEs")]
    fn overfull_cycle_rejected() {
        cm2(2).expansion_cycle(3);
    }
}
