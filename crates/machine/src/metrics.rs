//! Run-long and phase-local counters, plus the run-length-encoded
//! active-processor trace.

use serde::{Deserialize, Serialize};

use crate::SimTime;

/// The Fig. 8 trace `A(t)`, run-length encoded as `(cycle, A)` breakpoints:
/// a breakpoint `(c, a)` means "from cycle `c` (0-based) until the next
/// breakpoint, `A = a`". The encoding is canonical — consecutive cycles
/// with equal `A` never produce two breakpoints — so the derived
/// `PartialEq` compares traces by value, and a full Fig. 4/7 sweep stores
/// one breakpoint per balancing phase instead of one word per cycle.
#[derive(Debug, Clone, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct ActiveTrace {
    breaks: Vec<(u64, u32)>,
    len: u64,
}

impl ActiveTrace {
    /// An empty trace.
    pub fn new() -> Self {
        Self::default()
    }

    /// Append one cycle with `a` active processors.
    pub fn push(&mut self, a: u32) {
        self.push_run(a, 1);
    }

    /// Append `n` consecutive cycles, all with `a` active processors.
    /// A macro-stepping engine records whole constant runs in O(1).
    pub fn push_run(&mut self, a: u32, n: u64) {
        if n == 0 {
            return;
        }
        if self.breaks.last().map(|&(_, v)| v) != Some(a) {
            self.breaks.push((self.len, a));
        }
        self.len += n;
    }

    /// Number of cycles recorded.
    #[allow(clippy::len_without_is_empty)]
    pub fn len(&self) -> u64 {
        self.len
    }

    /// Whether no cycle has been recorded.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// `A` at 0-based `cycle`, or `None` past the end.
    pub fn get(&self, cycle: u64) -> Option<u32> {
        if cycle >= self.len {
            return None;
        }
        let idx = match self.breaks.binary_search_by_key(&cycle, |&(c, _)| c) {
            Ok(i) => i,
            Err(i) => i - 1, // a breakpoint at cycle 0 always exists
        };
        Some(self.breaks[idx].1)
    }

    /// The raw `(cycle, A)` breakpoints (ascending, first at cycle 0).
    pub fn breakpoints(&self) -> &[(u64, u32)] {
        &self.breaks
    }

    /// Rebuild a trace from its breakpoint encoding and total length — the
    /// checkpoint-resume inverse of [`ActiveTrace::breakpoints`] /
    /// [`ActiveTrace::len`]. The input must be a *canonical* encoding
    /// (ascending cycles starting at 0, no two consecutive breakpoints
    /// with equal `A`, empty iff `len == 0`), which is what a recorded
    /// trace always serializes to; a resumed trace then continues to
    /// compare equal to an uninterrupted one.
    ///
    /// # Panics
    /// Panics if the encoding is not canonical.
    pub fn from_breakpoints(breaks: Vec<(u64, u32)>, len: u64) -> Self {
        assert_eq!(breaks.is_empty(), len == 0, "breakpoints iff cycles");
        if let Some(&(first, _)) = breaks.first() {
            assert_eq!(first, 0, "first breakpoint sits at cycle 0");
        }
        assert!(
            breaks.windows(2).all(|w| w[0].0 < w[1].0 && w[0].1 != w[1].1),
            "breakpoints must be ascending with distinct consecutive values"
        );
        assert!(breaks.last().is_none_or(|&(c, _)| c < len), "breakpoints lie within len");
        Self { breaks, len }
    }

    /// Iterate the constant runs as `(start_cycle, run_length, a)`.
    pub fn runs(&self) -> impl Iterator<Item = (u64, u64, u32)> + '_ {
        self.breaks.iter().enumerate().map(|(i, &(c, a))| {
            let end = self.breaks.get(i + 1).map_or(self.len, |&(c2, _)| c2);
            (c, end - c, a)
        })
    }

    /// Iterate per-cycle values (decompressed view, one `u32` per cycle).
    pub fn iter(&self) -> impl Iterator<Item = u32> + '_ {
        self.runs().flat_map(|(_, n, a)| std::iter::repeat_n(a, n as usize))
    }

    /// Decompress to one value per cycle (test/plotting helper).
    pub fn to_vec(&self) -> Vec<u32> {
        self.iter().collect()
    }
}

impl FromIterator<u32> for ActiveTrace {
    fn from_iter<I: IntoIterator<Item = u32>>(iter: I) -> Self {
        let mut t = Self::new();
        for a in iter {
            t.push(a);
        }
        t
    }
}

/// One load-balancing phase, as recorded in the phase log (when tracing
/// is enabled): when it happened, what it moved, what it cost.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct PhaseEvent {
    /// Expansion-cycle index after which the phase ran.
    pub at_cycle: u64,
    /// Match+transfer rounds in the phase.
    pub rounds: u32,
    /// Work transfers performed.
    pub transfers: u64,
    /// Machine-time cost of the phase.
    pub cost: SimTime,
}

/// Counters accumulated over the whole run.
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct Metrics {
    /// Node-expansion cycles executed (`N_expand`).
    pub n_expand: u64,
    /// Load-balancing phases executed (`N_lb`).
    pub n_lb: u64,
    /// Individual work transfers performed (`*N_lb` of Table 4; ≥ `n_lb`
    /// when a phase feeds several idle PEs, which is the normal case).
    pub n_transfers: u64,
    /// Total nodes expanded by the parallel search.
    pub nodes_expanded: u64,
    /// Σ over cycles of the busy-PE count.
    pub busy_pe_cycles: u64,
    /// Σ over cycles of the idle-PE count (becomes `T_idle` × `1/U_calc`).
    pub idle_pe_cycles: u64,
    /// Machine-time (not PE-time) spent in balancing phases.
    pub t_lb_machine: SimTime,
    /// Whether to record `active_trace` and `phase_log`.
    pub trace_enabled: bool,
    /// Busy-PE count per expansion cycle (Fig. 8), if enabled; run-length
    /// encoded.
    pub active_trace: ActiveTrace,
    /// One entry per balancing phase, if enabled.
    pub phase_log: Vec<PhaseEvent>,
}

/// Counters since the start of the current search phase, from which the
/// dynamic triggers are computed:
///
/// * DP (eq. 2): `w = busy_pe_cycles * U_calc`, `t = cycles * U_calc`;
/// * DK (eq. 4): `w_idle = idle_pe_cycles * U_calc`.
#[derive(Debug, Clone, Copy, Default, Serialize, Deserialize)]
pub struct PhaseStats {
    /// Expansion cycles since the last balancing phase.
    pub cycles: u64,
    /// Σ busy-PE counts over those cycles.
    pub busy_pe_cycles: u64,
    /// Σ idle-PE counts over those cycles.
    pub idle_pe_cycles: u64,
}

impl PhaseStats {
    /// The paper's `w`: work done this search phase, in PE-time units
    /// (multiply by `U_calc`).
    pub fn work_pe_cycles(&self) -> u64 {
        self.busy_pe_cycles
    }

    /// The paper's `w_idle` in PE-cycles (multiply by `U_calc` for PE-time).
    pub fn idle_pe_cycles(&self) -> u64 {
        self.idle_pe_cycles
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_are_zero() {
        let m = Metrics::default();
        assert_eq!(m.n_expand, 0);
        assert_eq!(m.n_lb, 0);
        assert!(m.active_trace.is_empty());
        let p = PhaseStats::default();
        assert_eq!(p.work_pe_cycles(), 0);
        assert_eq!(p.idle_pe_cycles(), 0);
    }

    #[test]
    fn trace_round_trips_per_cycle_values() {
        let vals = [3u32, 3, 3, 1, 1, 4, 4, 4, 4, 0];
        let t: ActiveTrace = vals.iter().copied().collect();
        assert_eq!(t.len(), vals.len() as u64);
        assert_eq!(t.to_vec(), vals);
        for (i, &v) in vals.iter().enumerate() {
            assert_eq!(t.get(i as u64), Some(v), "cycle {i}");
        }
        assert_eq!(t.get(vals.len() as u64), None);
    }

    #[test]
    fn encoding_is_canonical_so_eq_is_by_value() {
        // Same per-cycle values through different push patterns must
        // compare equal (the equivalence suite relies on this).
        let mut a = ActiveTrace::new();
        a.push_run(5, 3);
        a.push_run(5, 2);
        a.push(2);
        let mut b = ActiveTrace::new();
        for v in [5, 5, 5, 5, 5, 2] {
            b.push(v);
        }
        assert_eq!(a, b);
        assert_eq!(a.breakpoints(), &[(0, 5), (5, 2)]);
    }

    #[test]
    fn runs_partition_the_trace() {
        let t: ActiveTrace = [7u32, 7, 1, 1, 1, 9].iter().copied().collect();
        let runs: Vec<_> = t.runs().collect();
        assert_eq!(runs, vec![(0, 2, 7), (2, 3, 1), (5, 1, 9)]);
        assert_eq!(runs.iter().map(|&(_, n, _)| n).sum::<u64>(), t.len());
    }

    #[test]
    fn zero_length_run_is_a_noop() {
        let mut t = ActiveTrace::new();
        t.push_run(4, 0);
        assert!(t.is_empty());
        assert!(t.breakpoints().is_empty());
        t.push_run(4, 2);
        t.push_run(9, 0);
        t.push_run(4, 1);
        assert_eq!(t.breakpoints(), &[(0, 4)], "empty run must not split a constant run");
        assert_eq!(t.len(), 3);
    }
}
