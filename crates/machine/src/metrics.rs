//! Run-long and phase-local counters.

use serde::{Deserialize, Serialize};

use crate::SimTime;

/// One load-balancing phase, as recorded in the phase log (when tracing
/// is enabled): when it happened, what it moved, what it cost.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct PhaseEvent {
    /// Expansion-cycle index after which the phase ran.
    pub at_cycle: u64,
    /// Match+transfer rounds in the phase.
    pub rounds: u32,
    /// Work transfers performed.
    pub transfers: u64,
    /// Machine-time cost of the phase.
    pub cost: SimTime,
}

/// Counters accumulated over the whole run.
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct Metrics {
    /// Node-expansion cycles executed (`N_expand`).
    pub n_expand: u64,
    /// Load-balancing phases executed (`N_lb`).
    pub n_lb: u64,
    /// Individual work transfers performed (`*N_lb` of Table 4; ≥ `n_lb`
    /// when a phase feeds several idle PEs, which is the normal case).
    pub n_transfers: u64,
    /// Total nodes expanded by the parallel search.
    pub nodes_expanded: u64,
    /// Σ over cycles of the busy-PE count.
    pub busy_pe_cycles: u64,
    /// Σ over cycles of the idle-PE count (becomes `T_idle` × `1/U_calc`).
    pub idle_pe_cycles: u64,
    /// Machine-time (not PE-time) spent in balancing phases.
    pub t_lb_machine: SimTime,
    /// Whether to record `active_trace` and `phase_log`.
    pub trace_enabled: bool,
    /// Busy-PE count per expansion cycle (Fig. 8), if enabled.
    pub active_trace: Vec<u32>,
    /// One entry per balancing phase, if enabled.
    pub phase_log: Vec<PhaseEvent>,
}

/// Counters since the start of the current search phase, from which the
/// dynamic triggers are computed:
///
/// * DP (eq. 2): `w = busy_pe_cycles * U_calc`, `t = cycles * U_calc`;
/// * DK (eq. 4): `w_idle = idle_pe_cycles * U_calc`.
#[derive(Debug, Clone, Copy, Default, Serialize, Deserialize)]
pub struct PhaseStats {
    /// Expansion cycles since the last balancing phase.
    pub cycles: u64,
    /// Σ busy-PE counts over those cycles.
    pub busy_pe_cycles: u64,
    /// Σ idle-PE counts over those cycles.
    pub idle_pe_cycles: u64,
}

impl PhaseStats {
    /// The paper's `w`: work done this search phase, in PE-time units
    /// (multiply by `U_calc`).
    pub fn work_pe_cycles(&self) -> u64 {
        self.busy_pe_cycles
    }

    /// The paper's `w_idle` in PE-cycles (multiply by `U_calc` for PE-time).
    pub fn idle_pe_cycles(&self) -> u64 {
        self.idle_pe_cycles
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_are_zero() {
        let m = Metrics::default();
        assert_eq!(m.n_expand, 0);
        assert_eq!(m.n_lb, 0);
        assert!(m.active_trace.is_empty());
        let p = PhaseStats::default();
        assert_eq!(p.work_pe_cycles(), 0);
        assert_eq!(p.idle_pe_cycles(), 0);
    }
}
