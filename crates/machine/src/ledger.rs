//! The load-balance ledger: who donated, why each phase fired, what it
//! cost.
//!
//! The paper's headline mechanism — GP's global pointer "spreading the
//! donation burden evenly" over busy PEs (Sec. 2.2, Fig. 2) — and its
//! trigger analysis (Powley–Ferguson–Korf's eq. 2 vs the paper's eq. 4)
//! are claims about *per-PE* and *per-phase* behaviour that the aggregate
//! [`crate::Report`] cannot verify at machine scale. The [`Ledger`] is the
//! opt-in measurement layer for those claims: per-PE donation and receipt
//! counts, one [`LbPhaseRecord`] per balancing phase capturing the trigger
//! operands at the firing cycle plus the event horizon covering that
//! checkpoint, and an exact setup/transfer/multiplier attribution of the
//! phase cost.
//!
//! The data types live here (not in `uts-core`) so analysis and export
//! code can consume a ledger without depending on the engine; `uts-core`
//! owns the recording. Every field is a pure function of the lockstep
//! schedule, so ledgers are bit-identical across all four engines and any
//! host thread count — the cross-engine differential suite enforces it.

use serde::{Deserialize, Serialize};

use crate::SimTime;

/// Which trigger condition caused a balancing phase.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum TriggerKind {
    /// The Sec. 7 init-phase protocol (distribute after every cycle until
    /// `init_fraction · P` processors hold work).
    Init,
    /// `S^x` (eq. 1), recorded with its precomputed integer boundary
    /// `⌊x·P⌋`: the phase fired because `A <= threshold`.
    Static {
        /// The integer threshold `⌊x·P⌋` shared by the trigger, the
        /// horizon precheck and the horizon bound.
        threshold: u32,
    },
    /// `D^P` (Powley/Ferguson/Korf, eq. 2): `w >= A·(t + L)`.
    Dp,
    /// `D^K` (the paper's eq. 4): `w_idle >= L·P`.
    Dk,
    /// FESS/FEGS: any processor idle.
    AnyIdle,
}

/// The trigger operands at the firing cycle — everything the trigger
/// comparison looked at, regardless of which condition fired. Times are
/// in virtual microseconds (PE-time), matching the paper's eq. 2/4
/// vocabulary.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct TriggerFiring {
    /// Which condition fired.
    pub kind: TriggerKind,
    /// Busy (splittable) processors `A` at the checkpoint.
    pub busy: u32,
    /// Idle (empty-stack) processors `I` at the checkpoint.
    pub idle: u32,
    /// `w` — work done this search phase, in PE-time.
    pub w: SimTime,
    /// `t` — elapsed search-phase time.
    pub t: SimTime,
    /// `w_idle` — idle PE-time accumulated this search phase.
    pub w_idle: SimTime,
    /// `L` — the machine's estimate of the next phase's cost.
    pub l_estimate: SimTime,
}

/// Exact attribution of one balancing phase's cost: the setup (scan /
/// matching) part, the transfer (routing) part, and the Table 5 cost
/// multiplier. Invariant: `(setup + transfer) * multiplier == total`,
/// where `total` is exactly what the machine charged
/// ([`crate::CostModel::lb_phase_cost`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct LbCostBreakdown {
    /// Setup cost over all rounds, before the multiplier.
    pub setup: SimTime,
    /// Transfer cost over all rounds, before the multiplier.
    pub transfer: SimTime,
    /// The configured phase-cost multiplier (Table 5).
    pub multiplier: u32,
    /// The phase cost the machine charged: `(setup + transfer) * multiplier`.
    pub total: SimTime,
}

/// One balancing phase, with full provenance: when it ran, why it fired,
/// the horizon the macro engine had proved for the step ending at this
/// checkpoint, what it moved and what it cost.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct LbPhaseRecord {
    /// Expansion-cycle index (`N_expand`) after which the phase ran.
    pub at_cycle: u64,
    /// The trigger condition and its operands at the firing cycle.
    pub firing: TriggerFiring,
    /// The event horizon covering the checkpoint at which the trigger
    /// fired — the sound no-fire window the macro engine had computed for
    /// the step ending here. Every engine records the same value (the
    /// single-cycle engines replay the macro engine's horizon schedule
    /// when the ledger is on), so this field is engine-invariant too.
    pub horizon: u64,
    /// Match+transfer rounds in the phase.
    pub rounds: u32,
    /// Work transfers performed.
    pub transfers: u64,
    /// Exact setup/transfer/multiplier attribution of the phase cost.
    pub cost: LbCostBreakdown,
}

/// Spread summary of the per-PE donation counts — the quantity GP exists
/// to flatten. `mean` and `max_over_mean` are taken over the PEs that
/// donated at least once: a perfectly fair rotation gives every donor
/// `n` or `n+1` donations (`max_over_mean <= 2` whenever anyone donated
/// twice), while nGP's fixed enumeration concentrates the burden on
/// low-index PEs and sends the ratio far above that.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct DonationSpread {
    /// Total donations (= the run's work-transfer count).
    pub total: u64,
    /// PEs that donated at least once.
    pub donors: usize,
    /// Largest per-PE donation count.
    pub max: u32,
    /// Mean donation count over the donors (0 if nobody donated).
    pub mean: f64,
    /// `max / mean` over the donors (0 if nobody donated).
    pub max_over_mean: f64,
    /// Gini coefficient over **all** `P` per-PE counts (0 = perfectly
    /// even, → 1 = one PE carries everything; 0 for an all-zero vector).
    pub gini: f64,
}

/// The opt-in load-balance ledger of one run: per-PE donation and receipt
/// counts plus one [`LbPhaseRecord`] per balancing phase. Derived
/// `PartialEq` compares every field — the differential suites assert
/// whole-ledger equality across engines and thread counts.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct Ledger {
    /// Donations made by each PE (indexed by PE; length `P`).
    pub donations: Vec<u32>,
    /// Work transfers received by each PE (indexed by PE; length `P`).
    pub receipts: Vec<u32>,
    /// One record per balancing phase, in schedule order.
    pub phases: Vec<LbPhaseRecord>,
}

impl Ledger {
    /// An empty ledger for a `p`-processor machine.
    pub fn new(p: usize) -> Self {
        Self { donations: vec![0; p], receipts: vec![0; p], phases: Vec::new() }
    }

    /// Total work transfers recorded (donations and receipts agree on it
    /// by construction — every transfer has one donor and one receiver).
    pub fn total_transfers(&self) -> u64 {
        self.donations.iter().map(|&d| d as u64).sum()
    }

    /// The donation-spread summary (see [`DonationSpread`]).
    pub fn donation_spread(&self) -> DonationSpread {
        let total = self.total_transfers();
        let donors = self.donations.iter().filter(|&&d| d > 0).count();
        let max = self.donations.iter().copied().max().unwrap_or(0);
        let mean = if donors == 0 { 0.0 } else { total as f64 / donors as f64 };
        let max_over_mean = if donors == 0 { 0.0 } else { max as f64 / mean };
        DonationSpread { total, donors, max, mean, max_over_mean, gini: gini(&self.donations) }
    }
}

/// Gini coefficient of a non-negative counter vector (0 for empty or
/// all-zero), via the sorted-rank formula. Self-contained so the machine
/// crate stays dependency-light; `uts_analysis::gini` is the same formula
/// with richer companions.
fn gini(counts: &[u32]) -> f64 {
    let n = counts.len();
    if n == 0 {
        return 0.0;
    }
    let total: u64 = counts.iter().map(|&c| c as u64).sum();
    if total == 0 {
        return 0.0;
    }
    let mut sorted: Vec<u32> = counts.to_vec();
    sorted.sort_unstable();
    let weighted: f64 = sorted.iter().enumerate().map(|(i, &x)| (i as f64 + 1.0) * x as f64).sum();
    (2.0 * weighted) / (n as f64 * total as f64) - (n as f64 + 1.0) / n as f64
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn new_ledger_is_empty() {
        let l = Ledger::new(4);
        assert_eq!(l.donations, vec![0; 4]);
        assert_eq!(l.receipts, vec![0; 4]);
        assert!(l.phases.is_empty());
        assert_eq!(l.total_transfers(), 0);
    }

    #[test]
    fn spread_of_no_donations_is_all_zero() {
        let s = Ledger::new(8).donation_spread();
        assert_eq!(s.total, 0);
        assert_eq!(s.donors, 0);
        assert_eq!(s.max, 0);
        assert_eq!(s.mean, 0.0);
        assert_eq!(s.max_over_mean, 0.0);
        assert_eq!(s.gini, 0.0);
    }

    #[test]
    fn even_rotation_has_unit_max_over_mean() {
        let mut l = Ledger::new(6);
        l.donations = vec![4, 4, 4, 4, 0, 0];
        let s = l.donation_spread();
        assert_eq!(s.total, 16);
        assert_eq!(s.donors, 4);
        assert_eq!(s.max, 4);
        assert!((s.mean - 4.0).abs() < 1e-12);
        assert!((s.max_over_mean - 1.0).abs() < 1e-12);
    }

    #[test]
    fn concentration_inflates_max_over_mean_and_gini() {
        let mut even = Ledger::new(8);
        even.donations = vec![3, 3, 3, 3, 3, 3, 0, 0];
        let mut skew = Ledger::new(8);
        skew.donations = vec![15, 1, 1, 1, 0, 0, 0, 0];
        let (se, ss) = (even.donation_spread(), skew.donation_spread());
        assert_eq!(se.total, ss.total, "same burden, different spread");
        assert!(ss.max_over_mean > 3.0, "{}", ss.max_over_mean);
        assert!(se.max_over_mean < 1.5, "{}", se.max_over_mean);
        assert!(ss.gini > se.gini);
    }

    #[test]
    fn cost_breakdown_invariant_shape() {
        let b = LbCostBreakdown { setup: 3, transfer: 10, multiplier: 2, total: 26 };
        assert_eq!((b.setup + b.transfer) * b.multiplier as u64, b.total);
    }
}
