//! Cost models: how long an expansion cycle and a balancing phase take.
//!
//! The paper's Sec. 3.3 derives the balancing-phase cost per architecture:
//!
//! * **CM-2** — setup (sum-scans) and transfer are both hardware-assisted
//!   large constants independent of `P`; `t_lb = O(1)`;
//! * **hypercube** — setup `O(log P)` (sum-scan), transfer `O(log^2 P)`
//!   (general permutation), so `t_lb = O(log^2 P)`;
//! * **mesh** — both `O(sqrt P)`, so `t_lb = O(sqrt P)`.
//!
//! Their measured CM-2 constants (Sec. 5) are `U_calc ≈ 30 ms` per expansion
//! cycle and `t_lb ≈ 13 ms` per balancing phase; Table 5 rescales `t_lb` by
//! 12× and 16× — here the [`CostModel::lb_multiplier`] knob.

use serde::{Deserialize, Serialize};

use crate::{LbCostBreakdown, SimTime, MICROS_PER_SEC};

/// Interconnect topology, which fixes the asymptotic shape of `t_lb(P)`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum Topology {
    /// CM-2-like: hardware scans and router make the phase cost a constant.
    Cm2,
    /// Hypercube: `t_lb = setup * log2(P) + transfer * log2(P)^2`.
    Hypercube,
    /// 2-D mesh: `t_lb = (setup + transfer) * sqrt(P)`.
    Mesh,
}

/// Machine timing parameters. All times in virtual microseconds.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct CostModel {
    /// Interconnect topology.
    pub topology: Topology,
    /// `U_calc`: one lockstep node-expansion cycle.
    pub u_calc: SimTime,
    /// `U_comm`: sending one node to a *neighbor* processor (used by the
    /// nearest-neighbor scheme of Sec. 8, not by scan-based matching).
    pub u_comm: SimTime,
    /// Setup cost unit of a balancing phase (matching via sum-scans).
    pub lb_setup: SimTime,
    /// Transfer cost unit of a balancing phase (moving the split stacks).
    pub lb_transfer: SimTime,
    /// Multiplier applied to the whole phase cost (Table 5 uses 12 and 16,
    /// simulated in the paper by "sending larger than necessary messages").
    pub lb_multiplier: u32,
}

impl CostModel {
    /// Parse a cost-model name — the shared grammar for the CLI and the
    /// job-server spec decoder.
    pub fn parse(s: &str) -> Result<Self, String> {
        match s {
            "cm2" => Ok(CostModel::cm2()),
            "hypercube" => Ok(CostModel::hypercube()),
            "mesh" => Ok(CostModel::mesh()),
            other => Err(format!("unknown cost model `{other}` (cm2|hypercube|mesh)")),
        }
    }

    /// The paper's measured CM-2 constants: 30 ms expansion cycles, 13 ms
    /// balancing phases (setup 3 ms + transfer 10 ms; the paper notes scans
    /// are "a lot smaller" than general communication).
    pub fn cm2() -> Self {
        Self {
            topology: Topology::Cm2,
            u_calc: 30 * MICROS_PER_SEC / 1000,
            u_comm: MICROS_PER_SEC / 1000,
            lb_setup: 3 * MICROS_PER_SEC / 1000,
            lb_transfer: 10 * MICROS_PER_SEC / 1000,
            lb_multiplier: 1,
        }
    }

    /// A hypercube (CM-5/nCUBE-like) model with per-hop costs; `t_lb` grows
    /// as `log^2 P`.
    pub fn hypercube() -> Self {
        Self {
            topology: Topology::Hypercube,
            u_calc: 30 * MICROS_PER_SEC / 1000,
            u_comm: MICROS_PER_SEC / 1000,
            lb_setup: MICROS_PER_SEC / 1000,
            lb_transfer: MICROS_PER_SEC / 1000,
            lb_multiplier: 1,
        }
    }

    /// A 2-D mesh model; `t_lb` grows as `sqrt P`.
    pub fn mesh() -> Self {
        Self {
            topology: Topology::Mesh,
            u_calc: 30 * MICROS_PER_SEC / 1000,
            u_comm: MICROS_PER_SEC / 1000,
            lb_setup: MICROS_PER_SEC / 1000,
            lb_transfer: MICROS_PER_SEC / 1000,
            lb_multiplier: 1,
        }
    }

    /// Return a copy with the balancing cost scaled by `k` (Table 5).
    pub fn with_lb_multiplier(mut self, k: u32) -> Self {
        self.lb_multiplier = k;
        self
    }

    /// Return a copy with a different expansion-cycle cost.
    pub fn with_u_calc(mut self, u_calc: SimTime) -> Self {
        self.u_calc = u_calc;
        self
    }

    /// Per-round (setup, transfer) cost parts for a phase on `p`
    /// processors, before rounds and the Table 5 multiplier are applied.
    ///
    /// Degenerate sizes clamp to `p.max(2)` on every size-dependent
    /// topology: a balancing phase needs a donor *and* a receiver, so a
    /// phase on fewer than 2 PEs can never be charged by the engine — the
    /// clamp only keeps `L` estimates (and direct cost-model queries)
    /// finite and non-zero instead of collapsing to 0 (mesh used to
    /// return 0 at `p = 0`) or `-inf` exponents (hypercube `log2(0)`).
    fn lb_round_parts(&self, p: usize) -> (SimTime, SimTime) {
        match self.topology {
            Topology::Cm2 => (self.lb_setup, self.lb_transfer),
            Topology::Hypercube => {
                let d = (p.max(2) as f64).log2().ceil() as u64;
                (self.lb_setup * d, self.lb_transfer * d * d)
            }
            Topology::Mesh => {
                let s = (p.max(2) as f64).sqrt().ceil() as u64;
                (self.lb_setup * s, self.lb_transfer * s)
            }
        }
    }

    /// Cost of one balancing phase on `p` processors containing `rounds`
    /// match+transfer rounds (each round is one setup scan set plus one
    /// routed transfer; single-transfer schemes have `rounds == 1`).
    /// Sizes below 2 clamp (see [`CostModel::lb_round_parts`]).
    ///
    /// # Panics
    /// Panics if `rounds == 0` — a phase with no rounds is an engine bug.
    pub fn lb_phase_cost(&self, p: usize, rounds: u32) -> SimTime {
        self.lb_phase_cost_breakdown(p, rounds).total
    }

    /// The same phase cost as [`CostModel::lb_phase_cost`], attributed
    /// exactly: `(setup + transfer) * multiplier == total`, with `setup`
    /// and `transfer` each already summed over all `rounds`.
    ///
    /// # Panics
    /// Panics if `rounds == 0` — a phase with no rounds is an engine bug.
    pub fn lb_phase_cost_breakdown(&self, p: usize, rounds: u32) -> LbCostBreakdown {
        assert!(rounds > 0, "a balancing phase must contain at least one round");
        let (setup_round, transfer_round) = self.lb_round_parts(p);
        let setup = setup_round * rounds as u64;
        let transfer = transfer_round * rounds as u64;
        LbCostBreakdown {
            setup,
            transfer,
            multiplier: self.lb_multiplier,
            total: (setup + transfer) * self.lb_multiplier as u64,
        }
    }

    /// The ratio `t_lb / U_calc` that eq. 18 (the optimal static trigger)
    /// depends on, for a single-round phase on `p` processors.
    pub fn lb_ratio(&self, p: usize) -> f64 {
        self.lb_phase_cost(p, 1) as f64 / self.u_calc as f64
    }

    /// Phase cost attribution with a *measured* transfer term: like
    /// [`CostModel::lb_phase_cost_breakdown`], but the transfer part is
    /// charged per actually-routed network step (`lb_transfer *
    /// route_steps`, where `route_steps` is `uts_net::RouteStats::steps`
    /// summed over the phase's rounds) instead of the closed-form
    /// per-round bound (`d^2` hypercube / `sqrt P` mesh / constant CM-2).
    /// The setup term stays closed-form — the sum-scan tree's depth is a
    /// property of the topology, not of the traffic. The sharded machine
    /// records this next to the closed-form breakdown so the ledger's
    /// guess and the routed measurement can be compared round-trip (the
    /// satellite bracket suite pins one against the other).
    ///
    /// # Panics
    /// Panics if `rounds == 0` — a phase with no rounds is an engine bug.
    pub fn measured_lb_cost_breakdown(
        &self,
        p: usize,
        rounds: u32,
        route_steps: u64,
    ) -> LbCostBreakdown {
        assert!(rounds > 0, "a balancing phase must contain at least one round");
        let (setup_round, _) = self.lb_round_parts(p);
        let setup = setup_round * rounds as u64;
        let transfer = self.lb_transfer * route_steps;
        LbCostBreakdown {
            setup,
            transfer,
            multiplier: self.lb_multiplier,
            total: (setup + transfer) * self.lb_multiplier as u64,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cm2_cost_is_constant_in_p() {
        let c = CostModel::cm2();
        assert_eq!(c.lb_phase_cost(64, 1), c.lb_phase_cost(65536, 1));
        assert_eq!(c.lb_phase_cost(8192, 1), 13_000);
        assert_eq!(c.u_calc, 30_000);
    }

    #[test]
    fn cm2_matches_paper_ratio() {
        // 13 ms / 30 ms ≈ 0.433 — the ratio behind Table 2's x_o column.
        let r = CostModel::cm2().lb_ratio(8192);
        assert!((r - 13.0 / 30.0).abs() < 1e-9);
    }

    #[test]
    fn hypercube_cost_grows_log_squared() {
        let c = CostModel::hypercube();
        let c64 = c.lb_phase_cost(64, 1); // d = 6
        let c4096 = c.lb_phase_cost(4096, 1); // d = 12
                                              // setup*d + transfer*d^2 with 1 ms unit costs:
                                              // 6+36=42 ms vs 12+144=156 ms.
        assert_eq!(c64, 42_000);
        assert_eq!(c4096, 156_000);
    }

    #[test]
    fn degenerate_sizes_clamp_to_two_processors() {
        // A balancing phase needs a donor and a receiver; sizes below 2
        // clamp rather than degenerating (mesh used to return 0 at p = 0).
        for c in [CostModel::cm2(), CostModel::hypercube(), CostModel::mesh()] {
            let floor = c.lb_phase_cost(2, 1);
            assert!(floor > 0, "{:?}", c.topology);
            assert_eq!(c.lb_phase_cost(0, 1), floor, "{:?}", c.topology);
            assert_eq!(c.lb_phase_cost(1, 1), floor, "{:?}", c.topology);
        }
    }

    #[test]
    fn breakdown_parts_sum_exactly_to_the_charged_cost() {
        for c in [
            CostModel::cm2(),
            CostModel::hypercube(),
            CostModel::mesh(),
            CostModel::cm2().with_lb_multiplier(16),
            CostModel::mesh().with_lb_multiplier(12),
        ] {
            for p in [0usize, 1, 2, 64, 100, 8192] {
                for rounds in [1u32, 3, 7] {
                    let b = c.lb_phase_cost_breakdown(p, rounds);
                    assert_eq!(
                        (b.setup + b.transfer) * b.multiplier as u64,
                        b.total,
                        "{:?} p={p} rounds={rounds}",
                        c.topology
                    );
                    assert_eq!(b.total, c.lb_phase_cost(p, rounds));
                    assert_eq!(b.multiplier, c.lb_multiplier);
                }
            }
        }
    }

    #[test]
    fn breakdown_separates_setup_from_transfer() {
        // CM-2: 3 ms setup + 10 ms transfer per round.
        let b = CostModel::cm2().lb_phase_cost_breakdown(8192, 2);
        assert_eq!(b.setup, 6_000);
        assert_eq!(b.transfer, 20_000);
        assert_eq!(b.total, 26_000);
        // Hypercube at d = 6: setup*6, transfer*36.
        let b = CostModel::hypercube().lb_phase_cost_breakdown(64, 1);
        assert_eq!(b.setup, 6_000);
        assert_eq!(b.transfer, 36_000);
    }

    #[test]
    fn mesh_cost_grows_sqrt() {
        let c = CostModel::mesh();
        assert_eq!(c.lb_phase_cost(100, 1) * 2, c.lb_phase_cost(400, 1));
    }

    #[test]
    fn multiplier_scales_linearly() {
        let c = CostModel::cm2();
        let c16 = c.with_lb_multiplier(16);
        assert_eq!(c16.lb_phase_cost(8192, 1), 16 * c.lb_phase_cost(8192, 1));
    }

    #[test]
    fn rounds_scale_linearly() {
        let c = CostModel::cm2();
        assert_eq!(c.lb_phase_cost(8192, 3), 3 * c.lb_phase_cost(8192, 1));
    }

    #[test]
    #[should_panic(expected = "at least one round")]
    fn zero_rounds_rejected() {
        CostModel::cm2().lb_phase_cost(8, 0);
    }

    #[test]
    fn measured_breakdown_keeps_setup_and_swaps_transfer() {
        // Hypercube at p = 64 (d = 6), one round: closed form charges
        // transfer * 36; a measured route of 9 steps charges transfer * 9.
        let c = CostModel::hypercube();
        let closed = c.lb_phase_cost_breakdown(64, 1);
        let measured = c.measured_lb_cost_breakdown(64, 1, 9);
        assert_eq!(measured.setup, closed.setup);
        assert_eq!(measured.transfer, 9 * c.lb_transfer);
        assert_eq!(measured.total, (measured.setup + measured.transfer) * c.lb_multiplier as u64);
    }

    #[test]
    fn measured_breakdown_applies_the_multiplier() {
        let c = CostModel::mesh().with_lb_multiplier(12);
        let b = c.measured_lb_cost_breakdown(100, 2, 30);
        assert_eq!(b.multiplier, 12);
        assert_eq!(b.total, (b.setup + b.transfer) * 12);
    }

    #[test]
    #[should_panic(expected = "at least one round")]
    fn measured_zero_rounds_rejected() {
        CostModel::cm2().measured_lb_cost_breakdown(8, 0, 5);
    }
}
