//! Property tests of the machine's time accounting: for *any* interleaving
//! of expansion cycles and balancing phases, the paper's Sec. 3.1
//! identities hold exactly.

use proptest::prelude::*;
use uts_machine::{CostModel, SimdMachine, Topology};

/// One simulated machine operation.
#[derive(Debug, Clone, Copy)]
enum Op {
    Cycle { busy_fraction: u8 },
    Balance { rounds: u8, transfers: u16 },
}

fn arb_op() -> impl Strategy<Value = Op> {
    prop_oneof![
        (0u8..=100).prop_map(|busy_fraction| Op::Cycle { busy_fraction }),
        (1u8..4, 0u16..500).prop_map(|(rounds, transfers)| Op::Balance { rounds, transfers }),
    ]
}

fn arb_cost() -> impl Strategy<Value = CostModel> {
    (0usize..3, 1u32..20).prop_map(|(topo, mult)| {
        let base = match topo {
            0 => CostModel::cm2(),
            1 => CostModel::hypercube(),
            _ => CostModel::mesh(),
        };
        base.with_lb_multiplier(mult)
    })
}

proptest! {
    /// P·T_par = T_calc + T_idle + T_lb for any op sequence, cost model
    /// and machine size (with W := nodes actually expanded).
    #[test]
    fn identity_holds_for_any_schedule(
        ops in proptest::collection::vec(arb_op(), 1..200),
        p_log in 0u32..14,
        cost in arb_cost(),
    ) {
        let p = 1usize << p_log;
        let mut m = SimdMachine::new(p, cost);
        let mut expect_cycles = 0u64;
        let mut expect_phases = 0u64;
        for op in &ops {
            match *op {
                Op::Cycle { busy_fraction } => {
                    let busy = (p * busy_fraction as usize) / 100;
                    m.expansion_cycle(busy);
                    expect_cycles += 1;
                }
                Op::Balance { rounds, transfers } => {
                    m.lb_phase(rounds as u32, transfers as u64);
                    expect_phases += 1;
                }
            }
        }
        let nodes = m.metrics().nodes_expanded;
        let r = m.finish(nodes);
        prop_assert_eq!(r.n_expand, expect_cycles);
        prop_assert_eq!(r.n_lb, expect_phases);
        prop_assert!(r.accounting_identity_holds());
        prop_assert!(r.efficiency >= 0.0 && r.efficiency <= 1.0 + 1e-12);
    }

    /// The clock is exactly the sum of the op costs, in any order.
    #[test]
    fn clock_is_sum_of_op_costs(
        ops in proptest::collection::vec(arb_op(), 0..100),
        cost in arb_cost(),
    ) {
        let p = 256usize;
        let mut m = SimdMachine::new(p, cost);
        let mut expect = 0u64;
        for op in &ops {
            match *op {
                Op::Cycle { busy_fraction } => {
                    m.expansion_cycle((p * busy_fraction as usize) / 100);
                    expect += cost.u_calc;
                }
                Op::Balance { rounds, transfers } => {
                    m.lb_phase(rounds as u32, transfers as u64);
                    expect += cost.lb_phase_cost(p, rounds as u32);
                }
            }
        }
        prop_assert_eq!(m.now(), expect);
    }

    /// Topology sanity across sizes: mesh phases dominate hypercube
    /// phases dominate CM-2 phases once the machine is large enough.
    #[test]
    fn topology_ordering_at_scale(p_log in 10u32..16) {
        let p = 1usize << p_log;
        let cm2 = CostModel::cm2().lb_phase_cost(p, 1);
        let hyper = CostModel::hypercube().lb_phase_cost(p, 1);
        let mesh = CostModel::mesh().lb_phase_cost(p, 1);
        prop_assert!(hyper > cm2, "hypercube {hyper} vs cm2 {cm2} at P={p}");
        prop_assert!(mesh > hyper / 10, "mesh {mesh} vs hypercube {hyper} at P={p}");
        // And the topology tags are as constructed.
        prop_assert_eq!(CostModel::mesh().topology, Topology::Mesh);
    }
}
