//! Property tests of the machine's time accounting: for *any* interleaving
//! of expansion cycles and balancing phases, the paper's Sec. 3.1
//! identities hold exactly.

use proptest::prelude::*;
use uts_machine::{CostModel, SimdMachine, Topology};

/// One simulated machine operation.
#[derive(Debug, Clone, Copy)]
enum Op {
    Cycle { busy_fraction: u8 },
    CycleRun { busy_fraction: u8, n: u8 },
    Balance { rounds: u8, transfers: u16 },
}

fn arb_op() -> impl Strategy<Value = Op> {
    prop_oneof![
        (0u8..=100).prop_map(|busy_fraction| Op::Cycle { busy_fraction }),
        (0u8..=100, 0u8..16).prop_map(|(busy_fraction, n)| Op::CycleRun { busy_fraction, n }),
        (1u8..4, 0u16..500).prop_map(|(rounds, transfers)| Op::Balance { rounds, transfers }),
    ]
}

fn arb_cost() -> impl Strategy<Value = CostModel> {
    (0usize..3, 1u32..20).prop_map(|(topo, mult)| {
        let base = match topo {
            0 => CostModel::cm2(),
            1 => CostModel::hypercube(),
            _ => CostModel::mesh(),
        };
        base.with_lb_multiplier(mult)
    })
}

proptest! {
    /// P·T_par = T_calc + T_idle + T_lb for any op sequence, cost model
    /// and machine size (with W := nodes actually expanded).
    #[test]
    fn identity_holds_for_any_schedule(
        ops in proptest::collection::vec(arb_op(), 1..200),
        p_log in 0u32..14,
        cost in arb_cost(),
    ) {
        let p = 1usize << p_log;
        let mut m = SimdMachine::new(p, cost);
        let mut expect_cycles = 0u64;
        let mut expect_phases = 0u64;
        for op in &ops {
            match *op {
                Op::Cycle { busy_fraction } => {
                    let busy = (p * busy_fraction as usize) / 100;
                    m.expansion_cycle(busy);
                    expect_cycles += 1;
                }
                Op::CycleRun { busy_fraction, n } => {
                    let busy = (p * busy_fraction as usize) / 100;
                    m.expansion_cycles_run(busy, n as u64);
                    expect_cycles += n as u64;
                }
                Op::Balance { rounds, transfers } => {
                    m.lb_phase(rounds as u32, transfers as u64);
                    expect_phases += 1;
                }
            }
        }
        let nodes = m.metrics().nodes_expanded;
        let r = m.finish(nodes);
        prop_assert_eq!(r.n_expand, expect_cycles);
        prop_assert_eq!(r.n_lb, expect_phases);
        prop_assert!(r.accounting_identity_holds());
        prop_assert!(r.efficiency >= 0.0 && r.efficiency <= 1.0 + 1e-12);
    }

    /// The clock is exactly the sum of the op costs, in any order.
    #[test]
    fn clock_is_sum_of_op_costs(
        ops in proptest::collection::vec(arb_op(), 0..100),
        cost in arb_cost(),
    ) {
        let p = 256usize;
        let mut m = SimdMachine::new(p, cost);
        let mut expect = 0u64;
        for op in &ops {
            match *op {
                Op::Cycle { busy_fraction } => {
                    m.expansion_cycle((p * busy_fraction as usize) / 100);
                    expect += cost.u_calc;
                }
                Op::CycleRun { busy_fraction, n } => {
                    m.expansion_cycles_run((p * busy_fraction as usize) / 100, n as u64);
                    expect += cost.u_calc * n as u64;
                }
                Op::Balance { rounds, transfers } => {
                    m.lb_phase(rounds as u32, transfers as u64);
                    expect += cost.lb_phase_cost(p, rounds as u32);
                }
            }
        }
        prop_assert_eq!(m.now(), expect);
    }

    /// Batched runs are observationally identical to the equivalent
    /// sequence of single cycles — same clock, counters, and RLE trace.
    #[test]
    fn batched_runs_equal_single_cycles(
        ops in proptest::collection::vec(arb_op(), 1..120),
        p_log in 0u32..10,
        cost in arb_cost(),
    ) {
        let p = 1usize << p_log;
        let mut batched = SimdMachine::new(p, cost);
        batched.record_active_trace(true);
        let mut singles = SimdMachine::new(p, cost);
        singles.record_active_trace(true);
        for op in &ops {
            match *op {
                Op::Cycle { busy_fraction } => {
                    let busy = (p * busy_fraction as usize) / 100;
                    batched.expansion_cycle(busy);
                    singles.expansion_cycle(busy);
                }
                Op::CycleRun { busy_fraction, n } => {
                    let busy = (p * busy_fraction as usize) / 100;
                    batched.expansion_cycles_run(busy, n as u64);
                    for _ in 0..n {
                        singles.expansion_cycle(busy);
                    }
                }
                Op::Balance { rounds, transfers } => {
                    batched.lb_phase(rounds as u32, transfers as u64);
                    singles.lb_phase(rounds as u32, transfers as u64);
                }
            }
        }
        prop_assert_eq!(batched.now(), singles.now());
        prop_assert_eq!(batched.phase().cycles, singles.phase().cycles);
        prop_assert_eq!(batched.phase().busy_pe_cycles, singles.phase().busy_pe_cycles);
        prop_assert_eq!(batched.phase().idle_pe_cycles, singles.phase().idle_pe_cycles);
        let w = batched.metrics().nodes_expanded;
        let (rb, rs) = (batched.finish(w), singles.finish(w));
        prop_assert_eq!(rb.n_expand, rs.n_expand);
        prop_assert_eq!(rb.t_idle, rs.t_idle);
        prop_assert_eq!(rb.t_par, rs.t_par);
        prop_assert_eq!(rb.active_trace, rs.active_trace);
        prop_assert_eq!(rb.phase_log, rs.phase_log);
    }

    /// Topology sanity across sizes: mesh phases dominate hypercube
    /// phases dominate CM-2 phases once the machine is large enough.
    #[test]
    fn topology_ordering_at_scale(p_log in 10u32..16) {
        let p = 1usize << p_log;
        let cm2 = CostModel::cm2().lb_phase_cost(p, 1);
        let hyper = CostModel::hypercube().lb_phase_cost(p, 1);
        let mesh = CostModel::mesh().lb_phase_cost(p, 1);
        prop_assert!(hyper > cm2, "hypercube {hyper} vs cm2 {cm2} at P={p}");
        prop_assert!(mesh > hyper / 10, "mesh {mesh} vs hypercube {hyper} at P={p}");
        // And the topology tags are as constructed.
        prop_assert_eq!(CostModel::mesh().topology, Topology::Mesh);
    }
}
