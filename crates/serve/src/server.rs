//! The job server: bounded runner slots + preemptive checkpoint
//! scheduling over a durable spill directory.
//!
//! ## Scheduling
//!
//! `slots` runner threads drain a FIFO run queue ([`crate::jobs::JobTable`]).
//! A governor thread watches the queue: whenever claimable jobs are
//! waiting and a running job has held its slot longer than
//! `quantum_ms`, the governor raises that job's [`PreemptSignal`]. The
//! engine observes the signal at its next macro-step boundary, force-
//! snapshots, and returns `killed`; the runner parks the snapshot bytes
//! to the spill directory and re-queues the job at the tail. Because a
//! slice always completes at least one macro-step before parking, every
//! job makes progress on every claim — combined with FIFO requeueing, no
//! job starves.
//!
//! ## Why results stay bit-identical
//!
//! Parking reuses the PR 5 snapshot container unchanged: the forced
//! snapshot is a complete engine state at a macro-step boundary, and
//! resuming continues the boundary numbering as if nothing happened. The
//! scheduler adds no state of its own to the run — a job parked seven
//! times produces the same [`Outcome`] bytes as one uninterrupted
//! `run_with`, which the stress suite asserts through the HTTP API via
//! [`crate::spec::outcome_digest`].
//!
//! ## Durability
//!
//! Every job leaves an atomic-write trail in the spill directory —
//! `job-{id:08}.spec` (the submitted body, written before the submit
//! response), `.park` (latest parked snapshot), `.done` (result
//! document), `.cancelled` (marker) — so [`JobServer::start`] over an
//! existing directory recovers every job: finished jobs serve their
//! stored results, parked jobs resume from their snapshots, queued jobs
//! restart from scratch. [`JobServer::kill`] simulates a crash (threads
//! abandon without writing); [`JobServer::shutdown`] parks everything
//! gracefully first.

use std::collections::HashMap;
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Condvar, Mutex, MutexGuard};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

use uts_ckpt::{spill, PreemptSignal};

use crate::error::ServeError;
use crate::http::{read_request, write_response, Request};
use crate::jobs::{JobState, JobTable};
use crate::spec::{outcome_digest, JobSpec};

/// Server knobs.
#[derive(Debug, Clone)]
pub struct ServeConfig {
    /// Bind address; use port 0 for an ephemeral port.
    pub addr: String,
    /// Concurrent runner slots.
    pub slots: usize,
    /// Durable spill directory (specs, parked snapshots, results).
    pub spill_dir: PathBuf,
    /// Minimum uninterrupted slice a running job gets while others wait;
    /// `0` preempts at the very next boundary whenever the queue is
    /// non-empty.
    pub quantum_ms: u64,
    /// Governor poll interval.
    pub poll_ms: u64,
}

impl ServeConfig {
    /// Defaults: ephemeral loopback port, 2 slots, 50 ms quantum, 5 ms
    /// governor poll.
    pub fn new(spill_dir: impl Into<PathBuf>) -> Self {
        Self {
            addr: "127.0.0.1:0".into(),
            slots: 2,
            spill_dir: spill_dir.into(),
            quantum_ms: 50,
            poll_ms: 5,
        }
    }
}

/// A running job's slot-side handles.
struct RunningJob {
    signal: PreemptSignal,
    started: Instant,
}

/// Everything behind the state lock.
#[derive(Default)]
struct ServerState {
    table: JobTable,
    specs: HashMap<u64, Arc<JobSpec>>,
    running: HashMap<u64, RunningJob>,
    results: HashMap<u64, Arc<String>>,
    errors: HashMap<u64, ServeError>,
}

struct Shared {
    cfg: ServeConfig,
    state: Mutex<ServerState>,
    work: Condvar,
    stop: AtomicBool,
    crash: AtomicBool,
}

impl Shared {
    fn lock(&self) -> MutexGuard<'_, ServerState> {
        self.state.lock().expect("server state poisoned")
    }

    fn halted(&self) -> bool {
        self.stop.load(Ordering::Acquire) || self.crash.load(Ordering::Acquire)
    }
}

fn spec_path(dir: &Path, id: u64) -> PathBuf {
    dir.join(format!("job-{id:08}.spec"))
}

fn done_path(dir: &Path, id: u64) -> PathBuf {
    dir.join(format!("job-{id:08}.done"))
}

fn cancelled_path(dir: &Path, id: u64) -> PathBuf {
    dir.join(format!("job-{id:08}.cancelled"))
}

/// The job server. Dropping it without [`JobServer::shutdown`] behaves
/// like [`JobServer::kill`] — a crash.
pub struct JobServer {
    addr: SocketAddr,
    shared: Arc<Shared>,
    threads: Vec<JoinHandle<()>>,
}

impl JobServer {
    /// Bind, recover any jobs left in the spill directory, and start the
    /// runner/governor/acceptor threads.
    pub fn start(cfg: ServeConfig) -> std::io::Result<JobServer> {
        std::fs::create_dir_all(&cfg.spill_dir)?;
        let listener = TcpListener::bind(&cfg.addr)?;
        let addr = listener.local_addr()?;

        let mut state = ServerState::default();
        recover(&cfg.spill_dir, &mut state)?;

        let shared = Arc::new(Shared {
            cfg,
            state: Mutex::new(state),
            work: Condvar::new(),
            stop: AtomicBool::new(false),
            crash: AtomicBool::new(false),
        });

        let mut threads = Vec::new();
        for _ in 0..shared.cfg.slots.max(1) {
            let sh = Arc::clone(&shared);
            threads.push(std::thread::spawn(move || runner_loop(&sh)));
        }
        {
            let sh = Arc::clone(&shared);
            threads.push(std::thread::spawn(move || governor_loop(&sh)));
        }
        {
            let sh = Arc::clone(&shared);
            threads.push(std::thread::spawn(move || acceptor_loop(&sh, listener)));
        }
        Ok(JobServer { addr, shared, threads })
    }

    /// The bound address (resolve the ephemeral port here).
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// Simulated crash: threads abandon immediately, nothing further is
    /// written to the spill directory. In-flight slices are lost; their
    /// jobs recover from their last parked snapshot (or from scratch) on
    /// the next [`JobServer::start`] over the same directory.
    pub fn kill(mut self) {
        self.shared.crash.store(true, Ordering::Release);
        self.halt_threads();
    }

    /// Graceful shutdown: running jobs are preempted so their latest
    /// state parks to disk, then all threads join.
    pub fn shutdown(mut self) {
        self.shared.stop.store(true, Ordering::Release);
        self.halt_threads();
    }

    fn halt_threads(&mut self) {
        {
            let st = self.shared.lock();
            for rj in st.running.values() {
                rj.signal.raise();
            }
        }
        self.shared.work.notify_all();
        // Unblock the acceptor's blocking `accept`.
        let _ = TcpStream::connect(self.addr);
        for t in self.threads.drain(..) {
            let _ = t.join();
        }
    }
}

impl Drop for JobServer {
    fn drop(&mut self) {
        if !self.threads.is_empty() {
            self.shared.crash.store(true, Ordering::Release);
            self.halt_threads();
        }
    }
}

/// Rebuild the job table from a spill directory's file trail.
fn recover(dir: &Path, state: &mut ServerState) -> std::io::Result<()> {
    let entries = match std::fs::read_dir(dir) {
        Err(e) if e.kind() == std::io::ErrorKind::NotFound => return Ok(()),
        other => other?,
    };
    let mut ids = Vec::new();
    for entry in entries {
        let name = entry?.file_name();
        let Some(name) = name.to_str() else { continue };
        if let Some(id) = name.strip_prefix("job-").and_then(|s| s.strip_suffix(".spec")) {
            if let Ok(id) = id.parse::<u64>() {
                ids.push(id);
            }
        }
    }
    ids.sort_unstable();
    for id in ids {
        let body = std::fs::read_to_string(spec_path(dir, id))?;
        let spec = match JobSpec::parse(&body) {
            Ok(spec) => spec,
            Err(err) => {
                // A spec this server once accepted no longer parses —
                // surface it as a failed job rather than dropping it.
                state.table.restore(id, JobState::Failed, 0);
                state.errors.insert(id, ServeError::Spill(format!("unreadable spec: {err}")));
                continue;
            }
        };
        let recovered_state = if done_path(dir, id).exists() {
            match std::fs::read_to_string(done_path(dir, id)) {
                Ok(doc) => {
                    state.results.insert(id, Arc::new(doc));
                    JobState::Done
                }
                Err(e) => {
                    state.errors.insert(id, ServeError::Spill(format!("unreadable result: {e}")));
                    JobState::Failed
                }
            }
        } else if cancelled_path(dir, id).exists() {
            JobState::Cancelled
        } else if spill::park_path(dir, id).exists() {
            JobState::Parked
        } else {
            JobState::Queued
        };
        state.table.restore(id, recovered_state, 0);
        state.specs.insert(id, Arc::new(spec));
    }
    Ok(())
}

fn runner_loop(shared: &Shared) {
    let dir = shared.cfg.spill_dir.clone();
    loop {
        // Claim the next job (or halt).
        let (id, spec, signal, was_parked) = {
            let mut st = shared.lock();
            loop {
                if shared.halted() {
                    return;
                }
                if let Some(id) = st.table.claim_next() {
                    // Whether to resume comes from the spill file, not the
                    // in-memory preemption count — recovery resets the
                    // counters but keeps park files.
                    let parked = spill::park_path(&dir, id).exists();
                    let spec = Arc::clone(st.specs.get(&id).expect("claimed jobs have specs"));
                    let signal = PreemptSignal::new();
                    let started = Instant::now();
                    st.running.insert(id, RunningJob { signal: signal.clone(), started });
                    // A cancel that arrived while the job was queued past
                    // its claim would be lost; re-raise for ones flagged
                    // mid-claim.
                    if st.table.get(id).expect("claimed").cancel_requested {
                        signal.raise();
                    }
                    break (id, spec, signal, parked);
                }
                st = shared.work.wait(st).expect("server state poisoned");
            }
        };

        // Long part, outside the lock: read the snapshot and run the
        // slice until completion or the next boundary after a preempt.
        let parked_bytes = if was_parked {
            match spill::unpark(&dir, id) {
                Ok(bytes) => Some(bytes),
                Err(e) => {
                    let mut st = shared.lock();
                    st.table.fail(id);
                    st.errors.insert(id, ServeError::Spill(format!("unpark: {e}")));
                    st.running.remove(&id);
                    shared.work.notify_all();
                    continue;
                }
            }
        } else {
            None
        };
        let slice = spec.run_slice(parked_bytes.as_deref(), &signal);

        // Publish the slice's result. Disk writes happen under the lock,
        // after the crash check: a killed server writes nothing more.
        let mut st = shared.lock();
        if shared.crash.load(Ordering::Acquire) {
            return;
        }
        match slice {
            Err(err) => {
                st.table.fail(id);
                st.errors.insert(id, ServeError::from_ckpt(err));
            }
            Ok((_out, Some(bytes))) => {
                if st.table.get(id).expect("running").cancel_requested {
                    st.table.finish_cancelled(id);
                    let _ = spill::write_atomic(&cancelled_path(&dir, id), b"cancelled\n");
                    let _ = spill::clear(&dir, id);
                } else {
                    match spill::park(&dir, id, &bytes) {
                        Ok(_) => {
                            st.table.park(id);
                        }
                        Err(e) => {
                            st.table.fail(id);
                            st.errors.insert(id, ServeError::Spill(format!("park: {e}")));
                        }
                    }
                }
            }
            Ok((out, None)) => {
                let preemptions = st.table.get(id).expect("running").preemptions;
                let doc = Arc::new(result_doc(id, preemptions, &out));
                match spill::write_atomic(&done_path(&dir, id), doc.as_bytes()) {
                    Ok(()) => {
                        st.results.insert(id, Arc::clone(&doc));
                        st.table.complete(id);
                        let _ = spill::clear(&dir, id);
                    }
                    Err(e) => {
                        st.table.fail(id);
                        st.errors.insert(id, ServeError::Spill(format!("store result: {e}")));
                    }
                }
            }
        }
        st.running.remove(&id);
        drop(st);
        shared.work.notify_all();
    }
}

fn governor_loop(shared: &Shared) {
    let quantum = Duration::from_millis(shared.cfg.quantum_ms);
    loop {
        std::thread::sleep(Duration::from_millis(shared.cfg.poll_ms.max(1)));
        if shared.halted() {
            return;
        }
        let st = shared.lock();
        if st.table.waiting() == 0 {
            continue;
        }
        for rj in st.running.values() {
            if rj.started.elapsed() >= quantum {
                rj.signal.raise();
            }
        }
    }
}

fn acceptor_loop(shared: &Arc<Shared>, listener: TcpListener) {
    for stream in listener.incoming() {
        if shared.halted() {
            return;
        }
        let Ok(stream) = stream else { continue };
        let sh = Arc::clone(shared);
        std::thread::spawn(move || {
            let mut stream = stream;
            let (status, body) = match read_request(&mut stream) {
                Err(e) => (e.status(), e.body()),
                Ok(req) => match route(&sh, &req) {
                    Ok(body) => (200, body),
                    Err(e) => (e.status(), e.body()),
                },
            };
            let _ = write_response(&mut stream, status, &body);
        });
    }
}

/// Dispatch one request to its endpoint.
fn route(shared: &Shared, req: &Request) -> Result<String, ServeError> {
    let segments: Vec<&str> = req.path.trim_matches('/').split('/').collect();
    match (req.method.as_str(), segments.as_slice()) {
        ("POST", ["submit"]) => submit(shared, &req.body),
        ("GET", ["status", id]) => status(shared, parse_id(id)?),
        ("GET", ["result", id]) => result(shared, parse_id(id)?),
        ("POST", ["cancel", id]) => cancel(shared, parse_id(id)?),
        ("GET", ["jobs"]) => jobs(shared),
        _ => Err(ServeError::Proto(format!("no endpoint {} {}", req.method, req.path))),
    }
}

fn parse_id(raw: &str) -> Result<u64, ServeError> {
    raw.parse().map_err(|_| ServeError::Proto(format!("bad job id `{raw}`")))
}

fn submit(shared: &Shared, body: &str) -> Result<String, ServeError> {
    let spec = JobSpec::parse(body)?;
    let mut st = shared.lock();
    let id = st.table.submit();
    // Durable before acknowledged: the spec hits disk before the client
    // learns the id, so an acked job survives any crash.
    spill::write_atomic(&spec_path(&shared.cfg.spill_dir, id), body.as_bytes())
        .map_err(|e| ServeError::Spill(format!("store spec: {e}")))?;
    st.specs.insert(id, Arc::new(spec));
    drop(st);
    shared.work.notify_all();
    Ok(format!(r#"{{"job":{id}}}"#))
}

fn status(shared: &Shared, id: u64) -> Result<String, ServeError> {
    let st = shared.lock();
    let job = st.table.get(id).ok_or(ServeError::UnknownJob(id))?;
    let spec = st.specs.get(&id);
    Ok(format!(
        "{{\n  \"job\": {},\n  \"state\": \"{}\",\n  \"preemptions\": {},\n  \"cancel_requested\": {},\n  \"config_fnv\": \"{}\"\n}}\n",
        job.id,
        job.state.name(),
        job.preemptions,
        job.cancel_requested,
        spec.map_or_else(|| "unknown".to_string(), |s| format!("{:#018x}", s.fingerprint())),
    ))
}

fn result(shared: &Shared, id: u64) -> Result<String, ServeError> {
    let st = shared.lock();
    let job = st.table.get(id).ok_or(ServeError::UnknownJob(id))?;
    match job.state {
        JobState::Done => Ok(st.results.get(&id).expect("done jobs have results").to_string()),
        JobState::Failed => Err(st.errors.get(&id).cloned().unwrap_or_else(|| {
            ServeError::Spill(format!("job {id} failed without a recorded error"))
        })),
        _ => Err(ServeError::NotReady(id)),
    }
}

fn cancel(shared: &Shared, id: u64) -> Result<String, ServeError> {
    let mut st = shared.lock();
    let state = st.table.cancel(id).ok_or(ServeError::UnknownJob(id))?;
    match state {
        JobState::Cancelled => {
            // Left the queue just now (or was already cancelled): make it
            // durable so a restart does not resurrect the job.
            let dir = &shared.cfg.spill_dir;
            let _ = spill::write_atomic(&cancelled_path(dir, id), b"cancelled\n");
            let _ = spill::clear(dir, id);
        }
        JobState::Running => {
            if let Some(rj) = st.running.get(&id) {
                rj.signal.raise();
            }
        }
        _ => {}
    }
    Ok(format!(r#"{{"job":{id},"state":"{}"}}"#, state.name()))
}

fn jobs(shared: &Shared) -> Result<String, ServeError> {
    let st = shared.lock();
    let items: Vec<String> = st
        .table
        .iter()
        .map(|j| format!(r#"{{"job":{},"state":"{}"}}"#, j.id, j.state.name()))
        .collect();
    Ok(format!(r#"{{"jobs":[{}]}}"#, items.join(",")))
}

/// The `/result` document, also the `.done` spill file: identity,
/// preemption count, and the outcome's headline counters plus its full
/// FNV digest for bit-identity checks.
fn result_doc(id: u64, preemptions: u32, out: &uts_core::Outcome) -> String {
    format!(
        "{{\n  \"job\": {id},\n  \"state\": \"done\",\n  \"preemptions\": {preemptions},\n  \"outcome_fnv\": \"{:#018x}\",\n  \"goals\": {},\n  \"nodes_expanded\": {},\n  \"n_expand\": {},\n  \"n_lb\": {},\n  \"n_transfers\": {},\n  \"t_par_us\": {},\n  \"efficiency\": {:.6},\n  \"peak_stack_nodes\": {},\n  \"truncated\": {}\n}}\n",
        outcome_digest(out),
        out.goals,
        out.report.nodes_expanded,
        out.report.n_expand,
        out.report.n_lb,
        out.report.n_transfers,
        out.report.t_par,
        out.report.efficiency,
        out.peak_stack_nodes,
        out.truncated,
    )
}
