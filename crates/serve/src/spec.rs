//! Job specifications: what a client submits, and how it runs.
//!
//! A spec is the JSON body of `POST /submit`: a workload (a seeded
//! [`GeometricTree`], an on-the-fly [`GenTree`] generator, or a 15-puzzle
//! scramble) plus the engine knobs the
//! CLI exposes (`p`, `scheme`, `cost`, `engine`, `threads`, `ledger`).
//! Parsing is strict — unknown fields and wrong types are [`ServeError::Proto`]
//! rejections, mirroring the CLI's flag grammar via the shared
//! [`Scheme::parse`] / [`EngineKind::parse`] / [`CostModel::parse`]
//! entry points.
//!
//! The parsed [`JobSpec`] owns the run entry points the scheduler uses:
//! [`JobSpec::run_slice`] executes the job from scratch or from parked
//! snapshot bytes, with a [`PreemptSignal`] armed so the scheduler can
//! park it at the next macro-step boundary, and [`JobSpec::oracle`] is
//! the uninterrupted [`run_with`] the differential tests compare against.

use uts_ckpt::{CheckpointPolicy, CkptError, PreemptSignal};
use uts_core::ckpt::CheckpointCfg;
use uts_core::{
    config_fingerprint, resume_from_bytes, run_with, EngineConfig, EngineKind, Outcome, Scheme,
};
use uts_machine::CostModel;
use uts_puzzle15::Puzzle15;
use uts_synth::GeometricTree;
use uts_synthgen::GenTree;
use uts_tree::ida::ida_star;
use uts_tree::problem::BoundedProblem;

use crate::error::ServeError;
use crate::json::Json;

/// The search problem a job runs.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Workload {
    /// A seeded synthetic geometric tree (`uts-synth`).
    Synth(GeometricTree),
    /// An on-the-fly hash-chained generator tree (`uts-synthgen`):
    /// `{"kind":"utsgen","family":"geometric"|"binomial", "seed":…,
    /// "b_max":…, "depth":…}` or `{"…","b0":…, "m":…, "q":…}`.
    UtsGen(GenTree),
    /// One bounded IDA\* iteration of a seeded 15-puzzle scramble. The
    /// bound is resolved at parse time (explicit field, else the optimal
    /// cost from a serial IDA\* probe) so every slice of the job searches
    /// the same iteration.
    Scramble {
        /// Scramble seed.
        seed: u64,
        /// Random-walk length.
        walk: usize,
        /// The resolved iteration bound.
        bound: u32,
    },
}

/// A fully validated job: workload + engine configuration.
#[derive(Debug, Clone)]
pub struct JobSpec {
    /// What to search.
    pub workload: Workload,
    /// How to run it. Checkpointing is *not* part of the spec — the
    /// scheduler arms it per slice.
    pub config: EngineConfig,
}

fn field_u64(obj: &Json, key: &str) -> Result<Option<u64>, ServeError> {
    match obj.get(key) {
        None => Ok(None),
        Some(v) => v
            .as_u64()
            .map(Some)
            .ok_or_else(|| ServeError::Proto(format!("`{key}` must be an unsigned integer"))),
    }
}

fn field_f64(obj: &Json, key: &str) -> Result<Option<f64>, ServeError> {
    match obj.get(key) {
        None => Ok(None),
        Some(v) => v
            .as_f64()
            .map(Some)
            .ok_or_else(|| ServeError::Proto(format!("`{key}` must be a number"))),
    }
}

fn field_bool(obj: &Json, key: &str) -> Result<Option<bool>, ServeError> {
    match obj.get(key) {
        None => Ok(None),
        Some(v) => v
            .as_bool()
            .map(Some)
            .ok_or_else(|| ServeError::Proto(format!("`{key}` must be a boolean"))),
    }
}

fn field_str<'a>(obj: &'a Json, key: &str) -> Result<Option<&'a str>, ServeError> {
    match obj.get(key) {
        None => Ok(None),
        Some(v) => v
            .as_str()
            .map(Some)
            .ok_or_else(|| ServeError::Proto(format!("`{key}` must be a string"))),
    }
}

fn check_known_keys(obj: &Json, known: &[&str], ctx: &str) -> Result<(), ServeError> {
    if let Json::Obj(map) = obj {
        for key in map.keys() {
            if !known.contains(&key.as_str()) {
                return Err(ServeError::Proto(format!("unknown {ctx} field `{key}`")));
            }
        }
        Ok(())
    } else {
        Err(ServeError::Proto(format!("{ctx} must be an object")))
    }
}

impl JobSpec {
    /// Parse and validate a submit body. Defaults mirror the CLI:
    /// `p = 1024`, `scheme = gp-dk`, `cost = cm2`, the macro engine.
    pub fn parse(body: &str) -> Result<JobSpec, ServeError> {
        let root = Json::parse(body).map_err(ServeError::Proto)?;
        check_known_keys(
            &root,
            &["workload", "p", "scheme", "cost", "engine", "threads", "ledger", "lb_mult"],
            "spec",
        )?;

        let workload = Self::parse_workload(
            root.get("workload").ok_or_else(|| ServeError::Proto("missing `workload`".into()))?,
        )?;

        let p = field_u64(&root, "p")?.unwrap_or(1024) as usize;
        if p == 0 {
            return Err(ServeError::Proto("`p` must be positive".into()));
        }
        let scheme = match field_str(&root, "scheme")? {
            Some(s) => Scheme::parse(s).map_err(ServeError::Proto)?,
            None => Scheme::gp_dk(),
        };
        let cost = match field_str(&root, "cost")? {
            Some(c) => CostModel::parse(c).map_err(ServeError::Proto)?,
            None => CostModel::cm2(),
        };
        let cost = match field_u64(&root, "lb_mult")? {
            Some(k) if k > 0 && k <= u32::MAX as u64 => cost.with_lb_multiplier(k as u32),
            Some(k) => return Err(ServeError::Proto(format!("bad `lb_mult` {k}"))),
            None => cost,
        };
        let mut config = EngineConfig::new(p, scheme, cost);
        if let Some(e) = field_str(&root, "engine")? {
            config.engine = EngineKind::parse(e).map_err(ServeError::Proto)?;
        }
        if let Some(t) = field_u64(&root, "threads")? {
            if t == 0 {
                return Err(ServeError::Proto("`threads` must be positive".into()));
            }
            config.threads = Some(t as usize);
        }
        if field_bool(&root, "ledger")?.unwrap_or(false) {
            config.record_ledger = true;
        }
        Ok(JobSpec { workload, config })
    }

    fn parse_workload(w: &Json) -> Result<Workload, ServeError> {
        match field_str(w, "kind")?
            .ok_or_else(|| ServeError::Proto("missing `workload.kind`".into()))?
        {
            "synth" => {
                check_known_keys(w, &["kind", "seed", "b_max", "depth_limit"], "synth workload")?;
                let b_max = field_u64(w, "b_max")?.unwrap_or(8);
                let depth_limit = field_u64(w, "depth_limit")?.unwrap_or(6);
                if b_max > u32::MAX as u64 || depth_limit > 64 {
                    return Err(ServeError::Proto("synth workload out of range".into()));
                }
                Ok(Workload::Synth(GeometricTree {
                    seed: field_u64(w, "seed")?.unwrap_or(1),
                    b_max: b_max as u32,
                    depth_limit: depth_limit as u32,
                }))
            }
            "utsgen" => {
                let family = field_str(w, "family")?.unwrap_or("geometric");
                let seed = field_u64(w, "seed")?.unwrap_or(1);
                match family {
                    "geometric" => {
                        check_known_keys(
                            w,
                            &["kind", "family", "seed", "b_max", "depth"],
                            "utsgen geometric workload",
                        )?;
                        let b_max = field_u64(w, "b_max")?.unwrap_or(8);
                        let depth = field_u64(w, "depth")?.unwrap_or(6);
                        if b_max > u32::MAX as u64 || depth > 64 {
                            return Err(ServeError::Proto("utsgen workload out of range".into()));
                        }
                        Ok(Workload::UtsGen(GenTree::geometric(seed, b_max as u32, depth as u32)))
                    }
                    "binomial" => {
                        check_known_keys(
                            w,
                            &["kind", "family", "seed", "b0", "m", "q"],
                            "utsgen binomial workload",
                        )?;
                        let b0 = field_u64(w, "b0")?.unwrap_or(16);
                        let m = field_u64(w, "m")?.unwrap_or(4);
                        let q = field_f64(w, "q")?.unwrap_or(0.2);
                        if b0 > u32::MAX as u64 || m > u32::MAX as u64 {
                            return Err(ServeError::Proto("utsgen workload out of range".into()));
                        }
                        if !(0.0..1.0).contains(&q) || q * m as f64 >= 1.0 {
                            return Err(ServeError::Proto(format!(
                                "utsgen binomial must be subcritical: q·m < 1, got q={q} m={m}"
                            )));
                        }
                        Ok(Workload::UtsGen(GenTree::binomial(seed, b0 as u32, m as u32, q)))
                    }
                    other => Err(ServeError::Proto(format!("unknown utsgen family `{other}`"))),
                }
            }
            "scramble" => {
                check_known_keys(w, &["kind", "seed", "walk", "bound"], "scramble workload")?;
                let seed = field_u64(w, "seed")?.unwrap_or(42);
                let walk = field_u64(w, "walk")?.unwrap_or(40) as usize;
                let bound = match field_u64(w, "bound")? {
                    Some(b) if b <= 80 => b as u32,
                    Some(b) => return Err(ServeError::Proto(format!("bad `bound` {b}"))),
                    None => {
                        let puzzle = Puzzle15::new(uts_puzzle15::scrambled(seed, walk).board());
                        ida_star(&puzzle, 80).solution_cost.ok_or_else(|| {
                            ServeError::Proto("scramble not solvable within bound 80".into())
                        })?
                    }
                };
                Ok(Workload::Scramble { seed, walk, bound })
            }
            other => Err(ServeError::Proto(format!("unknown workload kind `{other}`"))),
        }
    }

    /// The config fingerprint every snapshot of this job carries.
    pub fn fingerprint(&self) -> u64 {
        config_fingerprint(&self.config)
    }

    /// The uninterrupted run — the differential oracle.
    pub fn oracle(&self) -> Outcome {
        self.dispatch(&self.config, None).expect("no snapshot bytes to reject")
    }

    /// Run one scheduling slice: from scratch, or resumed from `parked`
    /// snapshot bytes. `signal` is armed as the slice's cooperative
    /// preemption flag; if the slice was parked (`Outcome::killed`), the
    /// forced boundary snapshot's bytes come back alongside it.
    pub fn run_slice(
        &self,
        parked: Option<&[u8]>,
        signal: &PreemptSignal,
    ) -> Result<(Outcome, Option<Vec<u8>>), CkptError> {
        let ck = CheckpointCfg::new(CheckpointPolicy::default()).with_preempt(signal.clone());
        let sink = ck.sink.clone();
        let cfg = self.config.clone().with_checkpoint_cfg(ck);
        let out = self.dispatch(&cfg, parked)?;
        let park = if out.killed {
            Some(sink.taken().pop().expect("a parked slice forces a boundary snapshot").bytes)
        } else {
            None
        };
        Ok((out, park))
    }

    fn dispatch(&self, cfg: &EngineConfig, parked: Option<&[u8]>) -> Result<Outcome, CkptError> {
        match &self.workload {
            Workload::Synth(tree) => match parked {
                None => Ok(run_with(tree, cfg)),
                Some(bytes) => resume_from_bytes(tree, cfg, bytes),
            },
            Workload::UtsGen(tree) => match parked {
                None => Ok(run_with(tree, cfg)),
                Some(bytes) => resume_from_bytes(tree, cfg, bytes),
            },
            Workload::Scramble { seed, walk, bound } => {
                let puzzle = Puzzle15::new(uts_puzzle15::scrambled(*seed, *walk).board());
                let bp = BoundedProblem::new(&puzzle, *bound);
                match parked {
                    None => Ok(run_with(&bp, cfg)),
                    Some(bytes) => resume_from_bytes(&bp, cfg, bytes),
                }
            }
        }
    }
}

/// FNV-1a digest of an [`Outcome`]'s complete debug rendering — every
/// counter, float bit pattern (Rust renders floats round-trippably),
/// donation vector, and ledger phase. Two outcomes digest equal iff they
/// are the same outcome, so a client can assert bit-identity through the
/// HTTP API without shipping the whole structure.
pub fn outcome_digest(out: &Outcome) -> u64 {
    let mut hash: u64 = 0xcbf2_9ce4_8422_2325;
    for byte in format!("{out:?}").bytes() {
        hash ^= byte as u64;
        hash = hash.wrapping_mul(0x0000_0100_0000_01b3);
    }
    hash
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_a_minimal_synth_spec_with_cli_defaults() {
        let spec = JobSpec::parse(r#"{"workload":{"kind":"synth","seed":3}}"#).unwrap();
        assert_eq!(
            spec.workload,
            Workload::Synth(GeometricTree { seed: 3, b_max: 8, depth_limit: 6 })
        );
        assert_eq!(spec.config.p, 1024);
        assert_eq!(spec.config.scheme, Scheme::gp_dk());
        assert_eq!(spec.config.engine, EngineKind::Macro);
    }

    #[test]
    fn rejects_unknown_fields_and_bad_types() {
        for bad in [
            r#"{"workload":{"kind":"synth"},"bogus":1}"#,
            r#"{"workload":{"kind":"synth","extra":1}}"#,
            r#"{"workload":{"kind":"weird"}}"#,
            r#"{"workload":{"kind":"synth"},"p":"ten"}"#,
            r#"{"workload":{"kind":"synth"},"p":0}"#,
            r#"{"workload":{"kind":"synth"},"scheme":"nope"}"#,
            r#"{"workload":{"kind":"synth"},"engine":"quantum"}"#,
            r#"{"p":4}"#,
            r#"not json"#,
        ] {
            let err = JobSpec::parse(bad).unwrap_err();
            assert_eq!(err.kind(), "proto", "`{bad}` → {err}");
        }
    }

    #[test]
    fn parses_utsgen_specs_for_both_families() {
        let g = JobSpec::parse(
            r#"{"workload":{"kind":"utsgen","family":"geometric","seed":5,"b_max":6,"depth":7}}"#,
        )
        .unwrap();
        assert_eq!(g.workload, Workload::UtsGen(GenTree::geometric(5, 6, 7)));
        let d = JobSpec::parse(r#"{"workload":{"kind":"utsgen"}}"#).unwrap();
        assert_eq!(d.workload, Workload::UtsGen(GenTree::geometric(1, 8, 6)), "defaults");
        let b = JobSpec::parse(
            r#"{"workload":{"kind":"utsgen","family":"binomial","seed":9,"b0":32,"m":4,"q":0.2}}"#,
        )
        .unwrap();
        assert_eq!(b.workload, Workload::UtsGen(GenTree::binomial(9, 32, 4, 0.2)));
    }

    #[test]
    fn rejects_malformed_utsgen_specs() {
        for bad in [
            r#"{"workload":{"kind":"utsgen","family":"exotic"}}"#,
            r#"{"workload":{"kind":"utsgen","b0":4}}"#,
            r#"{"workload":{"kind":"utsgen","family":"binomial","b_max":8}}"#,
            r#"{"workload":{"kind":"utsgen","family":"binomial","q":0.3,"m":4}}"#,
            r#"{"workload":{"kind":"utsgen","family":"binomial","q":1.5}}"#,
            r#"{"workload":{"kind":"utsgen","family":"geometric","depth":65}}"#,
            r#"{"workload":{"kind":"utsgen","q":"zero"}}"#,
        ] {
            let err = JobSpec::parse(bad).unwrap_err();
            assert_eq!(err.kind(), "proto", "`{bad}` → {err}");
        }
    }

    #[test]
    fn a_preempted_utsgen_slice_parks_and_resumes_bit_identically() {
        let spec = JobSpec::parse(
            r#"{"workload":{"kind":"utsgen","family":"binomial","seed":13,"b0":48,"m":4,"q":0.21},"p":64}"#,
        )
        .unwrap();
        let oracle = spec.oracle();

        let signal = PreemptSignal::new();
        signal.raise();
        let (out, park) = spec.run_slice(None, &signal).unwrap();
        assert!(out.killed);
        let bytes = park.expect("parked slice yields snapshot bytes");

        signal.clear();
        let (resumed, park) = spec.run_slice(Some(&bytes), &signal).unwrap();
        assert!(park.is_none());
        assert_eq!(resumed, oracle);
        assert_eq!(outcome_digest(&resumed), outcome_digest(&oracle));
    }

    #[test]
    fn a_preempted_slice_parks_and_resumes_bit_identically() {
        let spec = JobSpec::parse(
            r#"{"workload":{"kind":"synth","seed":11,"b_max":8,"depth_limit":6},"p":64}"#,
        )
        .unwrap();
        let oracle = spec.oracle();

        let signal = PreemptSignal::new();
        signal.raise();
        let (out, park) = spec.run_slice(None, &signal).unwrap();
        assert!(out.killed);
        let bytes = park.expect("parked slice yields snapshot bytes");

        signal.clear();
        let (resumed, park) = spec.run_slice(Some(&bytes), &signal).unwrap();
        assert!(park.is_none());
        assert_eq!(resumed, oracle);
        assert_eq!(outcome_digest(&resumed), outcome_digest(&oracle));
    }

    #[test]
    fn scramble_bound_resolution_is_deterministic() {
        let a = JobSpec::parse(r#"{"workload":{"kind":"scramble","seed":7,"walk":14},"p":32}"#)
            .unwrap();
        let b = JobSpec::parse(r#"{"workload":{"kind":"scramble","seed":7,"walk":14},"p":32}"#)
            .unwrap();
        assert_eq!(a.workload, b.workload);
        assert_eq!(a.oracle(), b.oracle());
    }
}
