//! A minimal JSON reader for the job API.
//!
//! The workspace renders JSON by hand (`run_report_json`, the bench
//! harnesses) but until now never had to *read* it. This is the smallest
//! parser that covers the job-spec grammar — objects, arrays, strings,
//! numbers, booleans, null — with the rejection behaviour the protocol
//! suite pins: trailing garbage, unterminated input, and absurd nesting
//! are errors, never panics. Numbers keep their raw token so integer
//! fields (seeds are full `u64`s) round-trip without an `f64` detour.

use std::collections::BTreeMap;

/// Maximum nesting depth accepted. Job specs are two levels deep; 32
/// leaves headroom while keeping the recursive parser stack-safe on
/// hostile input.
const MAX_DEPTH: usize = 32;

/// A parsed JSON value. Object keys are sorted (`BTreeMap`) — the specs
/// this crate reads are declarative, so ordering carries no meaning.
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// A number, kept as its raw token (see [`Json::as_u64`]).
    Num(String),
    /// A string, unescaped.
    Str(String),
    /// An array.
    Arr(Vec<Json>),
    /// An object.
    Obj(BTreeMap<String, Json>),
}

impl Json {
    /// Parse `text` as a single JSON document; trailing non-whitespace is
    /// an error.
    pub fn parse(text: &str) -> Result<Json, String> {
        let bytes = text.as_bytes();
        let mut pos = 0;
        let value = parse_value(bytes, &mut pos, 0)?;
        skip_ws(bytes, &mut pos);
        if pos != bytes.len() {
            return Err(format!("trailing garbage at byte {pos}"));
        }
        Ok(value)
    }

    /// The value of `key` in an object (`None` for absent keys or
    /// non-objects).
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(map) => map.get(key),
            _ => None,
        }
    }

    /// This value as a `u64`, if it is an unsigned integer token.
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Json::Num(raw) => raw.parse().ok(),
            _ => None,
        }
    }

    /// This value as an `f64`, if it is a number token.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Json::Num(raw) => raw.parse().ok(),
            _ => None,
        }
    }

    /// This value as a string slice, if it is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    /// This value as a bool, if it is one.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Json::Bool(b) => Some(*b),
            _ => None,
        }
    }
}

/// Escape `s` for embedding in a hand-rolled JSON string literal.
pub fn escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

fn skip_ws(bytes: &[u8], pos: &mut usize) {
    while let Some(b) = bytes.get(*pos) {
        if matches!(b, b' ' | b'\t' | b'\n' | b'\r') {
            *pos += 1;
        } else {
            break;
        }
    }
}

fn parse_value(bytes: &[u8], pos: &mut usize, depth: usize) -> Result<Json, String> {
    if depth > MAX_DEPTH {
        return Err(format!("nesting deeper than {MAX_DEPTH}"));
    }
    skip_ws(bytes, pos);
    match bytes.get(*pos) {
        None => Err("unexpected end of input".into()),
        Some(b'{') => parse_obj(bytes, pos, depth),
        Some(b'[') => parse_arr(bytes, pos, depth),
        Some(b'"') => parse_str(bytes, pos).map(Json::Str),
        Some(b't') => parse_lit(bytes, pos, "true", Json::Bool(true)),
        Some(b'f') => parse_lit(bytes, pos, "false", Json::Bool(false)),
        Some(b'n') => parse_lit(bytes, pos, "null", Json::Null),
        Some(b'-' | b'0'..=b'9') => parse_num(bytes, pos),
        Some(&b) => Err(format!("unexpected byte `{}` at {pos:?}", b as char)),
    }
}

fn parse_lit(bytes: &[u8], pos: &mut usize, lit: &str, value: Json) -> Result<Json, String> {
    if bytes[*pos..].starts_with(lit.as_bytes()) {
        *pos += lit.len();
        Ok(value)
    } else {
        Err(format!("bad literal at byte {pos}"))
    }
}

fn parse_num(bytes: &[u8], pos: &mut usize) -> Result<Json, String> {
    let start = *pos;
    if bytes.get(*pos) == Some(&b'-') {
        *pos += 1;
    }
    let digits_from = *pos;
    while matches!(bytes.get(*pos), Some(b'0'..=b'9' | b'.' | b'e' | b'E' | b'+' | b'-')) {
        *pos += 1;
    }
    if *pos == digits_from {
        return Err(format!("bad number at byte {start}"));
    }
    let raw = std::str::from_utf8(&bytes[start..*pos]).expect("digits are ascii");
    // Validate the token shape once, here, so `as_u64`/`as_f64` can be
    // simple `parse` calls.
    raw.parse::<f64>().map_err(|_| format!("bad number `{raw}` at byte {start}"))?;
    Ok(Json::Num(raw.to_string()))
}

fn parse_str(bytes: &[u8], pos: &mut usize) -> Result<String, String> {
    debug_assert_eq!(bytes.get(*pos), Some(&b'"'));
    *pos += 1;
    let mut out = Vec::new();
    loop {
        match bytes.get(*pos) {
            None => return Err("unterminated string".into()),
            Some(b'"') => {
                *pos += 1;
                return String::from_utf8(out).map_err(|_| "invalid utf-8 in string".into());
            }
            Some(b'\\') => {
                *pos += 1;
                match bytes.get(*pos) {
                    Some(b'"') => out.push(b'"'),
                    Some(b'\\') => out.push(b'\\'),
                    Some(b'/') => out.push(b'/'),
                    Some(b'n') => out.push(b'\n'),
                    Some(b'r') => out.push(b'\r'),
                    Some(b't') => out.push(b'\t'),
                    Some(b'u') => {
                        let hex = bytes
                            .get(*pos + 1..*pos + 5)
                            .and_then(|h| std::str::from_utf8(h).ok())
                            .ok_or("truncated \\u escape")?;
                        let code = u32::from_str_radix(hex, 16).map_err(|_| "bad \\u escape")?;
                        let c = char::from_u32(code).ok_or("bad \\u code point")?;
                        let mut buf = [0u8; 4];
                        out.extend_from_slice(c.encode_utf8(&mut buf).as_bytes());
                        *pos += 4;
                    }
                    _ => return Err("bad escape".into()),
                }
                *pos += 1;
            }
            Some(&b) => {
                out.push(b);
                *pos += 1;
            }
        }
    }
}

fn parse_arr(bytes: &[u8], pos: &mut usize, depth: usize) -> Result<Json, String> {
    *pos += 1; // '['
    let mut items = Vec::new();
    skip_ws(bytes, pos);
    if bytes.get(*pos) == Some(&b']') {
        *pos += 1;
        return Ok(Json::Arr(items));
    }
    loop {
        items.push(parse_value(bytes, pos, depth + 1)?);
        skip_ws(bytes, pos);
        match bytes.get(*pos) {
            Some(b',') => *pos += 1,
            Some(b']') => {
                *pos += 1;
                return Ok(Json::Arr(items));
            }
            _ => return Err(format!("expected `,` or `]` at byte {pos:?}")),
        }
    }
}

fn parse_obj(bytes: &[u8], pos: &mut usize, depth: usize) -> Result<Json, String> {
    *pos += 1; // '{'
    let mut map = BTreeMap::new();
    skip_ws(bytes, pos);
    if bytes.get(*pos) == Some(&b'}') {
        *pos += 1;
        return Ok(Json::Obj(map));
    }
    loop {
        skip_ws(bytes, pos);
        if bytes.get(*pos) != Some(&b'"') {
            return Err(format!("expected string key at byte {pos:?}"));
        }
        let key = parse_str(bytes, pos)?;
        skip_ws(bytes, pos);
        if bytes.get(*pos) != Some(&b':') {
            return Err(format!("expected `:` at byte {pos:?}"));
        }
        *pos += 1;
        let value = parse_value(bytes, pos, depth + 1)?;
        map.insert(key, value);
        skip_ws(bytes, pos);
        match bytes.get(*pos) {
            Some(b',') => *pos += 1,
            Some(b'}') => {
                *pos += 1;
                return Ok(Json::Obj(map));
            }
            _ => return Err(format!("expected `,` or `}}` at byte {pos:?}")),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trips_a_job_spec_shape() {
        let j = Json::parse(
            r#"{"workload":{"kind":"synth","seed":18446744073709551615,"b_max":8},
                "p":64,"scheme":"gp-dk","ledger":true,"x":[1,2.5,-3]}"#,
        )
        .unwrap();
        assert_eq!(
            j.get("workload").unwrap().get("seed").unwrap().as_u64(),
            Some(u64::MAX),
            "u64 seeds survive without an f64 detour"
        );
        assert_eq!(j.get("p").unwrap().as_u64(), Some(64));
        assert_eq!(j.get("scheme").unwrap().as_str(), Some("gp-dk"));
        assert_eq!(j.get("ledger").unwrap().as_bool(), Some(true));
        assert_eq!(
            j.get("x").unwrap(),
            &Json::Arr(vec![
                Json::Num("1".into()),
                Json::Num("2.5".into()),
                Json::Num("-3".into())
            ])
        );
    }

    #[test]
    fn rejects_malformed_documents() {
        for bad in [
            "",
            "{",
            "[1,",
            "{\"a\"}",
            "{\"a\":}",
            "tru",
            "1 2",
            "{} x",
            "\"unterminated",
            "{'a':1}",
            "nul",
            "+1",
            "--2",
        ] {
            assert!(Json::parse(bad).is_err(), "`{bad}` must be rejected");
        }
    }

    #[test]
    fn rejects_absurd_nesting() {
        let deep = "[".repeat(200) + &"]".repeat(200);
        assert!(Json::parse(&deep).unwrap_err().contains("nesting"));
    }

    #[test]
    fn unescapes_strings_and_escape_inverts() {
        let j = Json::parse(r#""a\"b\\c\ndA""#).unwrap();
        assert_eq!(j.as_str(), Some("a\"b\\c\ndA"));
        assert_eq!(escape("a\"b\\c\nd"), "a\\\"b\\\\c\\nd");
    }
}
