//! The job API's typed error taxonomy.
//!
//! Mirrors the five-way `CkptError` rejection discipline one layer up:
//! every way a request can fail maps to a distinct variant, a distinct
//! `kind` tag in the error body, and a distinct HTTP status — so the
//! protocol rejection suite can pin each failure mode independently and a
//! client can branch on `kind` without parsing prose.

use std::fmt;

use uts_ckpt::CkptError;

/// Everything the server can refuse a request with.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ServeError {
    /// The request itself is unintelligible: malformed JSON, a spec field
    /// with the wrong type or an unknown name, an unroutable path, a bad
    /// HTTP frame. → 400.
    Proto(String),
    /// The job id does not exist on this server (never issued, or from a
    /// different spill directory). → 404.
    UnknownJob(u64),
    /// The job exists but is not in a state the request applies to — a
    /// `result` fetch before the job is done. → 409.
    NotReady(u64),
    /// The request body exceeds the server's cap. Rejected from the
    /// `Content-Length` header, before any body bytes are read. → 413.
    BodyTooLarge {
        /// The server's cap in bytes.
        limit: usize,
        /// The declared request body size.
        got: usize,
    },
    /// A spill-file operation failed: a parked snapshot that does not
    /// decode against the job's config fingerprint, or spill-directory
    /// I/O. The job is marked failed; the decode error is preserved
    /// verbatim. → 500.
    Spill(String),
}

impl ServeError {
    /// The stable machine-readable tag carried in the error body.
    pub fn kind(&self) -> &'static str {
        match self {
            ServeError::Proto(_) => "proto",
            ServeError::UnknownJob(_) => "unknown_job",
            ServeError::NotReady(_) => "not_ready",
            ServeError::BodyTooLarge { .. } => "body_too_large",
            ServeError::Spill(_) => "spill",
        }
    }

    /// The HTTP status this error maps to.
    pub fn status(&self) -> u16 {
        match self {
            ServeError::Proto(_) => 400,
            ServeError::UnknownJob(_) => 404,
            ServeError::NotReady(_) => 409,
            ServeError::BodyTooLarge { .. } => 413,
            ServeError::Spill(_) => 500,
        }
    }

    /// Render as the JSON error body: `{"error": …, "kind": …}`.
    pub fn body(&self) -> String {
        format!(
            r#"{{"error":"{}","kind":"{}"}}"#,
            crate::json::escape(&self.to_string()),
            self.kind()
        )
    }

    /// Wrap a snapshot-codec rejection (fingerprint mismatch, torn file,
    /// foreign magic) as a spill error.
    pub fn from_ckpt(err: CkptError) -> Self {
        ServeError::Spill(err.to_string())
    }
}

impl fmt::Display for ServeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ServeError::Proto(msg) => write!(f, "bad request: {msg}"),
            ServeError::UnknownJob(id) => write!(f, "no such job {id}"),
            ServeError::NotReady(id) => write!(f, "job {id} has no result yet"),
            ServeError::BodyTooLarge { limit, got } => {
                write!(f, "body of {got} bytes exceeds the {limit}-byte cap")
            }
            ServeError::Spill(msg) => write!(f, "spill failure: {msg}"),
        }
    }
}

impl std::error::Error for ServeError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn every_variant_has_a_distinct_kind_and_status() {
        let all = [
            ServeError::Proto("x".into()),
            ServeError::UnknownJob(1),
            ServeError::NotReady(1),
            ServeError::BodyTooLarge { limit: 1, got: 2 },
            ServeError::Spill("y".into()),
        ];
        let kinds: std::collections::BTreeSet<_> = all.iter().map(|e| e.kind()).collect();
        let statuses: std::collections::BTreeSet<_> = all.iter().map(|e| e.status()).collect();
        assert_eq!(kinds.len(), all.len());
        assert_eq!(statuses.len(), all.len());
        for e in &all {
            assert!(e.body().contains(e.kind()));
        }
    }
}
