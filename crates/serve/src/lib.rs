//! Multi-tenant simulation job server (`sts serve`).
//!
//! The paper's premise — unstructured tree search served at scale on a
//! lockstep machine — made literal: a long-running server that accepts
//! simulation jobs over a hand-rolled HTTP/1.1 + JSON API, runs them on
//! a bounded pool of runner slots, and **preemptively schedules** them.
//! When more jobs wait than slots exist, running jobs are checkpointed
//! at their next macro-step boundary (the PR 5 snapshot container,
//! forced by a [`uts_ckpt::PreemptSignal`]), parked to a spill
//! directory, and resumed later with boundary numbering intact — so
//! every completed job's [`uts_core::Outcome`] is bit-identical to an
//! uninterrupted `run_with` of the same config, no matter how often it
//! was parked, and the whole job table survives a crash of the server
//! process.
//!
//! | endpoint | method | body | reply |
//! |---|---|---|---|
//! | `/submit` | POST | job spec JSON | `{"job":id}` |
//! | `/status/{id}` | GET | — | state, preemptions, config fingerprint |
//! | `/result/{id}` | GET | — | result document with `outcome_fnv` |
//! | `/cancel/{id}` | POST | — | resulting state |
//! | `/jobs` | GET | — | every job's id + state |
//!
//! Module map: [`json`] (minimal JSON reader), [`spec`] (job spec +
//! slice runner), [`jobs`] (pure lifecycle state machine), [`http`]
//! (frame reader/writer + blocking test client), [`server`] (scheduler,
//! recovery, routing), [`error`] (the five-way typed rejection
//! taxonomy).

pub mod error;
pub mod http;
pub mod jobs;
pub mod json;
pub mod server;
pub mod spec;

pub use error::ServeError;
pub use http::client;
pub use jobs::{JobRecord, JobState, JobTable};
pub use server::{JobServer, ServeConfig};
pub use spec::{outcome_digest, JobSpec, Workload};
