//! The job lifecycle state machine, pure and synchronous.
//!
//! The scheduler's concurrency lives in `server.rs`; every state
//! transition funnels through this table so the legal transition relation
//! is one auditable place — and so the lifecycle property test can drive
//! random event interleavings against it without sockets or threads.
//!
//! ```text
//!            submit                    claim
//!   (new) ──────────▶ Queued ───────────────────▶ Running ──┬─▶ Done
//!                       ▲                            │ ▲     ├─▶ Failed
//!                       │ cancel                park │ │     └─▶ Cancelled
//!                       ▼                            ▼ │ claim     ▲
//!                   Cancelled ◀──────────────────── Parked ────────┘
//!                                    cancel
//! ```
//!
//! Every mutating method returns whether it applied; an inapplicable
//! event (completing a job that is not running, claiming from an empty
//! queue) is rejected **without mutating anything**. `Done`, `Cancelled`
//! and `Failed` are terminal: no event moves a job out of them.
//!
//! Fairness is structural: the run queue is FIFO and a parked job re-
//! enters at the *tail*, so with finite slices (the engine always
//! advances at least one macro-step per slice) every job eventually
//! drains — the stress suite's no-starvation assertion leans on this.

use std::collections::{BTreeMap, VecDeque};

/// Where a job is in its life.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum JobState {
    /// Submitted, waiting for a slot. In the run queue.
    Queued,
    /// Executing on a runner slot.
    Running,
    /// Preempted at a macro-step boundary; snapshot spilled. In the run
    /// queue, at the tail.
    Parked,
    /// Finished; result available. Terminal.
    Done,
    /// Cancelled before completion. Terminal.
    Cancelled,
    /// The run itself failed (e.g. a spill file that does not decode).
    /// Terminal.
    Failed,
}

impl JobState {
    /// Lower-case stable name used in JSON bodies and spill markers.
    pub fn name(self) -> &'static str {
        match self {
            JobState::Queued => "queued",
            JobState::Running => "running",
            JobState::Parked => "parked",
            JobState::Done => "done",
            JobState::Cancelled => "cancelled",
            JobState::Failed => "failed",
        }
    }

    /// Terminal states never transition again.
    pub fn is_terminal(self) -> bool {
        matches!(self, JobState::Done | JobState::Cancelled | JobState::Failed)
    }
}

/// One job's lifecycle record.
#[derive(Debug, Clone)]
pub struct JobRecord {
    /// Server-assigned id, 1-based, never reused.
    pub id: u64,
    /// Current lifecycle state.
    pub state: JobState,
    /// How many times the job was parked.
    pub preemptions: u32,
    /// A cancel arrived while the job was running; it will be honored at
    /// the next macro-step boundary.
    pub cancel_requested: bool,
}

/// The lifecycle table: every job ever submitted, plus the FIFO run
/// queue of claimable (`Queued` / `Parked`) jobs.
#[derive(Debug, Default)]
pub struct JobTable {
    jobs: BTreeMap<u64, JobRecord>,
    queue: VecDeque<u64>,
    next_id: u64,
}

impl JobTable {
    /// An empty table; ids start at 1.
    pub fn new() -> Self {
        Self::default()
    }

    /// Admit a new job at the queue tail; returns its id.
    pub fn submit(&mut self) -> u64 {
        self.next_id += 1;
        let id = self.next_id;
        self.jobs.insert(
            id,
            JobRecord { id, state: JobState::Queued, preemptions: 0, cancel_requested: false },
        );
        self.queue.push_back(id);
        id
    }

    /// Re-admit a job recovered from a spill directory in `state`
    /// (queue membership follows from the state). Rejected if the id is
    /// taken. Recovery feeds ids in ascending order, so FIFO order is
    /// submission order again after a restart.
    pub fn restore(&mut self, id: u64, state: JobState, preemptions: u32) -> bool {
        if id == 0 || self.jobs.contains_key(&id) {
            return false;
        }
        self.jobs.insert(
            id,
            JobRecord {
                id,
                // A job that was mid-slice when the process died has no
                // running slot anymore: it recovers as claimable.
                state: if state == JobState::Running { JobState::Queued } else { state },
                preemptions,
                cancel_requested: false,
            },
        );
        if matches!(self.jobs[&id].state, JobState::Queued | JobState::Parked) {
            self.queue.push_back(id);
        }
        self.next_id = self.next_id.max(id);
        true
    }

    /// Pop the head of the run queue and mark it running. `None` when no
    /// job is claimable.
    pub fn claim_next(&mut self) -> Option<u64> {
        while let Some(id) = self.queue.pop_front() {
            let job = self.jobs.get_mut(&id).expect("queued ids exist");
            if matches!(job.state, JobState::Queued | JobState::Parked) {
                job.state = JobState::Running;
                return Some(id);
            }
            // A cancel already removed this entry logically; drop it.
        }
        None
    }

    /// Park a running job: back to the queue tail, preemption counted.
    /// A job with a pending cancel refuses to park — its next boundary
    /// must observe the cancel ([`Self::finish_cancelled`]), never defer it.
    pub fn park(&mut self, id: u64) -> bool {
        if self.jobs.get(&id).is_some_and(|j| j.cancel_requested) {
            return false;
        }
        if !self.transition(id, JobState::Running, JobState::Parked) {
            return false;
        }
        self.jobs.get_mut(&id).expect("transition checked").preemptions += 1;
        self.queue.push_back(id);
        true
    }

    /// A running job finished with a result.
    pub fn complete(&mut self, id: u64) -> bool {
        self.transition(id, JobState::Running, JobState::Done)
    }

    /// A running job's slice failed terminally.
    pub fn fail(&mut self, id: u64) -> bool {
        self.transition(id, JobState::Running, JobState::Failed)
    }

    /// A running job observed its raised cancel at a boundary and
    /// stopped.
    pub fn finish_cancelled(&mut self, id: u64) -> bool {
        self.transition(id, JobState::Running, JobState::Cancelled)
    }

    /// Request cancellation. `Queued`/`Parked` jobs cancel immediately
    /// (they hold no slot); a `Running` job is flagged and cancels at its
    /// next macro-step boundary; terminal jobs are left untouched (the
    /// call is idempotent, not an error). Returns the resulting state, or
    /// `None` for unknown ids.
    pub fn cancel(&mut self, id: u64) -> Option<JobState> {
        let job = self.jobs.get_mut(&id)?;
        match job.state {
            JobState::Queued | JobState::Parked => {
                job.state = JobState::Cancelled;
                self.queue.retain(|&q| q != id);
            }
            JobState::Running => job.cancel_requested = true,
            JobState::Done | JobState::Cancelled | JobState::Failed => {}
        }
        Some(self.jobs[&id].state)
    }

    /// The job's record, if it exists.
    pub fn get(&self, id: u64) -> Option<&JobRecord> {
        self.jobs.get(&id)
    }

    /// All records, ascending by id.
    pub fn iter(&self) -> impl Iterator<Item = &JobRecord> {
        self.jobs.values()
    }

    /// Number of claimable jobs waiting in the run queue.
    pub fn waiting(&self) -> usize {
        self.queue
            .iter()
            .filter(|id| matches!(self.jobs[id].state, JobState::Queued | JobState::Parked))
            .count()
    }

    fn transition(&mut self, id: u64, from: JobState, to: JobState) -> bool {
        match self.jobs.get_mut(&id) {
            Some(job) if job.state == from => {
                job.state = to;
                true
            }
            _ => false,
        }
    }

    /// Internal invariants, asserted by the property test after every
    /// event: queue entries are unique and claimable (modulo lazily
    /// removed cancellations), and every claimable job is in the queue.
    pub fn check_invariants(&self) {
        let mut seen = std::collections::BTreeSet::new();
        for id in &self.queue {
            assert!(seen.insert(*id), "job {id} queued twice");
            assert!(self.jobs.contains_key(id), "queue references unknown job {id}");
        }
        for job in self.jobs.values() {
            match job.state {
                JobState::Queued | JobState::Parked => {
                    assert!(seen.contains(&job.id), "claimable job {} not queued", job.id)
                }
                JobState::Running => {
                    assert!(!seen.contains(&job.id), "running job {} still queued", job.id)
                }
                _ => {}
            }
            if job.cancel_requested {
                // The flag is raised only on running jobs; it survives into
                // whatever terminal state the slice reaches (the cancel may
                // race a completion or a failure), but never into `Parked` —
                // `park` refuses while a cancel is pending.
                assert!(
                    job.state != JobState::Queued && job.state != JobState::Parked,
                    "cancel_requested on {} in {:?}",
                    job.id,
                    job.state
                );
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn the_happy_path_walks_the_diagram() {
        let mut t = JobTable::new();
        let id = t.submit();
        assert_eq!(t.get(id).unwrap().state, JobState::Queued);
        assert_eq!(t.claim_next(), Some(id));
        assert!(t.park(id));
        assert_eq!(t.get(id).unwrap().state, JobState::Parked);
        assert_eq!(t.get(id).unwrap().preemptions, 1);
        assert_eq!(t.claim_next(), Some(id));
        assert!(t.complete(id));
        assert!(t.get(id).unwrap().state.is_terminal());
        t.check_invariants();
    }

    #[test]
    fn cancel_semantics_depend_on_where_the_job_is() {
        let mut t = JobTable::new();
        let q = t.submit();
        assert_eq!(t.cancel(q), Some(JobState::Cancelled));
        assert_eq!(t.claim_next(), None, "cancelled job left the queue");

        let r = t.submit();
        t.claim_next();
        assert_eq!(t.cancel(r), Some(JobState::Running), "running jobs cancel at a boundary");
        assert!(t.get(r).unwrap().cancel_requested);
        assert!(t.finish_cancelled(r));

        assert_eq!(t.cancel(r), Some(JobState::Cancelled), "terminal cancel is idempotent");
        assert_eq!(t.cancel(999), None);
        t.check_invariants();
    }

    #[test]
    fn inapplicable_events_reject_without_mutating() {
        let mut t = JobTable::new();
        let id = t.submit();
        assert!(!t.park(id), "cannot park a queued job");
        assert!(!t.complete(id), "cannot complete a queued job");
        assert!(!t.fail(id));
        assert_eq!(t.get(id).unwrap().state, JobState::Queued);
        t.check_invariants();
    }

    #[test]
    fn restore_rebuilds_the_queue_in_id_order_and_never_reuses_ids() {
        let mut t = JobTable::new();
        assert!(t.restore(2, JobState::Parked, 3));
        assert!(t.restore(4, JobState::Done, 0));
        assert!(t.restore(5, JobState::Running, 1), "running recovers as claimable");
        assert!(!t.restore(2, JobState::Queued, 0), "ids are never reused");
        assert_eq!(t.claim_next(), Some(2));
        assert_eq!(t.claim_next(), Some(5));
        assert_eq!(t.get(5).unwrap().state, JobState::Running);
        assert_eq!(t.submit(), 6, "fresh ids continue past recovered ones");
        t.check_invariants();
    }
}
