//! A hand-rolled HTTP/1.1 frame reader/writer, one request per
//! connection.
//!
//! No async runtime is vendored, and the job API needs exactly four tiny
//! endpoints — so this is deliberately the smallest correct subset:
//! request line + headers + `Content-Length` body in, status + JSON body
//! out, `Connection: close` always. Oversize declarations are rejected
//! from the header alone ([`ServeError::BodyTooLarge`]) before any body
//! byte is read, so a hostile client cannot make the server buffer an
//! arbitrarily large spec.

use std::io::{BufRead, BufReader, Read, Write};
use std::net::TcpStream;

use crate::error::ServeError;

/// Largest accepted request body. Specs are a few hundred bytes; the cap
/// is generous but finite.
pub const MAX_BODY: usize = 64 * 1024;
/// Largest accepted header block.
const MAX_HEAD: usize = 8 * 1024;

/// One parsed request.
#[derive(Debug)]
pub struct Request {
    /// `GET` / `POST` / ….
    pub method: String,
    /// The path, e.g. `/status/3`.
    pub path: String,
    /// The body, UTF-8 decoded.
    pub body: String,
}

/// Read one request frame off `stream`.
pub fn read_request(stream: &mut TcpStream) -> Result<Request, ServeError> {
    let mut reader = BufReader::new(stream);
    let mut line = String::new();
    reader
        .by_ref()
        .take(MAX_HEAD as u64)
        .read_line(&mut line)
        .map_err(|e| ServeError::Proto(format!("read: {e}")))?;
    let mut parts = line.split_whitespace();
    let method = parts.next().ok_or_else(|| ServeError::Proto("empty request line".into()))?;
    let path = parts.next().ok_or_else(|| ServeError::Proto("request line lacks a path".into()))?;
    let version = parts.next().unwrap_or("");
    if !version.starts_with("HTTP/1.") {
        return Err(ServeError::Proto(format!("unsupported version `{version}`")));
    }
    let (method, path) = (method.to_string(), path.to_string());

    let mut content_length: Option<usize> = None;
    let mut head_bytes = line.len();
    loop {
        let mut header = String::new();
        reader
            .by_ref()
            .take(MAX_HEAD as u64)
            .read_line(&mut header)
            .map_err(|e| ServeError::Proto(format!("read: {e}")))?;
        head_bytes += header.len();
        if head_bytes > MAX_HEAD {
            return Err(ServeError::Proto("header block too large".into()));
        }
        let header = header.trim_end();
        if header.is_empty() {
            break;
        }
        if let Some((name, value)) = header.split_once(':') {
            if name.eq_ignore_ascii_case("content-length") {
                content_length = Some(
                    value
                        .trim()
                        .parse()
                        .map_err(|_| ServeError::Proto(format!("bad content-length `{value}`")))?,
                );
            }
        }
    }
    // A POST carries a body by definition here (every POST endpoint either
    // parses one or explicitly ignores it); without a `Content-Length`
    // header the frame is unreadable — reading "no body" would surface
    // later as a baffling empty-spec parse error, so reject the framing
    // itself up front.
    let content_length = match content_length {
        Some(n) => n,
        None if method == "POST" => {
            return Err(ServeError::Proto("POST without a content-length header".into()));
        }
        None => 0,
    };
    if content_length > MAX_BODY {
        return Err(ServeError::BodyTooLarge { limit: MAX_BODY, got: content_length });
    }
    let mut body = vec![0u8; content_length];
    reader.read_exact(&mut body).map_err(|e| ServeError::Proto(format!("short body: {e}")))?;
    let body =
        String::from_utf8(body).map_err(|_| ServeError::Proto("body is not utf-8".into()))?;
    Ok(Request { method, path, body })
}

/// Write a response frame: status line, minimal headers, JSON body.
pub fn write_response(stream: &mut TcpStream, status: u16, body: &str) -> std::io::Result<()> {
    let reason = match status {
        200 => "OK",
        400 => "Bad Request",
        404 => "Not Found",
        409 => "Conflict",
        413 => "Payload Too Large",
        500 => "Internal Server Error",
        _ => "Unknown",
    };
    let frame = format!(
        "HTTP/1.1 {status} {reason}\r\ncontent-type: application/json\r\ncontent-length: {}\r\nconnection: close\r\n\r\n{body}",
        body.len(),
    );
    stream.write_all(frame.as_bytes())?;
    stream.flush()
}

/// A blocking one-shot client for the job API — shared by the test
/// harnesses, the stress suite, and `bench_service`. Returns
/// `(status, body)`.
pub mod client {
    use std::io::{Read, Write};
    use std::net::{SocketAddr, TcpStream};

    fn request(addr: SocketAddr, method: &str, path: &str, body: &str) -> (u16, String) {
        let mut stream = TcpStream::connect(addr).expect("connect to job server");
        let frame = format!(
            "{method} {path} HTTP/1.1\r\nhost: {addr}\r\ncontent-length: {}\r\nconnection: close\r\n\r\n{body}",
            body.len(),
        );
        stream.write_all(frame.as_bytes()).expect("send request");
        let mut response = String::new();
        stream.read_to_string(&mut response).expect("read response");
        let status = response
            .split_whitespace()
            .nth(1)
            .and_then(|s| s.parse().ok())
            .unwrap_or_else(|| panic!("unparsable response: {response:?}"));
        let body = response.split_once("\r\n\r\n").map(|(_, b)| b.to_string()).unwrap_or_default();
        (status, body)
    }

    /// `GET path`.
    pub fn get(addr: SocketAddr, path: &str) -> (u16, String) {
        request(addr, "GET", path, "")
    }

    /// `POST path` with a JSON body.
    pub fn post(addr: SocketAddr, path: &str, body: &str) -> (u16, String) {
        request(addr, "POST", path, body)
    }

    /// Send a raw pre-framed request (for protocol tests that need to
    /// violate the framing on purpose).
    pub fn raw(addr: SocketAddr, frame: &str) -> (u16, String) {
        let mut stream = TcpStream::connect(addr).expect("connect to job server");
        stream.write_all(frame.as_bytes()).expect("send raw frame");
        let mut response = String::new();
        stream.read_to_string(&mut response).expect("read response");
        let status = response.split_whitespace().nth(1).and_then(|s| s.parse().ok()).unwrap_or(0);
        let body = response.split_once("\r\n\r\n").map(|(_, b)| b.to_string()).unwrap_or_default();
        (status, body)
    }
}
