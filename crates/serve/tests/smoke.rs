//! End-to-end smoke: the server accepts, runs, parks, and answers over
//! real sockets. The heavyweight churn lives in the root-package suites
//! (`tests/service_*.rs`); this pins the basic request/response loop
//! close to the crate.

use std::time::{Duration, Instant};

use uts_serve::{client, outcome_digest, JobServer, JobSpec, ServeConfig};

fn scratch_dir(tag: &str) -> std::path::PathBuf {
    let dir = std::env::temp_dir().join(format!("uts-serve-smoke-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

fn wait_done(addr: std::net::SocketAddr, id: u64) -> String {
    let deadline = Instant::now() + Duration::from_secs(60);
    loop {
        let (status, body) = client::get(addr, &format!("/result/{id}"));
        match status {
            200 => return body,
            409 => {
                assert!(Instant::now() < deadline, "job {id} never finished");
                std::thread::sleep(Duration::from_millis(5));
            }
            other => panic!("job {id}: unexpected status {other}: {body}"),
        }
    }
}

#[test]
fn submit_run_fetch_round_trip() {
    let dir = scratch_dir("roundtrip");
    let server = JobServer::start(ServeConfig::new(&dir)).unwrap();
    let addr = server.addr();

    let spec = r#"{"workload":{"kind":"synth","seed":5,"b_max":8,"depth_limit":6},"p":64}"#;
    let (status, body) = client::post(addr, "/submit", spec);
    assert_eq!(status, 200, "{body}");
    assert_eq!(body, r#"{"job":1}"#);

    let doc = wait_done(addr, 1);
    let oracle = JobSpec::parse(spec).unwrap().oracle();
    let want = format!("\"outcome_fnv\": \"{:#018x}\"", outcome_digest(&oracle));
    assert!(doc.contains(&want), "served result differs from the oracle:\n{doc}");

    let (status, body) = client::get(addr, "/status/1");
    assert_eq!(status, 200);
    assert!(body.contains("\"state\": \"done\""), "{body}");

    let (status, _) = client::get(addr, "/status/99");
    assert_eq!(status, 404);

    server.shutdown();
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn slot_starvation_forces_preemption_and_results_stay_oracle_identical() {
    let dir = scratch_dir("preempt");
    let mut cfg = ServeConfig::new(&dir);
    cfg.slots = 1;
    cfg.quantum_ms = 0; // preempt at the very next boundary when anyone waits
    cfg.poll_ms = 1;
    let server = JobServer::start(cfg).unwrap();
    let addr = server.addr();

    let specs: Vec<String> = (0..3)
        .map(|i| {
            format!(
                r#"{{"workload":{{"kind":"synth","seed":{},"b_max":8,"depth_limit":7}},"p":64}}"#,
                20 + i
            )
        })
        .collect();
    for (i, spec) in specs.iter().enumerate() {
        let (status, body) = client::post(addr, "/submit", spec);
        assert_eq!(status, 200);
        assert_eq!(body, format!(r#"{{"job":{}}}"#, i + 1));
    }

    let mut total_preemptions = 0u64;
    for (i, spec) in specs.iter().enumerate() {
        let id = (i + 1) as u64;
        let doc = wait_done(addr, id);
        let oracle = JobSpec::parse(spec).unwrap().oracle();
        let want = format!("\"outcome_fnv\": \"{:#018x}\"", outcome_digest(&oracle));
        assert!(doc.contains(&want), "job {id} diverged from its oracle:\n{doc}");
        let preemptions: u64 = doc
            .lines()
            .find_map(|l| l.trim().strip_prefix("\"preemptions\": "))
            .and_then(|v| v.trim_end_matches(',').parse().ok())
            .expect("result docs carry a preemption count");
        total_preemptions += preemptions;
    }
    assert!(
        total_preemptions > 0,
        "a slot-starved zero-quantum server must have parked at least one job"
    );

    server.shutdown();
    let _ = std::fs::remove_dir_all(&dir);
}
