//! Row-level helpers shared by the table binaries.

use uts_analysis::table::{fmt_e, TextTable};
use uts_core::{Outcome, Scheme};
use uts_machine::CostModel;

use crate::workloads::{run_workload, PaperWorkload};

/// The paper's machine size for Tables 2–5.
pub const PAPER_P: usize = 8192;

/// Quick-mode machine size.
pub const QUICK_P: usize = 512;

/// The static thresholds of Table 2.
pub const TABLE2_XS: [f64; 5] = [0.50, 0.60, 0.70, 0.80, 0.90];

/// One measured cell of Table 2/4: the three numbers the paper reports.
#[derive(Debug, Clone, Copy)]
pub struct Cell {
    /// Node-expansion cycles.
    pub n_expand: u64,
    /// Load-balancing phases (Table 2) — for Table 4 use `n_transfers`.
    pub n_lb: u64,
    /// Work transfers (`*N_lb`).
    pub n_transfers: u64,
    /// Efficiency.
    pub e: f64,
}

impl From<&Outcome> for Cell {
    fn from(out: &Outcome) -> Self {
        Cell {
            n_expand: out.report.n_expand,
            n_lb: out.report.n_lb,
            n_transfers: out.report.n_transfers,
            e: out.report.efficiency,
        }
    }
}

/// Run a (workload, scheme) cell at the standard machine size.
pub fn measure(wl: &PaperWorkload, scheme: Scheme, p: usize, cost: CostModel) -> Cell {
    Cell::from(&run_workload(wl, scheme, p, cost, false))
}

/// Render a Table-2-shaped block: one row group per workload with
/// `Nexpand`, `Nlb`, `E` for each (x, scheme) pair.
pub fn table2_block(
    rows: &[(u64, Vec<(String, Cell)>)], // (measured W, [(col label, cell)])
) -> TextTable {
    let mut header = vec!["W".to_string(), "metric".to_string()];
    if let Some((_, cols)) = rows.first() {
        header.extend(cols.iter().map(|(l, _)| l.clone()));
    }
    let mut t = TextTable::new(header);
    for (w, cols) in rows {
        t.row(
            std::iter::once(w.to_string())
                .chain(std::iter::once("Nexpand".to_string()))
                .chain(cols.iter().map(|(_, c)| c.n_expand.to_string()))
                .collect(),
        );
        t.row(
            std::iter::once(String::new())
                .chain(std::iter::once("Nlb".to_string()))
                .chain(cols.iter().map(|(_, c)| c.n_lb.to_string()))
                .collect(),
        );
        t.row(
            std::iter::once(String::new())
                .chain(std::iter::once("E".to_string()))
                .chain(cols.iter().map(|(_, c)| fmt_e(c.e)))
                .collect(),
        );
    }
    t
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::workloads::table_workloads;

    #[test]
    fn measure_produces_consistent_cell() {
        let mut wl = table_workloads()[0];
        wl.bound = 33;
        let cell = measure(&wl, Scheme::gp_static(0.7), 64, CostModel::cm2());
        assert!(cell.n_expand > 0);
        assert!(cell.e > 0.0 && cell.e <= 1.0);
        assert!(cell.n_transfers >= cell.n_lb.min(1));
    }

    #[test]
    fn table2_block_renders_row_groups() {
        let cell = Cell { n_expand: 198, n_lb: 54, n_transfers: 100, e: 0.52 };
        let rows = vec![(941_852u64, vec![("nGP 0.50".to_string(), cell)])];
        let t = table2_block(&rows);
        let s = t.to_string();
        assert!(s.contains("Nexpand"));
        assert!(s.contains("198"));
        assert!(s.contains("0.52"));
    }
}
