//! The calibrated 15-puzzle workloads behind Tables 2–5.
//!
//! Produced once by `cargo run --release -p uts-bench --bin recalibrate`
//! (a pool search over Korf instances and seeded scrambles for the IDA\*
//! iteration closest to each paper target) and hard-coded here so the table
//! binaries start instantly. Every entry's `w` is the *measured* serial
//! node count of the exhaustive bounded-DFS iteration; tests re-verify the
//! small ones (and `--bin recalibrate` re-verifies all).

use uts_core::{run, EngineConfig, Outcome, Scheme};
use uts_machine::CostModel;
use uts_puzzle15::{Board, Puzzle15};
use uts_tree::problem::BoundedProblem;

/// A calibrated workload: a start position and a cost bound whose
/// exhaustive bounded DFS expands `w` nodes.
#[derive(Debug, Clone, Copy)]
pub struct PaperWorkload {
    /// Which paper size this stands in for.
    pub paper_w: u64,
    /// Start position.
    pub tiles: [u8; 16],
    /// IDA\* iteration bound.
    pub bound: u32,
    /// Measured serial node count of the iteration.
    pub w: u64,
}

impl PaperWorkload {
    /// The puzzle problem for this workload.
    pub fn puzzle(&self) -> Puzzle15 {
        Puzzle15::new(Board::from_tiles(&self.tiles))
    }
}

/// The four table workloads (paper W ≈ 0.94M, 3.06M, 6.07M, 16.1M), within
/// ±1.6% of the paper's sizes.
pub fn table_workloads() -> [PaperWorkload; 4] {
    [
        PaperWorkload {
            paper_w: 941_852,
            tiles: [2, 13, 6, 7, 0, 5, 11, 3, 4, 1, 14, 10, 15, 8, 12, 9],
            bound: 41,
            w: 956_840,
        },
        PaperWorkload {
            paper_w: 3_055_171,
            tiles: [3, 6, 2, 11, 1, 9, 4, 14, 5, 7, 0, 8, 12, 15, 13, 10],
            bound: 42,
            w: 3_041_665,
        },
        PaperWorkload {
            paper_w: 6_073_623,
            // Korf instance #7.
            tiles: [2, 11, 15, 5, 13, 4, 6, 7, 12, 8, 10, 1, 9, 3, 14, 0],
            bound: 48,
            w: 5_986_735,
        },
        PaperWorkload {
            paper_w: 16_110_463,
            tiles: [13, 5, 8, 2, 4, 1, 11, 0, 12, 15, 10, 3, 9, 14, 6, 7],
            bound: 44,
            w: 16_033_284,
        },
    ]
}

/// Table 5's workload (paper W ≈ 2 067 137; ours 2 073 001, +0.3%).
pub fn table5_workload() -> PaperWorkload {
    PaperWorkload {
        paper_w: 2_067_137,
        tiles: [8, 4, 2, 6, 11, 3, 12, 7, 13, 1, 0, 10, 5, 9, 14, 15],
        bound: 40,
        w: 2_073_001,
    }
}

/// Quick-mode stand-ins: four much smaller iterations for smoke runs
/// (deterministic scrambles; `w` measured).
pub fn quick_workloads() -> [PaperWorkload; 4] {
    // Derived from the same calibration pool with targets /32.
    let mut out = table_workloads();
    for wl in &mut out {
        wl.bound -= 4; // two iterations shallower: roughly /30 in size
        wl.w = 0; // unknown until measured; quick mode reports measured W
    }
    out
}

/// Run one workload under `scheme` on `p` simulated processors.
pub fn run_workload(
    wl: &PaperWorkload,
    scheme: Scheme,
    p: usize,
    cost: CostModel,
    trace: bool,
) -> Outcome {
    let puzzle = wl.puzzle();
    let bp = BoundedProblem::new(&puzzle, wl.bound);
    let mut cfg = EngineConfig::new(p, scheme, cost);
    cfg.record_trace = trace;
    run(&bp, &cfg)
}

/// Like [`run_workload`] but with the load-balance ledger recorded;
/// returns the config too so callers can render the JSON run-report.
pub fn run_workload_ledger(
    wl: &PaperWorkload,
    scheme: Scheme,
    p: usize,
    cost: CostModel,
) -> (EngineConfig, Outcome) {
    let puzzle = wl.puzzle();
    let bp = BoundedProblem::new(&puzzle, wl.bound);
    let cfg = EngineConfig::new(p, scheme, cost).with_ledger();
    let out = run(&bp, &cfg);
    (cfg, out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use uts_puzzle15::calibrate::bounded_count_capped;

    #[test]
    fn workloads_are_solvable_permutations() {
        for wl in table_workloads().iter().chain([table5_workload()].iter()) {
            let b = Board::from_tiles(&wl.tiles);
            assert!(b.is_solvable());
        }
    }

    #[test]
    fn quick_workloads_have_shallower_bounds() {
        let full = table_workloads();
        let quick = quick_workloads();
        for (f, q) in full.iter().zip(&quick) {
            assert_eq!(q.bound + 4, f.bound);
        }
    }

    /// Verify the hard-coded W of the smallest workload by recounting.
    /// (The larger ones are verified by `--bin recalibrate`; recounting
    /// 16M nodes in a debug-mode test is too slow.)
    #[test]
    #[ignore = "recounts ~1M nodes; run with --ignored (or --release)"]
    fn smallest_workload_w_is_exact() {
        let wl = table_workloads()[0];
        let (w, _) = bounded_count_capped(&wl.puzzle(), wl.bound, wl.w * 2).unwrap();
        assert_eq!(w, wl.w);
    }

    #[test]
    fn run_workload_smoke_on_tiny_bound() {
        // Bound h0 gives a tiny first iteration — enough to exercise the
        // plumbing in a unit test.
        let mut wl = table_workloads()[0];
        wl.bound = 33; // first iterations are small
        let out = run_workload(&wl, Scheme::gp_static(0.8), 64, CostModel::cm2(), false);
        assert!(out.report.nodes_expanded > 0);
        assert!(!out.truncated);
    }
}
