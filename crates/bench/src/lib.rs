//! Benchmark harness shared by the table/figure regenerator binaries.
//!
//! One binary regenerates each table, one each figure:
//!
//! ```text
//! cargo run --release -p uts-bench --bin tables  -- [table1..table6|all] [--quick]
//! cargo run --release -p uts-bench --bin figures -- [fig3|fig4|fig7|fig8|all] [--quick]
//! cargo run --release -p uts-bench --bin repro   -- [--quick]
//! cargo run --release -p uts-bench --bin recalibrate
//! ```
//!
//! `--quick` shrinks problem sizes and processor counts by ~8× for smoke
//! runs; the full (default) settings reproduce the paper's scales (P = 8192,
//! W up to 16.1M).

pub mod runner;
pub mod sweep;
pub mod workloads;

/// Parse the common `--quick` flag out of `args`, returning (rest, quick).
pub fn parse_quick(args: &[String]) -> (Vec<String>, bool) {
    let quick = args.iter().any(|a| a == "--quick");
    (args.iter().filter(|a| *a != "--quick").cloned().collect(), quick)
}

#[cfg(test)]
mod tests {
    #[test]
    fn quick_flag_is_extracted() {
        let args = vec!["table2".to_string(), "--quick".to_string()];
        let (rest, quick) = super::parse_quick(&args);
        assert!(quick);
        assert_eq!(rest, vec!["table2".to_string()]);
    }

    #[test]
    fn absent_flag_is_false() {
        let (rest, quick) = super::parse_quick(&["all".to_string()]);
        assert!(!quick);
        assert_eq!(rest.len(), 1);
    }
}
