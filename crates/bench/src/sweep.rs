//! The (W, P) sweeps behind the isoefficiency figures (Figs. 4 & 7).
//!
//! The paper built its experimental isoefficiency graphs "by performing a
//! large number of experiments for a range of W and P, and then collecting
//! the points with equal efficiency" (Sec. 5). We sweep seeded synthetic
//! trees (calibrated to a geometric ladder of sizes) across a ladder of
//! machine sizes, then hand the samples to `uts_analysis::extract_contour`.

use uts_analysis::{extract_contour, fit_power_law, ContourPoint, Sample};
use uts_core::{run, EngineConfig, Scheme};
use uts_machine::CostModel;
use uts_synth::{find_tree, SizedTree};

/// Sweep grid configuration.
#[derive(Debug, Clone)]
pub struct SweepGrid {
    /// Machine sizes.
    pub ps: Vec<usize>,
    /// Target tree sizes (trees are calibrated to ±10% of these).
    pub w_targets: Vec<u64>,
}

impl SweepGrid {
    /// The full-scale grid (P up to the paper's 8192).
    pub fn full() -> Self {
        Self {
            ps: vec![512, 1024, 2048, 4096, 8192],
            w_targets: vec![65_536, 262_144, 1_048_576, 4_194_304, 16_777_216],
        }
    }

    /// Quick grid for smoke runs.
    pub fn quick() -> Self {
        Self { ps: vec![64, 128, 256], w_targets: vec![8_192, 32_768, 131_072] }
    }
}

/// Calibrate one synthetic tree per target size (shared across schemes so
/// every scheme sees the identical search spaces).
pub fn calibrated_trees(grid: &SweepGrid) -> Vec<SizedTree> {
    grid.w_targets.iter().map(|&t| find_tree(t, 0.10, 64)).collect()
}

/// Run the sweep for one scheme, returning `(P, W, E)` samples.
pub fn sweep_scheme(
    scheme: Scheme,
    grid: &SweepGrid,
    trees: &[SizedTree],
    cost: CostModel,
) -> Vec<Sample> {
    let mut samples = Vec::new();
    for &p in &grid.ps {
        for st in trees {
            let cfg = EngineConfig::new(p, scheme, cost);
            let out = run(&st.tree, &cfg);
            samples.push(Sample { p, w: st.w, e: out.report.efficiency });
        }
    }
    samples
}

/// An extracted isoefficiency curve plus its `W ∝ (P log2 P)^b` fit.
#[derive(Debug, Clone)]
pub struct IsoCurve {
    /// Target efficiency.
    pub e: f64,
    /// Contour points.
    pub points: Vec<ContourPoint>,
    /// Power-law exponent of W against `P log2 P` (1.0 = the paper's
    /// "highly scalable" O(P log P) shape), if ≥ 2 points were found.
    pub exponent: Option<f64>,
}

/// Extract contours at the given efficiency levels and fit each.
pub fn iso_curves(samples: &[Sample], levels: &[f64]) -> Vec<IsoCurve> {
    levels
        .iter()
        .map(|&e| {
            let points = extract_contour(samples, e);
            let exponent = if points.len() >= 2 {
                let pts: Vec<(f64, f64)> =
                    points.iter().map(|c| (c.p as f64 * (c.p as f64).log2(), c.w)).collect();
                Some(fit_power_law(&pts).b)
            } else {
                None
            };
            IsoCurve { e, points, exponent }
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quick_sweep_produces_full_grid() {
        let grid = SweepGrid::quick();
        let trees = calibrated_trees(&grid);
        assert_eq!(trees.len(), grid.w_targets.len());
        let samples = sweep_scheme(Scheme::gp_static(0.8), &grid, &trees, CostModel::cm2());
        assert_eq!(samples.len(), grid.ps.len() * trees.len());
        // Efficiency rises with W at fixed P.
        for &p in &grid.ps {
            let es: Vec<f64> = samples.iter().filter(|s| s.p == p).map(|s| s.e).collect();
            assert!(es.windows(2).all(|w| w[1] >= w[0] - 0.02), "P={p}: {es:?}");
        }
    }

    #[test]
    fn iso_curves_fit_exponents_when_bracketed() {
        let grid = SweepGrid::quick();
        let trees = calibrated_trees(&grid);
        let samples = sweep_scheme(Scheme::gp_static(0.8), &grid, &trees, CostModel::cm2());
        let curves = iso_curves(&samples, &[0.5]);
        assert_eq!(curves.len(), 1);
        if curves[0].points.len() >= 2 {
            let b = curves[0].exponent.unwrap();
            assert!(b > 0.0, "contours must rise with P, b={b}");
        }
    }
}
