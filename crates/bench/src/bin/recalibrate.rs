//! Regenerate the hard-coded paper workload calibration (see bench lib docs).
use std::time::Instant;
use uts_puzzle15::calibrate::{calibration_pool, find_workload, PAPER_TARGETS};

fn main() {
    let pool = calibration_pool(24);
    for target in PAPER_TARGETS {
        let t0 = Instant::now();
        let wl = find_workload(&pool, target, (target as f64 * 1.7) as u64).unwrap();
        let kind = if wl.instance.id == u32::MAX { "scramble" } else { "korf" };
        println!(
            "target={target} -> {kind} id={} tiles={:?} bound={} W={} err={:+.1}% ({:?})",
            wl.instance.id,
            wl.instance.tiles,
            wl.bound,
            wl.w,
            (wl.w as f64 / target as f64 - 1.0) * 100.0,
            t0.elapsed()
        );
    }
}
