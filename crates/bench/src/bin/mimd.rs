//! SIMD vs MIMD scalability comparison (the paper's Sec. 9 claim: the SIMD
//! schemes scale no worse than the best MIMD work-stealing schemes).
//!
//! ```text
//! cargo run --release -p uts-bench --bin mimd -- [compare|iso] [--quick]
//! ```
//!
//! * `compare` — efficiency side by side on the same trees and machine
//!   sizes;
//! * `iso` — isoefficiency exponents (W against P log2 P along equal-E
//!   contours) for both machine models.

use uts_analysis::table::{fmt_e, TextTable};
use uts_analysis::Sample;
use uts_bench::{parse_quick, sweep};
use uts_core::{run, EngineConfig, Scheme};
use uts_machine::CostModel;
use uts_mimd::{run_mimd, MimdConfig, StealPolicy};

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let (rest, quick) = parse_quick(&args);
    let which = rest.first().map(String::as_str).unwrap_or("compare");
    match which {
        "compare" => compare(quick),
        "iso" => iso(quick),
        other => {
            eprintln!("unknown mode `{other}` (expected compare or iso)");
            std::process::exit(2);
        }
    }
}

/// The MIMD policies compared (paper Sec. 9's "best MIMD schemes").
const POLICIES: [StealPolicy; 3] =
    [StealPolicy::GlobalRoundRobin, StealPolicy::AsyncRoundRobin, StealPolicy::RandomPolling];

fn compare(quick: bool) {
    println!("== SIMD (GP-D^K, GP-S^0.9) vs MIMD work stealing, same trees ==\n");
    let grid = if quick { sweep::SweepGrid::quick() } else { sweep::SweepGrid::full() };
    let trees = sweep::calibrated_trees(&grid);
    let cost = CostModel::cm2();
    let mut t = TextTable::new(vec![
        "P".to_string(),
        "W".to_string(),
        "GP-D^K".to_string(),
        "GP-S^0.9".to_string(),
        "MIMD GRR".to_string(),
        "MIMD ARR".to_string(),
        "MIMD RP".to_string(),
    ]);
    for &p in &grid.ps {
        for st in &trees {
            let dk = run(&st.tree, &EngineConfig::new(p, Scheme::gp_dk(), cost));
            let s9 = run(&st.tree, &EngineConfig::new(p, Scheme::gp_static(0.9), cost));
            let mut row = vec![
                p.to_string(),
                st.w.to_string(),
                fmt_e(dk.report.efficiency),
                fmt_e(s9.report.efficiency),
            ];
            for policy in POLICIES {
                let m = run_mimd(&st.tree, &MimdConfig::new(p, policy, cost));
                row.push(fmt_e(m.efficiency));
            }
            t.row(row);
        }
    }
    println!("{t}");
    println!(
        "(MIMD efficiencies are higher at equal (W, P) — no lockstep idling —\n\
         but the *scalability shape* is what the paper compares; see `iso`.)"
    );
}

fn iso(quick: bool) {
    println!("== Isoefficiency exponents: SIMD vs MIMD ==\n");
    let grid = if quick { sweep::SweepGrid::quick() } else { sweep::SweepGrid::full() };
    let trees = sweep::calibrated_trees(&grid);
    let cost = CostModel::cm2();
    let levels = if quick { vec![0.45, 0.60] } else { vec![0.55, 0.65, 0.75] };

    // SIMD series.
    for (name, scheme) in
        [("SIMD GP-D^K", Scheme::gp_dk()), ("SIMD GP-S^0.9", Scheme::gp_static(0.9))]
    {
        let samples = sweep::sweep_scheme(scheme, &grid, &trees, cost);
        print_curves(name, &sweep::iso_curves(&samples, &levels));
    }
    // MIMD series.
    for policy in POLICIES {
        let mut samples = Vec::new();
        for &p in &grid.ps {
            for st in &trees {
                let m = run_mimd(&st.tree, &MimdConfig::new(p, policy, cost));
                samples.push(Sample { p, w: st.w, e: m.efficiency });
            }
        }
        print_curves(&format!("MIMD {}", policy.name()), &sweep::iso_curves(&samples, &levels));
    }
    println!(
        "(The paper's claim holds when the SIMD exponents are comparable to the\n\
         MIMD ones — all near 1.0, i.e. W ~ P log P up to polylog factors.)"
    );
}

fn print_curves(name: &str, curves: &[sweep::IsoCurve]) {
    for c in curves {
        match c.exponent {
            Some(b) if c.points.len() >= 3 => println!(
                "  {name}: E={:.2} contour ({} pts): W ~ (P log P)^{b:.2}",
                c.e,
                c.points.len()
            ),
            _ => {}
        }
    }
}
