//! Engine-throughput harness: measures simulated nodes expanded per host
//! second for the fused hot loop and the reference two-sweep executor, and
//! writes the results to `BENCH_engine.json` (current directory).
//!
//! ```text
//! cargo run --release -p uts-bench --bin bench_engine -- [--quick] [--out PATH]
//! ```
//!
//! `--quick` shrinks the tree and machine sizes for CI smoke runs. The JSON
//! is hand-rolled (flat schema, no serializer dependency):
//!
//! ```json
//! {
//!   "bench": "engine_cycle",
//!   "tree": {"seed": 2, "b_max": 8, "depth_limit": 7, "nodes": 123456},
//!   "results": [
//!     {"engine": "fused", "p": 8192, "seconds": 1.23,
//!      "nodes_per_sec": 1.0e5, "n_expand": 42, "t_par_us": 99},
//!     ...
//!   ],
//!   "speedup_vs_reference": {"8192": 2.7}
//! }
//! ```

use std::fmt::Write as _;
use std::time::Instant;

use uts_core::{run, run_reference, EngineConfig, Outcome, Scheme};
use uts_machine::CostModel;
use uts_synth::GeometricTree;
use uts_tree::{serial_dfs, TreeProblem};

struct Measurement {
    engine: &'static str,
    p: usize,
    seconds: f64,
    nodes_per_sec: f64,
    n_expand: u64,
    t_par_us: u64,
}

/// Run `f` repeatedly until ~`budget_s` seconds elapse, returning the mean
/// seconds per run and the (schedule-invariant) outcome.
fn measure<F: FnMut() -> Outcome>(mut f: F, budget_s: f64) -> (f64, Outcome) {
    let first = f(); // warm-up (also warms allocator pools)
    let mut runs = 0u32;
    let start = Instant::now();
    loop {
        let out = f();
        runs += 1;
        let elapsed = start.elapsed().as_secs_f64();
        if elapsed >= budget_s {
            debug_assert_eq!(out.report.n_expand, first.report.n_expand, "runs are deterministic");
            return (elapsed / runs as f64, out);
        }
    }
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let quick = args.iter().any(|a| a == "--quick");
    let out_idx = args.iter().position(|a| a == "--out");
    let out_path = out_idx
        .map(|i| {
            args.get(i + 1).cloned().unwrap_or_else(|| {
                eprintln!("error: --out requires a path");
                std::process::exit(2);
            })
        })
        .unwrap_or_else(|| "BENCH_engine.json".to_string());
    for (i, a) in args.iter().enumerate() {
        let is_out_value = out_idx == Some(i.wrapping_sub(1));
        if a != "--quick" && a != "--out" && !is_out_value {
            eprintln!("error: unknown argument `{a}` (usage: bench_engine [--quick] [--out PATH])");
            std::process::exit(2);
        }
    }

    let (depth_limit, ps, budget_s): (u32, &[usize], f64) =
        if quick { (5, &[256], 0.2) } else { (7, &[1024, 8192], 2.0) };
    let tree = GeometricTree { seed: 2, b_max: 8, depth_limit };
    let w = serial_dfs(&tree).expanded;
    // Exercise the root so a broken workload fails loudly before timing.
    let mut probe = Vec::new();
    tree.expand(&tree.root(), &mut probe);
    assert!(!probe.is_empty(), "bench tree must branch at the root");

    eprintln!("tree: geometric seed=2 b_max=8 depth_limit={depth_limit} ({w} nodes)");

    let mut results: Vec<Measurement> = Vec::new();
    for &p in ps {
        let cfg = EngineConfig::new(p, Scheme::gp_dk(), CostModel::cm2());
        for (engine, runner) in [
            ("fused", run as fn(&GeometricTree, &EngineConfig) -> Outcome),
            ("reference", run_reference as fn(&GeometricTree, &EngineConfig) -> Outcome),
        ] {
            let (seconds, out) = measure(|| runner(&tree, &cfg), budget_s);
            assert_eq!(out.report.nodes_expanded, w, "anomaly-free contract");
            let nodes_per_sec = w as f64 / seconds;
            eprintln!("P={p:>5} {engine:<9} {seconds:>8.4} s/run  {nodes_per_sec:>12.0} nodes/s");
            results.push(Measurement {
                engine,
                p,
                seconds,
                nodes_per_sec,
                n_expand: out.report.n_expand,
                t_par_us: out.report.t_par,
            });
        }
    }

    let mut json = String::new();
    json.push_str("{\n  \"bench\": \"engine_cycle\",\n");
    let _ = writeln!(
        json,
        "  \"tree\": {{\"seed\": 2, \"b_max\": 8, \"depth_limit\": {depth_limit}, \"nodes\": {w}}},"
    );
    json.push_str("  \"results\": [\n");
    for (i, m) in results.iter().enumerate() {
        let comma = if i + 1 < results.len() { "," } else { "" };
        let _ = writeln!(
            json,
            "    {{\"engine\": \"{}\", \"p\": {}, \"seconds\": {:.6}, \"nodes_per_sec\": {:.1}, \"n_expand\": {}, \"t_par_us\": {}}}{comma}",
            m.engine, m.p, m.seconds, m.nodes_per_sec, m.n_expand, m.t_par_us
        );
    }
    json.push_str("  ],\n  \"speedup_vs_reference\": {");
    let mut first = true;
    for &p in ps {
        let fused = results.iter().find(|m| m.p == p && m.engine == "fused");
        let reference = results.iter().find(|m| m.p == p && m.engine == "reference");
        if let (Some(f), Some(r)) = (fused, reference) {
            if !first {
                json.push_str(", ");
            }
            first = false;
            let _ = write!(json, "\"{}\": {:.2}", p, f.nodes_per_sec / r.nodes_per_sec);
            eprintln!(
                "P={p:>5} fused/reference speedup: {:.2}x",
                f.nodes_per_sec / r.nodes_per_sec
            );
        }
    }
    json.push_str("}\n}\n");

    match std::fs::write(&out_path, &json) {
        Ok(()) => eprintln!("wrote {out_path}"),
        Err(e) => {
            eprintln!("could not write {out_path}: {e}");
            std::process::exit(1);
        }
    }
}
