//! Engine-throughput harness: measures simulated nodes expanded per host
//! second for the host-parallel macro engine, the event-horizon macro
//! engine, the fused hot loop, and the reference two-sweep executor, and
//! writes the results to `BENCH_engine.json` (current directory).
//!
//! ```text
//! cargo run --release -p uts-bench --bin bench_engine -- [--quick] [--check] [--out PATH]
//! ```
//!
//! Two workloads are measured (one in `--quick` mode): the 35k-node
//! geometric tree at the paper's machine sizes, and a 2.2M-node deep tree
//! at P = 8192. The small tree undersubscribes an 8K machine so badly
//! that the trigger fires after nearly every cycle — there the macro
//! engine can only show parity with the fused loop (its single-cycle fast
//! path) — while the deep tree reaches a steady state whose multi-cycle
//! horizons let macro-stepping actually pay.
//!
//! The par engine is measured twice per workload: `par1` pins one worker
//! (`with_threads(1)`, the inline parity leg) and `par` pins the
//! auto-detected count (`RAYON_NUM_THREADS` respected) into the config,
//! so the worker count each leg records is by construction the one it ran
//! with. The numbers mean different things on different hosts: on a
//! single-core machine `par` takes the inline path and can only show
//! parity with the macro engine, while on a multicore host the pooled
//! burst phase should beat it outright. `host_threads` — top-level for
//! the machine, and per result row for the worker count that leg actually
//! used — records which regime was measured.
//!
//! `--quick` shrinks the tree and machine sizes for CI smoke runs.
//! `--report PATH` additionally writes a ledger-enabled run-report
//! (`uts_core::run_report_json`) for the first workload — donation spread
//! plus per-phase trigger provenance. The timed floor runs always keep the
//! ledger off, so `--report` never perturbs the regression gate.
//! `--check` exits non-zero if an engine regresses past its floor —
//! fused >= 0.9x reference, macro >= 0.9x fused, and parallelism-aware
//! par floors: par and par1 >= 0.85x macro always (parity within noise,
//! any host), plus par >= 2.0x macro on the deep d10 tree when the host
//! has >= 4 cores *and* the par leg ran with >= 4 workers (the scaling
//! target the persistent worker pool buys; never asserted on hosts that
//! cannot physically reach it). The CI guard against a hot-path refactor
//! quietly giving the speedups back. So the multicore CI leg can enforce
//! the scaling floor cheaply, `--quick` keeps the d10 workload on a
//! reduced budget alongside the small smoke tree.
//!
//! A dedicated checkpoint-overhead pair (`ckpt-d7` in the JSON) runs the
//! macro engine on a mid-size tree with and without a dense every-16th-
//! boundary snapshot policy; `--check` holds checkpoint-on throughput
//! to >= 0.8x checkpoint-off (`ckpt_on_vs_off` in the speedups map). The JSON
//! is hand-rolled (flat schema, no serializer dependency):
//!
//! ```json
//! {
//!   "bench": "engine_cycle",
//!   "trees": [
//!     {"label": "d7", "seed": 2, "b_max": 8, "depth_limit": 7, "nodes": 34542},
//!     ...
//!   ],
//!   "results": [
//!     {"tree": "d7", "engine": "macro", "p": 8192, "seconds": 1.23,
//!      "nodes_per_sec": 1.0e5, "n_expand": 42, "t_par_us": 99},
//!     ...
//!   ],
//!   "speedups": {
//!     "fused_vs_reference": {"d7/8192": 2.7, ...},
//!     "macro_vs_fused": {"d7/8192": 1.0, "d10/8192": 1.3, ...},
//!     "macro_vs_reference": {"d7/8192": 2.8, ...}
//!   }
//! }
//! ```

use std::fmt::Write as _;
use std::time::Instant;

use uts_ckpt::CheckpointPolicy;
use uts_core::{
    run, run_fused, run_par, run_reference, run_report_json, CheckpointCfg, EngineConfig, Outcome,
    Scheme,
};
use uts_machine::CostModel;
use uts_synth::GeometricTree;
use uts_tree::{serial_dfs, TreeProblem};

struct TreeCase {
    label: &'static str,
    depth_limit: u32,
    ps: &'static [usize],
    budget_s: f64,
}

struct Measurement {
    tree: &'static str,
    engine: &'static str,
    p: usize,
    /// Host worker threads this leg ran with (1 for the serial engines and
    /// the pinned `par1` leg; the resolved auto count for `par`).
    host_threads: usize,
    seconds: f64,
    nodes_per_sec: f64,
    n_expand: u64,
    t_par_us: u64,
}

/// The worker count `run_par` resolves when the config leaves `threads`
/// unset (mirrors `uts_core::parstep::resolve_threads`, which is crate-
/// private): `RAYON_NUM_THREADS`, else one worker per available core.
fn auto_threads() -> usize {
    std::env::var("RAYON_NUM_THREADS")
        .ok()
        .and_then(|s| s.parse().ok())
        .filter(|&n: &usize| n > 0)
        .unwrap_or_else(|| std::thread::available_parallelism().map_or(1, |n| n.get()))
        .max(1)
}

/// Run `f` repeatedly until ~`budget_s` seconds elapse, returning the
/// *best* (minimum) seconds per run and the (schedule-invariant) outcome.
///
/// The minimum, not the mean: these ratios gate CI on shared, noisy hosts
/// where a scheduler hiccup during one engine's window would skew a mean
/// by tens of percent. Interference only ever slows a run down, so the
/// per-engine minimum estimates uncontended cost and ratios of minima stay
/// stable run-to-run.
///
/// A quarter of the budget is spent on untimed warm-up first: engines are
/// measured back-to-back, and without it the first engine measured pays
/// the CPU's frequency ramp and cold caches, skewing the speedup ratios.
fn measure<F: FnMut() -> Outcome>(mut f: F, budget_s: f64) -> (f64, Outcome) {
    let first = f();
    let warm = Instant::now();
    while warm.elapsed().as_secs_f64() < budget_s * 0.25 {
        f();
    }
    let mut best = f64::INFINITY;
    let start = Instant::now();
    loop {
        let t0 = Instant::now();
        let out = f();
        best = best.min(t0.elapsed().as_secs_f64());
        if start.elapsed().as_secs_f64() >= budget_s {
            debug_assert_eq!(out.report.n_expand, first.report.n_expand, "runs are deterministic");
            return (best, out);
        }
    }
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let quick = args.iter().any(|a| a == "--quick");
    let check = args.iter().any(|a| a == "--check");
    let out_idx = args.iter().position(|a| a == "--out");
    let out_path = out_idx
        .map(|i| {
            args.get(i + 1).cloned().unwrap_or_else(|| {
                eprintln!("error: --out requires a path");
                std::process::exit(2);
            })
        })
        .unwrap_or_else(|| "BENCH_engine.json".to_string());
    let report_idx = args.iter().position(|a| a == "--report");
    let report_path = report_idx.map(|i| {
        args.get(i + 1).cloned().unwrap_or_else(|| {
            eprintln!("error: --report requires a path");
            std::process::exit(2);
        })
    });
    for (i, a) in args.iter().enumerate() {
        let is_out_value = out_idx == Some(i.wrapping_sub(1));
        let is_report_value = report_idx == Some(i.wrapping_sub(1));
        if a != "--quick"
            && a != "--check"
            && a != "--out"
            && a != "--report"
            && !is_out_value
            && !is_report_value
        {
            eprintln!(
                "error: unknown argument `{a}` (usage: bench_engine [--quick] [--check] [--out PATH] [--report PATH])"
            );
            std::process::exit(2);
        }
    }

    // Quick mode keeps the deep d10 workload (on a reduced budget): it is
    // the only tree whose horizons are long enough to exercise the par
    // scaling floor, and CI's multicore leg runs `--quick --check` — a
    // quick mode without d10 would make that leg's >= 2x gate vacuous.
    let cases: &[TreeCase] = if quick {
        &[
            TreeCase { label: "d5", depth_limit: 5, ps: &[256], budget_s: 0.2 },
            TreeCase { label: "d10", depth_limit: 10, ps: &[8192], budget_s: 0.5 },
        ]
    } else {
        &[
            TreeCase { label: "d7", depth_limit: 7, ps: &[1024, 8192], budget_s: 2.0 },
            TreeCase { label: "d10", depth_limit: 10, ps: &[8192], budget_s: 1.0 },
        ]
    };

    let mut results: Vec<Measurement> = Vec::new();
    let mut tree_sizes: Vec<(&'static str, u32, u64)> = Vec::new();
    for case in cases {
        let tree = GeometricTree { seed: 2, b_max: 8, depth_limit: case.depth_limit };
        let w = serial_dfs(&tree).expanded;
        tree_sizes.push((case.label, case.depth_limit, w));
        // Exercise the root so a broken workload fails loudly before timing.
        let mut probe = Vec::new();
        tree.expand(&tree.root(), &mut probe);
        assert!(!probe.is_empty(), "bench tree must branch at the root");

        eprintln!(
            "tree {}: geometric seed=2 b_max=8 depth_limit={} ({w} nodes)",
            case.label, case.depth_limit
        );
        for &p in case.ps {
            let cfg = EngineConfig::new(p, Scheme::gp_dk(), CostModel::cm2());
            // Pin the auto-detected count into the config so the worker
            // count the leg *records* is by construction the one it *ran*
            // with — the JSON row is the measurement's provenance, not a
            // parallel guess at what `run_par` resolved internally.
            let auto = auto_threads();
            type Runner = fn(&GeometricTree, &EngineConfig) -> Outcome;
            let legs: [(&'static str, EngineConfig, usize, Runner); 5] = [
                ("par", cfg.clone().with_threads(auto), auto, run_par),
                ("par1", cfg.clone().with_threads(1), 1, run_par),
                ("macro", cfg.clone(), 1, run),
                ("fused", cfg.clone(), 1, run_fused),
                ("reference", cfg.clone(), 1, run_reference),
            ];
            for (engine, leg_cfg, leg_threads, runner) in legs {
                let (seconds, out) = measure(|| runner(&tree, &leg_cfg), case.budget_s);
                assert_eq!(out.report.nodes_expanded, w, "anomaly-free contract");
                let nodes_per_sec = w as f64 / seconds;
                eprintln!(
                    "{:<4} P={p:>5} {engine:<9} t={leg_threads:<3} {seconds:>8.4} s/run  {nodes_per_sec:>12.0} nodes/s",
                    case.label
                );
                results.push(Measurement {
                    tree: case.label,
                    engine,
                    p,
                    host_threads: leg_threads,
                    seconds,
                    nodes_per_sec,
                    n_expand: out.report.n_expand,
                    t_par_us: out.report.t_par,
                });
            }
        }
    }

    // Checkpoint overhead: the macro engine with and without a periodic
    // snapshot policy (every 16th macro-step boundary — a *dense* schedule;
    // real deployments checkpoint far less often) on a dedicated mid-size
    // workload. The tiny `--quick` tree cannot host this comparison — its
    // whole run is ~100 us, so a single snapshot (which serializes the
    // entire live frontier) eats a double-digit share no matter the
    // policy — hence the fixed d7 tree in both modes. A fresh in-memory
    // sink per run keeps one timed run's snapshots out of the next one's
    // allocator.
    let (ckpt_label, ckpt_p) = ("ckpt-d7", 256usize);
    {
        let ckpt_budget = if quick { 0.2 } else { 1.0 };
        let tree = GeometricTree { seed: 2, b_max: 8, depth_limit: 7 };
        let w = serial_dfs(&tree).expanded;
        tree_sizes.push((ckpt_label, 7, w));
        let base_cfg = EngineConfig::new(ckpt_p, Scheme::gp_dk(), CostModel::cm2());
        for (engine, armed) in [("macro", false), ("macro_ckpt", true)] {
            let (seconds, out) = measure(
                || {
                    if armed {
                        let cfg = base_cfg
                            .clone()
                            .with_checkpoint_cfg(CheckpointCfg::new(CheckpointPolicy::every(16)));
                        run(&tree, &cfg)
                    } else {
                        run(&tree, &base_cfg)
                    }
                },
                ckpt_budget,
            );
            assert_eq!(out.report.nodes_expanded, w, "checkpointing must not perturb the schedule");
            let nodes_per_sec = w as f64 / seconds;
            eprintln!(
                "{ckpt_label:<4} P={ckpt_p:>5} {engine:<10} {seconds:>8.4} s/run  {nodes_per_sec:>12.0} nodes/s"
            );
            results.push(Measurement {
                tree: ckpt_label,
                engine,
                p: ckpt_p,
                host_threads: 1,
                seconds,
                nodes_per_sec,
                n_expand: out.report.n_expand,
                t_par_us: out.report.t_par,
            });
        }
    }

    let configs: Vec<(&'static str, usize)> =
        cases.iter().flat_map(|c| c.ps.iter().map(|&p| (c.label, p))).collect();
    let rate = |tree: &str, p: usize, engine: &str| {
        results
            .iter()
            .find(|m| m.tree == tree && m.p == p && m.engine == engine)
            .map(|m| m.nodes_per_sec)
    };
    let ratio_map = |num: &str, den: &str| {
        let mut s = String::new();
        let mut first = true;
        for &(tree, p) in &configs {
            if let (Some(n), Some(d)) = (rate(tree, p, num), rate(tree, p, den)) {
                if !first {
                    s.push_str(", ");
                }
                first = false;
                let _ = write!(s, "\"{tree}/{p}\": {:.2}", n / d);
                eprintln!("{tree:<4} P={p:>5} {num}/{den} speedup: {:.2}x", n / d);
            }
        }
        s
    };

    let host_threads = std::thread::available_parallelism().map_or(1, |n| n.get());
    let mut json = String::new();
    json.push_str("{\n  \"bench\": \"engine_cycle\",\n");
    let _ = writeln!(json, "  \"host_threads\": {host_threads},");
    json.push_str("  \"trees\": [\n");
    for (i, (label, depth, w)) in tree_sizes.iter().enumerate() {
        let comma = if i + 1 < tree_sizes.len() { "," } else { "" };
        let _ = writeln!(
            json,
            "    {{\"label\": \"{label}\", \"seed\": 2, \"b_max\": 8, \"depth_limit\": {depth}, \"nodes\": {w}}}{comma}"
        );
    }
    json.push_str("  ],\n  \"results\": [\n");
    for (i, m) in results.iter().enumerate() {
        let comma = if i + 1 < results.len() { "," } else { "" };
        let _ = writeln!(
            json,
            "    {{\"tree\": \"{}\", \"engine\": \"{}\", \"p\": {}, \"host_threads\": {}, \"seconds\": {:.6}, \"nodes_per_sec\": {:.1}, \"n_expand\": {}, \"t_par_us\": {}}}{comma}",
            m.tree, m.engine, m.p, m.host_threads, m.seconds, m.nodes_per_sec, m.n_expand, m.t_par_us
        );
    }
    json.push_str("  ],\n  \"speedups\": {\n");
    let _ = writeln!(json, "    \"fused_vs_reference\": {{{}}},", ratio_map("fused", "reference"));
    let _ = writeln!(json, "    \"macro_vs_fused\": {{{}}},", ratio_map("macro", "fused"));
    let _ = writeln!(json, "    \"macro_vs_reference\": {{{}}},", ratio_map("macro", "reference"));
    let _ = writeln!(json, "    \"par_vs_macro\": {{{}}},", ratio_map("par", "macro"));
    let _ = writeln!(json, "    \"par1_vs_macro\": {{{}}},", ratio_map("par1", "macro"));
    let _ = writeln!(json, "    \"par_vs_reference\": {{{}}},", ratio_map("par", "reference"));
    let ck_ratio = rate(ckpt_label, ckpt_p, "macro_ckpt").unwrap()
        / rate(ckpt_label, ckpt_p, "macro").unwrap();
    eprintln!("{ckpt_label} P={ckpt_p:>5} ckpt-on/ckpt-off throughput: {ck_ratio:.2}x");
    let _ = writeln!(json, "    \"ckpt_on_vs_off\": {{\"{ckpt_label}/{ckpt_p}\": {ck_ratio:.2}}}");
    json.push_str("  }\n}\n");

    match std::fs::write(&out_path, &json) {
        Ok(()) => eprintln!("wrote {out_path}"),
        Err(e) => {
            eprintln!("could not write {out_path}: {e}");
            std::process::exit(1);
        }
    }

    if let Some(path) = report_path {
        // One untimed, ledger-enabled run on the first workload at its
        // smallest machine size; the timed measurements above never see
        // the ledger.
        let case = &cases[0];
        let tree = GeometricTree { seed: 2, b_max: 8, depth_limit: case.depth_limit };
        let p = case.ps[0];
        let cfg = EngineConfig::new(p, Scheme::gp_dk(), CostModel::cm2()).with_ledger();
        let report = run_report_json(&cfg, &run(&tree, &cfg));
        match std::fs::write(&path, &report) {
            Ok(()) => eprintln!("wrote {path} (ledger run-report, {} P={p})", case.label),
            Err(e) => {
                eprintln!("could not write {path}: {e}");
                std::process::exit(1);
            }
        }
    }

    if check {
        // Regression floors, deliberately loose (0.9x) so machine noise
        // doesn't flake CI while a real hot-path regression still trips.
        // The par floors are parallelism-aware: parity-within-noise holds
        // on any host (one worker = the macro engine plus a branch), while
        // the 1.5x scaling floor only applies where the hardware can
        // physically deliver it (>= 4 cores, and only on the deep tree
        // whose horizons are long enough to amortize the fan-out).
        let mut ok = true;
        for &(tree, p) in &configs {
            let (pa, pa1, ma, fu, re) = (
                rate(tree, p, "par").unwrap(),
                rate(tree, p, "par1").unwrap(),
                rate(tree, p, "macro").unwrap(),
                rate(tree, p, "fused").unwrap(),
                rate(tree, p, "reference").unwrap(),
            );
            if fu < 0.9 * re {
                eprintln!("CHECK FAIL {tree} P={p}: fused {fu:.0} < 0.9x reference {re:.0}");
                ok = false;
            }
            if ma < 0.9 * fu {
                eprintln!("CHECK FAIL {tree} P={p}: macro {ma:.0} < 0.9x fused {fu:.0}");
                ok = false;
            }
            // 0.85, not 0.9: these are parity checks, not scaling checks,
            // and a single-worker `run_par` that runs the macro engine's
            // exact step code still measures a few percent slower from
            // codegen/layout differences alone. `par1` pins one worker, so
            // the floor holds on any host; `par` only equals it where the
            // auto-detected count is 1.
            if pa1 < 0.85 * ma {
                eprintln!("CHECK FAIL {tree} P={p}: par1 {pa1:.0} < 0.85x macro {ma:.0}");
                ok = false;
            }
            if pa < 0.85 * ma {
                eprintln!("CHECK FAIL {tree} P={p}: par {pa:.0} < 0.85x macro {ma:.0}");
                ok = false;
            }
            // The scaling floor gates on the threads the par leg actually
            // ran with (its recorded row), not just the machine's core
            // count: an operator pinning RAYON_NUM_THREADS=1 on a big box
            // is measuring parity, not scaling.
            let par_threads = results
                .iter()
                .find(|m| m.tree == tree && m.p == p && m.engine == "par")
                .map_or(1, |m| m.host_threads);
            if host_threads >= 4 && par_threads >= 4 && tree == "d10" && pa < 2.0 * ma {
                eprintln!(
                    "CHECK FAIL {tree} P={p}: par {pa:.0} < 2.0x macro {ma:.0} \
                     with {par_threads} workers on {host_threads} host threads"
                );
                ok = false;
            }
        }
        // A dense (every-16th-boundary) checkpoint schedule must cost at
        // most 20% of macro throughput on the dedicated overhead workload;
        // any real (sparser) policy costs strictly less.
        let ck = rate(ckpt_label, ckpt_p, "macro_ckpt").unwrap();
        let ma = rate(ckpt_label, ckpt_p, "macro").unwrap();
        if ck < 0.8 * ma {
            eprintln!(
                "CHECK FAIL {ckpt_label} P={ckpt_p}: macro+ckpt {ck:.0} < 0.8x macro {ma:.0}"
            );
            ok = false;
        }
        if !ok {
            std::process::exit(1);
        }
        eprintln!(
            "check passed: fused >= 0.9x reference, macro >= 0.9x fused, par/par1 >= 0.85x macro, \
             ckpt-on >= 0.8x ckpt-off{} ({host_threads} host threads)",
            if host_threads >= 4 { ", par >= 2.0x macro on d10" } else { "" }
        );
    }
}
