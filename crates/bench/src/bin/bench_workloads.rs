//! Workload-family harness for the on-the-fly generators (`uts-synthgen`):
//! proves the O(stack)-memory claim with numbers and pins bit-identity of
//! the generated families across every execution mode. Writes
//! `BENCH_workloads.json` (current directory).
//!
//! ```text
//! cargo run --release -p uts-bench --bin bench_workloads -- [--quick] [--check] [--out PATH]
//! ```
//!
//! Two workloads run per mode: a geometric tree sized by closed-form
//! target search (`find_gen_tree`) — in full mode at least 10^8 nodes —
//! and a subcritical binomial tree. Each workload runs once per leg:
//! reference, fused, macro, and the par engine pinned to 1, 2 and 8
//! workers, plus one kill→resume cycle on the macro engine. Every row
//! records wall seconds, the measured `peak_stack_nodes`, the resident
//! bytes per PE that peak implies (`peak * size_of::<GenNode>()`), and
//! the FNV-1a outcome digest.
//!
//! The rows are claims, `--check` makes them floors:
//!
//! - **bit-identity**: all legs of a workload — every engine, every
//!   worker count, and the killed-then-resumed run — digest equal;
//! - **O(stack) memory**: every leg's resident bytes per PE stay under a
//!   fixed 64 KiB ceiling — for the 10^8-node tree that is a ~10^5x gap
//!   to the ~1.6 GB the materialized node set would need, so the bound
//!   can only hold if nodes really are generated and dropped in place;
//! - **scale** (full mode only): the geometric workload measured at
//!   least 10^8 expanded nodes.
//!
//! `--quick` shrinks both workloads for CI smoke runs; the schema and
//! the checks are identical. Timings are provenance, not gates — this
//! harness never compares throughput between legs (that is
//! `bench_engine`'s job).
//!
//! ```json
//! {
//!   "bench": "workloads",
//!   "node_bytes": 16,
//!   "mem_ceiling_bytes_per_pe": 65536,
//!   "workloads": [
//!     {"label": "geo", "family": "geometric", "seed": 3, "b_max": 8,
//!      "depth_limit": 13, "expected_nodes": 8.9e7, "stack_bound_nodes": 92,
//!      "nodes": 104857600},
//!     ...
//!   ],
//!   "results": [
//!     {"workload": "geo", "engine": "fused", "p": 1024, "host_threads": 1,
//!      "seconds": 71.2, "nodes_per_sec": 1.4e6, "n_expand": 120000,
//!      "peak_stack_nodes": 131, "resident_bytes_per_pe": 2096,
//!      "outcome_fnv": "0x..."},
//!     ...
//!   ],
//!   "resume": [
//!     {"workload": "geo", "engine": "macro", "kill_at": 64,
//!      "snapshot_bytes": 123456, "outcome_fnv": "0x...", "matches_straight": true}
//!   ]
//! }
//! ```

use std::fmt::Write as _;
use std::time::Instant;

use uts_ckpt::{CheckpointPolicy, FaultPlan};
use uts_core::{run, run_fused, run_par, run_reference, EngineConfig, Outcome, Scheme};
use uts_machine::CostModel;
use uts_serve::outcome_digest;
use uts_synthgen::{find_gen_tree, GenNode, GenTree};
use uts_tree::serial_dfs;

/// Per-PE resident ceiling `--check` enforces (bytes of live node
/// frames). Generously above any measured peak, crushingly below the
/// materialized node set of even the quick workloads.
const MEM_CEILING_BYTES_PER_PE: usize = 64 * 1024;

struct WlCase {
    label: &'static str,
    tree: GenTree,
    /// Serial node count (the oracle `W`).
    w: u64,
    /// JSON fragment describing the generator (family-specific fields).
    workload_json: String,
    p: usize,
    /// Macro-step boundary the kill→resume leg dies at.
    kill_at: u64,
    ckpt_every: u64,
}

struct Row {
    workload: &'static str,
    engine: &'static str,
    p: usize,
    host_threads: usize,
    seconds: f64,
    nodes_per_sec: f64,
    n_expand: u64,
    peak_stack_nodes: usize,
    resident_bytes_per_pe: usize,
    digest: u64,
}

fn workload_json(label: &str, tree: &GenTree, w: u64) -> String {
    use uts_synthgen::GenFamily;
    match tree.family {
        GenFamily::Geometric { b_max, depth_limit } => format!(
            "{{\"label\": \"{label}\", \"family\": \"geometric\", \"seed\": {}, \"b_max\": {b_max}, \
             \"depth_limit\": {depth_limit}, \"expected_nodes\": {:.1}, \
             \"stack_bound_nodes\": {}, \"nodes\": {w}}}",
            tree.seed,
            tree.expected_size(),
            tree.stack_bound().expect("geometric trees are depth-bounded"),
        ),
        GenFamily::Binomial { b0, m, q_threshold } => format!(
            "{{\"label\": \"{label}\", \"family\": \"binomial\", \"seed\": {}, \"b0\": {b0}, \
             \"m\": {m}, \"q\": {:.4}, \"expected_nodes\": {:.1}, \
             \"stack_bound_nodes\": null, \"nodes\": {w}}}",
            tree.seed,
            q_threshold as f64 / u64::MAX as f64,
            tree.expected_size(),
        ),
    }
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let quick = args.iter().any(|a| a == "--quick");
    let check = args.iter().any(|a| a == "--check");
    let out_idx = args.iter().position(|a| a == "--out");
    let out_path = out_idx
        .map(|i| {
            args.get(i + 1).cloned().unwrap_or_else(|| {
                eprintln!("error: --out requires a path");
                std::process::exit(2);
            })
        })
        .unwrap_or_else(|| "BENCH_workloads.json".to_string());
    for (i, a) in args.iter().enumerate() {
        if a != "--quick" && a != "--check" && a != "--out" && out_idx != Some(i.wrapping_sub(1)) {
            eprintln!(
                "error: unknown argument `{a}` (usage: bench_workloads [--quick] [--check] [--out PATH])"
            );
            std::process::exit(2);
        }
    }

    // The geometric workload is sized by target search; in full mode the
    // target sits far enough above 10^8 that any tree within tolerance
    // clears the scale floor. The binomial workload needs no search — its
    // size is recorded, not targeted.
    let cases: Vec<WlCase> = if quick {
        let geo = find_gen_tree(20_000, 0.2, 16);
        let bin = GenTree::binomial(9, 500, 4, 0.22);
        let bin_w = serial_dfs(&bin).expanded;
        vec![
            WlCase {
                label: "geo-20k",
                workload_json: workload_json("geo-20k", &geo.tree, geo.w),
                tree: geo.tree,
                w: geo.w,
                p: 256,
                kill_at: 8,
                ckpt_every: 4,
            },
            WlCase {
                label: "bin-2k",
                workload_json: workload_json("bin-2k", &bin, bin_w),
                tree: bin,
                w: bin_w,
                p: 256,
                kill_at: 8,
                ckpt_every: 4,
            },
        ]
    } else {
        eprintln!("searching for a >= 10^8-node geometric tree (serial probes)...");
        let geo = find_gen_tree(120_000_000, 0.15, 24);
        assert!(
            geo.w >= 100_000_000,
            "seed search found only {} nodes; widen the target or seed range",
            geo.w
        );
        // b0 bounds the root burst (all b0 children land on one stack
        // before balancing), so it must itself fit the per-PE ceiling;
        // the size comes from pushing q*m toward 1 instead.
        let bin = GenTree::binomial(9, 2_000, 4, 0.2475);
        let bin_w = serial_dfs(&bin).expanded;
        vec![
            WlCase {
                label: "geo-1e8",
                workload_json: workload_json("geo-1e8", &geo.tree, geo.w),
                tree: geo.tree,
                w: geo.w,
                p: 1024,
                kill_at: 64,
                ckpt_every: 32,
            },
            WlCase {
                label: "bin-500k",
                workload_json: workload_json("bin-500k", &bin, bin_w),
                tree: bin,
                w: bin_w,
                p: 1024,
                kill_at: 16,
                ckpt_every: 8,
            },
        ]
    };

    let node_bytes = std::mem::size_of::<GenNode>();
    let mut rows: Vec<Row> = Vec::new();
    let mut resume_rows: Vec<String> = Vec::new();
    let mut all_identical = true;
    let mut mem_ok = true;

    for case in &cases {
        eprintln!("workload {}: {} nodes, P={}", case.label, case.w, case.p);
        let cfg = EngineConfig::new(case.p, Scheme::gp_dk(), CostModel::cm2());
        type Runner = fn(&GenTree, &EngineConfig) -> Outcome;
        let legs: [(&'static str, EngineConfig, usize, Runner); 6] = [
            ("reference", cfg.clone(), 1, run_reference),
            ("fused", cfg.clone(), 1, run_fused),
            ("macro", cfg.clone(), 1, run),
            ("par1", cfg.clone().with_threads(1), 1, run_par),
            ("par2", cfg.clone().with_threads(2), 2, run_par),
            ("par8", cfg.clone().with_threads(8), 8, run_par),
        ];
        let mut digests: Vec<u64> = Vec::new();
        for (engine, leg_cfg, leg_threads, runner) in legs {
            let t0 = Instant::now();
            let out = runner(&case.tree, &leg_cfg);
            let seconds = t0.elapsed().as_secs_f64();
            assert_eq!(out.report.nodes_expanded, case.w, "anomaly-free contract");
            let digest = outcome_digest(&out);
            let resident = out.peak_stack_nodes * node_bytes;
            eprintln!(
                "{:<8} P={:>5} {engine:<9} t={leg_threads} {seconds:>9.3} s  \
                 peak {:>5} nodes ({resident} B/PE)  fnv {digest:#018x}",
                case.label, case.p, out.peak_stack_nodes
            );
            if resident > MEM_CEILING_BYTES_PER_PE {
                eprintln!(
                    "MEM FAIL {} {engine}: {resident} B/PE > ceiling {MEM_CEILING_BYTES_PER_PE}",
                    case.label
                );
                mem_ok = false;
            }
            digests.push(digest);
            rows.push(Row {
                workload: case.label,
                engine,
                p: case.p,
                host_threads: leg_threads,
                seconds,
                nodes_per_sec: case.w as f64 / seconds,
                n_expand: out.report.n_expand,
                peak_stack_nodes: out.peak_stack_nodes,
                resident_bytes_per_pe: resident,
                digest,
            });
        }
        if digests.iter().any(|&d| d != digests[0]) {
            eprintln!("IDENTITY FAIL {}: engine digests diverge: {digests:x?}", case.label);
            all_identical = false;
        }

        // Kill→resume: arm the macro engine with a periodic snapshot
        // policy and a fault, then continue from the last snapshot. The
        // resumed outcome must digest equal to the uninterrupted legs.
        let armed = cfg
            .clone()
            .with_checkpoint(CheckpointPolicy::every(case.ckpt_every))
            .with_fault(FaultPlan::kill_at(case.kill_at));
        let dead = run(&case.tree, &armed);
        let resumed_digest;
        let snapshot_bytes;
        if dead.killed {
            let snaps = armed.checkpoint.as_ref().expect("armed").sink.taken();
            let last = snaps.last().expect("periodic policy snapshots before the kill");
            snapshot_bytes = last.bytes.len();
            let resumed = uts_core::resume_from_bytes(&case.tree, &cfg, &last.bytes)
                .expect("own snapshot resumes under its config");
            assert_eq!(resumed.report.nodes_expanded, case.w);
            resumed_digest = outcome_digest(&resumed);
        } else {
            // The run finished before the kill boundary (possible for the
            // small quick workloads): the armed run is the straight run.
            snapshot_bytes = 0;
            resumed_digest = outcome_digest(&dead);
        }
        let matches = resumed_digest == digests[0];
        eprintln!(
            "{:<8} kill@{} -> resume  fnv {resumed_digest:#018x}  {}",
            case.label,
            case.kill_at,
            if matches { "matches straight run" } else { "DIVERGED" }
        );
        if !matches {
            all_identical = false;
        }
        resume_rows.push(format!(
            "{{\"workload\": \"{}\", \"engine\": \"macro\", \"kill_at\": {}, \
             \"snapshot_bytes\": {snapshot_bytes}, \"outcome_fnv\": \"{resumed_digest:#018x}\", \
             \"matches_straight\": {matches}}}",
            case.label, case.kill_at
        ));
    }

    let host_threads = std::thread::available_parallelism().map_or(1, |n| n.get());
    let mut json = String::new();
    json.push_str("{\n  \"bench\": \"workloads\",\n");
    let _ = writeln!(json, "  \"quick\": {quick},");
    let _ = writeln!(json, "  \"host_threads\": {host_threads},");
    let _ = writeln!(json, "  \"node_bytes\": {node_bytes},");
    let _ = writeln!(json, "  \"mem_ceiling_bytes_per_pe\": {MEM_CEILING_BYTES_PER_PE},");
    json.push_str("  \"workloads\": [\n");
    for (i, case) in cases.iter().enumerate() {
        let comma = if i + 1 < cases.len() { "," } else { "" };
        let _ = writeln!(json, "    {}{comma}", case.workload_json);
    }
    json.push_str("  ],\n  \"results\": [\n");
    for (i, r) in rows.iter().enumerate() {
        let comma = if i + 1 < rows.len() { "," } else { "" };
        let _ = writeln!(
            json,
            "    {{\"workload\": \"{}\", \"engine\": \"{}\", \"p\": {}, \"host_threads\": {}, \
             \"seconds\": {:.6}, \"nodes_per_sec\": {:.1}, \"n_expand\": {}, \
             \"peak_stack_nodes\": {}, \"resident_bytes_per_pe\": {}, \"outcome_fnv\": \"{:#018x}\"}}{comma}",
            r.workload,
            r.engine,
            r.p,
            r.host_threads,
            r.seconds,
            r.nodes_per_sec,
            r.n_expand,
            r.peak_stack_nodes,
            r.resident_bytes_per_pe,
            r.digest
        );
    }
    json.push_str("  ],\n  \"resume\": [\n");
    for (i, row) in resume_rows.iter().enumerate() {
        let comma = if i + 1 < resume_rows.len() { "," } else { "" };
        let _ = writeln!(json, "    {row}{comma}");
    }
    json.push_str("  ]\n}\n");

    match std::fs::write(&out_path, &json) {
        Ok(()) => eprintln!("wrote {out_path}"),
        Err(e) => {
            eprintln!("could not write {out_path}: {e}");
            std::process::exit(1);
        }
    }

    if check {
        let mut ok = true;
        if !all_identical {
            eprintln!("CHECK FAIL: outcomes are not bit-identical across legs");
            ok = false;
        }
        if !mem_ok {
            eprintln!("CHECK FAIL: a leg exceeded the per-PE resident ceiling");
            ok = false;
        }
        if !quick {
            let big = cases.iter().map(|c| c.w).max().unwrap_or(0);
            if big < 100_000_000 {
                eprintln!("CHECK FAIL: largest workload is {big} nodes, want >= 10^8");
                ok = false;
            }
        }
        if !ok {
            std::process::exit(1);
        }
        eprintln!(
            "check passed: digests identical across {} legs + resume, \
             resident <= {MEM_CEILING_BYTES_PER_PE} B/PE{}",
            rows.len(),
            if quick { "" } else { ", >= 10^8-node workload measured" }
        );
    }
}
