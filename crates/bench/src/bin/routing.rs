//! Validate the Sec. 3.3 interconnect cost models by *routing* the
//! matching traffic instead of assuming the formulas.
//!
//! ```text
//! cargo run --release -p uts-bench --bin routing -- [--quick]
//! ```
//!
//! For each machine size we generate rendezvous matchings (the exact
//! traffic a balancing phase ships), route them on a simulated hypercube
//! (e-cube) and mesh (XY) under link contention, and print measured
//! delivery steps next to the `log^2 P` / `sqrt P` model curves that
//! `uts-machine`'s cost models (and Table 6) assume.

use uts_analysis::table::TextTable;
use uts_bench::parse_quick;
use uts_net::hypercube::Hypercube;
use uts_net::mesh::Mesh;
use uts_net::{route, scan_depth, Message, Router};
use uts_scan::rendezvous_match_from;
use uts_synth::splitmix64;

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let (_, quick) = parse_quick(&args);
    let dims: Vec<u32> = if quick { vec![6, 8, 10] } else { vec![6, 8, 10, 12, 13] };
    println!(
        "== Routed balancing-phase traffic vs the Sec. 3.3 cost models ==\n\
         (mean over 8 random busy patterns at 60% occupancy; steps = synchronous\n\
         store-and-forward link-contention delivery time of the whole matching)\n"
    );
    let mut t = TextTable::new(vec![
        "P",
        "scan depth (log2 P)",
        "hypercube steps",
        "log^2 P",
        "mesh steps",
        "2 sqrt(P)",
    ]);
    for &d in &dims {
        let p = 1usize << d;
        let mut hyper_total = 0u32;
        let mut mesh_total = 0u32;
        let rounds = 8u64;
        for r in 0..rounds {
            let busy: Vec<bool> =
                (0..p).map(|i| splitmix64(r ^ (i as u64) << 20 ^ d as u64) % 10 < 6).collect();
            let idle: Vec<bool> = busy.iter().map(|&b| !b).collect();
            let start = (splitmix64(r) % p as u64) as usize;
            let pairs = rendezvous_match_from(&busy, &idle, start);
            let messages: Vec<Message> =
                pairs.iter().map(|pr| Message { src: pr.donor, dst: pr.receiver }).collect();
            hyper_total += route(&Hypercube::new(p), &messages).steps;
            let mesh = Mesh::new(p);
            // Re-range endpoints into the (possibly larger) square mesh.
            let mesh_messages: Vec<Message> = messages
                .iter()
                .map(|m| Message { src: m.src % mesh.size(), dst: m.dst % mesh.size() })
                .collect();
            mesh_total += route(&mesh, &mesh_messages).steps;
        }
        t.row(vec![
            p.to_string(),
            scan_depth(p).to_string(),
            format!("{:.0}", hyper_total as f64 / rounds as f64),
            (d * d).to_string(),
            format!("{:.0}", mesh_total as f64 / rounds as f64),
            (2.0 * (p as f64).sqrt()).round().to_string(),
        ]);
    }
    println!("{t}");
    println!(
        "(The hypercube column staying at or below log^2 P and the mesh column\n\
         tracking sqrt(P) are the premises behind Table 6's isoefficiency rows\n\
         and uts-machine's Hypercube/Mesh cost models.)"
    );
}
