//! Run the entire reproduction — every table and figure — in one go.
//!
//! ```text
//! cargo run --release -p uts-bench --bin repro -- [--quick]
//! ```
//!
//! This simply shells through the same code paths as the `tables` and
//! `figures` binaries (it links them as a library would be overkill; the
//! sections are re-invoked as child processes so each section's output is
//! clearly delimited and a crash in one doesn't lose the rest).

use std::process::Command;

fn main() {
    let quick = std::env::args().any(|a| a == "--quick");
    let exe_dir =
        std::env::current_exe().expect("current exe").parent().expect("exe dir").to_path_buf();
    let mut failures = 0;
    for (bin, arg) in [
        ("tables", "table1"),
        ("tables", "table2"),
        ("tables", "table3"),
        ("tables", "table4"),
        ("tables", "table5"),
        ("tables", "table6"),
        ("figures", "fig3"),
        ("figures", "fig4"),
        ("figures", "fig7"),
        ("figures", "fig8"),
        ("ablation", "all"),
        ("bounds", "all"),
        ("routing", "all"),
        ("anomalies", "all"),
        ("mimd", "compare"),
    ] {
        println!("\n######## {bin} {arg} ########\n");
        let mut cmd = Command::new(exe_dir.join(bin));
        cmd.arg(arg);
        if quick {
            cmd.arg("--quick");
        }
        match cmd.status() {
            Ok(s) if s.success() => {}
            Ok(s) => {
                eprintln!("[{bin} {arg} exited with {s}]");
                failures += 1;
            }
            Err(e) => {
                eprintln!("[failed to launch {bin} {arg}: {e}]");
                failures += 1;
            }
        }
    }
    if failures > 0 {
        eprintln!("\n{failures} section(s) failed");
        std::process::exit(1);
    }
    println!("\nAll sections completed.");
}
