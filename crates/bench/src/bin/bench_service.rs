//! Service-layer overhead harness: what does running a search job through
//! the `uts-serve` scheduler cost over calling the engine directly, and
//! what does preemptive slot-sharing add on top? Results go to
//! `BENCH_service.json` (current directory).
//!
//! ```text
//! cargo run --release -p uts-bench --bin bench_service -- [--quick] [--check] [--out PATH]
//! ```
//!
//! Three legs drain the same seeded batch of geometric-tree jobs:
//!
//! - `direct`  — each job's engine run called in-process, sequentially.
//!   The baseline: zero scheduling, zero HTTP, zero spill I/O.
//! - `serve`   — a [`JobServer`] with 2 slots and an effectively infinite
//!   quantum; jobs are submitted and drained over the loopback HTTP API.
//!   Measures admission + scheduling + transport overhead with no
//!   preemption in play.
//! - `churn`   — 1 slot, zero quantum: the governor parks the running job
//!   whenever anyone waits, so every job is snapshotted, spilled, and
//!   resumed over and over. Measures the full park/resume machinery under
//!   the worst slot pressure the scheduler can generate.
//!
//! Every leg digests every outcome ([`outcome_digest`]) and the harness
//! asserts all three legs agree job-for-job before a single number is
//! written — a bench run that loses bit-identity is a failed run, not a
//! slow one.
//!
//! `--quick` shrinks the batch for CI smoke runs. `--check` exits
//! non-zero when the overhead regresses past its floors: `serve` must
//! keep >= 0.40x of direct throughput (the jobs are deliberately small,
//! so this bounds fixed per-job cost, not engine speed) and `churn` must
//! keep >= 0.15x of direct while actually preempting (its preemption
//! count must be positive, else the leg proved nothing).
//!
//! ```json
//! {
//!   "bench": "service",
//!   "jobs": 24,
//!   "results": [
//!     {"leg": "direct", "seconds": 1.2, "jobs_per_sec": 20.0,
//!      "nodes_per_sec": 1.0e6, "preemptions": 0},
//!     ...
//!   ],
//!   "ratios": {"serve_vs_direct": 0.8, "churn_vs_direct": 0.4}
//! }
//! ```

use std::fmt::Write as _;
use std::time::Instant;

use uts_serve::{client, outcome_digest, JobServer, JobSpec, ServeConfig};

/// The seeded job mix: engines and machine sizes rotate; every third job
/// is deeper so the churn leg has boundaries worth parking at. The seeds
/// all come from the band whose depth-7 trees are non-degenerate (see the
/// service stress suite: a geometric tree can die out before its first
/// macro-step boundary, which would make the churn leg vacuous).
fn spec_text(i: usize, quick: bool) -> String {
    let engine = ["macro", "fused", "par"][i % 3];
    let p = [32, 64][i % 2];
    // Deep enough that a job costs milliseconds, not microseconds: the
    // serve/direct ratio bounds fixed per-job overhead only if the jobs
    // are not themselves overhead-sized, and the churn leg needs running
    // jobs the governor can actually catch mid-flight.
    let depth = match (quick, i % 3) {
        (true, 2) => 9,
        (true, _) => 8,
        (false, 2) => 10,
        (false, _) => 9,
    };
    format!(
        r#"{{"workload":{{"kind":"synth","seed":{},"b_max":8,"depth_limit":{depth}}},"p":{p},"engine":"{engine}","threads":1}}"#,
        [1, 2, 3, 5, 11, 42][i % 6]
    )
}

struct LegResult {
    leg: &'static str,
    seconds: f64,
    jobs_per_sec: f64,
    nodes_per_sec: f64,
    preemptions: u64,
}

fn field<'a>(doc: &'a str, key: &str) -> &'a str {
    doc.lines()
        .find_map(|l| l.trim().strip_prefix(&format!("\"{key}\": ")))
        .unwrap_or_else(|| panic!("result lacks `{key}`:\n{doc}"))
        .trim_end_matches(',')
}

/// Drain `jobs` through a server under `cfg`, returning (wall seconds,
/// per-job outcome digests, total preemptions, total nodes expanded).
fn serve_leg(cfg: ServeConfig, jobs: usize, quick: bool) -> (f64, Vec<String>, u64, u64) {
    let _ = std::fs::remove_dir_all(&cfg.spill_dir);
    let dir = cfg.spill_dir.clone();
    let server = JobServer::start(cfg).expect("bench server starts");
    let addr = server.addr();
    let t0 = Instant::now();
    for i in 0..jobs {
        let (status, body) = client::post(addr, "/submit", &spec_text(i, quick));
        assert_eq!(status, 200, "{body}");
    }
    let mut digests = Vec::with_capacity(jobs);
    let mut preemptions = 0u64;
    let mut nodes = 0u64;
    for id in 1..=jobs as u64 {
        let doc = loop {
            let (status, body) = client::get(addr, &format!("/result/{id}"));
            match status {
                200 => break body,
                409 => std::thread::sleep(std::time::Duration::from_micros(200)),
                other => panic!("job {id}: status {other}: {body}"),
            }
        };
        digests.push(field(&doc, "outcome_fnv").trim_matches('"').to_string());
        preemptions += field(&doc, "preemptions").parse::<u64>().unwrap();
        nodes += field(&doc, "nodes_expanded").parse::<u64>().unwrap();
    }
    let seconds = t0.elapsed().as_secs_f64();
    server.shutdown();
    let _ = std::fs::remove_dir_all(&dir);
    (seconds, digests, preemptions, nodes)
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let quick = args.iter().any(|a| a == "--quick");
    let check = args.iter().any(|a| a == "--check");
    let out_idx = args.iter().position(|a| a == "--out");
    let out_path = out_idx
        .map(|i| {
            args.get(i + 1).cloned().unwrap_or_else(|| {
                eprintln!("error: --out requires a path");
                std::process::exit(2);
            })
        })
        .unwrap_or_else(|| "BENCH_service.json".to_string());
    for (i, a) in args.iter().enumerate() {
        if a != "--quick" && a != "--check" && a != "--out" && out_idx != Some(i.wrapping_sub(1)) {
            eprintln!(
                "error: unknown argument `{a}` (usage: bench_service [--quick] [--check] [--out PATH])"
            );
            std::process::exit(2);
        }
    }

    let jobs = if quick { 8 } else { 24 };
    let scratch = std::env::temp_dir().join(format!("uts-bench-service-{}", std::process::id()));

    // Leg 1: direct — the engines called in-process, no service anywhere.
    let specs: Vec<JobSpec> = (0..jobs)
        .map(|i| JobSpec::parse(&spec_text(i, quick)).expect("bench specs parse"))
        .collect();
    let t0 = Instant::now();
    let direct: Vec<(String, u64)> = specs
        .iter()
        .map(|s| {
            let out = s.oracle();
            (format!("{:#018x}", outcome_digest(&out)), out.report.nodes_expanded)
        })
        .collect();
    let direct_seconds = t0.elapsed().as_secs_f64();
    let direct_nodes: u64 = direct.iter().map(|&(_, n)| n).sum();
    let mut results = vec![LegResult {
        leg: "direct",
        seconds: direct_seconds,
        jobs_per_sec: jobs as f64 / direct_seconds,
        nodes_per_sec: direct_nodes as f64 / direct_seconds,
        preemptions: 0,
    }];
    eprintln!("direct: {jobs} jobs in {direct_seconds:.4} s ({direct_nodes} nodes)");

    // Leg 2: serve — 2 slots, no preemption pressure.
    let mut cfg = ServeConfig::new(scratch.join("serve"));
    cfg.slots = 2;
    cfg.quantum_ms = 3_600_000;
    let (serve_seconds, serve_digests, serve_preempts, serve_nodes) = serve_leg(cfg, jobs, quick);
    eprintln!("serve:  {jobs} jobs in {serve_seconds:.4} s ({serve_preempts} preemptions)");
    results.push(LegResult {
        leg: "serve",
        seconds: serve_seconds,
        jobs_per_sec: jobs as f64 / serve_seconds,
        nodes_per_sec: serve_nodes as f64 / serve_seconds,
        preemptions: serve_preempts,
    });

    // Leg 3: churn — 1 slot, zero quantum: maximal park/resume pressure.
    let mut cfg = ServeConfig::new(scratch.join("churn"));
    cfg.slots = 1;
    cfg.quantum_ms = 0;
    cfg.poll_ms = 1;
    let (churn_seconds, churn_digests, churn_preempts, churn_nodes) = serve_leg(cfg, jobs, quick);
    eprintln!("churn:  {jobs} jobs in {churn_seconds:.4} s ({churn_preempts} preemptions)");
    results.push(LegResult {
        leg: "churn",
        seconds: churn_seconds,
        jobs_per_sec: jobs as f64 / churn_seconds,
        nodes_per_sec: churn_nodes as f64 / churn_seconds,
        preemptions: churn_preempts,
    });
    let _ = std::fs::remove_dir_all(&scratch);

    // Identity gate: all three legs agree job-for-job, or the bench dies.
    for (i, (want, _)) in direct.iter().enumerate() {
        assert_eq!(&serve_digests[i], want, "serve leg lost bit-identity on job {}", i + 1);
        assert_eq!(&churn_digests[i], want, "churn leg lost bit-identity on job {}", i + 1);
    }
    eprintln!("identity: all {jobs} jobs digest-equal across direct/serve/churn");

    let serve_ratio = results[1].jobs_per_sec / results[0].jobs_per_sec;
    let churn_ratio = results[2].jobs_per_sec / results[0].jobs_per_sec;
    eprintln!("serve/direct throughput: {serve_ratio:.2}x  churn/direct: {churn_ratio:.2}x");

    let mut json = String::new();
    json.push_str("{\n  \"bench\": \"service\",\n");
    let _ = writeln!(json, "  \"jobs\": {jobs},");
    json.push_str("  \"results\": [\n");
    for (i, r) in results.iter().enumerate() {
        let comma = if i + 1 < results.len() { "," } else { "" };
        let _ = writeln!(
            json,
            "    {{\"leg\": \"{}\", \"seconds\": {:.6}, \"jobs_per_sec\": {:.2}, \"nodes_per_sec\": {:.1}, \"preemptions\": {}}}{comma}",
            r.leg, r.seconds, r.jobs_per_sec, r.nodes_per_sec, r.preemptions
        );
    }
    json.push_str("  ],\n  \"ratios\": {\n");
    let _ = writeln!(json, "    \"serve_vs_direct\": {serve_ratio:.3},");
    let _ = writeln!(json, "    \"churn_vs_direct\": {churn_ratio:.3}");
    json.push_str("  }\n}\n");
    match std::fs::write(&out_path, &json) {
        Ok(()) => eprintln!("wrote {out_path}"),
        Err(e) => {
            eprintln!("could not write {out_path}: {e}");
            std::process::exit(1);
        }
    }

    if check {
        // Floors are deliberately loose: this gate catches the service
        // layer suddenly costing multiples of the work it schedules (a
        // lock held across a slice, a busy-wait, quadratic spill scans),
        // not single-digit-percent drift on noisy CI hosts.
        let mut ok = true;
        if serve_ratio < 0.40 {
            eprintln!("CHECK FAIL: serve throughput {serve_ratio:.2}x direct < 0.40x");
            ok = false;
        }
        if churn_preempts == 0 {
            eprintln!("CHECK FAIL: churn leg never preempted — the floor proved nothing");
            ok = false;
        }
        if churn_ratio < 0.15 {
            eprintln!("CHECK FAIL: churn throughput {churn_ratio:.2}x direct < 0.15x");
            ok = false;
        }
        if !ok {
            std::process::exit(1);
        }
        eprintln!(
            "check passed: serve >= 0.40x direct, churn >= 0.15x direct with {churn_preempts} preemptions"
        );
    }
}
