//! Regenerate the paper's data figures.
//!
//! ```text
//! cargo run --release -p uts-bench --bin figures -- [fig3|fig4|fig7|fig8|all] [--quick]
//! ```
//!
//! Output is CSV-ish series data (one block per curve) plus the summary
//! statistics that make the figures' qualitative claims checkable without
//! plotting. (Figs. 1, 2, 5, 6 are illustrative diagrams with no measured
//! data; Fig. 2's matching example lives in `uts-core` unit tests.)

use std::time::Instant;

use uts_analysis::table::TextTable;
use uts_bench::runner::{PAPER_P, QUICK_P};
use uts_bench::workloads::{run_workload, table5_workload, table_workloads, PaperWorkload};
use uts_bench::{parse_quick, sweep};
use uts_core::Scheme;
use uts_machine::CostModel;

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let (rest, quick) = parse_quick(&args);
    let which = rest.first().map(String::as_str).unwrap_or("all");
    let t0 = Instant::now();
    match which {
        "fig3" => fig3(quick),
        "fig4" => fig4(quick, &calibration(quick)),
        "fig7" => fig7(quick, &calibration(quick)),
        "fig8" => fig8(quick),
        "all" => {
            // Figs. 4 and 7 sweep the identical (P, W) grid; calibrate the
            // synthetic trees (serial-DFS-measured W) once and share.
            let cal = calibration(quick);
            fig3(quick);
            fig4(quick, &cal);
            fig7(quick, &cal);
            fig8(quick);
        }
        other => {
            eprintln!("unknown figure `{other}` (expected fig3, fig4, fig7, fig8 or all)");
            std::process::exit(2);
        }
    }
    eprintln!("[done in {:?}]", t0.elapsed());
}

fn workloads(quick: bool) -> Vec<PaperWorkload> {
    let mut w = table_workloads().to_vec();
    if quick {
        for wl in &mut w {
            wl.bound -= 4;
            wl.w = 0;
        }
    }
    w
}

/// Fig. 3: difference in the number of balancing phases (nGP − GP) vs the
/// static threshold x, one series per workload.
fn fig3(quick: bool) {
    println!("== Fig. 3: N_lb(nGP) - N_lb(GP) vs static threshold x ==\n");
    let p = if quick { QUICK_P } else { PAPER_P };
    let xs = [0.50, 0.60, 0.70, 0.80, 0.90, 0.95];
    let cost = CostModel::cm2();
    let mut header = vec!["W".to_string()];
    header.extend(xs.iter().map(|x| format!("x={x:.2}")));
    let mut t = TextTable::new(header);
    let mut peak_positions = Vec::new();
    let mut all_series: Vec<Vec<(f64, f64)>> = Vec::new();
    let wls = workloads(quick);
    for wl in &wls {
        let mut row = vec![if wl.w > 0 { wl.w.to_string() } else { "quick".into() }];
        let mut diffs = Vec::new();
        for &x in &xs {
            let ngp = run_workload(wl, Scheme::ngp_static(x), p, cost, false);
            let gp = run_workload(wl, Scheme::gp_static(x), p, cost, false);
            let d = ngp.report.n_lb as i64 - gp.report.n_lb as i64;
            diffs.push(d);
            row.push(d.to_string());
        }
        all_series.push(xs.iter().zip(&diffs).map(|(&x, &d)| (x, d as f64)).collect());
        t.row(row);
        // The paper's Fig. 3 shape: the gap grows with x until nGP's N_lb
        // saturates at the node-expansion-cycle count, then falls; the peak
        // shifts right for larger W ("this saturation effect occurs for
        // higher values of x for larger problems", Sec. 4.2).
        let peak = diffs.iter().enumerate().max_by_key(|(_, &d)| d).map(|(i, _)| xs[i]).unwrap();
        peak_positions.push(peak);
        let rises_to_peak = diffs
            .windows(2)
            .zip(xs.windows(2))
            .take_while(|(_, x)| x[1] <= peak)
            .all(|(d, _)| d[1] >= d[0]);
        println!("  gap rises to a peak at x={peak:.2}: {} (diffs {diffs:?})", yn(rises_to_peak));
    }
    let peaks_shift_right = peak_positions.windows(2).all(|w| w[1] >= w[0]);
    println!(
        "  saturation peak moves right with W: {} (peaks {peak_positions:?})",
        yn(peaks_shift_right)
    );
    println!("\n{t}");
    // Render the figure itself.
    let mut chart = uts_viz::Chart::new(
        "Fig. 3: N_lb(nGP) - N_lb(GP) vs static threshold x",
        "static threshold x",
        "difference in balancing phases",
    );
    for (series, wl) in all_series.into_iter().zip(&wls) {
        let label = if wl.w > 0 { format!("W = {}", wl.w) } else { "quick".to_string() };
        chart.add(uts_viz::Series::line(label, series));
    }
    write_svg("results/fig3.svg", &chart);
}

/// A named scheme constructor (deferring construction keeps the arrays
/// `const`).
type SchemeEntry = (&'static str, fn() -> Scheme);

const FIG4_SCHEMES: [SchemeEntry; 4] = [
    ("GP-S^0.90", || Scheme::gp_static(0.9)),
    ("nGP-S^0.90", || Scheme::ngp_static(0.9)),
    ("nGP-S^0.80", || Scheme::ngp_static(0.8)),
    ("nGP-S^0.70", || Scheme::ngp_static(0.7)),
];

const FIG7_SCHEMES: [SchemeEntry; 4] = [
    ("GP-D^K", Scheme::gp_dk),
    ("GP-D^P", Scheme::gp_dp),
    ("nGP-D^K", Scheme::ngp_dk),
    ("nGP-D^P", Scheme::ngp_dp),
];

/// A calibrated (P, W) sweep grid: machine-size ladder plus synthetic
/// trees whose serial W was measured once, up front. Figs. 4 and 7 share
/// one of these so no tree is ever calibrated (or its serial W
/// re-measured) twice.
struct Calibration {
    grid: sweep::SweepGrid,
    trees: Vec<uts_synth::SizedTree>,
}

fn calibration(quick: bool) -> Calibration {
    let grid = if quick { sweep::SweepGrid::quick() } else { sweep::SweepGrid::full() };
    let trees = sweep::calibrated_trees(&grid);
    Calibration { grid, trees }
}

/// Figs. 4 & 7 share the same machinery: sweep (P, W), extract
/// equal-efficiency contours, print W against P log2 P plus a power-law
/// exponent (1.0 = the O(P log P) shape of Fig. 4a).
fn iso_figure(title: &str, schemes: &[SchemeEntry], quick: bool, cal: &Calibration) {
    println!("== {title} ==\n");
    let mut chart = uts_viz::Chart::new(title, "P log2 P", "W (equal-efficiency contours)");
    chart.x_scale(uts_viz::Scale::Log10).y_scale(uts_viz::Scale::Log10);
    let Calibration { grid, trees } = cal;
    println!(
        "grid: P = {:?}, tree sizes = {:?}\n",
        grid.ps,
        trees.iter().map(|t| t.w).collect::<Vec<_>>()
    );
    let levels = if quick { vec![0.45, 0.60] } else { vec![0.45, 0.55, 0.65, 0.75] };
    std::fs::create_dir_all("results").ok();
    for (name, mk) in schemes {
        let samples = sweep::sweep_scheme(mk(), grid, trees, CostModel::cm2());
        println!("series {name}: (P, W, E) samples");
        for s in &samples {
            println!("  {},{},{:.4}", s.p, s.w, s.e);
        }
        let safe = name.replace(['^', '.'], "");
        let path = format!("results/iso_{safe}.csv");
        if std::fs::write(&path, uts_analysis::csv::samples_csv(&samples)).is_ok() {
            println!("  [samples written to {path}]");
        }
        for c in sweep::iso_curves(&samples, &levels) {
            if c.points.len() < 2 {
                continue;
            }
            let pts: Vec<String> = c
                .points
                .iter()
                .map(|pt| format!("(P={}, PlogP={:.0}, W={:.0})", pt.p, plogp(pt.p), pt.w))
                .collect();
            println!(
                "  contour E={:.2}: {} | W ~ (P log P)^{:.2}",
                c.e,
                pts.join(" "),
                c.exponent.unwrap()
            );
            chart.add(uts_viz::Series::line(
                format!("{name} E={:.2}", c.e),
                c.points.iter().map(|pt| (plogp(pt.p), pt.w)).collect(),
            ));
        }
        println!();
    }
    if chart.series_count() > 0 {
        let stem =
            title.split(':').next().unwrap_or("iso").trim().to_lowercase().replace([' ', '.'], "");
        write_svg(&format!("results/{stem}.svg"), &chart);
    }
}

/// Write a chart to disk, reporting the path (errors are non-fatal: the
/// textual output above is the primary artifact).
fn write_svg(path: &str, chart: &uts_viz::Chart) {
    std::fs::create_dir_all("results").ok();
    match std::fs::write(path, chart.render()) {
        Ok(()) => println!("  [figure written to {path}]"),
        Err(e) => eprintln!("  [could not write {path}: {e}]"),
    }
}

fn plogp(p: usize) -> f64 {
    p as f64 * (p as f64).log2()
}

fn yn(ok: bool) -> &'static str {
    if ok {
        "yes"
    } else {
        "NO"
    }
}

fn fig4(quick: bool, cal: &Calibration) {
    iso_figure(
        "Fig. 4: experimental isoefficiency curves, static triggering",
        &FIG4_SCHEMES,
        quick,
        cal,
    );
}

fn fig7(quick: bool, cal: &Calibration) {
    iso_figure(
        "Fig. 7: experimental isoefficiency curves, dynamic triggering",
        &FIG7_SCHEMES,
        quick,
        cal,
    );
}

/// Fig. 8: active processors per expansion cycle for GP-D^P vs GP-D^K at
/// the actual and 16× balancing cost.
fn fig8(quick: bool) {
    println!("== Fig. 8: A(t) traces, GP-D^P vs GP-D^K, 1x and 16x t_lb ==\n");
    let p = if quick { QUICK_P } else { PAPER_P };
    let mut wl = table5_workload();
    if quick {
        wl.bound -= 4;
        wl.w = 0;
    }
    for (mult, label) in [(1u32, "actual cost"), (16, "16x cost")] {
        let mut chart = uts_viz::Chart::new(
            format!("Fig. 8: active processors per cycle ({label})"),
            "node expansion cycle",
            "active processors",
        );
        for (name, scheme) in [("GP-D^P", Scheme::gp_dp()), ("GP-D^K", Scheme::gp_dk())] {
            let cost = CostModel::cm2().with_lb_multiplier(mult);
            let out = run_workload(&wl, scheme, p, cost, true);
            // The trace is run-length encoded (long stretches of constant
            // A); summary stats come from the runs, the CSV from the
            // per-cycle expansion.
            let trace = &out.report.active_trace;
            let cycles = trace.len();
            let stride = (cycles / 60).max(1) as usize;
            let series: Vec<String> = trace.iter().step_by(stride).map(|a| a.to_string()).collect();
            let mean = trace.runs().map(|(_, n, a)| n as f64 * a as f64).sum::<f64>()
                / cycles.max(1) as f64;
            let min = trace.runs().map(|(_, _, a)| a).min().unwrap_or(0);
            println!(
                "{name} ({label}): cycles={cycles} Nlb={} transfers={} E={:.2} mean A={:.0} min A={min}",
                out.report.n_lb,
                out.report.n_transfers,
                out.report.efficiency,
                mean
            );
            println!("  A(t) every {stride} cycles: {}", series.join(","));
            std::fs::create_dir_all("results").ok();
            let safe = format!("results/fig8_{}_{}x.csv", name.replace('^', ""), mult);
            if std::fs::write(&safe, uts_analysis::csv::trace_csv(trace.iter())).is_ok() {
                println!("  [full trace written to {safe}]");
            }
            // One point per run endpoint draws the exact same staircase as
            // the per-cycle point cloud at a fraction of the SVG size.
            let mut pts: Vec<(f64, f64)> = Vec::new();
            for (start, n, a) in trace.runs() {
                pts.push((start as f64, a as f64));
                pts.push(((start + n - 1) as f64, a as f64));
            }
            chart.add(uts_viz::Series::line(name, pts));
        }
        write_svg(&format!("results/fig8_{mult}x.svg"), &chart);
        println!();
    }
    println!(
        "(Paper's claim: at 16x cost the D^P trace sags to far lower A between\n\
         balances than D^K's, and D^P performs more work transfers.)"
    );
}
