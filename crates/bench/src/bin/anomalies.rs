//! Speedup-anomaly study (extension).
//!
//! The paper deliberately excludes anomalies by searching exhaustively
//! ("the number of nodes expanded by the serial and the parallel search is
//! the same", Sec. 5), citing Rao & Kumar (ref. 33) for the first-solution
//! regime where parallel DFS can expand *fewer* nodes than serial DFS
//! (superlinear speedup) or *more* (deceleration). This binary measures
//! that regime on the same engine by flipping `stop_on_goal`:
//!
//! ```text
//! cargo run --release -p uts-bench --bin anomalies -- [--quick]
//! ```
//!
//! For each instance it reports the anomaly ratio
//! `η = W_par(first solution) / W_serial(first solution)`; η < 1 is an
//! acceleration anomaly, η > 1 a deceleration anomaly. Exhaustive search
//! (the paper's setting) always has η = 1 — verified in the last column.

use uts_analysis::table::TextTable;
use uts_bench::parse_quick;
use uts_core::{run, EngineConfig, Scheme};
use uts_machine::CostModel;
use uts_puzzle15::{scrambled, Puzzle15};
use uts_tree::ida::ida_star;
use uts_tree::problem::BoundedProblem;
use uts_tree::{serial_dfs, serial_dfs_first_goal};

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let (_, quick) = parse_quick(&args);
    let p = if quick { 64 } else { 1024 };
    let seeds: &[u64] = if quick { &[23, 31] } else { &[23, 31, 37, 41, 47, 53] };
    println!(
        "== Speedup anomalies in first-solution parallel DFS (P = {p}) ==\n\
         (eta < 1: acceleration anomaly / superlinear speedup potential;\n\
          eta > 1: deceleration anomaly; exhaustive search pins eta = 1)\n"
    );
    let mut t =
        TextTable::new(vec!["instance", "W serial->goal", "W par->goal", "eta", "exhaustive eta"]);
    let mut accel = 0;
    let mut decel = 0;
    for &seed in seeds {
        let inst = scrambled(seed, 55);
        let puzzle = Puzzle15::new(inst.board());
        let ida = ida_star(&puzzle, 70);
        let Some(bound) = ida.solution_cost else { continue };
        let bp = BoundedProblem::new(&puzzle, bound);

        let serial_first = serial_dfs_first_goal(&bp);
        let mut cfg = EngineConfig::new(p, Scheme::gp_dk(), CostModel::cm2());
        cfg.stop_on_goal = true;
        let par_first = run(&bp, &cfg);

        // Exhaustive control: both sides expand all of W.
        let serial_full = serial_dfs(&bp);
        let par_full = run(&bp, &EngineConfig::new(p, Scheme::gp_dk(), CostModel::cm2()));

        let eta = par_first.report.nodes_expanded as f64 / serial_first.expanded as f64;
        let eta_full = par_full.report.nodes_expanded as f64 / serial_full.expanded as f64;
        if eta < 0.99 {
            accel += 1;
        } else if eta > 1.01 {
            decel += 1;
        }
        t.row(vec![
            format!("scramble({seed},55)"),
            serial_first.expanded.to_string(),
            par_first.report.nodes_expanded.to_string(),
            format!("{eta:.3}"),
            format!("{eta_full:.3}"),
        ]);
    }
    println!("{t}");
    println!("{accel} acceleration / {decel} deceleration anomalies observed.");
    println!(
        "(Parallel first-solution search explores many branches at once; goals\n\
              sitting off the serial DFS path are found early — classic Rao-Kumar.)"
    );
}
