//! Regenerate the paper's tables.
//!
//! ```text
//! cargo run --release -p uts-bench --bin tables -- [table1|table2|table3|table4|table5|table6|ledger|all] [--quick]
//! ```
//!
//! Each table prints the measured values in the paper's layout, followed by
//! a paper-vs-measured efficiency comparison where the paper reports one.
//! `ledger` is extra-paper: the Sec. 2.2 donation-burden claim measured
//! directly — GP vs nGP donation spread on a Table-2 workload, followed by
//! the full JSON run-report (`uts_core::run_report_json`) of the GP run.

use std::time::Instant;

use uts_analysis::table::{fmt_e, TextTable};
use uts_analysis::{isoeff_table, optimal_static_trigger, TriggerParams};
use uts_bench::runner::{measure, Cell, PAPER_P, QUICK_P, TABLE2_XS};
use uts_bench::workloads::{
    quick_workloads, run_workload_ledger, table5_workload, table_workloads, PaperWorkload,
};
use uts_bench::{parse_quick, sweep};
use uts_core::Scheme;
use uts_machine::CostModel;

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let (rest, quick) = parse_quick(&args);
    let which = rest.first().map(String::as_str).unwrap_or("all");
    let p = if quick { QUICK_P } else { PAPER_P };
    let workloads: Vec<PaperWorkload> =
        if quick { quick_workloads().to_vec() } else { table_workloads().to_vec() };

    let t0 = Instant::now();
    match which {
        "table1" => table1(),
        "table2" => table2(&workloads, p),
        "table3" => table3(&workloads, p),
        "table4" => table4(&workloads, p),
        "table5" => table5(p, quick),
        "table6" => table6(quick),
        "ledger" => ledger_report(&workloads, p),
        "all" => {
            table1();
            table2(&workloads, p);
            table3(&workloads, p);
            table4(&workloads, p);
            table5(p, quick);
            table6(quick);
            ledger_report(&workloads, p);
        }
        other => {
            eprintln!("unknown table `{other}` (expected table1..table6, ledger, or all)");
            std::process::exit(2);
        }
    }
    eprintln!("[done in {:?}]", t0.elapsed());
}

/// Table 1: the scheme taxonomy.
fn table1() {
    println!("== Table 1: the studied load-balancing schemes ==\n");
    let mut t = TextTable::new(vec!["Name", "Matching", "Trigger", "Transfers/phase"]);
    for (name, s) in Scheme::table1(0.0) {
        let trig = match s.trigger {
            uts_core::Trigger::Static { .. } => "static S^x",
            uts_core::Trigger::Dp => "dynamic D^P",
            uts_core::Trigger::Dk => "dynamic D^K",
            uts_core::Trigger::AnyIdle => "any idle",
        };
        let tr = match s.transfers {
            uts_core::TransferMode::Single => "single",
            uts_core::TransferMode::Multiple => "multiple",
            uts_core::TransferMode::Equalize => "equalize",
        };
        let m = match s.matching {
            uts_core::Matching::Ngp => "nGP",
            uts_core::Matching::Gp => "GP",
        };
        t.row(vec![name, m, trig, tr]);
    }
    println!("{t}");
}

/// Paper Table 2 efficiencies, rows = W, cols = (x, nGP/GP).
const PAPER_TABLE2_E: [[(f64, f64); 5]; 4] = [
    [(0.52, 0.52), (0.53, 0.58), (0.53, 0.60), (0.55, 0.61), (0.52, 0.59)],
    [(0.59, 0.59), (0.63, 0.66), (0.67, 0.72), (0.65, 0.77), (0.64, 0.78)],
    [(0.63, 0.63), (0.69, 0.70), (0.71, 0.76), (0.70, 0.82), (0.67, 0.85)],
    [(0.66, 0.66), (0.72, 0.73), (0.75, 0.80), (0.74, 0.86), (0.71, 0.91)],
];
const PAPER_TABLE2_XO: [f64; 4] = [0.82, 0.89, 0.92, 0.95];

/// Table 2: static triggering, nGP vs GP across x and W.
fn table2(workloads: &[PaperWorkload], p: usize) {
    println!(
        "== Table 2: static triggering on {p} simulated CM-2 processors ==\n\
         (each W block: Nexpand / Nlb / E for nGP and GP at each x; last col = analytic x_o)\n"
    );
    let cost = CostModel::cm2();
    let mut header = vec!["W".to_string(), "metric".to_string()];
    for x in TABLE2_XS {
        header.push(format!("nGP {x:.2}"));
        header.push(format!("GP {x:.2}"));
    }
    header.push("x_o".to_string());
    let mut t = TextTable::new(header);
    let mut comparison: Vec<(u64, f64, String, f64, f64)> = Vec::new();

    for (wi, wl) in workloads.iter().enumerate() {
        let mut cells: Vec<(Cell, Cell)> = Vec::new();
        for &x in &TABLE2_XS {
            let ngp = measure(wl, Scheme::ngp_static(x), p, cost);
            let gp = measure(wl, Scheme::gp_static(x), p, cost);
            cells.push((ngp, gp));
        }
        let w_meas = run_w(wl, &cells);
        let xo = optimal_static_trigger(&TriggerParams::new(w_meas, p, cost.lb_ratio(p)));
        let mut row1 = vec![w_meas.to_string(), "Nexpand".to_string()];
        let mut row2 = vec![String::new(), "Nlb".to_string()];
        let mut row3 = vec![String::new(), "E".to_string()];
        for (ngp, gp) in &cells {
            row1.push(ngp.n_expand.to_string());
            row1.push(gp.n_expand.to_string());
            row2.push(ngp.n_lb.to_string());
            row2.push(gp.n_lb.to_string());
            row3.push(fmt_e(ngp.e));
            row3.push(fmt_e(gp.e));
        }
        row1.push(format!("{xo:.2}"));
        row2.push(String::new());
        row3.push(String::new());
        t.row(row1).row(row2).row(row3);

        if wl.w > 0 && wi < PAPER_TABLE2_E.len() {
            for (xi, &x) in TABLE2_XS.iter().enumerate() {
                let (pn, pg) = PAPER_TABLE2_E[wi][xi];
                comparison.push((wl.paper_w, x, "nGP".into(), pn, cells[xi].0.e));
                comparison.push((wl.paper_w, x, "GP".into(), pg, cells[xi].1.e));
            }
            comparison.push((wl.paper_w, -1.0, "x_o".into(), PAPER_TABLE2_XO[wi], xo));
        }
    }
    println!("{t}");
    print_comparison("Table 2", &comparison);
}

/// Table 3: efficiencies at x around the analytic optimum.
fn table3(workloads: &[PaperWorkload], p: usize) {
    println!("== Table 3: GP-S^x efficiency around the analytic optimal trigger ==\n");
    let cost = CostModel::cm2();
    let offsets = [-0.03, -0.02, -0.01, 0.0, 0.01, 0.02, 0.03];
    let mut header = vec!["W".to_string()];
    header.extend(offsets.iter().map(|o| format!("x_o{o:+.2}")));
    header.push("argmax".to_string());
    let mut t = TextTable::new(header);
    for wl in workloads {
        // Use the workload's W estimate (measured when known, else probe).
        let w_est = if wl.w > 0 { wl.w } else { probe_w(wl, p) };
        let xo = optimal_static_trigger(&TriggerParams::new(w_est, p, cost.lb_ratio(p)));
        let mut row = vec![w_est.to_string()];
        let mut best = (0.0f64, 0.0f64);
        for o in offsets {
            let x = (xo + o).clamp(0.05, 0.99);
            let cell = measure(wl, Scheme::gp_static(x), p, cost);
            if cell.e > best.1 {
                best = (x, cell.e);
            }
            row.push(format!("{} ({x:.2})", fmt_e(cell.e)));
        }
        row.push(format!("{:.2}", best.0));
        t.row(row);
        println!(
            "  W={w_est}: analytic x_o = {xo:.3}; empirical argmax within grid = {:.2} (E = {})",
            best.0,
            fmt_e(best.1)
        );
    }
    println!("\n{t}");
}

/// Paper Table 4 efficiencies: rows = W, cols = (DP-nGP, DP-GP, DK-nGP, DK-GP).
const PAPER_TABLE4_E: [[f64; 4]; 4] = [
    [0.51, 0.58, 0.53, 0.58],
    [0.64, 0.76, 0.66, 0.77],
    [0.68, 0.83, 0.72, 0.84],
    [0.75, 0.92, 0.76, 0.92],
];

/// Table 4: dynamic triggering.
fn table4(workloads: &[PaperWorkload], p: usize) {
    println!(
        "== Table 4: dynamic triggering on {p} simulated CM-2 processors ==\n\
         (Nexpand / *Nlb (work transfers) / E)\n"
    );
    let cost = CostModel::cm2();
    let schemes = [
        ("DP-nGP", Scheme::ngp_dp()),
        ("DP-GP", Scheme::gp_dp()),
        ("DK-nGP", Scheme::ngp_dk()),
        ("DK-GP", Scheme::gp_dk()),
    ];
    let mut header = vec!["W".to_string(), "metric".to_string()];
    header.extend(schemes.iter().map(|(n, _)| n.to_string()));
    let mut t = TextTable::new(header);
    let mut comparison = Vec::new();
    for (wi, wl) in workloads.iter().enumerate() {
        let cells: Vec<Cell> = schemes.iter().map(|(_, s)| measure(wl, *s, p, cost)).collect();
        let w_meas = if wl.w > 0 { wl.w } else { probe_w(wl, p) };
        t.row(
            std::iter::once(w_meas.to_string())
                .chain(std::iter::once("Nexpand".to_string()))
                .chain(cells.iter().map(|c| c.n_expand.to_string()))
                .collect::<Vec<_>>(),
        );
        t.row(
            std::iter::once(String::new())
                .chain(std::iter::once("*Nlb".to_string()))
                .chain(cells.iter().map(|c| c.n_transfers.to_string()))
                .collect::<Vec<_>>(),
        );
        t.row(
            std::iter::once(String::new())
                .chain(std::iter::once("E".to_string()))
                .chain(cells.iter().map(|c| fmt_e(c.e)))
                .collect::<Vec<_>>(),
        );
        if wl.w > 0 && wi < PAPER_TABLE4_E.len() {
            for (si, (name, _)) in schemes.iter().enumerate() {
                comparison.push((
                    wl.paper_w,
                    -1.0,
                    name.to_string(),
                    PAPER_TABLE4_E[wi][si],
                    cells[si].e,
                ));
            }
        }
    }
    println!("{t}");
    print_comparison("Table 4", &comparison);
}

/// Paper Table 5: (Nexpand, Nlb, E) for DP / DK / S^xo at 1×, 12×, 16×.
const PAPER_TABLE5_E: [[f64; 3]; 3] = [[0.69, 0.71, 0.72], [0.26, 0.32, 0.34], [0.20, 0.28, 0.31]];

/// Table 5: raising the balancing cost (GP matching, W ≈ 2.07M).
fn table5(p: usize, quick: bool) {
    println!("== Table 5: GP matching under higher load-balancing costs (W ≈ 2.07M) ==\n");
    let mut wl = table5_workload();
    if quick {
        wl.bound -= 4;
        wl.w = 0;
    }
    let cost0 = CostModel::cm2();
    let w_est = if wl.w > 0 { wl.w } else { probe_w(&wl, p) };
    let mut t = TextTable::new(vec![
        "cost".to_string(),
        "metric".to_string(),
        "D^P".to_string(),
        "D^K".to_string(),
        "S^xo".to_string(),
    ]);
    let mut comparison = Vec::new();
    for (mi, &mult) in [1u32, 12, 16].iter().enumerate() {
        let cost = cost0.with_lb_multiplier(mult);
        let xo = optimal_static_trigger(&TriggerParams::new(w_est, p, cost.lb_ratio(p)));
        let cells = [
            measure(&wl, Scheme::gp_dp(), p, cost),
            measure(&wl, Scheme::gp_dk(), p, cost),
            measure(&wl, Scheme::gp_static(xo), p, cost),
        ];
        let label = if mult == 1 { "1x (actual)".to_string() } else { format!("{mult}x") };
        t.row(vec![
            label,
            "Nexpand".to_string(),
            cells[0].n_expand.to_string(),
            cells[1].n_expand.to_string(),
            cells[2].n_expand.to_string(),
        ]);
        t.row(vec![
            String::new(),
            "Nlb".to_string(),
            cells[0].n_lb.to_string(),
            cells[1].n_lb.to_string(),
            cells[2].n_lb.to_string(),
        ]);
        t.row(vec![
            String::new(),
            "E".to_string(),
            fmt_e(cells[0].e),
            fmt_e(cells[1].e),
            fmt_e(cells[2].e),
        ]);
        if !quick {
            for (si, name) in ["D^P", "D^K", "S^xo"].iter().enumerate() {
                comparison.push((
                    wl.paper_w,
                    mult as f64,
                    name.to_string(),
                    PAPER_TABLE5_E[mi][si],
                    cells[si].e,
                ));
            }
        }
    }
    println!("{t}");
    print_comparison("Table 5", &comparison);
}

/// Table 6: isoefficiency formulas, with measured exponents from a sweep.
fn table6(quick: bool) {
    println!("== Table 6: isoefficiency functions (analytic), with measured CM-2 fits ==\n");
    let mut t = TextTable::new(vec!["Scheme", "Architecture", "Isoefficiency"]);
    for row in isoeff_table() {
        t.row(vec![row.scheme, row.architecture, row.formula]);
    }
    println!("{t}");

    // Measured check on the CM-2 rows: exponent of W against P log2 P along
    // an equal-E contour should be ≈ 1 for GP and larger for nGP at x=0.9.
    let grid = if quick { sweep::SweepGrid::quick() } else { sweep::SweepGrid::full() };
    let trees = sweep::calibrated_trees(&grid);
    let levels = [0.45, 0.55, 0.65];
    for (name, scheme) in
        [("GP-S^0.90", Scheme::gp_static(0.9)), ("nGP-S^0.90", Scheme::ngp_static(0.9))]
    {
        let samples = sweep::sweep_scheme(scheme, &grid, &trees, CostModel::cm2());
        let curves = sweep::iso_curves(&samples, &levels);
        for c in curves {
            if let Some(b) = c.exponent {
                println!(
                    "  {name}: E={:.2} contour over {} P-values: W ~ (P log P)^{b:.2}",
                    c.e,
                    c.points.len()
                );
            }
        }
    }
}

/// Extra-paper ledger report: the Sec. 2.2 donation-burden claim measured
/// directly. GP's rotating global pointer should leave every donor with
/// `n` or `n+1` donations (max/mean ≤ 2) where nGP's fixed enumeration
/// piles the burden onto low-index PEs; the full JSON run-report of the
/// GP run (per-phase trigger provenance included) follows the table.
fn ledger_report(workloads: &[PaperWorkload], p: usize) {
    println!("== Ledger: donation spread, GP vs nGP (S^0.90, P={p}) ==\n");
    let wl = &workloads[0];
    let cost = CostModel::cm2();
    let mut t = TextTable::new(vec![
        "scheme".to_string(),
        "transfers".to_string(),
        "donors".to_string(),
        "max".to_string(),
        "max/mean".to_string(),
        "gini".to_string(),
    ]);
    let mut gp_report = None;
    for (label, scheme) in
        [("nGP-S^0.90", Scheme::ngp_static(0.9)), ("GP-S^0.90", Scheme::gp_static(0.9))]
    {
        let (cfg, out) = run_workload_ledger(wl, scheme, p, cost);
        let ledger = out.ledger.as_ref().expect("ledger was requested");
        let s = ledger.donation_spread();
        t.row(vec![
            label.to_string(),
            s.total.to_string(),
            s.donors.to_string(),
            s.max.to_string(),
            format!("{:.2}", s.max_over_mean),
            format!("{:.3}", s.gini),
        ]);
        if scheme.matching == uts_core::Matching::Gp {
            gp_report = Some(uts_core::run_report_json(&cfg, &out));
        }
    }
    println!("{t}");
    println!("-- GP-S^0.90 run-report (JSON) --");
    print!("{}", gp_report.expect("GP run executed"));
}

/// Shared: print paper-vs-measured efficiency comparison rows.
fn print_comparison(label: &str, rows: &[(u64, f64, String, f64, f64)]) {
    if rows.is_empty() {
        return;
    }
    println!("-- {label}: paper vs measured efficiency --");
    let mut t = TextTable::new(vec!["W(paper)", "x", "scheme", "E(paper)", "E(ours)", "dE"]);
    for (w, x, scheme, pe, me) in rows {
        let xs = if *x < 0.0 { "-".to_string() } else { format!("{x:.2}") };
        t.row(vec![
            w.to_string(),
            xs,
            scheme.clone(),
            fmt_e(*pe),
            fmt_e(*me),
            format!("{:+.2}", me - pe),
        ]);
    }
    println!("{t}");
}

/// Measured W of a run (all cells of a workload expand the same count).
fn run_w(wl: &PaperWorkload, cells: &[(Cell, Cell)]) -> u64 {
    if wl.w > 0 {
        wl.w
    } else {
        // Quick mode: recover W from any run (Nexpand cycles ≥ W/P, but we
        // need the true node count — probe once).
        let _ = cells;
        probe_w(wl, 64)
    }
}

/// Run once on a small machine purely to learn the workload's node count.
fn probe_w(wl: &PaperWorkload, _p: usize) -> u64 {
    uts_bench::workloads::run_workload(wl, Scheme::gp_static(0.8), 64, CostModel::cm2(), false)
        .report
        .nodes_expanded
}
