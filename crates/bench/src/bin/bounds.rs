//! Empirical study of the Appendix A/B transfer bounds and the
//! alpha-splitting model.
//!
//! ```text
//! cargo run --release -p uts-bench --bin bounds -- [--quick]
//! ```
//!
//! Appendix A bounds the number of balancing phases by
//! `V(P) · log_{1/(1-α)} W`, where α is the splitting quality: every split
//! leaves each part with at least an α-fraction of the work. α is not
//! directly observable (subtree sizes are unknown until searched), but it
//! can be *inferred*: for GP-S^x, `V(P) = ceil(1/(1-x))`, so the α at
//! which the bound is tight on a measured run is
//!
//! ```text
//! alpha_implied = 1 - exp( - ln W / (N_lb_measured · (1 - x)) )
//! ```
//!
//! The alpha-splitting model predicts this implied α is a property of the
//! *splitter* (bottom-of-stack donation on this workload), roughly
//! constant across W and x. This binary measures it, then re-checks the
//! Appendix A bound for every run at the most conservative implied α.

use uts_analysis::table::TextTable;
use uts_analysis::{total_transfer_bound, v_gp, v_ngp};
use uts_bench::parse_quick;
use uts_bench::runner::{PAPER_P, QUICK_P};
use uts_bench::workloads::{run_workload, table_workloads};
use uts_core::Scheme;
use uts_machine::CostModel;

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let (_, quick) = parse_quick(&args);
    let p = if quick { QUICK_P } else { PAPER_P };
    let mut workloads = table_workloads().to_vec();
    if quick {
        for wl in &mut workloads {
            wl.bound -= 4;
            wl.w = 0;
        }
        workloads.truncate(2);
    }

    // Pass 1: infer alpha from the GP runs (V(P) is exact for GP).
    println!("== Appendix A/B: the alpha-splitting model, measured ==\n");
    println!("-- implied splitting quality alpha (GP-S^x runs; V(P) = ceil(1/(1-x))) --");
    let mut t = TextTable::new(vec!["W", "x", "Nlb", "implied alpha"]);
    let mut alphas = Vec::new();
    for wl in &workloads {
        for &x in &[0.6, 0.8, 0.9] {
            let out = run_workload(wl, Scheme::gp_static(x), p, CostModel::cm2(), false);
            let w = out.report.nodes_expanded as f64;
            let n_lb = out.report.n_lb as f64;
            let alpha = 1.0 - (-w.ln() / (n_lb * (1.0 - x))).exp();
            alphas.push(alpha);
            t.row(vec![
                format!("{w:.0}"),
                format!("{x:.1}"),
                out.report.n_lb.to_string(),
                format!("{alpha:.3}"),
            ]);
        }
    }
    println!("{t}");
    let (min_a, max_a) =
        alphas.iter().fold((f64::MAX, f64::MIN), |(lo, hi), &a| (lo.min(a), hi.max(a)));
    println!(
        "implied alpha range: [{min_a:.3}, {max_a:.3}] — {}",
        if max_a / min_a.max(1e-9) < 3.0 {
            "stable across W and x, as the alpha-splitting model assumes"
        } else {
            "UNSTABLE: the constant-alpha model does not fit this splitter"
        }
    );

    // Pass 2: re-check the Appendix A bound for every run at the most
    // conservative implied alpha.
    let alpha = min_a;
    let log_base = (1.0 / (1.0 - alpha)).ln();
    println!("\n-- Appendix A bound check at alpha = {alpha:.3} (most conservative) --");
    let mut t = TextTable::new(vec!["W", "scheme", "x", "Nlb", "bound", "ratio"]);
    let mut worst: f64 = 0.0;
    for wl in &workloads {
        for &x in &[0.6, 0.8, 0.9] {
            for (name, scheme, is_gp) in
                [("GP", Scheme::gp_static(x), true), ("nGP", Scheme::ngp_static(x), false)]
            {
                let out = run_workload(wl, scheme, p, CostModel::cm2(), false);
                let w = out.report.nodes_expanded as f64;
                let log_w = w.ln() / log_base;
                let v = if is_gp { v_gp(x) } else { v_ngp(x, log_w) };
                let bound = total_transfer_bound(v, log_w);
                let ratio = out.report.n_lb as f64 / bound;
                worst = worst.max(ratio);
                t.row(vec![
                    format!("{w:.0}"),
                    name.to_string(),
                    format!("{x:.1}"),
                    out.report.n_lb.to_string(),
                    format!("{bound:.0}"),
                    format!("{ratio:.3}"),
                ]);
            }
        }
    }
    println!("{t}");
    // The inferred alpha comes from the GP runs alone; nGP's worst-case
    // derivation (Appendix B) uses a slightly different consumption
    // argument, so small excursions above 1.0 are expected there. Beyond
    // ~25% the constant-alpha model would genuinely misfit.
    println!(
        "worst measured/bound ratio: {worst:.3} — {}",
        if worst <= 1.25 {
            "every run is consistent with the Appendix A/B bounds at the inferred alpha"
        } else {
            "bound exceeded by more than the cross-scheme slack (model misfit)"
        }
    );
    println!(
        "\n(nGP's bound at high x is astronomically loose — (log W)^{{(2x-1)/(1-x)}}\n\
         — which is the paper's point: the guarantee degrades with x, and the\n\
         measured N_lb of Table 2 / Fig. 3 climbs accordingly.)"
    );
}
