//! Sharded-machine harness: drives the multi-process coordinator/worker
//! machine (`uts-shard`) at ensemble sizes the in-process engines never
//! see — the full run simulates **P = 1,048,576 PEs** — and records the
//! measured interconnect routing next to the cost model's closed form.
//! Writes `BENCH_shard.json` (current directory).
//!
//! ```text
//! cargo run --release -p uts-bench --bin bench_shard -- [--quick] [--check] [--out PATH]
//! ```
//!
//! Two claims, `--check` makes them gates:
//!
//! - **identity**: at small P the sharded outcome digests equal the
//!   single-process macro engine across shard counts {1, 2, 4} for both
//!   schemes (quick and full mode); in full mode the P = 2^20 GP leg is
//!   additionally run at two shard counts and must digest equal.
//! - **paper ordering**: with the donation ledger on, the GP (global
//!   pointer) matching spreads donations more evenly than nGP — GP's
//!   donation Gini stays below nGP's, reproducing the paper's GP-vs-nGP
//!   contrast at a P the paper could only extrapolate to.
//!
//! Timings are provenance, not gates. Workers re-execute this binary, so
//! `main` calls `maybe_run_worker()` before anything else.

use std::fmt::Write as _;
use std::time::Instant;

use uts_core::{run, EngineConfig, Scheme};
use uts_machine::CostModel;
use uts_serve::outcome_digest;
use uts_shard::{run_sharded, ShardOpts, ShardRun, ShardWorkload};
use uts_synthgen::find_gen_tree;

struct Leg {
    label: String,
    p: usize,
    shards: usize,
    scheme_name: String,
    w: u64,
    seconds: f64,
    n_expand: u64,
    n_lb: u64,
    transfers: u64,
    peak_stack_nodes: usize,
    efficiency: f64,
    routed_phases: usize,
    messages: u64,
    route_steps: u32,
    route_max_hops: u32,
    route_waits: u64,
    lb_cost_closed_form: u64,
    lb_cost_measured: u64,
    donors: usize,
    donation_max: u32,
    max_over_mean: f64,
    gini: f64,
    digest: u64,
}

fn leg_from(label: String, cfg: &EngineConfig, shards: usize, sr: &ShardRun, seconds: f64) -> Leg {
    let out = &sr.outcome;
    let spread = out.ledger.as_ref().expect("ledger on").donation_spread();
    Leg {
        label,
        p: cfg.p,
        shards,
        scheme_name: cfg.scheme.name(),
        w: out.report.nodes_expanded,
        seconds,
        n_expand: out.report.n_expand,
        n_lb: out.report.n_lb,
        transfers: out.report.n_transfers,
        peak_stack_nodes: out.peak_stack_nodes,
        efficiency: out.report.efficiency,
        routed_phases: sr.stats.phases.len(),
        messages: sr.stats.phases.iter().map(|ph| ph.messages).sum(),
        route_steps: sr.stats.route_total.steps,
        route_max_hops: sr.stats.route_total.max_hops,
        route_waits: sr.stats.route_total.waits,
        lb_cost_closed_form: sr.stats.phases.iter().map(|ph| ph.closed_form.total).sum(),
        lb_cost_measured: sr.stats.phases.iter().map(|ph| ph.measured.total).sum(),
        donors: spread.donors,
        donation_max: spread.max,
        max_over_mean: spread.max_over_mean,
        gini: spread.gini,
        digest: outcome_digest(out),
    }
}

fn main() {
    uts_shard::maybe_run_worker();

    let args: Vec<String> = std::env::args().skip(1).collect();
    let quick = args.iter().any(|a| a == "--quick");
    let check = args.iter().any(|a| a == "--check");
    let out_idx = args.iter().position(|a| a == "--out");
    let out_path = out_idx
        .map(|i| {
            args.get(i + 1).cloned().unwrap_or_else(|| {
                eprintln!("error: --out requires a path");
                std::process::exit(2);
            })
        })
        .unwrap_or_else(|| "BENCH_shard.json".to_string());
    for (i, a) in args.iter().enumerate() {
        if a != "--quick" && a != "--check" && a != "--out" && out_idx != Some(i.wrapping_sub(1)) {
            eprintln!(
                "error: unknown argument `{a}` (usage: bench_shard [--quick] [--check] [--out PATH])"
            );
            std::process::exit(2);
        }
    }

    let mut legs: Vec<Leg> = Vec::new();
    let mut identity_rows: Vec<String> = Vec::new();
    let mut identity_ok = true;

    // ---- identity sweep (both modes): sharded == macro at small P ----
    let small = find_gen_tree(20_000, 0.2, 16);
    eprintln!("identity tree: {} nodes (seed {})", small.w, small.tree.seed);
    for scheme in [Scheme::gp_dk(), Scheme::ngp_dk()] {
        let cfg = EngineConfig::new(256, scheme, CostModel::cm2()).with_ledger();
        let want = outcome_digest(&run(&small.tree, &cfg));
        for shards in [1usize, 2, 4] {
            let opts = ShardOpts { shards, park: None, kill: None };
            let sr =
                run_sharded(&ShardWorkload::from(small.tree), &cfg, &opts).unwrap_or_else(|e| {
                    eprintln!("sharded run failed: {e}");
                    std::process::exit(1);
                });
            let got = outcome_digest(&sr.outcome);
            let matches = got == want;
            if !matches {
                eprintln!(
                    "IDENTITY FAIL {} shards={shards}: {got:#018x} != {want:#018x}",
                    cfg.scheme.name()
                );
                identity_ok = false;
            }
            identity_rows.push(format!(
                "{{\"scheme\": \"{}\", \"p\": 256, \"shards\": {shards}, \
                 \"outcome_fnv\": \"{got:#018x}\", \"matches_macro\": {matches}}}",
                cfg.scheme.name()
            ));
        }
        eprintln!("identity {}: shards {{1,2,4}} == macro engine", cfg.scheme.name());
    }

    // ---- the headline legs: GP vs nGP donation spread at scale ----
    let (p, shards, target) =
        if quick { (4096usize, 4usize, 60_000u64) } else { (1usize << 20, 8usize, 4_000_000u64) };
    eprintln!("sizing the headline tree (target {target} nodes, serial probes)...");
    let big = find_gen_tree(target, 0.25, 24);
    eprintln!("headline tree: {} nodes (seed {}), P = {p}, {shards} shards", big.w, big.tree.seed);

    let mut digest_at_shards: Vec<(usize, u64)> = Vec::new();
    for scheme in [Scheme::gp_dk(), Scheme::ngp_dk()] {
        let cfg = EngineConfig::new(p, scheme, CostModel::cm2()).with_ledger();
        let opts = ShardOpts { shards, park: None, kill: None };
        let t0 = Instant::now();
        let sr = run_sharded(&ShardWorkload::from(big.tree), &cfg, &opts).unwrap_or_else(|e| {
            eprintln!("sharded run failed: {e}");
            std::process::exit(1);
        });
        let seconds = t0.elapsed().as_secs_f64();
        let leg = leg_from(format!("{}-P{p}", cfg.scheme.name()), &cfg, shards, &sr, seconds);
        eprintln!(
            "{:<14} W={} cycles={} phases={} transfers={} E={:.3} gini={:.3} \
             route steps={} ({:.1}s)",
            leg.label,
            leg.w,
            leg.n_expand,
            leg.n_lb,
            leg.transfers,
            leg.efficiency,
            leg.gini,
            leg.route_steps,
            seconds
        );
        if scheme == Scheme::gp_dk() {
            digest_at_shards.push((shards, leg.digest));
            // Shard-count invariance at full scale: rerun the GP leg at a
            // different shard count and demand digest equality.
            let alt = if quick { 2usize } else { 4 };
            let alt_opts = ShardOpts { shards: alt, park: None, kill: None };
            let t1 = Instant::now();
            let sr2 =
                run_sharded(&ShardWorkload::from(big.tree), &cfg, &alt_opts).unwrap_or_else(|e| {
                    eprintln!("sharded rerun failed: {e}");
                    std::process::exit(1);
                });
            let alt_seconds = t1.elapsed().as_secs_f64();
            let leg2 = leg_from(
                format!("{}-P{p}-s{alt}", cfg.scheme.name()),
                &cfg,
                alt,
                &sr2,
                alt_seconds,
            );
            if leg2.digest != leg.digest {
                eprintln!(
                    "IDENTITY FAIL at P={p}: {shards} shards {:#018x} != {alt} shards {:#018x}",
                    leg.digest, leg2.digest
                );
                identity_ok = false;
            } else {
                eprintln!("shard-count invariance at P={p}: {shards} == {alt} shards");
            }
            digest_at_shards.push((alt, leg2.digest));
            legs.push(leg2);
        }
        legs.push(leg);
    }

    let gp_gini = legs
        .iter()
        .find(|l| l.scheme_name == "GP-D^K" && l.shards == shards)
        .map(|l| l.gini)
        .expect("gp leg ran");
    let ngp_gini =
        legs.iter().find(|l| l.scheme_name == "nGP-D^K").map(|l| l.gini).expect("ngp leg ran");
    let ordering_ok = gp_gini < ngp_gini;
    eprintln!(
        "donation spread at P={p}: GP gini {gp_gini:.4} vs nGP gini {ngp_gini:.4} -> {}",
        if ordering_ok { "paper ordering holds" } else { "ORDERING VIOLATED" }
    );

    // ---- JSON ----
    let mut json = String::new();
    json.push_str("{\n  \"bench\": \"shard\",\n");
    let _ = writeln!(json, "  \"quick\": {quick},");
    let _ = writeln!(json, "  \"headline_p\": {p},");
    let _ = writeln!(json, "  \"headline_nodes\": {},", big.w);
    json.push_str("  \"identity\": [\n");
    for (i, row) in identity_rows.iter().enumerate() {
        let comma = if i + 1 < identity_rows.len() { "," } else { "" };
        let _ = writeln!(json, "    {row}{comma}");
    }
    json.push_str("  ],\n  \"legs\": [\n");
    for (i, l) in legs.iter().enumerate() {
        let comma = if i + 1 < legs.len() { "," } else { "" };
        let _ = writeln!(
            json,
            "    {{\"label\": \"{}\", \"scheme\": \"{}\", \"p\": {}, \"shards\": {}, \
             \"w\": {}, \"seconds\": {:.3}, \"n_expand\": {}, \"n_lb\": {}, \"transfers\": {}, \
             \"peak_stack_nodes\": {}, \"efficiency\": {:.6}, \"routed_phases\": {}, \
             \"messages\": {}, \"route_steps\": {}, \"route_max_hops\": {}, \"route_waits\": {}, \
             \"lb_cost_closed_form\": {}, \"lb_cost_measured\": {}, \
             \"donation_spread\": {{\"donors\": {}, \"max\": {}, \"max_over_mean\": {:.4}, \
             \"gini\": {:.6}}}, \"outcome_fnv\": \"{:#018x}\"}}{comma}",
            l.label,
            l.scheme_name,
            l.p,
            l.shards,
            l.w,
            l.seconds,
            l.n_expand,
            l.n_lb,
            l.transfers,
            l.peak_stack_nodes,
            l.efficiency,
            l.routed_phases,
            l.messages,
            l.route_steps,
            l.route_max_hops,
            l.route_waits,
            l.lb_cost_closed_form,
            l.lb_cost_measured,
            l.donors,
            l.donation_max,
            l.max_over_mean,
            l.gini,
            l.digest
        );
    }
    json.push_str("  ],\n");
    let _ = writeln!(json, "  \"gp_gini\": {gp_gini:.6},");
    let _ = writeln!(json, "  \"ngp_gini\": {ngp_gini:.6},");
    let _ = writeln!(json, "  \"gp_spreads_thinner\": {ordering_ok}");
    json.push_str("}\n");

    match std::fs::write(&out_path, &json) {
        Ok(()) => eprintln!("wrote {out_path}"),
        Err(e) => {
            eprintln!("could not write {out_path}: {e}");
            std::process::exit(1);
        }
    }

    if check {
        let mut ok = true;
        if !identity_ok {
            eprintln!("CHECK FAIL: sharded outcomes diverged from the macro engine");
            ok = false;
        }
        if !ordering_ok {
            eprintln!("CHECK FAIL: GP gini {gp_gini:.4} !< nGP gini {ngp_gini:.4}");
            ok = false;
        }
        if !ok {
            std::process::exit(1);
        }
        eprintln!(
            "check passed: {} identity legs + shard-count invariance at P={p}, GP < nGP gini",
            identity_rows.len()
        );
    }
}
