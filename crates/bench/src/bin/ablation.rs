//! Ablation benches for the design choices DESIGN.md calls out.
//!
//! ```text
//! cargo run --release -p uts-bench --bin ablation -- [split|topology|init|transfers|related|all] [--quick]
//! ```
//!
//! * `split` — split-policy quality (bottom vs half vs top): the paper's
//!   alpha-splitting assumption in practice (Sec. 3 and Sec. 8's remark
//!   that nearest-neighbor-style schemes are "sensitive to the quality of
//!   the alpha-splitting mechanism").
//! * `topology` — the same scheme under CM-2 / hypercube / mesh balancing
//!   costs (the t_lb column of Table 6).
//! * `init` — the Sec. 7 initial-distribution threshold for dynamic
//!   triggers.
//! * `transfers` — single vs multiple transfer rounds for each trigger
//!   (why D^P needs multiple, Sec. 2.3/6.1).
//! * `related` — FESS / FEGS / ring nearest-neighbor vs GP-D^K (Sec. 8).
//! * `fairness` — Gini coefficient of per-PE donation counts: the global
//!   pointer's design goal, quantified.

use uts_analysis::counter_stats;
use uts_analysis::table::{fmt_e, TextTable};
use uts_bench::parse_quick;
use uts_bench::runner::{PAPER_P, QUICK_P};
use uts_bench::workloads::{run_workload, table_workloads, PaperWorkload};
use uts_core::nn::{run_nearest_neighbor, NnConfig};
use uts_core::{run, EngineConfig, Scheme, TransferMode};
use uts_machine::CostModel;
use uts_tree::problem::BoundedProblem;
use uts_tree::SplitPolicy;

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let (rest, quick) = parse_quick(&args);
    let which = rest.first().map(String::as_str).unwrap_or("all");
    match which {
        "split" => split(quick),
        "topology" => topology(quick),
        "init" => init(quick),
        "transfers" => transfers(quick),
        "related" => related(quick),
        "fairness" => fairness(quick),
        "all" => {
            split(quick);
            topology(quick);
            init(quick);
            transfers(quick);
            related(quick);
            fairness(quick);
        }
        other => {
            eprintln!("unknown ablation `{other}`");
            std::process::exit(2);
        }
    }
}

fn workload(quick: bool) -> PaperWorkload {
    let mut wl = table_workloads()[1]; // W ≈ 3.04M
    if quick {
        wl.bound -= 4;
        wl.w = 0;
    }
    wl
}

fn machine_p(quick: bool) -> usize {
    if quick {
        QUICK_P
    } else {
        PAPER_P
    }
}

fn split(quick: bool) {
    println!("== Ablation: split policy (GP-S^0.8, W ≈ 3M) ==\n");
    let wl = workload(quick);
    let p = machine_p(quick);
    let mut t = TextTable::new(vec!["policy", "Nexpand", "Nlb", "E"]);
    for (name, policy) in [
        ("bottom (paper)", SplitPolicy::Bottom),
        ("half", SplitPolicy::Half),
        ("top", SplitPolicy::Top),
    ] {
        let puzzle = wl.puzzle();
        let bp = BoundedProblem::new(&puzzle, wl.bound);
        let cfg = EngineConfig::new(p, Scheme::gp_static(0.8), CostModel::cm2()).with_split(policy);
        let out = run(&bp, &cfg);
        t.row(vec![
            name.to_string(),
            out.report.n_expand.to_string(),
            out.report.n_lb.to_string(),
            fmt_e(out.report.efficiency),
        ]);
    }
    println!("{t}");
    println!("(top-splitting donates tiny subtrees, so receivers idle again quickly.)\n");
}

fn topology(quick: bool) {
    println!("== Ablation: interconnect cost model (GP-S^0.8 and GP-D^K) ==\n");
    let wl = workload(quick);
    let p = machine_p(quick);
    let mut t = TextTable::new(vec!["topology", "t_lb/U_calc", "E(GP-S^0.8)", "E(GP-D^K)"]);
    for (name, cost) in [
        ("CM-2", CostModel::cm2()),
        ("hypercube", CostModel::hypercube()),
        ("mesh", CostModel::mesh()),
    ] {
        let s = run_workload(&wl, Scheme::gp_static(0.8), p, cost, false);
        let d = run_workload(&wl, Scheme::gp_dk(), p, cost, false);
        t.row(vec![
            name.to_string(),
            format!("{:.2}", cost.lb_ratio(p)),
            fmt_e(s.report.efficiency),
            fmt_e(d.report.efficiency),
        ]);
    }
    println!("{t}");
    println!("(D^K adapts its balancing frequency to t_lb; static x = 0.8 does not.)\n");
}

fn init(quick: bool) {
    println!("== Ablation: initial-distribution threshold for GP-D^P (Sec. 7) ==\n");
    let wl = workload(quick);
    let p = machine_p(quick);
    let puzzle = wl.puzzle();
    let bp = BoundedProblem::new(&puzzle, wl.bound);
    let mut t = TextTable::new(vec!["init fraction", "Nexpand", "*Nlb", "E"]);
    for frac in [None, Some(0.25), Some(0.5), Some(0.85)] {
        let mut cfg = EngineConfig::new(p, Scheme::gp_dp(), CostModel::cm2());
        cfg.init_fraction = frac;
        let out = run(&bp, &cfg);
        t.row(vec![
            frac.map_or("none".to_string(), |f| format!("{f:.2}")),
            out.report.n_expand.to_string(),
            out.report.n_transfers.to_string(),
            fmt_e(out.report.efficiency),
        ]);
    }
    println!("{t}");
    println!("(Without an init phase D^P may not trigger while few PEs are active.)\n");
}

fn transfers(quick: bool) {
    println!("== Ablation: single vs multiple transfer rounds per phase ==\n");
    let wl = workload(quick);
    let p = machine_p(quick);
    let puzzle = wl.puzzle();
    let bp = BoundedProblem::new(&puzzle, wl.bound);
    let mut t = TextTable::new(vec!["scheme", "rounds", "Nlb", "*Nlb", "E"]);
    for (name, base) in [("GP-D^P", Scheme::gp_dp()), ("GP-D^K", Scheme::gp_dk())] {
        for mode in [TransferMode::Single, TransferMode::Multiple] {
            let mut scheme = base;
            scheme.transfers = mode;
            let cfg = EngineConfig::new(p, scheme, CostModel::cm2());
            let out = run(&bp, &cfg);
            t.row(vec![
                name.to_string(),
                match mode {
                    TransferMode::Single => "single".to_string(),
                    TransferMode::Multiple => "multiple".to_string(),
                    TransferMode::Equalize => "equalize".to_string(),
                },
                out.report.n_lb.to_string(),
                out.report.n_transfers.to_string(),
                fmt_e(out.report.efficiency),
            ]);
        }
    }
    println!("{t}");
    println!("(The paper requires multiple transfers for D^P; D^K tolerates single.)\n");
}

fn related(quick: bool) {
    println!("== Ablation: Sec. 8 related-work schemes vs GP-D^K ==\n");
    let wl = workload(quick);
    let p = machine_p(quick);
    let puzzle = wl.puzzle();
    let bp = BoundedProblem::new(&puzzle, wl.bound);
    let mut t = TextTable::new(vec!["scheme", "Nexpand", "Nlb", "*Nlb", "E"]);
    for (name, scheme) in
        [("FESS", Scheme::fess()), ("FEGS", Scheme::fegs()), ("GP-D^K", Scheme::gp_dk())]
    {
        let cfg = EngineConfig::new(p, scheme, CostModel::cm2());
        let out = run(&bp, &cfg);
        t.row(vec![
            name.to_string(),
            out.report.n_expand.to_string(),
            out.report.n_lb.to_string(),
            out.report.n_transfers.to_string(),
            fmt_e(out.report.efficiency),
        ]);
    }
    // Ring nearest-neighbor (Frye & Myczkowski).
    let out = run_nearest_neighbor(&bp, &NnConfig::new(p, CostModel::cm2()));
    t.row(vec![
        "ring-NN".to_string(),
        out.report.n_expand.to_string(),
        out.report.n_lb.to_string(),
        out.report.n_transfers.to_string(),
        fmt_e(out.report.efficiency),
    ]);
    println!("{t}");
    println!("(FESS balances every cycle once any PE idles; ring NN diffuses slowly.)\n");
}

fn fairness(quick: bool) {
    println!("== Ablation: donation-burden fairness (GP's design goal, Sec. 2.2) ==\n");
    let wl = workload(quick);
    let p = machine_p(quick);
    let puzzle = wl.puzzle();
    let bp = BoundedProblem::new(&puzzle, wl.bound);
    let mut t = TextTable::new(vec!["scheme", "donors", "max donations", "gini", "E"]);
    for (name, scheme) in [
        ("nGP-S^0.9", Scheme::ngp_static(0.9)),
        ("GP-S^0.9", Scheme::gp_static(0.9)),
        ("nGP-D^K", Scheme::ngp_dk()),
        ("GP-D^K", Scheme::gp_dk()),
    ] {
        let out = run(&bp, &EngineConfig::new(p, scheme, CostModel::cm2()));
        let stats = counter_stats(&out.donations);
        let donors = out.donations.iter().filter(|&&d| d > 0).count();
        t.row(vec![
            name.to_string(),
            donors.to_string(),
            stats.max.to_string(),
            format!("{:.3}", stats.gini),
            fmt_e(out.report.efficiency),
        ]);
    }
    println!("{t}");
    println!("(Lower Gini = the sharing burden is spread more evenly; GP rotates it.)\n");
}
