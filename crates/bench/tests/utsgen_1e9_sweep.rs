//! ROADMAP item 3's closing scope: a billion-node utsgen sweep proving
//! the O(stack) memory claim at a tree size where it actually binds.
//!
//! `find_gen_tree` sizes a geometric generator to ≥ 10⁹ realized nodes
//! (one serial-DFS probe per candidate seed — this alone walks a billion
//! nodes, which is why the test is `#[ignore]`d into the release CI
//! tier). The sweep then runs the macro engine and the multi-threaded
//! par engine over the same tree, asserts bit-identical outcomes and the
//! 64 KiB/PE resident ceiling, and records peak stack nodes and resident
//! bytes per PE into `BENCH_workloads.json` under a `"sweep_1e9"` key
//! (replacing any previous sweep section, so reruns stay idempotent).

use std::fmt::Write as _;
use std::time::Instant;

use uts_core::{run, run_par, EngineConfig, Outcome, Scheme};
use uts_machine::CostModel;
use uts_serve::outcome_digest;
use uts_synthgen::{find_gen_tree, GenFamily, GenNode, GenTree};

/// Same per-PE resident ceiling `bench_workloads --check` enforces.
const MEM_CEILING_BYTES_PER_PE: usize = 64 * 1024;

/// Target above 10⁹ so the realized tree clears a billion nodes even on
/// the low side of the tolerance band.
const TARGET_NODES: u64 = 1_400_000_000;

#[test]
#[ignore = "walks several billion nodes (sizing probe + two engine legs); release CI tier"]
fn billion_node_sweep_stays_in_stack_memory() {
    eprintln!("sizing a >= 1e9-node geometric tree (serial probes)...");
    let sized = find_gen_tree(TARGET_NODES, 0.3, 4);
    assert!(
        sized.w >= 1_000_000_000,
        "sized tree has {} nodes; the sweep needs a full billion",
        sized.w
    );
    eprintln!("tree: {} nodes (seed {})", sized.w, sized.tree.seed);

    let p = 4096;
    let node_bytes = std::mem::size_of::<GenNode>();
    let cfg = EngineConfig::new(p, Scheme::gp_dk(), CostModel::cm2());
    type Runner = fn(&GenTree, &EngineConfig) -> Outcome;
    let legs: [(&str, EngineConfig, usize, Runner); 2] =
        [("macro", cfg.clone(), 1, run), ("par4", cfg.clone().with_threads(4), 4, run_par)];

    let mut rows = String::new();
    let mut digests = Vec::new();
    for (i, (engine, leg_cfg, threads, runner)) in legs.into_iter().enumerate() {
        let t0 = Instant::now();
        let out = runner(&sized.tree, &leg_cfg);
        let seconds = t0.elapsed().as_secs_f64();
        assert!(!out.truncated, "{engine}: sweep must run to completion");
        assert_eq!(out.report.nodes_expanded, sized.w, "{engine}: anomaly-free contract");
        let resident = out.peak_stack_nodes * node_bytes;
        eprintln!(
            "{engine:<6} P={p} t={threads} {seconds:>8.3} s  peak {} nodes ({resident} B/PE)",
            out.peak_stack_nodes
        );
        assert!(
            resident <= MEM_CEILING_BYTES_PER_PE,
            "{engine}: {resident} B/PE breaks the O(stack) ceiling on a 1e9-node tree"
        );
        let digest = outcome_digest(&out);
        digests.push(digest);
        let comma = if i == 0 { "," } else { "" };
        let _ = writeln!(
            rows,
            "    {{\"engine\": \"{engine}\", \"host_threads\": {threads}, \
             \"seconds\": {seconds:.6}, \"nodes_per_sec\": {:.1}, \
             \"peak_stack_nodes\": {}, \"resident_bytes_per_pe\": {resident}, \
             \"outcome_fnv\": \"{digest:#018x}\"}}{comma}",
            sized.w as f64 / seconds,
            out.peak_stack_nodes,
        );
    }
    assert!(digests.windows(2).all(|w| w[0] == w[1]), "engines disagree at 1e9 nodes");

    let GenFamily::Geometric { b_max, depth_limit } = sized.tree.family else {
        panic!("find_gen_tree returns geometric trees");
    };
    let mut section = String::new();
    let _ = writeln!(
        section,
        ",\n  \"sweep_1e9\": {{\n    \"target_nodes\": {TARGET_NODES},\n    \
         \"tree\": {{\"family\": \"geometric\", \"seed\": {}, \"b_max\": {b_max}, \
         \"depth_limit\": {depth_limit}}},\n    \
         \"nodes\": {},\n    \"p\": {p},\n    \"node_bytes\": {node_bytes},\n    \
         \"mem_ceiling_bytes_per_pe\": {MEM_CEILING_BYTES_PER_PE},\n    \"legs\": [",
        sized.tree.seed, sized.w
    );
    section.push_str(&rows);
    section.push_str("  ]}\n}\n");

    // Merge into BENCH_workloads.json next to the other workload legs:
    // truncate at a previous sweep section (always written last) or at
    // the closing brace, then append ours.
    let path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_workloads.json");
    let text = std::fs::read_to_string(path)
        .unwrap_or_else(|_| "{\n  \"bench\": \"workloads\"\n}\n".to_string());
    let mut merged = match text.find(",\n  \"sweep_1e9\"") {
        Some(i) => text[..i].to_string(),
        None => {
            let t = text.trim_end().strip_suffix('}').expect("a JSON object").trim_end();
            t.to_string()
        }
    };
    merged.push_str(&section);
    std::fs::write(path, merged).expect("write BENCH_workloads.json");
    eprintln!("recorded sweep_1e9 into {path}");
}
