//! Criterion benches of the *real* host-parallel executors (`uts-par`)
//! against serial DFS, on the same trees the simulator runs. Wall-clock
//! speedup here depends on the host core count; the interesting ablation
//! is the overhead each execution strategy adds at a fixed thread count.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use std::hint::black_box;
use uts_par::{deque_dfs, rayon_dfs};
use uts_problems::NQueens;
use uts_synth::find_tree;
use uts_tree::serial_dfs;

fn bench_hosts_on_synth(c: &mut Criterion) {
    let st = find_tree(120_000, 0.15, 64);
    let mut g = c.benchmark_group("host_dfs/synthetic");
    g.throughput(Throughput::Elements(st.w));
    g.sample_size(10);
    g.bench_function("serial", |b| b.iter(|| serial_dfs(black_box(&st.tree)).expanded));
    for depth in [3usize, 6] {
        g.bench_with_input(BenchmarkId::new("rayon_fork_join", depth), &depth, |b, &d| {
            b.iter(|| rayon_dfs(black_box(&st.tree), d).expanded)
        });
    }
    for threads in [1usize, 2, 4] {
        g.bench_with_input(BenchmarkId::new("deque_pool", threads), &threads, |b, &t| {
            b.iter(|| deque_dfs(black_box(&st.tree), t).expanded)
        });
    }
    g.finish();
}

fn bench_hosts_on_nqueens(c: &mut Criterion) {
    let q = NQueens::new(10);
    let w = serial_dfs(&q).expanded;
    let mut g = c.benchmark_group("host_dfs/nqueens10");
    g.throughput(Throughput::Elements(w));
    g.sample_size(10);
    g.bench_function("serial", |b| b.iter(|| serial_dfs(black_box(&q)).expanded));
    g.bench_function("rayon_fork_join", |b| b.iter(|| rayon_dfs(black_box(&q), 4).expanded));
    g.bench_function("deque_pool_4", |b| b.iter(|| deque_dfs(black_box(&q), 4).expanded));
    g.finish();
}

criterion_group!(benches, bench_hosts_on_synth, bench_hosts_on_nqueens);
criterion_main!(benches);
