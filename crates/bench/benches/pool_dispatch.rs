//! Dispatch-latency microbenchmark for the persistent worker pool.
//!
//! The parallel engine used to pay a full `std::thread::scope` spawn/join
//! cycle inside *every* macro-step; the d10 engine workload runs 351
//! macro-steps in ~73 ms, so each ~200 µs burst carried tens of
//! microseconds of thread startup and barrier teardown. The
//! [`uts_core::WorkerPool`] replaces that with an epoch-stamped wake of
//! already-parked threads. This group makes the amortization claim a
//! tracked number instead of prose:
//!
//! * `pooled` — one [`uts_core::WorkerPool::dispatch`] round trip per
//!   iteration on a pool spawned once outside the timing loop: epoch
//!   bump, condvar wake, all participants run a trivial job, completion
//!   join;
//! * `scoped_spawn` — the old shape: a fresh `std::thread::scope` per
//!   iteration spawning the same number of workers for the same trivial
//!   job;
//! * `pooled_claim` / `scoped_claim` — the same pair running the engine's
//!   actual burst-phase shape: an atomic-cursor claim loop over a vector
//!   of jobs (empty payloads, so the measured cost is pure coordination).
//!
//! Worker counts 1 and 3 mirror pools backing 2- and 4-thread engine
//! runs (the dispatching thread participates, so a pool of `n` serves
//! `n + 1` engine threads). On a single-core host the absolute numbers
//! compress — parked threads still wake serially — but the pooled/scoped
//! ratio survives, which is what the comparison tracks.

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;
use uts_core::WorkerPool;

/// Jobs per claim-loop iteration: the engine publishes about four chunks
/// per worker (`CHUNKS_PER_WORKER`), so this is the queue depth a real
/// macro-step's burst phase puts through the cursor.
const CLAIM_JOBS: usize = 16;

fn bench_dispatch(c: &mut Criterion) {
    let mut g = c.benchmark_group("pool_dispatch");
    for workers in [1usize, 3] {
        let pool = WorkerPool::new(workers);

        g.bench_with_input(BenchmarkId::new("pooled", workers), &workers, |b, _| {
            b.iter(|| {
                let hits = AtomicUsize::new(0);
                pool.dispatch(&|| {
                    hits.fetch_add(1, Ordering::Relaxed);
                });
                black_box(hits.into_inner())
            });
        });

        g.bench_with_input(BenchmarkId::new("scoped_spawn", workers), &workers, |b, _| {
            b.iter(|| {
                let hits = AtomicUsize::new(0);
                std::thread::scope(|s| {
                    for _ in 0..workers {
                        s.spawn(|| {
                            hits.fetch_add(1, Ordering::Relaxed);
                        });
                    }
                    hits.fetch_add(1, Ordering::Relaxed);
                });
                black_box(hits.into_inner())
            });
        });

        // The engine's burst-phase shape: claim jobs off an atomic cursor
        // until the queue drains. Payloads are empty so the measurement
        // is the coordination cost alone.
        g.bench_with_input(BenchmarkId::new("pooled_claim", workers), &workers, |b, _| {
            let jobs: Vec<Mutex<Option<usize>>> =
                (0..CLAIM_JOBS).map(|i| Mutex::new(Some(i))).collect();
            b.iter(|| {
                for j in &jobs {
                    *j.lock().unwrap() = Some(0);
                }
                let cursor = AtomicUsize::new(0);
                let done = AtomicUsize::new(0);
                pool.dispatch(&|| loop {
                    let k = cursor.fetch_add(1, Ordering::Relaxed);
                    if k >= jobs.len() {
                        break;
                    }
                    let v = jobs[k].lock().unwrap().take().expect("claimed once");
                    done.fetch_add(v + 1, Ordering::Relaxed);
                });
                black_box(done.into_inner())
            });
        });

        g.bench_with_input(BenchmarkId::new("scoped_claim", workers), &workers, |b, _| {
            let jobs: Vec<Mutex<Option<usize>>> =
                (0..CLAIM_JOBS).map(|i| Mutex::new(Some(i))).collect();
            b.iter(|| {
                for j in &jobs {
                    *j.lock().unwrap() = Some(0);
                }
                let cursor = AtomicUsize::new(0);
                let done = AtomicUsize::new(0);
                let claim = || loop {
                    let k = cursor.fetch_add(1, Ordering::Relaxed);
                    if k >= jobs.len() {
                        break;
                    }
                    let v = jobs[k].lock().unwrap().take().expect("claimed once");
                    done.fetch_add(v + 1, Ordering::Relaxed);
                };
                std::thread::scope(|s| {
                    for _ in 0..workers {
                        s.spawn(claim);
                    }
                    claim();
                });
                black_box(done.into_inner())
            });
        });
    }
    g.finish();
}

criterion_group!(benches, bench_dispatch);
criterion_main!(benches);
