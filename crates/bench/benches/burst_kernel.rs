//! AoS-vs-SoA microbenchmark for the burst kernel and the census sweeps.
//!
//! The engines moved their per-PE state from one heap-allocated
//! [`uts_tree::SearchStack`] per PE (array-of-structures) to the
//! [`uts_tree::StackArena`]: one flat node slab per PE plus a dense
//! `u32` length array shared by the whole ensemble (structure-of-arrays,
//! DESIGN.md §6.3). This bench isolates the two kernels that motivated
//! the layout, at the machine scales the engine bench uses:
//!
//! * `burst_aos` / `burst_soa` — the macro-step burst (every PE runs a
//!   fixed-budget DFS burst) over cloned ensembles, frame-vector stacks
//!   vs. flat slabs;
//! * `census_aos` / `census_soa` — the stack-size histogram + `count_ge`
//!   suffix sum the event horizon reads, per-stack pointer chase over the
//!   active list vs. the chunked sweeps in `uts_core::census` over the
//!   dense length array.
//!
//! Populations are mid-run-shaped: every PE holds the root's subtree
//! after a PE-dependent warm-up burst, so lengths vary across the
//! ensemble like a real steady state.

use criterion::{criterion_group, criterion_main, BatchSize, BenchmarkId, Criterion, Throughput};
use std::hint::black_box;
use uts_core::census;
use uts_synth::GeometricTree;
use uts_tree::{SearchStack, StackArena, TreeProblem};

/// Burst budget per PE per measured pass — long enough that the kernel,
/// not the loop scaffolding, dominates.
const BURST: u64 = 32;

type Node = <GeometricTree as TreeProblem>::Node;

/// A P-wide ensemble with diversified stack lengths: each PE starts at the
/// root and runs a warm-up burst of `1..=8` expansions keyed on its index.
fn populate(tree: &GeometricTree, p: usize) -> Vec<SearchStack<Node>> {
    (0..p)
        .map(|i| {
            let mut s = SearchStack::from_frames(vec![vec![tree.root()]]);
            s.expand_burst(tree, (i % 8 + 1) as u64);
            s
        })
        .collect()
}

fn bench_burst_kernel(c: &mut Criterion) {
    let tree = GeometricTree { seed: 2, b_max: 8, depth_limit: 7 };
    let mut g = c.benchmark_group("burst_kernel");
    for p in [1024usize, 8192] {
        let stacks = populate(&tree, p);
        let arena = StackArena::from_stacks(stacks.clone());
        let lens: Vec<u32> = arena.lens().to_vec();
        let active: Vec<usize> = (0..p).filter(|&i| !stacks[i].is_empty()).collect();

        g.throughput(Throughput::Elements(p as u64));
        g.bench_with_input(BenchmarkId::new("burst_aos", p), &p, |b, _| {
            b.iter_batched(
                || stacks.clone(),
                |mut stacks| {
                    let mut expanded = 0u64;
                    for s in &mut stacks {
                        expanded += s.expand_burst(&tree, BURST).expanded;
                    }
                    black_box(expanded)
                },
                BatchSize::LargeInput,
            )
        });
        g.bench_with_input(BenchmarkId::new("burst_soa", p), &p, |b, _| {
            b.iter_batched(
                || arena.clone(),
                |mut arena| {
                    let mut expanded = 0u64;
                    for i in 0..arena.p() {
                        expanded += arena.expand_burst(i, &tree, BURST).expanded;
                    }
                    black_box(expanded)
                },
                BatchSize::LargeInput,
            )
        });

        g.bench_with_input(BenchmarkId::new("census_aos", p), &p, |b, _| {
            let mut hist: Vec<u32> = Vec::new();
            let mut cg: Vec<u32> = Vec::new();
            b.iter(|| {
                // The pre-SoA census: chase every active PE's stack.
                hist.clear();
                for &i in &active {
                    let s = stacks[i].len();
                    if s >= hist.len() {
                        hist.resize(s + 1, 0);
                    }
                    hist[s] += 1;
                }
                census::build_count_ge(&hist, &mut cg);
                black_box(cg[0])
            })
        });
        g.bench_with_input(BenchmarkId::new("census_soa", p), &p, |b, _| {
            let mut hist: Vec<u32> = Vec::new();
            let mut cg: Vec<u32> = Vec::new();
            b.iter(|| {
                census::build_hist(&lens, &mut hist);
                census::build_count_ge(&hist, &mut cg);
                black_box(cg[0])
            })
        });
    }
    g.finish();
}

criterion_group!(benches, bench_burst_kernel);
criterion_main!(benches);
