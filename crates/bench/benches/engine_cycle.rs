//! Engine-throughput benchmark: simulated nodes expanded per host second,
//! event-horizon macro engine vs. fused hot loop vs. the reference
//! two-sweep executor, at the paper's machine scale (P = 8192, the CM-2 of
//! Sec. 7 had 8K processors).
//!
//! The fused loop's advantage grows with P because the reference loop
//! spends O(P) per cycle on idle slots and a second census sweep, while
//! the fused loop touches only active PEs. The macro engine additionally
//! skips trigger checkpoints it can prove are no-ops, running each PE's
//! DFS in cache-hot bursts between them. The par engine shards those
//! bursts across host worker threads (auto-detected here, so single-core
//! machines measure its inline-path parity with the macro engine and
//! multicore machines its scaling).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use std::hint::black_box;
use uts_core::{run, run_fused, run_par, run_reference, EngineConfig, Scheme};
use uts_machine::CostModel;
use uts_synth::GeometricTree;
use uts_tree::serial_dfs;

fn cfg(p: usize) -> EngineConfig {
    EngineConfig::new(p, Scheme::gp_dk(), CostModel::cm2())
}

fn bench_engine_cycle(c: &mut Criterion) {
    let tree = GeometricTree { seed: 2, b_max: 8, depth_limit: 7 };
    let w = serial_dfs(&tree).expanded;
    let mut g = c.benchmark_group("engine_cycle");
    g.throughput(Throughput::Elements(w));
    for p in [1024usize, 8192] {
        g.bench_with_input(BenchmarkId::new("macro", p), &p, |b, &p| {
            b.iter(|| black_box(run(&tree, &cfg(p))).report.nodes_expanded)
        });
        g.bench_with_input(BenchmarkId::new("par", p), &p, |b, &p| {
            b.iter(|| black_box(run_par(&tree, &cfg(p))).report.nodes_expanded)
        });
        g.bench_with_input(BenchmarkId::new("fused", p), &p, |b, &p| {
            b.iter(|| black_box(run_fused(&tree, &cfg(p))).report.nodes_expanded)
        });
        g.bench_with_input(BenchmarkId::new("reference", p), &p, |b, &p| {
            b.iter(|| black_box(run_reference(&tree, &cfg(p))).report.nodes_expanded)
        });
    }
    g.finish();
}

criterion_group!(benches, bench_engine_cycle);
criterion_main!(benches);
