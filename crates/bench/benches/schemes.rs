//! Criterion end-to-end benches: simulate one full parallel search per
//! scheme on a fixed synthetic tree. Throughput = simulated node
//! expansions per second of *host* time — the figure of merit for how
//! cheaply this crate reproduces a CM-2 run.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use std::hint::black_box;
use uts_core::nn::{run_nearest_neighbor, NnConfig};
use uts_core::{run, EngineConfig, Scheme};
use uts_machine::CostModel;
use uts_mimd::{run_mimd, MimdConfig, StealPolicy};
use uts_synth::{find_tree, SizedTree};

fn tree() -> SizedTree {
    find_tree(60_000, 0.15, 64)
}

fn bench_simd_schemes(c: &mut Criterion) {
    let st = tree();
    let mut g = c.benchmark_group("simd_engine");
    g.throughput(Throughput::Elements(st.w));
    g.sample_size(10);
    for (name, scheme) in [
        ("GP-S0.8", Scheme::gp_static(0.8)),
        ("nGP-S0.8", Scheme::ngp_static(0.8)),
        ("GP-DK", Scheme::gp_dk()),
        ("GP-DP", Scheme::gp_dp()),
        ("FESS", Scheme::fess()),
        ("FEGS", Scheme::fegs()),
    ] {
        g.bench_with_input(BenchmarkId::new(name, 256), &st, |b, st| {
            let cfg = EngineConfig::new(256, scheme, CostModel::cm2());
            b.iter(|| run(black_box(&st.tree), &cfg).report.nodes_expanded)
        });
    }
    g.finish();
}

fn bench_nn(c: &mut Criterion) {
    let st = tree();
    let mut g = c.benchmark_group("nn_engine");
    g.throughput(Throughput::Elements(st.w));
    g.sample_size(10);
    g.bench_function("ring-NN/256", |b| {
        let cfg = NnConfig::new(256, CostModel::cm2());
        b.iter(|| run_nearest_neighbor(black_box(&st.tree), &cfg).report.nodes_expanded)
    });
    g.finish();
}

fn bench_mimd(c: &mut Criterion) {
    let st = tree();
    let mut g = c.benchmark_group("mimd_engine");
    g.throughput(Throughput::Elements(st.w));
    g.sample_size(10);
    for policy in [StealPolicy::GlobalRoundRobin, StealPolicy::RandomPolling] {
        g.bench_function(format!("{}/256", policy.name()), |b| {
            let cfg = MimdConfig::new(256, policy, CostModel::cm2());
            b.iter(|| run_mimd(black_box(&st.tree), &cfg).nodes_expanded)
        });
    }
    g.finish();
}

criterion_group!(benches, bench_simd_schemes, bench_nn, bench_mimd);
criterion_main!(benches);
