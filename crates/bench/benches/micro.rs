//! Criterion micro-benchmarks of the substrate operations whose costs the
//! paper's model abstracts into `U_calc` and `t_lb`: node expansion, stack
//! splitting, scans, and rendezvous matching. These quantify the *host*
//! cost of simulating one machine operation (the simulated costs are fixed
//! by the cost model, not by these timings).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use std::hint::black_box;
use uts_puzzle15::{korf_instances, Puzzle15, PuzzleState};
use uts_scan::{
    enumerate_marked, exclusive_sum, rendezvous_match_from, rendezvous_match_from_into,
    MatchScratch,
};
use uts_synth::GeometricTree;
use uts_tree::{serial_dfs, SearchStack, SplitPolicy, TreeProblem};

fn bench_scans(c: &mut Criterion) {
    let mut g = c.benchmark_group("scan");
    for size in [1usize << 10, 1 << 13, 1 << 16] {
        let xs: Vec<u64> = (0..size as u64).map(|i| i % 7).collect();
        g.throughput(Throughput::Elements(size as u64));
        g.bench_with_input(BenchmarkId::new("exclusive_sum", size), &xs, |b, xs| {
            b.iter(|| exclusive_sum(black_box(xs)))
        });
        let flags: Vec<bool> = (0..size).map(|i| i % 3 == 0).collect();
        g.bench_with_input(BenchmarkId::new("enumerate_marked", size), &flags, |b, f| {
            b.iter(|| enumerate_marked(black_box(f)))
        });
    }
    g.finish();
}

fn bench_matching(c: &mut Criterion) {
    let mut g = c.benchmark_group("rendezvous");
    for p in [1024usize, 8192] {
        let busy: Vec<bool> = (0..p).map(|i| i % 3 != 0).collect();
        let idle: Vec<bool> = busy.iter().map(|&b| !b).collect();
        g.throughput(Throughput::Elements(p as u64));
        g.bench_with_input(BenchmarkId::new("match_from", p), &p, |b, _| {
            b.iter(|| rendezvous_match_from(black_box(&busy), black_box(&idle), black_box(17)))
        });
        // The engine hot path: the same matching with the packed-index and
        // pair buffers reused across rounds instead of reallocated.
        g.bench_with_input(BenchmarkId::new("match_from_into", p), &p, |b, _| {
            let mut scratch = MatchScratch::default();
            let mut pairs = Vec::new();
            b.iter(|| {
                rendezvous_match_from_into(
                    black_box(&busy),
                    black_box(&idle),
                    black_box(17),
                    &mut scratch,
                    &mut pairs,
                );
                black_box(pairs.len())
            })
        });
    }
    g.finish();
}

fn bench_puzzle_expansion(c: &mut Criterion) {
    let inst = korf_instances()[0];
    let puzzle = Puzzle15::new(inst.board());
    let root = PuzzleState::new(inst.board());
    c.bench_function("puzzle15/expand_one_state", |b| {
        let mut out = Vec::with_capacity(4);
        b.iter(|| {
            out.clear();
            use uts_tree::HeuristicProblem;
            puzzle.successors(black_box(&root), &mut out);
            black_box(out.len())
        })
    });
}

fn bench_serial_dfs(c: &mut Criterion) {
    // A ~20k-node synthetic tree: measures end-to-end nodes/second of the
    // expansion machinery (stack + generator).
    let tree = GeometricTree { seed: 2, b_max: 8, depth_limit: 6 };
    let w = serial_dfs(&tree).expanded;
    let mut g = c.benchmark_group("serial_dfs");
    g.throughput(Throughput::Elements(w));
    g.bench_function("geometric_tree", |b| b.iter(|| serial_dfs(black_box(&tree)).expanded));
    g.finish();
}

fn bench_split(c: &mut Criterion) {
    // Splitting cost on a realistic deep stack.
    let mut g = c.benchmark_group("stack_split");
    for policy in [SplitPolicy::Bottom, SplitPolicy::Half, SplitPolicy::Top] {
        g.bench_function(format!("{policy:?}"), |b| {
            b.iter_batched(
                || {
                    let tree = GeometricTree { seed: 3, b_max: 8, depth_limit: 6 };
                    let mut s = SearchStack::from_root(tree.root());
                    let mut children = Vec::new();
                    for _ in 0..200 {
                        if let Some(n) = s.pop_next() {
                            children.clear();
                            tree.expand(&n, &mut children);
                            s.push_frame(std::mem::take(&mut children));
                        }
                    }
                    s
                },
                |mut s| black_box(s.split(policy)),
                criterion::BatchSize::SmallInput,
            )
        });
    }
    g.finish();
}

criterion_group!(
    benches,
    bench_scans,
    bench_matching,
    bench_puzzle_expansion,
    bench_serial_dfs,
    bench_split
);
criterion_main!(benches);
