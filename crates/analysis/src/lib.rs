//! Scalability analysis machinery for the paper's Sections 3, 4, 6 and 9:
//! the optimal static trigger (eq. 18), the `V(P)` transfer bounds
//! (Appendices A & B), the closed-form efficiency models (eqs. 12 & 15),
//! the isoefficiency table (Table 6), equal-efficiency contour extraction
//! (Figs. 4 & 7), and power-law fits that quantify how close a measured
//! contour is to `W ∝ P log P`.

pub mod bounds;
pub mod contour;
pub mod csv;
pub mod fit;
pub mod models;
pub mod speedup;
pub mod stats;
pub mod table;
pub mod trigger;

pub use bounds::{total_transfer_bound, v_gp, v_ngp};
pub use contour::{extract_contour, ContourPoint, Sample};
pub use fit::{fit_power_law, fit_through_origin, PowerLawFit};
pub use models::{gp_efficiency, isoeff_table, ngp_efficiency, IsoeffRow};
pub use speedup::{fixed_size_speedups, knee, scaled_speedups, SpeedupPoint};
pub use stats::{counter_stats, gini, CounterStats};
pub use trigger::{optimal_static_trigger, TriggerParams, DEFAULT_ALPHA};
