//! Distributional statistics over per-processor counters — used to
//! quantify GP's design goal: "to try to evenly distribute the burden of
//! sharing work among the processors" (Sec. 2.2). Under nGP the donation
//! burden concentrates on low-index processors; under GP it spreads
//! round-robin. The Gini coefficient of the donation-count vector makes
//! that difference a single number.

/// Summary statistics of a non-negative counter vector.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CounterStats {
    /// Number of counters.
    pub n: usize,
    /// Sum of all counters.
    pub total: u64,
    /// Arithmetic mean.
    pub mean: f64,
    /// Minimum value.
    pub min: u64,
    /// Maximum value.
    pub max: u64,
    /// Population standard deviation.
    pub stddev: f64,
    /// Gini coefficient in `[0, 1)`: 0 = perfectly even, → 1 = all load on
    /// one element. Defined as 0 for an all-zero vector.
    pub gini: f64,
}

/// Compute [`CounterStats`] for `counts`.
///
/// # Panics
/// Panics on an empty slice.
pub fn counter_stats(counts: &[u32]) -> CounterStats {
    assert!(!counts.is_empty(), "need at least one counter");
    let n = counts.len();
    let total: u64 = counts.iter().map(|&c| c as u64).sum();
    let mean = total as f64 / n as f64;
    let min = counts.iter().copied().min().unwrap() as u64;
    let max = counts.iter().copied().max().unwrap() as u64;
    let var = counts.iter().map(|&c| (c as f64 - mean).powi(2)).sum::<f64>() / n as f64;
    CounterStats { n, total, mean, min, max, stddev: var.sqrt(), gini: gini(counts) }
}

/// Gini coefficient of a non-negative integer vector (0 for all-zero).
///
/// Uses the sorted-rank formula
/// `G = (2 Σ_i i·x_(i) / (n Σ x)) - (n + 1)/n` with 1-based ranks over the
/// ascending sort.
pub fn gini(counts: &[u32]) -> f64 {
    let n = counts.len();
    if n == 0 {
        return 0.0;
    }
    let total: u64 = counts.iter().map(|&c| c as u64).sum();
    if total == 0 {
        return 0.0;
    }
    let mut sorted: Vec<u32> = counts.to_vec();
    sorted.sort_unstable();
    let weighted: f64 = sorted.iter().enumerate().map(|(i, &x)| (i as f64 + 1.0) * x as f64).sum();
    (2.0 * weighted) / (n as f64 * total as f64) - (n as f64 + 1.0) / n as f64
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn uniform_vector_has_zero_gini() {
        let stats = counter_stats(&[5, 5, 5, 5]);
        assert!(stats.gini.abs() < 1e-12);
        assert_eq!(stats.mean, 5.0);
        assert_eq!(stats.stddev, 0.0);
        assert_eq!(stats.total, 20);
    }

    #[test]
    fn concentrated_vector_has_high_gini() {
        // All donations from one of 10 processors: G = (n-1)/n = 0.9.
        let mut v = vec![0u32; 10];
        v[3] = 100;
        let g = gini(&v);
        assert!((g - 0.9).abs() < 1e-12, "g = {g}");
    }

    #[test]
    fn gini_is_scale_invariant() {
        let a = gini(&[1, 2, 3, 4]);
        let b = gini(&[10, 20, 30, 40]);
        assert!((a - b).abs() < 1e-12);
    }

    #[test]
    fn gini_is_permutation_invariant() {
        assert_eq!(gini(&[1, 5, 2, 9]), gini(&[9, 1, 5, 2]));
    }

    #[test]
    fn all_zero_is_defined_as_zero() {
        assert_eq!(gini(&[0, 0, 0]), 0.0);
        let stats = counter_stats(&[0, 0, 0]);
        assert_eq!(stats.gini, 0.0);
        assert_eq!(stats.max, 0);
    }

    #[test]
    fn known_gini_value() {
        // [0, 0, 10, 10]: sorted ranks give G = 0.5.
        let g = gini(&[0, 0, 10, 10]);
        assert!((g - 0.5).abs() < 1e-12, "g = {g}");
    }

    #[test]
    fn stats_min_max() {
        let s = counter_stats(&[3, 9, 1]);
        assert_eq!(s.min, 1);
        assert_eq!(s.max, 9);
        assert_eq!(s.n, 3);
    }

    #[test]
    #[should_panic(expected = "at least one")]
    fn empty_rejected() {
        let _ = counter_stats(&[]);
    }
}
