//! Minimal plain-text table rendering shared by the bench harness bins
//! (the tables print in the same row/column layout as the paper's).

/// A simple left-padded column table. Build with [`TextTable::new`], add
/// rows, render with `to_string`.
#[derive(Debug, Clone)]
pub struct TextTable {
    header: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl TextTable {
    /// Create a table with the given column headers.
    pub fn new<S: Into<String>>(header: Vec<S>) -> Self {
        Self { header: header.into_iter().map(Into::into).collect(), rows: Vec::new() }
    }

    /// Append a row; it must have as many cells as the header.
    ///
    /// # Panics
    /// Panics on a column-count mismatch.
    pub fn row<S: Into<String>>(&mut self, cells: Vec<S>) -> &mut Self {
        let cells: Vec<String> = cells.into_iter().map(Into::into).collect();
        assert_eq!(cells.len(), self.header.len(), "row width must match header");
        self.rows.push(cells);
        self
    }

    /// Number of data rows.
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// Whether the table has no data rows.
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }
}

impl std::fmt::Display for TextTable {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let cols = self.header.len();
        let mut widths: Vec<usize> = self.header.iter().map(String::len).collect();
        for row in &self.rows {
            for c in 0..cols {
                widths[c] = widths[c].max(row[c].len());
            }
        }
        let write_row = |f: &mut std::fmt::Formatter<'_>, cells: &[String]| -> std::fmt::Result {
            for (c, cell) in cells.iter().enumerate() {
                if c > 0 {
                    write!(f, "  ")?;
                }
                write!(f, "{cell:>width$}", width = widths[c])?;
            }
            writeln!(f)
        };
        write_row(f, &self.header)?;
        let total: usize = widths.iter().sum::<usize>() + 2 * (cols - 1);
        writeln!(f, "{}", "-".repeat(total))?;
        for row in &self.rows {
            write_row(f, row)?;
        }
        Ok(())
    }
}

/// Format an efficiency as the paper does (two decimals).
pub fn fmt_e(e: f64) -> String {
    format!("{e:.2}")
}

/// Format a large count with thousands separators for readability.
pub fn fmt_count(n: u64) -> String {
    let s = n.to_string();
    let mut out = String::with_capacity(s.len() + s.len() / 3);
    for (i, ch) in s.chars().enumerate() {
        if i > 0 && (s.len() - i).is_multiple_of(3) {
            out.push(',');
        }
        out.push(ch);
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_aligned_columns() {
        let mut t = TextTable::new(vec!["W", "E"]);
        t.row(vec!["941852", "0.52"]);
        t.row(vec!["16110463", "0.66"]);
        let s = t.to_string();
        let lines: Vec<&str> = s.lines().collect();
        assert_eq!(lines.len(), 4);
        assert!(lines[0].contains('W'));
        assert!(lines[1].chars().all(|c| c == '-'));
        // Right-aligned: both data lines end at the same column.
        assert_eq!(lines[2].len(), lines[3].len());
    }

    #[test]
    #[should_panic(expected = "row width")]
    fn mismatched_row_rejected() {
        let mut t = TextTable::new(vec!["a", "b"]);
        t.row(vec!["only-one"]);
    }

    #[test]
    fn count_formatting() {
        assert_eq!(fmt_count(0), "0");
        assert_eq!(fmt_count(999), "999");
        assert_eq!(fmt_count(1000), "1,000");
        assert_eq!(fmt_count(16110463), "16,110,463");
    }

    #[test]
    fn efficiency_formatting() {
        assert_eq!(fmt_e(0.523), "0.52");
        assert_eq!(fmt_e(0.9), "0.90");
    }
}
