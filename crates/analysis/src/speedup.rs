//! Speedup-curve analysis: fixed-size (Amdahl-style) and scaled
//! (Gustafson-style) speedup, the two framings the paper's scalability
//! references contrast (Gustafson 1988; Gustafson, Montry & Benner 1988 —
//! refs. 10 and 11).
//!
//! * **Fixed-size**: hold `W` constant, grow `P`; speedup saturates as
//!   overheads dominate. [`knee`] finds where the marginal efficiency of
//!   doubling `P` drops below a threshold.
//! * **Scaled**: grow `W` with `P` along an isoefficiency function; speedup
//!   stays ~linear if the scaling matches the machine. [`scaled_speedups`]
//!   evaluates how close a measured (P, W, E) sweep comes to that ideal.

use serde::{Deserialize, Serialize};

use crate::contour::Sample;

/// One point of a fixed-size speedup curve.
#[derive(Debug, Clone, Copy, Serialize, Deserialize)]
pub struct SpeedupPoint {
    /// Processors.
    pub p: usize,
    /// Speedup `S = E · P`.
    pub s: f64,
}

/// Derive the speedup curve for a fixed `W` from efficiency samples
/// (entries with other `w` values are ignored; result is sorted by `P`).
pub fn fixed_size_speedups(samples: &[Sample], w: u64) -> Vec<SpeedupPoint> {
    let mut pts: Vec<SpeedupPoint> = samples
        .iter()
        .filter(|s| s.w == w)
        .map(|s| SpeedupPoint { p: s.p, s: s.e * s.p as f64 })
        .collect();
    pts.sort_by_key(|p| p.p);
    pts
}

/// The knee of a fixed-size speedup curve: the largest `P` reached while
/// every doubling of the machine still bought at least `threshold` of its
/// ideal gain (e.g. `threshold = 0.75` accepts a doubling that yields
/// ≥ 1.5× speedup). Returns `None` for curves with fewer than 2 points.
pub fn knee(curve: &[SpeedupPoint], threshold: f64) -> Option<usize> {
    if curve.len() < 2 {
        return None;
    }
    let mut last_good = curve[0].p;
    for pair in curve.windows(2) {
        let gain = pair[1].s / pair[0].s;
        let ideal = pair[1].p as f64 / pair[0].p as f64;
        if gain >= threshold * ideal {
            last_good = pair[1].p;
        } else {
            break;
        }
    }
    Some(last_good)
}

/// For each `P`, the best (largest-W) measured efficiency — the envelope a
/// scaled-workload user would ride. Returns `(P, E)` sorted by `P`.
pub fn scaled_speedups(samples: &[Sample]) -> Vec<(usize, f64)> {
    let mut best: std::collections::BTreeMap<usize, f64> = std::collections::BTreeMap::new();
    for s in samples {
        let e = best.entry(s.p).or_insert(0.0);
        if s.e > *e {
            *e = s.e;
        }
    }
    best.into_iter().collect()
}

/// Serial fraction implied by a measured speedup at `P` (Amdahl inversion:
/// `f = (P/S - 1) / (P - 1)`). A diagnostic, not a model fit.
///
/// # Panics
/// Panics if `p < 2` or `s <= 0`.
pub fn implied_serial_fraction(p: usize, s: f64) -> f64 {
    assert!(p >= 2, "Amdahl inversion needs P >= 2");
    assert!(s > 0.0, "speedup must be positive");
    (p as f64 / s - 1.0) / (p as f64 - 1.0)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample(p: usize, w: u64, e: f64) -> Sample {
        Sample { p, w, e }
    }

    #[test]
    fn fixed_size_curve_filters_and_sorts() {
        let samples = [sample(256, 100, 0.5), sample(64, 100, 0.9), sample(64, 999, 0.99)];
        let curve = fixed_size_speedups(&samples, 100);
        assert_eq!(curve.len(), 2);
        assert_eq!(curve[0].p, 64);
        assert!((curve[0].s - 57.6).abs() < 1e-9);
        assert!((curve[1].s - 128.0).abs() < 1e-9);
    }

    #[test]
    fn knee_detects_saturation() {
        // Perfect up to 256, then collapse.
        let curve = vec![
            SpeedupPoint { p: 64, s: 60.0 },
            SpeedupPoint { p: 128, s: 118.0 },
            SpeedupPoint { p: 256, s: 230.0 },
            SpeedupPoint { p: 512, s: 240.0 },
        ];
        assert_eq!(knee(&curve, 0.75), Some(256));
        assert_eq!(knee(&curve[..1], 0.75), None);
    }

    #[test]
    fn knee_of_ideal_curve_is_last_point() {
        let curve: Vec<SpeedupPoint> =
            [64usize, 128, 256].iter().map(|&p| SpeedupPoint { p, s: p as f64 }).collect();
        assert_eq!(knee(&curve, 0.95), Some(256));
    }

    #[test]
    fn scaled_envelope_takes_best_w() {
        let samples = [
            sample(64, 100, 0.7),
            sample(64, 1000, 0.9),
            sample(128, 100, 0.5),
            sample(128, 1000, 0.85),
        ];
        let env = scaled_speedups(&samples);
        assert_eq!(env, vec![(64, 0.9), (128, 0.85)]);
    }

    #[test]
    fn amdahl_inversion_sane() {
        // Ideal speedup implies zero serial fraction.
        assert!((implied_serial_fraction(128, 128.0)).abs() < 1e-12);
        // S = P/2 at large P implies f ≈ 1/(P-1) · (P/S - 1) = 1/(P-1).
        let f = implied_serial_fraction(1024, 512.0);
        assert!(f > 0.0 && f < 0.01, "f = {f}");
    }

    #[test]
    #[should_panic(expected = "P >= 2")]
    fn amdahl_needs_parallel_machine() {
        let _ = implied_serial_fraction(1, 1.0);
    }
}
