//! Equal-efficiency contour extraction — the experimental isoefficiency
//! curves of Figs. 4 and 7.
//!
//! "These graphs were obtained by performing a large number of experiments
//! for a range of W and P, and then collecting the points with equal
//! efficiency." (Sec. 5)
//!
//! Given measured samples `(P, W, E)` on a (possibly ragged) grid, for each
//! target efficiency and each `P` we find the `W` at which the efficiency
//! crosses the target, interpolating linearly in `(ln W, E)` between
//! bracketing samples — efficiency is monotone increasing in `W` at fixed
//! `P` for these schemes, which the extraction checks.

use serde::{Deserialize, Serialize};

/// One measured run.
#[derive(Debug, Clone, Copy, Serialize, Deserialize)]
pub struct Sample {
    /// Processors.
    pub p: usize,
    /// Problem size.
    pub w: u64,
    /// Measured efficiency.
    pub e: f64,
}

/// One point of an equal-efficiency contour.
#[derive(Debug, Clone, Copy, Serialize, Deserialize)]
pub struct ContourPoint {
    /// Processors.
    pub p: usize,
    /// Interpolated problem size achieving the target efficiency.
    pub w: f64,
}

/// Extract the contour for `target` efficiency. Returns one point per `P`
/// value whose sample set brackets the target; `P` values whose efficiencies
/// never reach the target (or always exceed it) are skipped.
pub fn extract_contour(samples: &[Sample], target: f64) -> Vec<ContourPoint> {
    let mut by_p: std::collections::BTreeMap<usize, Vec<(f64, f64)>> =
        std::collections::BTreeMap::new();
    for s in samples {
        by_p.entry(s.p).or_default().push(((s.w as f64).ln(), s.e));
    }
    let mut out = Vec::new();
    for (p, mut pts) in by_p {
        pts.sort_by(|a, b| a.0.total_cmp(&b.0));
        // Walk consecutive (ln W, E) pairs looking for a bracketing segment.
        for pair in pts.windows(2) {
            let (lw0, e0) = pair[0];
            let (lw1, e1) = pair[1];
            let (lo, hi) = if e0 <= e1 { (e0, e1) } else { (e1, e0) };
            if target >= lo && target <= hi && (e1 - e0).abs() > f64::EPSILON {
                let t = (target - e0) / (e1 - e0);
                let lw = lw0 + t * (lw1 - lw0);
                out.push(ContourPoint { p, w: lw.exp() });
                break;
            }
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn grid(es: &[(usize, &[(u64, f64)])]) -> Vec<Sample> {
        let mut v = Vec::new();
        for &(p, pts) in es {
            for &(w, e) in pts {
                v.push(Sample { p, w, e });
            }
        }
        v
    }

    #[test]
    fn interpolates_between_brackets() {
        let samples = grid(&[(64, &[(1_000, 0.40), (10_000, 0.60)])]);
        let c = extract_contour(&samples, 0.50);
        assert_eq!(c.len(), 1);
        assert_eq!(c[0].p, 64);
        // Midway in E ⇒ midway in ln W ⇒ geometric mean of the W's.
        let expect = (1_000f64 * 10_000f64).sqrt();
        assert!((c[0].w - expect).abs() / expect < 1e-9);
    }

    #[test]
    fn exact_hits_are_returned() {
        let samples = grid(&[(16, &[(500, 0.30), (5_000, 0.70)])]);
        let c = extract_contour(&samples, 0.70);
        assert_eq!(c.len(), 1);
        assert!((c[0].w - 5_000.0).abs() < 1e-6);
    }

    #[test]
    fn unreachable_targets_are_skipped() {
        let samples =
            grid(&[(16, &[(500, 0.30), (5_000, 0.50)]), (64, &[(500, 0.20), (5_000, 0.80)])]);
        let c = extract_contour(&samples, 0.75);
        assert_eq!(c.len(), 1, "only P=64 brackets 0.75");
        assert_eq!(c[0].p, 64);
    }

    #[test]
    fn contour_w_grows_with_p_for_iso_like_data() {
        // Synthesize E = W / (W + p·lg p·c): the GP model shape.
        let mut samples = Vec::new();
        for &p in &[64usize, 256, 1024, 4096] {
            for &w in &[10_000u64, 100_000, 1_000_000, 10_000_000] {
                let c = 40.0;
                let e = w as f64 / (w as f64 + (p as f64) * (p as f64).log2() * c);
                samples.push(Sample { p, w, e });
            }
        }
        let contour = extract_contour(&samples, 0.6);
        assert!(contour.len() >= 3);
        for pair in contour.windows(2) {
            assert!(pair[1].w > pair[0].w, "isoefficiency curves rise with P");
        }
        // And W/(P lg P) should be roughly constant (the model is exactly
        // linear in P lg P).
        let ratios: Vec<f64> =
            contour.iter().map(|c| c.w / (c.p as f64 * (c.p as f64).log2())).collect();
        let (min, max) =
            ratios.iter().fold((f64::MAX, f64::MIN), |(lo, hi), &r| (lo.min(r), hi.max(r)));
        // The log-space interpolation over a ×10 W grid introduces a few
        // percent of error against the exact hyperbolic E(W); 25% headroom.
        assert!(max / min < 1.25, "ratios {ratios:?}");
    }

    #[test]
    fn empty_input_gives_empty_contour() {
        assert!(extract_contour(&[], 0.5).is_empty());
    }
}
