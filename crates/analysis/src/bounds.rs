//! `V(P)` — the number of balancing phases needed before every busy
//! processor has shared its work at least once (Sec. 4, Appendices A & B) —
//! and the resulting bound on total work transfers.

/// `V(P)` for GP-S^x: with the global pointer the `(1-x)P` receivers are
/// fed by a *different* block of donors each phase, so `V(P) = ceil(1/(1-x))`
/// (Sec. 4.1).
///
/// # Panics
/// Panics unless `0 <= x < 1`.
pub fn v_gp(x: f64) -> f64 {
    assert!((0.0..1.0).contains(&x), "x must be in [0,1)");
    // The tiny epsilon keeps 1/(1-x) values that are integers up to float
    // round-off (e.g. x = 0.9 → 10.000000000000002) from ceiling one high.
    (1.0 / (1.0 - x) - 1e-9).ceil()
}

/// Upper bound on `V(P)` for nGP-S^x (Appendix B): `1` for `x <= 0.5`,
/// otherwise `(log_{1/(1-α)} W)^{(2x-1)/(1-x)}`.
///
/// `log_alpha_w` is the per-split log factor `log_{1/(1-α)} W` (use
/// [`crate::trigger::TriggerParams::log_alpha_w`]).
pub fn v_ngp(x: f64, log_alpha_w: f64) -> f64 {
    assert!((0.0..1.0).contains(&x), "x must be in [0,1)");
    if x <= 0.5 {
        1.0
    } else {
        log_alpha_w.powf((2.0 * x - 1.0) / (1.0 - x))
    }
}

/// Appendix A: total work transfers are at most `V(P) · log_{1/(1-α)} W`.
pub fn total_transfer_bound(v_p: f64, log_alpha_w: f64) -> f64 {
    v_p * log_alpha_w
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn gp_bound_is_small_and_grows_with_x() {
        assert_eq!(v_gp(0.5), 2.0);
        assert_eq!(v_gp(0.8), 5.0);
        assert_eq!(v_gp(0.9), 10.0);
        // Paper Sec. 4.2: raising x from 0.80 to 0.90 doubles GP's bound...
        assert_eq!(v_gp(0.9) / v_gp(0.8), 2.0);
    }

    #[test]
    fn ngp_bound_explodes_with_x() {
        let lw = (1_000_000f64).ln(); // ≈ 13.8
        assert_eq!(v_ngp(0.5, lw), 1.0);
        // ...while nGP's grows by log^5 W over the same step (Sec. 4.2).
        let at80 = v_ngp(0.8, lw);
        let at90 = v_ngp(0.9, lw);
        let ratio = at90 / at80;
        let log5 = lw.powi(5);
        assert!((ratio / log5 - 1.0).abs() < 1e-9, "ratio {ratio} vs log^5 W {log5}");
    }

    #[test]
    fn ngp_equals_gp_at_half() {
        // At x = 0.5 both schemes need every busy PE to donate once.
        let lw = 20.0;
        assert_eq!(v_ngp(0.5, lw), 1.0);
        assert_eq!(v_ngp(0.3, lw), 1.0);
    }

    #[test]
    fn exponent_matches_formula() {
        let lw = 10.0f64;
        // x = 0.75: exponent (1.5-1)/0.25 = 2.
        assert!((v_ngp(0.75, lw) - 100.0).abs() < 1e-9);
        // x = 2/3: exponent (4/3-1)/(1/3) = 1.
        assert!((v_ngp(2.0 / 3.0, lw) - 10.0).abs() < 1e-6);
    }

    #[test]
    fn transfer_bound_scales_linearly() {
        assert_eq!(total_transfer_bound(5.0, 14.0), 70.0);
    }

    #[test]
    #[should_panic(expected = "x must be in")]
    fn x_of_one_rejected() {
        let _ = v_gp(1.0);
    }
}
