//! Minimal CSV serialization for the harness outputs (samples, contours,
//! traces), so results can be re-plotted outside Rust. Hand-rolled — the
//! data is numeric and the only quoting concern is commas in labels.

use std::fmt::Write as _;

use uts_machine::{Ledger, TriggerKind};

use crate::contour::{ContourPoint, Sample};

/// Quote a field if it contains a comma, quote, or newline.
pub fn escape_field(field: &str) -> String {
    if field.contains([',', '"', '\n']) {
        format!("\"{}\"", field.replace('"', "\"\""))
    } else {
        field.to_string()
    }
}

/// Render rows (with a header) as CSV text.
///
/// # Panics
/// Panics if any row's width differs from the header's.
pub fn to_csv(header: &[&str], rows: &[Vec<String>]) -> String {
    let mut out = String::new();
    writeln!(out, "{}", header.iter().map(|h| escape_field(h)).collect::<Vec<_>>().join(","))
        .expect("writing to a String cannot fail");
    for row in rows {
        assert_eq!(row.len(), header.len(), "CSV row width must match header");
        writeln!(out, "{}", row.iter().map(|f| escape_field(f)).collect::<Vec<_>>().join(","))
            .expect("writing to a String cannot fail");
    }
    out
}

/// CSV for a (P, W, E) sample grid.
pub fn samples_csv(samples: &[Sample]) -> String {
    let rows: Vec<Vec<String>> = samples
        .iter()
        .map(|s| vec![s.p.to_string(), s.w.to_string(), format!("{:.6}", s.e)])
        .collect();
    to_csv(&["p", "w", "efficiency"], &rows)
}

/// CSV for an equal-efficiency contour.
pub fn contour_csv(e: f64, points: &[ContourPoint]) -> String {
    let rows: Vec<Vec<String>> = points
        .iter()
        .map(|c| {
            vec![
                format!("{e:.2}"),
                c.p.to_string(),
                format!("{:.1}", c.p as f64 * (c.p as f64).log2()),
                format!("{:.0}", c.w),
            ]
        })
        .collect();
    to_csv(&["efficiency", "p", "p_log2_p", "w"], &rows)
}

/// CSV for an active-processor trace (`A(t)` per cycle). Takes any
/// per-cycle iterator so both plain slices and the machine's run-length
/// encoded trace (via its `iter()`) can be rendered without materializing
/// a `Vec`.
pub fn trace_csv<I: IntoIterator<Item = u32>>(trace: I) -> String {
    let rows: Vec<Vec<String>> =
        trace.into_iter().enumerate().map(|(i, a)| vec![i.to_string(), a.to_string()]).collect();
    to_csv(&["cycle", "active"], &rows)
}

/// CSV of a ledger's per-PE donation and receipt counts — the raw data
/// behind the donor histograms (GP's "spread the burden" claim, Sec. 2.2).
pub fn ledger_pes_csv(ledger: &Ledger) -> String {
    let rows: Vec<Vec<String>> = ledger
        .donations
        .iter()
        .zip(&ledger.receipts)
        .enumerate()
        .map(|(pe, (&d, &r))| vec![pe.to_string(), d.to_string(), r.to_string()])
        .collect();
    to_csv(&["pe", "donations", "receipts"], &rows)
}

/// Stable text label for a trigger kind in CSV cells.
fn trigger_field(kind: TriggerKind) -> String {
    match kind {
        TriggerKind::Init => "init".to_string(),
        TriggerKind::Static { threshold } => format!("static<={threshold}"),
        TriggerKind::Dp => "dp".to_string(),
        TriggerKind::Dk => "dk".to_string(),
        TriggerKind::AnyIdle => "any_idle".to_string(),
    }
}

/// CSV of a ledger's per-phase provenance records: one row per balancing
/// phase with the trigger operands at the firing cycle, the proved event
/// horizon, and the exact setup/transfer/multiplier cost attribution.
pub fn ledger_phases_csv(ledger: &Ledger) -> String {
    let rows: Vec<Vec<String>> = ledger
        .phases
        .iter()
        .map(|ph| {
            vec![
                ph.at_cycle.to_string(),
                trigger_field(ph.firing.kind),
                ph.firing.busy.to_string(),
                ph.firing.idle.to_string(),
                ph.firing.w.to_string(),
                ph.firing.t.to_string(),
                ph.firing.w_idle.to_string(),
                ph.firing.l_estimate.to_string(),
                ph.horizon.to_string(),
                ph.rounds.to_string(),
                ph.transfers.to_string(),
                ph.cost.setup.to_string(),
                ph.cost.transfer.to_string(),
                ph.cost.multiplier.to_string(),
                ph.cost.total.to_string(),
            ]
        })
        .collect();
    to_csv(
        &[
            "at_cycle",
            "trigger",
            "busy",
            "idle",
            "w_us",
            "t_us",
            "w_idle_us",
            "l_estimate_us",
            "horizon",
            "rounds",
            "transfers",
            "cost_setup_us",
            "cost_transfer_us",
            "cost_multiplier",
            "cost_total_us",
        ],
        &rows,
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn plain_fields_pass_through() {
        assert_eq!(escape_field("123"), "123");
        assert_eq!(escape_field("GP-S^0.9"), "GP-S^0.9");
    }

    #[test]
    fn commas_and_quotes_are_escaped() {
        assert_eq!(escape_field("a,b"), "\"a,b\"");
        assert_eq!(escape_field("say \"hi\""), "\"say \"\"hi\"\"\"");
    }

    #[test]
    fn to_csv_renders_header_and_rows() {
        let csv = to_csv(&["a", "b"], &[vec!["1".into(), "2".into()]]);
        assert_eq!(csv, "a,b\n1,2\n");
    }

    #[test]
    #[should_panic(expected = "row width")]
    fn ragged_rows_rejected() {
        let _ = to_csv(&["a", "b"], &[vec!["1".into()]]);
    }

    #[test]
    fn samples_round_trip_textually() {
        let csv = samples_csv(&[Sample { p: 64, w: 1000, e: 0.5 }]);
        assert!(csv.starts_with("p,w,efficiency\n"));
        assert!(csv.contains("64,1000,0.500000"));
    }

    #[test]
    fn trace_csv_indexes_cycles() {
        let csv = trace_csv([8, 6, 3]);
        let lines: Vec<&str> = csv.lines().collect();
        assert_eq!(lines, vec!["cycle,active", "0,8", "1,6", "2,3"]);
    }

    #[test]
    fn contour_csv_has_plogp_column() {
        let csv = contour_csv(0.65, &[ContourPoint { p: 1024, w: 72964.0 }]);
        assert!(csv.contains("0.65,1024,10240.0,72964"));
    }

    #[test]
    fn ledger_pes_csv_pairs_donations_with_receipts() {
        let mut ledger = Ledger::new(3);
        ledger.donations = vec![2, 0, 1];
        ledger.receipts = vec![0, 3, 0];
        let csv = ledger_pes_csv(&ledger);
        let lines: Vec<&str> = csv.lines().map(str::trim_end).collect();
        assert_eq!(lines, vec!["pe,donations,receipts", "0,2,0", "1,0,3", "2,1,0"]);
    }

    #[test]
    fn ledger_phases_csv_renders_provenance() {
        use uts_machine::{LbCostBreakdown, LbPhaseRecord, TriggerFiring};
        let mut ledger = Ledger::new(2);
        ledger.phases.push(LbPhaseRecord {
            at_cycle: 7,
            firing: TriggerFiring {
                kind: TriggerKind::Static { threshold: 48 },
                busy: 40,
                idle: 20,
                w: 100,
                t: 140,
                w_idle: 40,
                l_estimate: 2000,
            },
            horizon: 3,
            rounds: 1,
            transfers: 20,
            cost: LbCostBreakdown { setup: 500, transfer: 1500, multiplier: 1, total: 2000 },
        });
        let csv = ledger_phases_csv(&ledger);
        assert!(csv.starts_with("at_cycle,trigger,busy,idle,"));
        assert!(csv.contains("7,static<=48,40,20,100,140,40,2000,3,1,20,500,1500,1,2000"));
    }
}
