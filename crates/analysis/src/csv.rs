//! Minimal CSV serialization for the harness outputs (samples, contours,
//! traces), so results can be re-plotted outside Rust. Hand-rolled — the
//! data is numeric and the only quoting concern is commas in labels.

use std::fmt::Write as _;

use crate::contour::{ContourPoint, Sample};

/// Quote a field if it contains a comma, quote, or newline.
pub fn escape_field(field: &str) -> String {
    if field.contains([',', '"', '\n']) {
        format!("\"{}\"", field.replace('"', "\"\""))
    } else {
        field.to_string()
    }
}

/// Render rows (with a header) as CSV text.
///
/// # Panics
/// Panics if any row's width differs from the header's.
pub fn to_csv(header: &[&str], rows: &[Vec<String>]) -> String {
    let mut out = String::new();
    writeln!(out, "{}", header.iter().map(|h| escape_field(h)).collect::<Vec<_>>().join(","))
        .expect("writing to a String cannot fail");
    for row in rows {
        assert_eq!(row.len(), header.len(), "CSV row width must match header");
        writeln!(out, "{}", row.iter().map(|f| escape_field(f)).collect::<Vec<_>>().join(","))
            .expect("writing to a String cannot fail");
    }
    out
}

/// CSV for a (P, W, E) sample grid.
pub fn samples_csv(samples: &[Sample]) -> String {
    let rows: Vec<Vec<String>> = samples
        .iter()
        .map(|s| vec![s.p.to_string(), s.w.to_string(), format!("{:.6}", s.e)])
        .collect();
    to_csv(&["p", "w", "efficiency"], &rows)
}

/// CSV for an equal-efficiency contour.
pub fn contour_csv(e: f64, points: &[ContourPoint]) -> String {
    let rows: Vec<Vec<String>> = points
        .iter()
        .map(|c| {
            vec![
                format!("{e:.2}"),
                c.p.to_string(),
                format!("{:.1}", c.p as f64 * (c.p as f64).log2()),
                format!("{:.0}", c.w),
            ]
        })
        .collect();
    to_csv(&["efficiency", "p", "p_log2_p", "w"], &rows)
}

/// CSV for an active-processor trace (`A(t)` per cycle). Takes any
/// per-cycle iterator so both plain slices and the machine's run-length
/// encoded trace (via its `iter()`) can be rendered without materializing
/// a `Vec`.
pub fn trace_csv<I: IntoIterator<Item = u32>>(trace: I) -> String {
    let rows: Vec<Vec<String>> =
        trace.into_iter().enumerate().map(|(i, a)| vec![i.to_string(), a.to_string()]).collect();
    to_csv(&["cycle", "active"], &rows)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn plain_fields_pass_through() {
        assert_eq!(escape_field("123"), "123");
        assert_eq!(escape_field("GP-S^0.9"), "GP-S^0.9");
    }

    #[test]
    fn commas_and_quotes_are_escaped() {
        assert_eq!(escape_field("a,b"), "\"a,b\"");
        assert_eq!(escape_field("say \"hi\""), "\"say \"\"hi\"\"\"");
    }

    #[test]
    fn to_csv_renders_header_and_rows() {
        let csv = to_csv(&["a", "b"], &[vec!["1".into(), "2".into()]]);
        assert_eq!(csv, "a,b\n1,2\n");
    }

    #[test]
    #[should_panic(expected = "row width")]
    fn ragged_rows_rejected() {
        let _ = to_csv(&["a", "b"], &[vec!["1".into()]]);
    }

    #[test]
    fn samples_round_trip_textually() {
        let csv = samples_csv(&[Sample { p: 64, w: 1000, e: 0.5 }]);
        assert!(csv.starts_with("p,w,efficiency\n"));
        assert!(csv.contains("64,1000,0.500000"));
    }

    #[test]
    fn trace_csv_indexes_cycles() {
        let csv = trace_csv([8, 6, 3]);
        let lines: Vec<&str> = csv.lines().collect();
        assert_eq!(lines, vec!["cycle,active", "0,8", "1,6", "2,3"]);
    }

    #[test]
    fn contour_csv_has_plogp_column() {
        let csv = contour_csv(0.65, &[ContourPoint { p: 1024, w: 72964.0 }]);
        assert!(csv.contains("0.65,1024,10240.0,72964"));
    }
}
