//! Fits that quantify how close a measured contour is to the analytic
//! isoefficiency shape.
//!
//! Two fits are provided:
//!
//! * [`fit_through_origin`]: least-squares `y = a·x` — used with
//!   `x = P log2 P` to check Fig. 4a-style linearity (a high R² means the
//!   contour *is* `O(P log P)`);
//! * [`fit_power_law`]: log-log regression `y = a·x^b` — the exponent `b`
//!   against `x = P log2 P` exposes super-linear growth (nGP at high x).

use serde::{Deserialize, Serialize};

/// Result of a power-law fit `y = a · x^b`.
#[derive(Debug, Clone, Copy, Serialize, Deserialize)]
pub struct PowerLawFit {
    /// Scale factor `a`.
    pub a: f64,
    /// Exponent `b`.
    pub b: f64,
    /// Coefficient of determination in log-log space.
    pub r2: f64,
}

/// Least-squares slope of `y = a·x` through the origin, with R² computed
/// against the mean-free total sum of squares. Returns `(a, r2)`.
///
/// # Panics
/// Panics if fewer than 2 points are supplied.
pub fn fit_through_origin(points: &[(f64, f64)]) -> (f64, f64) {
    assert!(points.len() >= 2, "need at least two points to fit");
    let sxy: f64 = points.iter().map(|(x, y)| x * y).sum();
    let sxx: f64 = points.iter().map(|(x, _)| x * x).sum();
    let a = sxy / sxx;
    let mean_y: f64 = points.iter().map(|(_, y)| y).sum::<f64>() / points.len() as f64;
    let ss_tot: f64 = points.iter().map(|(_, y)| (y - mean_y).powi(2)).sum();
    let ss_res: f64 = points.iter().map(|(x, y)| (y - a * x).powi(2)).sum();
    let r2 = if ss_tot == 0.0 { 1.0 } else { 1.0 - ss_res / ss_tot };
    (a, r2)
}

/// Log-log linear regression for `y = a·x^b`.
///
/// # Panics
/// Panics if fewer than 2 points are supplied, or any coordinate is
/// non-positive (logs would be undefined).
pub fn fit_power_law(points: &[(f64, f64)]) -> PowerLawFit {
    assert!(points.len() >= 2, "need at least two points to fit");
    let logs: Vec<(f64, f64)> = points
        .iter()
        .map(|&(x, y)| {
            assert!(x > 0.0 && y > 0.0, "power-law fit needs positive data");
            (x.ln(), y.ln())
        })
        .collect();
    let n = logs.len() as f64;
    let sx: f64 = logs.iter().map(|(x, _)| x).sum();
    let sy: f64 = logs.iter().map(|(_, y)| y).sum();
    let sxx: f64 = logs.iter().map(|(x, _)| x * x).sum();
    let sxy: f64 = logs.iter().map(|(x, y)| x * y).sum();
    let denom = n * sxx - sx * sx;
    let b = if denom.abs() < f64::EPSILON { 0.0 } else { (n * sxy - sx * sy) / denom };
    let ln_a = (sy - b * sx) / n;
    let mean_y = sy / n;
    let ss_tot: f64 = logs.iter().map(|(_, y)| (y - mean_y).powi(2)).sum();
    let ss_res: f64 = logs.iter().map(|(x, y)| (y - (ln_a + b * x)).powi(2)).sum();
    let r2 = if ss_tot == 0.0 { 1.0 } else { 1.0 - ss_res / ss_tot };
    PowerLawFit { a: ln_a.exp(), b, r2 }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn origin_fit_recovers_exact_slope() {
        let pts: Vec<(f64, f64)> = (1..10).map(|i| (i as f64, 3.5 * i as f64)).collect();
        let (a, r2) = fit_through_origin(&pts);
        assert!((a - 3.5).abs() < 1e-12);
        assert!((r2 - 1.0).abs() < 1e-12);
    }

    #[test]
    fn origin_fit_flags_nonlinear_data() {
        let pts: Vec<(f64, f64)> = (1..10).map(|i| (i as f64, (i * i) as f64)).collect();
        let (_, r2) = fit_through_origin(&pts);
        assert!(r2 < 0.95, "quadratic data must not look linear, r2={r2}");
    }

    #[test]
    fn power_law_recovers_exponent() {
        let pts: Vec<(f64, f64)> =
            (1..20).map(|i| (i as f64, 2.0 * (i as f64).powf(1.7))).collect();
        let fit = fit_power_law(&pts);
        assert!((fit.b - 1.7).abs() < 1e-9);
        assert!((fit.a - 2.0).abs() < 1e-9);
        assert!((fit.r2 - 1.0).abs() < 1e-12);
    }

    #[test]
    fn power_law_linear_data_has_unit_exponent() {
        let pts: Vec<(f64, f64)> = (1..20).map(|i| (i as f64, 5.0 * i as f64)).collect();
        let fit = fit_power_law(&pts);
        assert!((fit.b - 1.0).abs() < 1e-9);
    }

    #[test]
    #[should_panic(expected = "at least two")]
    fn single_point_rejected() {
        let _ = fit_through_origin(&[(1.0, 1.0)]);
    }

    #[test]
    #[should_panic(expected = "positive data")]
    fn nonpositive_rejected_for_power_law() {
        let _ = fit_power_law(&[(1.0, 1.0), (0.0, 2.0)]);
    }
}
