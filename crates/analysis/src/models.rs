//! Closed-form efficiency models (eqs. 12 and 15) and the isoefficiency
//! table (Table 6).
//!
//! With δ = 0 (processors drop to the threshold immediately after each
//! balance), eq. 12 (GP-S^x) reads
//!
//! ```text
//! E = 1 / ( 1/x + (P / ((1-x) W)) · log_{1/(1-α)} W · t_lb/U_calc )
//! ```
//!
//! and eq. 15 (nGP-S^x) replaces `1/(1-x)` by the nGP `V(P)` bound.

use serde::{Deserialize, Serialize};

use crate::bounds::{v_gp, v_ngp};

/// Model efficiency for GP-S^x (eq. 12 with δ = 0).
pub fn gp_efficiency(w: f64, p: f64, x: f64, lb_ratio: f64, log_alpha_w: f64) -> f64 {
    let overhead = (p / w) * v_gp(x) * log_alpha_w * lb_ratio;
    1.0 / (1.0 / x + overhead)
}

/// Model efficiency for nGP-S^x (eq. 15 with δ = 0, using the Appendix B
/// upper bound for `V(P)` — hence a *lower* bound on E).
pub fn ngp_efficiency(w: f64, p: f64, x: f64, lb_ratio: f64, log_alpha_w: f64) -> f64 {
    let overhead = (p / w) * v_ngp(x, log_alpha_w) * log_alpha_w * lb_ratio;
    1.0 / (1.0 / x + overhead)
}

/// One row of the paper's Table 6: the isoefficiency of a scheme on an
/// architecture, as a human-readable formula and a numeric evaluator.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct IsoeffRow {
    /// Scheme name.
    pub scheme: &'static str,
    /// Architecture.
    pub architecture: &'static str,
    /// The asymptotic isoefficiency formula (the paper's notation).
    pub formula: &'static str,
}

impl IsoeffRow {
    /// Evaluate the formula's growth function at `p` with `x` (nGP rows
    /// depend on the threshold; GP rows ignore it). Constants are dropped —
    /// use ratios across `p` values.
    pub fn growth(&self, p: f64, x: f64) -> f64 {
        let lg = p.log2().max(1.0);
        match (self.scheme, self.architecture) {
            ("GP-S^x", "CM-2") => p * lg,
            ("nGP-S^x", "CM-2") => p * lg.powf(x / (1.0 - x)),
            ("GP-S^x", "Hypercube") => p * lg.powi(3),
            ("nGP-S^x", "Hypercube") => p * lg.powf(2.0 + x / (1.0 - x)),
            ("GP-S^x", "Mesh") => p.powf(1.5) * lg,
            ("nGP-S^x", "Mesh") => p.powf(1.5) * lg.powf(x / (1.0 - x)),
            _ => unreachable!("unknown row"),
        }
    }
}

/// The paper's Table 6 (plus the CM-2 rows implied by `t_lb = O(1)`,
/// eqs. 13 & 16).
pub fn isoeff_table() -> Vec<IsoeffRow> {
    vec![
        IsoeffRow { scheme: "GP-S^x", architecture: "CM-2", formula: "O(P log P)" },
        IsoeffRow { scheme: "nGP-S^x", architecture: "CM-2", formula: "O(P log^{x/(1-x)} P)" },
        IsoeffRow { scheme: "GP-S^x", architecture: "Hypercube", formula: "O(P log^3 P)" },
        IsoeffRow {
            scheme: "nGP-S^x",
            architecture: "Hypercube",
            formula: "O(P log^{2 + x/(1-x)} P)",
        },
        IsoeffRow { scheme: "GP-S^x", architecture: "Mesh", formula: "O(P^1.5 log P)" },
        IsoeffRow { scheme: "nGP-S^x", architecture: "Mesh", formula: "O(P^1.5 log^{x/(1-x)} P)" },
    ]
}

/// The paper's bound on DK overheads (Sec. 6.2): total DK overhead is at
/// most twice that of the optimal static trigger. Returns the measured
/// overhead ratio `(T_idle + T_lb)_DK / (T_idle + T_lb)_Sxo`.
pub fn dk_overhead_ratio(dk_t_idle: u64, dk_t_lb: u64, sxo_t_idle: u64, sxo_t_lb: u64) -> f64 {
    let num = (dk_t_idle + dk_t_lb) as f64;
    let den = (sxo_t_idle + sxo_t_lb) as f64;
    if den == 0.0 {
        if num == 0.0 {
            1.0
        } else {
            f64::INFINITY
        }
    } else {
        num / den
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const LW: f64 = 13.8; // ln(1e6)

    #[test]
    fn gp_model_efficiency_bounded_by_x() {
        // Eq. 9: E <= x + δ; with δ = 0 the model never exceeds x.
        for x in [0.5, 0.7, 0.9] {
            let e = gp_efficiency(1e9, 8.0, x, 0.43, LW);
            assert!(e <= x + 1e-9, "x={x} e={e}");
            // And approaches x as W → ∞.
            assert!(e > x - 0.01);
        }
    }

    #[test]
    fn gp_beats_ngp_at_high_x_in_the_model() {
        for x in [0.7, 0.8, 0.9] {
            let gp = gp_efficiency(1e6, 8192.0, x, 0.43, LW);
            let ngp = ngp_efficiency(1e6, 8192.0, x, 0.43, LW);
            assert!(gp >= ngp, "x={x}: gp={gp} ngp={ngp}");
        }
    }

    #[test]
    fn models_coincide_at_half() {
        // v_gp(0.5) = 2 vs v_ngp = 1: GP's worst case is a factor 2, so the
        // models differ by at most that overhead term; at W >> P they agree.
        let gp = gp_efficiency(1e9, 8.0, 0.5, 0.43, LW);
        let ngp = ngp_efficiency(1e9, 8.0, 0.5, 0.43, LW);
        assert!((gp - ngp).abs() < 1e-3);
    }

    #[test]
    fn efficiency_rises_with_w_falls_with_p() {
        let e_small = gp_efficiency(1e5, 8192.0, 0.8, 0.43, (1e5f64).ln());
        let e_big = gp_efficiency(1e7, 8192.0, 0.8, 0.43, (1e7f64).ln());
        assert!(e_big > e_small);
        let e_few = gp_efficiency(1e6, 1024.0, 0.8, 0.43, LW);
        let e_many = gp_efficiency(1e6, 65536.0, 0.8, 0.43, LW);
        assert!(e_few > e_many);
    }

    #[test]
    fn table6_has_all_rows_and_sane_growth() {
        let t = isoeff_table();
        assert_eq!(t.len(), 6);
        for row in &t {
            // Growth functions are increasing in P.
            let g1 = row.growth(1024.0, 0.8);
            let g2 = row.growth(8192.0, 0.8);
            assert!(g2 > g1, "{} on {}", row.scheme, row.architecture);
        }
    }

    #[test]
    fn ngp_growth_worsens_with_x() {
        let row = &isoeff_table()[1]; // nGP on CM-2
        let slack_low = row.growth(8192.0, 0.7) / row.growth(1024.0, 0.7);
        let slack_high = row.growth(8192.0, 0.9) / row.growth(1024.0, 0.9);
        assert!(slack_high > slack_low);
    }

    #[test]
    fn dk_ratio_basics() {
        assert_eq!(dk_overhead_ratio(10, 10, 10, 10), 1.0);
        assert_eq!(dk_overhead_ratio(30, 10, 10, 10), 2.0);
        assert_eq!(dk_overhead_ratio(0, 0, 0, 0), 1.0);
        assert!(dk_overhead_ratio(1, 0, 0, 0).is_infinite());
    }
}
