//! The optimal static trigger `x_o` (eq. 18):
//!
//! ```text
//!            1
//! x_o = ---------------------------------------
//!       sqrt( (P/W) · log_{1/(1-α)} W · t_lb/U_calc ) + 1
//! ```
//!
//! obtained by minimizing `1/x + (P/((1-x)W)) · log W · t_lb/U_calc` over
//! `x` (the δ = 0 efficiency of eq. 17).

use serde::{Deserialize, Serialize};

/// The α we use when reducing `log_{1/(1-α)} W` to a computable number:
/// `1 - 1/e`, which makes the factor exactly `ln W`. Calibration against
/// the paper's Table 2 `x_o` column shows this choice reproduces their
/// numbers to within ±0.01 at the CM-2 cost ratio (the paper itself says
/// "the equation is not too sensitive on α and any reasonable
/// approximation should be acceptable", Sec. 4.3).
pub const DEFAULT_ALPHA: f64 = 1.0 - std::f64::consts::E.recip();

/// Inputs to the optimal-trigger formula.
#[derive(Debug, Clone, Copy, Serialize, Deserialize)]
pub struct TriggerParams {
    /// Problem size `W` (serial node count).
    pub w: f64,
    /// Processors `P`.
    pub p: f64,
    /// Cost ratio `t_lb / U_calc`.
    pub lb_ratio: f64,
    /// Splitting quality `α` (see [`DEFAULT_ALPHA`]).
    pub alpha: f64,
}

impl TriggerParams {
    /// Convenience constructor with the default α.
    pub fn new(w: u64, p: usize, lb_ratio: f64) -> Self {
        Self { w: w as f64, p: p as f64, lb_ratio, alpha: DEFAULT_ALPHA }
    }

    /// `log_{1/(1-α)} W = ln W / ln(1/(1-α))`.
    pub fn log_alpha_w(&self) -> f64 {
        self.w.ln() / (1.0 / (1.0 - self.alpha)).ln()
    }
}

/// Compute `x_o` per eq. 18. Returns a value in `(0, 1]`.
///
/// # Panics
/// Panics on non-positive `w`, `p` or `lb_ratio`, or `alpha` outside (0,1).
pub fn optimal_static_trigger(params: &TriggerParams) -> f64 {
    assert!(params.w > 1.0, "W must exceed 1");
    assert!(params.p >= 1.0, "P must be at least 1");
    assert!(params.lb_ratio > 0.0, "t_lb/U_calc must be positive");
    assert!(params.alpha > 0.0 && params.alpha < 1.0, "alpha must be in (0,1)");
    let inner = (params.p / params.w) * params.log_alpha_w() * params.lb_ratio;
    1.0 / (inner.sqrt() + 1.0)
}

#[cfg(test)]
mod tests {
    use super::*;

    /// The paper's Table 2 `x_o` column: W ∈ {941852, 3055171, 6073623,
    /// 16110463}, P = 8192, t_lb/U_calc ≈ 13/30 → x_o ≈ {0.82, 0.89,
    /// 0.92, 0.95}. Our α = 1 − 1/e reproduces them within ±0.012.
    #[test]
    fn reproduces_table2_xo_column() {
        let cases = [(941_852u64, 0.82), (3_055_171, 0.89), (6_073_623, 0.92), (16_110_463, 0.95)];
        for (w, expect) in cases {
            let xo = optimal_static_trigger(&TriggerParams::new(w, 8192, 13.0 / 30.0));
            assert!((xo - expect).abs() < 0.012, "W={w}: x_o={xo:.3} vs paper {expect}");
        }
    }

    #[test]
    fn xo_increases_with_w() {
        let xs: Vec<f64> = [1e5, 1e6, 1e7, 1e8]
            .iter()
            .map(|&w| {
                optimal_static_trigger(&TriggerParams {
                    w,
                    p: 8192.0,
                    lb_ratio: 0.43,
                    alpha: DEFAULT_ALPHA,
                })
            })
            .collect();
        assert!(xs.windows(2).all(|a| a[1] > a[0]), "{xs:?}");
    }

    #[test]
    fn xo_decreases_with_p() {
        let a = optimal_static_trigger(&TriggerParams::new(1_000_000, 1024, 0.43));
        let b = optimal_static_trigger(&TriggerParams::new(1_000_000, 8192, 0.43));
        assert!(b < a);
    }

    #[test]
    fn xo_decreases_with_lb_cost() {
        let cheap = optimal_static_trigger(&TriggerParams::new(1_000_000, 8192, 0.43));
        let dear = optimal_static_trigger(&TriggerParams::new(1_000_000, 8192, 16.0 * 0.43));
        assert!(dear < cheap);
    }

    #[test]
    fn xo_decreases_as_alpha_worsens() {
        // Smaller α (worse splits) → bigger log factor → smaller x_o.
        let good = optimal_static_trigger(&TriggerParams {
            w: 1e6,
            p: 8192.0,
            lb_ratio: 0.43,
            alpha: 0.5,
        });
        let bad = optimal_static_trigger(&TriggerParams {
            w: 1e6,
            p: 8192.0,
            lb_ratio: 0.43,
            alpha: 0.05,
        });
        assert!(bad < good);
    }

    #[test]
    fn xo_is_a_probability() {
        for w in [100u64, 10_000, 100_000_000] {
            for p in [2usize, 64, 65536] {
                for r in [0.01, 1.0, 100.0] {
                    let xo = optimal_static_trigger(&TriggerParams::new(w, p, r));
                    assert!(xo > 0.0 && xo <= 1.0);
                }
            }
        }
    }

    #[test]
    fn default_alpha_makes_log_factor_ln_w() {
        let p = TriggerParams::new(1_000_000, 8, 0.4);
        assert!((p.log_alpha_w() - (1_000_000f64).ln()).abs() < 1e-9);
    }
}
