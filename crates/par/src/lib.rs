//! Real multicore depth-first search over [`uts_tree::TreeProblem`].
//!
//! The rest of the workspace *simulates* 1992 machines; this crate is the
//! present-day counterpart: actually-parallel exhaustive tree search on
//! the host, with the same anomaly-free semantics (every node expanded
//! exactly once, goal counts identical to serial DFS regardless of thread
//! count or schedule).
//!
//! Two executors:
//!
//! * [`rayon_dfs`] — structured fork-join: subtrees above a depth cutoff
//!   become rayon tasks, deeper subtrees run serially. Zero unsafe, zero
//!   shared state; granularity is controlled by the cutoff.
//! * [`deque_dfs`] — an explicit work-stealing pool (crossbeam deques +
//!   scoped threads): each worker owns a deque of frontier nodes, steals
//!   when empty, and the pool terminates when the global outstanding-node
//!   count reaches zero. This is the receiver-initiated MIMD scheme of
//!   the paper's Sec. 9 comparison, for real.

pub mod deque;
pub mod fork_join;

pub use deque::{deque_dfs, DequeStats};
pub use fork_join::{rayon_dfs, ParStats};
