//! An explicit work-stealing pool: crossbeam deques, scoped threads, and a
//! global outstanding-node counter for termination.
//!
//! Each worker owns a LIFO [`Worker`] deque (depth-first locally, which
//! keeps memory bounded like a DFS stack); when empty it steals from the
//! global injector or a sibling (FIFO steals take victims' *shallowest*
//! frontier nodes — the biggest subtrees, i.e. the same intuition as the
//! paper's donate-the-stack-bottom alpha-splitting). Termination: an
//! atomic count of nodes that have been pushed but not yet expanded; when
//! it reaches zero no work exists or can appear, and all workers exit.
//!
//! [`Worker`]: crossbeam::deque::Worker

use std::sync::atomic::{AtomicU64, Ordering};

use crossbeam::deque::{Injector, Steal, Stealer, Worker};
use uts_tree::TreeProblem;

/// Counters from a pool run.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct DequeStats {
    /// Nodes expanded (equals serial `W`).
    pub expanded: u64,
    /// Goal nodes found.
    pub goals: u64,
    /// Successful steals across all workers.
    pub steals: u64,
    /// Per-worker expansion counts (load distribution diagnostics).
    pub per_worker: Vec<u64>,
}

/// Exhaustively search `problem` on `threads` workers.
///
/// # Panics
/// Panics if `threads == 0`.
pub fn deque_dfs<P: TreeProblem>(problem: &P, threads: usize) -> DequeStats {
    assert!(threads > 0, "need at least one worker");
    let injector: Injector<P::Node> = Injector::new();
    // `outstanding` counts nodes pushed to any queue but not yet expanded.
    let outstanding = AtomicU64::new(1);
    injector.push(problem.root());

    let workers: Vec<Worker<P::Node>> = (0..threads).map(|_| Worker::new_lifo()).collect();
    let stealers: Vec<Stealer<P::Node>> = workers.iter().map(Worker::stealer).collect();

    let results: Vec<(u64, u64, u64)> = std::thread::scope(|scope| {
        let handles: Vec<_> = workers
            .into_iter()
            .enumerate()
            .map(|(me, local)| {
                let injector = &injector;
                let outstanding = &outstanding;
                let stealers = &stealers;
                scope
                    .spawn(move || worker_loop(problem, local, me, injector, stealers, outstanding))
            })
            .collect();
        handles.into_iter().map(|h| h.join().expect("worker must not panic")).collect()
    });

    let mut stats = DequeStats::default();
    for &(expanded, goals, steals) in &results {
        stats.expanded += expanded;
        stats.goals += goals;
        stats.steals += steals;
        stats.per_worker.push(expanded);
    }
    stats
}

fn worker_loop<P: TreeProblem>(
    problem: &P,
    local: Worker<P::Node>,
    me: usize,
    injector: &Injector<P::Node>,
    stealers: &[Stealer<P::Node>],
    outstanding: &AtomicU64,
) -> (u64, u64, u64) {
    let mut expanded = 0u64;
    let mut goals = 0u64;
    let mut steals = 0u64;
    let mut children: Vec<P::Node> = Vec::new();
    let mut backoff = 0u32;
    loop {
        // Local pop first (LIFO = depth-first, bounded memory)...
        let node = local.pop().or_else(|| {
            // ...then the injector, then siblings. Any success is a steal.
            let stolen = steal_somewhere(injector, stealers, me);
            if stolen.is_some() {
                steals += 1;
            }
            stolen
        });
        match node {
            Some(node) => {
                backoff = 0;
                expanded += 1;
                if problem.is_goal(&node) {
                    goals += 1;
                }
                children.clear();
                problem.expand(&node, &mut children);
                if !children.is_empty() {
                    outstanding.fetch_add(children.len() as u64, Ordering::Relaxed);
                    for c in children.drain(..) {
                        local.push(c);
                    }
                }
                // This node is done only after its children are visible,
                // so `outstanding` can never dip to 0 while work remains.
                outstanding.fetch_sub(1, Ordering::Release);
            }
            None => {
                if outstanding.load(Ordering::Acquire) == 0 {
                    return (expanded, goals, steals);
                }
                // Nothing stealable right now but nodes are in flight:
                // back off briefly and retry.
                backoff = (backoff + 1).min(10);
                if backoff > 4 {
                    std::thread::yield_now();
                } else {
                    std::hint::spin_loop();
                }
            }
        }
    }
}

fn steal_somewhere<N>(injector: &Injector<N>, stealers: &[Stealer<N>], me: usize) -> Option<N> {
    loop {
        match injector.steal() {
            Steal::Success(n) => return Some(n),
            Steal::Empty => break,
            Steal::Retry => continue,
        }
    }
    // Rotate over victims starting after ourselves (the paper's global
    // pointer, reborn as steal order).
    let n = stealers.len();
    for k in 1..=n {
        let victim = (me + k) % n;
        if victim == me {
            continue;
        }
        loop {
            match stealers[victim].steal() {
                Steal::Success(node) => return Some(node),
                Steal::Empty => break,
                Steal::Retry => continue,
            }
        }
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;
    use uts_problems::{random_3sat, Dpll, NQueens};
    use uts_synth::{BinomialTree, GeometricTree};
    use uts_tree::serial_dfs;

    #[test]
    fn matches_serial_across_thread_counts() {
        let tree = GeometricTree { seed: 3, b_max: 8, depth_limit: 6 };
        let serial = serial_dfs(&tree);
        for threads in [1usize, 2, 4, 8] {
            let par = deque_dfs(&tree, threads);
            assert_eq!(par.expanded, serial.expanded, "threads {threads}");
            assert_eq!(par.goals, serial.goals, "threads {threads}");
            assert_eq!(par.per_worker.len(), threads);
            assert_eq!(par.per_worker.iter().sum::<u64>(), par.expanded);
        }
    }

    #[test]
    fn matches_serial_on_nqueens_and_sat() {
        let q = NQueens::new(8);
        let serial = serial_dfs(&q);
        let par = deque_dfs(&q, 4);
        assert_eq!(par.expanded, serial.expanded);
        assert_eq!(par.goals, 92);

        let dpll = Dpll::new(random_3sat(4, 12, 44));
        let serial = serial_dfs(&dpll);
        let par = deque_dfs(&dpll, 3);
        assert_eq!(par.expanded, serial.expanded);
        assert_eq!(par.goals, serial.goals);
    }

    #[test]
    fn single_thread_never_steals_after_start() {
        let tree = GeometricTree { seed: 2, b_max: 8, depth_limit: 5 };
        let par = deque_dfs(&tree, 1);
        // Only the initial injector grab counts as a steal.
        assert_eq!(par.steals, 1);
    }

    #[test]
    fn heavy_tailed_trees_still_terminate_and_agree() {
        for seed in 0..8 {
            let tree = BinomialTree::with_q(seed, 24, 4, 0.2);
            let serial = serial_dfs(&tree);
            let par = deque_dfs(&tree, 4);
            assert_eq!(par.expanded, serial.expanded, "seed {seed}");
        }
    }

    #[test]
    fn trivial_tree_on_many_threads() {
        let tree = GeometricTree { seed: 0, b_max: 8, depth_limit: 6 }; // W = 1
        let par = deque_dfs(&tree, 8);
        assert_eq!(par.expanded, 1);
    }

    #[test]
    #[should_panic(expected = "at least one worker")]
    fn zero_threads_rejected() {
        let tree = GeometricTree { seed: 1, b_max: 8, depth_limit: 4 };
        let _ = deque_dfs(&tree, 0);
    }
}
