//! Fork-join parallel DFS: rayon tasks down to a depth cutoff, serial
//! stacks below it.

use rayon::prelude::*;
use uts_tree::{SearchStack, TreeProblem};

/// Counters from a parallel traversal.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct ParStats {
    /// Nodes expanded (equals serial `W`).
    pub expanded: u64,
    /// Goal nodes found.
    pub goals: u64,
}

impl ParStats {
    fn merge(self, other: ParStats) -> ParStats {
        ParStats { expanded: self.expanded + other.expanded, goals: self.goals + other.goals }
    }
}

/// Exhaustively search `problem`, forking rayon tasks for sibling subtrees
/// above `par_depth` and running each deeper subtree serially.
///
/// `par_depth` trades scheduling overhead against balance: 0 is fully
/// serial; values around `log2(threads) + 3` are usually enough, since
/// rayon's own work stealing rebalances the generated tasks.
pub fn rayon_dfs<P: TreeProblem>(problem: &P, par_depth: usize) -> ParStats {
    descend(problem, problem.root(), 0, par_depth)
}

fn descend<P: TreeProblem>(problem: &P, node: P::Node, depth: usize, par_depth: usize) -> ParStats {
    let mut here = ParStats { expanded: 1, goals: problem.is_goal(&node) as u64 };
    let mut children = Vec::new();
    problem.expand(&node, &mut children);
    if children.is_empty() {
        return here;
    }
    if depth >= par_depth || children.len() == 1 {
        // Serial subtree: reuse the engine's stack machinery.
        let mut stack = SearchStack::new();
        stack.push_frame(children);
        let mut buf = Vec::new();
        while let Some(n) = stack.pop_next() {
            here.expanded += 1;
            here.goals += problem.is_goal(&n) as u64;
            buf.clear();
            problem.expand(&n, &mut buf);
            stack.push_frame(std::mem::take(&mut buf));
        }
        here
    } else {
        let below = children
            .into_par_iter()
            .map(|c| descend(problem, c, depth + 1, par_depth))
            .reduce(ParStats::default, ParStats::merge);
        here.merge(below)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use uts_problems::NQueens;
    use uts_synth::GeometricTree;
    use uts_tree::serial_dfs;

    #[test]
    fn matches_serial_on_synthetic_trees() {
        for seed in [1u64, 2, 3, 6, 9] {
            let tree = GeometricTree { seed, b_max: 8, depth_limit: 6 };
            let serial = serial_dfs(&tree);
            for par_depth in [0usize, 2, 5, 50] {
                let par = rayon_dfs(&tree, par_depth);
                assert_eq!(par.expanded, serial.expanded, "seed {seed} depth {par_depth}");
                assert_eq!(par.goals, serial.goals, "seed {seed} depth {par_depth}");
            }
        }
    }

    #[test]
    fn matches_serial_on_nqueens() {
        let q = NQueens::new(9);
        let serial = serial_dfs(&q);
        let par = rayon_dfs(&q, 4);
        assert_eq!(par.expanded, serial.expanded);
        assert_eq!(par.goals, serial.goals);
        assert_eq!(par.goals, 352);
    }

    #[test]
    fn zero_cutoff_is_pure_serial() {
        let tree = GeometricTree { seed: 2, b_max: 8, depth_limit: 5 };
        let serial = serial_dfs(&tree);
        let par = rayon_dfs(&tree, 0);
        assert_eq!(par.expanded, serial.expanded);
    }

    #[test]
    fn single_node_tree() {
        let tree = GeometricTree { seed: 0, b_max: 8, depth_limit: 6 }; // W = 1
        let par = rayon_dfs(&tree, 4);
        assert_eq!(par.expanded, 1);
    }
}
