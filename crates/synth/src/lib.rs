//! Seeded synthetic unstructured trees.
//!
//! The paper's isoefficiency experiments (Figs. 4 & 7) need *many* search
//! spaces spanning a wide range of problem sizes `W`. Its 15-puzzle
//! workloads come in IDA\*-iteration-sized quanta, so for dense (W, P)
//! sweeps we add deterministic synthetic trees in the style of the
//! Unbalanced Tree Search benchmark (Olivier et al.): every node's
//! branching is a pure hash of `(tree seed, node id)`, so the same tree is
//! regenerated identically on any processor — exactly the
//! "successor-generator-function" model of Sec. 2.
//!
//! Two families:
//!
//! * [`BinomialTree`] — after a fixed root fan-out, every node has `m`
//!   children with probability `q` (subcritical: `q·m < 1`) and none
//!   otherwise. Sizes are heavy-tailed and shapes highly irregular — a
//!   stress test for load balancing.
//! * [`GeometricTree`] — branching drawn uniformly from `0..=b_max` with a
//!   hard depth limit; sizes concentrate near the mean, which makes hitting
//!   a target `W` easy.
//!
//! [`find_tree`] searches seeds for a tree whose measured `W` lands within
//! a tolerance of a target.

use serde::{Deserialize, Serialize};
use uts_tree::{serial_dfs, TreeProblem};

/// SplitMix64 — the standard 64-bit finalizer used to derive child
/// identities; statistically strong and trivially reproducible.
#[inline]
pub fn splitmix64(mut z: u64) -> u64 {
    z = z.wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Child identity as a chain keyed on `(parent id, child index)`: the
/// parent is mixed *before* the index is folded in, so within one parent
/// the chain is injective (`splitmix64` is a bijection, so
/// `h(p) + i ≠ h(p) + j` for `i ≠ j`) and a cross-parent collision needs
/// two independent hash outputs within fan-out distance of each other —
/// a near-collision of the mixer, not an algebraic relation.
#[inline]
pub fn child_id(parent: u64, c: u32) -> u64 {
    splitmix64(splitmix64(parent).wrapping_add(c as u64 + 1))
}

/// The pre-fix derivation, kept only as the regression target: hashing
/// `parent ^ (c+1)·key` maps the shared id space through XOR, so for any
/// parent `p` and child indices `c1 ≠ c2` the distinct node
/// `(p ^ (c1+1)·key ^ (c2+1)·key, c2)` collides with `(p, c1)` exactly —
/// identical ids replay identical subtrees (expansion depends only on the
/// id once past the root). See `legacy_derivation_collides_and_chain_does_not`.
#[inline]
pub fn legacy_child_id(parent: u64, c: u32, key: u64) -> u64 {
    splitmix64(parent ^ (c as u64 + 1).wrapping_mul(key))
}

/// A node of a synthetic tree: its hash identity and depth.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct SynthNode {
    /// Hash identity (determines this node's subtree).
    pub id: u64,
    /// Depth below the root.
    pub depth: u32,
}

impl uts_tree::CkptNode for SynthNode {
    fn encode_node(&self, out: &mut Vec<u8>) {
        uts_tree::codec::put_u64(out, self.id);
        uts_tree::codec::put_u32(out, self.depth);
    }
    fn decode_node(r: &mut uts_tree::Reader<'_>) -> Result<Self, uts_tree::CodecError> {
        Ok(Self { id: r.u64()?, depth: r.u32()? })
    }
}

/// Binomial tree: root has exactly `root_children` children; every other
/// node has `m` children with probability `q`, else it is a leaf.
#[derive(Debug, Clone, Copy, Serialize, Deserialize)]
pub struct BinomialTree {
    /// Tree seed; different seeds give independent trees.
    pub seed: u64,
    /// Fan-out of the root.
    pub root_children: u32,
    /// Fan-out of every internal non-root node.
    pub m: u32,
    /// Probability a non-root node is internal, as a fraction of 2^64
    /// (use [`BinomialTree::with_q`] to set it from an `f64`).
    pub q_threshold: u64,
}

impl BinomialTree {
    /// Construct with branching probability `q` (must satisfy `q * m < 1`
    /// for the tree to be finite with probability 1).
    ///
    /// # Panics
    /// Panics if `q` is outside `[0, 1)` or the process is supercritical.
    pub fn with_q(seed: u64, root_children: u32, m: u32, q: f64) -> Self {
        assert!((0.0..1.0).contains(&q), "q must be a probability");
        assert!(q * (m as f64) < 1.0, "supercritical binomial tree would be infinite");
        Self { seed, root_children, m, q_threshold: (q * (u64::MAX as f64)) as u64 }
    }

    /// Expected number of nodes: `1 + b0 / (1 - q m)` (branching-process
    /// mean; the realized size varies widely).
    pub fn expected_size(&self) -> f64 {
        let q = self.q_threshold as f64 / u64::MAX as f64;
        1.0 + self.root_children as f64 / (1.0 - q * self.m as f64)
    }
}

impl TreeProblem for BinomialTree {
    type Node = SynthNode;

    fn root(&self) -> SynthNode {
        SynthNode { id: splitmix64(self.seed), depth: 0 }
    }

    fn expand(&self, node: &SynthNode, out: &mut Vec<SynthNode>) {
        let fanout = if node.depth == 0 {
            self.root_children
        } else if splitmix64(node.id) <= self.q_threshold {
            self.m
        } else {
            0
        };
        for c in 0..fanout {
            out.push(SynthNode { id: child_id(node.id, c), depth: node.depth + 1 });
        }
    }

    fn is_goal(&self, node: &SynthNode) -> bool {
        // Deterministic sparse goals (~1/61 of nodes) so goal propagation
        // is exercised by parallel runs.
        node.id.is_multiple_of(61)
    }
}

/// Geometric tree: node at depth `d < depth_limit` has `hash % (b_max + 1)`
/// children; deeper nodes are leaves.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct GeometricTree {
    /// Tree seed.
    pub seed: u64,
    /// Maximum fan-out (actual fan-out is uniform on `0..=b_max`).
    pub b_max: u32,
    /// Depth at which all nodes become leaves.
    pub depth_limit: u32,
}

impl GeometricTree {
    /// Expected size `sum_{d<=limit} (b_max/2)^d` (mean branching b_max/2).
    pub fn expected_size(&self) -> f64 {
        let b = self.b_max as f64 / 2.0;
        if (b - 1.0).abs() < 1e-9 {
            return (self.depth_limit + 1) as f64;
        }
        (b.powi(self.depth_limit as i32 + 1) - 1.0) / (b - 1.0)
    }
}

impl TreeProblem for GeometricTree {
    type Node = SynthNode;

    fn root(&self) -> SynthNode {
        SynthNode { id: splitmix64(self.seed), depth: 0 }
    }

    fn expand(&self, node: &SynthNode, out: &mut Vec<SynthNode>) {
        if node.depth >= self.depth_limit {
            return;
        }
        let fanout = (splitmix64(node.id) % (self.b_max as u64 + 1)) as u32;
        for c in 0..fanout {
            out.push(SynthNode { id: child_id(node.id, c), depth: node.depth + 1 });
        }
    }

    fn is_goal(&self, node: &SynthNode) -> bool {
        // Deterministic sparse goals (~1/61 of nodes).
        node.id.is_multiple_of(61)
    }
}

/// A tree generator together with its measured size.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct SizedTree {
    /// The generator (geometric family).
    pub tree: GeometricTree,
    /// Measured node count `W`.
    pub w: u64,
}

/// Search seeds `0..max_seeds` of a geometric family for a tree whose size
/// lies within `rel_tol` of `target`; depth and fan-out are chosen from the
/// target's magnitude. Returns the closest tree found even if outside the
/// tolerance (callers report measured `W`).
pub fn find_tree(target: u64, rel_tol: f64, max_seeds: u64) -> SizedTree {
    // Mean branching 4 (b_max 8): depth_limit ≈ log4(target).
    let depth_limit = ((target as f64).ln() / (4.0f64).ln()).ceil() as u32 + 1;
    let mut best: Option<SizedTree> = None;
    for seed in 0..max_seeds {
        let tree = GeometricTree { seed, b_max: 8, depth_limit };
        let w = serial_dfs(&tree).expanded;
        let dist = ((w as f64).ln() - (target as f64).ln()).abs();
        if best.as_ref().is_none_or(|b| dist < ((b.w as f64).ln() - (target as f64).ln()).abs()) {
            best = Some(SizedTree { tree, w });
        }
        if let Some(b) = &best {
            if (b.w as f64 / target as f64 - 1.0).abs() <= rel_tol {
                break;
            }
        }
    }
    best.expect("max_seeds > 0")
}

#[cfg(test)]
mod tests {
    use super::*;
    use uts_tree::serial_dfs;

    #[test]
    fn binomial_is_deterministic() {
        let t = BinomialTree::with_q(9, 16, 4, 0.2);
        let a = serial_dfs(&t).expanded;
        let b = serial_dfs(&t).expanded;
        assert_eq!(a, b);
    }

    #[test]
    fn different_seeds_differ() {
        let a = serial_dfs(&BinomialTree::with_q(1, 16, 4, 0.2)).expanded;
        let b = serial_dfs(&BinomialTree::with_q(2, 16, 4, 0.2)).expanded;
        // Heavy-tailed sizes: equality is vanishingly unlikely.
        assert_ne!(a, b);
    }

    #[test]
    fn q_zero_gives_star_tree() {
        let t = BinomialTree::with_q(5, 10, 4, 0.0);
        assert_eq!(serial_dfs(&t).expanded, 11, "root + 10 leaves");
    }

    #[test]
    #[should_panic(expected = "supercritical")]
    fn supercritical_rejected() {
        let _ = BinomialTree::with_q(0, 4, 4, 0.3);
    }

    #[test]
    fn geometric_respects_depth_limit() {
        let t = GeometricTree { seed: 3, b_max: 8, depth_limit: 4 };
        struct DepthCheck(GeometricTree);
        impl TreeProblem for DepthCheck {
            type Node = SynthNode;
            fn root(&self) -> SynthNode {
                self.0.root()
            }
            fn expand(&self, n: &SynthNode, out: &mut Vec<SynthNode>) {
                assert!(n.depth <= self.0.depth_limit);
                self.0.expand(n, out);
            }
        }
        serial_dfs(&DepthCheck(t));
    }

    #[test]
    fn geometric_sizes_near_expectation() {
        // Average over several seeds should be within 3x of the mean-field
        // expectation (loose: the process has real variance).
        let mut total = 0u64;
        let n = 8;
        let t0 = GeometricTree { seed: 0, b_max: 8, depth_limit: 6 };
        for seed in 0..n {
            let t = GeometricTree { seed, ..t0 };
            total += serial_dfs(&t).expanded;
        }
        let mean = total as f64 / n as f64;
        let expect = t0.expected_size();
        assert!(mean > expect / 3.0 && mean < expect * 3.0, "mean={mean} expect={expect}");
    }

    #[test]
    fn find_tree_hits_target_within_factor_two() {
        let st = find_tree(50_000, 0.10, 64);
        assert!(st.w > 25_000 && st.w < 100_000, "w = {}", st.w);
        // And the generator regenerates the same W.
        assert_eq!(serial_dfs(&st.tree).expanded, st.w);
    }

    #[test]
    fn legacy_derivation_collides_and_chain_does_not() {
        // The constructed collision family of the old derivation: for any
        // parent p and child indices (0, 1), the distinct parent
        // p ^ 1·K ^ 2·K produces the *same* child id at index 1 that p
        // produces at index 0 — two distinct tree positions with identical
        // ids, which replay identical subtrees. The chained derivation
        // must not satisfy the relation.
        const K: u64 = 0x9FB2_1C65_1E98_DF25;
        for p in [1u64, 42, 0xFEED_F00D, 0x0123_4567_89AB_CDEF] {
            let p2 = p ^ K ^ 2u64.wrapping_mul(K);
            assert_ne!(p, p2, "the constructed parents are distinct");
            assert_eq!(
                legacy_child_id(p, 0, K),
                legacy_child_id(p2, 1, K),
                "the legacy relation is the bug being pinned"
            );
            assert_ne!(child_id(p, 0), child_id(p2, 1), "chained ids must not collide");
        }
    }

    #[test]
    fn sibling_ids_never_collide() {
        // Within one parent the chain is injective by construction
        // (splitmix64 is a bijection); check a window anyway.
        for p in [0u64, 7, 0xDEAD_BEEF, u64::MAX] {
            let mut ids: Vec<u64> = (0..64).map(|c| child_id(p, c)).collect();
            let n = ids.len();
            ids.sort_unstable();
            ids.dedup();
            assert_eq!(ids.len(), n, "sibling collision under parent {p:#x}");
        }
    }

    #[test]
    fn splitmix_is_not_identity_and_spreads() {
        let a = splitmix64(0);
        let b = splitmix64(1);
        assert_ne!(a, 0);
        assert_ne!(a, b);
        assert!(((a ^ b).count_ones() as i32 - 32).abs() < 24, "bits should mix");
    }
}
