//! Pins `uts-machine`'s closed-form balancing-phase costs against this
//! crate's *actual* routers: for random permutation traffic — the shape
//! of a balancing round's transfer step, every donor sending one stack to
//! its matched receiver — the closed-form per-round transfer charge must
//! bracket the measured routing from above, and the no-contention lower
//! bound (`max_hops`) from below, at P ∈ {64, 1024, 4096}.
//!
//! The paper's Sec. 3.3 *asserts* transfer = `O(log^2 P)` (hypercube
//! general permutation) and `O(sqrt P)` (mesh) and `uts-machine` charges
//! exactly those shapes; this suite is the measurement that keeps the
//! charge honest: dimension-ordered e-cube and XY routing under link
//! contention must deliver a random permutation within the closed form,
//! and the closed form must not be vacuously loose (it stays within a
//! small constant of the measurement).

use rand::{Rng, SeedableRng};
use rand_chacha::ChaCha8Rng;
use uts_machine::CostModel;
use uts_net::hypercube::Hypercube;
use uts_net::mesh::Mesh;
use uts_net::{route, Message, RouteStats, Router};

/// A seeded random permutation of `0..p` as one message per source
/// (fixed points allowed — a PE that keeps its work sends nothing).
fn permutation_traffic(seed: u64, p: usize) -> Vec<Message> {
    let mut rng = ChaCha8Rng::seed_from_u64(seed);
    let mut dst: Vec<usize> = (0..p).collect();
    // Fisher–Yates.
    for i in (1..p).rev() {
        dst.swap(i, rng.random_range(0..=i));
    }
    (0..p).map(|src| Message { src, dst: dst[src] }).collect()
}

fn route_permutations<R: Router>(router: &R, p: usize, seeds: &[u64]) -> Vec<RouteStats> {
    seeds.iter().map(|&s| route(router, &permutation_traffic(s, p))).collect()
}

const SEEDS: [u64; 5] = [1, 2, 3, 5, 8];
const SIZES: [usize; 3] = [64, 1024, 4096];

#[test]
fn hypercube_closed_form_brackets_measured_permutation_routing() {
    let cost = CostModel::hypercube();
    for p in SIZES {
        let d = (p as f64).log2().ceil() as u32; // 6, 10, 12
        let cube = Hypercube::new(p);
        // Per-round closed-form transfer charge, in units of lb_transfer:
        // the d^2 general-permutation bound.
        let closed = cost.lb_phase_cost_breakdown(p, 1);
        assert_eq!(closed.transfer, cost.lb_transfer * (d as u64 * d as u64));
        for (i, stats) in route_permutations(&cube, p, &SEEDS).iter().enumerate() {
            // Upper bracket: e-cube under contention delivers a random
            // permutation within the closed form's d^2 steps.
            assert!(
                stats.steps as u64 * cost.lb_transfer <= closed.transfer,
                "P={p} seed#{i}: measured {} steps > closed-form {} (d^2 = {})",
                stats.steps,
                closed.transfer / cost.lb_transfer,
                d * d
            );
            // Lower bracket: the charge covers the no-contention bound
            // (longest single path), and the traffic is not degenerate.
            assert!(stats.max_hops <= d, "P={p}: a path exceeded the cube dimension");
            assert!(
                stats.steps >= stats.max_hops,
                "P={p}: contention cannot beat the longest path"
            );
            assert!(
                2 * stats.max_hops >= d,
                "P={p} seed#{i}: permutation too local (max_hops {} < d/2 = {})",
                stats.max_hops,
                d / 2
            );
            // Honesty: random permutations route in ~d steps under e-cube
            // (measured), so the d^2 worst-case charge is at most a factor
            // d above the measurement — the headroom reserved for
            // adversarial permutations, not an unbounded overcharge.
            assert!(
                stats.steps + 1 >= d,
                "P={p} seed#{i}: measured {} steps fell below ~d = {d}, making the d^2 \
                 charge more than d times the measurement",
                stats.steps
            );
        }
    }
}

#[test]
fn mesh_closed_form_brackets_measured_permutation_routing() {
    let cost = CostModel::mesh();
    for p in SIZES {
        let side = (p as f64).sqrt().ceil() as u32; // 8, 32, 64
        let mesh = Mesh::new(p);
        let closed = cost.lb_phase_cost_breakdown(p, 1);
        assert_eq!(closed.transfer, cost.lb_transfer * side as u64);
        for (i, stats) in route_permutations(&mesh, p, &SEEDS).iter().enumerate() {
            // The diameter is 2(side-1); XY paths never exceed it.
            assert!(stats.max_hops <= 2 * (side - 1), "P={p}: path exceeded the mesh diameter");
            assert!(stats.steps >= stats.max_hops, "P={p}: steps below the longest path");
            // Bracket: the sqrt(P) charge and the measured makespan agree
            // within a factor of 4 in both directions — random permutations
            // on a mesh genuinely cost Theta(sqrt P) under XY contention.
            assert!(
                stats.steps <= 4 * side,
                "P={p} seed#{i}: measured {} steps > 4*sqrt(P) = {}",
                stats.steps,
                4 * side
            );
            assert!(
                4 * stats.steps >= side,
                "P={p} seed#{i}: measured {} steps make the sqrt(P) = {side} charge vacuous",
                stats.steps
            );
        }
    }
}

#[test]
fn measured_breakdown_of_permutation_traffic_stays_within_closed_form() {
    // End-to-end: feed real measured route steps into
    // `measured_lb_cost_breakdown` and compare against the closed form the
    // ledger charges — on the hypercube the measured phase can never cost
    // more than the charged phase (same setup term, bracketed transfer).
    let cost = CostModel::hypercube();
    for p in SIZES {
        let cube = Hypercube::new(p);
        for (i, stats) in route_permutations(&cube, p, &SEEDS).iter().enumerate() {
            let closed = cost.lb_phase_cost_breakdown(p, 1);
            let measured = cost.measured_lb_cost_breakdown(p, 1, stats.steps as u64);
            assert_eq!(measured.setup, closed.setup, "setup is traffic-independent");
            assert!(
                measured.total <= closed.total,
                "P={p} seed#{i}: measured total {} > closed-form total {}",
                measured.total,
                closed.total
            );
        }
    }
}

#[test]
fn growth_rates_match_the_papers_asserted_shapes() {
    // Across the size ladder the *measured* medians must grow like the
    // asserted shapes: hypercube permutation makespans grow ~ d (staying
    // under d^2), mesh makespans grow ~ sqrt(P). Pin the cross-size ratio.
    let median = |mut v: Vec<u32>| -> u32 {
        v.sort_unstable();
        v[v.len() / 2]
    };
    let cube_median = |p: usize| {
        median(route_permutations(&Hypercube::new(p), p, &SEEDS).iter().map(|s| s.steps).collect())
    };
    let mesh_median = |p: usize| {
        median(route_permutations(&Mesh::new(p), p, &SEEDS).iter().map(|s| s.steps).collect())
    };
    // 64 -> 4096: d doubles (6 -> 12), sqrt(P) grows 8x (8 -> 64).
    let (c64, c4096) = (cube_median(64), cube_median(4096));
    assert!(c4096 >= c64, "hypercube makespan must not shrink with P");
    assert!(c4096 <= 4 * c64, "hypercube growth {c64} -> {c4096} is super-logarithmic");
    let (m64, m4096) = (mesh_median(64), mesh_median(4096));
    assert!(
        m4096 >= 4 * m64,
        "mesh growth {m64} -> {m4096} is slower than sqrt(P) predicts (want >= 4x)"
    );
    assert!(m4096 <= 32 * m64, "mesh growth {m64} -> {m4096} overshoots sqrt(P) (want <= 32x)");
}
