//! 2-D mesh with XY (dimension-ordered) routing.

use serde::{Deserialize, Serialize};

use crate::Router;

/// A `side × side` mesh; node `i` sits at row `i / side`, column
/// `i % side`. XY routing corrects the column first, then the row —
/// deadlock-free on a mesh.
#[derive(Debug, Clone, Copy, Serialize, Deserialize)]
pub struct Mesh {
    side: usize,
}

impl Mesh {
    /// The smallest square mesh holding at least `p` nodes.
    ///
    /// # Panics
    /// Panics if `p == 0`.
    pub fn new(p: usize) -> Self {
        assert!(p > 0, "need at least one node");
        let side = (p as f64).sqrt().ceil() as usize;
        Self { side }
    }

    /// Side length.
    pub fn side(&self) -> usize {
        self.side
    }

    fn coords(&self, node: usize) -> (usize, usize) {
        (node / self.side, node % self.side)
    }
}

impl Router for Mesh {
    fn size(&self) -> usize {
        self.side * self.side
    }

    fn next_hop(&self, pos: usize, dst: usize) -> Option<usize> {
        if pos == dst {
            return None;
        }
        let (r, c) = self.coords(pos);
        let (dr, dc) = self.coords(dst);
        // X (column) first, then Y (row).
        if c != dc {
            Some(if dc > c { pos + 1 } else { pos - 1 })
        } else if dr > r {
            Some(pos + self.side)
        } else {
            Some(pos - self.side)
        }
    }

    fn hops(&self, src: usize, dst: usize) -> u32 {
        let (r, c) = self.coords(src);
        let (dr, dc) = self.coords(dst);
        (r.abs_diff(dr) + c.abs_diff(dc)) as u32
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{route, Message};
    use rand::prelude::*;
    use rand_chacha::ChaCha8Rng;
    use uts_scan::rendezvous_match_from;

    #[test]
    fn smallest_square_covers_p() {
        assert_eq!(Mesh::new(16).side(), 4);
        assert_eq!(Mesh::new(17).side(), 5);
        assert_eq!(Mesh::new(1).side(), 1);
    }

    #[test]
    fn xy_routing_goes_column_first() {
        let m = Mesh::new(16); // 4x4
                               // From (0,0) to (2,3): move right first.
        assert_eq!(m.next_hop(0, 11), Some(1));
        // Column aligned: move down.
        assert_eq!(m.next_hop(3, 11), Some(7));
        assert_eq!(m.next_hop(11, 11), None);
    }

    #[test]
    fn hops_are_manhattan_distance() {
        let m = Mesh::new(25);
        assert_eq!(m.hops(0, 24), 8);
        assert_eq!(m.hops(7, 7), 0);
    }

    #[test]
    fn single_message_takes_manhattan_steps() {
        let m = Mesh::new(64);
        let stats = route(&m, &[Message { src: 0, dst: 63 }]);
        assert_eq!(stats.steps, m.hops(0, 63));
        assert_eq!(stats.waits, 0);
    }

    /// The Sec. 3.3 claim: mesh transfers route in O(sqrt P)-ish steps for
    /// rendezvous traffic (diameter 2(side-1), plus modest congestion).
    #[test]
    fn rendezvous_traffic_routes_within_constant_times_sqrt_p() {
        let mut rng = ChaCha8Rng::seed_from_u64(7);
        for side in [8usize, 16, 32] {
            let p = side * side;
            let busy: Vec<bool> = (0..p).map(|_| rng.random_bool(0.6)).collect();
            let idle: Vec<bool> = busy.iter().map(|&b| !b).collect();
            let pairs = rendezvous_match_from(&busy, &idle, rng.random_range(0..p));
            let messages: Vec<Message> =
                pairs.iter().map(|pr| Message { src: pr.donor, dst: pr.receiver }).collect();
            let stats = route(&Mesh::new(p), &messages);
            assert!(
                stats.steps as usize <= 8 * side,
                "side {side}: {} steps exceeds 8*sqrt(P)",
                stats.steps
            );
        }
    }

    /// Mesh routing time grows with sqrt(P) — ~2x steps for 4x nodes —
    /// which is why Table 6's mesh isoefficiencies carry the P^1.5 factor.
    #[test]
    fn growth_tracks_sqrt_p() {
        let measure = |side: usize| {
            let p = side * side;
            let mut rng = ChaCha8Rng::seed_from_u64(13);
            let mut total = 0u32;
            for _ in 0..5 {
                let busy: Vec<bool> = (0..p).map(|_| rng.random_bool(0.5)).collect();
                let idle: Vec<bool> = busy.iter().map(|&b| !b).collect();
                let pairs = rendezvous_match_from(&busy, &idle, 0);
                let messages: Vec<Message> =
                    pairs.iter().map(|pr| Message { src: pr.donor, dst: pr.receiver }).collect();
                total += route(&Mesh::new(p), &messages).steps;
            }
            total as f64 / 5.0
        };
        let small = measure(8);
        let big = measure(32); // 16x the nodes, 4x the side
        let ratio = big / small;
        assert!(
            ratio > 1.8 && ratio < 9.0,
            "expected ~4x growth for 16x nodes, got {ratio:.1}x ({small} -> {big})"
        );
    }
}
