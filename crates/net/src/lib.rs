//! Interconnect routing simulation.
//!
//! The paper's Sec. 3.3 asserts per-architecture costs for a balancing
//! phase — sum-scan setup `O(log P)` (hypercube) or `O(sqrt P)` (mesh),
//! and work-transfer `O(log^2 P)` (hypercube general permutation) or
//! `O(sqrt P)` (mesh) — and then *assumes* them in `uts-machine`'s cost
//! models. This crate closes the loop: it simulates the routes the
//! transfer step actually takes (dimension-ordered e-cube routing on the
//! hypercube, XY routing on the mesh) under synchronous store-and-forward
//! link contention, so the asserted growth rates can be *measured* on the
//! rendezvous traffic the matching schemes emit.
//!
//! The contention model: one message per directed link per step; blocked
//! messages wait (deterministic lowest-index priority). [`route`] returns
//! the delivery time and congestion statistics of a message set.

pub mod hypercube;
pub mod mesh;

use serde::{Deserialize, Serialize};

/// A point-to-point message (one per rendezvous pair).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct Message {
    /// Source processor.
    pub src: usize,
    /// Destination processor.
    pub dst: usize,
}

/// Outcome of routing a message set to completion.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default, Serialize, Deserialize)]
pub struct RouteStats {
    /// Synchronous steps until every message arrived.
    pub steps: u32,
    /// Longest individual path (hops) — the no-contention lower bound.
    pub max_hops: u32,
    /// Total number of blocked-message wait events (congestion measure).
    pub waits: u64,
}

impl RouteStats {
    /// Fold another routed batch into this accumulator: batches routed one
    /// after the other take the *sum* of their step counts (the network is
    /// reused serially, e.g. one batch per balancing round), the worst
    /// single path is the max, and wait events add. Used by the sharded
    /// machine to aggregate per-round transfer routes into per-phase (and
    /// per-run) measured provenance.
    pub fn absorb(&mut self, other: RouteStats) {
        self.steps += other.steps;
        self.max_hops = self.max_hops.max(other.max_hops);
        self.waits += other.waits;
    }
}

/// A routing function: given the network size and a message's current
/// position/destination, the next node on its path (must be a neighbor).
pub trait Router {
    /// Number of processors.
    fn size(&self) -> usize;
    /// Next hop for a message at `pos` heading to `dst`; `None` iff
    /// `pos == dst`.
    fn next_hop(&self, pos: usize, dst: usize) -> Option<usize>;
    /// Diameter-style bound used by tests (hops of the longest route).
    fn hops(&self, src: usize, dst: usize) -> u32;
}

/// Synchronously route `messages` to completion under link contention.
///
/// # Panics
/// Panics if any endpoint is out of range.
pub fn route<R: Router>(router: &R, messages: &[Message]) -> RouteStats {
    let n = router.size();
    for m in messages {
        assert!(m.src < n && m.dst < n, "message endpoint out of range");
    }
    let mut pos: Vec<usize> = messages.iter().map(|m| m.src).collect();
    let mut max_hops = 0;
    for m in messages {
        max_hops = max_hops.max(router.hops(m.src, m.dst));
    }
    let mut steps = 0u32;
    let mut waits = 0u64;
    let mut in_flight: Vec<usize> =
        (0..messages.len()).filter(|&i| pos[i] != messages[i].dst).collect();
    // One message per directed link per step: claimed links this step.
    let mut claimed: std::collections::HashSet<(usize, usize)> = std::collections::HashSet::new();
    while !in_flight.is_empty() {
        steps += 1;
        claimed.clear();
        let mut still = Vec::with_capacity(in_flight.len());
        for &i in &in_flight {
            let dst = messages[i].dst;
            let next =
                router.next_hop(pos[i], dst).expect("in-flight message must have a next hop");
            if claimed.insert((pos[i], next)) {
                pos[i] = next;
            } else {
                waits += 1;
            }
            if pos[i] != dst {
                still.push(i);
            }
        }
        in_flight = still;
        debug_assert!(steps <= (n as u32 + 2) * (messages.len() as u32 + 2), "routing livelock");
    }
    RouteStats { steps, max_hops, waits }
}

/// Depth of the binary reduction/scan tree on `p` processors — the
/// `O(log P)` setup cost the paper charges for the sum-scans.
pub fn scan_depth(p: usize) -> u32 {
    assert!(p > 0);
    (usize::BITS - (p - 1).leading_zeros()).max(1)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::hypercube::Hypercube;

    #[test]
    fn empty_message_set_routes_instantly() {
        let h = Hypercube::new(16);
        let stats = route(&h, &[]);
        assert_eq!(stats.steps, 0);
        assert_eq!(stats.waits, 0);
    }

    #[test]
    fn self_messages_cost_nothing() {
        let h = Hypercube::new(8);
        let stats = route(&h, &[Message { src: 3, dst: 3 }]);
        assert_eq!(stats.steps, 0);
    }

    #[test]
    fn scan_depth_matches_log2() {
        assert_eq!(scan_depth(1), 1);
        assert_eq!(scan_depth(2), 1);
        assert_eq!(scan_depth(3), 2);
        assert_eq!(scan_depth(1024), 10);
        assert_eq!(scan_depth(1025), 11);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn oversized_endpoint_rejected() {
        let h = Hypercube::new(8);
        let _ = route(&h, &[Message { src: 0, dst: 9 }]);
    }
}
