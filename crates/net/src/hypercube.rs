//! Hypercube with dimension-ordered (e-cube) routing.

use serde::{Deserialize, Serialize};

use crate::Router;

/// A `d`-dimensional hypercube of `2^d` nodes; node ids are bit strings,
/// neighbors differ in exactly one bit. E-cube routing corrects differing
/// bits from least to most significant, which is deadlock-free.
#[derive(Debug, Clone, Copy, Serialize, Deserialize)]
pub struct Hypercube {
    dims: u32,
}

impl Hypercube {
    /// A hypercube with at least `p` nodes (`p` rounded up to a power of
    /// two, as on the CM-2).
    ///
    /// # Panics
    /// Panics if `p == 0`.
    pub fn new(p: usize) -> Self {
        assert!(p > 0, "need at least one node");
        Self { dims: crate::scan_depth(p) }
    }

    /// Dimensionality `d = log2(size)`.
    pub fn dims(&self) -> u32 {
        self.dims
    }
}

impl Router for Hypercube {
    fn size(&self) -> usize {
        1usize << self.dims
    }

    fn next_hop(&self, pos: usize, dst: usize) -> Option<usize> {
        let diff = pos ^ dst;
        if diff == 0 {
            return None;
        }
        // Correct the lowest differing bit.
        let bit = diff & diff.wrapping_neg();
        Some(pos ^ bit)
    }

    fn hops(&self, src: usize, dst: usize) -> u32 {
        (src ^ dst).count_ones()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{route, Message};
    use rand::prelude::*;
    use rand_chacha::ChaCha8Rng;
    use uts_scan::rendezvous_match_from;

    #[test]
    fn sizes_round_up_to_powers_of_two() {
        assert_eq!(Hypercube::new(1000).size(), 1024);
        assert_eq!(Hypercube::new(1024).size(), 1024);
        assert_eq!(Hypercube::new(1025).size(), 2048);
    }

    #[test]
    fn ecube_corrects_low_bits_first() {
        let h = Hypercube::new(16);
        assert_eq!(h.next_hop(0b0000, 0b1010), Some(0b0010));
        assert_eq!(h.next_hop(0b0010, 0b1010), Some(0b1010));
        assert_eq!(h.next_hop(5, 5), None);
    }

    #[test]
    fn hop_count_is_hamming_distance() {
        let h = Hypercube::new(64);
        assert_eq!(h.hops(0, 63), 6);
        assert_eq!(h.hops(9, 9), 0);
        assert_eq!(h.hops(0b101, 0b011), 2);
    }

    #[test]
    fn single_message_takes_exactly_hamming_steps() {
        let h = Hypercube::new(256);
        let stats = route(&h, &[Message { src: 3, dst: 252 }]);
        assert_eq!(stats.steps, h.hops(3, 252));
        assert_eq!(stats.waits, 0);
    }

    /// The Sec. 3.3 claim: routed transfer time for rendezvous traffic
    /// grows no faster than `log^2 P` (and the paper notes it is often
    /// `O(log P)` depending on the permutation).
    #[test]
    fn rendezvous_traffic_routes_within_log_squared() {
        let mut rng = ChaCha8Rng::seed_from_u64(5);
        for d in [6u32, 8, 10] {
            let p = 1usize << d;
            // Random 60%-busy pattern, its rendezvous matching as traffic.
            let busy: Vec<bool> = (0..p).map(|_| rng.random_bool(0.6)).collect();
            let idle: Vec<bool> = busy.iter().map(|&b| !b).collect();
            let pairs = rendezvous_match_from(&busy, &idle, rng.random_range(0..p));
            let messages: Vec<Message> =
                pairs.iter().map(|pr| Message { src: pr.donor, dst: pr.receiver }).collect();
            let h = Hypercube::new(p);
            let stats = route(&h, &messages);
            assert!(stats.max_hops <= d);
            assert!(
                stats.steps <= d * d,
                "P=2^{d}: {} steps exceeds log^2 = {}",
                stats.steps,
                d * d
            );
        }
    }

    /// Measured growth is sub-quadratic in log P for rendezvous traffic:
    /// doubling the dimension should far less than quadruple the steps.
    #[test]
    fn growth_rate_is_gentle() {
        let mut worst = Vec::new();
        for d in [5u32, 10] {
            let p = 1usize << d;
            let mut max_steps = 0;
            let mut rng = ChaCha8Rng::seed_from_u64(11);
            for _ in 0..5 {
                let busy: Vec<bool> = (0..p).map(|_| rng.random_bool(0.5)).collect();
                let idle: Vec<bool> = busy.iter().map(|&b| !b).collect();
                let pairs = rendezvous_match_from(&busy, &idle, 0);
                let messages: Vec<Message> =
                    pairs.iter().map(|pr| Message { src: pr.donor, dst: pr.receiver }).collect();
                max_steps = max_steps.max(route(&Hypercube::new(p), &messages).steps);
            }
            worst.push(max_steps);
        }
        assert!(worst[1] <= worst[0] * 4, "dimension 5→10 steps {} → {}", worst[0], worst[1]);
    }
}
