//! The 15-puzzle — the paper's experimental workload (Sec. 5).
//!
//! "15-puzzle is a 4×4 square tray containing 15 square tiles ... The goal
//! is to transform the initial position into the goal position by sliding
//! the tiles around. The 15-puzzle problem is particularly suited for
//! testing the effectiveness of dynamic load balancing schemes, as it is
//! possible to create search spaces of different sizes (W) by choosing
//! appropriate initial positions."
//!
//! This crate provides:
//!
//! * [`Board`] — a 4-bits-per-cell packed board;
//! * [`PuzzleState`] / [`Puzzle15`] — an [`uts_tree::HeuristicProblem`]
//!   with an incrementally maintained Manhattan-distance heuristic and
//!   inverse-move pruning (the standard IDA\* formulation of Korf 1985);
//! * [`instances`] — the classic Korf (1985) benchmark instances plus a
//!   seeded scramble generator;
//! * [`calibrate`] — pick `(instance, bound)` workloads whose serial node
//!   count `W` approximates the paper's four problem sizes.

pub mod board;
pub mod calibrate;
pub mod instances;
pub mod state;

pub use board::{Board, Move, GOAL};
pub use instances::{korf_instances, scrambled, Instance};
pub use state::{Puzzle15, PuzzleState};
