//! Benchmark instances.
//!
//! The paper solves "various instances of the 15-puzzle problem taken from
//! [Korf 1985]". We embed the first ten instances of Korf's classic
//! 100-instance benchmark (with their published optimal costs) and provide
//! a deterministic scramble generator for arbitrarily many further
//! instances. The reproduction's tables depend only on the *measured*
//! serial node count `W` of each workload (see [`crate::calibrate`]), so
//! any solvable instance set with the right `W` spectrum exercises the same
//! behaviour.

use rand::prelude::*;
use rand_chacha::ChaCha8Rng;
use serde::{Deserialize, Serialize};

use crate::board::{Board, Move};

/// A named 15-puzzle instance.
#[derive(Debug, Clone, Copy, Serialize, Deserialize)]
pub struct Instance {
    /// Identifier (Korf number, or a synthetic id for scrambles).
    pub id: u32,
    /// Start position (`tiles[cell] = tile`, 0 = blank).
    pub tiles: [u8; 16],
    /// Published optimal solution cost, when known.
    pub optimal: Option<u32>,
}

impl Instance {
    /// The start board.
    pub fn board(&self) -> Board {
        Board::from_tiles(&self.tiles)
    }
}

/// The first nine instances of Korf's (1985) 100-instance benchmark with
/// their published optimal costs. (Each embedded instance is validated by
/// tests to be a solvable permutation; entries that failed validation
/// against our transcription were omitted rather than silently "repaired".)
pub fn korf_instances() -> &'static [Instance] {
    const K: &[Instance] = &[
        Instance {
            id: 1,
            tiles: [14, 13, 15, 7, 11, 12, 9, 5, 6, 0, 2, 1, 4, 8, 10, 3],
            optimal: Some(57),
        },
        Instance {
            id: 2,
            tiles: [13, 5, 4, 10, 9, 12, 8, 14, 2, 3, 7, 1, 0, 15, 11, 6],
            optimal: Some(55),
        },
        Instance {
            id: 3,
            tiles: [14, 7, 8, 2, 13, 11, 10, 4, 9, 12, 5, 0, 3, 6, 1, 15],
            optimal: Some(59),
        },
        Instance {
            id: 4,
            tiles: [5, 12, 10, 7, 15, 11, 14, 0, 8, 2, 1, 13, 3, 4, 9, 6],
            optimal: Some(56),
        },
        Instance {
            id: 5,
            tiles: [4, 7, 14, 13, 10, 3, 9, 12, 11, 5, 6, 15, 1, 2, 8, 0],
            optimal: Some(56),
        },
        Instance {
            id: 6,
            tiles: [14, 7, 1, 9, 12, 3, 6, 15, 8, 11, 2, 5, 10, 0, 4, 13],
            optimal: Some(52),
        },
        Instance {
            id: 7,
            tiles: [2, 11, 15, 5, 13, 4, 6, 7, 12, 8, 10, 1, 9, 3, 14, 0],
            optimal: Some(52),
        },
        Instance {
            id: 8,
            tiles: [12, 11, 15, 3, 8, 0, 4, 2, 6, 13, 9, 5, 14, 1, 10, 7],
            optimal: Some(50),
        },
        Instance {
            id: 9,
            tiles: [3, 14, 9, 11, 5, 4, 8, 2, 13, 12, 6, 7, 10, 1, 15, 0],
            optimal: Some(46),
        },
    ];
    K
}

/// Generate a solvable instance by a seeded random walk of `walk_len` moves
/// from the goal (never immediately undoing a move). Solvability holds by
/// construction; longer walks give (stochastically) harder instances.
pub fn scrambled(seed: u64, walk_len: usize) -> Instance {
    let mut rng = ChaCha8Rng::seed_from_u64(seed);
    let mut board = crate::board::GOAL;
    let mut blank = 0u8;
    let mut last: Option<Move> = None;
    let mut made = 0usize;
    while made < walk_len {
        let m = Move::ALL[rng.random_range(0..4)];
        if last == Some(m.inverse()) {
            continue;
        }
        if let Some((nb, nblank)) = board.slide(blank, m) {
            board = nb;
            blank = nblank;
            last = Some(m);
            made += 1;
        }
    }
    Instance { id: u32::MAX, tiles: board.to_tiles(), optimal: None }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::board::GOAL;
    use crate::state::Puzzle15;
    use uts_tree::ida::ida_star;
    use uts_tree::HeuristicProblem;

    #[test]
    fn korf_instances_are_valid_permutations() {
        for inst in korf_instances() {
            let board = inst.board(); // from_tiles panics on non-permutations
            assert!(board.is_solvable(), "Korf #{} must be solvable", inst.id);
        }
    }

    #[test]
    fn korf_optimal_costs_are_plausible_lower_bounded_by_h() {
        // The Manhattan distance of the start must not exceed the published
        // optimal cost, and must have the same parity (each move changes
        // h by exactly ±1).
        for inst in korf_instances() {
            let h = inst.board().manhattan();
            let opt = inst.optimal.unwrap();
            assert!(h <= opt, "Korf #{}: h={} > optimal={}", inst.id, h, opt);
            assert_eq!(h % 2, opt % 2, "Korf #{}: parity mismatch", inst.id);
        }
    }

    #[test]
    fn korf_ids_are_unique_and_ordered() {
        let ids: Vec<u32> = korf_instances().iter().map(|i| i.id).collect();
        assert!(ids.windows(2).all(|w| w[0] < w[1]));
    }

    #[test]
    fn scrambled_is_deterministic_per_seed() {
        let a = scrambled(42, 30);
        let b = scrambled(42, 30);
        assert_eq!(a.tiles, b.tiles);
        let c = scrambled(43, 30);
        assert_ne!(a.tiles, c.tiles, "different seeds should differ (whp)");
    }

    #[test]
    fn scrambled_is_solvable_and_scrambled() {
        let inst = scrambled(7, 40);
        let b = inst.board();
        assert!(b.is_solvable());
        assert_ne!(b, GOAL);
    }

    #[test]
    fn zero_length_walk_is_goal() {
        let inst = scrambled(1, 0);
        assert_eq!(inst.board(), GOAL);
    }

    #[test]
    fn short_scramble_solves_within_walk_length() {
        let inst = scrambled(11, 12);
        let p = Puzzle15::new(inst.board());
        let r = ida_star(&p, 80);
        let cost = r.solution_cost.unwrap();
        assert!(cost <= 12, "optimal {cost} cannot exceed the walk length");
        assert!(cost >= p.h(&p.initial()));
    }
}
