//! Workload calibration: find `(instance, bound)` pairs whose serial node
//! count `W` approximates the paper's problem sizes.
//!
//! The paper's Tables 2–4 use four problem sizes (`W ≈` 941 852, 3 055 171,
//! 6 073 623, 16 110 463) and Table 5 uses `W ≈ 2 067 137`, each being the
//! node count of one exhaustively searched IDA\* iteration of some Korf
//! instance. The exact instances are not identified in the paper, so we
//! search a pool (Korf instances + seeded scrambles) for iterations of the
//! closest size. All tables report the *measured* `W` of the calibrated
//! workload next to the paper's.

use serde::{Deserialize, Serialize};
use uts_tree::problem::{BoundedProblem, TreeProblem};
use uts_tree::stack::SearchStack;
use uts_tree::HeuristicProblem;

use crate::instances::{korf_instances, scrambled, Instance};
use crate::state::Puzzle15;

/// A calibrated workload: one exhaustive bounded-DFS iteration.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Workload {
    /// The instance searched.
    pub instance: Instance,
    /// The cost bound of the iteration.
    pub bound: u32,
    /// Serial node count of the iteration (the problem size `W`).
    pub w: u64,
}

impl Workload {
    /// The bounded problem this workload searches.
    pub fn problem(&self) -> (Puzzle15, u32) {
        (Puzzle15::new(self.instance.board()), self.bound)
    }
}

/// Count one bounded iteration, aborting once `cap` expansions are
/// exceeded. Returns `None` when the iteration is larger than `cap`,
/// otherwise `Some((expanded, next_bound))` where `next_bound` is the
/// minimum pruned `f` (the next IDA\* bound), `None` when nothing was
/// pruned.
pub fn bounded_count_capped(puzzle: &Puzzle15, bound: u32, cap: u64) -> Option<(u64, Option<u32>)> {
    let bp = BoundedProblem::new(puzzle, bound);
    let mut stack = SearchStack::from_root(bp.root());
    let mut expanded = 0u64;
    let mut next_bound: Option<u32> = None;
    let mut children = Vec::new();
    let mut scratch = Vec::new();
    while let Some(node) = stack.pop_next() {
        expanded += 1;
        if expanded > cap {
            return None;
        }
        children.clear();
        if let Some(pruned) = bp.expand_tracking_pruned(&node, &mut children, &mut scratch) {
            next_bound = Some(next_bound.map_or(pruned, |b| b.min(pruned)));
        }
        stack.push_frame(std::mem::take(&mut children));
    }
    Some((expanded, next_bound))
}

/// Enumerate `(bound, W)` for successive IDA\* iterations of `puzzle`,
/// stopping after the first iteration that exceeds `cap` (not included).
pub fn iteration_sizes(puzzle: &Puzzle15, cap: u64) -> Vec<(u32, u64)> {
    let mut out = Vec::new();
    let mut bound = puzzle.h(&puzzle.initial());
    loop {
        match bounded_count_capped(puzzle, bound, cap) {
            Some((w, next)) => {
                out.push((bound, w));
                match next {
                    Some(b) => bound = b,
                    None => return out,
                }
            }
            None => return out,
        }
    }
}

/// The instance pool calibration searches: the Korf instances plus `extra`
/// deterministic scrambles (seeds `0..extra`, walk length 80 + seed % 41).
pub fn calibration_pool(extra: u64) -> Vec<Instance> {
    let mut pool = korf_instances().to_vec();
    for seed in 0..extra {
        pool.push(scrambled(seed, 80 + (seed % 41) as usize));
    }
    pool
}

/// Find the workload in `pool` whose iteration size is closest to `target`
/// in log-space. `cap` bounds the per-iteration counting effort.
pub fn find_workload(pool: &[Instance], target: u64, cap: u64) -> Option<Workload> {
    let mut best: Option<(f64, Workload)> = None;
    for inst in pool {
        let puzzle = Puzzle15::new(inst.board());
        for (bound, w) in iteration_sizes(&puzzle, cap) {
            if w == 0 {
                continue;
            }
            let dist = ((w as f64).ln() - (target as f64).ln()).abs();
            if best.as_ref().is_none_or(|(d, _)| dist < *d) {
                best = Some((dist, Workload { instance: *inst, bound, w }));
            }
        }
    }
    best.map(|(_, wl)| wl)
}

/// The paper's five target sizes (Tables 2–5).
pub const PAPER_TARGETS: [u64; 5] = [941_852, 3_055_171, 6_073_623, 16_110_463, 2_067_137];

#[cfg(test)]
mod tests {
    use super::*;
    use crate::board::GOAL;

    #[test]
    fn goal_iteration_is_single_node() {
        let p = Puzzle15::new(GOAL);
        let (w, next) = bounded_count_capped(&p, 0, 10).unwrap();
        assert_eq!(w, 1);
        assert_eq!(next, Some(2), "children of the goal have f = 2");
    }

    #[test]
    fn cap_aborts_large_iterations() {
        let inst = scrambled(3, 60);
        let p = Puzzle15::new(inst.board());
        let h0 = p.h(&p.initial());
        // A cap of 0 always aborts (the root itself exceeds it).
        assert!(bounded_count_capped(&p, h0, 0).is_none());
    }

    #[test]
    fn iteration_sizes_grow_monotonically() {
        let inst = scrambled(5, 40);
        let p = Puzzle15::new(inst.board());
        let sizes = iteration_sizes(&p, 200_000);
        assert!(!sizes.is_empty());
        for w in sizes.windows(2) {
            assert!(w[0].0 < w[1].0, "bounds increase");
            assert!(w[0].1 <= w[1].1, "deeper iterations expand no fewer nodes");
        }
    }

    #[test]
    fn find_workload_hits_small_targets() {
        let pool = calibration_pool(6);
        let target = 20_000;
        let wl = find_workload(&pool, target, 100_000).expect("pool has iterations");
        // Within a factor of 8 of the target (iteration growth is ~6x, so
        // the closest iteration is within sqrt(6)x in expectation; 8x is a
        // loose sanity bound).
        assert!(wl.w >= target / 8 && wl.w <= target * 8, "w = {}", wl.w);
    }

    #[test]
    fn calibration_pool_is_deterministic() {
        let a = calibration_pool(4);
        let b = calibration_pool(4);
        assert_eq!(a.len(), b.len());
        for (x, y) in a.iter().zip(&b) {
            assert_eq!(x.tiles, y.tiles);
        }
    }
}
