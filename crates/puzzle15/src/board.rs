//! Packed 4×4 board representation and move mechanics.

use serde::{Deserialize, Serialize};

/// A sliding move, named for the direction the *blank* travels.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
#[repr(u8)]
pub enum Move {
    /// Blank moves up (the tile above slides down).
    Up = 0,
    /// Blank moves down.
    Down = 1,
    /// Blank moves left.
    Left = 2,
    /// Blank moves right.
    Right = 3,
}

impl Move {
    /// All four moves, in the generation order used by the search.
    pub const ALL: [Move; 4] = [Move::Up, Move::Down, Move::Left, Move::Right];

    /// The move that undoes this one.
    pub fn inverse(self) -> Move {
        match self {
            Move::Up => Move::Down,
            Move::Down => Move::Up,
            Move::Left => Move::Right,
            Move::Right => Move::Left,
        }
    }

    /// Target cell when the blank at `cell` makes this move, if on-board.
    pub fn apply(self, cell: u8) -> Option<u8> {
        let (r, c) = (cell / 4, cell % 4);
        let (nr, nc) = match self {
            Move::Up => (r.checked_sub(1)?, c),
            Move::Down => (r + 1, c),
            Move::Left => (r, c.checked_sub(1)?),
            Move::Right => (r, c + 1),
        };
        (nr < 4 && nc < 4).then_some(nr * 4 + nc)
    }
}

/// A 4×4 board packed 4 bits per cell: nibble `i` holds the tile at cell
/// `i` (row-major), 0 denoting the blank.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct Board(pub u64);

/// The solved board: blank at cell 0, tiles 1..15 in order.
///
/// (This is the Korf (1985) goal convention, which his benchmark instances'
/// published optimal costs assume.)
pub const GOAL: Board = Board(0xFEDC_BA98_7654_3210);

impl Board {
    /// Build from a tile array (`tiles[cell] = tile`, 0 = blank).
    ///
    /// # Panics
    /// Panics if `tiles` is not a permutation of `0..16`.
    pub fn from_tiles(tiles: &[u8; 16]) -> Self {
        let mut seen = [false; 16];
        let mut packed = 0u64;
        for (cell, &t) in tiles.iter().enumerate() {
            assert!(t < 16 && !seen[t as usize], "tiles must be a permutation of 0..16");
            seen[t as usize] = true;
            packed |= (t as u64) << (4 * cell);
        }
        Board(packed)
    }

    /// The tile at `cell`.
    pub fn get(self, cell: u8) -> u8 {
        ((self.0 >> (4 * cell)) & 0xF) as u8
    }

    /// Copy with `tile` written at `cell`.
    pub fn set(self, cell: u8, tile: u8) -> Self {
        let shift = 4 * cell as u64;
        Board((self.0 & !(0xFu64 << shift)) | ((tile as u64) << shift))
    }

    /// The blank's cell.
    pub fn blank(self) -> u8 {
        (0..16).find(|&c| self.get(c) == 0).expect("every board has a blank")
    }

    /// Unpack to a tile array.
    pub fn to_tiles(self) -> [u8; 16] {
        std::array::from_fn(|i| self.get(i as u8))
    }

    /// Slide: move the blank at `blank` in direction `m`, returning the new
    /// board and blank cell, or `None` if the move leaves the board.
    pub fn slide(self, blank: u8, m: Move) -> Option<(Board, u8)> {
        let target = m.apply(blank)?;
        let tile = self.get(target);
        Some((self.set(blank, tile).set(target, 0), target))
    }

    /// Sum of Manhattan distances of all tiles from their goal cells — the
    /// admissible, consistent heuristic of the paper's IDA\*.
    pub fn manhattan(self) -> u32 {
        let mut h = 0u32;
        for cell in 0..16u8 {
            let t = self.get(cell);
            if t != 0 {
                h += manhattan_tile(t, cell);
            }
        }
        h
    }

    /// Whether this position can reach [`GOAL`]: inversion parity of the
    /// tile sequence must match the blank's row parity (standard 4×4
    /// solvability criterion).
    pub fn is_solvable(self) -> bool {
        let tiles = self.to_tiles();
        let mut inversions = 0u32;
        for i in 0..16 {
            for j in i + 1..16 {
                if tiles[i] != 0 && tiles[j] != 0 && tiles[i] > tiles[j] {
                    inversions += 1;
                }
            }
        }
        // With the blank's goal cell at index 0 (row 0), a position is
        // solvable iff inversions + blank_row is even.
        let blank_row = (self.blank() / 4) as u32;
        (inversions + blank_row).is_multiple_of(2)
    }
}

impl std::fmt::Display for Board {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        for r in 0..4 {
            for c in 0..4 {
                let t = self.get(r * 4 + c);
                if t == 0 {
                    write!(f, "  .")?;
                } else {
                    write!(f, " {t:2}")?;
                }
            }
            writeln!(f)?;
        }
        Ok(())
    }
}

/// Manhattan distance of `tile` (1..=15) placed at `cell` from its goal
/// cell (tile `t` belongs at cell `t` under the Korf goal convention).
pub fn manhattan_tile(tile: u8, cell: u8) -> u32 {
    debug_assert!((1..16).contains(&tile));
    let (gr, gc) = (tile / 4, tile % 4);
    let (r, c) = (cell / 4, cell % 4);
    (gr.abs_diff(r) + gc.abs_diff(c)) as u32
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn goal_round_trips() {
        let tiles: [u8; 16] = std::array::from_fn(|i| i as u8);
        assert_eq!(Board::from_tiles(&tiles), GOAL);
        assert_eq!(GOAL.to_tiles(), tiles);
        assert_eq!(GOAL.blank(), 0);
        assert_eq!(GOAL.manhattan(), 0);
        assert!(GOAL.is_solvable());
    }

    #[test]
    fn get_set_are_inverse() {
        let b = GOAL.set(5, 0xA).set(10, 5);
        assert_eq!(b.get(5), 0xA);
        assert_eq!(b.get(10), 5);
        assert_eq!(b.get(0), 0);
    }

    #[test]
    fn move_apply_respects_edges() {
        assert_eq!(Move::Up.apply(0), None);
        assert_eq!(Move::Left.apply(0), None);
        assert_eq!(Move::Down.apply(0), Some(4));
        assert_eq!(Move::Right.apply(0), Some(1));
        assert_eq!(Move::Down.apply(15), None);
        assert_eq!(Move::Right.apply(15), None);
        assert_eq!(Move::Up.apply(15), Some(11));
        assert_eq!(Move::Left.apply(7), Some(6));
        assert_eq!(Move::Right.apply(3), None, "no wrap across row ends");
    }

    #[test]
    fn inverse_is_involutive() {
        for m in Move::ALL {
            assert_eq!(m.inverse().inverse(), m);
            assert_ne!(m.inverse(), m);
        }
    }

    #[test]
    fn slide_swaps_blank_and_tile() {
        let (b, blank) = GOAL.slide(0, Move::Down).unwrap();
        assert_eq!(blank, 4);
        assert_eq!(b.get(0), 4, "tile 4 slid into the old blank cell");
        assert_eq!(b.get(4), 0);
        // Sliding back restores the goal.
        let (b2, blank2) = b.slide(blank, Move::Up).unwrap();
        assert_eq!(b2, GOAL);
        assert_eq!(blank2, 0);
    }

    #[test]
    fn manhattan_counts_displacement() {
        // Move tile 4 from cell 4 to cell 0: distance 1.
        let (b, _) = GOAL.slide(0, Move::Down).unwrap();
        assert_eq!(b.manhattan(), 1);
        // Tile 15 at cell 0 is 3+3 away from cell 15.
        assert_eq!(manhattan_tile(15, 0), 6);
        assert_eq!(manhattan_tile(1, 1), 0);
    }

    #[test]
    fn single_move_flips_solvability_never() {
        // Legal moves preserve solvability.
        let mut b = GOAL;
        let mut blank = 0u8;
        for m in [Move::Down, Move::Right, Move::Down, Move::Left, Move::Up] {
            let (nb, nblank) = b.slide(blank, m).unwrap();
            b = nb;
            blank = nblank;
            assert!(b.is_solvable());
        }
    }

    #[test]
    fn tile_swap_makes_unsolvable() {
        // Swapping two non-blank tiles flips parity.
        let mut tiles = GOAL.to_tiles();
        tiles.swap(1, 2);
        assert!(!Board::from_tiles(&tiles).is_solvable());
    }

    #[test]
    #[should_panic(expected = "permutation")]
    fn duplicate_tiles_rejected() {
        let mut tiles: [u8; 16] = std::array::from_fn(|i| i as u8);
        tiles[3] = 5;
        let _ = Board::from_tiles(&tiles);
    }

    #[test]
    fn display_draws_grid() {
        let s = GOAL.to_string();
        assert!(s.contains('.'), "blank shown as a dot");
        assert!(s.contains("15"));
        assert_eq!(s.lines().count(), 4);
    }
}
