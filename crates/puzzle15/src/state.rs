//! The 15-puzzle as a [`HeuristicProblem`], with the standard IDA\*
//! refinements: incrementally maintained Manhattan distance and
//! inverse-move pruning (never undo the move that created a node — this
//! keeps the search tree free of trivial 2-cycles, as in Korf 1985 and in
//! the paper's parallel IDA\*).

use serde::{Deserialize, Serialize};
use uts_tree::HeuristicProblem;

#[cfg(test)]
use crate::board::GOAL;
use crate::board::{manhattan_tile, Board, Move};

/// A search state: board, cached blank cell, cached heuristic, and the move
/// that produced it (for inverse pruning).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct PuzzleState {
    /// Current board.
    pub board: Board,
    /// Cell of the blank (cached).
    pub blank: u8,
    /// Manhattan distance to the goal (cached, maintained incrementally).
    pub h: u16,
    /// Move that created this state, `None` at the root.
    pub last: Option<Move>,
}

impl uts_tree::CkptNode for PuzzleState {
    fn encode_node(&self, out: &mut Vec<u8>) {
        uts_tree::codec::put_u64(out, self.board.0);
        out.push(self.blank);
        uts_tree::codec::put_u16(out, self.h);
        // Move as one byte: 0..=3 per its repr, 4 for None.
        out.push(self.last.map_or(4, |m| m as u8));
    }
    fn decode_node(r: &mut uts_tree::Reader<'_>) -> Result<Self, uts_tree::CodecError> {
        let board = Board(r.u64()?);
        let blank = r.u8()?;
        let h = r.u16()?;
        let last = match r.u8()? {
            0 => Some(Move::Up),
            1 => Some(Move::Down),
            2 => Some(Move::Left),
            3 => Some(Move::Right),
            4 => None,
            _ => return Err(uts_tree::CodecError::Malformed("Move byte not 0..=4")),
        };
        Ok(Self { board, blank, h, last })
    }
}

impl PuzzleState {
    /// Build a root state from a board.
    pub fn new(board: Board) -> Self {
        Self { board, blank: board.blank(), h: board.manhattan() as u16, last: None }
    }

    /// Apply `m`, returning the successor state, or `None` if `m` leaves
    /// the board or undoes the move that created `self`.
    pub fn step(&self, m: Move) -> Option<PuzzleState> {
        if self.last == Some(m.inverse()) {
            return None;
        }
        let target = m.apply(self.blank)?;
        let tile = self.board.get(target);
        let board = self.board.set(self.blank, tile).set(target, 0);
        // The tile moved target -> old blank cell; adjust h by the delta.
        let h = self.h as i32 - manhattan_tile(tile, target) as i32
            + manhattan_tile(tile, self.blank) as i32;
        debug_assert!(h >= 0);
        Some(PuzzleState { board, blank: target, h: h as u16, last: Some(m) })
    }

    /// Whether this state is the goal (Manhattan distance 0 iff solved).
    pub fn is_goal(&self) -> bool {
        self.h == 0
    }
}

/// The 15-puzzle problem instance (a start board).
#[derive(Debug, Clone, Copy, Serialize, Deserialize)]
pub struct Puzzle15 {
    start: Board,
}

impl Puzzle15 {
    /// Problem starting from `board`.
    ///
    /// # Panics
    /// Panics if `board` cannot reach the goal (wrong parity) — searching
    /// an unsolvable instance would deepen forever.
    pub fn new(board: Board) -> Self {
        assert!(board.is_solvable(), "unsolvable 15-puzzle instance");
        Self { start: board }
    }

    /// The start board.
    pub fn start(&self) -> Board {
        self.start
    }
}

impl HeuristicProblem for Puzzle15 {
    type State = PuzzleState;

    fn initial(&self) -> PuzzleState {
        PuzzleState::new(self.start)
    }

    fn h(&self, s: &PuzzleState) -> u32 {
        s.h as u32
    }

    fn successors(&self, s: &PuzzleState, out: &mut Vec<(PuzzleState, u32)>) {
        for m in Move::ALL {
            if let Some(next) = s.step(m) {
                out.push((next, 1));
            }
        }
    }

    fn is_goal(&self, s: &PuzzleState) -> bool {
        s.is_goal()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;
    use uts_tree::ida::ida_star;

    fn scramble(moves: &[Move]) -> PuzzleState {
        let mut s = PuzzleState::new(GOAL);
        for &m in moves {
            if let Some(n) = s.step(m) {
                s = n;
            }
        }
        PuzzleState::new(s.board) // strip `last` so all moves are legal
    }

    #[test]
    fn root_state_caches_consistently() {
        let s = PuzzleState::new(GOAL);
        assert_eq!(s.blank, 0);
        assert_eq!(s.h, 0);
        assert!(s.is_goal());
    }

    #[test]
    fn incremental_h_matches_recompute() {
        let mut s = PuzzleState::new(GOAL);
        for m in [Move::Down, Move::Right, Move::Down, Move::Left, Move::Up, Move::Right] {
            if let Some(n) = s.step(m) {
                assert_eq!(n.h as u32, n.board.manhattan(), "after {m:?}");
                assert_eq!(n.blank, n.board.blank());
                s = n;
            }
        }
    }

    #[test]
    fn inverse_move_is_pruned() {
        let s = PuzzleState::new(GOAL).step(Move::Down).unwrap();
        assert_eq!(s.step(Move::Up), None, "must not undo the generating move");
        assert!(s.step(Move::Down).is_some());
    }

    #[test]
    fn successors_exclude_inverse_and_off_board() {
        let p = Puzzle15::new(GOAL);
        let root = p.initial();
        let mut succ = Vec::new();
        p.successors(&root, &mut succ);
        // Blank at corner 0: only Down and Right.
        assert_eq!(succ.len(), 2);
        // From a child, the inverse is pruned: blank at 4 has Up/Down/Right
        // minus the inverse (Up) = 2 moves.
        let child = root.step(Move::Down).unwrap();
        succ.clear();
        p.successors(&child, &mut succ);
        assert_eq!(succ.len(), 2);
    }

    #[test]
    fn ida_star_solves_short_scrambles_optimally() {
        // A 3-move scramble (no backtracking) has optimal cost 3 with
        // Manhattan: each move displaces a distinct tile by one.
        let s = scramble(&[Move::Down, Move::Right, Move::Down]);
        let p = Puzzle15::new(s.board);
        let r = ida_star(&p, 80);
        assert_eq!(r.solution_cost, Some(3));
    }

    #[test]
    fn ida_star_on_goal_is_trivial() {
        let p = Puzzle15::new(GOAL);
        let r = ida_star(&p, 80);
        assert_eq!(r.solution_cost, Some(0));
        assert_eq!(r.final_iteration().expanded, 1);
    }

    #[test]
    #[should_panic(expected = "unsolvable")]
    fn unsolvable_instance_rejected() {
        let mut tiles = GOAL.to_tiles();
        tiles.swap(1, 2);
        let _ = Puzzle15::new(Board::from_tiles(&tiles));
    }

    proptest! {
        /// Manhattan never exceeds the scramble length (admissibility
        /// against a known upper bound on the true distance).
        #[test]
        fn h_is_bounded_by_scramble_length(moves in proptest::collection::vec(0u8..4, 0..40)) {
            let mut s = PuzzleState::new(GOAL);
            let mut applied = 0u32;
            for &mi in &moves {
                let m = Move::ALL[mi as usize];
                if let Some(n) = s.step(m) {
                    s = n;
                    applied += 1;
                }
            }
            prop_assert!(s.h as u32 <= applied, "h={} > moves={}", s.h, applied);
        }

        /// The heuristic is consistent: |h(s) - h(s')| <= 1 across a move.
        #[test]
        fn h_is_consistent(moves in proptest::collection::vec(0u8..4, 1..60)) {
            let mut s = PuzzleState::new(GOAL);
            for &mi in &moves {
                let m = Move::ALL[mi as usize];
                if let Some(n) = s.step(m) {
                    prop_assert!((n.h as i32 - s.h as i32).abs() <= 1);
                    s = n;
                }
            }
        }

        /// Legal move sequences keep the board a solvable permutation.
        #[test]
        fn moves_preserve_solvability(moves in proptest::collection::vec(0u8..4, 0..60)) {
            let mut s = PuzzleState::new(GOAL);
            for &mi in &moves {
                if let Some(n) = s.step(Move::ALL[mi as usize]) {
                    s = n;
                }
            }
            let tiles = s.board.to_tiles();
            let mut seen = [false; 16];
            for &t in &tiles {
                prop_assert!(!seen[t as usize]);
                seen[t as usize] = true;
            }
            prop_assert!(s.board.is_solvable());
        }
    }
}
