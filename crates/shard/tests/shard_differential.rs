//! Cross-process differential suite: the sharded machine must reproduce
//! the single-process macro engine **bit-identically** (full [`Outcome`],
//! ledger included) at every shard count, and its parked snapshots must
//! be interchangeable with the in-process checkpoint format.
//!
//! `harness = false` because this binary is its own worker executable:
//! `run_sharded` re-executes `current_exe()` with the worker mode switch
//! set, so `main` must call [`uts_shard::maybe_run_worker`] before
//! anything else.
//!
//! [`Outcome`]: uts_core::Outcome

use std::path::PathBuf;

use uts_ckpt::spill;
use uts_core::{resume_from_bytes, run, EngineConfig, Scheme};
use uts_machine::CostModel;
use uts_puzzle15::Puzzle15;
use uts_shard::{
    resume_sharded, run_sharded, ParkPolicy, ShardError, ShardOpts, ShardWorkload, WorkerKill,
};
use uts_synthgen::GenTree;
use uts_tree::ida::ida_star;
use uts_tree::problem::BoundedProblem;
use uts_tree::SplitPolicy;

fn main() {
    uts_shard::maybe_run_worker();

    utsgen_matches_macro_engine();
    split_policies_match();
    mesh_topology_matches();
    puzzle_matches_macro_engine();
    parked_snapshots_are_interchangeable();
    killed_worker_resumes_from_spill();
    println!("shard_differential: all ok");
}

/// A self-cleaning scratch directory for spill parking.
struct TempDir(PathBuf);

impl TempDir {
    fn new(tag: &str) -> TempDir {
        let dir = std::env::temp_dir().join(format!("uts-shard-diff-{tag}-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).expect("create temp dir");
        TempDir(dir)
    }
}

impl Drop for TempDir {
    fn drop(&mut self) {
        let _ = std::fs::remove_dir_all(&self.0);
    }
}

fn opts(shards: usize) -> ShardOpts {
    ShardOpts { shards, park: None, kill: None }
}

/// Fully-instrumented config: ledger, horizon log and trace all feed the
/// `Outcome` equality, so any scheduling divergence shows up.
fn instrumented(p: usize, scheme: Scheme, cost: CostModel) -> EngineConfig {
    EngineConfig::new(p, scheme, cost).with_ledger().with_horizon_log().with_trace()
}

fn utsgen_matches_macro_engine() {
    let tree = GenTree::geometric(11, 8, 7);
    let workload = ShardWorkload::from(tree);
    for scheme in [Scheme::gp_dk(), Scheme::ngp_dk(), Scheme::gp_dp(), Scheme::fegs()] {
        let cfg = instrumented(64, scheme, CostModel::cm2());
        let want = run(&tree, &cfg);
        for shards in [1usize, 2, 4] {
            let got = run_sharded(&workload, &cfg, &opts(shards)).expect("sharded run");
            assert_eq!(
                got.outcome,
                want,
                "scheme {} with {shards} shard(s) diverged",
                cfg.scheme.name()
            );
            assert_eq!(got.stats.shards, shards);
        }
        println!("utsgen {} x shards {{1,2,4}}: bit-identical", cfg.scheme.name());
    }
}

fn split_policies_match() {
    let tree = GenTree::geometric(3, 8, 7);
    let workload = ShardWorkload::from(tree);
    for split in [SplitPolicy::Bottom, SplitPolicy::Half, SplitPolicy::Top] {
        let cfg = instrumented(48, Scheme::gp_dk(), CostModel::cm2()).with_split(split);
        let want = run(&tree, &cfg);
        // 3 shards over 48 PEs also exercises uneven slab arithmetic.
        let got = run_sharded(&workload, &cfg, &opts(3)).expect("sharded run");
        assert_eq!(got.outcome, want, "split {split:?} diverged");
    }
    println!("split policies x 3 shards: bit-identical");
}

fn mesh_topology_matches() {
    let tree = GenTree::geometric(7, 8, 7);
    let workload = ShardWorkload::from(tree);
    let cfg = instrumented(64, Scheme::ngp_dk(), CostModel::mesh());
    let want = run(&tree, &cfg);
    let got = run_sharded(&workload, &cfg, &opts(2)).expect("sharded run");
    assert_eq!(got.outcome, want, "mesh run diverged");
    // Every balancing phase must carry measured routing provenance.
    assert_eq!(got.stats.phases.len() as u64, want.report.n_lb, "one RoutedPhase per lb phase");
    if want.report.n_transfers > 0 {
        assert!(got.stats.route_total.steps > 0, "transfers happened but none were routed");
    }
    println!("mesh topology x 2 shards: bit-identical ({} routed phases)", got.stats.phases.len());
}

fn puzzle_matches_macro_engine() {
    let inst = uts_puzzle15::scrambled(42, 24);
    let puzzle = Puzzle15::new(inst.board());
    let bound = ida_star(&puzzle, 80).solution_cost.expect("solvable");
    let cfg = instrumented(32, Scheme::gp_dk(), CostModel::cm2());
    let want = run(&BoundedProblem::new(&puzzle, bound), &cfg);
    let workload = ShardWorkload::Puzzle { board: inst.board().0, bound };
    for shards in [1usize, 4] {
        let got = run_sharded(&workload, &cfg, &opts(shards)).expect("sharded run");
        assert_eq!(got.outcome, want, "puzzle with {shards} shard(s) diverged");
    }
    println!("15-puzzle (bound {bound}) x shards {{1,4}}: bit-identical");
}

fn parked_snapshots_are_interchangeable() {
    let tmp = TempDir::new("park");
    let tree = GenTree::geometric(5, 8, 7);
    let workload = ShardWorkload::from(tree);
    let cfg = instrumented(32, Scheme::gp_dk(), CostModel::cm2());
    let want = run(&tree, &cfg);

    let mut with_park = opts(2);
    with_park.park = Some(ParkPolicy { dir: tmp.0.clone(), every: 2 });
    let got = run_sharded(&workload, &cfg, &with_park).expect("parking run");
    assert_eq!(got.outcome, want, "parking must not perturb the run");

    let jobs = spill::parked_jobs(&tmp.0).expect("list spill dir");
    assert!(!jobs.is_empty(), "boundary parks were written");
    let mid = jobs[jobs.len() / 2];
    let bytes = spill::unpark(&tmp.0, mid).expect("read parked snapshot");

    // The same bytes resume under the single-process engine...
    let resumed = resume_from_bytes(&tree, &cfg, &bytes).expect("in-process resume");
    assert_eq!(resumed, want, "in-process resume of a sharded park diverged");
    // ...and under the sharded machine at a different shard count.
    let resharded = resume_sharded(&workload, &cfg, &opts(3), &bytes).expect("sharded resume");
    assert_eq!(resharded.outcome, want, "re-sharded resume diverged");
    println!(
        "park interchange (boundary {mid} of {} parks): single-process and 3-shard resumes identical",
        jobs.len()
    );
}

fn killed_worker_resumes_from_spill() {
    let tmp = TempDir::new("kill");
    let tree = GenTree::geometric(5, 8, 7);
    let workload = ShardWorkload::from(tree);
    let cfg = instrumented(32, Scheme::gp_dk(), CostModel::cm2());
    let want = run(&tree, &cfg);
    assert!(want.macro_steps.len() > 5, "workload long enough to kill mid-run");

    let mut doomed = opts(2);
    doomed.park = Some(ParkPolicy { dir: tmp.0.clone(), every: 1 });
    doomed.kill = Some(WorkerKill { shard: 1, at_burst: 4 });
    match run_sharded(&workload, &cfg, &doomed) {
        Err(ShardError::WorkerLost { shard, .. }) => assert_eq!(shard, 1),
        other => panic!("expected WorkerLost, got {other:?}"),
    }

    let jobs = spill::parked_jobs(&tmp.0).expect("list spill dir");
    let last = *jobs.last().expect("at least one boundary parked before the kill");
    let bytes = spill::unpark(&tmp.0, last).expect("read parked snapshot");
    let recovered = resume_sharded(&workload, &cfg, &opts(2), &bytes).expect("recovery resume");
    assert_eq!(recovered.outcome, want, "recovery from the spill diverged");
    println!("SIGKILL at burst 4, recovered from boundary {last}: bit-identical");
}
