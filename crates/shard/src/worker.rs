//! The worker half of the sharded machine: one OS process owning a
//! contiguous slab of PEs.
//!
//! A worker is the *search phase* of the engine and nothing else: it holds
//! a [`StackArena`] over its `[lo, hi)` range, runs
//! [`uts_core::expansion_burst`] when told to, and applies the splits the
//! coordinator's balancing phase decided. It makes **no** scheduling
//! decisions — the horizon, the trigger, the matching and the transfer
//! counts all arrive over the wire, which is what keeps the lockstep
//! schedule deterministic at any shard count (DESIGN.md §13).
//!
//! Workers are spawned by re-executing the host binary
//! (`std::env::current_exe()`) with [`WORKER_ENV`] set; any binary that
//! wants to coordinate shards calls [`maybe_run_worker`] first thing in
//! `main`. All parameters arrive in the [`Hello`] frame on stdin, so the
//! environment variable is just a mode switch.

use std::io::{Read, Write};

use uts_ckpt::wire::{FrameReader, FrameWriter, WireError};
use uts_core::expansion_burst;
use uts_puzzle15::{Board, Puzzle15};
use uts_tree::problem::BoundedProblem;
use uts_tree::{CkptNode, CodecError, PeSlab, Reader, SearchStack, StackArena, TreeProblem};

use crate::proto::{
    decode_burst, decode_count_extract, decode_count_local, decode_split_extract,
    decode_split_pairs, decode_stack_entries, encode_count_reply, encode_extract_reply,
    encode_install_reply, encode_local_split_reply, tag, BurstReply, ExtractReply, Hello,
    LocalSplitReply, ShardWorkload,
};

/// Mode-switch environment variable: when set, the process is a shard
/// worker and must serve the wire protocol on stdin/stdout instead of
/// running its own `main`.
pub const WORKER_ENV: &str = "UTS_SHARD_WORKER";

/// Run the worker protocol and exit iff [`WORKER_ENV`] is set; return
/// immediately otherwise. Every binary that spawns shards (the `sts` CLI,
/// the benches, the differential suite) calls this first thing in `main`.
pub fn maybe_run_worker() {
    if std::env::var_os(WORKER_ENV).is_none() {
        return;
    }
    let stdin = std::io::BufReader::new(std::io::stdin().lock());
    let stdout = std::io::BufWriter::new(std::io::stdout().lock());
    match serve(stdin, stdout) {
        Ok(()) => std::process::exit(0),
        Err(e) => {
            eprintln!("uts-shard worker: {e}");
            std::process::exit(3);
        }
    }
}

/// A worker-side protocol failure.
#[derive(Debug)]
pub enum WorkerError {
    /// The transport failed (truncated/corrupt/reordered frame, broken
    /// pipe).
    Wire(WireError),
    /// A frame arrived intact but its payload failed to decode.
    Codec(CodecError),
    /// A frame tag outside the request grammar (or a duplicate `HELLO`).
    UnexpectedTag(u8),
}

impl std::fmt::Display for WorkerError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            WorkerError::Wire(e) => write!(f, "wire: {e}"),
            WorkerError::Codec(e) => write!(f, "payload: {e}"),
            WorkerError::UnexpectedTag(t) => write!(f, "unexpected request tag {t}"),
        }
    }
}

impl std::error::Error for WorkerError {}

impl From<WireError> for WorkerError {
    fn from(e: WireError) -> Self {
        WorkerError::Wire(e)
    }
}

impl From<CodecError> for WorkerError {
    fn from(e: CodecError) -> Self {
        WorkerError::Codec(e)
    }
}

/// Serve the shard protocol over an arbitrary transport (tests drive this
/// in-process over pipes; [`maybe_run_worker`] binds it to stdin/stdout).
pub fn serve<R: Read, W: Write>(reader: R, writer: W) -> Result<(), WorkerError> {
    let mut reader = FrameReader::new(reader);
    let mut writer = FrameWriter::new(writer);
    let mut buf = Vec::new();
    let t = reader.recv(&mut buf)?;
    if t != tag::HELLO {
        return Err(WorkerError::UnexpectedTag(t));
    }
    let hello = Hello::decode(&buf)?;
    writer.send(tag::HELLO, &[])?;
    match hello.workload {
        ShardWorkload::Puzzle { board, bound } => {
            let puzzle = Puzzle15::new(Board(board));
            let problem = BoundedProblem::new(&puzzle, bound);
            serve_problem(&problem, &hello, &mut reader, &mut writer)
        }
        ShardWorkload::UtsGen(tree) => serve_problem(&tree, &hello, &mut reader, &mut writer),
    }
}

/// The monomorphized request loop over one slab.
fn serve_problem<P, R, W>(
    problem: &P,
    hello: &Hello,
    reader: &mut FrameReader<R>,
    writer: &mut FrameWriter<W>,
) -> Result<(), WorkerError>
where
    P: TreeProblem,
    P::Node: CkptNode,
    R: Read,
    W: Write,
{
    let local_p = (hello.hi - hello.lo) as usize;
    let mut stacks: Vec<SearchStack<P::Node>> = (0..local_p).map(|_| SearchStack::new()).collect();
    if hello.seed_root && hello.lo == 0 && local_p > 0 {
        stacks[0] = SearchStack::from_root(problem.root());
    }
    let mut arena = StackArena::from_stacks(stacks);

    let mut buf = Vec::new();
    let mut payload = Vec::new();
    let mut active: Vec<usize> = Vec::new();
    let mut started: Vec<usize> = Vec::new();
    let mut deaths: Vec<u64> = Vec::new();
    let mut bursts_seen = 0u64;

    loop {
        let t = reader.recv(&mut buf)?;
        payload.clear();
        match t {
            tag::BURST => {
                bursts_seen += 1;
                if hello.kill_at_burst == Some(bursts_seen) {
                    die_hard();
                }
                let h = decode_burst(&buf)?;
                active.clear();
                active.extend((0..local_p).filter(|&i| arena.len_of(i) > 0));
                started.clear();
                started.extend_from_slice(&active);
                let mut goals = 0u64;
                let mut peak = 0usize;
                expansion_burst(
                    problem,
                    &mut arena,
                    &mut active,
                    h,
                    &mut goals,
                    &mut peak,
                    &mut deaths,
                );
                let reply = BurstReply {
                    started: started.len() as u64,
                    goals,
                    peak: peak as u64,
                    deaths: std::mem::take(&mut deaths),
                    changed: started.iter().map(|&i| (i as u32, arena.lens()[i])).collect(),
                };
                reply.encode(&mut payload);
                deaths = reply.deaths;
                writer.send(tag::BURST, &payload)?;
            }
            tag::SPLIT_PAIRS => {
                let (policy, pairs) = decode_split_pairs(&buf)?;
                let mut entries = Vec::with_capacity(pairs.len());
                for &(d, rcv) in &pairs {
                    let ok = arena.split_into(d as usize, rcv as usize, policy);
                    entries.push(LocalSplitReply {
                        moved: ok as u64,
                        donor_len: arena.lens()[d as usize],
                        receiver_len: arena.lens()[rcv as usize],
                    });
                }
                encode_local_split_reply(&mut payload, &entries);
                writer.send(tag::SPLIT_PAIRS, &payload)?;
            }
            tag::COUNT_LOCAL => {
                let reqs = decode_count_local(&buf)?;
                let mut entries = Vec::with_capacity(reqs.len());
                for &(d, rcv, k) in &reqs {
                    let moved = arena.split_count_into(d as usize, rcv as usize, k as usize);
                    entries.push(LocalSplitReply {
                        moved: moved as u64,
                        donor_len: arena.lens()[d as usize],
                        receiver_len: arena.lens()[rcv as usize],
                    });
                }
                encode_local_split_reply(&mut payload, &entries);
                writer.send(tag::COUNT_LOCAL, &payload)?;
            }
            tag::SPLIT_EXTRACT => {
                let (policy, donors) = decode_split_extract(&buf)?;
                let mut entries = Vec::with_capacity(donors.len());
                for &d in &donors {
                    let mut scratch = PeSlab::new();
                    let (slabs, lens) = arena.parts_mut();
                    let ok = slabs[d as usize].split_into(policy, &mut scratch);
                    lens[d as usize] = slabs[d as usize].len() as u32;
                    let donor_len = lens[d as usize];
                    let mut stack = Vec::new();
                    if ok {
                        scratch.encode_stack(&mut stack);
                    }
                    entries.push(ExtractReply {
                        moved: if ok { scratch.len() as u64 } else { 0 },
                        donor_len,
                        stack,
                    });
                }
                encode_extract_reply(&mut payload, &entries);
                writer.send(tag::SPLIT_EXTRACT, &payload)?;
            }
            tag::COUNT_EXTRACT => {
                let reqs = decode_count_extract(&buf)?;
                let mut entries = Vec::with_capacity(reqs.len());
                for &(d, k) in &reqs {
                    let mut scratch = PeSlab::new();
                    let (slabs, lens) = arena.parts_mut();
                    let moved = slabs[d as usize].split_count_into(k as usize, &mut scratch);
                    lens[d as usize] = slabs[d as usize].len() as u32;
                    let donor_len = lens[d as usize];
                    let mut stack = Vec::new();
                    if moved > 0 {
                        scratch.encode_stack(&mut stack);
                    }
                    entries.push(ExtractReply { moved: moved as u64, donor_len, stack });
                }
                encode_extract_reply(&mut payload, &entries);
                writer.send(tag::COUNT_EXTRACT, &payload)?;
            }
            tag::INSTALL => {
                let entries = decode_stack_entries(&buf)?;
                let mut lens_out = Vec::with_capacity(entries.len());
                for (pe, stack_bytes) in &entries {
                    let pe = *pe as usize;
                    let stack = decode_one_stack::<P::Node>(stack_bytes)?;
                    // Appending the donated frames in encoded (bottom-first)
                    // order on top of the receiver reproduces the in-process
                    // split_into / split_count_into receiver layout exactly.
                    for frame in stack.into_frames() {
                        arena.push_frame_with(pe, |out| out.extend(frame));
                    }
                    lens_out.push(arena.lens()[pe]);
                }
                encode_install_reply(&mut payload, &lens_out);
                writer.send(tag::INSTALL, &payload)?;
            }
            tag::LOAD => {
                let entries = decode_stack_entries(&buf)?;
                let n = entries.len() as u64;
                for (pe, stack_bytes) in &entries {
                    let pe = *pe as usize;
                    let stack = decode_one_stack::<P::Node>(stack_bytes)?;
                    let (slabs, lens) = arena.parts_mut();
                    slabs[pe] = PeSlab::from_stack(stack);
                    lens[pe] = slabs[pe].len() as u32;
                }
                encode_count_reply(&mut payload, n);
                writer.send(tag::LOAD, &payload)?;
            }
            tag::ENCODE => {
                for i in 0..local_p {
                    arena.encode_pe(i, &mut payload);
                }
                writer.send(tag::ENCODE, &payload)?;
            }
            tag::SHUTDOWN => {
                writer.send(tag::SHUTDOWN, &[])?;
                return Ok(());
            }
            other => return Err(WorkerError::UnexpectedTag(other)),
        }
    }
}

fn decode_one_stack<N: CkptNode>(bytes: &[u8]) -> Result<SearchStack<N>, WorkerError> {
    let mut r = Reader::new(bytes);
    let stack = SearchStack::<N>::decode_node(&mut r)?;
    if !r.is_done() {
        return Err(WorkerError::Codec(CodecError::Malformed(
            "trailing bytes after a donated stack",
        )));
    }
    Ok(stack)
}

/// Die without unwinding or flushing, as a real machine fault would:
/// SIGKILL ourselves (abort as a fallback). The coordinator observes the
/// broken pipe.
fn die_hard() -> ! {
    let pid = std::process::id().to_string();
    let _ = std::process::Command::new("kill").args(["-9", &pid]).status();
    std::process::abort();
}
