//! The coordinator half of the sharded machine.
//!
//! [`run_sharded`] splits the PE array into `shards` contiguous ranges,
//! spawns one worker process per range (re-executing the current binary
//! with [`crate::worker::WORKER_ENV`] set), and drives
//! [`uts_core::LockstepDriver`] over them: the census a burst returns
//! feeds `compute_horizon`, the trigger and matcher run coordinator-side,
//! and the balancing phase's splits execute remotely through
//! [`RemoteStore`] (an implementation of [`uts_core::StackStore`] over a
//! dense length mirror plus wire messages). Because the driver *is* the
//! macro engine minus the stacks, the sharded [`Outcome`] is bit-identical
//! to [`uts_core::run`] at any shard count — the differential suite
//! enforces this.
//!
//! Every transferred pair is also routed as a [`uts_net::Message`] through
//! the simulated interconnect (hypercube for CM-2/hypercube cost models —
//! the CM-2's router *is* a hypercube of router chips — XY mesh
//! otherwise), so each balancing phase carries measured
//! [`RouteStats`] provenance next to the cost model's closed-form guess
//! ([`RoutedPhase`]).

use std::io::{BufReader, BufWriter};
use std::path::PathBuf;
use std::process::{Child, ChildStdin, ChildStdout, Command, Stdio};

use uts_ckpt::wire::{FrameReader, FrameWriter, WireError};
use uts_ckpt::{spill, CkptError, EngineSnapshot};
use uts_core::{
    config_fingerprint, CountedMove, EngineConfig, LockstepDriver, MergedBurst, Outcome,
    StackStore, StepStatus,
};
use uts_machine::{LbCostBreakdown, Topology};
use uts_net::hypercube::Hypercube;
use uts_net::mesh::Mesh;
use uts_net::{route, Message, RouteStats};
use uts_puzzle15::PuzzleState;
use uts_scan::Pair;
use uts_synthgen::GenNode;
use uts_tree::{CkptNode, CodecError, SplitPolicy};

use crate::proto::{
    self, encode_burst, encode_count_extract, encode_count_local, encode_install,
    encode_split_extract, encode_split_pairs, tag, BurstReply, Hello, ShardWorkload,
};
use crate::worker::WORKER_ENV;

/// How the coordinator runs the shards.
#[derive(Debug, Clone, Default)]
pub struct ShardOpts {
    /// Number of worker processes (`1..=P`; each owns a contiguous range).
    pub shards: usize,
    /// Park the whole run into a spill directory every Nth macro-step
    /// boundary (the crash-recovery snapshots the kill→resume path reads).
    pub park: Option<ParkPolicy>,
    /// Fault-injection knob: one worker SIGKILLs itself mid-run.
    pub kill: Option<WorkerKill>,
}

/// Spill-parking policy: where and how often.
#[derive(Debug, Clone)]
pub struct ParkPolicy {
    /// Spill directory (created on demand).
    pub dir: PathBuf,
    /// Park every Nth macro-step boundary (0 disables).
    pub every: u64,
}

/// Self-SIGKILL instruction for one worker, for the kill→resume suites.
#[derive(Debug, Clone, Copy)]
pub struct WorkerKill {
    /// Which shard dies.
    pub shard: usize,
    /// On receiving which burst (1-based) it dies.
    pub at_burst: u64,
}

/// A failure of the sharded run.
#[derive(Debug)]
pub enum ShardError {
    /// The options were inconsistent with the config.
    Config(String),
    /// Spawning a worker process failed.
    Spawn(std::io::Error),
    /// A worker's transport failed — it died (or its frames were
    /// corrupted). If the run was parking, the latest spill snapshot
    /// resumes it.
    WorkerLost {
        /// Which shard.
        shard: usize,
        /// The transport error.
        source: WireError,
    },
    /// A worker reply arrived intact but failed to decode.
    Reply {
        /// Which shard.
        shard: usize,
        /// The payload error.
        source: CodecError,
    },
    /// A worker reply carried the wrong tag.
    Protocol {
        /// Which shard.
        shard: usize,
        /// What arrived.
        found: u8,
        /// What the request was.
        expected: u8,
    },
    /// The resume snapshot failed to decode.
    Snapshot(CkptError),
    /// Writing a spill snapshot failed.
    Park(std::io::Error),
}

impl std::fmt::Display for ShardError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ShardError::Config(msg) => write!(f, "shard config: {msg}"),
            ShardError::Spawn(e) => write!(f, "spawning a shard worker: {e}"),
            ShardError::WorkerLost { shard, source } => {
                write!(f, "lost shard {shard}: {source}")
            }
            ShardError::Reply { shard, source } => {
                write!(f, "bad reply from shard {shard}: {source}")
            }
            ShardError::Protocol { shard, found, expected } => {
                write!(f, "shard {shard} replied tag {found} to request tag {expected}")
            }
            ShardError::Snapshot(e) => write!(f, "resume snapshot: {e}"),
            ShardError::Park(e) => write!(f, "parking the run: {e}"),
        }
    }
}

impl std::error::Error for ShardError {}

/// One balancing phase's measured routing provenance, recorded next to
/// the closed-form cost the ledger charged.
#[derive(Debug, Clone, Copy, serde::Serialize)]
pub struct RoutedPhase {
    /// `N_expand` when the phase ran.
    pub at_cycle: u64,
    /// Match+transfer rounds in the phase.
    pub rounds: u32,
    /// Point-to-point transfers routed (one per moved pair).
    pub messages: u64,
    /// Measured routing statistics, summed over the phase's rounds.
    pub route: RouteStats,
    /// What the cost model charged the ledger (closed-form transfer term).
    pub closed_form: LbCostBreakdown,
    /// The same phase re-costed from the measured route steps
    /// ([`uts_machine::CostModel::measured_lb_cost_breakdown`]).
    pub measured: LbCostBreakdown,
}

/// Aggregated provenance of a sharded run.
#[derive(Debug, Clone, Default, serde::Serialize)]
pub struct ShardStats {
    /// Worker process count.
    pub shards: usize,
    /// Per-balancing-phase routing provenance, in schedule order.
    pub phases: Vec<RoutedPhase>,
    /// All phases' routes folded together.
    pub route_total: RouteStats,
}

/// A completed sharded run: the (engine-bit-identical) outcome plus the
/// routing provenance only the sharded machine measures.
#[derive(Debug, Clone)]
pub struct ShardRun {
    /// Exactly what [`uts_core::run`] would have returned.
    pub outcome: Outcome,
    /// Measured per-phase routing next to the closed-form charges.
    pub stats: ShardStats,
}

/// Run `workload` under `cfg` across `opts.shards` worker processes.
/// The outcome is bit-identical to the single-process macro engine.
pub fn run_sharded(
    workload: &ShardWorkload,
    cfg: &EngineConfig,
    opts: &ShardOpts,
) -> Result<ShardRun, ShardError> {
    dispatch(workload, cfg, opts, None)
}

/// Resume a sharded (or single-process — the formats are interchangeable)
/// snapshot across `opts.shards` worker processes.
pub fn resume_sharded(
    workload: &ShardWorkload,
    cfg: &EngineConfig,
    opts: &ShardOpts,
    snapshot: &[u8],
) -> Result<ShardRun, ShardError> {
    dispatch(workload, cfg, opts, Some(snapshot))
}

fn dispatch(
    workload: &ShardWorkload,
    cfg: &EngineConfig,
    opts: &ShardOpts,
    snapshot: Option<&[u8]>,
) -> Result<ShardRun, ShardError> {
    match workload {
        ShardWorkload::Puzzle { .. } => {
            run_generic::<uts_tree::BoundedNode<PuzzleState>>(workload, cfg, opts, snapshot)
        }
        ShardWorkload::UtsGen(_) => run_generic::<GenNode>(workload, cfg, opts, snapshot),
    }
}

/// The contiguous range of shard `s` among `shards` over `p` PEs: sizes
/// differ by at most one, lower shards take the remainder.
pub fn shard_range(p: usize, shards: usize, s: usize) -> (usize, usize) {
    let base = p / shards;
    let rem = p % shards;
    let lo = s * base + s.min(rem);
    let hi = lo + base + usize::from(s < rem);
    (lo, hi)
}

struct Worker {
    shard: usize,
    lo: usize,
    hi: usize,
    child: Child,
    writer: FrameWriter<BufWriter<ChildStdin>>,
    reader: FrameReader<BufReader<ChildStdout>>,
}

impl Worker {
    fn send(&mut self, t: u8, payload: &[u8]) -> Result<(), ShardError> {
        self.writer
            .send(t, payload)
            .map(|_| ())
            .map_err(|source| ShardError::WorkerLost { shard: self.shard, source })
    }

    /// Receive the reply to a request of tag `expected` into `buf`.
    fn recv(&mut self, expected: u8, buf: &mut Vec<u8>) -> Result<(), ShardError> {
        let found = self
            .reader
            .recv(buf)
            .map_err(|source| ShardError::WorkerLost { shard: self.shard, source })?;
        if found != expected {
            return Err(ShardError::Protocol { shard: self.shard, found, expected });
        }
        Ok(())
    }

    fn reply_err(&self, source: CodecError) -> ShardError {
        ShardError::Reply { shard: self.shard, source }
    }
}

impl Drop for Worker {
    fn drop(&mut self) {
        // Reap on every exit path; on the graceful path the child already
        // exited and these are no-ops.
        let _ = self.child.kill();
        let _ = self.child.wait();
    }
}

fn spawn_workers(
    cfg: &EngineConfig,
    opts: &ShardOpts,
    workload: &ShardWorkload,
    seed_root: bool,
) -> Result<Vec<Worker>, ShardError> {
    let exe = std::env::current_exe().map_err(ShardError::Spawn)?;
    let mut workers = Vec::with_capacity(opts.shards);
    for s in 0..opts.shards {
        let (lo, hi) = shard_range(cfg.p, opts.shards, s);
        let mut child = Command::new(&exe)
            .env(WORKER_ENV, "1")
            .stdin(Stdio::piped())
            .stdout(Stdio::piped())
            .stderr(Stdio::inherit())
            .spawn()
            .map_err(ShardError::Spawn)?;
        let stdin = child.stdin.take().expect("piped stdin");
        let stdout = child.stdout.take().expect("piped stdout");
        workers.push(Worker {
            shard: s,
            lo,
            hi,
            child,
            writer: FrameWriter::new(BufWriter::new(stdin)),
            reader: FrameReader::new(BufReader::new(stdout)),
        });
    }
    let mut payload = Vec::new();
    for w in &mut workers {
        let hello = Hello {
            shard: w.shard as u32,
            shards: opts.shards as u32,
            lo: w.lo as u64,
            hi: w.hi as u64,
            split: cfg.split,
            seed_root,
            kill_at_burst: opts.kill.filter(|k| k.shard == w.shard).map(|k| k.at_burst),
            workload: *workload,
        };
        payload.clear();
        hello.encode(&mut payload);
        w.send(tag::HELLO, &payload)?;
    }
    let mut buf = Vec::new();
    for w in &mut workers {
        w.recv(tag::HELLO, &mut buf)?;
    }
    Ok(workers)
}

/// The simulated interconnect transfers route through.
enum RouterKind {
    Hypercube(Hypercube),
    Mesh(Mesh),
}

impl RouterKind {
    fn for_cost(topology: Topology, p: usize) -> Self {
        match topology {
            // The CM-2's general router is itself a hypercube of router
            // chips, so CM-2 traffic is measured on the hypercube too.
            Topology::Cm2 | Topology::Hypercube => RouterKind::Hypercube(Hypercube::new(p)),
            Topology::Mesh => RouterKind::Mesh(Mesh::new(p)),
        }
    }

    fn route(&self, messages: &[Message]) -> RouteStats {
        match self {
            RouterKind::Hypercube(h) => route(h, messages),
            RouterKind::Mesh(m) => route(m, messages),
        }
    }
}

/// [`StackStore`] over the worker fleet: a dense coordinator-side length
/// mirror, updated from the authoritative lengths every reply carries,
/// plus per-round message routing through the simulated interconnect.
///
/// `StackStore`'s methods cannot return errors, so the first transport
/// failure is latched into `err` and every later batch is a no-op
/// (reporting "nothing transferred", which the balancing phase handles
/// gracefully); the coordinator checks the latch when the phase returns.
struct RemoteStore<'a> {
    lens: &'a mut [u32],
    workers: &'a mut [Worker],
    router: &'a RouterKind,
    rounds: u32,
    messages: u64,
    route_stats: RouteStats,
    err: Option<ShardError>,
    msgs: Vec<Message>,
    payload: Vec<u8>,
    buf: Vec<u8>,
}

impl<'a> RemoteStore<'a> {
    fn new(lens: &'a mut [u32], workers: &'a mut [Worker], router: &'a RouterKind) -> Self {
        RemoteStore {
            lens,
            workers,
            router,
            rounds: 0,
            messages: 0,
            route_stats: RouteStats::default(),
            err: None,
            msgs: Vec::new(),
            payload: Vec::new(),
            buf: Vec::new(),
        }
    }

    /// Which shard owns global PE `pe`.
    fn shard_of(&self, pe: usize) -> usize {
        self.workers.partition_point(|w| w.hi <= pe)
    }

    fn route_round(&mut self) {
        if self.msgs.is_empty() {
            return;
        }
        self.messages += self.msgs.len() as u64;
        let stats = self.router.route(&self.msgs);
        self.route_stats.absorb(stats);
        self.msgs.clear();
    }

    /// Run one round's remote exchange; on failure latch the error.
    fn try_round(&mut self, f: impl FnOnce(&mut Self) -> Result<(), ShardError>) {
        if self.err.is_some() {
            return;
        }
        self.rounds += 1;
        if let Err(e) = f(self) {
            self.err = Some(e);
        }
    }
}

/// Per-shard batches for one balancing round: `batch[s]` holds this
/// round's (round index, request) entries owned by shard `s`.
type Batched<T> = Vec<Vec<(usize, T)>>;

impl StackStore for RemoteStore<'_> {
    fn p(&self) -> usize {
        self.lens.len()
    }

    fn lens(&self) -> &[u32] {
        self.lens
    }

    fn split_pairs(&mut self, pairs: &[Pair], policy: SplitPolicy, ok: &mut Vec<bool>) {
        ok.clear();
        ok.resize(pairs.len(), false);
        self.try_round(|store| {
            let nshards = store.workers.len();
            // Partition the round by donor shard: same-shard pairs apply
            // locally, cross-shard donors extract and ship to the receiver.
            let mut local: Batched<(u32, u32)> = vec![Vec::new(); nshards];
            let mut extract: Batched<u32> = vec![Vec::new(); nshards];
            for (idx, pair) in pairs.iter().enumerate() {
                let ds = store.shard_of(pair.donor);
                let rs = store.shard_of(pair.receiver);
                let d_local = (pair.donor - store.workers[ds].lo) as u32;
                if ds == rs {
                    let r_local = (pair.receiver - store.workers[rs].lo) as u32;
                    local[ds].push((idx, (d_local, r_local)));
                } else {
                    extract[ds].push((idx, d_local));
                }
            }
            // Each sub-phase below keeps at most ONE outstanding request
            // per worker: a worker waiting in its request loop drains the
            // frame as it arrives, so the coordinator's sends can never
            // block on a worker that is itself blocked writing a reply.
            // (Sending the extract batch while the pairs reply was still
            // unread deadlocked at P ~ 1M, where both sides of that
            // exchange outgrow the pipe buffer.)
            let mut scratch_pairs: Vec<(u32, u32)> = Vec::new();
            let mut scratch_donors: Vec<u32> = Vec::new();
            for (s, batch) in local.iter().enumerate() {
                if !batch.is_empty() {
                    scratch_pairs.clear();
                    scratch_pairs.extend(batch.iter().map(|&(_, lp)| lp));
                    store.payload.clear();
                    encode_split_pairs(&mut store.payload, policy, &scratch_pairs);
                    let payload = std::mem::take(&mut store.payload);
                    store.workers[s].send(tag::SPLIT_PAIRS, &payload)?;
                    store.payload = payload;
                }
            }
            for (s, batch) in local.iter().enumerate() {
                if !batch.is_empty() {
                    let mut buf = std::mem::take(&mut store.buf);
                    store.workers[s].recv(tag::SPLIT_PAIRS, &mut buf)?;
                    let entries = proto::decode_local_split_reply(&buf)
                        .map_err(|e| store.workers[s].reply_err(e))?;
                    store.buf = buf;
                    if entries.len() != batch.len() {
                        return Err(store.workers[s]
                            .reply_err(CodecError::Malformed("split reply count mismatch")));
                    }
                    for (&(idx, _), e) in batch.iter().zip(&entries) {
                        ok[idx] = e.moved > 0;
                        store.lens[pairs[idx].donor] = e.donor_len;
                        store.lens[pairs[idx].receiver] = e.receiver_len;
                    }
                }
            }
            for (s, batch) in extract.iter().enumerate() {
                if !batch.is_empty() {
                    scratch_donors.clear();
                    scratch_donors.extend(batch.iter().map(|&(_, d)| d));
                    store.payload.clear();
                    encode_split_extract(&mut store.payload, policy, &scratch_donors);
                    let payload = std::mem::take(&mut store.payload);
                    store.workers[s].send(tag::SPLIT_EXTRACT, &payload)?;
                    store.payload = payload;
                }
            }
            // (receiver shard) -> entries awaiting install, with the pair
            // index so `ok` can be confirmed from the receiver's reply.
            let mut installs: Vec<Vec<(usize, u32, Vec<u8>)>> = vec![Vec::new(); nshards];
            for (s, batch) in extract.iter().enumerate() {
                if !batch.is_empty() {
                    let mut buf = std::mem::take(&mut store.buf);
                    store.workers[s].recv(tag::SPLIT_EXTRACT, &mut buf)?;
                    let entries = proto::decode_extract_reply(&buf)
                        .map_err(|e| store.workers[s].reply_err(e))?;
                    store.buf = buf;
                    if entries.len() != batch.len() {
                        return Err(store.workers[s]
                            .reply_err(CodecError::Malformed("extract reply count mismatch")));
                    }
                    for (&(idx, _), e) in batch.iter().zip(entries) {
                        store.lens[pairs[idx].donor] = e.donor_len;
                        if e.moved > 0 {
                            let receiver = pairs[idx].receiver;
                            let rs = store.shard_of(receiver);
                            let r_local = (receiver - store.workers[rs].lo) as u32;
                            installs[rs].push((idx, r_local, e.stack));
                        }
                    }
                }
            }
            // Ship donated stacks to their receiver shards.
            for (s, batch) in installs.iter().enumerate() {
                if batch.is_empty() {
                    continue;
                }
                let entries: Vec<(u32, &[u8])> =
                    batch.iter().map(|(_, r, st)| (*r, st.as_slice())).collect();
                store.payload.clear();
                encode_install(&mut store.payload, &entries);
                let payload = std::mem::take(&mut store.payload);
                store.workers[s].send(tag::INSTALL, &payload)?;
                store.payload = payload;
            }
            for (s, batch) in installs.iter().enumerate() {
                if batch.is_empty() {
                    continue;
                }
                let mut buf = std::mem::take(&mut store.buf);
                store.workers[s].recv(tag::INSTALL, &mut buf)?;
                let lens_back =
                    proto::decode_install_reply(&buf).map_err(|e| store.workers[s].reply_err(e))?;
                store.buf = buf;
                if lens_back.len() != batch.len() {
                    return Err(store.workers[s]
                        .reply_err(CodecError::Malformed("install reply count mismatch")));
                }
                for (&(idx, _, _), &len) in batch.iter().zip(&lens_back) {
                    ok[idx] = true;
                    store.lens[pairs[idx].receiver] = len;
                }
            }
            // Route the round's transfers through the interconnect.
            for (idx, pair) in pairs.iter().enumerate() {
                if ok[idx] {
                    store.msgs.push(Message { src: pair.donor, dst: pair.receiver });
                }
            }
            store.route_round();
            Ok(())
        });
    }

    fn split_counts(&mut self, reqs: &[CountedMove], moved: &mut Vec<usize>) {
        moved.clear();
        moved.resize(reqs.len(), 0);
        self.try_round(|store| {
            let nshards = store.workers.len();
            let mut local: Batched<(u32, u32, u64)> = vec![Vec::new(); nshards];
            let mut extract: Batched<(u32, u64)> = vec![Vec::new(); nshards];
            for (idx, req) in reqs.iter().enumerate() {
                let ds = store.shard_of(req.donor);
                let rs = store.shard_of(req.receiver);
                let d_local = (req.donor - store.workers[ds].lo) as u32;
                if ds == rs {
                    let r_local = (req.receiver - store.workers[rs].lo) as u32;
                    local[ds].push((idx, (d_local, r_local, req.max_nodes as u64)));
                } else {
                    extract[ds].push((idx, (d_local, req.max_nodes as u64)));
                }
            }
            // One outstanding request per worker per sub-phase — see the
            // deadlock note in `split_pairs`.
            let mut scratch_local: Vec<(u32, u32, u64)> = Vec::new();
            let mut scratch_extract: Vec<(u32, u64)> = Vec::new();
            for (s, batch) in local.iter().enumerate() {
                if !batch.is_empty() {
                    scratch_local.clear();
                    scratch_local.extend(batch.iter().map(|&(_, r)| r));
                    store.payload.clear();
                    encode_count_local(&mut store.payload, &scratch_local);
                    let payload = std::mem::take(&mut store.payload);
                    store.workers[s].send(tag::COUNT_LOCAL, &payload)?;
                    store.payload = payload;
                }
            }
            for (s, batch) in local.iter().enumerate() {
                if !batch.is_empty() {
                    let mut buf = std::mem::take(&mut store.buf);
                    store.workers[s].recv(tag::COUNT_LOCAL, &mut buf)?;
                    let entries = proto::decode_local_split_reply(&buf)
                        .map_err(|e| store.workers[s].reply_err(e))?;
                    store.buf = buf;
                    if entries.len() != batch.len() {
                        return Err(store.workers[s]
                            .reply_err(CodecError::Malformed("count reply count mismatch")));
                    }
                    for (&(idx, _), e) in batch.iter().zip(&entries) {
                        moved[idx] = e.moved as usize;
                        store.lens[reqs[idx].donor] = e.donor_len;
                        store.lens[reqs[idx].receiver] = e.receiver_len;
                    }
                }
            }
            for (s, batch) in extract.iter().enumerate() {
                if !batch.is_empty() {
                    scratch_extract.clear();
                    scratch_extract.extend(batch.iter().map(|&(_, r)| r));
                    store.payload.clear();
                    encode_count_extract(&mut store.payload, &scratch_extract);
                    let payload = std::mem::take(&mut store.payload);
                    store.workers[s].send(tag::COUNT_EXTRACT, &payload)?;
                    store.payload = payload;
                }
            }
            let mut installs: Vec<Vec<(usize, u32, Vec<u8>)>> = vec![Vec::new(); nshards];
            for (s, batch) in extract.iter().enumerate() {
                if !batch.is_empty() {
                    let mut buf = std::mem::take(&mut store.buf);
                    store.workers[s].recv(tag::COUNT_EXTRACT, &mut buf)?;
                    let entries = proto::decode_extract_reply(&buf)
                        .map_err(|e| store.workers[s].reply_err(e))?;
                    store.buf = buf;
                    if entries.len() != batch.len() {
                        return Err(store.workers[s].reply_err(CodecError::Malformed(
                            "count extract reply count mismatch",
                        )));
                    }
                    for (&(idx, _), e) in batch.iter().zip(entries) {
                        moved[idx] = e.moved as usize;
                        store.lens[reqs[idx].donor] = e.donor_len;
                        if e.moved > 0 {
                            let receiver = reqs[idx].receiver;
                            let rs = store.shard_of(receiver);
                            let r_local = (receiver - store.workers[rs].lo) as u32;
                            installs[rs].push((idx, r_local, e.stack));
                        }
                    }
                }
            }
            for (s, batch) in installs.iter().enumerate() {
                if batch.is_empty() {
                    continue;
                }
                let entries: Vec<(u32, &[u8])> =
                    batch.iter().map(|(_, r, st)| (*r, st.as_slice())).collect();
                store.payload.clear();
                encode_install(&mut store.payload, &entries);
                let payload = std::mem::take(&mut store.payload);
                store.workers[s].send(tag::INSTALL, &payload)?;
                store.payload = payload;
            }
            for (s, batch) in installs.iter().enumerate() {
                if batch.is_empty() {
                    continue;
                }
                let mut buf = std::mem::take(&mut store.buf);
                store.workers[s].recv(tag::INSTALL, &mut buf)?;
                let lens_back =
                    proto::decode_install_reply(&buf).map_err(|e| store.workers[s].reply_err(e))?;
                store.buf = buf;
                if lens_back.len() != batch.len() {
                    return Err(store.workers[s]
                        .reply_err(CodecError::Malformed("install reply count mismatch")));
                }
                for (&(idx, _, _), &len) in batch.iter().zip(&lens_back) {
                    store.lens[reqs[idx].receiver] = len;
                }
            }
            for (idx, req) in reqs.iter().enumerate() {
                if moved[idx] > 0 {
                    store.msgs.push(Message { src: req.donor, dst: req.receiver });
                }
            }
            store.route_round();
            Ok(())
        });
    }
}

fn run_generic<N: CkptNode>(
    workload: &ShardWorkload,
    cfg: &EngineConfig,
    opts: &ShardOpts,
    snapshot: Option<&[u8]>,
) -> Result<ShardRun, ShardError> {
    if cfg.p == 0 {
        return Err(ShardError::Config("need at least one processor".into()));
    }
    if opts.shards == 0 || opts.shards > cfg.p {
        return Err(ShardError::Config(format!(
            "--shards must be in 1..=P (got {} for P={})",
            opts.shards, cfg.p
        )));
    }
    let fingerprint = config_fingerprint(cfg);

    // Decode the snapshot (if resuming) before spawning anything.
    let resume: Option<EngineSnapshot<N>> = match snapshot {
        None => None,
        Some(bytes) => {
            Some(EngineSnapshot::<N>::decode(bytes, fingerprint).map_err(ShardError::Snapshot)?)
        }
    };

    let mut workers = spawn_workers(cfg, opts, workload, resume.is_none())?;
    let router = RouterKind::for_cost(cfg.cost.topology, cfg.p);

    let (mut driver, mut lens) = match &resume {
        None => {
            let mut lens = vec![0u32; cfg.p];
            lens[0] = 1; // the root
            (LockstepDriver::fresh(cfg), lens)
        }
        Some(snap) => {
            let lens: Vec<u32> = snap.stacks.iter().map(|s| s.len() as u32).collect();
            // Ship every non-empty stack to the worker that owns it.
            let mut stack_buf = Vec::new();
            let mut payload = Vec::new();
            for w in &mut workers {
                let mut entries: Vec<(u32, Vec<u8>)> = Vec::new();
                for pe in w.lo..w.hi {
                    if !snap.stacks[pe].is_empty() {
                        stack_buf.clear();
                        snap.stacks[pe].encode_node(&mut stack_buf);
                        entries.push(((pe - w.lo) as u32, stack_buf.clone()));
                    }
                }
                let borrowed: Vec<(u32, &[u8])> =
                    entries.iter().map(|(pe, b)| (*pe, b.as_slice())).collect();
                payload.clear();
                proto::encode_load(&mut payload, &borrowed);
                w.send(tag::LOAD, &payload)?;
            }
            let mut buf = Vec::new();
            for w in &mut workers {
                w.recv(tag::LOAD, &mut buf)?;
                proto::decode_count_reply(&buf).map_err(|e| w.reply_err(e))?;
            }
            (LockstepDriver::restore(cfg, snap), lens)
        }
    };
    drop(resume);

    let mut stats =
        ShardStats { shards: opts.shards, phases: Vec::new(), route_total: RouteStats::default() };
    let mut payload = Vec::new();
    let mut buf = Vec::new();

    loop {
        // ---- search phase: broadcast the burst, merge the census ----
        let h = driver.horizon(&lens);
        payload.clear();
        encode_burst(&mut payload, h);
        for w in &mut workers {
            w.send(tag::BURST, &payload)?;
        }
        let mut merged = MergedBurst::default();
        for w in &mut workers {
            w.recv(tag::BURST, &mut buf)?;
            let reply = BurstReply::decode(&buf).map_err(|e| w.reply_err(e))?;
            merged.started += reply.started as usize;
            merged.goals += reply.goals;
            merged.peak_stack_nodes = merged.peak_stack_nodes.max(reply.peak as usize);
            merged.deaths.extend_from_slice(&reply.deaths);
            for (pe, len) in reply.changed {
                lens[w.lo + pe as usize] = len;
            }
        }

        // ---- checkpoint tail + balancing (coordinator-side) ----
        match driver.absorb_burst(h, &lens, merged) {
            StepStatus::Done => break,
            StepStatus::Continue { fired } => {
                if fired {
                    let mut store = RemoteStore::new(&mut lens, &mut workers, &router);
                    driver.balance(&mut store);
                    let RemoteStore { rounds, messages, route_stats, err, .. } = store;
                    if let Some(e) = err {
                        return Err(e);
                    }
                    if rounds > 0 {
                        stats.route_total.absorb(route_stats);
                        stats.phases.push(RoutedPhase {
                            at_cycle: driver.cycles(),
                            rounds,
                            messages,
                            route: route_stats,
                            closed_form: cfg.cost.lb_phase_cost_breakdown(cfg.p, rounds),
                            measured: cfg.cost.measured_lb_cost_breakdown(
                                cfg.p,
                                rounds,
                                route_stats.steps as u64,
                            ),
                        });
                    }
                }
                let step = driver.finish_boundary();
                if let Some(park) = &opts.park {
                    if park.every > 0 && step % park.every == 0 {
                        park_run(&mut workers, &driver, &park.dir, step)?;
                    }
                }
            }
        }
    }

    // ---- graceful shutdown ----
    for w in &mut workers {
        w.send(tag::SHUTDOWN, &[])?;
    }
    for w in &mut workers {
        w.recv(tag::SHUTDOWN, &mut buf)?;
        let _ = w.child.wait();
    }
    drop(workers);
    Ok(ShardRun { outcome: driver.finish(false), stats })
}

/// Snapshot the whole machine at a boundary: collect every shard's stack
/// encodings (in PE order — byte-identical to the in-process capture) and
/// park the driver's snapshot into the spill directory under the boundary
/// number as job id.
fn park_run(
    workers: &mut [Worker],
    driver: &LockstepDriver,
    dir: &std::path::Path,
    step: u64,
) -> Result<(), ShardError> {
    for w in workers.iter_mut() {
        w.send(tag::ENCODE, &[])?;
    }
    let mut stack_bytes = Vec::new();
    let mut buf = Vec::new();
    for w in workers.iter_mut() {
        w.recv(tag::ENCODE, &mut buf)?;
        stack_bytes.extend_from_slice(&buf);
    }
    let snapshot = driver.snapshot(&stack_bytes);
    spill::park(dir, step, &snapshot).map_err(ShardError::Park)?;
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn shard_ranges_partition_the_ensemble() {
        for (p, shards) in [(8usize, 3usize), (64, 4), (7, 7), (100, 1), (10, 4)] {
            let mut cursor = 0;
            for s in 0..shards {
                let (lo, hi) = shard_range(p, shards, s);
                assert_eq!(lo, cursor);
                assert!(hi > lo, "every shard owns at least one PE");
                cursor = hi;
            }
            assert_eq!(cursor, p);
            let sizes: Vec<usize> =
                (0..shards).map(|s| shard_range(p, shards, s)).map(|(lo, hi)| hi - lo).collect();
            let min = *sizes.iter().min().expect("non-empty");
            let max = *sizes.iter().max().expect("non-empty");
            assert!(max - min <= 1, "balanced ranges");
        }
    }
}
