//! The shard wire protocol: message grammar over the checkpoint frame
//! codec.
//!
//! Every message travels as one [`uts_ckpt::wire`] frame (length-prefixed,
//! FNV-1a-checksummed, sequence-numbered), so the transport inherits the
//! checkpoint codec's rejection-mode discipline: truncation, bit flips and
//! reordering all surface as typed [`uts_ckpt::wire::WireError`]s, never as
//! garbage state. Payloads use the `uts-tree` checkpoint codec primitives,
//! and donated stacks travel in the *exact* [`uts_tree::SearchStack`]
//! encoding (`PeSlab::encode_stack` bytes), which is what makes sharded
//! snapshots interchangeable with single-process ones.
//!
//! # Grammar
//!
//! Ten request families, coordinator → worker; every request gets exactly
//! one reply frame carrying the *same tag* (so a mismatched reply is a
//! protocol error, not a mis-parse). All stack payloads are u32
//! byte-length-prefixed so the coordinator can relay donated stacks
//! between shards without decoding nodes.
//!
//! | tag | request                                    | reply |
//! |-----|--------------------------------------------|-------|
//! | [`tag::HELLO`]        | shard geometry + split policy + workload + kill knob | ack |
//! | [`tag::LOAD`]         | non-empty stacks for the local range (resume)        | count loaded |
//! | [`tag::BURST`]        | horizon `h`                                          | census delta: started/goals/peak/deaths + changed lens |
//! | [`tag::SPLIT_PAIRS`]  | same-shard matched splits (policy + local pairs)     | per pair: ok + both new lens |
//! | [`tag::SPLIT_EXTRACT`]| cross-shard matched splits, donor side               | per donor: ok + new len + donated stack |
//! | [`tag::INSTALL`]      | donated stacks for local receivers                   | per receiver: new len |
//! | [`tag::COUNT_LOCAL`]  | same-shard counted splits (equalization)             | per request: moved + both new lens |
//! | [`tag::COUNT_EXTRACT`]| cross-shard counted splits, donor side               | per donor: moved + new len + donated stack |
//! | [`tag::ENCODE`]       | (empty)                                              | concatenated per-PE stack encodings for the range |
//! | [`tag::SHUTDOWN`]     | (empty)                                              | ack, then the worker exits |

use uts_synthgen::{GenFamily, GenTree};
use uts_tree::codec::{put_bool, put_u32, put_u64, put_usize};
use uts_tree::{CodecError, Reader, SplitPolicy};

/// Frame tags. Replies reuse the request tag.
pub mod tag {
    /// Shard geometry, split policy, workload, fault knob.
    pub const HELLO: u8 = 1;
    /// Install resumed stacks into the local range.
    pub const LOAD: u8 = 2;
    /// Run one search-phase burst of `h` cycles.
    pub const BURST: u8 = 3;
    /// Matched splits where donor and receiver share the shard.
    pub const SPLIT_PAIRS: u8 = 4;
    /// Donor half of a cross-shard matched split.
    pub const SPLIT_EXTRACT: u8 = 5;
    /// Receiver half of a cross-shard transfer.
    pub const INSTALL: u8 = 6;
    /// Counted splits where donor and receiver share the shard.
    pub const COUNT_LOCAL: u8 = 7;
    /// Donor half of a cross-shard counted split.
    pub const COUNT_EXTRACT: u8 = 8;
    /// Encode the local range's stacks for a coordinator snapshot.
    pub const ENCODE: u8 = 9;
    /// Clean worker exit.
    pub const SHUTDOWN: u8 = 10;
}

/// The workload a worker monomorphizes its engine over — the wire-portable
/// subset of the CLI's workload grammar (a 15-puzzle is fully determined
/// by its packed board and cost bound; a generated tree by its seed and
/// family parameters).
#[derive(Debug, Clone, Copy)]
pub enum ShardWorkload {
    /// Bounded 15-puzzle iteration: packed board + IDA* cost bound.
    Puzzle {
        /// The packed start board ([`uts_puzzle15::Board`] representation).
        board: u64,
        /// Cost bound of the iteration.
        bound: u32,
    },
    /// On-the-fly generated Galton–Watson tree.
    UtsGen(GenTree),
}

impl ShardWorkload {
    /// Append the canonical encoding.
    pub fn encode(&self, out: &mut Vec<u8>) {
        match *self {
            ShardWorkload::Puzzle { board, bound } => {
                out.push(0);
                put_u64(out, board);
                put_u32(out, bound);
            }
            ShardWorkload::UtsGen(tree) => {
                out.push(1);
                put_u64(out, tree.seed);
                match tree.family {
                    GenFamily::Geometric { b_max, depth_limit } => {
                        out.push(0);
                        put_u32(out, b_max);
                        put_u32(out, depth_limit);
                    }
                    GenFamily::Binomial { b0, m, q_threshold } => {
                        out.push(1);
                        put_u32(out, b0);
                        put_u32(out, m);
                        put_u64(out, q_threshold);
                    }
                }
            }
        }
    }

    /// Decode one workload from the front of `r`.
    pub fn decode(r: &mut Reader<'_>) -> Result<Self, CodecError> {
        Ok(match r.u8()? {
            0 => ShardWorkload::Puzzle { board: r.u64()?, bound: r.u32()? },
            1 => {
                let seed = r.u64()?;
                let family = match r.u8()? {
                    0 => GenFamily::Geometric { b_max: r.u32()?, depth_limit: r.u32()? },
                    1 => GenFamily::Binomial { b0: r.u32()?, m: r.u32()?, q_threshold: r.u64()? },
                    _ => return Err(CodecError::Malformed("unknown generated-tree family")),
                };
                GenTree { seed, family }.into()
            }
            _ => return Err(CodecError::Malformed("unknown shard workload")),
        })
    }
}

impl From<GenTree> for ShardWorkload {
    fn from(tree: GenTree) -> Self {
        ShardWorkload::UtsGen(tree)
    }
}

fn put_policy(out: &mut Vec<u8>, policy: SplitPolicy) {
    out.push(match policy {
        SplitPolicy::Bottom => 0,
        SplitPolicy::Half => 1,
        SplitPolicy::Top => 2,
    });
}

fn take_policy(r: &mut Reader<'_>) -> Result<SplitPolicy, CodecError> {
    Ok(match r.u8()? {
        0 => SplitPolicy::Bottom,
        1 => SplitPolicy::Half,
        2 => SplitPolicy::Top,
        _ => return Err(CodecError::Malformed("unknown split policy")),
    })
}

/// The coordinator's opening message: everything a worker needs to build
/// its slab and monomorphize its engine loop.
#[derive(Debug, Clone)]
pub struct Hello {
    /// This worker's shard index (0-based).
    pub shard: u32,
    /// Total number of shards.
    pub shards: u32,
    /// First global PE of the local range.
    pub lo: u64,
    /// One past the last global PE of the local range.
    pub hi: u64,
    /// Work-splitting policy of the run.
    pub split: SplitPolicy,
    /// Seed PE `lo == 0` with the problem root (fresh run; a resumed run
    /// ships its stacks via [`tag::LOAD`] instead).
    pub seed_root: bool,
    /// Fault-injection knob: self-SIGKILL on receiving the k-th
    /// [`tag::BURST`] (1-based), for the kill→resume suites.
    pub kill_at_burst: Option<u64>,
    /// The search problem.
    pub workload: ShardWorkload,
}

impl Hello {
    /// Encode into a frame payload.
    pub fn encode(&self, out: &mut Vec<u8>) {
        put_u32(out, self.shard);
        put_u32(out, self.shards);
        put_u64(out, self.lo);
        put_u64(out, self.hi);
        put_policy(out, self.split);
        put_bool(out, self.seed_root);
        match self.kill_at_burst {
            None => put_bool(out, false),
            Some(k) => {
                put_bool(out, true);
                put_u64(out, k);
            }
        }
        self.workload.encode(out);
    }

    /// Decode a frame payload.
    pub fn decode(bytes: &[u8]) -> Result<Self, CodecError> {
        let mut r = Reader::new(bytes);
        let hello = Hello {
            shard: r.u32()?,
            shards: r.u32()?,
            lo: r.u64()?,
            hi: r.u64()?,
            split: take_policy(&mut r)?,
            seed_root: r.bool()?,
            kill_at_burst: if r.bool()? { Some(r.u64()?) } else { None },
            workload: ShardWorkload::decode(&mut r)?,
        };
        expect_done(&r)?;
        Ok(hello)
    }
}

fn expect_done(r: &Reader<'_>) -> Result<(), CodecError> {
    if r.is_done() {
        Ok(())
    } else {
        Err(CodecError::Malformed("trailing bytes after shard message"))
    }
}

/// A length-prefixed opaque stack blob (exact `SearchStack` codec bytes).
/// The coordinator relays these between shards without decoding nodes.
pub fn put_stack_bytes(out: &mut Vec<u8>, stack: &[u8]) {
    debug_assert!(stack.len() <= u32::MAX as usize, "stack blob too large for the wire");
    put_u32(out, stack.len() as u32);
    out.extend_from_slice(stack);
}

/// Take one length-prefixed stack blob.
pub fn take_stack_bytes<'a>(r: &mut Reader<'a>) -> Result<&'a [u8], CodecError> {
    let n = r.u32()? as usize;
    r.bytes(n)
}

/// `LOAD` request: `(local_pe, stack)` entries for the non-empty PEs of a
/// resumed range.
pub fn encode_load(out: &mut Vec<u8>, entries: &[(u32, &[u8])]) {
    put_usize(out, entries.len());
    for &(pe, stack) in entries {
        put_u32(out, pe);
        put_stack_bytes(out, stack);
    }
}

/// `BURST` request.
pub fn encode_burst(out: &mut Vec<u8>, h: u64) {
    put_u64(out, h);
}

/// Decode a `BURST` request.
pub fn decode_burst(bytes: &[u8]) -> Result<u64, CodecError> {
    let mut r = Reader::new(bytes);
    let h = r.u64()?;
    expect_done(&r)?;
    Ok(h)
}

/// A worker's census delta for one burst: the per-shard half of
/// [`uts_core::MergedBurst`], plus the sparse length updates that feed the
/// coordinator's dense mirror (only PEs that entered the burst can have
/// changed).
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct BurstReply {
    /// Local PEs that entered the burst.
    pub started: u64,
    /// Goals found during the burst.
    pub goals: u64,
    /// Largest local stack observed during the burst (nodes).
    pub peak: u64,
    /// Burst lengths of local PEs that drained mid-burst (unsorted).
    pub deaths: Vec<u64>,
    /// `(local_pe, new_len)` for every PE that entered the burst.
    pub changed: Vec<(u32, u32)>,
}

impl BurstReply {
    /// Encode into a frame payload.
    pub fn encode(&self, out: &mut Vec<u8>) {
        put_u64(out, self.started);
        put_u64(out, self.goals);
        put_u64(out, self.peak);
        put_usize(out, self.deaths.len());
        for &d in &self.deaths {
            put_u64(out, d);
        }
        put_usize(out, self.changed.len());
        for &(pe, len) in &self.changed {
            put_u32(out, pe);
            put_u32(out, len);
        }
    }

    /// Decode a frame payload.
    pub fn decode(bytes: &[u8]) -> Result<Self, CodecError> {
        let mut r = Reader::new(bytes);
        let started = r.u64()?;
        let goals = r.u64()?;
        let peak = r.u64()?;
        let n = r.len(8)?;
        let mut deaths = Vec::with_capacity(n);
        for _ in 0..n {
            deaths.push(r.u64()?);
        }
        let n = r.len(8)?;
        let mut changed = Vec::with_capacity(n);
        for _ in 0..n {
            changed.push((r.u32()?, r.u32()?));
        }
        expect_done(&r)?;
        Ok(BurstReply { started, goals, peak, deaths, changed })
    }
}

/// `SPLIT_PAIRS` request: policy + local `(donor, receiver)` pairs.
pub fn encode_split_pairs(out: &mut Vec<u8>, policy: SplitPolicy, pairs: &[(u32, u32)]) {
    put_policy(out, policy);
    put_usize(out, pairs.len());
    for &(d, rcv) in pairs {
        put_u32(out, d);
        put_u32(out, rcv);
    }
}

/// Decode a `SPLIT_PAIRS` request.
pub fn decode_split_pairs(bytes: &[u8]) -> Result<(SplitPolicy, Vec<(u32, u32)>), CodecError> {
    let mut r = Reader::new(bytes);
    let policy = take_policy(&mut r)?;
    let n = r.len(8)?;
    let mut pairs = Vec::with_capacity(n);
    for _ in 0..n {
        pairs.push((r.u32()?, r.u32()?));
    }
    expect_done(&r)?;
    Ok((policy, pairs))
}

/// `SPLIT_EXTRACT` request: policy + local donors.
pub fn encode_split_extract(out: &mut Vec<u8>, policy: SplitPolicy, donors: &[u32]) {
    put_policy(out, policy);
    put_usize(out, donors.len());
    for &d in donors {
        put_u32(out, d);
    }
}

/// Decode a `SPLIT_EXTRACT` request.
pub fn decode_split_extract(bytes: &[u8]) -> Result<(SplitPolicy, Vec<u32>), CodecError> {
    let mut r = Reader::new(bytes);
    let policy = take_policy(&mut r)?;
    let n = r.len(4)?;
    let mut donors = Vec::with_capacity(n);
    for _ in 0..n {
        donors.push(r.u32()?);
    }
    expect_done(&r)?;
    Ok((policy, donors))
}

/// `COUNT_LOCAL` request: local `(donor, receiver, max_nodes)` requests.
pub fn encode_count_local(out: &mut Vec<u8>, reqs: &[(u32, u32, u64)]) {
    put_usize(out, reqs.len());
    for &(d, rcv, k) in reqs {
        put_u32(out, d);
        put_u32(out, rcv);
        put_u64(out, k);
    }
}

/// Decode a `COUNT_LOCAL` request.
pub fn decode_count_local(bytes: &[u8]) -> Result<Vec<(u32, u32, u64)>, CodecError> {
    let mut r = Reader::new(bytes);
    let n = r.len(16)?;
    let mut reqs = Vec::with_capacity(n);
    for _ in 0..n {
        reqs.push((r.u32()?, r.u32()?, r.u64()?));
    }
    expect_done(&r)?;
    Ok(reqs)
}

/// `COUNT_EXTRACT` request: local `(donor, max_nodes)` requests.
pub fn encode_count_extract(out: &mut Vec<u8>, reqs: &[(u32, u64)]) {
    put_usize(out, reqs.len());
    for &(d, k) in reqs {
        put_u32(out, d);
        put_u64(out, k);
    }
}

/// Decode a `COUNT_EXTRACT` request.
pub fn decode_count_extract(bytes: &[u8]) -> Result<Vec<(u32, u64)>, CodecError> {
    let mut r = Reader::new(bytes);
    let n = r.len(12)?;
    let mut reqs = Vec::with_capacity(n);
    for _ in 0..n {
        reqs.push((r.u32()?, r.u64()?));
    }
    expect_done(&r)?;
    Ok(reqs)
}

/// `INSTALL` request: `(local_receiver, stack)` entries.
pub fn encode_install(out: &mut Vec<u8>, entries: &[(u32, &[u8])]) {
    put_usize(out, entries.len());
    for &(pe, stack) in entries {
        put_u32(out, pe);
        put_stack_bytes(out, stack);
    }
}

/// Decode a `LOAD` or `INSTALL` request into owned `(local_pe, stack
/// bytes)` entries.
pub fn decode_stack_entries(bytes: &[u8]) -> Result<Vec<(u32, Vec<u8>)>, CodecError> {
    let mut r = Reader::new(bytes);
    let n = r.len(5)?;
    let mut entries = Vec::with_capacity(n);
    for _ in 0..n {
        let pe = r.u32()?;
        let stack = take_stack_bytes(&mut r)?.to_vec();
        entries.push((pe, stack));
    }
    expect_done(&r)?;
    Ok(entries)
}

/// `SPLIT_PAIRS` / `COUNT_LOCAL` reply entry: how many nodes moved (0/1
/// for matched splits) plus the authoritative post-split lengths of both
/// endpoints.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct LocalSplitReply {
    /// Nodes moved (matched splits report 1 when the split happened).
    pub moved: u64,
    /// Donor's post-split stack length.
    pub donor_len: u32,
    /// Receiver's post-split stack length.
    pub receiver_len: u32,
}

/// Encode a same-shard split/count reply.
pub fn encode_local_split_reply(out: &mut Vec<u8>, entries: &[LocalSplitReply]) {
    put_usize(out, entries.len());
    for e in entries {
        put_u64(out, e.moved);
        put_u32(out, e.donor_len);
        put_u32(out, e.receiver_len);
    }
}

/// Decode a same-shard split/count reply.
pub fn decode_local_split_reply(bytes: &[u8]) -> Result<Vec<LocalSplitReply>, CodecError> {
    let mut r = Reader::new(bytes);
    let n = r.len(16)?;
    let mut entries = Vec::with_capacity(n);
    for _ in 0..n {
        entries.push(LocalSplitReply {
            moved: r.u64()?,
            donor_len: r.u32()?,
            receiver_len: r.u32()?,
        });
    }
    expect_done(&r)?;
    Ok(entries)
}

/// `SPLIT_EXTRACT` / `COUNT_EXTRACT` reply entry: nodes moved, the donor's
/// post-split length, and the donated stack (empty iff nothing moved).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ExtractReply {
    /// Nodes moved out of the donor (0 = the donor could not donate).
    pub moved: u64,
    /// Donor's post-split stack length.
    pub donor_len: u32,
    /// The donated stack's `SearchStack` codec bytes (empty iff
    /// `moved == 0`).
    pub stack: Vec<u8>,
}

/// Encode a cross-shard extract reply.
pub fn encode_extract_reply(out: &mut Vec<u8>, entries: &[ExtractReply]) {
    put_usize(out, entries.len());
    for e in entries {
        put_u64(out, e.moved);
        put_u32(out, e.donor_len);
        put_stack_bytes(out, &e.stack);
    }
}

/// Decode a cross-shard extract reply.
pub fn decode_extract_reply(bytes: &[u8]) -> Result<Vec<ExtractReply>, CodecError> {
    let mut r = Reader::new(bytes);
    let n = r.len(16)?;
    let mut entries = Vec::with_capacity(n);
    for _ in 0..n {
        let moved = r.u64()?;
        let donor_len = r.u32()?;
        let stack = take_stack_bytes(&mut r)?.to_vec();
        entries.push(ExtractReply { moved, donor_len, stack });
    }
    expect_done(&r)?;
    Ok(entries)
}

/// Encode an `INSTALL` reply: each receiver's post-install length.
pub fn encode_install_reply(out: &mut Vec<u8>, lens: &[u32]) {
    put_usize(out, lens.len());
    for &len in lens {
        put_u32(out, len);
    }
}

/// Decode an `INSTALL` reply.
pub fn decode_install_reply(bytes: &[u8]) -> Result<Vec<u32>, CodecError> {
    let mut r = Reader::new(bytes);
    let n = r.len(4)?;
    let mut lens = Vec::with_capacity(n);
    for _ in 0..n {
        lens.push(r.u32()?);
    }
    expect_done(&r)?;
    Ok(lens)
}

/// Encode a `LOAD` reply (stacks installed) or any counted ack.
pub fn encode_count_reply(out: &mut Vec<u8>, n: u64) {
    put_u64(out, n);
}

/// Decode a `LOAD` reply.
pub fn decode_count_reply(bytes: &[u8]) -> Result<u64, CodecError> {
    let mut r = Reader::new(bytes);
    let n = r.u64()?;
    expect_done(&r)?;
    Ok(n)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn workload_round_trips() {
        let cases = [
            ShardWorkload::Puzzle { board: 0x1234_5678_9abc_def0, bound: 52 },
            ShardWorkload::UtsGen(GenTree::geometric(7, 8, 11)),
            ShardWorkload::UtsGen(GenTree::binomial(3, 32, 4, 0.2)),
        ];
        for w in cases {
            let mut bytes = Vec::new();
            w.encode(&mut bytes);
            let mut r = Reader::new(&bytes);
            let back = ShardWorkload::decode(&mut r).expect("round trip");
            assert!(r.is_done());
            assert_eq!(format!("{w:?}"), format!("{back:?}"));
        }
    }

    #[test]
    fn hello_round_trips() {
        let hello = Hello {
            shard: 3,
            shards: 8,
            lo: 96,
            hi: 128,
            split: SplitPolicy::Half,
            seed_root: false,
            kill_at_burst: Some(17),
            workload: ShardWorkload::UtsGen(GenTree::geometric(1, 8, 6)),
        };
        let mut bytes = Vec::new();
        hello.encode(&mut bytes);
        let back = Hello::decode(&bytes).expect("round trip");
        assert_eq!(back.shard, 3);
        assert_eq!(back.shards, 8);
        assert_eq!(back.lo, 96);
        assert_eq!(back.hi, 128);
        assert_eq!(back.split, SplitPolicy::Half);
        assert!(!back.seed_root);
        assert_eq!(back.kill_at_burst, Some(17));
    }

    #[test]
    fn burst_reply_round_trips() {
        let reply = BurstReply {
            started: 5,
            goals: 2,
            peak: 91,
            deaths: vec![3, 1, 7],
            changed: vec![(0, 4), (2, 0), (9, 12)],
        };
        let mut bytes = Vec::new();
        reply.encode(&mut bytes);
        assert_eq!(BurstReply::decode(&bytes).expect("round trip"), reply);
    }

    #[test]
    fn trailing_bytes_are_rejected() {
        let mut bytes = Vec::new();
        encode_burst(&mut bytes, 9);
        bytes.push(0);
        assert!(decode_burst(&bytes).is_err());
    }

    #[test]
    fn split_requests_round_trip() {
        let mut bytes = Vec::new();
        encode_split_pairs(&mut bytes, SplitPolicy::Bottom, &[(1, 2), (5, 0)]);
        let (policy, pairs) = decode_split_pairs(&bytes).expect("round trip");
        assert_eq!(policy, SplitPolicy::Bottom);
        assert_eq!(pairs, vec![(1, 2), (5, 0)]);

        let mut bytes = Vec::new();
        encode_count_local(&mut bytes, &[(1, 2, 40), (3, 4, 9)]);
        assert_eq!(decode_count_local(&bytes).expect("round trip"), vec![(1, 2, 40), (3, 4, 9)]);

        let mut bytes = Vec::new();
        encode_count_extract(&mut bytes, &[(7, 11)]);
        assert_eq!(decode_count_extract(&bytes).expect("round trip"), vec![(7, 11)]);
    }

    #[test]
    fn replies_round_trip() {
        let entries = [
            LocalSplitReply { moved: 1, donor_len: 4, receiver_len: 1 },
            LocalSplitReply { moved: 0, donor_len: 1, receiver_len: 0 },
        ];
        let mut bytes = Vec::new();
        encode_local_split_reply(&mut bytes, &entries);
        assert_eq!(decode_local_split_reply(&bytes).expect("round trip"), entries.to_vec());

        let extracts = [
            ExtractReply { moved: 3, donor_len: 5, stack: vec![1, 2, 3] },
            ExtractReply { moved: 0, donor_len: 1, stack: Vec::new() },
        ];
        let mut bytes = Vec::new();
        encode_extract_reply(&mut bytes, &extracts);
        assert_eq!(decode_extract_reply(&bytes).expect("round trip"), extracts.to_vec());

        let mut bytes = Vec::new();
        encode_install_reply(&mut bytes, &[7, 0, 2]);
        assert_eq!(decode_install_reply(&bytes).expect("round trip"), vec![7, 0, 2]);

        let mut bytes = Vec::new();
        encode_install(&mut bytes, &[(4, &[9, 9][..])]);
        let back = decode_stack_entries(&bytes).expect("round trip");
        assert_eq!(back, vec![(4, vec![9, 9])]);
    }
}
