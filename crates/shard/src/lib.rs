//! # uts-shard — the sharded multi-process machine
//!
//! Simulates ensembles far past one address space's comfort (P ≥ 2²⁰ PEs)
//! by splitting the PE array into contiguous shards, each owned by a
//! worker **process** running the engine's search phase over its slab,
//! with one coordinator serializing every balancing phase at macro-step
//! boundaries. The wire format is the `uts-ckpt` frame codec (length-
//! prefixed, checksummed, sequence-numbered) over the workers' pipes, and
//! the stack payloads are the checkpoint stack codec — so a parked shard
//! run resumes under the single-process engine and vice versa.
//!
//! Because the coordinator runs the *identical* horizon/trigger/matcher
//! code ([`uts_core::LockstepDriver`]) and workers run the *identical*
//! expansion code ([`uts_core::expansion_burst`]), the sharded
//! [`uts_core::Outcome`] is bit-identical to the macro engine at any
//! shard count. See DESIGN.md §13 for the protocol grammar and the
//! determinism argument.

pub mod coord;
pub mod proto;
pub mod worker;

pub use coord::{
    resume_sharded, run_sharded, ParkPolicy, RoutedPhase, ShardError, ShardOpts, ShardRun,
    ShardStats, WorkerKill,
};
pub use proto::ShardWorkload;
pub use worker::{maybe_run_worker, serve, WorkerError, WORKER_ENV};
