//! Smoke tests of the CLI command implementations (called directly — the
//! binary shim adds nothing but dispatch).

use uts_cli::{commands, Flags};

fn flags(pairs: &[&str]) -> Flags {
    Flags::parse(pairs).expect("test flags parse")
}

#[test]
fn solve_small_scramble() {
    commands::solve(&flags(&["--seed", "7", "--walk", "14"])).expect("solve");
}

#[test]
fn run_small_simd() {
    commands::run_simd(&flags(&[
        "--seed", "7", "--walk", "20", "--p", "32", "--scheme", "gp-s:0.7",
    ]))
    .expect("run");
}

#[test]
fn run_rejects_bad_scheme() {
    let err = commands::run_simd(&flags(&["--scheme", "wat"])).unwrap_err();
    assert!(err.contains("unknown scheme"));
}

#[test]
fn run_kill_then_resume_round_trips() {
    let dir = std::env::temp_dir().join(format!("sts-ckpt-cli-{}", std::process::id()));
    std::fs::remove_dir_all(&dir).ok();
    let dir_s = dir.to_str().expect("utf-8 temp path").to_string();
    let base =
        ["--seed", "7", "--walk", "20", "--p", "32", "--scheme", "gp-dk", "--ledger", "true"];

    // A checkpointing run killed at boundary 3 (snapshot lands first).
    let mut killed: Vec<&str> = base.to_vec();
    killed.extend_from_slice(&[
        "--checkpoint-dir",
        &dir_s,
        "--checkpoint-every",
        "1",
        "--kill-at",
        "3",
    ]);
    commands::run_simd(&flags(&killed)).expect("killed run");
    let snap = dir.join("ckpt-00000003.bin");
    assert!(snap.exists(), "snapshot written at the kill boundary");
    let snap_s = snap.to_str().expect("utf-8 snapshot path").to_string();

    // Resume under the same flags completes the search.
    let mut resumed: Vec<&str> = base.to_vec();
    resumed.extend_from_slice(&["--snapshot", &snap_s]);
    commands::resume(&flags(&resumed)).expect("resume");

    // Resume under a different config is rejected by the fingerprint.
    let wrong_p =
        ["--seed", "7", "--walk", "20", "--p", "64", "--scheme", "gp-dk", "--snapshot", &snap_s];
    let err = commands::resume(&flags(&wrong_p)).unwrap_err();
    assert!(err.contains("different configuration"), "{err}");

    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn run_checkpoint_every_requires_a_dir() {
    let err = commands::run_simd(&flags(&[
        "--seed",
        "7",
        "--walk",
        "14",
        "--p",
        "8",
        "--checkpoint-every",
        "2",
    ]))
    .unwrap_err();
    assert!(err.contains("--checkpoint-dir"), "{err}");
}

#[test]
fn resume_requires_a_snapshot_path() {
    let err = commands::resume(&flags(&[])).unwrap_err();
    assert!(err.contains("--snapshot"), "{err}");
}

#[test]
fn mimd_small() {
    commands::run_mimd_cmd(&flags(&["--seed", "7", "--walk", "18", "--p", "16"])).expect("mimd");
}

#[test]
fn mimd_rejects_bad_policy() {
    let err = commands::run_mimd_cmd(&flags(&["--policy", "psychic"])).unwrap_err();
    assert!(err.contains("unknown policy"));
}

#[test]
fn queens_small() {
    commands::queens(&flags(&["--n", "6", "--p", "8"])).expect("queens");
}

#[test]
fn sat_small() {
    commands::sat(&flags(&["--vars", "10", "--clauses", "30"])).expect("sat");
}

#[test]
fn xo_requires_w() {
    assert!(commands::xo(&flags(&[])).is_err());
    commands::xo(&flags(&["--w", "941852", "--p", "8192"])).expect("xo");
}
