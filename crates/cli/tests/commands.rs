//! Smoke tests of the CLI command implementations (called directly — the
//! binary shim adds nothing but dispatch).

use uts_cli::{commands, Flags};

fn flags(pairs: &[&str]) -> Flags {
    Flags::parse(pairs).expect("test flags parse")
}

#[test]
fn solve_small_scramble() {
    commands::solve(&flags(&["--seed", "7", "--walk", "14"])).expect("solve");
}

#[test]
fn run_small_simd() {
    commands::run_simd(&flags(&[
        "--seed", "7", "--walk", "20", "--p", "32", "--scheme", "gp-s:0.7",
    ]))
    .expect("run");
}

#[test]
fn run_rejects_bad_scheme() {
    let err = commands::run_simd(&flags(&["--scheme", "wat"])).unwrap_err();
    assert!(err.contains("unknown scheme"));
}

#[test]
fn mimd_small() {
    commands::run_mimd_cmd(&flags(&["--seed", "7", "--walk", "18", "--p", "16"])).expect("mimd");
}

#[test]
fn mimd_rejects_bad_policy() {
    let err = commands::run_mimd_cmd(&flags(&["--policy", "psychic"])).unwrap_err();
    assert!(err.contains("unknown policy"));
}

#[test]
fn queens_small() {
    commands::queens(&flags(&["--n", "6", "--p", "8"])).expect("queens");
}

#[test]
fn sat_small() {
    commands::sat(&flags(&["--vars", "10", "--clauses", "30"])).expect("sat");
}

#[test]
fn xo_requires_w() {
    assert!(commands::xo(&flags(&[])).is_err());
    commands::xo(&flags(&["--w", "941852", "--p", "8192"])).expect("xo");
}
