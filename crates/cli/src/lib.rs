//! Argument parsing and command implementations for the `sts` binary.
//!
//! The parsing layer is hand-rolled (no external CLI crates) and lives in
//! this library so it is unit-testable; `main.rs` is a thin shim.

pub mod args;
pub mod commands;

pub use args::{
    parse_cost, parse_engine, parse_scheme, parse_simd_workload, parse_workload, Flags,
    SimdWorkloadSpec, WorkloadSpec,
};

/// Exit with a usage message.
pub const USAGE: &str = "\
sts — unstructured tree search on (simulated) SIMD parallel computers

USAGE:
  sts solve   [--seed S] [--walk N | --korf K]          serial IDA* on a 15-puzzle
  sts run     [--p P] [--scheme SCHEME] [--cost MODEL] [--lb-mult M]
              [--seed S] [--walk N | --korf K] [--bound B] [--ledger true]
              [--engine E] [--checkpoint-dir DIR] [--checkpoint-every N]
              [--kill-at K] [--workload puzzle15|utsgen]  parallel SIMD search
  sts resume  --snapshot PATH [same flags as run]        resume from a checkpoint
  sts shard   [--shards N] [--spill-dir DIR] [--park-every N]
              [--worker-kill-at K [--worker-kill-shard S]]
              [--snapshot PATH] [workload/config flags as run]
                                                         multi-process sharded machine
  sts mimd    [--p P] [--policy grr|arr|rp|nn] [--seed S] [--walk N]
                                                         MIMD work stealing
  sts queens  [--n N] [--p P]                            N-queens on all engines
  sts sat     [--vars V] [--clauses C] [--seed S]        DPLL model counting
  sts xo      --w W [--p P] [--ratio R]                  optimal static trigger
  sts serve   [--addr A] [--slots N] [--spill-dir DIR] [--quantum-ms Q]
                                                         HTTP/JSON job server

SCHEMES: gp-s:<x>  ngp-s:<x>  gp-dk  ngp-dk  gp-dp  ngp-dp  fess  fegs
COSTS:   cm2  hypercube  mesh
ENGINES: macro (default)  fused  par  reference

Checkpointing: `sts run --checkpoint-dir DIR --checkpoint-every N` writes a
snapshot `ckpt-<step>.bin` into DIR every Nth macro-step boundary;
`--kill-at K` injects a fault (clean stop) at boundary K. `sts resume
--snapshot DIR/ckpt-....bin` continues the run — pass the *same* workload
and config flags: a snapshot is only valid against the configuration that
produced it (enforced by a config fingerprint in the header).

Generated trees: `sts run --workload utsgen` searches an on-the-fly
Galton–Watson tree instead of a 15-puzzle iteration. `--family geometric`
(default) takes `--seed S --b-max B --depth D`; `--family binomial` takes
`--seed S --b0 B --m M --q Q` with q*m < 1 (subcritical). Nodes are derived
from a hash-chained RNG state, so memory stays O(live stacks) no matter
how large the tree is.

Sharding: `sts shard --shards N` runs the identical search across N worker
processes, each owning a contiguous slab of PEs, with the coordinator
serializing every balancing phase over the checkpoint wire format — the
outcome is bit-identical to `sts run` at any N, and every balancing phase
additionally carries *measured* interconnect routing next to the cost
model's closed form. `--spill-dir DIR --park-every N` parks whole-machine
snapshots at macro-step boundaries; after a crash (or `--worker-kill-at K`,
which SIGKILLs one worker mid-run for drills), `sts shard --snapshot
DIR/job-....park` resumes bit-identically — the parked format is the
ordinary checkpoint format, so `sts resume` accepts it too. Example:

  sts shard --shards 8 --p 1048576 --workload utsgen --b-max 8 --depth 12 \\
            --scheme gp-dk --ledger true

Serving: `sts serve` runs a job server. POST a spec like
`{\"workload\":{\"kind\":\"synth\",\"seed\":1},\"p\":256,\"scheme\":\"gp-dk\"}` to
/submit; when more jobs wait than slots exist, running jobs are parked at
their next macro-step boundary (snapshot to --spill-dir) and resumed
later — results are bit-identical to uninterrupted runs, and the whole
job table survives a server restart over the same spill directory.
";

#[cfg(test)]
mod tests {
    use super::*;
    use uts_core::{Matching, Trigger};

    #[test]
    fn scheme_grammar_round_trips() {
        let s = parse_scheme("gp-s:0.85").unwrap();
        assert_eq!(s.matching, Matching::Gp);
        assert!(matches!(s.trigger, Trigger::Static { x } if (x - 0.85).abs() < 1e-12));

        assert!(parse_scheme("ngp-dk").unwrap().is_dynamic());
        assert_eq!(parse_scheme("fess").unwrap(), uts_core::Scheme::fess());
        assert_eq!(parse_scheme("fegs").unwrap(), uts_core::Scheme::fegs());
        assert!(parse_scheme("bogus").is_err());
        assert!(parse_scheme("gp-s:1.5").is_err(), "threshold must be a probability");
        assert!(parse_scheme("gp-s:").is_err());
    }

    #[test]
    fn engine_grammar() {
        use uts_core::EngineKind;
        assert_eq!(parse_engine("macro").unwrap(), EngineKind::Macro);
        assert_eq!(parse_engine("fused").unwrap(), EngineKind::Fused);
        assert_eq!(parse_engine("par").unwrap(), EngineKind::Par);
        assert_eq!(parse_engine("reference").unwrap(), EngineKind::Reference);
        assert_eq!(parse_engine("ref").unwrap(), EngineKind::Reference);
        assert!(parse_engine("turbo").is_err());
    }

    #[test]
    fn cost_grammar() {
        assert!(parse_cost("cm2").is_ok());
        assert!(parse_cost("hypercube").is_ok());
        assert!(parse_cost("mesh").is_ok());
        assert!(parse_cost("torus").is_err());
    }

    #[test]
    fn flags_parse_pairs_and_detect_unknowns() {
        let f = Flags::parse(&["--p", "512", "--scheme", "gp-dk"]).unwrap();
        assert_eq!(f.get("p"), Some("512"));
        assert_eq!(f.get("scheme"), Some("gp-dk"));
        assert_eq!(f.get_parsed::<usize>("p", 1).unwrap(), 512);
        assert_eq!(f.get_parsed::<usize>("absent", 7).unwrap(), 7);
        assert!(Flags::parse(&["--p"]).is_err(), "dangling flag");
        assert!(Flags::parse(&["p", "512"]).is_err(), "positional junk");
    }

    #[test]
    fn bad_numeric_flag_is_an_error_not_a_default() {
        let f = Flags::parse(&["--p", "many"]).unwrap();
        assert!(f.get_parsed::<usize>("p", 1).is_err());
    }

    #[test]
    fn workload_spec_korf_and_scramble() {
        let f = Flags::parse(&["--korf", "3"]).unwrap();
        assert!(matches!(parse_workload(&f).unwrap(), WorkloadSpec::Korf(3)));
        let f = Flags::parse(&["--seed", "9", "--walk", "40"]).unwrap();
        match parse_workload(&f).unwrap() {
            WorkloadSpec::Scramble { seed: 9, walk: 40 } => {}
            other => panic!("{other:?}"),
        }
        let f = Flags::parse(&["--korf", "99"]).unwrap();
        assert!(parse_workload(&f).is_err(), "only the embedded Korf ids exist");
    }

    #[test]
    fn simd_workload_grammar_covers_utsgen() {
        use uts_synthgen::GenFamily;

        let f = Flags::parse(&["--workload", "utsgen", "--seed", "7", "--depth", "5"]).unwrap();
        match parse_simd_workload(&f).unwrap() {
            SimdWorkloadSpec::UtsGen(t) => {
                assert_eq!(t.seed, 7);
                assert!(matches!(t.family, GenFamily::Geometric { b_max: 8, depth_limit: 5 }));
            }
            other => panic!("{other:?}"),
        }
        let f = Flags::parse(&[
            "--workload",
            "utsgen",
            "--family",
            "binomial",
            "--b0",
            "32",
            "--m",
            "4",
            "--q",
            "0.2",
        ])
        .unwrap();
        match parse_simd_workload(&f).unwrap() {
            SimdWorkloadSpec::UtsGen(t) => {
                assert!(matches!(t.family, GenFamily::Binomial { b0: 32, m: 4, .. }));
            }
            other => panic!("{other:?}"),
        }
        // Default (no --workload) stays the 15-puzzle grammar.
        let f = Flags::parse(&["--korf", "3"]).unwrap();
        assert!(matches!(
            parse_simd_workload(&f).unwrap(),
            SimdWorkloadSpec::Puzzle(WorkloadSpec::Korf(3))
        ));
        // Supercritical binomial, depth > 64, unknown family/workload: refused.
        let f =
            Flags::parse(&["--workload", "utsgen", "--family", "binomial", "--q", "0.3"]).unwrap();
        assert!(parse_simd_workload(&f).is_err(), "q*m = 1.2 is supercritical");
        let f = Flags::parse(&["--workload", "utsgen", "--depth", "65"]).unwrap();
        assert!(parse_simd_workload(&f).is_err());
        let f = Flags::parse(&["--workload", "utsgen", "--family", "fibonacci"]).unwrap();
        assert!(parse_simd_workload(&f).is_err());
        let f = Flags::parse(&["--workload", "hanoi"]).unwrap();
        assert!(parse_simd_workload(&f).is_err());
    }
}
