//! Command implementations. Each returns `Result<(), String>`; `main`
//! prints the error + usage on failure.

use uts_analysis::{optimal_static_trigger, TriggerParams};
use uts_ckpt::{CheckpointPolicy, FaultPlan};
use uts_core::{resume_from_bytes, run, run_with, CheckpointCfg, EngineConfig, Outcome, Scheme};
use uts_machine::CostModel;
use uts_mimd::{run_mimd, MimdConfig, StealPolicy};
use uts_par::deque_dfs;
use uts_problems::{random_3sat, Dpll, NQueens};
use uts_puzzle15::Puzzle15;
use uts_shard::{resume_sharded, run_sharded, ParkPolicy, ShardOpts, ShardWorkload, WorkerKill};
use uts_tree::ida::ida_star;
use uts_tree::problem::BoundedProblem;
use uts_tree::serial_dfs;

use uts_synthgen::{GenFamily, GenTree};

use crate::args::{
    parse_cost, parse_engine, parse_scheme, parse_simd_workload, parse_workload, Flags,
    SimdWorkloadSpec,
};

/// `sts solve`: serial IDA\* on a 15-puzzle.
pub fn solve(flags: &Flags) -> Result<(), String> {
    let spec = parse_workload(flags)?;
    let inst = spec.instance();
    let puzzle = Puzzle15::new(inst.board());
    println!("{}", puzzle.start());
    let r = ida_star(&puzzle, flags.get_parsed("max-bound", 80u32)?);
    for it in &r.iterations {
        println!("bound {:3}: {:>12} nodes, {} goal(s)", it.bound, it.expanded, it.goals);
    }
    match r.solution_cost {
        Some(c) => println!("optimal solution cost: {c}"),
        None => println!("no solution within the bound"),
    }
    Ok(())
}

/// The materialized problem a SIMD run searches: a bounded 15-puzzle
/// iteration (the default), or a generated tree (`--workload utsgen`).
enum SimdWorkload {
    Puzzle { puzzle: Puzzle15, bound: u32 },
    UtsGen(GenTree),
}

impl SimdWorkload {
    fn describe(&self) -> String {
        match self {
            SimdWorkload::Puzzle { bound, .. } => format!("15-puzzle, bound {bound}"),
            SimdWorkload::UtsGen(t) => match t.family {
                GenFamily::Geometric { b_max, depth_limit } => format!(
                    "utsgen geometric (seed {}, b_max {b_max}, depth {depth_limit})",
                    t.seed
                ),
                GenFamily::Binomial { b0, m, .. } => {
                    format!("utsgen binomial (seed {}, b0 {b0}, m {m})", t.seed)
                }
            },
        }
    }
}

/// Everything `sts run` and `sts resume` share: the workload instance and
/// the fully-built engine config. `sts resume` must rebuild the *same*
/// config the checkpointing run used (the snapshot only carries a
/// fingerprint of it, not the config itself), so both commands funnel
/// through here and accept the same flags.
struct SimdSetup {
    workload: SimdWorkload,
    cfg: EngineConfig,
}

fn simd_setup(flags: &Flags) -> Result<SimdSetup, String> {
    let spec = parse_simd_workload(flags)?;
    let p = flags.get_parsed("p", 1024usize)?;
    let scheme = match flags.get("scheme") {
        Some(s) => parse_scheme(s)?,
        None => Scheme::gp_dk(),
    };
    let cost = match flags.get("cost") {
        Some(c) => parse_cost(c)?,
        None => CostModel::cm2(),
    };
    let cost = cost.with_lb_multiplier(flags.get_parsed("lb-mult", 1u32)?);

    let workload = match spec {
        SimdWorkloadSpec::Puzzle(pz) => {
            let inst = pz.instance();
            let puzzle = Puzzle15::new(inst.board());
            // Bound: explicit flag, else the final IDA* bound.
            let bound = match flags.get("bound") {
                Some(b) => b.parse().map_err(|_| format!("--bound: bad value `{b}`"))?,
                None => ida_star(&puzzle, 80)
                    .solution_cost
                    .ok_or("instance not solvable within bound 80")?,
            };
            SimdWorkload::Puzzle { puzzle, bound }
        }
        SimdWorkloadSpec::UtsGen(tree) => SimdWorkload::UtsGen(tree),
    };
    let mut cfg = EngineConfig::new(p, scheme, cost);
    cfg.record_ledger = flags.get_parsed("ledger", false)?;
    if let Some(e) = flags.get("engine") {
        cfg.engine = parse_engine(e)?;
    }

    // Checkpointing: `--checkpoint-every N` snapshots every Nth macro-step
    // boundary into `--checkpoint-dir DIR`; `--kill-at K` injects a fault at
    // boundary K (with or without snapshots, for overhead experiments).
    let every = flags.get_parsed("checkpoint-every", 0u64)?;
    let kill_at = flags.get_parsed("kill-at", 0u64)?;
    if every > 0 || kill_at > 0 {
        let policy =
            if every > 0 { CheckpointPolicy::every(every) } else { CheckpointPolicy::default() };
        let mut ck = CheckpointCfg::new(policy);
        match flags.get("checkpoint-dir") {
            Some(d) => ck = ck.into_dir(d),
            None if every > 0 => return Err("--checkpoint-every needs --checkpoint-dir DIR".into()),
            None => {}
        }
        if kill_at > 0 {
            ck = ck.with_fault(FaultPlan::kill_at(kill_at));
        }
        cfg.checkpoint = Some(ck);
    }
    Ok(SimdSetup { workload, cfg })
}

fn print_outcome(cfg: &EngineConfig, workload: &str, out: &Outcome) {
    let p = cfg.p;
    println!("scheme        : {}", cfg.scheme.name());
    println!("P             : {p}");
    println!("workload      : {workload}");
    println!("W (nodes)     : {}", out.report.nodes_expanded);
    println!("goals         : {}", out.goals);
    println!("Nexpand cycles: {}", out.report.n_expand);
    println!("Nlb phases    : {}", out.report.n_lb);
    println!("work transfers: {}", out.report.n_transfers);
    println!("peak PE stack : {}", out.peak_stack_nodes);
    println!("T_par (virt s): {:.2}", out.report.t_par as f64 / 1e6);
    println!("speedup       : {:.1}", out.report.speedup());
    println!("efficiency    : {:.3}", out.report.efficiency);
    if out.killed {
        println!("killed        : yes (fault injected; resume with `sts resume --snapshot ...`)");
    }
    if let Some(ledger) = &out.ledger {
        let s = ledger.donation_spread();
        println!("-- ledger ({} balancing phases) --", ledger.phases.len());
        println!("donors        : {} of {p} PEs (max {} donations)", s.donors, s.max);
        println!("spread        : max/mean {:.2}, gini {:.3}", s.max_over_mean, s.gini);
        let lb_cost: u64 = ledger.phases.iter().map(|ph| ph.cost.total).sum();
        let setup: u64 = ledger.phases.iter().map(|ph| ph.cost.setup).sum();
        let transfer: u64 = ledger.phases.iter().map(|ph| ph.cost.transfer).sum();
        println!(
            "phase cost    : {lb_cost} us total (pre-mult: setup {setup}, transfer {transfer})"
        );
    }
}

/// `sts run`: parallel SIMD search of one bounded iteration or one
/// generated tree.
pub fn run_simd(flags: &Flags) -> Result<(), String> {
    let setup = simd_setup(flags)?;
    let out = match &setup.workload {
        SimdWorkload::Puzzle { puzzle, bound } => {
            run_with(&BoundedProblem::new(puzzle, *bound), &setup.cfg)
        }
        SimdWorkload::UtsGen(tree) => run_with(tree, &setup.cfg),
    };
    print_outcome(&setup.cfg, &setup.workload.describe(), &out);
    Ok(())
}

/// `sts resume`: continue a checkpointed `sts run` from a snapshot file.
///
/// Takes the same workload/config flags as `run` — the snapshot's config
/// fingerprint is checked against the rebuilt config, so resuming under
/// different `--p`/`--scheme`/`--cost` flags is rejected rather than
/// silently diverging.
pub fn resume(flags: &Flags) -> Result<(), String> {
    let path = flags.get("snapshot").ok_or("--snapshot PATH is required")?;
    let bytes = std::fs::read(path).map_err(|e| format!("--snapshot {path}: {e}"))?;
    let setup = simd_setup(flags)?;
    let out = match &setup.workload {
        SimdWorkload::Puzzle { puzzle, bound } => {
            resume_from_bytes(&BoundedProblem::new(puzzle, *bound), &setup.cfg, &bytes)
        }
        SimdWorkload::UtsGen(tree) => resume_from_bytes(tree, &setup.cfg, &bytes),
    }
    .map_err(|e| format!("{path}: {e}"))?;
    print_outcome(&setup.cfg, &setup.workload.describe(), &out);
    Ok(())
}

/// `sts shard`: the same search as `sts run`, executed by the
/// multi-process sharded machine — `--shards N` worker processes each own
/// a contiguous slab of PEs and the coordinator serializes every
/// balancing phase, so the outcome is bit-identical to `sts run` with the
/// macro engine. `--spill-dir DIR --park-every N` parks whole-machine
/// snapshots at boundaries (the recovery path after a worker dies);
/// `--snapshot PATH` resumes one, at any shard count.
pub fn shard(flags: &Flags) -> Result<(), String> {
    let setup = simd_setup(flags)?;
    if setup.cfg.checkpoint.is_some() {
        return Err("sts shard parks at the coordinator: use --spill-dir DIR --park-every N \
             instead of --checkpoint-*"
            .into());
    }
    let shards = flags.get_parsed("shards", 4usize)?;
    let mut opts = ShardOpts { shards, park: None, kill: None };
    let every = flags.get_parsed("park-every", 0u64)?;
    if every > 0 {
        let dir = flags.get("spill-dir").ok_or("--park-every needs --spill-dir DIR")?;
        opts.park = Some(ParkPolicy { dir: dir.into(), every });
    }
    let kill_at = flags.get_parsed("worker-kill-at", 0u64)?;
    if kill_at > 0 {
        opts.kill = Some(WorkerKill {
            shard: flags.get_parsed("worker-kill-shard", 0usize)?,
            at_burst: kill_at,
        });
    }
    let workload = match &setup.workload {
        SimdWorkload::Puzzle { puzzle, bound } => {
            ShardWorkload::Puzzle { board: puzzle.start().0, bound: *bound }
        }
        SimdWorkload::UtsGen(tree) => ShardWorkload::UtsGen(*tree),
    };
    let snapshot = match flags.get("snapshot") {
        Some(path) => Some(std::fs::read(path).map_err(|e| format!("--snapshot {path}: {e}"))?),
        None => None,
    };
    let sharded = match &snapshot {
        Some(bytes) => resume_sharded(&workload, &setup.cfg, &opts, bytes),
        None => run_sharded(&workload, &setup.cfg, &opts),
    }
    .map_err(|e| match e {
        uts_shard::ShardError::WorkerLost { .. } if opts.park.is_some() => {
            format!("{e}\nresume from the newest .park in the spill dir with --snapshot")
        }
        other => other.to_string(),
    })?;
    print_outcome(&setup.cfg, &setup.workload.describe(), &sharded.outcome);
    print_shard_stats(&sharded.stats);
    Ok(())
}

fn print_shard_stats(stats: &uts_shard::ShardStats) {
    println!("-- sharded machine ({} worker processes) --", stats.shards);
    let messages: u64 = stats.phases.iter().map(|ph| ph.messages).sum();
    println!(
        "routed phases : {} ({} transfers routed through the interconnect)",
        stats.phases.len(),
        messages
    );
    println!(
        "route (meas.) : {} router steps, max hops {}, waits {}",
        stats.route_total.steps, stats.route_total.max_hops, stats.route_total.waits
    );
    let closed: u64 = stats.phases.iter().map(|ph| ph.closed_form.total).sum();
    let measured: u64 = stats.phases.iter().map(|ph| ph.measured.total).sum();
    println!("lb cost       : closed-form {closed} us vs route-measured {measured} us");
}

/// `sts mimd`: asynchronous work stealing on the same workload.
pub fn run_mimd_cmd(flags: &Flags) -> Result<(), String> {
    let spec = parse_workload(flags)?;
    let p = flags.get_parsed("p", 1024usize)?;
    let policy = match flags.get("policy").unwrap_or("rp") {
        "grr" => StealPolicy::GlobalRoundRobin,
        "arr" => StealPolicy::AsyncRoundRobin,
        "rp" => StealPolicy::RandomPolling,
        "nn" => StealPolicy::NeighborPolling,
        other => return Err(format!("unknown policy `{other}` (grr|arr|rp|nn)")),
    };
    let inst = spec.instance();
    let puzzle = Puzzle15::new(inst.board());
    let bound = ida_star(&puzzle, 80).solution_cost.ok_or("unsolvable within bound 80")?;
    let bp = BoundedProblem::new(&puzzle, bound);
    let m = run_mimd(&bp, &MimdConfig::new(p, policy, CostModel::cm2()));
    println!("policy     : {}", policy.name());
    println!("W (nodes)  : {}", m.nodes_expanded);
    println!("requests   : {}", m.requests);
    println!("steals     : {}", m.transfers);
    println!("efficiency : {:.3}", m.efficiency);
    Ok(())
}

/// `sts queens`: N-queens on serial / SIMD / host-parallel engines.
pub fn queens(flags: &Flags) -> Result<(), String> {
    let n = flags.get_parsed("n", 10u8)?;
    let p = flags.get_parsed("p", 256usize)?;
    let q = NQueens::new(n);
    let serial = serial_dfs(&q);
    println!("{n}-queens: W = {}, solutions = {}", serial.expanded, serial.goals);
    let out = run(&q, &EngineConfig::new(p, Scheme::gp_dk(), CostModel::cm2()));
    println!(
        "SIMD GP-D^K (P={p}): E = {:.3}, speedup {:.1}",
        out.report.efficiency,
        out.report.speedup()
    );
    let host = deque_dfs(&q, 4);
    println!("host pool (4 threads): {} steals, per-worker {:?}", host.steals, host.per_worker);
    assert_eq!(out.goals, serial.goals);
    assert_eq!(host.goals, serial.goals);
    Ok(())
}

/// `sts sat`: DPLL model counting.
pub fn sat(flags: &Flags) -> Result<(), String> {
    let vars = flags.get_parsed("vars", 24u32)?;
    let clauses = flags.get_parsed("clauses", vars * 3)?;
    let seed = flags.get_parsed("seed", 0u64)?;
    let dpll = Dpll::new(random_3sat(seed, vars, clauses));
    let serial = serial_dfs(&dpll);
    println!(
        "3-SAT {vars}x{clauses} (seed {seed}): {} models over {} DPLL nodes",
        serial.goals, serial.expanded
    );
    let out = run(&dpll, &EngineConfig::new(256, Scheme::gp_dk(), CostModel::cm2()));
    assert_eq!(out.goals, serial.goals);
    println!("SIMD GP-D^K (P=256): E = {:.3}", out.report.efficiency);
    Ok(())
}

/// `sts serve`: the long-running job server. Blocks until killed; jobs
/// and results are durable in `--spill-dir`, so a restarted server picks
/// up where the last one stopped.
pub fn serve(flags: &Flags) -> Result<(), String> {
    let cfg = uts_serve::ServeConfig {
        addr: flags.get("addr").unwrap_or("127.0.0.1:7117").to_string(),
        slots: flags.get_parsed("slots", 2usize)?.max(1),
        spill_dir: flags.get("spill-dir").unwrap_or("sts-spool").into(),
        quantum_ms: flags.get_parsed("quantum-ms", 50u64)?,
        poll_ms: flags.get_parsed("poll-ms", 5u64)?,
    };
    let spill = cfg.spill_dir.clone();
    let server = uts_serve::JobServer::start(cfg).map_err(|e| format!("serve: {e}"))?;
    println!("sts serve: listening on http://{}", server.addr());
    println!("sts serve: spilling to {}", spill.display());
    println!("  POST /submit  GET /status/<id>  GET /result/<id>  POST /cancel/<id>  GET /jobs");
    // Serve until the process is killed; jobs in flight at that point
    // recover from the spill directory on the next start.
    loop {
        std::thread::sleep(std::time::Duration::from_secs(3600));
    }
}

/// `sts xo`: the optimal static trigger of eq. 18.
pub fn xo(flags: &Flags) -> Result<(), String> {
    let w: u64 = flags
        .get("w")
        .ok_or("--w <problem size> is required")?
        .parse()
        .map_err(|_| "--w: not a number".to_string())?;
    let p = flags.get_parsed("p", 8192usize)?;
    let ratio = flags.get_parsed("ratio", CostModel::cm2().lb_ratio(p))?;
    let params = TriggerParams::new(w, p, ratio);
    println!("x_o(W={w}, P={p}, t_lb/U_calc={ratio:.3}) = {:.4}", optimal_static_trigger(&params));
    Ok(())
}
