//! Flag parsing and the small grammars for schemes, cost models and
//! workloads.

use std::collections::BTreeMap;

use uts_core::{EngineKind, Scheme};
use uts_machine::CostModel;
use uts_puzzle15::{korf_instances, Instance};
use uts_synthgen::GenTree;

/// Parsed `--key value` flags.
#[derive(Debug, Clone, Default)]
pub struct Flags {
    values: BTreeMap<String, String>,
}

impl Flags {
    /// Parse a `--key value --key2 value2 …` argument list.
    pub fn parse<S: AsRef<str>>(args: &[S]) -> Result<Flags, String> {
        let mut values = BTreeMap::new();
        let mut it = args.iter();
        while let Some(arg) = it.next() {
            let arg = arg.as_ref();
            let key =
                arg.strip_prefix("--").ok_or_else(|| format!("expected a --flag, got `{arg}`"))?;
            let value = it
                .next()
                .ok_or_else(|| format!("flag --{key} needs a value"))?
                .as_ref()
                .to_string();
            values.insert(key.to_string(), value);
        }
        Ok(Flags { values })
    }

    /// Raw value of a flag.
    pub fn get(&self, key: &str) -> Option<&str> {
        self.values.get(key).map(String::as_str)
    }

    /// Parse a flag's value, falling back to `default` when absent.
    pub fn get_parsed<T: std::str::FromStr>(&self, key: &str, default: T) -> Result<T, String> {
        match self.get(key) {
            None => Ok(default),
            Some(v) => v.parse().map_err(|_| format!("--{key}: cannot parse `{v}`")),
        }
    }
}

/// Parse a scheme name (`gp-s:0.8`, `ngp-dk`, `fess`, …). The grammar
/// lives on [`Scheme::parse`] so the job server shares it.
pub fn parse_scheme(s: &str) -> Result<Scheme, String> {
    Scheme::parse(s)
}

/// Parse an engine name.
pub fn parse_engine(s: &str) -> Result<EngineKind, String> {
    EngineKind::parse(s)
}

/// Parse a cost-model name.
pub fn parse_cost(s: &str) -> Result<CostModel, String> {
    CostModel::parse(s)
}

/// Which 15-puzzle workload to search.
#[derive(Debug, Clone, Copy)]
pub enum WorkloadSpec {
    /// An embedded Korf benchmark instance.
    Korf(u32),
    /// A seeded scramble.
    Scramble {
        /// RNG seed.
        seed: u64,
        /// Walk length.
        walk: usize,
    },
}

impl WorkloadSpec {
    /// Materialize the instance.
    pub fn instance(self) -> Instance {
        match self {
            WorkloadSpec::Korf(id) => {
                *korf_instances().iter().find(|i| i.id == id).expect("validated by parse_workload")
            }
            WorkloadSpec::Scramble { seed, walk } => uts_puzzle15::scrambled(seed, walk),
        }
    }
}

/// A workload for the SIMD engines (`sts run` / `sts resume`): the
/// default bounded 15-puzzle iteration, or an on-the-fly generated tree
/// selected with `--workload utsgen`.
#[derive(Debug, Clone, Copy)]
pub enum SimdWorkloadSpec {
    /// A bounded 15-puzzle iteration (the default).
    Puzzle(WorkloadSpec),
    /// A generated Galton–Watson tree from `uts-synthgen`.
    UtsGen(GenTree),
}

/// Parse the SIMD workload. `--workload utsgen` selects the generated
/// family (`--family geometric|binomial` plus `--seed`, and `--b-max
/// --depth` or `--b0 --m --q`); anything else falls through to the
/// 15-puzzle grammar of [`parse_workload`].
pub fn parse_simd_workload(flags: &Flags) -> Result<SimdWorkloadSpec, String> {
    match flags.get("workload") {
        None | Some("puzzle15") => Ok(SimdWorkloadSpec::Puzzle(parse_workload(flags)?)),
        Some("utsgen") => {
            let seed = flags.get_parsed("seed", 1u64)?;
            match flags.get("family").unwrap_or("geometric") {
                "geometric" => {
                    let b_max = flags.get_parsed("b-max", 8u32)?;
                    let depth = flags.get_parsed("depth", 6u32)?;
                    if depth > 64 {
                        return Err(format!("--depth {depth}: at most 64"));
                    }
                    Ok(SimdWorkloadSpec::UtsGen(GenTree::geometric(seed, b_max, depth)))
                }
                "binomial" => {
                    let b0 = flags.get_parsed("b0", 16u32)?;
                    let m = flags.get_parsed("m", 4u32)?;
                    let q = flags.get_parsed("q", 0.2f64)?;
                    if !(0.0..1.0).contains(&q) || q * m as f64 >= 1.0 {
                        return Err(format!(
                            "--q {q} --m {m}: the binomial family must be subcritical (q*m < 1)"
                        ));
                    }
                    Ok(SimdWorkloadSpec::UtsGen(GenTree::binomial(seed, b0, m, q)))
                }
                other => Err(format!("--family: unknown `{other}` (geometric|binomial)")),
            }
        }
        Some(other) => Err(format!("--workload: unknown `{other}` (puzzle15|utsgen)")),
    }
}

/// Extract a workload from `--korf K` or `--seed S --walk N` flags
/// (defaults: scramble seed 42, walk 40).
pub fn parse_workload(flags: &Flags) -> Result<WorkloadSpec, String> {
    if let Some(k) = flags.get("korf") {
        let id: u32 = k.parse().map_err(|_| format!("--korf: bad id `{k}`"))?;
        if !korf_instances().iter().any(|i| i.id == id) {
            return Err(format!(
                "--korf {id}: not an embedded instance (have 1..={})",
                korf_instances().last().expect("non-empty set").id
            ));
        }
        return Ok(WorkloadSpec::Korf(id));
    }
    let seed = flags.get_parsed("seed", 42u64)?;
    let walk = flags.get_parsed("walk", 40usize)?;
    Ok(WorkloadSpec::Scramble { seed, walk })
}
