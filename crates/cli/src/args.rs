//! Flag parsing and the small grammars for schemes, cost models and
//! workloads.

use std::collections::BTreeMap;

use uts_core::{EngineKind, Scheme};
use uts_machine::CostModel;
use uts_puzzle15::{korf_instances, Instance};

/// Parsed `--key value` flags.
#[derive(Debug, Clone, Default)]
pub struct Flags {
    values: BTreeMap<String, String>,
}

impl Flags {
    /// Parse a `--key value --key2 value2 …` argument list.
    pub fn parse<S: AsRef<str>>(args: &[S]) -> Result<Flags, String> {
        let mut values = BTreeMap::new();
        let mut it = args.iter();
        while let Some(arg) = it.next() {
            let arg = arg.as_ref();
            let key =
                arg.strip_prefix("--").ok_or_else(|| format!("expected a --flag, got `{arg}`"))?;
            let value = it
                .next()
                .ok_or_else(|| format!("flag --{key} needs a value"))?
                .as_ref()
                .to_string();
            values.insert(key.to_string(), value);
        }
        Ok(Flags { values })
    }

    /// Raw value of a flag.
    pub fn get(&self, key: &str) -> Option<&str> {
        self.values.get(key).map(String::as_str)
    }

    /// Parse a flag's value, falling back to `default` when absent.
    pub fn get_parsed<T: std::str::FromStr>(&self, key: &str, default: T) -> Result<T, String> {
        match self.get(key) {
            None => Ok(default),
            Some(v) => v.parse().map_err(|_| format!("--{key}: cannot parse `{v}`")),
        }
    }
}

/// Parse a scheme name (`gp-s:0.8`, `ngp-dk`, `fess`, …). The grammar
/// lives on [`Scheme::parse`] so the job server shares it.
pub fn parse_scheme(s: &str) -> Result<Scheme, String> {
    Scheme::parse(s)
}

/// Parse an engine name.
pub fn parse_engine(s: &str) -> Result<EngineKind, String> {
    EngineKind::parse(s)
}

/// Parse a cost-model name.
pub fn parse_cost(s: &str) -> Result<CostModel, String> {
    CostModel::parse(s)
}

/// Which 15-puzzle workload to search.
#[derive(Debug, Clone, Copy)]
pub enum WorkloadSpec {
    /// An embedded Korf benchmark instance.
    Korf(u32),
    /// A seeded scramble.
    Scramble {
        /// RNG seed.
        seed: u64,
        /// Walk length.
        walk: usize,
    },
}

impl WorkloadSpec {
    /// Materialize the instance.
    pub fn instance(self) -> Instance {
        match self {
            WorkloadSpec::Korf(id) => {
                *korf_instances().iter().find(|i| i.id == id).expect("validated by parse_workload")
            }
            WorkloadSpec::Scramble { seed, walk } => uts_puzzle15::scrambled(seed, walk),
        }
    }
}

/// Extract a workload from `--korf K` or `--seed S --walk N` flags
/// (defaults: scramble seed 42, walk 40).
pub fn parse_workload(flags: &Flags) -> Result<WorkloadSpec, String> {
    if let Some(k) = flags.get("korf") {
        let id: u32 = k.parse().map_err(|_| format!("--korf: bad id `{k}`"))?;
        if !korf_instances().iter().any(|i| i.id == id) {
            return Err(format!(
                "--korf {id}: not an embedded instance (have 1..={})",
                korf_instances().last().expect("non-empty set").id
            ));
        }
        return Ok(WorkloadSpec::Korf(id));
    }
    let seed = flags.get_parsed("seed", 42u64)?;
    let walk = flags.get_parsed("walk", 40usize)?;
    Ok(WorkloadSpec::Scramble { seed, walk })
}
