//! `sts` — the command-line front end. See [`uts_cli::USAGE`].

use uts_cli::{commands, Flags, USAGE};

fn main() {
    // `sts shard` spawns workers by re-executing this binary; if this
    // process *is* a worker, serve the wire protocol and exit.
    uts_shard::maybe_run_worker();

    let args: Vec<String> = std::env::args().skip(1).collect();
    let Some((cmd, rest)) = args.split_first() else {
        eprint!("{USAGE}");
        std::process::exit(2);
    };
    let result = Flags::parse(rest).and_then(|flags| match cmd.as_str() {
        "solve" => commands::solve(&flags),
        "run" => commands::run_simd(&flags),
        "resume" => commands::resume(&flags),
        "shard" => commands::shard(&flags),
        "mimd" => commands::run_mimd_cmd(&flags),
        "queens" => commands::queens(&flags),
        "sat" => commands::sat(&flags),
        "xo" => commands::xo(&flags),
        "serve" => commands::serve(&flags),
        "help" | "--help" | "-h" => {
            print!("{USAGE}");
            Ok(())
        }
        other => Err(format!("unknown command `{other}`")),
    });
    if let Err(e) = result {
        eprintln!("error: {e}\n");
        eprint!("{USAGE}");
        std::process::exit(2);
    }
}
