//! Additional unstructured-tree domains.
//!
//! The paper's introduction motivates parallel tree search with problems
//! "in artificial intelligence, combinatorial optimization, operations
//! research and Monte-Carlo evaluations" — depth-first branch-and-bound,
//! IDA\*, and backtracking (Sec. 2). Besides the 15-puzzle (the paper's
//! own experimental domain, in `uts-puzzle15`) this crate provides three
//! more domains over the same [`uts_tree::TreeProblem`] substrate, each of
//! which produces exactly the *highly irregular* trees the load-balancing
//! schemes were designed for:
//!
//! * [`nqueens`] — backtracking (bitmask column/diagonal pruning);
//! * [`sat`] — DPLL with unit propagation over seeded random 3-SAT;
//! * [`knapsack`] — 0/1-knapsack enumeration with fractional-relaxation
//!   bound pruning against a greedy incumbent (a deterministic,
//!   sharing-free branch-and-bound that is safe to run lockstep-parallel);
//! * [`sliding`] — the generalized N×N sliding-tile puzzle (8/15/24-…),
//!   cross-validated node-for-node against the packed `uts-puzzle15`;
//! * [`montecarlo`] — weighted path enumeration for functional-integral
//!   evaluation (the paper's ref. 35 workload family).
//!
//! All domains are deterministic and exhaustive, so parallel runs expand
//! the serial node count — the anomaly-free setting the paper's analysis
//! assumes.

pub mod knapsack;
pub mod montecarlo;
pub mod nqueens;
pub mod sat;
pub mod sliding;

pub use knapsack::{Knapsack, KnapsackNode};
pub use montecarlo::{PathIntegral, PathNode};
pub use nqueens::{NQueens, QueensNode};
pub use sat::{random_3sat, Assignment, Cnf, Dpll};
pub use sliding::{Side, Sliding, SlidingState};
