//! DPLL propositional satisfiability as a tree search — the "backtracking"
//! family of the paper's Sec. 2 (Horowitz & Sahni), and the kind of
//! automatic-test-generation workload its references [2, 28] parallelize.
//!
//! A [`Dpll`] problem wraps a CNF formula; nodes are partial assignments.
//! Expansion performs *unit propagation* to a fixed point, prunes
//! conflicts, and branches the first unassigned variable both ways. The
//! search is exhaustive — goals are *models* (complete satisfying
//! assignments) — so serial and parallel runs agree exactly, and counting
//! goals model-counts the formula (#SAT over the branching tree).

use rand::prelude::*;
use rand_chacha::ChaCha8Rng;
use serde::{Deserialize, Serialize};
use uts_tree::TreeProblem;

/// A literal: variable index with sign (`+v` = true, `-v` = false),
/// encoded as `2 * var + (negated as usize)`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct Lit(pub u32);

impl Lit {
    /// A positive or negative literal of `var`.
    pub fn new(var: u32, negated: bool) -> Self {
        Lit(2 * var + negated as u32)
    }

    /// The variable index.
    pub fn var(self) -> u32 {
        self.0 / 2
    }

    /// Whether the literal is negated.
    pub fn negated(self) -> bool {
        self.0 % 2 == 1
    }
}

/// A CNF formula: clauses of literals over variables `0..num_vars`.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Cnf {
    /// Number of variables.
    pub num_vars: u32,
    /// Clauses (each a disjunction of literals).
    pub clauses: Vec<Vec<Lit>>,
}

impl Cnf {
    /// Evaluate under a complete assignment (for tests / verification).
    pub fn satisfied_by(&self, assignment: &[bool]) -> bool {
        assert_eq!(assignment.len(), self.num_vars as usize);
        self.clauses
            .iter()
            .all(|clause| clause.iter().any(|l| assignment[l.var() as usize] != l.negated()))
    }
}

/// Truth value of a variable in a partial assignment.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
enum Val {
    Unset,
    True,
    False,
}

/// A partial assignment (one per tree node; cloned on branching, which is
/// exactly the self-contained-node requirement of the lockstep engine).
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Assignment {
    vals: Vec<Val>,
    assigned: u32,
}

impl uts_tree::CkptNode for Assignment {
    fn encode_node(&self, out: &mut Vec<u8>) {
        // `assigned` is derivable (count of non-Unset), so only the value
        // vector goes on the wire — canonical by construction.
        uts_tree::codec::put_usize(out, self.vals.len());
        for v in &self.vals {
            out.push(match v {
                Val::Unset => 0,
                Val::True => 1,
                Val::False => 2,
            });
        }
    }
    fn decode_node(r: &mut uts_tree::Reader<'_>) -> Result<Self, uts_tree::CodecError> {
        let n = r.len(1)?;
        let mut vals = Vec::with_capacity(n);
        for _ in 0..n {
            vals.push(match r.u8()? {
                0 => Val::Unset,
                1 => Val::True,
                2 => Val::False,
                _ => return Err(uts_tree::CodecError::Malformed("Val byte not 0/1/2")),
            });
        }
        let assigned = vals.iter().filter(|v| !matches!(v, Val::Unset)).count() as u32;
        Ok(Self { vals, assigned })
    }
}

impl Assignment {
    fn empty(num_vars: u32) -> Self {
        Self { vals: vec![Val::Unset; num_vars as usize], assigned: 0 }
    }

    fn get(&self, var: u32) -> Val {
        self.vals[var as usize]
    }

    fn set(&mut self, var: u32, value: bool) {
        debug_assert_eq!(self.vals[var as usize], Val::Unset);
        self.vals[var as usize] = if value { Val::True } else { Val::False };
        self.assigned += 1;
    }

    /// Whether every variable is assigned.
    pub fn is_complete(&self) -> bool {
        self.assigned as usize == self.vals.len()
    }

    /// Extract the boolean vector (complete assignments only).
    pub fn to_bools(&self) -> Vec<bool> {
        self.vals
            .iter()
            .map(|v| match v {
                Val::True => true,
                Val::False => false,
                Val::Unset => panic!("assignment is incomplete"),
            })
            .collect()
    }
}

/// DPLL over a CNF: unit propagation + first-unassigned branching.
#[derive(Debug, Clone)]
pub struct Dpll {
    cnf: Cnf,
}

/// What propagation found.
enum Propagation {
    Conflict,
    Stable,
}

impl Dpll {
    /// Wrap a formula.
    pub fn new(cnf: Cnf) -> Self {
        Self { cnf }
    }

    /// The wrapped formula.
    pub fn cnf(&self) -> &Cnf {
        &self.cnf
    }

    /// Unit-propagate `a` to a fixed point. Returns `Conflict` if a clause
    /// is falsified.
    fn propagate(&self, a: &mut Assignment) -> Propagation {
        loop {
            let mut changed = false;
            for clause in &self.cnf.clauses {
                let mut unassigned: Option<Lit> = None;
                let mut n_unassigned = 0;
                let mut satisfied = false;
                for &l in clause {
                    match a.get(l.var()) {
                        Val::Unset => {
                            n_unassigned += 1;
                            unassigned = Some(l);
                        }
                        Val::True if !l.negated() => {
                            satisfied = true;
                            break;
                        }
                        Val::False if l.negated() => {
                            satisfied = true;
                            break;
                        }
                        _ => {}
                    }
                }
                if satisfied {
                    continue;
                }
                match n_unassigned {
                    0 => return Propagation::Conflict,
                    1 => {
                        let l = unassigned.expect("counted one unassigned literal");
                        a.set(l.var(), !l.negated());
                        changed = true;
                    }
                    _ => {}
                }
            }
            if !changed {
                return Propagation::Stable;
            }
        }
    }
}

impl TreeProblem for Dpll {
    type Node = Assignment;

    fn root(&self) -> Assignment {
        Assignment::empty(self.cnf.num_vars)
    }

    fn expand(&self, node: &Assignment, out: &mut Vec<Assignment>) {
        if node.is_complete() {
            return;
        }
        let var = node
            .vals
            .iter()
            .position(|&v| v == Val::Unset)
            .expect("incomplete assignment has an unset variable") as u32;
        for value in [false, true] {
            let mut child = node.clone();
            child.set(var, value);
            match self.propagate(&mut child) {
                Propagation::Conflict => {}
                Propagation::Stable => out.push(child),
            }
        }
    }

    fn is_goal(&self, node: &Assignment) -> bool {
        node.is_complete()
    }
}

/// Generate a seeded random 3-SAT instance with `num_vars` variables and
/// `num_clauses` clauses (three distinct variables per clause, random
/// signs). The clause/variable ratio controls hardness (~4.27 is the
/// classic threshold).
pub fn random_3sat(seed: u64, num_vars: u32, num_clauses: u32) -> Cnf {
    assert!(num_vars >= 3, "3-SAT needs at least three variables");
    let mut rng = ChaCha8Rng::seed_from_u64(seed);
    let mut clauses = Vec::with_capacity(num_clauses as usize);
    for _ in 0..num_clauses {
        let mut vars = Vec::with_capacity(3);
        while vars.len() < 3 {
            let v = rng.random_range(0..num_vars);
            if !vars.contains(&v) {
                vars.push(v);
            }
        }
        clauses.push(vars.into_iter().map(|v| Lit::new(v, rng.random_bool(0.5))).collect());
    }
    Cnf { num_vars, clauses }
}

#[cfg(test)]
mod tests {
    use super::*;
    use uts_tree::{serial_dfs, serial_dfs_collect};

    fn lit(v: u32) -> Lit {
        Lit::new(v, false)
    }
    fn nlit(v: u32) -> Lit {
        Lit::new(v, true)
    }

    #[test]
    fn literal_encoding_round_trips() {
        let l = Lit::new(7, true);
        assert_eq!(l.var(), 7);
        assert!(l.negated());
        let l = Lit::new(3, false);
        assert_eq!(l.var(), 3);
        assert!(!l.negated());
    }

    #[test]
    fn trivially_satisfiable_formula() {
        // (x0) with 1 variable: exactly one model.
        let cnf = Cnf { num_vars: 1, clauses: vec![vec![lit(0)]] };
        let stats = serial_dfs(&Dpll::new(cnf));
        assert_eq!(stats.goals, 1);
    }

    #[test]
    fn unsatisfiable_formula_has_no_models() {
        // (x0) ∧ (¬x0).
        let cnf = Cnf { num_vars: 1, clauses: vec![vec![lit(0)], vec![nlit(0)]] };
        let stats = serial_dfs(&Dpll::new(cnf));
        assert_eq!(stats.goals, 0);
    }

    #[test]
    fn unit_propagation_chains() {
        // x0 forces x1 forces x2: (x0)(¬x0∨x1)(¬x1∨x2) → single model TTT,
        // found with a single expansion of the root (propagation does the
        // rest ... after the first branch).
        let cnf = Cnf {
            num_vars: 3,
            clauses: vec![vec![lit(0)], vec![nlit(0), lit(1)], vec![nlit(1), lit(2)]],
        };
        let dpll = Dpll::new(cnf);
        let stats = serial_dfs(&dpll);
        assert_eq!(stats.goals, 1);
        // The conflict branch (x0 = false) dies in propagation, so the
        // tree is tiny: root + one child.
        assert!(stats.expanded <= 3, "expanded {}", stats.expanded);
    }

    #[test]
    fn model_counting_free_variables() {
        // (x0 ∨ x1) over 2 vars: models TT, TF, FT = 3.
        let cnf = Cnf { num_vars: 2, clauses: vec![vec![lit(0), lit(1)]] };
        let stats = serial_dfs(&Dpll::new(cnf));
        assert_eq!(stats.goals, 3);
    }

    #[test]
    fn every_reported_model_satisfies_the_formula() {
        let cnf = random_3sat(5, 10, 30);
        let dpll = Dpll::new(cnf.clone());
        let mut models = Vec::new();
        serial_dfs_collect(&dpll, |a| models.push(a.to_bools()));
        assert!(!models.is_empty(), "ratio 3.0 is almost surely satisfiable");
        for m in &models {
            assert!(cnf.satisfied_by(m));
        }
    }

    #[test]
    fn brute_force_agrees_on_small_instances() {
        for seed in 0..6 {
            let cnf = random_3sat(seed, 8, 28);
            let dpll = Dpll::new(cnf.clone());
            let dpll_models = serial_dfs(&dpll).goals;
            let mut brute = 0u64;
            for bits in 0u32..(1 << 8) {
                let assignment: Vec<bool> = (0..8).map(|i| bits >> i & 1 == 1).collect();
                if cnf.satisfied_by(&assignment) {
                    brute += 1;
                }
            }
            assert_eq!(dpll_models, brute, "seed {seed}");
        }
    }

    #[test]
    fn generator_is_deterministic_and_well_formed() {
        let a = random_3sat(1, 12, 40);
        let b = random_3sat(1, 12, 40);
        assert_eq!(a.clauses.len(), b.clauses.len());
        for (ca, cb) in a.clauses.iter().zip(&b.clauses) {
            assert_eq!(ca, cb);
            assert_eq!(ca.len(), 3);
            let vars: Vec<u32> = ca.iter().map(|l| l.var()).collect();
            assert!(vars.iter().all(|&v| v < 12));
            assert!(vars[0] != vars[1] && vars[1] != vars[2] && vars[0] != vars[2]);
        }
    }

    #[test]
    fn parallel_lockstep_matches_serial() {
        use uts_core::{run, EngineConfig, Scheme};
        use uts_machine::CostModel;
        let dpll = Dpll::new(random_3sat(9, 14, 55));
        let serial = serial_dfs(&dpll);
        let out = run(&dpll, &EngineConfig::new(32, Scheme::gp_static(0.8), CostModel::cm2()));
        assert_eq!(out.report.nodes_expanded, serial.expanded);
        assert_eq!(out.goals, serial.goals);
    }
}
