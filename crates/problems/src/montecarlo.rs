//! Weighted path enumeration for functional-integral evaluation — the
//! "Monte-Carlo evaluations of functional integrals" motivation of the
//! paper's introduction (its ref. 35, Frye & Myczkowski, used exactly this
//! kind of tree with CM-2 load balancing).
//!
//! The search space is the tree of discretized paths of a random walk:
//! each node extends the path by one of `branching` moves, multiplying the
//! path's weight by a move-dependent factor. Paths whose weight falls
//! below a cutoff are pruned (their contribution is negligible), which
//! makes the tree *irregular* — heavy branches go deep, light branches
//! terminate early — precisely the load-balancing stress the paper
//! targets. Leaves at the horizon contribute `weight × payoff` to the
//! integral.
//!
//! Weights are kept in integer micro-units so the tree (and therefore any
//! parallel run) is exactly reproducible; the integral estimate is the
//! *sum over contributing leaves*, which every machine in this workspace
//! computes identically (it is a goal-count-style reduction).

use serde::{Deserialize, Serialize};
use uts_tree::TreeProblem;

/// Weight fixed-point scale (1.0 == `SCALE`).
pub const SCALE: u64 = 1_000_000;

/// A partial path: depth, current walk position (lattice site), and the
/// accumulated weight in micro-units.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct PathNode {
    /// Steps taken.
    pub depth: u16,
    /// Lattice position (signed).
    pub site: i32,
    /// Accumulated weight, in units of 1/[`SCALE`].
    pub weight: u64,
}

impl uts_tree::CkptNode for PathNode {
    fn encode_node(&self, out: &mut Vec<u8>) {
        uts_tree::codec::put_u16(out, self.depth);
        uts_tree::codec::put_i32(out, self.site);
        uts_tree::codec::put_u64(out, self.weight);
    }
    fn decode_node(r: &mut uts_tree::Reader<'_>) -> Result<Self, uts_tree::CodecError> {
        Ok(Self { depth: r.u16()?, site: r.i32()?, weight: r.u64()? })
    }
}

/// The discretized path-integral tree.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct PathIntegral {
    /// Time horizon (path length).
    pub horizon: u16,
    /// Per-step weight factor for a +1 move, in micro-units (e.g. 600 000
    /// = 0.6).
    pub up_factor: u64,
    /// Per-step weight factor for a −1 move.
    pub down_factor: u64,
    /// Prune paths whose weight drops below this (micro-units).
    pub cutoff: u64,
}

impl PathIntegral {
    /// A symmetric walk with the given per-step damping and cutoff.
    ///
    /// # Panics
    /// Panics if a factor exceeds `SCALE` (weights must not grow — the
    /// tree would not be prunable) or the cutoff is zero.
    pub fn new(horizon: u16, up_factor: u64, down_factor: u64, cutoff: u64) -> Self {
        assert!(up_factor <= SCALE && down_factor <= SCALE, "factors must damp");
        assert!(cutoff > 0, "a zero cutoff never prunes and the tree is 2^horizon");
        Self { horizon, up_factor, down_factor, cutoff }
    }

    /// Exact integral by dynamic programming over (depth, site) —
    /// the oracle for the tree evaluation. Payoff: `max(site, 0)` at the
    /// horizon. Returns micro-units (truncation matches the tree's
    /// per-path integer arithmetic only approximately; see
    /// [`PathIntegral::integral_via_search`] for the exact tree sum).
    pub fn integral_via_enumeration(&self) -> u64 {
        // Full enumeration with the same pruning — reference implementation
        // independent of the TreeProblem machinery.
        fn go(p: &PathIntegral, depth: u16, site: i32, weight: u64) -> u64 {
            if depth == p.horizon {
                return weight * site.max(0) as u64;
            }
            let mut total = 0;
            let up = weight * p.up_factor / SCALE;
            if up >= p.cutoff {
                total += go(p, depth + 1, site + 1, up);
            }
            let down = weight * p.down_factor / SCALE;
            if down >= p.cutoff {
                total += go(p, depth + 1, site - 1, down);
            }
            total
        }
        go(self, 0, 0, SCALE)
    }

    /// Evaluate the integral by serial tree search (sums the same leaves
    /// the parallel engines visit).
    pub fn integral_via_search(&self) -> u64 {
        let mut total = 0u64;
        uts_tree::serial_dfs_collect(self, |leaf| {
            total += leaf.weight * leaf.site.max(0) as u64;
        });
        total
    }
}

impl TreeProblem for PathIntegral {
    type Node = PathNode;

    fn root(&self) -> PathNode {
        PathNode { depth: 0, site: 0, weight: SCALE }
    }

    fn expand(&self, node: &PathNode, out: &mut Vec<PathNode>) {
        if node.depth == self.horizon {
            return;
        }
        let up = node.weight * self.up_factor / SCALE;
        if up >= self.cutoff {
            out.push(PathNode { depth: node.depth + 1, site: node.site + 1, weight: up });
        }
        let down = node.weight * self.down_factor / SCALE;
        if down >= self.cutoff {
            out.push(PathNode { depth: node.depth + 1, site: node.site - 1, weight: down });
        }
    }

    /// Goals are the contributing leaves (horizon reached with positive
    /// payoff site).
    fn is_goal(&self, node: &PathNode) -> bool {
        node.depth == self.horizon && node.site > 0
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use uts_tree::serial_dfs;

    fn toy() -> PathIntegral {
        PathIntegral::new(12, 900_000, 800_000, 50_000)
    }

    #[test]
    fn tree_sum_matches_reference_enumeration() {
        let p = toy();
        assert_eq!(p.integral_via_search(), p.integral_via_enumeration());
        assert!(p.integral_via_search() > 0);
    }

    #[test]
    fn pruning_makes_the_tree_irregular_and_subexponential() {
        let p = toy();
        let stats = serial_dfs(&p);
        assert!(stats.expanded > 100, "non-trivial: {}", stats.expanded);
        assert!(stats.expanded < 1 << 13, "pruned well below 2^13: {}", stats.expanded);
        // Asymmetric damping: down-paths die sooner, so some up-leaf goals
        // exist while full-depth down-paths are pruned.
        assert!(stats.goals > 0);
    }

    #[test]
    fn zero_horizon_is_single_node() {
        let p = PathIntegral::new(0, 900_000, 900_000, 1);
        assert_eq!(serial_dfs(&p).expanded, 1);
        assert_eq!(p.integral_via_search(), 0, "payoff at site 0 is 0");
    }

    #[test]
    fn no_damping_rejected() {
        // up factor > 1.0 would grow weights forever.
        let r = std::panic::catch_unwind(|| PathIntegral::new(4, SCALE + 1, SCALE, 1));
        assert!(r.is_err());
    }

    #[test]
    fn parallel_engines_agree_on_the_integral_support() {
        use uts_core::{run, EngineConfig, Scheme};
        use uts_machine::CostModel;
        let p = toy();
        let serial = serial_dfs(&p);
        let out = run(&p, &EngineConfig::new(32, Scheme::gp_dk(), CostModel::cm2()));
        assert_eq!(out.report.nodes_expanded, serial.expanded);
        assert_eq!(out.goals, serial.goals, "identical contributing-leaf set");
    }

    #[test]
    fn tighter_cutoff_prunes_more() {
        let loose = PathIntegral::new(12, 900_000, 800_000, 10_000);
        let tight = PathIntegral::new(12, 900_000, 800_000, 200_000);
        assert!(serial_dfs(&tight).expanded < serial_dfs(&loose).expanded);
        // And the integral estimate only loses low-weight mass.
        assert!(tight.integral_via_search() <= loose.integral_via_search());
    }
}
